package butterfly

import (
	"fmt"
	"runtime"

	"butterfly/internal/peel"
)

// KTip returns the k-tip subgraph with respect to the given side: the
// maximal subgraph in which every non-isolated vertex of that side
// participates in at least k butterflies. Vertex ids are preserved;
// peeled vertices become isolated (the paper's masking semantics,
// equations (19)–(22)).
func (g *Graph) KTip(k int64, side Side) (*Graph, error) {
	if k < 0 {
		return nil, fmt.Errorf("butterfly: negative k %d", k)
	}
	s, err := side.internal()
	if err != nil {
		return nil, err
	}
	return &Graph{g: peel.KTipSubgraph(g.g, k, s)}, nil
}

// KTipLookAhead computes the same k-tip with the paper's fused
// look-ahead algorithm (Fig 8, KTIP_UNB_VAR1), which applies the mask
// while the butterfly vector is still being computed. The result is
// identical to KTip; the variant exists because its single fused sweep
// has different performance characteristics.
func (g *Graph) KTipLookAhead(k int64, side Side) (*Graph, error) {
	if k < 0 {
		return nil, fmt.Errorf("butterfly: negative k %d", k)
	}
	s, err := side.internal()
	if err != nil {
		return nil, err
	}
	return &Graph{g: peel.KTipLookAhead(g.g, k, s)}, nil
}

// KWing returns the k-wing subgraph: the maximal subgraph in which
// every remaining edge lies in at least k butterflies (equations
// (25)–(27)).
func (g *Graph) KWing(k int64) (*Graph, error) {
	if k < 0 {
		return nil, fmt.Errorf("butterfly: negative k %d", k)
	}
	return &Graph{g: peel.KWingSubgraph(g.g, k)}, nil
}

// TipNumbers returns, for every vertex of the chosen side, the largest
// k such that the vertex survives in the k-tip (its "tip number").
// Computed with a single peeling pass rather than one KTip call per k.
func (g *Graph) TipNumbers(side Side) ([]int64, error) {
	s, err := side.internal()
	if err != nil {
		return nil, err
	}
	return peel.TipDecomposition(g.g, s), nil
}

// KTipParallel is KTip with the per-iteration butterfly vector
// computed by `threads` workers (GOMAXPROCS if ≤ 0); the result is
// identical to KTip.
func (g *Graph) KTipParallel(k int64, side Side, threads int) (*Graph, error) {
	if k < 0 {
		return nil, fmt.Errorf("butterfly: negative k %d", k)
	}
	s, err := side.internal()
	if err != nil {
		return nil, err
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return &Graph{g: peel.KTipParallel(g.g, k, s, threads)}, nil
}

// TipNumbersRounds computes the same tip numbers as TipNumbers with
// round-synchronous (bulk-parallel) peeling: each round removes every
// vertex at or below the current level and recomputes survivors with
// `threads` workers. Identical results; different scaling profile —
// rounds win when the peeling hierarchy is shallow.
func (g *Graph) TipNumbersRounds(side Side, threads int) ([]int64, error) {
	s, err := side.internal()
	if err != nil {
		return nil, err
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return peel.TipDecompositionRounds(g.g, s, threads), nil
}

// WingNumbers returns the wing number of every edge — the largest k
// such that the edge survives in the k-wing — as (u, v, count) tuples
// in row-major edge order.
func (g *Graph) WingNumbers() []EdgeCount {
	return g.wingNumbersFrom(peel.WingDecomposition(g.g))
}

// WingNumbersRounds computes the same wing numbers with
// round-synchronous peeling whose per-round support recomputation uses
// `threads` workers (GOMAXPROCS if ≤ 0). Identical results; rounds win
// when the peeling hierarchy is shallow.
func (g *Graph) WingNumbersRounds(threads int) []EdgeCount {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return g.wingNumbersFrom(peel.WingDecompositionRounds(g.g, threads))
}

// KWingParallel is KWing with each iteration's support matrix computed
// by `threads` workers (GOMAXPROCS if ≤ 0).
func (g *Graph) KWingParallel(k int64, threads int) (*Graph, error) {
	if k < 0 {
		return nil, fmt.Errorf("butterfly: negative k %d", k)
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return &Graph{g: peel.KWingParallel(g.g, k, threads)}, nil
}

// DensestSubgraph holds the result of DensestByButterflies.
type DensestSubgraph struct {
	// Keep marks the surviving vertices of the peeled side; feed it to
	// InducedSubgraph to materialize the subgraph.
	Keep []bool
	// Butterflies and Vertices of the selected subgraph; Density is
	// their ratio.
	Butterflies int64
	Vertices    int
	Density     float64
}

// DensestByButterflies greedily peels minimum-butterfly vertices of
// the chosen side (the tip-decomposition order) and returns the prefix
// maximizing butterflies per retained vertex — the dense-region
// extraction the paper's abstract motivates. On a planted biclique it
// recovers the block exactly.
func (g *Graph) DensestByButterflies(side Side) (DensestSubgraph, error) {
	s, err := side.internal()
	if err != nil {
		return DensestSubgraph{}, err
	}
	r := peel.DensestByButterflies(g.g, s)
	return DensestSubgraph{
		Keep:        r.KeepSide,
		Butterflies: r.Butterflies,
		Vertices:    r.Vertices,
		Density:     r.Density,
	}, nil
}

func (g *Graph) wingNumbersFrom(wing []int64) []EdgeCount {
	adj := g.g.Adj()
	out := make([]EdgeCount, 0, len(wing))
	for u := 0; u < adj.R; u++ {
		row := adj.Row(u)
		for k, v := range row {
			out = append(out, EdgeCount{U: u, V: int(v), Count: wing[adj.Ptr[u]+int64(k)]})
		}
	}
	return out
}
