package butterfly

import (
	"fmt"
	"time"

	"butterfly/internal/peel"
)

// KTip returns the k-tip subgraph with respect to the given side: the
// maximal subgraph in which every non-isolated vertex of that side
// participates in at least k butterflies. Vertex ids are preserved;
// peeled vertices become isolated (the paper's masking semantics,
// equations (19)–(22)).
func (g *Graph) KTip(k int64, side Side) (*Graph, error) {
	if k < 0 {
		return nil, fmt.Errorf("butterfly: negative k %d", k)
	}
	s, err := side.internal()
	if err != nil {
		return nil, err
	}
	return &Graph{g: peel.KTipSubgraph(g.g, k, s)}, nil
}

// KTipLookAhead computes the same k-tip with the paper's fused
// look-ahead algorithm (Fig 8, KTIP_UNB_VAR1), which applies the mask
// while the butterfly vector is still being computed. The result is
// identical to KTip; the variant exists because its single fused sweep
// has different performance characteristics.
func (g *Graph) KTipLookAhead(k int64, side Side) (*Graph, error) {
	if k < 0 {
		return nil, fmt.Errorf("butterfly: negative k %d", k)
	}
	s, err := side.internal()
	if err != nil {
		return nil, err
	}
	return &Graph{g: peel.KTipLookAhead(g.g, k, s)}, nil
}

// KWing returns the k-wing subgraph: the maximal subgraph in which
// every remaining edge lies in at least k butterflies (equations
// (25)–(27)).
func (g *Graph) KWing(k int64) (*Graph, error) {
	if k < 0 {
		return nil, fmt.Errorf("butterfly: negative k %d", k)
	}
	return &Graph{g: peel.KWingSubgraph(g.g, k)}, nil
}

// TipNumbers returns, for every vertex of the chosen side, the largest
// k such that the vertex survives in the k-tip (its "tip number").
// Computed with a single peeling pass rather than one KTip call per k.
func (g *Graph) TipNumbers(side Side) ([]int64, error) {
	s, err := side.internal()
	if err != nil {
		return nil, err
	}
	return peel.TipDecomposition(g.g, s), nil
}

// PeelEngine selects the execution strategy of the parallel peeling
// entry points. Both engines produce bit-identical results (peeling is
// confluent); they differ only in how much work each round does.
type PeelEngine int

const (
	// PeelDelta is the incremental wedge-delta engine (default):
	// bucketed peeling whose work is proportional to the butterflies
	// actually destroyed.
	PeelDelta PeelEngine = iota
	// PeelRecount is the round-synchronous engine: every round
	// recomputes all surviving supports from scratch. Kept as the
	// differential-testing oracle and for few-level workloads with
	// enormous delta fan-out.
	PeelRecount
)

// String names the engine with the wire/CLI spelling.
func (e PeelEngine) String() string {
	if e == PeelRecount {
		return "recount"
	}
	return "delta"
}

// PeelOptions configures an engine-dispatched peeling run.
// PeelOptions deliberately has no Agg knob (unlike CountOptions): the
// peeling engines run per-vertex and per-edge masked counters whose
// outputs are indexed by vertex/edge id, which requires the dense
// histogram accumulator — the sort/hash/batch wedge-aggregation
// kernels only apply to scalar whole-graph counts. This is the same
// reason hub-split segments always aggregate through the histogram.
type PeelOptions struct {
	// Engine selects the delta (zero value) or recount execution.
	Engine PeelEngine
	// Threads is the worker count; ≤ 0 means one per CPU.
	Threads int
	// Stage, when non-nil, receives named sub-stage timings:
	// "peel.seed" for the initial butterfly/support sweep and
	// "peel.round[i]" for every peeled batch or recompute round. The
	// hook fires once per round — never inside the wedge kernels — so
	// a nil hook costs one predictable branch per round. The serving
	// layer adapts this to trace spans.
	Stage func(stage string, d time.Duration)
}

// PeelStats reports how a peeling run executed.
type PeelStats struct {
	// Engine is the engine that actually ran.
	Engine PeelEngine
	// Rounds is the number of peeled batches (delta) or recompute
	// rounds (recount). Engines legitimately differ here: the delta
	// engine counts the sub-rounds its cascades replay.
	Rounds int
}

func (o PeelOptions) internal() peel.Options {
	po := peel.Options{Threads: o.Threads, Stage: o.Stage}
	if o.Engine == PeelRecount {
		po.Engine = peel.EngineRecount
	}
	return po
}

// TipNumbersWith computes tip numbers on the engine selected by opts.
// Results are identical across engines.
func (g *Graph) TipNumbersWith(side Side, opts PeelOptions) ([]int64, PeelStats, error) {
	s, err := side.internal()
	if err != nil {
		return nil, PeelStats{}, err
	}
	tip, st := peel.TipNumbersWith(g.g, s, opts.internal())
	return tip, PeelStats{Engine: opts.Engine, Rounds: st.Rounds}, nil
}

// WingNumbersWith computes wing numbers on the engine selected by opts.
// Results are identical across engines.
func (g *Graph) WingNumbersWith(opts PeelOptions) ([]EdgeCount, PeelStats) {
	wing, st := peel.WingNumbersWith(g.g, opts.internal())
	return g.wingNumbersFrom(wing), PeelStats{Engine: opts.Engine, Rounds: st.Rounds}
}

// KTipWith extracts the k-tip subgraph on the engine selected by opts.
func (g *Graph) KTipWith(k int64, side Side, opts PeelOptions) (*Graph, PeelStats, error) {
	if k < 0 {
		return nil, PeelStats{}, fmt.Errorf("butterfly: negative k %d", k)
	}
	s, err := side.internal()
	if err != nil {
		return nil, PeelStats{}, err
	}
	sub, st := peel.KTipWith(g.g, k, s, opts.internal())
	return &Graph{g: sub}, PeelStats{Engine: opts.Engine, Rounds: st.Rounds}, nil
}

// KWingWith extracts the k-wing subgraph on the engine selected by opts.
func (g *Graph) KWingWith(k int64, opts PeelOptions) (*Graph, PeelStats, error) {
	if k < 0 {
		return nil, PeelStats{}, fmt.Errorf("butterfly: negative k %d", k)
	}
	sub, st := peel.KWingWith(g.g, k, opts.internal())
	return &Graph{g: sub}, PeelStats{Engine: opts.Engine, Rounds: st.Rounds}, nil
}

// KTipParallel is KTip computed by `threads` workers (GOMAXPROCS if
// ≤ 0) on the default incremental (delta) engine; the result is
// identical to KTip. Use KTipWith to pick the engine explicitly.
func (g *Graph) KTipParallel(k int64, side Side, threads int) (*Graph, error) {
	sub, _, err := g.KTipWith(k, side, PeelOptions{Threads: threads})
	return sub, err
}

// TipNumbersRounds computes the same tip numbers as TipNumbers with
// bulk-parallel peeling on the default incremental (delta) engine:
// batches are peeled level by level and only the supports each batch
// actually changes are updated, by `threads` workers. Identical
// results; the delta engine wins whenever recomputation would dominate.
// Use TipNumbersWith to pick the engine explicitly.
func (g *Graph) TipNumbersRounds(side Side, threads int) ([]int64, error) {
	tip, _, err := g.TipNumbersWith(side, PeelOptions{Threads: threads})
	return tip, err
}

// WingNumbers returns the wing number of every edge — the largest k
// such that the edge survives in the k-wing — as (u, v, count) tuples
// in row-major edge order.
func (g *Graph) WingNumbers() []EdgeCount {
	return g.wingNumbersFrom(peel.WingDecomposition(g.g))
}

// WingNumbersRounds computes the same wing numbers as WingNumbers with
// bulk-parallel peeling on the default incremental (delta) engine,
// using `threads` workers (GOMAXPROCS if ≤ 0). Identical results. Use
// WingNumbersWith to pick the engine explicitly.
func (g *Graph) WingNumbersRounds(threads int) []EdgeCount {
	wing, _ := g.WingNumbersWith(PeelOptions{Threads: threads})
	return wing
}

// KWingParallel is KWing computed by `threads` workers (GOMAXPROCS if
// ≤ 0) on the default incremental (delta) engine. Use KWingWith to
// pick the engine explicitly.
func (g *Graph) KWingParallel(k int64, threads int) (*Graph, error) {
	sub, _, err := g.KWingWith(k, PeelOptions{Threads: threads})
	return sub, err
}

// DensestSubgraph holds the result of DensestByButterflies.
type DensestSubgraph struct {
	// Keep marks the surviving vertices of the peeled side; feed it to
	// InducedSubgraph to materialize the subgraph.
	Keep []bool
	// Butterflies and Vertices of the selected subgraph; Density is
	// their ratio.
	Butterflies int64
	Vertices    int
	Density     float64
}

// DensestByButterflies greedily peels minimum-butterfly vertices of
// the chosen side (the tip-decomposition order) and returns the prefix
// maximizing butterflies per retained vertex — the dense-region
// extraction the paper's abstract motivates. On a planted biclique it
// recovers the block exactly.
func (g *Graph) DensestByButterflies(side Side) (DensestSubgraph, error) {
	s, err := side.internal()
	if err != nil {
		return DensestSubgraph{}, err
	}
	r := peel.DensestByButterflies(g.g, s)
	return DensestSubgraph{
		Keep:        r.KeepSide,
		Butterflies: r.Butterflies,
		Vertices:    r.Vertices,
		Density:     r.Density,
	}, nil
}

func (g *Graph) wingNumbersFrom(wing []int64) []EdgeCount {
	adj := g.g.Adj()
	out := make([]EdgeCount, 0, len(wing))
	for u := 0; u < adj.R; u++ {
		row := adj.Row(u)
		for k, v := range row {
			out = append(out, EdgeCount{U: u, V: int(v), Count: wing[adj.Ptr[u]+int64(k)]})
		}
	}
	return out
}
