package butterfly

import "testing"

func TestLabeledBuilder(t *testing.T) {
	b := NewLabeledBuilder().
		AddEdge("alice", "go").
		AddEdge("alice", "graphs").
		AddEdge("bob", "go").
		AddEdge("bob", "graphs").
		AddEdge("alice", "go") // duplicate
	if b.Len() != 5 {
		t.Fatalf("Len = %d", b.Len())
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumV1() != 2 || g.NumV2() != 2 || g.NumEdges() != 4 {
		t.Fatalf("shape: %s", g.Graph)
	}
	if g.Count() != 1 {
		t.Fatalf("Count = %d", g.Count())
	}

	id, ok := g.IDV1("alice")
	if !ok || id != 0 {
		t.Fatalf("IDV1(alice) = %d, %v", id, ok)
	}
	if _, ok := g.IDV1("carol"); ok {
		t.Fatal("unknown label found")
	}
	name, err := g.LabelV2(1)
	if err != nil || name != "graphs" {
		t.Fatalf("LabelV2(1) = %q, %v", name, err)
	}
	if _, err := g.LabelV1(9); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := g.LabelV2(-1); err == nil {
		t.Fatal("negative label accepted")
	}

	if !g.HasEdgeLabeled("alice", "go") {
		t.Fatal("labeled edge missing")
	}
	if g.HasEdgeLabeled("carol", "go") || g.HasEdgeLabeled("alice", "chess") {
		t.Fatal("phantom labeled edge")
	}
}

func TestLabeledGraphComposesWithAnalysis(t *testing.T) {
	// All Graph methods are promoted: run a peel on a labeled graph and
	// translate the result back to labels.
	b := NewLabeledBuilder()
	for _, u := range []string{"u1", "u2", "u3"} {
		for _, v := range []string{"v1", "v2", "v3"} {
			b.AddEdge(u, v)
		}
	}
	b.AddEdge("loner", "v1")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tip, err := g.KTip(1, V1)
	if err != nil {
		t.Fatal(err)
	}
	lonerID, _ := g.IDV1("loner")
	if tip.DegreeV1(lonerID) != 0 {
		t.Fatal("loner should be peeled from the 1-tip")
	}
	u1, _ := g.IDV1("u1")
	if tip.DegreeV1(u1) == 0 {
		t.Fatal("biclique member should survive")
	}
}

func TestLabeledBuilderEmpty(t *testing.T) {
	g, err := NewLabeledBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumV1() != 0 || g.NumEdges() != 0 || g.Count() != 0 {
		t.Fatal("empty labeled graph wrong")
	}
}
