package butterfly

import (
	"io"

	"butterfly/internal/graph"
	"butterfly/internal/matrixmarket"
)

// ReadMatrixMarket parses a biadjacency matrix in MatrixMarket
// coordinate format (rows = V1, columns = V2; pattern, integer or real
// fields; any non-zero value is an edge).
func ReadMatrixMarket(r io.Reader) (*Graph, error) {
	g, err := matrixmarket.ReadGraph(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// ReadMatrixMarketFile reads a MatrixMarket file from disk.
func ReadMatrixMarketFile(path string) (*Graph, error) {
	g, err := matrixmarket.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// WriteMatrixMarket emits the biadjacency matrix in MatrixMarket
// coordinate-pattern format.
func (g *Graph) WriteMatrixMarket(w io.Writer) error {
	return matrixmarket.WriteGraph(w, g.g)
}

// WriteMatrixMarketFile writes the graph to the named file.
func (g *Graph) WriteMatrixMarketFile(path string) error {
	return matrixmarket.WriteFile(path, g.g)
}

// Components labels connected components: the returned slices give a
// 0-based component id for every V1 and V2 vertex (isolated vertices
// get singleton components), plus the component count. Butterflies
// never span components, so large analyses can shard by them.
func (g *Graph) Components() (compV1, compV2 []int, count int) {
	c1, c2, n := graph.Components(g.g)
	compV1 = make([]int, len(c1))
	for i, c := range c1 {
		compV1[i] = int(c)
	}
	compV2 = make([]int, len(c2))
	for i, c := range c2 {
		compV2[i] = int(c)
	}
	return compV1, compV2, n
}

// LargestComponent returns the subgraph induced by the component with
// the most edges; vertex ids are preserved.
func (g *Graph) LargestComponent() *Graph {
	return &Graph{g: graph.LargestComponent(g.g)}
}

// WriteDOT renders the graph in Graphviz DOT format (V1 as boxes, V2
// as ellipses) for visual inspection of small graphs and peeling
// results.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	return graph.WriteDOT(w, g.g, name)
}

// DegreeHistogram returns hist[d] = number of vertices of the side
// with degree d.
func (g *Graph) DegreeHistogram(side Side) []int64 {
	return graph.DegreeHistogram(g.g, side == V1)
}

// DegreeGini returns the Gini coefficient of the side's degree
// distribution: 0 = uniform, → 1 = hub-dominated. High values predict
// chunk-level load imbalance in the parallel counting loop.
func (g *Graph) DegreeGini(side Side) float64 {
	return graph.DegreeGini(g.g, side == V1)
}
