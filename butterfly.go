// Package butterfly counts, enumerates and peels butterflies (2×2
// bicliques) in bipartite graphs.
//
// It is a Go implementation of "Families of Butterfly Counting
// Algorithms for Bipartite Graphs" (Acosta, Low, Parikh; IPPS 2022):
// the paper derives eight provably-correct counting algorithms from a
// single linear-algebraic specification with the FLAME methodology, and
// extends the same formulation to k-tip and k-wing peeling. This
// package exposes the whole family (Invariant1 … Invariant8) plus
// sequential, parallel and blocked execution, per-vertex and per-edge
// butterfly counts, tip/wing subgraphs and decompositions, sampling
// estimators, and KONECT-format I/O.
//
// # Quick start
//
//	b := butterfly.NewBuilder(2, 2)
//	b.AddEdge(0, 0)
//	b.AddEdge(0, 1)
//	b.AddEdge(1, 0)
//	b.AddEdge(1, 1)
//	g := b.MustBuild()
//	fmt.Println(g.Count()) // 1
//
// Unless an explicit Invariant is requested, counting uses the paper's
// selection rule: partition the smaller vertex side, preferring the
// look-ahead family member.
package butterfly

import (
	"errors"
	"fmt"
	"io"

	"butterfly/internal/core"
	"butterfly/internal/graph"
	"butterfly/internal/konect"
)

// Graph is an immutable simple bipartite graph with vertex sets V1
// (size m) and V2 (size n). Zero value is not usable; construct with
// Builder, FromEdges, the generators, or the KONECT readers.
type Graph struct {
	g *graph.Bipartite
}

// Builder accumulates edges for a Graph. Duplicate edges collapse.
type Builder struct {
	b    *graph.Builder
	m, n int
	err  error
}

// NewBuilder returns a builder for a graph with |V1| = m, |V2| = n.
func NewBuilder(m, n int) *Builder {
	if m < 0 || n < 0 {
		return &Builder{err: fmt.Errorf("butterfly: negative vertex-set size %d/%d", m, n)}
	}
	return &Builder{b: graph.NewBuilder(m, n), m: m, n: n}
}

// AddEdge records the edge (u ∈ V1, v ∈ V2). Out-of-range endpoints
// are recorded as an error returned by Build.
func (b *Builder) AddEdge(u, v int) *Builder {
	if b.err != nil {
		return b
	}
	if u < 0 || u >= b.m || v < 0 || v >= b.n {
		b.err = fmt.Errorf("butterfly: edge (%d,%d) out of range %dx%d", u, v, b.m, b.n)
		return b
	}
	b.b.AddEdge(u, v)
	return b
}

// Build finalizes the graph or reports the first recorded error.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	return &Graph{g: b.b.Build()}, nil
}

// MustBuild is Build for statically-known-good edge sets; it panics on
// error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges builds a graph from (u, v) pairs.
func FromEdges(m, n int, edges [][2]int) (*Graph, error) {
	b := NewBuilder(m, n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// ReadKONECT parses a bipartite edge list in KONECT format (see
// internal/konect for the dialect).
func ReadKONECT(r io.Reader) (*Graph, error) {
	g, err := konect.ReadGraph(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// ReadKONECTFile reads a KONECT file from disk.
func ReadKONECTFile(path string) (*Graph, error) {
	g, err := konect.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// WriteKONECT emits the graph in KONECT format.
func (g *Graph) WriteKONECT(w io.Writer) error { return konect.WriteGraph(w, g.g) }

// WriteKONECTFile writes the graph to the named file.
func (g *Graph) WriteKONECTFile(path string) error { return konect.WriteFile(path, g.g) }

// NumV1 returns |V1|.
func (g *Graph) NumV1() int { return g.g.NumV1() }

// NumV2 returns |V2|.
func (g *Graph) NumV2() int { return g.g.NumV2() }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int64 { return g.g.NumEdges() }

// HasEdge reports whether (u, v) ∈ E; out-of-range endpoints are false.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.NumV1() || v < 0 || v >= g.NumV2() {
		return false
	}
	return g.g.HasEdge(u, v)
}

// DegreeV1 returns the degree of u ∈ V1.
func (g *Graph) DegreeV1(u int) int { return g.g.DegreeV1(u) }

// DegreeV2 returns the degree of v ∈ V2.
func (g *Graph) DegreeV2(v int) int { return g.g.DegreeV2(v) }

// NeighborsV1 returns a copy of u's neighbor list (V2 ids, ascending).
func (g *Graph) NeighborsV1(u int) []int {
	nbrs := g.g.NeighborsOfV1(u)
	out := make([]int, len(nbrs))
	for i, v := range nbrs {
		out[i] = int(v)
	}
	return out
}

// NeighborsV2 returns a copy of v's neighbor list (V1 ids, ascending).
func (g *Graph) NeighborsV2(v int) []int {
	nbrs := g.g.NeighborsOfV2(v)
	out := make([]int, len(nbrs))
	for i, u := range nbrs {
		out[i] = int(u)
	}
	return out
}

// Edges returns the edge list as (u, v) pairs in row-major order.
func (g *Graph) Edges() [][2]int {
	es := g.g.Edges()
	out := make([][2]int, len(es))
	for i, e := range es {
		out[i] = [2]int{int(e.U), int(e.V)}
	}
	return out
}

// Transposed returns the graph with the vertex sides swapped; storage
// is shared.
func (g *Graph) Transposed() *Graph { return &Graph{g: g.g.Transposed()} }

// Equal reports whether two graphs have identical sizes and edge sets.
func (g *Graph) Equal(h *Graph) bool { return g.g.Equal(h.g) }

// Density returns |E| / (|V1|·|V2|).
func (g *Graph) Density() float64 { return g.g.Density() }

// String summarizes the graph.
func (g *Graph) String() string { return g.g.String() }

// Stats summarizes the graph with the quantities the paper's Fig 9
// and Section V analysis use.
type Stats struct {
	NumV1, NumV2       int
	NumEdges           int64
	Density            float64
	MinDegV1, MaxDegV1 int
	MinDegV2, MaxDegV2 int
	AvgDegV1, AvgDegV2 float64
	// WedgesV1 counts wedges with both endpoints in V1 (these are what
	// the column-partitioned family enumerates); WedgesV2 symmetric.
	WedgesV1, WedgesV2 int64
}

// Stats computes summary statistics in one pass per side.
func (g *Graph) Stats() Stats {
	s := graph.ComputeStats(g.g)
	return Stats{
		NumV1: s.NumV1, NumV2: s.NumV2, NumEdges: s.NumEdges, Density: s.Density,
		MinDegV1: s.MinDegV1, MaxDegV1: s.MaxDegV1,
		MinDegV2: s.MinDegV2, MaxDegV2: s.MaxDegV2,
		AvgDegV1: s.AvgDegV1, AvgDegV2: s.AvgDegV2,
		WedgesV1: s.WedgesV1, WedgesV2: s.WedgesV2,
	}
}

// Side selects one bipartition side.
type Side int

const (
	// V1 is the row side of the biadjacency matrix.
	V1 Side = iota
	// V2 is the column side.
	V2
)

// String names the side.
func (s Side) String() string {
	if s == V1 {
		return "V1"
	}
	return "V2"
}

func (s Side) internal() (core.Side, error) {
	switch s {
	case V1:
		return core.SideV1, nil
	case V2:
		return core.SideV2, nil
	default:
		return 0, fmt.Errorf("butterfly: invalid side %d", int(s))
	}
}

var errNilGraph = errors.New("butterfly: nil graph")
