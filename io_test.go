package butterfly

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	g := randGraph(t, 11, 15, 20, 0.3)
	var buf bytes.Buffer
	if err := g.WriteMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) || back.Count() != g.Count() {
		t.Fatal("MatrixMarket round trip changed the graph")
	}
	if _, err := ReadMatrixMarket(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMatrixMarketFileRoundTrip(t *testing.T) {
	g := k22(t)
	path := filepath.Join(t.TempDir(), "g.mtx")
	if err := g.WriteMatrixMarketFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarketFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatal("file round trip differs")
	}
	if _, err := ReadMatrixMarketFile("/no/such/file.mtx"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCrossFormatConsistency(t *testing.T) {
	// The same graph through both formats parses identically.
	g := randGraph(t, 12, 10, 10, 0.4)
	var km, mm bytes.Buffer
	if err := g.WriteKONECT(&km); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteMatrixMarket(&mm); err != nil {
		t.Fatal(err)
	}
	a, err := ReadKONECT(&km)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&mm)
	if err != nil {
		t.Fatal(err)
	}
	if a.Count() != b.Count() || a.NumEdges() != b.NumEdges() {
		t.Fatal("formats disagree")
	}
}

func TestComponentsAPI(t *testing.T) {
	g, err := FromEdges(4, 4, [][2]int{{0, 0}, {1, 0}, {2, 2}, {2, 3}, {3, 2}, {3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	c1, c2, n := g.Components()
	if len(c1) != 4 || len(c2) != 4 {
		t.Fatal("component slice lengths wrong")
	}
	if n != 3 { // {u0,u1,v0}, {u2,u3,v2,v3}, isolated v1
		t.Fatalf("components = %d, want 3", n)
	}
	if c1[0] != c1[1] || c1[2] != c1[3] || c1[0] == c1[2] {
		t.Fatal("component labels wrong")
	}

	lc := g.LargestComponent()
	if lc.NumEdges() != 4 {
		t.Fatalf("largest component edges = %d, want 4", lc.NumEdges())
	}
	if lc.Count() != 1 {
		t.Fatalf("largest component butterflies = %d, want 1", lc.Count())
	}
}

func TestDynamicCounterAPI(t *testing.T) {
	d, err := NewDynamicCounter(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDynamicCounter(-1, 2); err == nil {
		t.Fatal("negative size accepted")
	}

	for _, e := range [][2]int{{0, 0}, {0, 1}, {1, 0}} {
		added, created, err := d.InsertEdge(e[0], e[1])
		if err != nil || !added || created != 0 {
			t.Fatalf("insert %v: %v %d %v", e, added, created, err)
		}
	}
	added, created, err := d.InsertEdge(1, 1)
	if err != nil || !added || created != 1 {
		t.Fatalf("closing insert: %v %d %v", added, created, err)
	}
	if d.Count() != 1 || d.NumEdges() != 4 {
		t.Fatalf("state: count=%d edges=%d", d.Count(), d.NumEdges())
	}
	if !d.HasEdge(1, 1) || d.HasEdge(5, 5) {
		t.Fatal("HasEdge wrong")
	}

	removed, destroyed, err := d.DeleteEdge(0, 0)
	if err != nil || !removed || destroyed != 1 || d.Count() != 0 {
		t.Fatalf("delete: %v %d %v count=%d", removed, destroyed, err, d.Count())
	}

	if _, _, err := d.InsertEdge(9, 0); err == nil {
		t.Fatal("out-of-range insert accepted")
	}
	if _, _, err := d.DeleteEdge(0, 9); err == nil {
		t.Fatal("out-of-range delete accepted")
	}

	snap := d.Snapshot()
	if snap.NumEdges() != 3 || snap.Count() != 0 {
		t.Fatal("snapshot wrong")
	}
}

func TestDynamicCounterTracksStatic(t *testing.T) {
	g := randGraph(t, 13, 30, 25, 0.2)
	d := NewDynamicCounterFromGraph(g)
	if d.Count() != g.Count() {
		t.Fatalf("seeded count %d, static %d", d.Count(), g.Count())
	}
	// Remove some edges and cross-check against a static recount.
	edges := g.Edges()
	for i := 0; i < len(edges)/2; i++ {
		if _, _, err := d.DeleteEdge(edges[i][0], edges[i][1]); err != nil {
			t.Fatal(err)
		}
	}
	if d.Count() != d.Snapshot().Count() {
		t.Fatalf("dynamic %d, static recount %d", d.Count(), d.Snapshot().Count())
	}
}

func TestEstimateSparsifyAPI(t *testing.T) {
	g, err := GenerateComplete(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	est, err := g.EstimateCount(EstimateOptions{Strategy: SampleSparsify, P: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if est != float64(g.Count()) {
		t.Fatalf("P=1 sparsify: %f, want %d", est, g.Count())
	}
	if _, err := g.EstimateCount(EstimateOptions{Strategy: SampleSparsify, P: 0}); err == nil {
		t.Fatal("P=0 accepted")
	}
	if _, err := g.EstimateCount(EstimateOptions{Strategy: SampleSparsify, P: 1.5}); err == nil {
		t.Fatal("P>1 accepted")
	}
}

func TestCountWithAlgorithms(t *testing.T) {
	g := randGraph(t, 31, 50, 40, 0.2)
	want := g.Count()
	for _, alg := range []Algorithm{AlgorithmFamily, AlgorithmWedgeHash,
		AlgorithmVertexPriority, AlgorithmSortAggregate, AlgorithmSpGEMM} {
		for _, threads := range []int{0, 3} {
			got, err := g.CountWith(CountOptions{Algorithm: alg, Threads: threads})
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			if got != want {
				t.Errorf("%v threads=%d: %d, want %d", alg, threads, got, want)
			}
		}
	}
	// Degree ordering composes with every algorithm.
	got, err := g.CountWith(CountOptions{Algorithm: AlgorithmSortAggregate, Order: OrderDegreeDesc})
	if err != nil || got != want {
		t.Fatalf("ordered sort-aggregate: %d, %v", got, err)
	}
	// Negative threads means GOMAXPROCS.
	got, err = g.CountWith(CountOptions{Algorithm: AlgorithmSpGEMM, Threads: -1})
	if err != nil || got != want {
		t.Fatalf("spgemm GOMAXPROCS: %d, %v", got, err)
	}
}

func TestCountWithAlgorithmErrors(t *testing.T) {
	g := k22(t)
	if _, err := g.CountWith(CountOptions{Algorithm: Algorithm(9)}); err == nil {
		t.Fatal("invalid algorithm accepted")
	}
	if _, err := g.CountWith(CountOptions{Algorithm: AlgorithmWedgeHash, Invariant: Invariant3}); err == nil {
		t.Fatal("invariant with non-family algorithm accepted")
	}
	if AlgorithmFamily.String() != "family" || AlgorithmSpGEMM.String() != "spgemm" ||
		Algorithm(9).String() != "Algorithm(9)" {
		t.Fatal("Algorithm.String wrong")
	}
}

func TestWingRoundsAndParallelAPI(t *testing.T) {
	g := randGraph(t, 32, 25, 20, 0.3)
	want := g.WingNumbers()
	got := g.WingNumbersRounds(3)
	if len(got) != len(want) {
		t.Fatal("length mismatch")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: rounds %+v, heap %+v", i, got[i], want[i])
		}
	}
	gotAuto := g.WingNumbersRounds(0)
	for i := range want {
		if gotAuto[i] != want[i] {
			t.Fatal("GOMAXPROCS rounds differ")
		}
	}

	for _, k := range []int64{0, 1, 2} {
		seqW, err := g.KWing(k)
		if err != nil {
			t.Fatal(err)
		}
		parW, err := g.KWingParallel(k, 3)
		if err != nil || !parW.Equal(seqW) {
			t.Fatalf("k=%d: parallel k-wing differs (%v)", k, err)
		}
	}
	if _, err := g.KWingParallel(-1, 2); err == nil {
		t.Fatal("negative k accepted")
	}
}

func TestPreferentialAttachmentAndDegreeStats(t *testing.T) {
	g, err := GeneratePreferentialAttachment(200, 150, 1200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges generated")
	}
	hist := g.DegreeHistogram(V1)
	var total int64
	for _, c := range hist {
		total += c
	}
	if total != 200 {
		t.Fatalf("histogram covers %d vertices, want 200", total)
	}
	gini := g.DegreeGini(V1)
	if gini <= 0 || gini >= 1 {
		t.Fatalf("preferential attachment Gini = %f, want in (0,1)", gini)
	}
	// Uniform graph has lower skew than preferential attachment.
	uni, err := GenerateGnm(200, 150, 1200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.DegreeGini(V1) <= uni.DegreeGini(V1) {
		t.Fatalf("PA Gini %f not above Gnm Gini %f", g.DegreeGini(V1), uni.DegreeGini(V1))
	}

	if _, err := GeneratePreferentialAttachment(0, 5, 1, 1); err == nil {
		t.Fatal("zero side accepted")
	}
	if _, err := GeneratePreferentialAttachment(5, 5, -1, 1); err == nil {
		t.Fatal("negative edges accepted")
	}
}

func TestWriteDOTAPI(t *testing.T) {
	var sb strings.Builder
	if err := k22(t).WriteDOT(&sb, "k22"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "u0 -- v0;") {
		t.Fatalf("DOT output: %q", sb.String())
	}
}

func TestStreamEstimatorAPI(t *testing.T) {
	g, err := GenerateComplete(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewStreamEstimator(4, 4, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if err := est.Add(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if est.Seen() != 16 {
		t.Fatalf("Seen = %d", est.Seen())
	}
	if got := est.Estimate(); got != 36 {
		t.Fatalf("exact-regime estimate %f, want 36", got)
	}
	if err := est.Add(9, 0); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := NewStreamEstimator(-1, 2, 10, 1); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := NewStreamEstimator(2, 2, 3, 1); err == nil {
		t.Fatal("tiny reservoir accepted")
	}
}

func TestStreamEstimatorSubsampled(t *testing.T) {
	g, err := GeneratePowerLaw(150, 120, 1500, 0.7, 0.7, 6)
	if err != nil {
		t.Fatal(err)
	}
	exact := float64(g.Count())
	var sum float64
	const trials = 30
	for seed := int64(0); seed < trials; seed++ {
		est, err := NewStreamEstimator(150, 120, 600, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range g.Edges() {
			if err := est.Add(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		sum += est.Estimate()
	}
	mean := sum / trials
	if exact > 0 && (mean < exact/2 || mean > exact*2) {
		t.Fatalf("mean estimate %.0f far from exact %.0f", mean, exact)
	}
}

func TestGraphJSONRoundTrip(t *testing.T) {
	src := randGraph(t, 81, 12, 9, 0.3)
	data, err := json.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(src) || back.Count() != src.Count() {
		t.Fatal("JSON round trip changed the graph")
	}
	// Isolated trailing vertices survive (unlike KONECT).
	iso, err := FromEdges(5, 5, [][2]int{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	data, _ = json.Marshal(iso)
	var back2 Graph
	if err := json.Unmarshal(data, &back2); err != nil {
		t.Fatal(err)
	}
	if back2.NumV1() != 5 || back2.NumV2() != 5 {
		t.Fatal("sizes lost in JSON round trip")
	}

	var bad Graph
	if err := json.Unmarshal([]byte(`{"v1":1,"v2":1,"edges":[[5,5]]}`), &bad); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := json.Unmarshal([]byte(`not json`), &bad); err == nil {
		t.Fatal("garbage accepted")
	}
}
