package butterfly

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// k22 is the single-butterfly graph.
func k22(t testing.TB) *Graph {
	t.Helper()
	g, err := FromEdges(2, 2, [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randGraph(t testing.TB, seed int64, m, n int, p float64) *Graph {
	t.Helper()
	g, err := GenerateErdosRenyi(m, n, p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderHappyPath(t *testing.T) {
	g := k22(t)
	if g.NumV1() != 2 || g.NumV2() != 2 || g.NumEdges() != 4 {
		t.Fatalf("shape: %s", g)
	}
	if g.Count() != 1 {
		t.Fatalf("Count = %d, want 1", g.Count())
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(-1, 2).Build(); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := NewBuilder(2, 2).AddEdge(2, 0).Build(); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	// Errors stick: later valid edges don't clear them.
	if _, err := NewBuilder(2, 2).AddEdge(5, 5).AddEdge(0, 0).Build(); err == nil {
		t.Fatal("error did not stick")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on error")
		}
	}()
	NewBuilder(1, 1).AddEdge(9, 9).MustBuild()
}

func TestAccessors(t *testing.T) {
	g, err := FromEdges(3, 2, [][2]int{{0, 0}, {0, 1}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
	if g.HasEdge(-1, 0) || g.HasEdge(0, 5) {
		t.Fatal("out-of-range HasEdge should be false")
	}
	if g.DegreeV1(0) != 2 || g.DegreeV2(1) != 2 {
		t.Fatal("degrees wrong")
	}
	if n := g.NeighborsV1(0); len(n) != 2 || n[0] != 0 || n[1] != 1 {
		t.Fatalf("NeighborsV1 = %v", n)
	}
	if n := g.NeighborsV2(1); len(n) != 2 || n[0] != 0 || n[1] != 2 {
		t.Fatalf("NeighborsV2 = %v", n)
	}
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("Edges len %d", len(es))
	}
	back, err := FromEdges(3, 2, es)
	if err != nil || !back.Equal(g) {
		t.Fatal("edge round trip failed")
	}
	if g.Density() != 0.5 {
		t.Fatalf("Density = %f", g.Density())
	}
	if !strings.Contains(g.String(), "|E|=3") {
		t.Fatalf("String = %q", g.String())
	}
	tr := g.Transposed()
	if tr.NumV1() != 2 || !tr.HasEdge(1, 2) {
		t.Fatal("Transposed wrong")
	}
}

func TestStats(t *testing.T) {
	g := k22(t)
	s := g.Stats()
	if s.NumEdges != 4 || s.WedgesV1 != 2 || s.WedgesV2 != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxDegV1 != 2 || s.AvgDegV2 != 2 {
		t.Fatalf("stats degrees = %+v", s)
	}
}

func TestCountAllInvariantsAgree(t *testing.T) {
	g := randGraph(t, 3, 60, 40, 0.15)
	want := g.Count()
	for inv := Invariant1; inv <= Invariant8; inv++ {
		got, err := g.CountInvariant(inv)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%v: %d, want %d", inv, got, want)
		}
	}
	if got, err := g.CountWith(CountOptions{}); err != nil || got != want {
		t.Fatalf("auto CountWith: %d, %v", got, err)
	}
}

func TestCountParallelAndVariants(t *testing.T) {
	g := randGraph(t, 4, 100, 80, 0.1)
	want := g.Count()
	if got := g.CountParallel(4); got != want {
		t.Fatalf("parallel: %d, want %d", got, want)
	}
	if got := g.CountParallel(0); got != want {
		t.Fatalf("parallel GOMAXPROCS: %d, want %d", got, want)
	}
	got, err := g.CountWith(CountOptions{Invariant: Invariant5, BlockSize: 32})
	if err != nil || got != want {
		t.Fatalf("blocked: %d, %v", got, err)
	}
	got, err = g.CountWith(CountOptions{Order: OrderDegreeDesc, Threads: 2})
	if err != nil || got != want {
		t.Fatalf("ordered parallel: %d, %v", got, err)
	}
}

func TestCountWithErrors(t *testing.T) {
	g := k22(t)
	if _, err := g.CountWith(CountOptions{Invariant: Invariant(42)}); err == nil {
		t.Fatal("invalid invariant accepted")
	}
	if _, err := g.CountWith(CountOptions{BlockSize: -2}); err == nil {
		t.Fatal("negative block size accepted")
	}
	if _, err := g.CountWith(CountOptions{Order: Order(9)}); err == nil {
		t.Fatal("invalid order accepted")
	}
	var nilG *Graph
	if _, err := nilG.CountWith(CountOptions{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestInvariantStrings(t *testing.T) {
	if InvariantAuto.String() != "auto" || Invariant3.String() != "Inv3" {
		t.Fatal("Invariant.String wrong")
	}
	if Invariant(77).String() != "Invariant(77)" {
		t.Fatal("invalid Invariant.String wrong")
	}
	if !Invariant8.Valid() || Invariant(9).Valid() {
		t.Fatal("Valid wrong")
	}
	if V1.String() != "V1" || V2.String() != "V2" {
		t.Fatal("Side.String wrong")
	}
}

func TestVertexButterfliesAndEdgeSupports(t *testing.T) {
	g := randGraph(t, 5, 40, 30, 0.2)
	total := g.Count()

	for _, side := range []Side{V1, V2} {
		s, err := g.VertexButterflies(side)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, v := range s {
			sum += v
		}
		if sum != 2*total {
			t.Errorf("side %v: Σ = %d, want %d", side, sum, 2*total)
		}
	}
	if _, err := g.VertexButterflies(Side(5)); err == nil {
		t.Fatal("invalid side accepted")
	}

	var supSum int64
	sups := g.EdgeSupports()
	if int64(len(sups)) != g.NumEdges() {
		t.Fatalf("EdgeSupports len %d, want %d", len(sups), g.NumEdges())
	}
	for _, e := range sups {
		supSum += e.Count
	}
	if supSum != 4*total {
		t.Fatalf("Σ supports = %d, want %d", supSum, 4*total)
	}
}

func TestWedgesAndClustering(t *testing.T) {
	g := k22(t)
	w1, w2 := g.Wedges()
	if w1 != 2 || w2 != 2 {
		t.Fatalf("Wedges = %d, %d", w1, w2)
	}
	if cc := g.ClusteringCoefficient(); cc != 1 {
		t.Fatalf("cc = %f", cc)
	}
}

func TestButterfliesEnumeration(t *testing.T) {
	g, err := GenerateComplete(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	var got []Butterfly
	g.Butterflies(func(b Butterfly) bool {
		got = append(got, b)
		return true
	})
	if int64(len(got)) != g.Count() {
		t.Fatalf("enumerated %d, count %d", len(got), g.Count())
	}
	for _, b := range got {
		for _, e := range [][2]int{{b.U1, b.W1}, {b.U1, b.W2}, {b.U2, b.W1}, {b.U2, b.W2}} {
			if !g.HasEdge(e[0], e[1]) {
				t.Fatalf("enumerated non-butterfly %+v", b)
			}
		}
	}
	// Early stop.
	n := 0
	g.Butterflies(func(Butterfly) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestEstimateCount(t *testing.T) {
	g, err := GenerateComplete(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	exact := float64(g.Count())
	for _, strat := range []EstimateStrategy{SampleVertices, SampleEdges} {
		est, err := g.EstimateCount(EstimateOptions{Strategy: strat, Samples: 3, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if est != exact {
			t.Errorf("strategy %d on uniform graph: %f, want %f", strat, est, exact)
		}
	}
	if _, err := g.EstimateCount(EstimateOptions{Samples: 0}); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := g.EstimateCount(EstimateOptions{Strategy: EstimateStrategy(7), Samples: 1}); err == nil {
		t.Fatal("invalid strategy accepted")
	}
}

func TestVerify(t *testing.T) {
	if err := randGraph(t, 6, 50, 40, 0.15).Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestKONECTRoundTrip(t *testing.T) {
	g := randGraph(t, 7, 20, 20, 0.3)
	var buf bytes.Buffer
	if err := g.WriteKONECT(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadKONECT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() || back.Count() != g.Count() {
		t.Fatal("KONECT round trip changed the graph")
	}
	if _, err := ReadKONECT(strings.NewReader("bogus line\n")); err == nil {
		t.Fatal("malformed KONECT accepted")
	}
	if _, err := ReadKONECTFile("/does/not/exist"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestKONECTFileRoundTrip(t *testing.T) {
	g := k22(t)
	path := t.TempDir() + "/out.k22"
	if err := g.WriteKONECTFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadKONECTFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatal("file round trip differs")
	}
}

func TestGenerators(t *testing.T) {
	if _, err := GenerateErdosRenyi(10, 10, 1.5, 1); err == nil {
		t.Fatal("bad p accepted")
	}
	if _, err := GenerateErdosRenyi(-1, 10, 0.5, 1); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := GenerateGnm(3, 3, 10, 1); err == nil {
		t.Fatal("excess edges accepted")
	}
	if _, err := GenerateGnm(-3, 3, 1, 1); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := GeneratePowerLaw(0, 3, 1, 0.5, 0.5, 1); err == nil {
		t.Fatal("zero side accepted")
	}
	if _, err := GeneratePowerLaw(3, 3, -1, 0.5, 0.5, 1); err == nil {
		t.Fatal("negative edges accepted")
	}
	if _, err := GenerateComplete(-1, 1); err == nil {
		t.Fatal("negative complete accepted")
	}

	gnm, err := GenerateGnm(20, 20, 50, 2)
	if err != nil || gnm.NumEdges() != 50 {
		t.Fatalf("Gnm: %v", err)
	}
	pl, err := GeneratePowerLaw(50, 50, 200, 0.7, 0.7, 2)
	if err != nil || pl.NumEdges() != 200 {
		t.Fatalf("PowerLaw: %v", err)
	}
	k, err := GenerateComplete(4, 4)
	if err != nil || k.Count() != 36 {
		t.Fatalf("Complete: %v", err)
	}
}

func TestPaperDatasets(t *testing.T) {
	names := PaperDatasets()
	if len(names) != 5 {
		t.Fatalf("%d datasets", len(names))
	}
	g, err := GeneratePaperDataset("github", 100)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumV1() == 0 || g.NumEdges() == 0 {
		t.Fatal("empty scaled dataset")
	}
	if _, err := GeneratePaperDataset("nope", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := GeneratePaperDataset("nope", 10); err == nil {
		t.Fatal("unknown scaled dataset accepted")
	}
}

func TestPeelingAPI(t *testing.T) {
	g, err := GenerateComplete(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := g.VertexButterflies(V1)
	if err != nil {
		t.Fatal(err)
	}
	tip, err := g.KTip(s[0], V1)
	if err != nil {
		t.Fatal(err)
	}
	if !tip.Equal(g) {
		t.Fatal("s-tip of complete graph should keep everything")
	}
	tipLA, err := g.KTipLookAhead(s[0], V1)
	if err != nil || !tipLA.Equal(tip) {
		t.Fatal("look-ahead k-tip differs")
	}
	empty, err := g.KTip(s[0]+1, V1)
	if err != nil || empty.NumEdges() != 0 {
		t.Fatal("(s+1)-tip should be empty")
	}

	sup := g.EdgeSupports()[0].Count
	wing, err := g.KWing(sup)
	if err != nil || !wing.Equal(g) {
		t.Fatal("s-wing should keep everything")
	}
	gone, err := g.KWing(sup + 1)
	if err != nil || gone.NumEdges() != 0 {
		t.Fatal("(s+1)-wing should be empty")
	}

	tips, err := g.TipNumbers(V1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range tips {
		if tn != s[0] {
			t.Fatalf("tip number %d, want %d", tn, s[0])
		}
	}
	wings := g.WingNumbers()
	if int64(len(wings)) != g.NumEdges() {
		t.Fatalf("WingNumbers len %d", len(wings))
	}
	for _, w := range wings {
		if w.Count != sup {
			t.Fatalf("wing number %d, want %d", w.Count, sup)
		}
	}
}

func TestPeelingAPIErrors(t *testing.T) {
	g := k22(t)
	if _, err := g.KTip(-1, V1); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := g.KTip(0, Side(9)); err == nil {
		t.Fatal("bad side accepted")
	}
	if _, err := g.KTipLookAhead(-1, V1); err == nil {
		t.Fatal("negative k accepted (look-ahead)")
	}
	if _, err := g.KTipLookAhead(0, Side(9)); err == nil {
		t.Fatal("bad side accepted (look-ahead)")
	}
	if _, err := g.KWing(-3); err == nil {
		t.Fatal("negative k accepted (wing)")
	}
	if _, err := g.TipNumbers(Side(9)); err == nil {
		t.Fatal("bad side accepted (tip numbers)")
	}
}

// Public-API property test: enumeration length always equals Count.
func TestQuickEnumerationMatchesCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := GenerateErdosRenyi(rng.Intn(10)+2, rng.Intn(10)+2, 0.5, seed)
		if err != nil {
			return false
		}
		var n int64
		g.Butterflies(func(Butterfly) bool { n++; return true })
		return n == g.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestKTipParallelAndRounds(t *testing.T) {
	g := randGraph(t, 21, 40, 35, 0.25)
	for _, k := range []int64{0, 1, 3} {
		want, err := g.KTip(k, V1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.KTipParallel(k, V1, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("k=%d: parallel k-tip differs", k)
		}
		gotAuto, err := g.KTipParallel(k, V1, 0)
		if err != nil || !gotAuto.Equal(want) {
			t.Fatalf("k=%d: GOMAXPROCS k-tip differs (%v)", k, err)
		}
	}

	want, err := g.TipNumbers(V1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.TipNumbersRounds(V1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tip number %d: rounds %d, heap %d", i, got[i], want[i])
		}
	}
	if _, err := g.KTipParallel(-1, V1, 2); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := g.KTipParallel(1, Side(7), 2); err == nil {
		t.Fatal("bad side accepted")
	}
	if _, err := g.TipNumbersRounds(Side(7), 2); err == nil {
		t.Fatal("bad side accepted (rounds)")
	}
}

func TestVerifyDerivationAPI(t *testing.T) {
	g := randGraph(t, 41, 8, 9, 0.5)
	if err := g.VerifyDerivation(); err != nil {
		t.Fatal(err)
	}
	big, err := GenerateGnm(300, 300, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := big.VerifyDerivation(); err == nil {
		t.Fatal("oversized graph accepted")
	}
}

func TestDerivationTraceAPI(t *testing.T) {
	g := randGraph(t, 42, 7, 6, 0.5)
	want := g.Count()
	for inv := Invariant1; inv <= Invariant8; inv++ {
		trace, err := g.DerivationTrace(inv)
		if err != nil {
			t.Fatal(err)
		}
		if trace[0] != 0 {
			t.Fatalf("%v: trace starts at %d", inv, trace[0])
		}
		if trace[len(trace)-1] != want {
			t.Fatalf("%v: trace ends at %d, want %d", inv, trace[len(trace)-1], want)
		}
		// Invariant values are monotone non-decreasing: exposing more
		// vertices never uncounts butterflies.
		for i := 1; i < len(trace); i++ {
			if trace[i] < trace[i-1] {
				t.Fatalf("%v: trace decreases at %d", inv, i)
			}
		}
	}
	if _, err := g.DerivationTrace(InvariantAuto); err == nil {
		t.Fatal("auto invariant accepted for trace")
	}
	big, err := GenerateGnm(300, 300, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.DerivationTrace(Invariant1); err == nil {
		t.Fatal("oversized graph accepted")
	}
}

func TestDensestByButterfliesAPI(t *testing.T) {
	g, err := GenerateComplete(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.DensestByButterflies(V1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Vertices != 4 || res.Butterflies != 36 {
		t.Fatalf("result %+v", res)
	}
	sub, err := g.InducedSubgraph(res.Keep, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Count() != res.Butterflies {
		t.Fatal("Keep mask does not reproduce reported count")
	}
	if _, err := g.DensestByButterflies(Side(9)); err == nil {
		t.Fatal("bad side accepted")
	}
}

// Graph is immutable after construction: concurrent analyses on the
// same Graph must be safe. Run with -race (CI does).
func TestConcurrentReadersSafe(t *testing.T) {
	g := randGraph(t, 71, 300, 250, 0.05)
	want := g.Count()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 4 {
			case 0:
				if got := g.CountParallel(2); got != want {
					errs <- fmt.Errorf("parallel count %d, want %d", got, want)
				}
			case 1:
				if _, err := g.VertexButterflies(V1); err != nil {
					errs <- err
				}
			case 2:
				if _, err := g.KTip(1, V1); err != nil {
					errs <- err
				}
			case 3:
				g.EdgeSupports()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestGenerateSBM(t *testing.T) {
	g, err := GenerateSBM([]int{10, 10}, []int{10, 10}, 0.8, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumV1() != 20 || g.NumV2() != 20 {
		t.Fatal("SBM sizes wrong")
	}
	// Planted structure should be significant against the null model.
	sig, err := g.ButterflySignificance(SignificanceOptions{Samples: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sig.ZScore < 2 {
		t.Fatalf("SBM z-score %.1f too low", sig.ZScore)
	}
	if _, err := GenerateSBM([]int{2}, []int{2}, 2, 0, 1); err == nil {
		t.Fatal("bad pIn accepted")
	}
	if _, err := GenerateSBM([]int{-1}, []int{2}, 0.5, 0, 1); err == nil {
		t.Fatal("negative block accepted")
	}
}

func TestNumInvariantsMatchesCore(t *testing.T) {
	if NumInvariants != int(Invariant8) {
		t.Fatalf("NumInvariants = %d, want %d", NumInvariants, int(Invariant8))
	}
}

func TestCountWithAggModes(t *testing.T) {
	g := randGraph(t, 4, 100, 80, 0.1)
	want := g.Count()
	for _, agg := range []AggPolicy{AggAuto, AggSort, AggHash, AggHist, AggBatch} {
		got, err := g.CountWith(CountOptions{Agg: agg})
		if err != nil || got != want {
			t.Fatalf("agg=%v sequential: %d, %v (want %d)", agg, got, err, want)
		}
		got, err = g.CountWith(CountOptions{Agg: agg, Threads: 3, Hub: HubNever})
		if err != nil || got != want {
			t.Fatalf("agg=%v parallel: %d, %v (want %d)", agg, got, err, want)
		}
	}
	resolved := g.ResolvedAgg(CountOptions{})
	if resolved == AggAuto || !resolved.Valid() {
		t.Fatalf("ResolvedAgg returned %v", resolved)
	}
	if got := g.ResolvedAgg(CountOptions{Agg: AggSort}); got != AggSort {
		t.Fatalf("explicit mode resolved to %v", got)
	}
}

func TestAggPolicyStringsAndParse(t *testing.T) {
	want := map[AggPolicy]string{
		AggAuto: "auto", AggSort: "sort", AggHash: "hash",
		AggHist: "hist", AggBatch: "batch",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("String(%v) = %q, want %q", int(p), p.String(), s)
		}
		back, err := ParseAggPolicy(s)
		if err != nil || back != p {
			t.Errorf("ParseAggPolicy(%q) = %v, %v", s, back, err)
		}
	}
	if _, err := ParseAggPolicy("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
	if AggPolicy(9).String() == "" || AggPolicy(9).Valid() {
		t.Error("out-of-range policy must be invalid with a diagnostic String")
	}
}

func TestCountWithAggErrors(t *testing.T) {
	g := k22(t)
	if _, err := g.CountWith(CountOptions{Agg: AggPolicy(42)}); err == nil {
		t.Fatal("invalid agg accepted")
	}
	if _, err := g.CountWith(CountOptions{Agg: AggSort, Algorithm: AlgorithmWedgeHash}); err == nil {
		t.Fatal("agg with non-family algorithm accepted")
	}
	if got, err := g.CountWith(CountOptions{Agg: AggAuto, Algorithm: AlgorithmWedgeHash}); err != nil || got != 1 {
		t.Fatalf("AggAuto must stay compatible with baselines: %d, %v", got, err)
	}
}
