package butterfly

import (
	"fmt"

	"butterfly/internal/estimate"
)

// StreamEstimator approximates the butterfly count of an edge stream
// with a fixed-size uniform reservoir (the FLEET family, Sanei-Mehri
// et al.): memory stays O(reservoir) regardless of stream length, and
// the estimate is unbiased for duplicate-free streams (exact while the
// reservoir still fits the whole stream). The butterfly count of the
// reservoir subgraph is maintained incrementally, so snapshots are
// cheap; the O(1)-memory companion to DynamicCounter, for streams too
// large to keep. Safe for concurrent use.
type StreamEstimator struct {
	r *estimate.Reservoir
}

// StreamSnapshot is a consistent point-in-time view of a
// StreamEstimator: the estimate, its error bars, and the reservoir
// bookkeeping. Exact reports whether the whole stream still fits the
// reservoir (the estimate is the true count and the error bars are
// zero).
type StreamSnapshot struct {
	Estimate      float64
	StdErr        float64
	CI95          float64 // 1.96 · StdErr
	EdgesSeen     int64
	ReservoirSize int
	Capacity      int
	Exact         bool
}

// NewStreamEstimator returns an estimator over vertex sets of size m
// and n. reservoir must be at least 4 (a butterfly's edge count).
func NewStreamEstimator(m, n, reservoir int, seed int64) (*StreamEstimator, error) {
	r, err := estimate.NewReservoir(m, n, reservoir, seed)
	if err != nil {
		return nil, fmt.Errorf("butterfly: %w", err)
	}
	return &StreamEstimator{r: r}, nil
}

// Add feeds the next stream edge.
func (e *StreamEstimator) Add(u, v int) error {
	if err := e.r.Add(u, v); err != nil {
		return fmt.Errorf("butterfly: %w", err)
	}
	return nil
}

// AddBatch feeds a batch of edges atomically with respect to Snapshot.
// The batch is validated before any edge is applied.
func (e *StreamEstimator) AddBatch(edges [][2]int) error {
	if err := e.r.AddBatch(edges); err != nil {
		return fmt.Errorf("butterfly: %w", err)
	}
	return nil
}

// Seen returns the number of edges consumed.
func (e *StreamEstimator) Seen() int64 { return e.r.Seen() }

// Estimate returns the current butterfly estimate for the whole
// stream.
func (e *StreamEstimator) Estimate() float64 { return e.r.Snapshot().Estimate }

// Snapshot returns the estimate together with its error bars and
// reservoir bookkeeping.
func (e *StreamEstimator) Snapshot() StreamSnapshot {
	s := e.r.Snapshot()
	return StreamSnapshot{
		Estimate:      s.Estimate,
		StdErr:        s.StdErr,
		CI95:          s.CI95,
		EdgesSeen:     s.EdgesSeen,
		ReservoirSize: s.ReservoirSize,
		Capacity:      s.Capacity,
		Exact:         s.Exact,
	}
}
