package butterfly

import (
	"fmt"

	"butterfly/internal/baseline"
)

// StreamEstimator approximates the butterfly count of an edge stream
// with a fixed-size uniform reservoir: memory stays O(reservoir)
// regardless of stream length, and the estimate is unbiased for
// duplicate-free streams (exact while the reservoir still fits the
// whole stream). The O(1)-memory companion to DynamicCounter, for
// streams too large to keep.
type StreamEstimator struct {
	s    *baseline.StreamEstimator
	m, n int
}

// NewStreamEstimator returns an estimator over vertex sets of size m
// and n. reservoir must be at least 4 (a butterfly's edge count).
func NewStreamEstimator(m, n, reservoir int, seed int64) (*StreamEstimator, error) {
	if m < 0 || n < 0 {
		return nil, fmt.Errorf("butterfly: negative vertex-set size %d/%d", m, n)
	}
	if reservoir < 4 {
		return nil, fmt.Errorf("butterfly: reservoir %d < 4 cannot hold a butterfly", reservoir)
	}
	return &StreamEstimator{s: baseline.NewStreamEstimator(m, n, reservoir, seed), m: m, n: n}, nil
}

// Add feeds the next stream edge.
func (e *StreamEstimator) Add(u, v int) error {
	if u < 0 || u >= e.m || v < 0 || v >= e.n {
		return fmt.Errorf("butterfly: stream edge (%d,%d) out of range %dx%d", u, v, e.m, e.n)
	}
	e.s.Add(u, v)
	return nil
}

// Seen returns the number of edges consumed.
func (e *StreamEstimator) Seen() int64 { return e.s.Seen() }

// Estimate returns the current butterfly estimate for the whole
// stream.
func (e *StreamEstimator) Estimate() float64 { return e.s.Estimate() }
