package butterfly

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExamplesSmoke builds and runs every example binary end to end —
// the guard against example rot. Skipped in -short mode (it invokes
// the Go toolchain per example).
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke tests skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 5 {
		t.Fatalf("only %d examples found", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctxArgs := []string{"run", "./" + filepath.Join("examples", name)}
			cmd := exec.Command("go", ctxArgs...)
			cmd.Env = os.Environ()
			done := make(chan struct{})
			var out []byte
			var runErr error
			go func() {
				out, runErr = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(3 * time.Minute):
				_ = cmd.Process.Kill()
				t.Fatalf("example %s timed out", name)
			}
			if runErr != nil {
				t.Fatalf("example %s failed: %v\n%s", name, runErr, out)
			}
			if len(strings.TrimSpace(string(out))) == 0 {
				t.Fatalf("example %s produced no output", name)
			}
			lower := strings.ToLower(string(out))
			for _, bad := range []string{"panic:", "mismatch", "fatal"} {
				if strings.Contains(lower, bad) {
					t.Fatalf("example %s output contains %q:\n%s", name, bad, out)
				}
			}
		})
	}
}
