package butterfly

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"butterfly/internal/baseline"
	"butterfly/internal/core"
	"butterfly/internal/estimate"
	"butterfly/internal/graph"
)

// Invariant selects a member of the paper's algorithm family. The zero
// value (InvariantAuto) applies the paper's selection rule: partition
// the smaller vertex side, preferring the look-ahead member.
type Invariant int

// The eight loop invariants of the paper (Fig 4 and Fig 5).
// Invariant1–4 partition V2 and traverse columns of the biadjacency
// matrix; Invariant5–8 partition V1 and traverse rows. Invariant2,
// Invariant3, Invariant6 and Invariant7 are "look-ahead" algorithms —
// they count against the partition that has not been exposed yet.
const (
	InvariantAuto Invariant = iota
	Invariant1
	Invariant2
	Invariant3
	Invariant4
	Invariant5
	Invariant6
	Invariant7
	Invariant8
)

// NumInvariants is the size of the family.
const NumInvariants = 8

// String names the invariant.
func (inv Invariant) String() string {
	if inv == InvariantAuto {
		return "auto"
	}
	if inv >= Invariant1 && inv <= Invariant8 {
		return fmt.Sprintf("Inv%d", int(inv))
	}
	return fmt.Sprintf("Invariant(%d)", int(inv))
}

// Valid reports whether inv is InvariantAuto or one of the eight family
// members.
func (inv Invariant) Valid() bool { return inv >= InvariantAuto && inv <= Invariant8 }

// Order selects an optional vertex relabeling applied before counting
// (the count itself is invariant under relabeling; degree orders are
// the locality optimization the paper's future work points at).
type Order int

const (
	// OrderNatural keeps input vertex ids.
	OrderNatural Order = iota
	// OrderDegreeAsc relabels each side by ascending degree.
	OrderDegreeAsc
	// OrderDegreeDesc relabels each side by descending degree.
	OrderDegreeDesc
)

func (o Order) internal() (graph.Order, error) {
	switch o {
	case OrderNatural:
		return graph.OrderNatural, nil
	case OrderDegreeAsc:
		return graph.OrderDegreeAsc, nil
	case OrderDegreeDesc:
		return graph.OrderDegreeDesc, nil
	default:
		return 0, fmt.Errorf("butterfly: invalid order %d", int(o))
	}
}

// Algorithm selects the counting implementation. The default
// (AlgorithmFamily) is the paper's loop-invariant family; the others
// are the independent counters the paper builds on or compares with,
// exposed so downstream users can benchmark against them on their own
// data.
type Algorithm int

const (
	// AlgorithmFamily is the paper's derived family (Invariant picks
	// the member; supports Threads and BlockSize).
	AlgorithmFamily Algorithm = iota
	// AlgorithmWedgeHash is the hash-aggregation counter of Wang et
	// al. 2014 — O(Σdeg²) space.
	AlgorithmWedgeHash
	// AlgorithmVertexPriority is the priority-ordered counter of Wang
	// et al. 2019.
	AlgorithmVertexPriority
	// AlgorithmSortAggregate is the sort-based wedge aggregation of
	// ParButterfly (Shi & Shun 2019); supports Threads.
	AlgorithmSortAggregate
	// AlgorithmSpGEMM executes the linear-algebra specification
	// directly on the sparse substrate (materializes AAᵀ); supports
	// Threads.
	AlgorithmSpGEMM
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmFamily:
		return "family"
	case AlgorithmWedgeHash:
		return "wedge-hash"
	case AlgorithmVertexPriority:
		return "vertex-priority"
	case AlgorithmSortAggregate:
		return "sort-aggregate"
	case AlgorithmSpGEMM:
		return "spgemm"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// HubPolicy selects how the hybrid intersection kernel treats dense
// ("hub") exposed vertices during counting. Every policy returns the
// exact count; the policy only trades the sparse wedge-accumulator
// path against the bitset path.
type HubPolicy int

const (
	// HubAuto (the default) picks per vertex from the kernel's cost
	// model.
	HubAuto HubPolicy = iota
	// HubNever forces the sparse accumulator path everywhere.
	HubNever
	// HubAlways forces the bitset path wherever a candidate range
	// exists.
	HubAlways
)

// String names the policy.
func (p HubPolicy) String() string {
	switch p {
	case HubAuto:
		return "auto"
	case HubNever:
		return "never"
	case HubAlways:
		return "always"
	default:
		return fmt.Sprintf("HubPolicy(%d)", int(p))
	}
}

// Valid reports whether p is one of the three policies.
func (p HubPolicy) Valid() bool { return p >= HubAuto && p <= HubAlways }

// AggPolicy selects the wedge-aggregation kernel of the counting core —
// how one exposed vertex's wedge multiset is materialized before the
// butterfly formula is applied. Every mode returns the exact count;
// they differ only in memory behavior (ParButterfly's observation that
// sort-, hash-, histogram- and batch-based aggregation each win on
// different graph shapes).
type AggPolicy int

const (
	// AggAuto (the default) picks per graph from its degree profile.
	AggAuto AggPolicy = iota
	// AggSort radix-sorts gathered wedge endpoints and counts runs.
	AggSort
	// AggHash aggregates in an open-addressing table keyed by partner.
	AggHash
	// AggHist aggregates in the dense per-endpoint counter array.
	AggHist
	// AggBatch gathers into fixed-size buffers flushed through the
	// histogram, bounding memory on huge hubs.
	AggBatch
)

// String names the policy ("auto", "sort", "hash", "hist", "batch") —
// the spelling the bfc -agg flag and the serve API accept.
func (p AggPolicy) String() string {
	if p.Valid() {
		return core.AggPolicy(p).Mode()
	}
	return fmt.Sprintf("AggPolicy(%d)", int(p))
}

// Valid reports whether p is one of the five policies.
func (p AggPolicy) Valid() bool { return p >= AggAuto && p <= AggBatch }

// ParseAggPolicy converts a mode string to its policy; it accepts
// exactly the String spellings.
func ParseAggPolicy(s string) (AggPolicy, error) {
	for p := AggAuto; p <= AggBatch; p++ {
		if s == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("butterfly: invalid aggregation mode %q (want auto, sort, hash, hist or batch)", s)
}

// Arena is a reusable pool of counting workspaces. Passing the same
// Arena to repeated counts (CountOptions.Arena) makes the steady state
// allocation-free — the win measured in docs/PERFORMANCE.md for
// peeling rounds and repeated-query serving. The zero value is not
// usable; construct with NewArena. Safe for concurrent use.
type Arena struct {
	a *core.Arena
}

// NewArena returns an empty workspace pool.
func NewArena() *Arena { return &Arena{a: core.NewArena()} }

func (a *Arena) internal() *core.Arena {
	if a == nil {
		return nil
	}
	return a.a
}

// CountOptions configures CountWith.
type CountOptions struct {
	// Algorithm selects the implementation; the zero value is the
	// paper's family.
	Algorithm Algorithm
	// Invariant picks the family member; InvariantAuto selects by the
	// paper's rule. Only meaningful with AlgorithmFamily.
	Invariant Invariant
	// Threads > 1 runs the parallel algorithm; 0 and 1 are sequential;
	// negative means GOMAXPROCS.
	Threads int
	// BlockSize > 1 runs the blocked variant exposing that many
	// vertices per iteration (AlgorithmFamily only).
	BlockSize int
	// Order optionally relabels vertices first.
	Order Order
	// Hub selects the hybrid intersection kernel policy for dense
	// exposed vertices (AlgorithmFamily only). The zero value HubAuto
	// chooses per vertex from a cost model; HubNever and HubAlways pin
	// one path. Every policy returns the exact count.
	Hub HubPolicy
	// Agg selects the wedge-aggregation kernel (AlgorithmFamily only).
	// The zero value AggAuto chooses per graph from the degree profile;
	// the fixed modes pin one kernel. Every mode returns the exact
	// count; ResolvedAgg reports the mode a count would actually run.
	Agg AggPolicy
	// Arena optionally supplies a workspace pool reused across counts;
	// nil allocates fresh scratch per run (AlgorithmFamily only). See
	// NewArena.
	Arena *Arena
	// Stage, when non-nil, receives coarse stage timings: "core.order"
	// for the optional relabeling pass, "core.count" for a family
	// count, and "core.<algorithm>" (e.g. "core.wedge-hash") for a
	// baseline count. The hook fires at most twice per call — never
	// inside the counting loops — so a nil hook is free and an
	// installed hook costs two clock reads. The serving layer adapts
	// this to trace spans.
	Stage func(stage string, d time.Duration)
}

// Count returns the exact number of butterflies using the
// automatically selected sequential algorithm.
func (g *Graph) Count() int64 { return core.CountAuto(g.g) }

// CountParallel counts with `threads` workers (GOMAXPROCS if ≤ 0).
func (g *Graph) CountParallel(threads int) int64 {
	if threads <= 0 {
		threads = -1
	}
	return core.CountWith(g.g, core.Options{Threads: threads})
}

// CountWith counts with full control over algorithm selection. It is
// equivalent to CountWithContext with context.Background().
func (g *Graph) CountWith(opts CountOptions) (int64, error) {
	return g.CountWithContext(context.Background(), opts)
}

// CountWithContext is CountWith with cooperative cancellation: when
// ctx is cancelled (deadline, timeout or explicit cancel) the call
// returns promptly with ctx.Err() and a zero count.
//
// For AlgorithmFamily the cancellation flag is polled inside the core
// counting loops — between exposed vertices sequentially, between
// schedule units in parallel — so the workers themselves stop within a
// bounded slice of work and no goroutine outlives the call. For the
// baseline algorithms (which have no checkpoints in their inner loops)
// the count runs in a helper goroutine that is abandoned on
// cancellation: the call still returns promptly, but the goroutine
// finishes its count in the background and discards the result.
func (g *Graph) CountWithContext(ctx context.Context, opts CountOptions) (int64, error) {
	if g == nil || g.g == nil {
		return 0, errNilGraph
	}
	if !opts.Invariant.Valid() {
		return 0, fmt.Errorf("butterfly: invalid invariant %v", opts.Invariant)
	}
	if opts.BlockSize < 0 {
		return 0, fmt.Errorf("butterfly: negative block size %d", opts.BlockSize)
	}
	if !opts.Hub.Valid() {
		return 0, fmt.Errorf("butterfly: invalid hub policy %v", opts.Hub)
	}
	if !opts.Agg.Valid() {
		return 0, fmt.Errorf("butterfly: invalid aggregation mode %v", opts.Agg)
	}
	if opts.Agg != AggAuto && opts.Algorithm != AlgorithmFamily {
		return 0, fmt.Errorf("butterfly: Agg is only meaningful with AlgorithmFamily, got %v with %v", opts.Agg, opts.Algorithm)
	}
	ord, err := opts.Order.internal()
	if err != nil {
		return 0, err
	}
	gg := g.g
	if ord != graph.OrderNatural {
		if opts.Stage != nil {
			t0 := time.Now()
			gg, _, _ = gg.Relabel(ord)
			opts.Stage("core.order", time.Since(t0))
		} else {
			gg, _, _ = gg.Relabel(ord)
		}
	}
	threads := opts.Threads
	if threads < 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	switch opts.Algorithm {
	case AlgorithmFamily:
		return core.CountContext(ctx, gg, core.Options{
			Invariant: core.Invariant(opts.Invariant),
			Threads:   threads,
			BlockSize: opts.BlockSize,
			Hub:       core.HubPolicy(opts.Hub),
			Agg:       core.AggPolicy(opts.Agg),
			Arena:     opts.Arena.internal(),
			Stage:     opts.Stage,
		})
	case AlgorithmWedgeHash, AlgorithmVertexPriority, AlgorithmSortAggregate, AlgorithmSpGEMM:
		if opts.Invariant != InvariantAuto {
			return 0, fmt.Errorf("butterfly: Invariant is only meaningful with AlgorithmFamily, got %v with %v", opts.Invariant, opts.Algorithm)
		}
		run := func() int64 {
			var t0 time.Time
			if opts.Stage != nil {
				t0 = time.Now()
			}
			var c int64
			switch opts.Algorithm {
			case AlgorithmWedgeHash:
				c = baseline.CountWedgeHash(gg)
			case AlgorithmVertexPriority:
				c = baseline.CountVertexPriorityParallel(gg, threads)
			case AlgorithmSortAggregate:
				c = baseline.CountSortAggregate(gg, threads)
			default:
				c = core.CountSpGEMMParallel(gg, threads)
			}
			if opts.Stage != nil {
				opts.Stage("core."+opts.Algorithm.String(), time.Since(t0))
			}
			return c
		}
		if ctx.Done() == nil {
			return run(), nil
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		done := make(chan int64, 1)
		go func() { done <- run() }()
		select {
		case c := <-done:
			return c, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	default:
		return 0, fmt.Errorf("butterfly: invalid algorithm %v", opts.Algorithm)
	}
}

// CountInvariant counts with one specific family member, sequentially.
func (g *Graph) CountInvariant(inv Invariant) (int64, error) {
	return g.CountWith(CountOptions{Invariant: inv})
}

// ResolvedAgg reports the concrete aggregation mode a family count with
// opts would run — never AggAuto. Callers that report the mode used
// (bfc -json, the serving layer, bfbench) call this alongside
// CountWith; the resolution reads only the graph's cached degree
// profile, so it is cheap and deterministic. For non-family algorithms
// (which have their own fixed aggregation) opts.Agg is returned
// unchanged.
func (g *Graph) ResolvedAgg(opts CountOptions) AggPolicy {
	if g == nil || g.g == nil || !opts.Agg.Valid() || opts.Algorithm != AlgorithmFamily {
		return opts.Agg
	}
	return AggPolicy(core.ResolveAgg(g.g, core.Options{
		Invariant: core.Invariant(opts.Invariant),
		Threads:   opts.Threads,
		BlockSize: opts.BlockSize,
		Agg:       core.AggPolicy(opts.Agg),
	}))
}

// VertexButterflies returns, for every vertex of the chosen side, the
// number of butterflies it participates in. The vector sums to twice
// the total count.
func (g *Graph) VertexButterflies(side Side) ([]int64, error) {
	s, err := side.internal()
	if err != nil {
		return nil, err
	}
	return core.VertexButterflies(g.g, s), nil
}

// EdgeCount pairs an edge with a butterfly count (its support or wing
// number depending on the producing call).
type EdgeCount struct {
	U, V  int
	Count int64
}

// EdgeSupports returns the butterfly support of every edge — the
// number of butterflies containing it (the matrix S_w of the paper's
// equation (25)). The supports sum to four times the total count.
func (g *Graph) EdgeSupports() []EdgeCount {
	s := core.EdgeSupport(g.g)
	out := make([]EdgeCount, 0, s.NNZ())
	for u := 0; u < s.R; u++ {
		row := s.Row(u)
		vals := s.RowVals(u)
		for k, v := range row {
			out = append(out, EdgeCount{U: u, V: int(v), Count: vals[k]})
		}
	}
	return out
}

// Wedges returns the wedge totals of equation (6) for both
// orientations: wedges with endpoints in V1, and with endpoints in V2.
func (g *Graph) Wedges() (endpointsV1, endpointsV2 int64) {
	return core.WedgeCount(g.g)
}

// ClusteringCoefficient returns the bipartite clustering coefficient:
// 4·ΞG / caterpillars (length-3 paths); 1 on complete bipartite
// graphs, 0 on butterfly-free graphs.
func (g *Graph) ClusteringCoefficient() float64 {
	return core.ClusteringCoefficient(g.g)
}

// Butterfly is one enumerated 2×2 biclique: U1 < U2 in V1 and W1 < W2
// in V2, all four edges present.
type Butterfly struct {
	U1, U2 int // V1 vertices
	W1, W2 int // V2 vertices
}

// Butterflies calls yield for every butterfly in lexicographic order,
// stopping early if yield returns false. Enumeration is Θ(output), so
// use Count for totals.
func (g *Graph) Butterflies(yield func(Butterfly) bool) {
	baseline.ListButterflies(g.g, func(b baseline.Butterfly) bool {
		return yield(Butterfly{U1: int(b.U1), U2: int(b.U2), W1: int(b.W1), W2: int(b.W2)})
	})
}

// EstimateStrategy selects a sampling estimator.
type EstimateStrategy int

const (
	// SampleVertices estimates from uniformly sampled V1 vertices.
	SampleVertices EstimateStrategy = iota
	// SampleEdges estimates from uniformly sampled edges; usually
	// lower-variance on skewed graphs.
	SampleEdges
	// SampleSparsify keeps each edge with probability P, counts the
	// sparsified graph exactly and scales by 1/P⁴ (a butterfly
	// survives iff all four edges do).
	SampleSparsify
)

// EstimateOptions configures EstimateCount and EstimateWithCI.
type EstimateOptions struct {
	Strategy EstimateStrategy
	// Samples fixes the draw count for SampleVertices/SampleEdges.
	// EstimateCount requires it positive; EstimateWithCI also accepts
	// 0, which enables the adaptive stopping rule (draw until the 95%
	// CI half-width falls below TargetRelErr × estimate).
	Samples int
	P       float64 // keep-probability for SampleSparsify; in (0, 1]
	Seed    int64   // RNG seed; estimators are deterministic given it
	// TargetRelErr is the adaptive accuracy target (EstimateWithCI
	// with Samples == 0); 0 means 5%.
	TargetRelErr float64
	// MaxSamples bounds the adaptive loop; 0 means the package default
	// (65536).
	MaxSamples int
}

// EstimateResult is a point estimate with error bars. StdErr is the
// standard error of the estimator (zero when it cannot be measured:
// fewer than two samples, or the sparsify strategy, which reports no
// error bars); CI95 is its 1.96× half-width. Samples is the number of
// draws actually taken — under the adaptive rule, where the loop
// stopped.
type EstimateResult struct {
	Estimate float64
	StdErr   float64
	CI95     float64
	Samples  int
}

// EstimateCount approximates the butterfly count with an unbiased
// sampling estimator (Sanei-Mehri et al., KDD'18 style). For error
// bars and adaptive sample sizing use EstimateWithCI.
func (g *Graph) EstimateCount(opts EstimateOptions) (float64, error) {
	if (opts.Strategy == SampleVertices || opts.Strategy == SampleEdges) && opts.Samples <= 0 {
		return 0, fmt.Errorf("butterfly: Samples must be positive, got %d", opts.Samples)
	}
	res, err := g.EstimateWithCI(opts)
	return res.Estimate, err
}

// EstimateWithCI approximates the butterfly count and reports error
// bars. For SampleVertices/SampleEdges with Samples == 0 the sample
// size is chosen adaptively: draws accumulate in batches until the 95%
// confidence half-width falls below TargetRelErr × estimate (bounded
// by MaxSamples). SampleSparsify runs one exact count of a sparsified
// graph and reports no error bars.
func (g *Graph) EstimateWithCI(opts EstimateOptions) (EstimateResult, error) {
	if g == nil || g.g == nil {
		return EstimateResult{}, errNilGraph
	}
	switch opts.Strategy {
	case SampleVertices, SampleEdges:
		strat := estimate.StrategyVertices
		if opts.Strategy == SampleEdges {
			strat = estimate.StrategyEdges
		}
		return estimateResult(estimate.Sample(g.g, estimate.Options{
			Strategy:     strat,
			Samples:      opts.Samples,
			TargetRelErr: opts.TargetRelErr,
			MaxSamples:   opts.MaxSamples,
			Seed:         opts.Seed,
		}))
	case SampleSparsify:
		if opts.P <= 0 || opts.P > 1 {
			return EstimateResult{}, fmt.Errorf("butterfly: P must be in (0,1], got %g", opts.P)
		}
		return EstimateResult{Estimate: baseline.EstimateSparsify(g.g, opts.P, opts.Seed)}, nil
	default:
		return EstimateResult{}, fmt.Errorf("butterfly: invalid estimate strategy %d", int(opts.Strategy))
	}
}

func estimateResult(r estimate.Result, err error) (EstimateResult, error) {
	if err != nil {
		return EstimateResult{}, fmt.Errorf("butterfly: %w", err)
	}
	return EstimateResult{Estimate: r.Estimate, StdErr: r.StdErr, CI95: r.CI95, Samples: r.Samples}, nil
}

// Verify cross-checks the whole algorithm family plus three independent
// baseline counters on g, returning an error naming the first
// disagreement. Intended for acceptance testing on new datasets; it
// runs several full counts.
func (g *Graph) Verify() error { return baseline.VerifyAll(g.g) }
