// Package flame operationalizes the paper's methodology: it executes
// the FLAME proof obligations for each of the eight derived algorithms
// on concrete graphs.
//
// The FLAME worksheet proves a loop correct by exhibiting an invariant
// that (1) holds after initialization, (2) is maintained by every
// iteration's update, and (3) together with the loop guard's negation
// implies the postcondition. The paper derives the family by choosing
// eight invariants (Figs 4–5) and reading off the updates (Figs 6–7).
// This package replays that argument executably: it runs each
// algorithm's literal update expression — equation (18) and its
// siblings, evaluated with dense linear algebra — and checks the
// invariant's closed form at every loop boundary. A violation returns
// an error naming the iteration, making the "provably correct"
// property of the family a regression test instead of a citation.
//
// Everything here is dense and O(m²n) per boundary; it is a
// verification harness for small instances, not a production counter.
package flame

import (
	"fmt"

	"butterfly/internal/core"
	"butterfly/internal/dense"
)

// PartitionTerms evaluates the paper's equation (10): the three
// disjoint butterfly categories induced by the column split
// A = (A_L | A_R) at `split`, each via its trace expression.
//
//	Ξ_L  = ¼Γ(A_LA_Lᵀ·A_LA_Lᵀ − A_LA_Lᵀ∘A_LA_Lᵀ − J·A_LA_Lᵀ + A_LA_Lᵀ)
//	Ξ_LR = ½Γ(A_LA_Lᵀ·A_RA_Rᵀ − A_LA_Lᵀ∘A_RA_Rᵀ)
//	Ξ_R  = symmetric to Ξ_L
func PartitionTerms(a *dense.Matrix, split int) (xiL, xiLR, xiR int64) {
	al := a.SubMatrix(0, a.Rows, 0, split)
	ar := a.SubMatrix(0, a.Rows, split, a.Cols)
	bl := al.MulTranspose()
	br := ar.MulTranspose()
	j := dense.Ones(a.Rows, a.Rows)

	quarter := func(b *dense.Matrix) int64 {
		num := b.Mul(b).Trace() - b.Hadamard(b).Trace() - j.Mul(b).Trace() + b.Trace()
		if num%4 != 0 {
			panic("flame: Ξ term not divisible by 4")
		}
		return num / 4
	}
	xiL = quarter(bl)
	xiR = quarter(br)
	cross := bl.Mul(br).Trace() - bl.Hadamard(br).Trace()
	if cross%2 != 0 {
		panic("flame: Ξ_LR term not divisible by 2")
	}
	xiLR = cross / 2
	return xiL, xiLR, xiR
}

// InvariantValue returns the closed-form value the loop invariant
// asserts for the running count after `exposed` vertices of the
// partitioned side have been processed (Figs 4 and 5). For the
// row-partitioned family (5–8) the roles of L/R are played by T/B via
// the transpose.
func InvariantValue(a *dense.Matrix, inv core.Invariant, exposed int) int64 {
	work := a
	if !inv.PartitionsV2() {
		work = a.Transpose()
	}
	n := work.Cols
	if exposed < 0 || exposed > n {
		panic(fmt.Sprintf("flame: exposed %d out of [0,%d]", exposed, n))
	}
	switch inv {
	case core.Inv1, core.Inv5:
		// L→R / T→B traversal: the exposed partition is the first
		// `exposed` columns. Invariant 1/5: Ξ_G = Ξ_L.
		xiL, _, _ := PartitionTerms(work, exposed)
		return xiL
	case core.Inv2, core.Inv6:
		// Invariant 2/6: Ξ_G = Ξ_L + Ξ_LR.
		xiL, xiLR, _ := PartitionTerms(work, exposed)
		return xiL + xiLR
	case core.Inv3, core.Inv7:
		// R→L / B→T traversal: the exposed partition is the last
		// `exposed` columns. Invariant 3/7: Ξ_G = Ξ_R + Ξ_LR with the
		// split placed before the exposed suffix.
		_, xiLR, xiR := PartitionTerms(work, n-exposed)
		return xiR + xiLR
	case core.Inv4, core.Inv8:
		// Invariant 4/8: Ξ_G = Ξ_R.
		_, _, xiR := PartitionTerms(work, n-exposed)
		return xiR
	default:
		panic("flame: invalid invariant " + inv.String())
	}
}

// updateValue evaluates the derived update expression for one exposed
// column a1 against the partner partition Ap — the simplified update
// (18): ½·a1ᵀ·Ap·Apᵀ·a1 − ½·Γ(a1a1ᵀ ∘ ApApᵀ).
func updateValue(a1, ap *dense.Matrix) int64 {
	bp := ap.MulTranspose()                         // ApApᵀ
	quad := a1.Transpose().Mul(bp).Mul(a1).At(0, 0) // a1ᵀ Bp a1
	had := a1.Mul(a1.Transpose()).Hadamard(bp).Trace()
	num := quad - had
	if num%2 != 0 {
		panic("flame: update not divisible by 2")
	}
	return num / 2
}

// partnerPartition returns Ap for the given invariant when column
// `pos` (0-based, in traversal order over the working matrix) is
// exposed: A0 (before the exposed column) for eager members, A2
// (after) for look-ahead ones, in the geometry of Figs 6–7.
func partnerPartition(work *dense.Matrix, inv core.Invariant, col int) *dense.Matrix {
	switch inv {
	case core.Inv1, core.Inv5, core.Inv3, core.Inv7:
		// Algorithms 1/5 count against A0 with an L→R traversal;
		// algorithms 3/7 count against A0 with an R→L traversal. In
		// both cases A0 is the columns left of the exposed one.
		return work.SubMatrix(0, work.Rows, 0, col)
	case core.Inv2, core.Inv6, core.Inv4, core.Inv8:
		return work.SubMatrix(0, work.Rows, col+1, work.Cols)
	default:
		panic("flame: invalid invariant " + inv.String())
	}
}

// CheckInvariant replays algorithm `inv` on the biadjacency matrix a,
// executing the derived update at every iteration and checking the
// three FLAME proof obligations:
//
//  1. initialization: count(0 exposed) = invariant value = 0,
//  2. maintenance: after every update the running count equals the
//     invariant's closed form,
//  3. termination: with everything exposed the invariant equals the
//     postcondition Ξ_G of equation (7).
//
// Returns nil when all obligations hold, or an error naming the first
// violated boundary.
func CheckInvariant(a *dense.Matrix, inv core.Invariant) error {
	if !a.IsBinary() {
		return fmt.Errorf("flame: adjacency must be binary")
	}
	work := a
	if !inv.PartitionsV2() {
		work = a.Transpose()
	}
	n := work.Cols
	desc := inv == core.Inv3 || inv == core.Inv4 || inv == core.Inv7 || inv == core.Inv8

	var running int64
	if got := InvariantValue(a, inv, 0); got != 0 {
		return fmt.Errorf("flame: %v initialization: invariant claims %d, want 0", inv, got)
	}
	for step := 0; step < n; step++ {
		col := step
		if desc {
			col = n - 1 - step
		}
		a1 := work.SubMatrix(0, work.Rows, col, col+1)
		running += updateValue(a1, partnerPartition(work, inv, col))

		want := InvariantValue(a, inv, step+1)
		if running != want {
			return fmt.Errorf("flame: %v maintenance violated after exposing %d vertices: count %d, invariant %d",
				inv, step+1, running, want)
		}
	}
	if post := dense.SpecCount(a); running != post {
		return fmt.Errorf("flame: %v termination: count %d, postcondition %d", inv, running, post)
	}
	return nil
}

// CheckAll runs CheckInvariant for the whole family.
func CheckAll(a *dense.Matrix) error {
	for _, inv := range core.Invariants() {
		if err := CheckInvariant(a, inv); err != nil {
			return err
		}
	}
	return nil
}
