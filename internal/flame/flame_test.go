package flame

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"butterfly/internal/core"
	"butterfly/internal/dense"
)

func randBinary(rng *rand.Rand, m, n int) *dense.Matrix {
	d := dense.New(m, n)
	p := 0.2 + 0.6*rng.Float64()
	for i := range d.Data {
		if rng.Float64() < p {
			d.Data[i] = 1
		}
	}
	return d
}

// The headline: all three FLAME proof obligations hold for every
// family member on random graphs.
func TestQuickCheckAllInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randBinary(rng, rng.Intn(7)+1, rng.Intn(7)+1)
		return CheckAll(a) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Exhaustive universe: every 3×3 graph passes every obligation of
// every invariant — the full derivation argument holds with no
// sampling gaps.
func TestExhaustiveCheck3x3(t *testing.T) {
	for bits := 0; bits < 1<<9; bits++ {
		a := dense.New(3, 3)
		for c := 0; c < 9; c++ {
			if bits&(1<<c) != 0 {
				a.Data[c] = 1
			}
		}
		if err := CheckAll(a); err != nil {
			t.Fatalf("graph %v: %v", a.Data, err)
		}
	}
}

// Equation (10)'s three categories are disjoint and complete: they sum
// to the specification for every split.
func TestQuickPartitionTermsSumToSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randBinary(rng, rng.Intn(7)+1, rng.Intn(7)+1)
		want := dense.SpecCount(a)
		for split := 0; split <= a.Cols; split++ {
			xiL, xiLR, xiR := PartitionTerms(a, split)
			if xiL+xiLR+xiR != want {
				return false
			}
			if xiL < 0 || xiLR < 0 || xiR < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionTermsExtremes(t *testing.T) {
	a := dense.Ones(3, 4) // K(3,4)
	total := dense.SpecCount(a)
	xiL, xiLR, xiR := PartitionTerms(a, 0)
	if xiL != 0 || xiLR != 0 || xiR != total {
		t.Fatalf("split 0: %d %d %d", xiL, xiLR, xiR)
	}
	xiL, xiLR, xiR = PartitionTerms(a, 4)
	if xiL != total || xiLR != 0 || xiR != 0 {
		t.Fatalf("split 4: %d %d %d", xiL, xiLR, xiR)
	}
}

// InvariantValue at the loop's start is always 0 and at the loop's end
// is always the postcondition — obligations 1 and 3 in closed form.
func TestQuickInvariantBoundaryValues(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randBinary(rng, rng.Intn(7)+1, rng.Intn(7)+1)
		want := dense.SpecCount(a)
		for _, inv := range core.Invariants() {
			n := a.Cols
			if !inv.PartitionsV2() {
				n = a.Rows
			}
			if InvariantValue(a, inv, 0) != 0 {
				return false
			}
			if InvariantValue(a, inv, n) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// A deliberately wrong "count" must be caught: mutate the update by
// running Inv1's updates but checking Inv2's invariant on a graph
// where they differ.
func TestCheckCatchesWrongInvariant(t *testing.T) {
	// K(2,2): with one column exposed, Inv1 claims 0 (Ξ_L of a single
	// column) while Inv2 claims Ξ_L + Ξ_LR = 1. So a hybrid
	// (Inv2-update, Inv1-claim) must fail maintenance. We simulate by
	// asserting the two invariant values differ mid-loop.
	a := dense.Ones(2, 2)
	if InvariantValue(a, core.Inv1, 1) == InvariantValue(a, core.Inv2, 1) {
		t.Fatal("test premise broken: invariants agree mid-loop on K(2,2)")
	}
}

func TestCheckInvariantRejectsNonBinary(t *testing.T) {
	a := dense.New(2, 2)
	a.Set(0, 0, 2)
	if err := CheckInvariant(a, core.Inv1); err == nil {
		t.Fatal("non-binary accepted")
	}
}

func TestInvariantValuePanics(t *testing.T) {
	a := dense.Ones(2, 2)
	for name, fn := range map[string]func(){
		"badInvariant": func() { InvariantValue(a, core.Invariant(0), 1) },
		"badExposed":   func() { InvariantValue(a, core.Inv1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// The row-partitioned family's invariant values equal the
// column-partitioned family's on the transpose.
func TestQuickRowFamilyIsTransposedColumnFamily(t *testing.T) {
	pairs := [][2]core.Invariant{
		{core.Inv5, core.Inv1}, {core.Inv6, core.Inv2},
		{core.Inv7, core.Inv3}, {core.Inv8, core.Inv4},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randBinary(rng, rng.Intn(6)+1, rng.Intn(6)+1)
		at := a.Transpose()
		for _, p := range pairs {
			for exposed := 0; exposed <= a.Rows; exposed++ {
				if InvariantValue(a, p[0], exposed) != InvariantValue(at, p[1], exposed) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestWorksheetContent(t *testing.T) {
	for _, inv := range core.Invariants() {
		ws := Worksheet(inv)
		for _, want := range []string{
			"precondition:   ΞG = 0",
			"eq. 7", "eq. 18",
			"loop invariant", "loop guard", "initialization",
			inv.String(),
		} {
			if !strings.Contains(ws, want) {
				t.Fatalf("%v worksheet missing %q:\n%s", inv, want, ws)
			}
		}
	}
	// Family-specific content.
	if !strings.Contains(Worksheet(core.Inv2), "look-ahead") {
		t.Fatal("Inv2 worksheet must flag look-ahead")
	}
	if strings.Contains(Worksheet(core.Inv1), "look-ahead") {
		t.Fatal("Inv1 worksheet must not flag look-ahead")
	}
	if !strings.Contains(Worksheet(core.Inv5), "A_T") {
		t.Fatal("row family must use T/B partition names")
	}
	if !strings.Contains(Worksheet(core.Inv3), "right-to-left") {
		t.Fatal("Inv3 must traverse right-to-left")
	}
	if !strings.Contains(Worksheet(core.Inv1), "ΞG = Ξ_L") {
		t.Fatal("Inv1 invariant form wrong")
	}
	if !strings.Contains(Worksheet(core.Inv6), "Ξ_T + Ξ_TB") {
		t.Fatal("Inv6 invariant form wrong")
	}
}

func TestWorksheetPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Worksheet(core.Invariant(0))
}

func TestPartnerPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	partnerPartition(dense.Ones(2, 2), core.Invariant(0), 0)
}

func TestCheckAllPropagatesFailure(t *testing.T) {
	// Non-binary input is rejected through CheckAll too.
	a := dense.New(2, 2)
	a.Set(0, 0, 2)
	if err := CheckAll(a); err == nil {
		t.Fatal("non-binary accepted by CheckAll")
	}
}

func TestPartitionTermsPanicsOnBadInput(t *testing.T) {
	// A non-binary "adjacency" breaks the divisibility invariants.
	a := dense.New(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	defer func() { recover() }()
	for split := 0; split <= 2; split++ {
		PartitionTerms(a, split)
	}
	// Reaching here without panic is fine too: divisibility may hold by
	// accident for some non-binary inputs; the guard is best-effort.
}
