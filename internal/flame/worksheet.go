package flame

import (
	"fmt"
	"strings"

	"butterfly/internal/core"
)

// Worksheet renders the paper's eight-step FLAME worksheet for one
// invariant as text — the derivation of Section III-C instantiated for
// every family member. The output is deterministic, suitable for
// documentation, teaching, and golden tests.
func Worksheet(inv core.Invariant) string {
	if inv < core.Inv1 || inv > core.Inv8 {
		panic("flame: invalid invariant " + inv.String())
	}
	colFamily := inv.PartitionsV2()

	// Naming per family: columns are partitioned L|R, rows T/B. The
	// exposed unit is a column a1 of A (or a row a1ᵀ).
	var (
		partA, partB string // partition names
		unit         string
		guard        string
		initName     string
		traverse     string
		sizeFn       string
	)
	if colFamily {
		partA, partB = "A_L", "A_R"
		unit = "a1 (one column of A, the neighborhood of a vertex of V2)"
		sizeFn = "n(·) = number of columns"
	} else {
		partA, partB = "A_T", "A_B"
		unit = "a1ᵀ (one row of A, the neighborhood of a vertex of V1)"
		sizeFn = "m(·) = number of rows"
	}

	desc := inv == core.Inv3 || inv == core.Inv4 || inv == core.Inv7 || inv == core.Inv8
	if colFamily {
		if desc {
			traverse = partB + " grows right-to-left"
			guard = "n(" + partB + ") < n(A)"
			initName = partB + " has 0 columns"
		} else {
			traverse = partA + " grows left-to-right"
			guard = "n(" + partA + ") < n(A)"
			initName = partA + " has 0 columns"
		}
	} else {
		if desc {
			traverse = partB + " grows bottom-to-top"
			guard = "m(" + partB + ") < m(A)"
			initName = partB + " has 0 rows"
		} else {
			traverse = partA + " grows top-to-bottom"
			guard = "m(" + partA + ") < m(A)"
			initName = partA + " has 0 rows"
		}
	}

	var invariantForm, partner string
	switch inv {
	case core.Inv1, core.Inv5:
		invariantForm = "ΞG = Ξ_" + suffix(partA)
		partner = "A0 (the already-exposed partition)"
	case core.Inv2, core.Inv6:
		invariantForm = "ΞG = Ξ_" + suffix(partA) + " + Ξ_" + suffix(partA) + suffix(partB)
		partner = "A2 (the not-yet-exposed partition — look-ahead)"
	case core.Inv3, core.Inv7:
		invariantForm = "ΞG = Ξ_" + suffix(partB) + " + Ξ_" + suffix(partA) + suffix(partB)
		partner = "A0 (the not-yet-exposed partition — look-ahead)"
	case core.Inv4, core.Inv8:
		invariantForm = "ΞG = Ξ_" + suffix(partB)
		partner = "A2 (the already-exposed partition)"
	}

	var sb strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&sb, format+"\n", args...) }
	w("FLAME worksheet — %v (%s)", inv, familyName(inv))
	w("Step 1  precondition:   ΞG = 0")
	w("        postcondition:  ΞG = ¼Γ(AAᵀAAᵀ) − ¼Γ(AAᵀ∘AAᵀ) − (¼Γ(JAAᵀ) − ¼Γ(AAᵀ))   (eq. 7)")
	w("Step 2  loop invariant:  %s   (counted butterflies so far)", invariantForm)
	w("Step 3  loop guard:      %s   [%s]", guard, sizeFn)
	w("Step 4  initialization:  %s  ⇒  precondition implies the invariant", initName)
	w("Step 5  progress:        expose %s; %s", unit, traverse)
	w("Step 6/7 states around the update follow by substituting the 3-way repartition")
	w("        (A0 | a1 | A2) into the invariant (trace is rotation-invariant).")
	w("Step 8  update:          ΞG := ½·a1ᵀ·Ap·Apᵀ·a1 − ½·Γ(a1a1ᵀ ∘ ApApᵀ) + ΞG   (eq. 18)")
	w("        with Ap = %s;", partner)
	w("        implemented as Σ_j C(β_j, 2) over a wedge accumulator —")
	w("        the subtraction term is never materialized.")
	return sb.String()
}

func suffix(part string) string { return part[len(part)-1:] }

func familyName(inv core.Invariant) string {
	if inv.PartitionsV2() {
		return "partitions V2, Fig 6"
	}
	return "partitions V1, Fig 7"
}
