package gen

import (
	"fmt"
	"math/rand"

	"butterfly/internal/graph"
)

// PreferentialAttachment grows a bipartite graph edge by edge: each new
// edge picks its endpoints by "rich get richer" sampling — an existing
// vertex is chosen with probability proportional to its current degree
// plus one, so heavy-tailed degree distributions *emerge* rather than
// being imposed (the bipartite analogue of Barabási–Albert). Unlike
// ChungLu, the realized degree skew is an output of the process, which
// makes this the right workload when a sweep must vary skew without
// hand-tuning weight exponents.
//
// m and n fix the vertex-set sizes; e edges are added (duplicates are
// merged by the builder, so the realized edge count can be slightly
// lower). Deterministic given seed.
func PreferentialAttachment(m, n int, e int64, seed int64) *graph.Bipartite {
	if m <= 0 || n <= 0 {
		panic(fmt.Sprintf("gen: PreferentialAttachment needs positive sides, got %d/%d", m, n))
	}
	if e < 0 {
		panic(fmt.Sprintf("gen: negative edge count %d", e))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(m, n)

	// deg+1 sampling via repeated-index urns: urn slices hold one entry
	// per (vertex, degree unit); each vertex starts with one "+1" entry
	// so cold vertices stay reachable.
	urn1 := make([]int32, 0, m+int(e))
	for u := 0; u < m; u++ {
		urn1 = append(urn1, int32(u))
	}
	urn2 := make([]int32, 0, n+int(e))
	for v := 0; v < n; v++ {
		urn2 = append(urn2, int32(v))
	}
	for i := int64(0); i < e; i++ {
		u := urn1[rng.Intn(len(urn1))]
		v := urn2[rng.Intn(len(urn2))]
		b.AddEdge(int(u), int(v))
		urn1 = append(urn1, u)
		urn2 = append(urn2, v)
	}
	return b.Build()
}
