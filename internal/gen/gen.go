package gen

import (
	"fmt"
	"math"
	"math/rand"

	"butterfly/internal/graph"
)

// ErdosRenyi samples each of the m·n possible edges independently with
// probability p. For small p it uses geometric gap skipping so the cost
// is O(|E|), not O(m·n).
func ErdosRenyi(m, n int, p float64, seed int64) *graph.Bipartite {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("gen: probability %f out of [0,1]", p))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(m, n)
	if p == 0 || m == 0 || n == 0 {
		return b.Build()
	}
	if p == 1 {
		for u := 0; u < m; u++ {
			for v := 0; v < n; v++ {
				b.AddEdge(u, v)
			}
		}
		return b.Build()
	}
	total := int64(m) * int64(n)
	// Walk cell indices with geometric gaps: the next success after a
	// failure run of length k has probability (1-p)^k p.
	logq := math.Log1p(-p)
	cell := int64(-1)
	for {
		gap := int64(math.Log(1-rng.Float64()) / logq)
		cell += gap + 1
		if cell >= total {
			break
		}
		b.AddEdge(int(cell/int64(n)), int(cell%int64(n)))
	}
	return b.Build()
}

// Gnm samples exactly e distinct edges uniformly from the m·n possible
// ones (bipartite G(n, m) model).
func Gnm(m, n int, e int64, seed int64) *graph.Bipartite {
	total := int64(m) * int64(n)
	if e < 0 || e > total {
		panic(fmt.Sprintf("gen: edge count %d out of [0,%d]", e, total))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(m, n)
	seen := make(map[int64]struct{}, e)
	for int64(len(seen)) < e {
		cell := rng.Int63n(total)
		if _, dup := seen[cell]; dup {
			continue
		}
		seen[cell] = struct{}{}
		b.AddEdge(int(cell/int64(n)), int(cell%int64(n)))
	}
	return b.Build()
}

// ChungLu samples approximately e distinct edges with endpoint
// probabilities proportional to the supplied weight vectors — the
// bipartite Chung–Lu model. Duplicates are rejected; sampling stops
// when e distinct edges are found or the duplicate rate shows the
// weighted space is exhausted (maxAttempts = 50·e draws).
func ChungLu(w1, w2 []float64, e int64, seed int64) *graph.Bipartite {
	m, n := len(w1), len(w2)
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(m, n)
	if e == 0 {
		return b.Build()
	}
	s1 := NewAliasSampler(w1)
	s2 := NewAliasSampler(w2)
	seen := make(map[int64]struct{}, e)
	attempts := int64(0)
	maxAttempts := 50 * e
	for int64(len(seen)) < e && attempts < maxAttempts {
		attempts++
		u := s1.Sample(rng)
		v := s2.Sample(rng)
		key := int64(u)*int64(n) + int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// PowerLawBipartite is the convenience form of ChungLu with power-law
// weights of exponent alpha1 for V1 and alpha2 for V2.
func PowerLawBipartite(m, n int, e int64, alpha1, alpha2 float64, seed int64) *graph.Bipartite {
	return ChungLu(PowerLawWeights(m, alpha1), PowerLawWeights(n, alpha2), e, seed)
}

// ConfigurationModel realizes the given degree sequences exactly-ish:
// stubs of both sides are shuffled and matched; duplicate pairings are
// dropped (simple graph), so realized degrees can fall slightly short
// for heavy-tailed sequences. Panics if the degree sums differ.
func ConfigurationModel(deg1, deg2 []int, seed int64) *graph.Bipartite {
	var s1, s2 int
	for _, d := range deg1 {
		if d < 0 {
			panic("gen: negative degree")
		}
		s1 += d
	}
	for _, d := range deg2 {
		if d < 0 {
			panic("gen: negative degree")
		}
		s2 += d
	}
	if s1 != s2 {
		panic(fmt.Sprintf("gen: degree sums differ: %d vs %d", s1, s2))
	}
	stubs1 := make([]int32, 0, s1)
	for u, d := range deg1 {
		for k := 0; k < d; k++ {
			stubs1 = append(stubs1, int32(u))
		}
	}
	stubs2 := make([]int32, 0, s2)
	for v, d := range deg2 {
		for k := 0; k < d; k++ {
			stubs2 = append(stubs2, int32(v))
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(stubs2), func(i, j int) { stubs2[i], stubs2[j] = stubs2[j], stubs2[i] })

	b := graph.NewBuilder(len(deg1), len(deg2))
	for k := range stubs1 {
		b.AddEdge(int(stubs1[k]), int(stubs2[k])) // duplicates merged by the builder
	}
	return b.Build()
}

// CompleteBipartite returns K(a, b); it has C(a,2)·C(b,2) butterflies.
func CompleteBipartite(a, b int) *graph.Bipartite {
	bl := graph.NewBuilder(a, b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			bl.AddEdge(u, v)
		}
	}
	return bl.Build()
}

// Cycle returns the bipartite form of the cycle C(2k): k vertices per
// side, u_i adjacent to v_i and v_{(i+1) mod k}. For k ≥ 3 it has zero
// butterflies; C4 (k = 2) is itself a butterfly.
func Cycle(k int) *graph.Bipartite {
	if k < 2 {
		panic("gen: Cycle needs k ≥ 2")
	}
	b := graph.NewBuilder(k, k)
	for i := 0; i < k; i++ {
		b.AddEdge(i, i)
		b.AddEdge(i, (i+1)%k)
	}
	return b.Build()
}

// Star returns a star: one V1 hub adjacent to n V2 leaves. Butterfly
// count is zero.
func Star(n int) *graph.Bipartite {
	b := graph.NewBuilder(1, n)
	for v := 0; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}

// BicliqueChain returns c copies of K(a,b) sharing no vertices, a
// workload whose exact butterfly count c·C(a,2)·C(b,2) is known in
// closed form — handy for validating counters at scale.
func BicliqueChain(c, a, b int) *graph.Bipartite {
	bl := graph.NewBuilder(c*a, c*b)
	for blk := 0; blk < c; blk++ {
		for u := 0; u < a; u++ {
			for v := 0; v < b; v++ {
				bl.AddEdge(blk*a+u, blk*b+v)
			}
		}
	}
	return bl.Build()
}
