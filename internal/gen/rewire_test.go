package gen

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRewirePreservesDegrees(t *testing.T) {
	g := PowerLawBipartite(200, 150, 1500, 0.7, 0.7, 3)
	h := Rewire(g, 3000, 7)
	if h.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", h.NumEdges(), g.NumEdges())
	}
	for u := 0; u < g.NumV1(); u++ {
		if h.DegreeV1(u) != g.DegreeV1(u) {
			t.Fatalf("V1 degree of %d changed", u)
		}
	}
	for v := 0; v < g.NumV2(); v++ {
		if h.DegreeV2(v) != g.DegreeV2(v) {
			t.Fatalf("V2 degree of %d changed", v)
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// With thousands of swaps the edge set must actually change.
	if h.Equal(g) {
		t.Fatal("rewiring did not change the graph")
	}
}

func TestRewireDeterministicAndNoOp(t *testing.T) {
	g := PowerLawBipartite(50, 50, 300, 0.7, 0.7, 4)
	if !Rewire(g, 500, 9).Equal(Rewire(g, 500, 9)) {
		t.Fatal("same seed differs")
	}
	if !Rewire(g, 0, 9).Equal(g) {
		t.Fatal("0 swaps changed the graph")
	}
	// Graphs too small to swap come back unchanged.
	if !Rewire(Star(1), 10, 1).Equal(Star(1)) {
		t.Fatal("single-edge graph changed")
	}
}

func TestRewireCompleteGraphIsFixed(t *testing.T) {
	// No swap is possible in a complete bipartite graph: every
	// candidate edge already exists.
	g := CompleteBipartite(4, 4)
	if !Rewire(g, 100, 2).Equal(g) {
		t.Fatal("complete graph rewired")
	}
}

func TestRewireNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Rewire(Star(2), -1, 1)
}

// Property: degrees always preserved, graph always simple.
func TestQuickRewireInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := rng.Intn(15)+2, rng.Intn(15)+2
		e := int64(rng.Intn(40) + 2)
		if limit := int64(m) * int64(n); e > limit {
			e = limit
		}
		g := Gnm(m, n, e, seed)
		h := Rewire(g, 50, seed+1)
		if h.Validate() != nil || h.NumEdges() != g.NumEdges() {
			return false
		}
		for u := 0; u < g.NumV1(); u++ {
			if h.DegreeV1(u) != g.DegreeV1(u) {
				return false
			}
		}
		for v := 0; v < g.NumV2(); v++ {
			if h.DegreeV2(v) != g.DegreeV2(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSBMStructure(t *testing.T) {
	// Two paired 20×20 blocks with dense intra-block wiring.
	g := SBM([]int{20, 20}, []int{20, 20}, 0.5, 0.02, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumV1() != 40 || g.NumV2() != 40 {
		t.Fatalf("sizes %d/%d", g.NumV1(), g.NumV2())
	}
	// Intra-block density ≫ inter-block density.
	intra, inter := 0, 0
	for u := 0; u < 40; u++ {
		for _, v := range g.NeighborsOfV1(u) {
			if (u < 20) == (int(v) < 20) {
				intra++
			} else {
				inter++
			}
		}
	}
	if intra < 5*inter {
		t.Fatalf("no community structure: intra %d, inter %d", intra, inter)
	}
	// Deterministic.
	if !g.Equal(SBM([]int{20, 20}, []int{20, 20}, 0.5, 0.02, 5)) {
		t.Fatal("same seed differs")
	}
}

func TestSBMUnpairedBlocksAndExtremes(t *testing.T) {
	// More blocks on one side than the other: extra blocks still connect
	// at pOut.
	g := SBM([]int{5, 5, 5}, []int{5}, 1, 0, 1)
	// Block 0 pairs: complete 5×5; blocks 1,2 have no edges (pOut=0).
	if g.NumEdges() != 25 {
		t.Fatalf("edges = %d, want 25", g.NumEdges())
	}
	for u := 5; u < 15; u++ {
		if g.DegreeV1(u) != 0 {
			t.Fatal("unpaired block gained edges at pOut=0")
		}
	}
	empty := SBM([]int{3}, []int{3}, 0, 0, 1)
	if empty.NumEdges() != 0 {
		t.Fatal("p=0 SBM has edges")
	}
}

func TestSBMPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"badP":     func() { SBM([]int{2}, []int{2}, 1.5, 0, 1) },
		"negBlock": func() { SBM([]int{-1}, []int{2}, 0.5, 0.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
