package gen

import (
	"fmt"
	"sort"

	"butterfly/internal/graph"
)

// DatasetSpec describes a KONECT dataset stand-in: the exact vertex-set
// sizes and edge count of the paper's Fig 9, plus the power-law
// exponents used to mimic a heavy-tailed real-world degree profile.
//
// Substitution note (see DESIGN.md §4): the paper downloads these five
// datasets from KONECT. Offline, we generate seeded Chung–Lu graphs
// with identical |V1|, |V2| and |E|. The evaluation's findings —
// partition-size asymmetry and edge-sparsity effects — depend only on
// those preserved quantities; the absolute butterfly count differs and
// is recorded in EXPERIMENTS.md.
type DatasetSpec struct {
	Name   string
	V1, V2 int
	Edges  int64
	// Alpha1/Alpha2 shape the degree skew of each side.
	Alpha1, Alpha2 float64
	Seed           int64
	// PaperButterflies is the ΞG KONECT reports (Fig 9), kept for the
	// paper-vs-measured table.
	PaperButterflies int64
}

// The five datasets of Fig 9, in paper order.
var paperSpecs = []DatasetSpec{
	{Name: "arxiv-cond-mat", V1: 16726, V2: 22015, Edges: 58595, Alpha1: 0.7, Alpha2: 0.7, Seed: 101, PaperButterflies: 70549},
	{Name: "producers", V1: 48833, V2: 138844, Edges: 207268, Alpha1: 0.65, Alpha2: 0.65, Seed: 102, PaperButterflies: 266983},
	{Name: "record-labels", V1: 168337, V2: 18421, Edges: 233286, Alpha1: 0.55, Alpha2: 0.75, Seed: 103, PaperButterflies: 1086886},
	{Name: "occupations", V1: 127577, V2: 101730, Edges: 250945, Alpha1: 0.7, Alpha2: 0.75, Seed: 104, PaperButterflies: 24509245},
	{Name: "github", V1: 56519, V2: 120867, Edges: 440237, Alpha1: 0.75, Alpha2: 0.75, Seed: 105, PaperButterflies: 50894505},
}

// PaperDatasetNames lists the stand-in dataset names in Fig 9 order.
func PaperDatasetNames() []string {
	names := make([]string, len(paperSpecs))
	for i, s := range paperSpecs {
		names[i] = s.Name
	}
	return names
}

// PaperDatasetSpec returns the spec for a named dataset.
func PaperDatasetSpec(name string) (DatasetSpec, error) {
	for _, s := range paperSpecs {
		if s.Name == name {
			return s, nil
		}
	}
	known := PaperDatasetNames()
	sort.Strings(known)
	return DatasetSpec{}, fmt.Errorf("gen: unknown dataset %q (known: %v)", name, known)
}

// Generate realizes the spec as a graph.
func (s DatasetSpec) Generate() *graph.Bipartite {
	return PowerLawBipartite(s.V1, s.V2, s.Edges, s.Alpha1, s.Alpha2, s.Seed)
}

// PaperDataset generates the named stand-in.
func PaperDataset(name string) (*graph.Bipartite, error) {
	s, err := PaperDatasetSpec(name)
	if err != nil {
		return nil, err
	}
	return s.Generate(), nil
}

// ScaledPaperDataset generates the named stand-in shrunk by factor f
// (vertices and edges divided by f) — used by `go test -bench` sanity
// runs where the full sizes would dominate the suite.
func ScaledPaperDataset(name string, f int) (*graph.Bipartite, error) {
	if f < 1 {
		return nil, fmt.Errorf("gen: scale factor %d < 1", f)
	}
	s, err := PaperDatasetSpec(name)
	if err != nil {
		return nil, err
	}
	s.V1 = max(2, s.V1/f)
	s.V2 = max(2, s.V2/f)
	s.Edges = maxI64(1, s.Edges/int64(f))
	if limit := int64(s.V1) * int64(s.V2); s.Edges > limit {
		s.Edges = limit
	}
	return s.Generate(), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
