package gen

import (
	"fmt"
	"math/rand"

	"butterfly/internal/graph"
)

// SBM samples a bipartite stochastic block model: V1 is partitioned
// into len(blocks1) communities with the given sizes, V2 likewise into
// len(blocks2); an edge between a V1 vertex of community a and a V2
// vertex of community b appears independently with probability
// pIn when a == b (paired communities; extra unpaired communities use
// pOut everywhere) and pOut otherwise. The planted-partition workload
// for community detection, significance testing and the anomaly
// example: butterflies concentrate inside paired blocks.
func SBM(blocks1, blocks2 []int, pIn, pOut float64, seed int64) *graph.Bipartite {
	if pIn < 0 || pIn > 1 || pOut < 0 || pOut > 1 {
		panic(fmt.Sprintf("gen: SBM probabilities (%f, %f) out of [0,1]", pIn, pOut))
	}
	var m, n int
	comm1 := blockLabels(blocks1, &m)
	comm2 := blockLabels(blocks2, &n)

	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(m, n)
	for u := 0; u < m; u++ {
		for v := 0; v < n; v++ {
			p := pOut
			if comm1[u] == comm2[v] {
				p = pIn
			}
			if p > 0 && rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// blockLabels expands block sizes into a per-vertex community vector,
// accumulating the total size into *total. Blocks beyond the other
// side's count never pair (label −1−index would collide across sides,
// so labels are the block index; pairing is by equal index).
func blockLabels(blocks []int, total *int) []int32 {
	for _, s := range blocks {
		if s < 0 {
			panic(fmt.Sprintf("gen: negative block size %d", s))
		}
		*total += s
	}
	labels := make([]int32, 0, *total)
	for idx, s := range blocks {
		for i := 0; i < s; i++ {
			labels = append(labels, int32(idx))
		}
	}
	return labels
}
