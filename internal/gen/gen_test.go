package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAliasSamplerDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	s := NewAliasSampler(weights)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 4)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[s.Sample(rng)]++
	}
	for i, w := range weights {
		want := w / 10 * draws
		got := float64(counts[i])
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("index %d: %0.f draws, want ≈%0.f", i, got, want)
		}
	}
}

func TestAliasSamplerDegenerate(t *testing.T) {
	s := NewAliasSampler([]float64{0, 5, 0})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		if got := s.Sample(rng); got != 1 {
			t.Fatalf("draw %d from single-mass distribution: got %d", i, got)
		}
	}
}

func TestAliasSamplerPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"allZero":  {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			NewAliasSampler(weights)
		}()
	}
}

func TestPowerLawWeights(t *testing.T) {
	w := PowerLawWeights(5, 1)
	for i := 1; i < 5; i++ {
		if w[i] >= w[i-1] {
			t.Fatal("power-law weights not decreasing")
		}
	}
	u := PowerLawWeights(4, 0)
	for _, v := range u {
		if v != 1 {
			t.Fatal("alpha=0 should give uniform weights")
		}
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	g0 := ErdosRenyi(10, 10, 0, 1)
	if g0.NumEdges() != 0 {
		t.Fatalf("p=0 edges = %d", g0.NumEdges())
	}
	g1 := ErdosRenyi(7, 5, 1, 1)
	if g1.NumEdges() != 35 {
		t.Fatalf("p=1 edges = %d, want 35", g1.NumEdges())
	}
	if ErdosRenyi(0, 10, 0.5, 1).NumEdges() != 0 {
		t.Fatal("empty side should give no edges")
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	g := ErdosRenyi(300, 300, 0.05, 42)
	want := 0.05 * 300 * 300
	got := float64(g.NumEdges())
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("edges = %0.f, want ≈%0.f", got, want)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiBadPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p > 1 did not panic")
		}
	}()
	ErdosRenyi(2, 2, 1.5, 1)
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(50, 50, 0.1, 7)
	b := ErdosRenyi(50, 50, 0.1, 7)
	if !a.Equal(b) {
		t.Fatal("same seed produced different graphs")
	}
	c := ErdosRenyi(50, 50, 0.1, 8)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

func TestGnmExact(t *testing.T) {
	g := Gnm(40, 60, 500, 3)
	if g.NumEdges() != 500 {
		t.Fatalf("Gnm edges = %d, want 500", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	full := Gnm(5, 5, 25, 3)
	if full.NumEdges() != 25 {
		t.Fatal("Gnm saturation failed")
	}
}

func TestGnmBadCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("excessive edge count did not panic")
		}
	}()
	Gnm(2, 2, 5, 1)
}

func TestChungLuEdgeCountAndSkew(t *testing.T) {
	g := PowerLawBipartite(500, 400, 3000, 0.8, 0.8, 11)
	if g.NumEdges() != 3000 {
		t.Fatalf("ChungLu edges = %d, want 3000", g.NumEdges())
	}
	// Vertex 0 has the largest weight; its degree should dominate the
	// median vertex's.
	d0 := g.DegreeV1(0)
	dMid := g.DegreeV1(250)
	if d0 <= dMid {
		t.Fatalf("no degree skew: deg(0)=%d deg(250)=%d", d0, dMid)
	}
}

func TestChungLuDeterministic(t *testing.T) {
	a := PowerLawBipartite(100, 100, 400, 0.7, 0.7, 5)
	b := PowerLawBipartite(100, 100, 400, 0.7, 0.7, 5)
	if !a.Equal(b) {
		t.Fatal("same seed produced different ChungLu graphs")
	}
}

func TestChungLuZeroEdges(t *testing.T) {
	if ChungLu([]float64{1}, []float64{1}, 0, 1).NumEdges() != 0 {
		t.Fatal("zero-edge ChungLu not empty")
	}
}

func TestChungLuSaturation(t *testing.T) {
	// Request more edges than the weighted support can provide: a 2×2
	// graph has only 4 cells; request 4 and ensure termination.
	g := ChungLu([]float64{1, 1}, []float64{1, 1}, 4, 1)
	if g.NumEdges() > 4 {
		t.Fatalf("edges = %d > 4", g.NumEdges())
	}
}

func TestConfigurationModel(t *testing.T) {
	deg1 := []int{3, 2, 1}
	deg2 := []int{2, 2, 2}
	g := ConfigurationModel(deg1, deg2, 9)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Dedup can only lower degrees.
	for u, d := range deg1 {
		if g.DegreeV1(u) > d {
			t.Fatalf("degree of u%d = %d exceeds target %d", u, g.DegreeV1(u), d)
		}
	}
	for v, d := range deg2 {
		if g.DegreeV2(v) > d {
			t.Fatalf("degree of v%d = %d exceeds target %d", v, g.DegreeV2(v), d)
		}
	}
}

func TestConfigurationModelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched degree sums did not panic")
		}
	}()
	ConfigurationModel([]int{2}, []int{1}, 1)
}

func TestStructuredFamilies(t *testing.T) {
	k := CompleteBipartite(3, 4)
	if k.NumEdges() != 12 || k.NumV1() != 3 || k.NumV2() != 4 {
		t.Fatalf("K(3,4) wrong: %s", k)
	}
	c := Cycle(5)
	if c.NumEdges() != 10 {
		t.Fatalf("C10 edges = %d", c.NumEdges())
	}
	for i := 0; i < 5; i++ {
		if c.DegreeV1(i) != 2 || c.DegreeV2(i) != 2 {
			t.Fatal("cycle degree != 2")
		}
	}
	s := Star(6)
	if s.NumEdges() != 6 || s.DegreeV1(0) != 6 {
		t.Fatal("star wrong")
	}
	bc := BicliqueChain(3, 2, 2)
	if bc.NumEdges() != 12 || bc.NumV1() != 6 || bc.NumV2() != 6 {
		t.Fatalf("BicliqueChain wrong: %s", bc)
	}
	// Blocks must be disjoint: u0 connects only to v0, v1.
	if bc.HasEdge(0, 2) {
		t.Fatal("BicliqueChain blocks overlap")
	}
}

func TestCyclePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Cycle(1) did not panic")
		}
	}()
	Cycle(1)
}

func TestPaperDatasetSpecs(t *testing.T) {
	names := PaperDatasetNames()
	if len(names) != 5 {
		t.Fatalf("expected 5 paper datasets, got %d", len(names))
	}
	wantSizes := map[string][3]int64{
		"arxiv-cond-mat": {16726, 22015, 58595},
		"producers":      {48833, 138844, 207268},
		"record-labels":  {168337, 18421, 233286},
		"occupations":    {127577, 101730, 250945},
		"github":         {56519, 120867, 440237},
	}
	for name, want := range wantSizes {
		s, err := PaperDatasetSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		if int64(s.V1) != want[0] || int64(s.V2) != want[1] || s.Edges != want[2] {
			t.Errorf("%s: spec %d/%d/%d, want %v", name, s.V1, s.V2, s.Edges, want)
		}
		if s.PaperButterflies <= 0 {
			t.Errorf("%s: missing paper butterfly count", name)
		}
	}
	if _, err := PaperDatasetSpec("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestScaledPaperDataset(t *testing.T) {
	g, err := ScaledPaperDataset("arxiv-cond-mat", 100)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumV1() != 167 || g.NumV2() != 220 {
		t.Fatalf("scaled sizes %d/%d", g.NumV1(), g.NumV2())
	}
	if g.NumEdges() != 585 {
		t.Fatalf("scaled edges = %d", g.NumEdges())
	}
	if _, err := ScaledPaperDataset("arxiv-cond-mat", 0); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if _, err := ScaledPaperDataset("nope", 2); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestPaperDatasetGenerateSmallest(t *testing.T) {
	if testing.Short() {
		t.Skip("full dataset generation in -short mode")
	}
	g, err := PaperDataset("arxiv-cond-mat")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumV1() != 16726 || g.NumV2() != 22015 {
		t.Fatalf("sizes %d/%d", g.NumV1(), g.NumV2())
	}
	if g.NumEdges() != 58595 {
		t.Fatalf("edges = %d, want 58595", g.NumEdges())
	}
}

// Property: generators always produce structurally valid simple graphs
// within bounds.
func TestQuickGeneratorsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := rng.Intn(20)+1, rng.Intn(20)+1
		e := int64(rng.Intn(m*n + 1))
		for _, g := range []interface{ Validate() error }{
			ErdosRenyi(m, n, rng.Float64(), seed),
			Gnm(m, n, e, seed),
			PowerLawBipartite(m, n, e, rng.Float64()*1.5, rng.Float64()*1.5, seed),
		} {
			if g.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(400, 300, 3000, 21)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 || g.NumEdges() > 3000 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// Rich-get-richer must produce skew: max degree well above mean.
	maxDeg := 0
	for u := 0; u < g.NumV1(); u++ {
		if d := g.DegreeV1(u); d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(g.NumEdges()) / 400
	if float64(maxDeg) < 3*mean {
		t.Fatalf("no skew: max %d vs mean %.1f", maxDeg, mean)
	}
	// Deterministic.
	if !g.Equal(PreferentialAttachment(400, 300, 3000, 21)) {
		t.Fatal("same seed differs")
	}
	if g.Equal(PreferentialAttachment(400, 300, 3000, 22)) {
		t.Fatal("different seed identical")
	}
}

func TestPreferentialAttachmentPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zeroSide": func() { PreferentialAttachment(0, 3, 1, 1) },
		"negEdges": func() { PreferentialAttachment(3, 3, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
