// Package gen produces synthetic bipartite graphs: classic random
// models (Erdős–Rényi, G(n,m), Chung–Lu, configuration model),
// structured families with closed-form butterfly counts (complete
// bipartite, cycles, stars), and seeded stand-ins for the five KONECT
// datasets of the paper's evaluation (see datasets.go).
//
// All generators are deterministic given their seed.
package gen

import (
	"math"
	"math/rand"
)

// AliasSampler draws indices from a fixed discrete distribution in O(1)
// per sample using Walker–Vose alias tables. It is the workhorse behind
// the Chung–Lu generator, where millions of weighted vertex draws are
// needed.
type AliasSampler struct {
	prob  []float64
	alias []int32
}

// NewAliasSampler builds the alias table for the given non-negative
// weights. At least one weight must be positive.
func NewAliasSampler(weights []float64) *AliasSampler {
	n := len(weights)
	if n == 0 {
		panic("gen: empty weight vector")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("gen: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("gen: all weights zero")
	}

	s := &AliasSampler{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, g := range large {
		s.prob[g] = 1
		s.alias[g] = g
	}
	for _, l := range small {
		s.prob[l] = 1
		s.alias[l] = l
	}
	return s
}

// Sample draws one index.
func (s *AliasSampler) Sample(rng *rand.Rand) int {
	i := rng.Intn(len(s.prob))
	if rng.Float64() < s.prob[i] {
		return i
	}
	return int(s.alias[i])
}

// PowerLawWeights returns n weights w_i ∝ (i+1)^(−alpha), the standard
// heavy-tailed degree profile of web-scale bipartite networks. alpha = 0
// yields uniform weights.
func PowerLawWeights(n int, alpha float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -alpha)
	}
	return w
}
