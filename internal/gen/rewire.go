package gen

import (
	"fmt"
	"math/rand"

	"butterfly/internal/graph"
)

// Rewire returns a degree-preserving randomization of g: `swaps`
// successful Maslov–Sneppen double edge swaps, each replacing a pair
// of edges (u1,v1),(u2,v2) with (u1,v2),(u2,v1) when neither new edge
// already exists. Both degree sequences are preserved exactly, so the
// result is a sample from the configuration null model with g's exact
// degrees — the reference distribution for motif-significance testing
// (is g's butterfly count explainable by degrees alone?).
//
// Swap attempts are capped at 20·swaps; on very dense or tiny graphs
// fewer successful swaps may be applied. Deterministic given seed.
func Rewire(g *graph.Bipartite, swaps int, seed int64) *graph.Bipartite {
	if swaps < 0 {
		panic(fmt.Sprintf("gen: negative swap count %d", swaps))
	}
	edges := g.Edges()
	ne := len(edges)
	if ne < 2 || swaps == 0 {
		return g
	}
	present := make(map[int64]struct{}, ne)
	key := func(u, v int32) int64 { return int64(u)*int64(g.NumV2()) + int64(v) }
	for _, e := range edges {
		present[key(e.U, e.V)] = struct{}{}
	}

	rng := rand.New(rand.NewSource(seed))
	done := 0
	for attempt := 0; done < swaps && attempt < 20*swaps; attempt++ {
		i := rng.Intn(ne)
		j := rng.Intn(ne)
		e1, e2 := edges[i], edges[j]
		if i == j || e1.U == e2.U || e1.V == e2.V {
			continue
		}
		k1, k2 := key(e1.U, e2.V), key(e2.U, e1.V)
		if _, dup := present[k1]; dup {
			continue
		}
		if _, dup := present[k2]; dup {
			continue
		}
		delete(present, key(e1.U, e1.V))
		delete(present, key(e2.U, e2.V))
		present[k1] = struct{}{}
		present[k2] = struct{}{}
		edges[i].V, edges[j].V = e2.V, e1.V
		done++
	}
	return graph.FromEdges(g.NumV1(), g.NumV2(), edges)
}
