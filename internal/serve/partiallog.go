package serve

// Shard-side incremental maintenance of the wedge-partial map. Once a
// graph's partials have been exported (the cluster router's first full
// fetch), every mutation batch records the signed partial-map change
// it caused — computed by the wedge-delta kernel over just the touched
// V1 centers, O(affected wedges) — into a bounded per-version log.
// `/v1/internal/partial?since=V` then answers with the composed delta
// (V, current] instead of re-deriving and re-shipping the full map.
//
// The log is lazily activated so single-node deployments pay nothing,
// and bounded (versions × retained pair entries) so a shard that is
// mutated heavily without being polled simply evicts history and falls
// back to a full-map reply. Each activation mints a random nonzero
// epoch token; clients echo it with `?since=` so a graph re-registered
// at a coincidentally matching version can never satisfy a delta
// request from the wrong history.

import (
	"math/rand/v2"

	"butterfly"
)

// Delta-history bounds, package-level so tests can shrink them to
// force eviction. A pair entry is 16 bytes, so the default retained
// history tops out around 16 MiB per graph.
var (
	partialLogMaxVersions = 512
	partialLogMaxPairs    = 1 << 20
)

// partialLog holds the delta history of one registry entry. The entry
// mutex (entry.mu) guards all access — appends happen at publish time
// under it, and reads take it briefly; the composed deltas are small
// compared to a mutation batch.
type partialLog struct {
	epoch uint64 // random nonzero activation token
	base  uint64 // version the oldest retained delta applies to
	// deltas[i] is the signed partial change version base+i → base+i+1.
	deltas [][]butterfly.WedgePartial
	pairs  int // total pair entries retained, for the memory bound
}

func newPartialLog(at uint64) *partialLog {
	pl := &partialLog{base: at}
	for pl.epoch == 0 {
		pl.epoch = rand.Uint64()
	}
	return pl
}

// append records the delta that produced version v. Appends are
// contiguous by construction (both activation and publish hold
// entry.mu); a gap would mean a bug, so it is healed defensively by
// restarting the history at v.
func (pl *partialLog) append(v uint64, delta []butterfly.WedgePartial) {
	if v != pl.base+uint64(len(pl.deltas))+1 {
		pl.base, pl.deltas, pl.pairs = v, nil, 0
		return
	}
	pl.deltas = append(pl.deltas, delta)
	pl.pairs += len(delta)
	for len(pl.deltas) > partialLogMaxVersions || pl.pairs > partialLogMaxPairs {
		pl.pairs -= len(pl.deltas[0])
		pl.deltas[0] = nil
		pl.deltas = pl.deltas[1:]
		pl.base++
	}
}

// since composes the retained deltas taking version `from` to version
// `upto`. ok is false when the history no longer covers that range
// (evicted, or from predates activation) — the caller falls back to a
// full-map reply.
func (pl *partialLog) since(from, upto uint64) ([]butterfly.WedgePartial, bool) {
	if from < pl.base || upto < from || upto > pl.base+uint64(len(pl.deltas)) {
		return nil, false
	}
	run := pl.deltas[from-pl.base : upto-pl.base]
	switch len(run) {
	case 0:
		return nil, true
	case 1:
		return run[0], true
	}
	return butterfly.SumWedgePartialDeltas(run...), true
}

// EnablePartialLog activates delta maintenance for name (idempotent)
// and returns the published snapshot the activation observed together
// with the log's epoch token. The snapshot is loaded under the entry
// mutex, so its version is exactly the log's base on first activation
// — a caller that exports this snapshot's full partials can sync every
// later version by delta.
func (r *Registry) EnablePartialLog(name string) (*Snapshot, uint64, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, 0, ErrNotFound{name}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := e.snap.Load()
	if e.plog == nil {
		e.plog = newPartialLog(snap.Version)
	}
	return snap, e.plog.epoch, nil
}

// PartialEpoch returns the epoch token of name's partial log, or ok
// false when the log is not active.
func (r *Registry) PartialEpoch(name string) (uint64, bool) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.plog == nil {
		return 0, false
	}
	return e.plog.epoch, true
}

// PartialDeltaSince returns the composed signed delta that takes
// name's partial map from version `since` to version `upto`. ok is
// false — caller serves a full map instead — when the log is inactive,
// the epoch token does not match (the name was re-registered since the
// client pinned its copy), or the history was evicted.
func (r *Registry) PartialDeltaSince(name string, epoch, since, upto uint64) ([]butterfly.WedgePartial, bool) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.plog == nil || e.plog.epoch != epoch {
		return nil, false
	}
	return e.plog.since(since, upto)
}
