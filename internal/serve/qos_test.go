package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"butterfly/serveapi"
)

// rawDoH is rawDo with request headers.
func rawDoH(t *testing.T, method, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestCoalescedHerd is the acceptance scenario: a herd of identical
// counts runs the kernel exactly once. MaxInFlight=1 with no queue
// makes the proof sharp — the leader owns the only slot, so the 63
// followers can only succeed by riding its flight, and every reply is
// the leader's exact bytes.
func TestCoalescedHerd(t *testing.T) {
	s, c := newTestServer(t, Config{MaxInFlight: 1, NoQueue: true})
	base := urlOf(t, c)
	info := registerK44(t, c)

	var entered atomic.Int32
	gate := make(chan struct{})
	s.computeHook = func(ctx context.Context) {
		entered.Add(1)
		<-gate
	}

	const herd = 64
	flightKey := fmt.Sprintf("v1|k44|v%d|%s", info.Version, keyCount)
	type reply struct {
		status int
		cache  string
		tenant string
		body   []byte
	}
	replies := make([]reply, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := rawDo(t, "POST", base+"/v1/graphs/k44/count", `{}`)
			replies[i] = reply{
				status: resp.StatusCode,
				cache:  resp.Header.Get("X-Cache"),
				tenant: resp.Header.Get(serveapi.TenantHeader),
				body:   body,
			}
		}(i)
	}
	// The group itself reports when the whole herd is parked on the
	// leader's flight; only then may the kernel finish.
	deadline := time.Now().Add(10 * time.Second)
	for s.flights.Waiting(flightKey) < herd {
		if time.Now().After(deadline) {
			t.Fatalf("herd never assembled: waiting=%d", s.flights.Waiting(flightKey))
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := entered.Load(); got != 1 {
		t.Fatalf("kernel executed %d times for %d identical requests, want 1", got, herd)
	}
	var miss, coalesced int
	for i, r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, r.status, r.body)
		}
		if r.tenant != defaultTenant {
			t.Fatalf("request %d: echoed tenant %q, want %q", i, r.tenant, defaultTenant)
		}
		if !bytes.Equal(r.body, replies[0].body) {
			t.Fatalf("request %d: body differs from leader's bytes", i)
		}
		switch r.cache {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		default:
			t.Fatalf("request %d: X-Cache = %q", i, r.cache)
		}
	}
	if miss != 1 || coalesced != herd-1 {
		t.Fatalf("miss=%d coalesced=%d, want 1/%d", miss, coalesced, herd-1)
	}

	// The coalescing is visible to operators too.
	_, metrics := rawDo(t, "GET", base+"/metrics", "")
	if want := fmt.Sprintf("bfserved_coalesced_total %d", herd-1); !strings.Contains(string(metrics), want) {
		t.Fatalf("/metrics missing %q", want)
	}
}

// TestCoalescedFollowersChargedOwnBucket: joining a flight is not a
// quota bypass. A parked leader from an unlimited tenant is joined by
// followers from a burst-5 tenant — exactly 5 ride along, the rest are
// shed with quota_exhausted even though the shared work is free.
func TestCoalescedFollowersChargedOwnBucket(t *testing.T) {
	s, c := newTestServer(t, Config{MaxInFlight: 1, NoQueue: true, Tenants: TenantsConfig{
		Tenants: map[string]TenantSpec{
			"free":    {},
			"limited": {Rate: 0.0001, Burst: 5},
		},
	}})
	base := urlOf(t, c)
	info := registerK44(t, c)

	gate := make(chan struct{})
	var openGate sync.Once
	release := func() { openGate.Do(func() { close(gate) }) }
	defer release()
	entered := make(chan struct{}, 1)
	s.computeHook = func(ctx context.Context) {
		select {
		case entered <- struct{}{}:
			<-gate
		default:
		}
	}

	flightKey := fmt.Sprintf("v1|k44|v%d|%s", info.Version, keyCount)
	leaderDone := make(chan reply1, 1)
	go func() {
		resp, _ := rawDoH(t, "POST", base+"/v1/graphs/k44/count", `{}`,
			map[string]string{serveapi.TenantHeader: "free"})
		leaderDone <- reply1{resp.StatusCode, resp.Header.Get(serveapi.TenantHeader), resp.Header.Get("X-Cache")}
	}()
	waitFor(t, func() bool { return s.flights.Waiting(flightKey) >= 1 })

	const followers = 10
	var ok200, quota429 atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := rawDoH(t, "POST", base+"/v1/graphs/k44/count", `{}`,
				map[string]string{serveapi.TenantHeader: "limited"})
			switch resp.StatusCode {
			case http.StatusOK:
				ok200.Add(1)
			case http.StatusTooManyRequests:
				det := decodeEnvelope(t, body)
				if det.Code != serveapi.CodeQuotaExhausted {
					t.Errorf("429 code = %q, want %q", det.Code, serveapi.CodeQuotaExhausted)
				}
				if det.RetryAfterMS <= 0 {
					t.Errorf("quota 429 without retry_after_ms: %s", body)
				}
				if resp.Header.Get("Retry-After") == "" {
					t.Error("quota 429 without Retry-After header")
				}
				quota429.Add(1)
			default:
				t.Errorf("follower status %d: %s", resp.StatusCode, body)
			}
		}()
	}
	// The 5 within-burst followers join the leader's flight; the 5
	// over-burst ones 429 immediately without blocking.
	waitFor(t, func() bool { return s.flights.Waiting(flightKey) >= 6 })
	waitFor(t, func() bool { return quota429.Load() == followers-5 })
	release()
	wg.Wait()

	ld := <-leaderDone
	if ld.status != http.StatusOK || ld.tenant != "free" || ld.cache != "miss" {
		t.Fatalf("leader = %+v, want 200/free/miss", ld)
	}
	if ok200.Load() != 5 || quota429.Load() != 5 {
		t.Fatalf("followers: 200=%d 429=%d, want 5/5", ok200.Load(), quota429.Load())
	}
	st := statFor(t, s.lim, "limited")
	if st.shedQuota != 5 {
		t.Fatalf("limited shedQuota = %d, want 5", st.shedQuota)
	}
}

// TestTenantHeadersAndBodyPrecedence: the wire contract — header sets
// the tenant, body wins over header, unknown names collapse to
// default, and the resolved pair is echoed on the response.
func TestTenantHeadersAndBodyPrecedence(t *testing.T) {
	_, c := newTestServer(t, Config{Tenants: TenantsConfig{
		Tenants: map[string]TenantSpec{"gold": {Weight: 4}, "silver": {}},
	}})
	base := urlOf(t, c)
	registerK44(t, c)

	cases := []struct {
		name         string
		hdr          map[string]string
		body         string
		wantTenant   string
		wantPriority string
	}{
		{"header only", map[string]string{serveapi.TenantHeader: "gold"}, `{}`, "gold", "interactive"},
		{"body wins", map[string]string{serveapi.TenantHeader: "gold"}, `{"tenant":"silver"}`, "silver", "interactive"},
		{"unknown collapses", map[string]string{serveapi.TenantHeader: "mystery"}, `{}`, "default", "interactive"},
		{"priority header", map[string]string{serveapi.TenantHeader: "gold", serveapi.PriorityHeader: "batch"}, `{}`, "gold", "batch"},
		{"priority body wins", map[string]string{serveapi.PriorityHeader: "batch"}, `{"priority":"interactive"}`, "default", "interactive"},
	}
	for _, tc := range cases {
		resp, body := rawDoH(t, "POST", base+"/v1/graphs/k44/count", tc.body, tc.hdr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.name, resp.StatusCode, body)
		}
		if got := resp.Header.Get(serveapi.TenantHeader); got != tc.wantTenant {
			t.Errorf("%s: echoed tenant %q, want %q", tc.name, got, tc.wantTenant)
		}
		if got := resp.Header.Get(serveapi.PriorityHeader); got != tc.wantPriority {
			t.Errorf("%s: echoed priority %q, want %q", tc.name, got, tc.wantPriority)
		}
	}

	// A bad priority is a 400, whether it arrives by header or body.
	resp, body := rawDoH(t, "POST", base+"/v1/graphs/k44/count", `{}`,
		map[string]string{serveapi.PriorityHeader: "urgent"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad priority header: status %d: %s", resp.StatusCode, body)
	}
	det := decodeEnvelope(t, body)
	if det.Code != serveapi.CodeInvalidArgument {
		t.Fatalf("bad priority header code = %q", det.Code)
	}
	resp, body = rawDo(t, "POST", base+"/v1/graphs/k44/count", `{"priority":"urgent"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad priority body: status %d: %s", resp.StatusCode, body)
	}
}

// TestLegacySunsetHeaders: the unversioned aliases still answer, but
// every response announces the deprecation, the sunset date, and a
// pointer to the migration doc — and remaining traffic is counted.
func TestLegacySunsetHeaders(t *testing.T) {
	_, c := newTestServer(t, Config{})
	base := urlOf(t, c)
	registerK44(t, c)

	resp, body := rawDo(t, "POST", base+"/graphs/k44/count", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy count: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Deprecation"); got != "true" {
		t.Errorf("Deprecation = %q", got)
	}
	if got := resp.Header.Get("Sunset"); got != legacySunset {
		t.Errorf("Sunset = %q, want %q", got, legacySunset)
	}
	if got := resp.Header.Get("Link"); got != legacySunsetLink {
		t.Errorf("Link = %q, want %q", got, legacySunsetLink)
	}
	// Tenancy is /v1-only: the legacy surface never echoes it.
	if got := resp.Header.Get(serveapi.TenantHeader); got != "" {
		t.Errorf("legacy response echoed tenant %q", got)
	}
	// The /v1 surface carries none of the sunset metadata.
	resp, _ = rawDo(t, "POST", base+"/v1/graphs/k44/count", `{}`)
	if resp.Header.Get("Sunset") != "" || resp.Header.Get("Deprecation") != "" {
		t.Error("/v1 response carries sunset metadata")
	}

	_, metrics := rawDo(t, "GET", base+"/metrics", "")
	if !strings.Contains(string(metrics), `bfserved_legacy_requests_total{route="count"} 1`) {
		t.Error("/metrics missing legacy request counter for route=count")
	}
}

// TestLegacyDisabled410: under -disable-legacy the unversioned
// surface answers 410 Gone in the legacy body shape, while /v1 and the
// unversioned QoS admin endpoint (which postdates the sunset) work.
func TestLegacyDisabled410(t *testing.T) {
	_, c := newTestServer(t, Config{DisableLegacy: true})
	base := urlOf(t, c)
	registerK44(t, c)

	resp, body := rawDo(t, "POST", base+"/graphs/k44/count", `{}`)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("legacy under disable: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Sunset") != legacySunset {
		t.Error("410 response missing Sunset header")
	}
	// Legacy error shape: {"status","error"}, never the /v1 envelope.
	if !bytes.Contains(body, []byte(`"status":410`)) || bytes.Contains(body, []byte(`"code"`)) {
		t.Fatalf("410 body is not the legacy shape: %s", body)
	}
	if !bytes.Contains(body, []byte("/v1/graphs/k44/count")) {
		t.Fatalf("410 body does not point at the /v1 replacement: %s", body)
	}

	resp, body = rawDo(t, "POST", base+"/v1/graphs/k44/count", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1 under disable-legacy: status %d: %s", resp.StatusCode, body)
	}
	resp, _ = rawDo(t, "GET", base+"/admin/tenants", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/admin/tenants under disable-legacy: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Error("/admin/tenants marked deprecated; it is not part of the sunset")
	}
}

// TestAdminTenantsReload: the tenant config hot-swaps over HTTP and
// immediately changes how tenants resolve.
func TestAdminTenantsReload(t *testing.T) {
	s, c := newTestServer(t, Config{Tenants: TenantsConfig{
		Tenants: map[string]TenantSpec{"old": {Weight: 2}},
	}})
	base := urlOf(t, c)
	registerK44(t, c)

	resp, body := rawDo(t, "GET", base+"/v1/admin/tenants", "")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"old"`)) {
		t.Fatalf("GET tenants: %d %s", resp.StatusCode, body)
	}

	resp, body = rawDo(t, "POST", base+"/v1/admin/tenants",
		`{"default":{"weight":1},"tenants":{"new":{"rate":50,"burst":10,"weight":3}}}`)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"new"`)) {
		t.Fatalf("POST tenants: %d %s", resp.StatusCode, body)
	}

	// "old" is gone from the config: requests naming it are now charged
	// (and echoed) as default; "new" resolves.
	resp, _ = rawDoH(t, "POST", base+"/v1/graphs/k44/count", `{}`,
		map[string]string{serveapi.TenantHeader: "old"})
	if got := resp.Header.Get(serveapi.TenantHeader); got != "default" {
		t.Errorf("dropped tenant echoes %q, want default", got)
	}
	resp, _ = rawDoH(t, "POST", base+"/v1/graphs/k44/count", `{}`,
		map[string]string{serveapi.TenantHeader: "new"})
	if got := resp.Header.Get(serveapi.TenantHeader); got != "new" {
		t.Errorf("fresh tenant echoes %q, want new", got)
	}
	if got := s.lim.config().Tenants["new"].Weight; got != 3 {
		t.Errorf("reloaded weight = %d, want 3", got)
	}

	// Malformed config is rejected without disturbing the active one.
	resp, _ = rawDo(t, "POST", base+"/v1/admin/tenants", `{"tenants":`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed config: status %d", resp.StatusCode)
	}
	if _, ok := s.lim.config().Tenants["new"]; !ok {
		t.Fatal("active config lost after rejected reload")
	}
}

// TestTenantMetricsExposed: the per-tenant families render on /metrics
// with one series per configured tenant.
func TestTenantMetricsExposed(t *testing.T) {
	_, c := newTestServer(t, Config{Tenants: TenantsConfig{
		Tenants: map[string]TenantSpec{"acme": {Weight: 4, SLOMillis: 500}},
	}})
	base := urlOf(t, c)
	registerK44(t, c)

	resp, _ := rawDoH(t, "POST", base+"/v1/graphs/k44/count", `{}`,
		map[string]string{serveapi.TenantHeader: "acme"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("count: %d", resp.StatusCode)
	}

	_, metrics := rawDo(t, "GET", base+"/metrics", "")
	m := string(metrics)
	for _, want := range []string{
		`bfserved_tenant_admitted_total{tenant="acme"} 1`,
		`bfserved_tenant_shed_total{tenant="acme",reason="queue"} 0`,
		`bfserved_tenant_shed_total{tenant="acme",reason="quota"} 0`,
		`bfserved_tenant_queue_depth{tenant="acme"} 0`,
		`bfserved_tenant_weight{tenant="acme"} 4`,
		`bfserved_tenant_slo_burn{tenant="acme"}`,
		`bfserved_tenant_admitted_total{tenant="default"}`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

type reply1 struct {
	status int
	tenant string
	cache  string
}

// waitFor polls cond with a shared 10s deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
