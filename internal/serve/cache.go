package serve

import (
	"container/list"
	"sync"
)

// resultCache is an LRU cache of rendered JSON response bodies keyed
// by "(graph name, graph version, normalized query)". Because the
// version participates in the key, a mutation batch implicitly
// invalidates every cached result of the old version — there is no
// explicit invalidation path to get wrong. Stale-version entries age
// out through the LRU policy.
//
// Only pure queries are cached (count, vertex/edge counts, peels,
// seeded estimates); mutations and registrations never touch the
// cache.
type resultCache struct {
	mu    sync.Mutex
	max   int // ≤ 0 disables the cache
	ll    *list.List
	items map[string]*list.Element

	hits, misses uint64
}

type cacheItem struct {
	key  string
	body []byte
}

func newResultCache(max int) *resultCache {
	return &resultCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached body for key, promoting it to most recently
// used. The returned slice must not be modified.
func (c *resultCache) get(key string) ([]byte, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).body, true
}

// put stores body under key, evicting the least recently used entry
// when over capacity. body must not be modified after the call.
func (c *resultCache) put(key string, body []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).body = body
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, body: body})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*cacheItem).key)
	}
}

// stats returns cumulative hit/miss counters and the current size.
func (c *resultCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
