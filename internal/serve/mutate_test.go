package serve

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"butterfly"
	"butterfly/serveapi"
)

func TestMutateEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	registerK44(t, c)

	// Deleting one edge of K_{4,4} destroys the C(3,1)*C(3,1)=9
	// butterflies through it.
	resp, err := c.Mutate(ctx, "k44", serveapi.MutateRequest{Deletes: [][2]int{{0, 0}}})
	if err != nil {
		t.Fatalf("mutate: %v", err)
	}
	if resp.Version != 2 || resp.Deleted != 1 || resp.Destroyed != 9 || resp.Count != 27 || resp.Edges != 15 {
		t.Fatalf("delete batch = %+v, want v2 deleted=1 destroyed=9 count=27 edges=15", resp)
	}

	// Re-inserting restores the count; duplicate insert is a no-op.
	resp, err = c.Mutate(ctx, "k44", serveapi.MutateRequest{Inserts: [][2]int{{0, 0}, {0, 1}}})
	if err != nil {
		t.Fatalf("mutate: %v", err)
	}
	if resp.Version != 3 || resp.Inserted != 1 || resp.Created != 9 || resp.Count != 36 {
		t.Fatalf("insert batch = %+v, want v3 inserted=1 created=9 count=36", resp)
	}

	// The new version is what counting sees.
	count, err := c.Count(ctx, "k44", serveapi.CountRequest{})
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if count.Version != 3 || count.Butterflies != 36 {
		t.Fatalf("count after mutations = %+v, want 36 @ v3", count)
	}

	// Out-of-range endpoints fail the whole batch up front.
	if _, err := c.Mutate(ctx, "k44", serveapi.MutateRequest{
		Inserts: [][2]int{{1, 1}},
		Deletes: [][2]int{{99, 0}},
	}); err == nil {
		t.Fatal("out-of-range delete accepted")
	}
	info, err := c.GraphInfo(ctx, "k44")
	if err != nil || info.Version != 3 {
		t.Fatalf("failed batch bumped version: %+v, %v", info, err)
	}
}

// TestSnapshotIsolation pins the copy-on-write contract at the registry
// level: a reader holding a Snapshot keeps seeing that version's edge
// set and count even while mutation batches publish newer versions.
func TestSnapshotIsolation(t *testing.T) {
	g, err := butterfly.FromEdges(4, 4, completeEdges(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if _, err := reg.Register("g", g, false); err != nil {
		t.Fatal(err)
	}

	old, err := reg.Get("g")
	if err != nil {
		t.Fatal(err)
	}

	// A mutation batch lands while the reader still holds old.
	if _, err := reg.Mutate("g", nil, [][2]int{{0, 0}, {1, 1}}); err != nil {
		t.Fatal(err)
	}

	// The old snapshot is untouched: same version, same edges, and a
	// fresh exact recount over its graph still gives the old answer.
	if old.Version != 1 || old.Count != 36 || old.Graph.NumEdges() != 16 {
		t.Fatalf("old snapshot changed under mutation: %+v", old)
	}
	if n := old.Graph.Count(); n != 36 {
		t.Fatalf("recount on old snapshot = %d, want 36", n)
	}

	// New readers see the new version.
	cur, err := reg.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version != 2 || cur.Graph.NumEdges() != 14 {
		t.Fatalf("current snapshot = %+v, want v2 with 14 edges", cur)
	}
	if n := cur.Graph.Count(); n != cur.Count {
		t.Fatalf("recount on new snapshot = %d, want %d", n, cur.Count)
	}
}

// TestConcurrentQueriesAndMutations hammers one graph with parallel
// readers and mutators through the HTTP API and cross-checks every
// answer: each CountResponse must report the count the dynamic counter
// published for that exact version. Run under -race this also shakes
// out data races between snapshot publication, the result cache and
// the admission path.
func TestConcurrentQueriesAndMutations(t *testing.T) {
	// Pin admission capacity above the worker count: the default
	// (GOMAXPROCS in-flight, 4x queued) can shed on single-CPU
	// machines, and this test asserts correctness under concurrency,
	// not shedding behavior (TestLoadShedding429 covers that).
	_, c := newTestServer(t, Config{MaxInFlight: 8, MaxQueue: 32})
	ctx := context.Background()

	const m, n = 24, 24
	rng := rand.New(rand.NewSource(7))
	var edges [][2]int
	for u := 0; u < m; u++ {
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	info, err := c.Register(ctx, serveapi.RegisterRequest{Name: "h", M: m, N: n, Edges: edges})
	if err != nil {
		t.Fatal(err)
	}

	// byVersion records the authoritative count for every published
	// version, written by whoever learns it first (register response,
	// mutate responses, count responses). A version must never be
	// observed with two different counts.
	var (
		mu        sync.Mutex
		byVersion = map[uint64]int64{}
	)
	record := func(version uint64, count int64) {
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := byVersion[version]; ok && prev != count {
			t.Errorf("version %d seen with counts %d and %d", version, prev, count)
			return
		}
		byVersion[version] = count
	}
	record(info.Version, info.Butterflies)

	iters := 40
	if testing.Short() {
		iters = 10
	}

	var wg sync.WaitGroup
	// Mutators: random insert/delete batches.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				req := serveapi.MutateRequest{
					Inserts: [][2]int{{rng.Intn(m), rng.Intn(n)}, {rng.Intn(m), rng.Intn(n)}},
					Deletes: [][2]int{{rng.Intn(m), rng.Intn(n)}},
				}
				resp, err := c.Mutate(ctx, "h", req)
				if err != nil {
					t.Errorf("mutate: %v", err)
					return
				}
				record(resp.Version, resp.Count)
			}
		}(int64(100 + w))
	}
	// Readers: exact counts with varied options, plus vertex/edge/peel
	// traffic for coverage of the abandon path under load.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					resp, err := c.Count(ctx, "h", serveapi.CountRequest{
						Invariant: rng.Intn(9),
						Threads:   []int{1, -1}[rng.Intn(2)],
					})
					if err != nil {
						t.Errorf("count: %v", err)
						return
					}
					record(resp.Version, resp.Butterflies)
				case 2:
					if _, err := c.VertexCounts(ctx, "h", serveapi.VertexCountsRequest{Side: "v1", Top: 5}); err != nil {
						t.Errorf("vertex-counts: %v", err)
						return
					}
				case 3:
					if _, err := c.EdgeSupports(ctx, "h", serveapi.EdgeSupportsRequest{Top: 5}); err != nil {
						t.Errorf("edge-supports: %v", err)
						return
					}
				}
			}
		}(int64(200 + w))
	}
	wg.Wait()

	// Final cross-check: a from-scratch exact count over the final
	// snapshot must agree with the incrementally maintained count.
	final, err := c.GraphInfo(ctx, "h")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Count(ctx, "h", serveapi.CountRequest{Algorithm: "wedge-hash"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != final.Version || resp.Butterflies != final.Butterflies {
		t.Fatalf("final recount %d @ v%d disagrees with dynamic count %d @ v%d",
			resp.Butterflies, resp.Version, final.Butterflies, final.Version)
	}
}
