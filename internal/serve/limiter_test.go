package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestShedOnlyWhenQueueTrulyFull is the regression for the historical
// admission race: the old limiter checked for a free slot lock-free
// and then joined the queue with a separate atomic, so a request could
// be shed although a slot freed in between. The schedule below pins
// the boundary deterministically: the test holds the scheduler lock,
// parks an arriving request on it, frees the slot while still holding
// the lock, and only then lets the arrival in — with NoQueue semantics
// the old structure shed here; the rewritten limiter must admit.
func TestShedOnlyWhenQueueTrulyFull(t *testing.T) {
	l := newLimiter(1, 0) // one slot, no queue: any miss is a shed
	if err := l.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	l.mu.Lock()
	var started atomic.Bool
	res := make(chan error, 1)
	go func() {
		started.Store(true)
		res <- l.acquire(context.Background())
	}()
	for !started.Load() {
		time.Sleep(time.Millisecond)
	}
	// The arrival is at (or heading for) the lock; free the slot before
	// it can observe anything.
	time.Sleep(10 * time.Millisecond)
	l.inflight--
	l.dispatchLocked()
	l.mu.Unlock()

	if err := <-res; err != nil {
		t.Fatalf("acquire after concurrent release shed: %v", err)
	}
	if got := l.shedTotal(); got != 0 {
		t.Fatalf("shedTotal = %d, want 0", got)
	}
	l.release()
}

// TestWeightedFairness pins the WRR schedule: with tenants weighted
// 1:4 both saturating one lane, grants interleave A,B,B,B,B — so any
// window of served requests splits 1:4 (±1 for cursor position).
func TestWeightedFairness(t *testing.T) {
	l := newQoSLimiter(1, 300, TenantsConfig{
		Tenants: map[string]TenantSpec{
			"a": {Weight: 1},
			"b": {Weight: 4},
		},
	})
	if err := l.acquire(context.Background()); err != nil { // occupy the slot
		t.Fatal(err)
	}

	const perA, perB = 25, 100
	grants := make(chan string, perA+perB)
	var wg sync.WaitGroup
	enqueue := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := l.acquireFor(context.Background(), tenant, laneInteractive); err != nil {
					t.Errorf("%s: %v", tenant, err)
					return
				}
				grants <- tenant
				l.release()
			}()
		}
	}
	enqueue("a", perA)
	enqueue("b", perB)
	for l.queueDepth() < perA+perB {
		time.Sleep(time.Millisecond)
	}

	l.release() // open the floodgate; grants serialize through the slot
	wg.Wait()
	close(grants)

	var a, b int
	order := make([]string, 0, perA+perB)
	for g := range grants {
		order = append(order, g)
		if len(order) <= 50 {
			if g == "a" {
				a++
			} else {
				b++
			}
		}
	}
	// First 50 grants: exactly 10 A and 40 B modulo the cursor's
	// starting position.
	if a < 9 || a > 11 {
		t.Fatalf("first 50 grants: a=%d b=%d, want ~10/40 (order %v)", a, b, order[:50])
	}
	if a+b != 50 {
		t.Fatalf("accounting: a+b = %d", a+b)
	}
}

// TestLanePrecedence: a queued interactive request is always granted
// before any queued batch request, regardless of arrival order.
func TestLanePrecedence(t *testing.T) {
	l := newLimiter(1, 16)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	grants := make(chan lane, 2)
	add := func(ln lane) {
		go func() {
			if err := l.acquireFor(context.Background(), defaultTenant, ln); err != nil {
				t.Errorf("lane %v: %v", ln, err)
				return
			}
			grants <- ln
			l.release()
		}()
	}
	add(laneBatch) // batch arrives FIRST
	for l.queueDepth() < 1 {
		time.Sleep(time.Millisecond)
	}
	add(laneInteractive)
	for l.queueDepth() < 2 {
		time.Sleep(time.Millisecond)
	}

	l.release()
	if first := <-grants; first != laneInteractive {
		t.Fatalf("first grant = %v, want interactive despite batch arriving first", first)
	}
	if second := <-grants; second != laneBatch {
		t.Fatalf("second grant = %v, want batch", second)
	}
}

// TestQuotaRetryHint: an empty bucket answers a quotaError whose retry
// hint is the bucket's actual refill horizon.
func TestQuotaRetryHint(t *testing.T) {
	l := newQoSLimiter(4, 16, TenantsConfig{
		Tenants: map[string]TenantSpec{"q": {Rate: 2, Burst: 1}},
	})
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }
	l.mu.Lock() // move buckets stamped with the real clock onto the fake one
	for _, ts := range l.tenants {
		ts.last = now
	}
	l.mu.Unlock()

	if err := l.charge("q"); err != nil {
		t.Fatalf("first charge: %v", err)
	}
	err := l.charge("q")
	var qe quotaError
	if !errors.As(err, &qe) {
		t.Fatalf("second charge = %v, want quotaError", err)
	}
	// 1 token at 2 tokens/s → 500 ms away.
	if qe.retryMS != 500 {
		t.Fatalf("retryMS = %d, want 500", qe.retryMS)
	}
	// Advance the clock past the refill horizon: the charge succeeds.
	now = now.Add(600 * time.Millisecond)
	if err := l.charge("q"); err != nil {
		t.Fatalf("charge after refill: %v", err)
	}
	// Unlimited default tenant never runs out.
	for i := 0; i < 100; i++ {
		if err := l.charge(""); err != nil {
			t.Fatalf("default tenant charge %d: %v", i, err)
		}
	}
}

// TestPerTenantQueueBound: one tenant's backlog can never consume the
// shared queue budget — its bound is half the budget by default, so a
// second tenant always finds room.
func TestPerTenantQueueBound(t *testing.T) {
	l := newQoSLimiter(1, 8, TenantsConfig{
		Tenants: map[string]TenantSpec{"flood": {}, "victim": {}},
	})
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Fill flood's queue to its per-tenant cap (8/2 = 4).
	for i := 0; i < 4; i++ {
		go func() {
			if l.acquireFor(context.Background(), "flood", laneInteractive) == nil {
				l.release()
			}
		}()
	}
	for l.queueDepth() < 4 {
		time.Sleep(time.Millisecond)
	}
	// The fifth flood request is shed at the tenant bound...
	if err := l.acquireFor(context.Background(), "flood", laneInteractive); !errors.Is(err, errShed) {
		t.Fatalf("flood over tenant bound = %v, want errShed", err)
	}
	// ...while the victim still queues fine.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := l.acquireFor(ctx, "victim", laneInteractive); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("victim enqueue = %v, want deadline (queued, not shed)", err)
	}
	st := statFor(t, l, "victim")
	if st.shedQueue != 0 {
		t.Fatalf("victim was queue-shed %d times, want 0", st.shedQueue)
	}
	l.release()
}

// TestDeadlineEvictionDuringDispatch: a waiter whose deadline expired
// while queued is skipped (and counted) when a slot frees, and the
// next live waiter is granted instead.
func TestDeadlineEvictionDuringDispatch(t *testing.T) {
	l := newLimiter(1, 16)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	dead := make(chan error, 1)
	go func() { dead <- l.acquireSlot(ctx, defaultTenant, laneInteractive) }()
	for l.queueDepth() < 1 {
		time.Sleep(time.Millisecond)
	}
	live := make(chan error, 1)
	go func() { live <- l.acquireSlot(context.Background(), defaultTenant, laneInteractive) }()
	for l.queueDepth() < 2 {
		time.Sleep(time.Millisecond)
	}

	// Let the first waiter's deadline lapse, then free the slot: the
	// dispatch scan must evict the corpse and grant the live waiter.
	time.Sleep(40 * time.Millisecond)
	l.release()
	if err := <-live; err != nil {
		t.Fatalf("live waiter: %v", err)
	}
	if err := <-dead; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired waiter: %v, want deadline exceeded", err)
	}
	if l.queueDepth() != 0 {
		t.Fatalf("queue depth = %d after drain, want 0", l.queueDepth())
	}
	l.release()
}

// TestResolveCollapsesUnknownTenants: only configured names resolve to
// themselves; everything else is charged as (and labeled) "default",
// bounding metric cardinality by the config.
func TestResolveCollapsesUnknownTenants(t *testing.T) {
	l := newQoSLimiter(1, 4, TenantsConfig{
		Tenants: map[string]TenantSpec{"known": {Weight: 2}},
	})
	for name, want := range map[string]string{
		"":        defaultTenant,
		"default": defaultTenant,
		"known":   "known",
		"mystery": defaultTenant,
	} {
		if got := l.resolve(name); got != want {
			t.Errorf("resolve(%q) = %q, want %q", name, got, want)
		}
	}
	// Hot reload: dropping "known" makes it unresolvable; adding
	// "fresh" makes it resolvable.
	l.setConfig(TenantsConfig{Tenants: map[string]TenantSpec{"fresh": {}}})
	if got := l.resolve("known"); got != defaultTenant {
		t.Errorf("resolve(known) after drop = %q, want default", got)
	}
	if got := l.resolve("fresh"); got != "fresh" {
		t.Errorf("resolve(fresh) = %q", got)
	}
}

// TestConfigRoundTrip: config() returns what setConfig installed, and
// a hot reload clamps earned tokens to the new burst.
func TestConfigRoundTrip(t *testing.T) {
	cfg := TenantsConfig{
		Default: TenantSpec{Rate: 100, Weight: 1},
		Tenants: map[string]TenantSpec{"t": {Rate: 5, Burst: 50, Weight: 3, MaxQueue: 2, SLOMillis: 100}},
	}
	l := newQoSLimiter(2, 8, cfg)
	got := l.config()
	if got.Default != cfg.Default || got.Tenants["t"] != cfg.Tenants["t"] {
		t.Fatalf("config round trip: %+v", got)
	}
	// Reload with a smaller burst: the full bucket (50 tokens) clamps
	// down to 2, so the third charge fails.
	l.setConfig(TenantsConfig{Tenants: map[string]TenantSpec{"t": {Rate: 0.001, Burst: 2}}})
	if err := l.charge("t"); err != nil {
		t.Fatal(err)
	}
	if err := l.charge("t"); err != nil {
		t.Fatal(err)
	}
	var qe quotaError
	if err := l.charge("t"); !errors.As(err, &qe) {
		t.Fatalf("charge past clamped burst = %v, want quotaError", err)
	}
}

// statFor digs one tenant's stats snapshot out of the limiter.
func statFor(t *testing.T, l *limiter, name string) tenantStat {
	t.Helper()
	for _, st := range l.tenantStats() {
		if st.name == name {
			return st
		}
	}
	t.Fatalf("no stats for tenant %q", name)
	return tenantStat{}
}
