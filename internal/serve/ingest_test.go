package serve

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"

	"butterfly"
	"butterfly/client"
	"butterfly/serveapi"
)

// wantCode asserts an APIError with the given HTTP status and /v1 code.
func wantCode(t *testing.T, err error, status int, code, what string) {
	t.Helper()
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("%s: err = %v, want APIError %d %s", what, err, status, code)
	}
	if apiErr.Status != status || apiErr.Code != code {
		t.Fatalf("%s: got %d %q (%s), want %d %q", what, apiErr.Status, apiErr.Code, apiErr.Message, status, code)
	}
}

// TestIngestLifecycle walks the full streaming path: open → append →
// estimate while loading (exact queries 409) → seal → exact count
// equals the offline count → the ingest surface is gone.
func TestIngestLifecycle(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	edges := completeEdges(8, 8) // K(8,8): C(8,2)² = 784 butterflies
	open, err := c.IngestOpen(ctx, serveapi.IngestRequest{Name: "st", M: 8, N: 8, Reservoir: 48, Seed: 7})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if open.State != "loading" || open.ReservoirCap != 48 || open.EdgesSeen != 0 {
		t.Fatalf("open = %+v", open)
	}

	// First half of the stream.
	app, err := c.IngestAppend(ctx, "st", edges[:32])
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if app.Accepted != 32 || app.EdgesSeen != 32 {
		t.Fatalf("append = %+v", app)
	}

	// Mid-load: the estimate endpoint answers from the reservoir with a
	// well-formed CI envelope.
	est, err := c.Estimate(ctx, "st", serveapi.EstimateRequest{})
	if err != nil {
		t.Fatalf("estimate while loading: %v", err)
	}
	if est.State != "loading" || est.Strategy != "reservoir" || est.EdgesSeen != 32 {
		t.Fatalf("loading estimate = %+v", est)
	}
	if est.Estimate < 0 || est.StdErr < 0 || est.CI95 < 1.9*est.StdErr {
		t.Fatalf("malformed CI envelope: %+v", est)
	}

	// Exact queries on a loading graph answer 409 loading.
	_, err = c.Count(ctx, "st", serveapi.CountRequest{})
	wantCode(t, err, http.StatusConflict, serveapi.CodeLoading, "count while loading")
	_, err = c.Peel(ctx, "st", serveapi.PeelRequest{Mode: "wing", K: 1})
	wantCode(t, err, http.StatusConflict, serveapi.CodeLoading, "peel while loading")

	// The loading graph is visible in listings and info.
	info, err := c.GraphInfo(ctx, "st")
	if err != nil || info.State != "loading" || info.Version != 0 || info.NumEdges != 32 {
		t.Fatalf("loading info = %+v, %v", info, err)
	}
	graphs, err := c.Graphs(ctx)
	if err != nil || len(graphs) != 1 || graphs[0].State != "loading" {
		t.Fatalf("graphs = %+v, %v", graphs, err)
	}

	// Rest of the stream, including duplicates (collapse at seal).
	if _, err := c.IngestAppend(ctx, "st", edges[32:]); err != nil {
		t.Fatalf("append rest: %v", err)
	}
	if _, err := c.IngestAppend(ctx, "st", edges[:5]); err != nil {
		t.Fatalf("append dups: %v", err)
	}

	status, err := c.IngestStatus(ctx, "st")
	if err != nil || status.EdgesSeen != 69 {
		t.Fatalf("status = %+v, %v", status, err)
	}

	// Seal: the graph becomes a normal registered graph at version 1
	// with the exact count, matching the offline count of the same
	// edge set.
	g, err := butterfly.FromEdges(8, 8, edges)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Count()
	sealed, err := c.IngestSeal(ctx, "st")
	if err != nil {
		t.Fatalf("seal: %v", err)
	}
	if sealed.State != "" || sealed.Version != 1 || sealed.NumEdges != 64 || sealed.Butterflies != want {
		t.Fatalf("sealed = %+v, want %d butterflies @ v1", sealed, want)
	}
	count, err := c.Count(ctx, "st", serveapi.CountRequest{})
	if err != nil || count.Butterflies != want {
		t.Fatalf("count after seal = %+v, %v", count, err)
	}

	// The sampling estimator now answers (K(8,8) is uniform, so one
	// sample is already exact).
	est, err = c.Estimate(ctx, "st", serveapi.EstimateRequest{Strategy: "edges", Samples: 10, Seed: 3})
	if err != nil {
		t.Fatalf("estimate after seal: %v", err)
	}
	if est.State != "" || est.Strategy != "edges" || est.Samples != 10 || est.Estimate != float64(want) {
		t.Fatalf("sealed estimate = %+v", est)
	}

	// The ingest surface is gone.
	_, err = c.IngestAppend(ctx, "st", edges[:1])
	wantCode(t, err, http.StatusConflict, serveapi.CodeNotIngesting, "append after seal")
	_, err = c.IngestStatus(ctx, "st")
	wantCode(t, err, http.StatusConflict, serveapi.CodeNotIngesting, "status after seal")
	err = c.IngestAbort(ctx, "st")
	wantCode(t, err, http.StatusConflict, serveapi.CodeNotIngesting, "abort after seal")
	_, err = c.IngestSeal(ctx, "st")
	wantCode(t, err, http.StatusConflict, serveapi.CodeNotIngesting, "double seal")
}

// TestIngestExactRegime: while the whole stream fits the reservoir the
// estimate is exact with zero error bars.
func TestIngestExactRegime(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	if _, err := c.IngestOpen(ctx, serveapi.IngestRequest{Name: "small", M: 4, N: 4, Reservoir: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestAppend(ctx, "small", completeEdges(4, 4)); err != nil {
		t.Fatal(err)
	}
	st, err := c.IngestStatus(ctx, "small")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Exact || st.Estimate != 36 || st.StdErr != 0 || st.CI95 != 0 {
		t.Fatalf("exact-regime status = %+v, want exact 36", st)
	}
}

// TestIngestConflictsAndAbort covers name collisions in both
// directions and the abort path.
func TestIngestConflictsAndAbort(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	registerK44(t, c)

	// Opening over a registered name requires replace.
	_, err := c.IngestOpen(ctx, serveapi.IngestRequest{Name: "k44", M: 2, N: 2})
	wantCode(t, err, http.StatusConflict, serveapi.CodeAlreadyExists, "open over registered")
	if _, err := c.IngestOpen(ctx, serveapi.IngestRequest{Name: "k44", M: 2, N: 2, Replace: true}); err != nil {
		t.Fatalf("open replace: %v", err)
	}
	// The registered graph is gone; the name is loading now.
	_, err = c.Count(ctx, "k44", serveapi.CountRequest{})
	wantCode(t, err, http.StatusConflict, serveapi.CodeLoading, "count after replace-open")

	// Registering over an open ingest requires replace too.
	_, err = c.Register(ctx, serveapi.RegisterRequest{Name: "k44", M: 2, N: 2, Edges: completeEdges(2, 2)})
	wantCode(t, err, http.StatusConflict, serveapi.CodeAlreadyExists, "register over ingest")
	info, err := c.Register(ctx, serveapi.RegisterRequest{Name: "k44", Replace: true, M: 2, N: 2, Edges: completeEdges(2, 2)})
	if err != nil || info.Butterflies != 1 {
		t.Fatalf("register replace over ingest = %+v, %v", info, err)
	}
	// The superseded ingest is gone.
	_, err = c.IngestStatus(ctx, "k44")
	wantCode(t, err, http.StatusConflict, serveapi.CodeNotIngesting, "status after replace-register")

	// Abort discards an open ingest entirely.
	if _, err := c.IngestOpen(ctx, serveapi.IngestRequest{Name: "tmp", M: 2, N: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.IngestAbort(ctx, "tmp"); err != nil {
		t.Fatalf("abort: %v", err)
	}
	_, err = c.Count(ctx, "tmp", serveapi.CountRequest{})
	wantCode(t, err, http.StatusNotFound, serveapi.CodeNotFound, "count after abort")

	// Dropping a loading graph aborts its ingest.
	if _, err := c.IngestOpen(ctx, serveapi.IngestRequest{Name: "tmp2", M: 2, N: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop(ctx, "tmp2"); err != nil {
		t.Fatalf("drop loading graph: %v", err)
	}
	_, err = c.IngestStatus(ctx, "tmp2")
	wantCode(t, err, http.StatusConflict, serveapi.CodeNotIngesting, "status after drop")
}

func TestIngestBadInputs(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	_, err := c.IngestOpen(ctx, serveapi.IngestRequest{M: 2, N: 2})
	wantCode(t, err, http.StatusBadRequest, serveapi.CodeInvalidArgument, "missing name")
	_, err = c.IngestOpen(ctx, serveapi.IngestRequest{Name: "g", M: -1, N: 2})
	wantCode(t, err, http.StatusBadRequest, serveapi.CodeInvalidArgument, "negative dimension")
	_, err = c.IngestOpen(ctx, serveapi.IngestRequest{Name: "g", M: 2, N: 2, Reservoir: 2})
	wantCode(t, err, http.StatusBadRequest, serveapi.CodeInvalidArgument, "reservoir below 4")

	if _, err := c.IngestOpen(ctx, serveapi.IngestRequest{Name: "g", M: 2, N: 2}); err != nil {
		t.Fatal(err)
	}
	// Out-of-range endpoint: the batch is rejected, nothing applied.
	_, err = c.IngestAppend(ctx, "g", [][2]int{{0, 0}, {5, 0}})
	wantCode(t, err, http.StatusBadRequest, serveapi.CodeInvalidArgument, "out-of-range edge")
	st, err := c.IngestStatus(ctx, "g")
	if err != nil || st.EdgesSeen != 0 {
		t.Fatalf("status after rejected batch = %+v, %v", st, err)
	}
	// Malformed NDJSON line.
	resp, err := http.Post(urlOf(t, c)+"/v1/ingest/g/edges", "application/x-ndjson", strings.NewReader("[0,0]\nnot json\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed line status = %d, want 400", resp.StatusCode)
	}
	// Ops against a name with no ingest.
	_, err = c.IngestAppend(ctx, "nope", [][2]int{{0, 0}})
	wantCode(t, err, http.StatusConflict, serveapi.CodeNotIngesting, "append unknown")
	_, err = c.Estimate(ctx, "nope", serveapi.EstimateRequest{})
	wantCode(t, err, http.StatusNotFound, serveapi.CodeNotFound, "estimate unknown")
}

// TestIngestConcurrentAppendAndEstimate streams disjoint edge chunks
// from several goroutines while another hammers the estimate endpoint
// — the -race run of the serve layer's loading tier. The sealed count
// must equal the offline count of the full edge set.
func TestIngestConcurrentAppendAndEstimate(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	edges := completeEdges(10, 10)
	if _, err := c.IngestOpen(ctx, serveapi.IngestRequest{Name: "cc", M: 10, N: 10, Reservoir: 32, Seed: 3}); err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, 8)
	var appenders sync.WaitGroup
	for i := 0; i < 4; i++ {
		chunk := edges[i*25 : (i+1)*25]
		appenders.Add(1)
		go func() {
			defer appenders.Done()
			for j := 0; j < len(chunk); j += 5 {
				if _, err := c.IngestAppend(ctx, "cc", chunk[j:j+5]); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	stop := make(chan struct{})
	estDone := make(chan struct{})
	go func() {
		defer close(estDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			est, err := c.Estimate(ctx, "cc", serveapi.EstimateRequest{})
			if err != nil {
				errs <- err
				return
			}
			if est.State != "loading" || est.Estimate < 0 {
				errs <- errors.New("malformed loading estimate")
				return
			}
		}
	}()
	appenders.Wait()
	close(stop)
	<-estDone
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	g, err := butterfly.FromEdges(10, 10, edges)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := c.IngestSeal(ctx, "cc")
	if err != nil {
		t.Fatalf("seal: %v", err)
	}
	if sealed.Butterflies != g.Count() || sealed.NumEdges != 100 {
		t.Fatalf("sealed = %+v, want %d butterflies over 100 edges", sealed, g.Count())
	}
}

// TestDegradeToEstimate: with the limiter saturated, ?degrade=estimate
// answers 200 with a degraded estimate envelope while a plain count is
// still shed with 429.
func TestDegradeToEstimate(t *testing.T) {
	s, c := newTestServer(t, Config{MaxInFlight: 1, NoQueue: true})
	registerK44(t, c)
	ctx := context.Background()

	entered := make(chan struct{})
	gate := make(chan struct{})
	s.computeHook = func(ctx context.Context) {
		select {
		case entered <- struct{}{}:
			<-gate
		default:
		}
	}

	// Request A occupies the only slot.
	aDone := make(chan error, 1)
	go func() {
		_, err := c.Count(ctx, "k44", serveapi.CountRequest{})
		aDone <- err
	}()
	<-entered

	// A plain count is shed...
	_, err := c.Count(ctx, "k44", serveapi.CountRequest{Algorithm: "wedge-hash"})
	wantCode(t, err, http.StatusTooManyRequests, serveapi.CodeOverloaded, "plain count under load")

	// ...but the degradable count comes back as an estimate.
	count, est, err := c.CountOrEstimate(ctx, "k44", serveapi.CountRequest{Algorithm: "wedge-hash"})
	if err != nil {
		t.Fatalf("degradable count: %v", err)
	}
	if count != nil || est == nil || !est.Degraded {
		t.Fatalf("degrade = count %+v est %+v, want degraded estimate", count, est)
	}
	// K(4,4) is uniform, so even the small degrade sample is exact.
	if est.Estimate != 36 || est.Strategy != "edges" || est.Samples != degradeSamples {
		t.Fatalf("degraded estimate = %+v", est)
	}

	close(gate)
	if err := <-aDone; err != nil {
		t.Fatalf("request A: %v", err)
	}

	// Uncontended, the same degradable request runs the exact count.
	count, est, err = c.CountOrEstimate(ctx, "k44", serveapi.CountRequest{Algorithm: "wedge-hash"})
	if err != nil || est != nil || count == nil || count.Butterflies != 36 {
		t.Fatalf("uncontended degradable count = %+v / %+v, %v", count, est, err)
	}

	// A bogus degrade mode is rejected.
	resp, err := http.Post(urlOf(t, c)+"/v1/graphs/k44/count?degrade=guess", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad degrade mode status = %d, want 400", resp.StatusCode)
	}
}

// TestEstimateAdaptiveServe: Samples == 0 engages the adaptive stopping
// rule server-side; on a uniform graph it stops at the minimum sample
// count with a collapsed CI.
func TestEstimateAdaptiveServe(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	registerK44(t, c)

	est, err := c.Estimate(ctx, "k44", serveapi.EstimateRequest{Strategy: "edges", Seed: 5, TargetRelErr: 0.1})
	if err != nil {
		t.Fatalf("adaptive estimate: %v", err)
	}
	if est.Estimate != 36 || est.CI95 != 0 {
		t.Fatalf("adaptive estimate on K(4,4) = %+v, want exact 36", est)
	}
	if est.Samples < 64 {
		t.Fatalf("adaptive estimate took %d samples, want ≥ the minimum 64", est.Samples)
	}
	if est.Strategy != "edges" {
		t.Fatalf("strategy = %q", est.Strategy)
	}

	// Bad adaptive knobs are rejected up front.
	_, err = c.Estimate(ctx, "k44", serveapi.EstimateRequest{Strategy: "edges", TargetRelErr: -0.5})
	wantCode(t, err, http.StatusBadRequest, serveapi.CodeInvalidArgument, "negative target")
	_, err = c.Estimate(ctx, "k44", serveapi.EstimateRequest{Strategy: "edges", MaxSamples: -1})
	wantCode(t, err, http.StatusBadRequest, serveapi.CodeInvalidArgument, "negative max samples")
}
