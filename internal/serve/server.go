package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"butterfly"
	"butterfly/internal/flight"
	"butterfly/internal/obsv"
	"butterfly/internal/store"
	"butterfly/serveapi"
)

// Config tunes a Server. The zero value is usable: every field has a
// production-reasonable default, documented per field and in
// docs/SERVING.md ("capacity tuning").
type Config struct {
	// MaxInFlight bounds concurrently executing requests; ≤ 0 means
	// GOMAXPROCS. Counting is CPU-bound, so there is no benefit to
	// running more computations than cores — extra admissions only
	// inflate every request's latency.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot; beyond
	// it requests are shed with 429. ≤ 0 means 4 × MaxInFlight; use
	// NoQueue for an unbuffered admission gate.
	MaxQueue int
	// NoQueue forces an empty admission queue (MaxQueue = 0).
	NoQueue bool
	// CacheEntries bounds the LRU result cache; ≤ 0 means 1024 unless
	// NoCache is set.
	CacheEntries int
	// NoCache disables the result cache.
	NoCache bool
	// DefaultTimeout is the per-request deadline applied when a
	// request does not carry timeout_ms; ≤ 0 means 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested timeout_ms; ≤ 0 means 5m.
	MaxTimeout time.Duration
	// AllowPathLoad permits RegisterRequest.Path, i.e. loading graphs
	// from server-side files. Off by default: a remote caller naming
	// filesystem paths is a read-oracle unless the deployment
	// explicitly wants it.
	AllowPathLoad bool
	// Store, when non-nil, makes the registry durable: every
	// register/mutate/drop is WAL-appended before it is published,
	// a background checkpointer compacts the log when it outgrows the
	// store's threshold, and POST /admin/checkpoint forces a
	// checkpoint. The daemon opens the store (running crash recovery)
	// and adopts the recovered graphs before serving.
	Store *store.Store
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose process internals and cost
	// CPU when scraped, so a deployment opts in (bfserved -pprof).
	EnablePprof bool
	// SlowQueryLog, when non-nil, receives one JSON line per request
	// at or above SlowQueryThreshold, including the request's span
	// breakdown. nil disables slow-query logging entirely.
	SlowQueryLog io.Writer
	// SlowQueryThreshold is the slow-query cutoff; 0 logs every
	// request (useful with a 0 threshold in smoke tests), negative is
	// clamped to 0. Only meaningful with SlowQueryLog set.
	SlowQueryThreshold time.Duration
	// DefaultReservoir is the reservoir capacity for streaming ingests
	// that do not name one (IngestRequest.Reservoir); ≤ 0 means 65536
	// edges. Memory per open ingest is O(capacity) on top of the
	// retained edge log.
	DefaultReservoir int
	// Role is reported by /v1/healthz ("single" when empty) so cluster
	// clients can tell shards from routers when probing a seed list.
	// It does not change behavior: a shard is an ordinary bfserved that
	// a router happens to address.
	Role string
	// Tenants is the QoS admission config: per-tenant token buckets,
	// WRR weights and queue bounds (docs/QOS.md). The zero value is one
	// unlimited default tenant — exactly the pre-QoS behavior. Hot-
	// reloadable at runtime via POST /admin/tenants.
	Tenants TenantsConfig
	// DisableLegacy makes the deprecated unversioned aliases answer
	// 410 Gone (their Sunset headers point at /v1). The /v1 surface is
	// unaffected.
	DisableLegacy bool
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.NoQueue {
		c.MaxQueue = 0
	} else if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.NoCache {
		c.CacheEntries = 0
	} else if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.DefaultReservoir <= 0 {
		c.DefaultReservoir = 1 << 16
	}
	if c.Role == "" {
		c.Role = "single"
	}
	return c
}

// Server is the bfserved HTTP service: a graph registry plus
// admission control, deadlines, result caching and metrics. Construct
// with New; it is an http.Handler.
type Server struct {
	cfg     Config
	reg     *Registry
	lim     *limiter
	cache   *resultCache
	metrics *metrics
	obs     *obsMetrics
	slow    *obsv.SlowLog
	mux     *http.ServeMux
	// arena pools counting workspaces across requests; the pool is
	// concurrency-safe and sheds nothing on mismatch, so one shared
	// arena serves every graph.
	arena    *butterfly.Arena
	draining atomic.Bool

	// flights coalesces identical in-flight queries: concurrent cache
	// misses on one key share a single kernel execution, keyed by the
	// result-cache key (api surface, graph, version, normalized query).
	flights flight.Group[flightOutcome]

	// store is the optional durability layer (Config.Store); ckptCh
	// nudges the background checkpointer, stopCh ends it.
	store     *store.Store
	ckptCh    chan struct{}
	stopCh    chan struct{}
	ckptDone  chan struct{}
	closeOnce sync.Once

	// computeHook, when non-nil, runs after admission and before the
	// computation of every query — tests use it to hold a slot or burn
	// a deadline deterministically.
	computeHook func(ctx context.Context)
}

// New returns a Server ready to serve HTTP.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistry(),
		lim:     newQoSLimiter(cfg.MaxInFlight, cfg.MaxQueue, cfg.Tenants),
		cache:   newResultCache(cfg.CacheEntries),
		metrics: newMetrics(),
		obs:     newObsMetrics(),
		slow:    obsv.NewSlowLog(cfg.SlowQueryLog, cfg.SlowQueryThreshold),
		arena:   butterfly.NewArena(),
		store:   cfg.Store,
	}
	s.routes()
	if s.store != nil {
		s.reg.SetPersister(s.store)
		s.ckptCh = make(chan struct{}, 1)
		s.stopCh = make(chan struct{})
		s.ckptDone = make(chan struct{})
		go s.checkpointLoop()
	}
	return s
}

// Close stops the background checkpointer (if any). It does not close
// the store — the daemon owns that, after the HTTP server has fully
// drained.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.stopCh != nil {
			close(s.stopCh)
			<-s.ckptDone
		}
	})
}

// checkpointLoop runs size-triggered checkpoints in the background.
// Write endpoints nudge it after appending; it re-checks the
// threshold so spurious nudges are cheap.
func (s *Server) checkpointLoop() {
	defer close(s.ckptDone)
	for {
		select {
		case <-s.ckptCh:
			if s.store.ShouldCheckpoint() {
				if _, err := s.checkpoint(); err != nil {
					s.metrics.noteCheckpointError()
				}
			}
		case <-s.stopCh:
			return
		}
	}
}

// nudgeCheckpoint wakes the background checkpointer if the WAL has
// outgrown its threshold. Non-blocking: a full channel means a
// checkpoint is already pending.
func (s *Server) nudgeCheckpoint() {
	if s.store == nil || !s.store.ShouldCheckpoint() {
		return
	}
	select {
	case s.ckptCh <- struct{}{}:
	default:
	}
}

// checkpoint snapshots every graph's published state and compacts the
// WAL. See Registry.CheckpointTo and store.Checkpoint for the
// consistency and durability-ordering story.
func (s *Server) checkpoint() (store.CheckpointStats, error) {
	var stats store.CheckpointStats
	err := s.reg.CheckpointTo(func(snaps []*Snapshot) error {
		states := make([]store.GraphState, len(snaps))
		for i, sn := range snaps {
			states[i] = store.GraphState{Name: sn.Name, Version: sn.Version, Graph: sn.Graph, Count: sn.Count}
		}
		var err error
		stats, err = s.store.Checkpoint(states)
		return err
	})
	return stats, err
}

// Registry exposes the server's graph registry (the daemon preloads
// graphs through it).
func (s *Server) Registry() *Registry { return s.reg }

// Drain flips the health endpoint to "draining" (503) so load
// balancers stop sending new work while http.Server.Shutdown lets
// in-flight requests finish.
func (s *Server) Drain() { s.draining.Store(true) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// routes registers every endpoint twice: under /v1 (the versioned
// surface with the uniform error envelope and the ?debug=true trace
// knob) and at the original unversioned path (a deprecated alias that
// keeps the legacy error body and answers with a Deprecation header).
// /metrics and /debug/pprof are infrastructure and stay unversioned.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	endpoints := []struct {
		method, path, route string
		h                   http.HandlerFunc
	}{
		{"GET", "/healthz", "healthz", s.handleHealthz},
		{"GET", "/graphs", "graphs.list", s.handleListGraphs},
		{"POST", "/graphs", "graphs.register", s.handleRegister},
		{"GET", "/graphs/{name}", "graphs.info", s.handleGraphInfo},
		{"DELETE", "/graphs/{name}", "graphs.drop", s.handleDrop},
		{"POST", "/graphs/{name}/count", "count", s.handleCount},
		{"POST", "/graphs/{name}/vertex-counts", "vertex-counts", s.handleVertexCounts},
		{"POST", "/graphs/{name}/edge-supports", "edge-supports", s.handleEdgeSupports},
		{"POST", "/graphs/{name}/estimate", "estimate", s.handleEstimate},
		{"POST", "/graphs/{name}/peel", "peel", s.handlePeel},
		{"POST", "/graphs/{name}/mutate", "mutate", s.handleMutate},
		{"POST", "/admin/checkpoint", "admin.checkpoint", s.handleCheckpoint},
		{"POST", "/ingest", "ingest.open", s.handleIngestOpen},
		{"GET", "/ingest/{name}", "ingest.status", s.handleIngestStatus},
		{"POST", "/ingest/{name}/edges", "ingest.append", s.handleIngestAppend},
		{"POST", "/ingest/{name}/seal", "ingest.seal", s.handleIngestSeal},
		{"DELETE", "/ingest/{name}", "ingest.abort", s.handleIngestAbort},
	}
	for _, ep := range endpoints {
		s.mux.HandleFunc(ep.method+" /v1"+ep.path, s.instrument(ep.route, apiV1, ep.h))
		s.mux.HandleFunc(ep.method+" "+ep.path, s.instrument(ep.route, apiLegacy, ep.h))
	}
	// Cluster-internal endpoints are /v1-only: they postdate the legacy
	// surface and are spoken shard-to-router, never by end users.
	internal := []struct {
		method, path, route string
		h                   http.HandlerFunc
	}{
		{"GET", "/internal/partial/{name}", "internal.partial", s.handlePartial},
		{"GET", "/internal/export/{name}", "internal.export", s.handleExport},
		{"POST", "/internal/adopt", "internal.adopt", s.handleAdopt},
	}
	for _, ep := range internal {
		s.mux.HandleFunc(ep.method+" /v1"+ep.path, s.instrument(ep.route, apiV1, ep.h))
	}
	// QoS admin. Both mounts speak the /v1 envelope: the unversioned
	// spelling postdates the legacy surface, so it is not part of the
	// sunset and keeps working under -disable-legacy.
	for _, ep := range []struct {
		method string
		h      http.HandlerFunc
	}{
		{"GET", s.handleTenantsGet},
		{"POST", s.handleTenantsSet},
	} {
		s.mux.HandleFunc(ep.method+" /v1/admin/tenants", s.instrument("admin.tenants", apiV1, ep.h))
		s.mux.HandleFunc(ep.method+" /admin/tenants", s.instrument("admin.tenants", apiV1, ep.h))
	}
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// statusWriter captures the response code and body size for metrics.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// legacySunset is the removal horizon of the unversioned aliases,
// answered in the Sunset header (RFC 8594) of every legacy response;
// the Link header points at the migration note.
const (
	legacySunset     = "Thu, 01 Apr 2027 00:00:00 GMT"
	legacySunsetLink = `</docs/SERVING.md#legacy-sunset>; rel="sunset"`
)

// instrument wraps a handler with the per-request trace, tenant
// resolution, the request counter, the latency/size histograms, and
// the slow-query log.
func (s *Server) instrument(route string, api apiVer, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		st := &reqState{
			tr:     obsv.NewTrace("request"),
			api:    api,
			route:  route,
			debug:  api == apiV1 && debugRequested(r),
			tenant: defaultTenant,
		}
		// Tenancy is a /v1 feature: headers first, body fields win later
		// (applyTenant). The legacy surface predates tenancy and always
		// runs as the default tenant in the interactive lane.
		var laneErr error
		if api == apiV1 {
			st.tenant = s.lim.resolve(r.Header.Get(serveapi.TenantHeader))
			st.lane, laneErr = parseLane(r.Header.Get(serveapi.PriorityHeader))
		}
		r = withState(r, st)
		if api == apiLegacy {
			// The unversioned surface is a deprecated alias of /v1 with a
			// scheduled removal: every response carries the sunset
			// metadata, and remaining traffic is counted per route so
			// operators can see when the sunset can complete.
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Sunset", legacySunset)
			w.Header().Set("Link", legacySunsetLink)
			s.obs.legacyReqs.With(route).Inc()
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		switch {
		case api == apiLegacy && s.cfg.DisableLegacy:
			writeJSON(sw, http.StatusGone, serveapi.Error{
				Status:  http.StatusGone,
				Message: "this unversioned route has been sunset; use /v1" + r.URL.Path,
			})
		case laneErr != nil:
			s.writeError(sw, r, laneErr)
		default:
			h(sw, r)
		}
		elapsed := time.Since(start)
		s.metrics.observe(route, sw.code, elapsed)
		s.obs.observeRequest(st, elapsed, sw.bytes)
		s.lim.observe(st.tenant, elapsed)
		if s.slow.Should(elapsed) {
			s.obs.slowQueries.With().Inc()
			s.slow.Record(slowEntry{
				TS:        start.UTC().Format(time.RFC3339Nano),
				Route:     route,
				API:       api.String(),
				Method:    r.Method,
				Path:      r.URL.Path,
				Status:    sw.code,
				ElapsedMS: float64(elapsed.Microseconds()) / 1000,
				Trace:     spanNode(st.tr.Snapshot()),
			})
		}
	}
}

// compute invokes the test hook, if any.
func (s *Server) compute(ctx context.Context) {
	if s.computeHook != nil {
		s.computeHook(ctx)
	}
}

// timeout resolves a request's deadline from its timeout_ms.
func (s *Server) timeout(ms int) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeOK renders a success body. Under ?debug=true on /v1 the
// request's span tree is attached first; the "render" span is opened
// before the snapshot so even thin responses carry it (open spans
// report their live duration).
func (s *Server) writeOK(w http.ResponseWriter, r *http.Request, code int, v any) {
	st := stateOf(r)
	sp := st.root().Child("render")
	if st.debug {
		setTrace(v, spanToAPI(st.tr.Snapshot()))
	}
	writeJSON(w, code, v)
	sp.End()
}

// errMap resolves an error to its HTTP status, /v1 machine code, and
// retry hint (nonzero only for load shedding).
func errMap(err error) (status int, code string, retryMS int64) {
	var nf ErrNotFound
	var ex ErrExists
	var br badRequestError
	var de DurabilityError
	var lo ErrLoading
	var ni ErrNotIngesting
	var rb replicaBehindError
	var qe quotaError
	switch {
	case errors.As(err, &br):
		return http.StatusBadRequest, serveapi.CodeInvalidArgument, 0
	case errors.As(err, &qe):
		// The tenant's token bucket is empty: the retry hint is the
		// bucket's actual refill horizon, not a generic backoff.
		return http.StatusTooManyRequests, serveapi.CodeQuotaExhausted, qe.retryMS
	case errors.As(err, &rb):
		// The caller (a router, usually) should retry another replica
		// or wait for this one to catch up; either way, soon.
		return http.StatusServiceUnavailable, serveapi.CodeReplicaBehind, 50
	case errors.As(err, &nf):
		return http.StatusNotFound, serveapi.CodeNotFound, 0
	case errors.As(err, &ex):
		return http.StatusConflict, serveapi.CodeAlreadyExists, 0
	case errors.As(err, &lo):
		return http.StatusConflict, serveapi.CodeLoading, 0
	case errors.As(err, &ni):
		return http.StatusConflict, serveapi.CodeNotIngesting, 0
	case errors.Is(err, errShed):
		return http.StatusTooManyRequests, serveapi.CodeOverloaded, 1000
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, serveapi.CodeDeadlineExceeded, 0
	case errors.As(err, &de):
		return http.StatusInternalServerError, serveapi.CodeNotDurable, 0
	default:
		return http.StatusInternalServerError, serveapi.CodeInternal, 0
	}
}

// writeError maps an error to its HTTP status and emits the JSON
// error body: the uniform {error:{code,message,...}} envelope on /v1
// (with retry_after_ms on 429 and the span tree under ?debug=true),
// the legacy {status,error} shape on the unversioned alias.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	st := stateOf(r)
	status, code, retryMS := errMap(err)
	if retryMS > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt((retryMS+999)/1000, 10))
	}
	sp := st.root().Child("render")
	if st.api != apiV1 {
		writeJSON(w, status, serveapi.Error{Status: status, Message: err.Error()})
		sp.End()
		return
	}
	det := serveapi.ErrorDetail{Code: code, Message: err.Error(), RetryAfterMS: retryMS}
	if st.debug {
		det.Trace = spanToAPI(st.tr.Snapshot())
	}
	writeJSON(w, status, serveapi.ErrorEnvelope{Error: det})
	sp.End()
}

// decodeBody strictly decodes a JSON request body into v. An empty
// body is allowed and leaves v at its zero value, so `curl -X POST`
// without a body runs the default query.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return badReqf("invalid request body: %v", err)
	}
	return nil
}

// --- infrastructure endpoints ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sp := stateOf(r).root().Child("registry")
	h := serveapi.Health{
		Status:   "ok",
		Role:     s.cfg.Role,
		Graphs:   s.reg.Len(),
		InFlight: s.lim.inFlight(),
		Queued:   int(s.lim.queueDepth()),
	}
	sp.End()
	code := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeOK(w, r, code, &h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, s)
	s.obs.reg.WriteProm(w)
}

// --- registry endpoints ---

func snapInfo(sn *Snapshot) serveapi.GraphInfo {
	return serveapi.GraphInfo{
		Name:        sn.Name,
		Version:     sn.Version,
		NumV1:       sn.Graph.NumV1(),
		NumV2:       sn.Graph.NumV2(),
		NumEdges:    sn.Graph.NumEdges(),
		Butterflies: sn.Count,
		Density:     sn.Graph.Density(),
	}
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	sp := stateOf(r).root().Child("registry")
	snaps := s.reg.Snapshots()
	ingests := s.reg.Ingests()
	out := serveapi.GraphList{Graphs: make([]serveapi.GraphInfo, 0, len(snaps)+len(ingests))}
	for _, sn := range snaps {
		out.Graphs = append(out.Graphs, snapInfo(sn))
	}
	// Loading graphs appear after the registered ones, each group
	// sorted by name.
	for _, ing := range ingests {
		out.Graphs = append(out.Graphs, ingestInfo(ing))
	}
	sp.End()
	s.writeOK(w, r, http.StatusOK, &out)
}

func (s *Server) handleGraphInfo(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sp := stateOf(r).root().Child("registry")
	sn, err := s.reg.Get(name)
	if err != nil {
		// A loading graph has no snapshot but does have a live status.
		if ing, ok := s.reg.Ingest(name); ok {
			sp.End()
			info := ingestInfo(ing)
			s.writeOK(w, r, http.StatusOK, &info)
			return
		}
		sp.End()
		s.writeError(w, r, err)
		return
	}
	sp.End()
	if err := checkFloor(r, sn); err != nil {
		s.writeError(w, r, err)
		return
	}
	info := snapInfo(sn)
	s.writeOK(w, r, http.StatusOK, &info)
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	sp := stateOf(r).root().Child("registry")
	err := s.reg.Drop(r.PathValue("name"))
	sp.End()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// loadRequestGraph materializes the graph named by a RegisterRequest.
func (s *Server) loadRequestGraph(req *serveapi.RegisterRequest) (*butterfly.Graph, error) {
	sources := 0
	if req.Dataset != "" {
		sources++
	}
	if req.Path != "" {
		sources++
	}
	if len(req.Edges) > 0 || req.M > 0 || req.N > 0 {
		sources++
	}
	if sources != 1 {
		return nil, badReqf("exactly one of dataset, path, or m/n/edges must be set")
	}
	switch {
	case req.Dataset != "":
		scale := req.Scale
		if scale < 1 {
			scale = 1
		}
		g, err := butterfly.GeneratePaperDataset(req.Dataset, scale)
		if err != nil {
			return nil, badReqf("%v", err)
		}
		return g, nil
	case req.Path != "":
		if !s.cfg.AllowPathLoad {
			return nil, badReqf("server-side path loading is disabled (start bfserved with -allow-path-load)")
		}
		switch req.Format {
		case "", "konect":
			return butterfly.ReadKONECTFile(req.Path)
		case "matrixmarket", "mm":
			return butterfly.ReadMatrixMarketFile(req.Path)
		default:
			return nil, badReqf("unknown format %q (want konect|matrixmarket)", req.Format)
		}
	default:
		g, err := butterfly.FromEdges(req.M, req.N, req.Edges)
		if err != nil {
			return nil, badReqf("%v", err)
		}
		return g, nil
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	root := stateOf(r).root()
	psp := root.Child("parse")
	var req serveapi.RegisterRequest
	if err := decodeBody(r, &req); err != nil {
		psp.End()
		s.writeError(w, r, err)
		return
	}
	if req.Name == "" {
		psp.End()
		s.writeError(w, r, badReqf("name is required"))
		return
	}
	if req.Partitions > 1 {
		// Partitioned registration is a routing-tier feature: the
		// router splits the edge set and places the pieces. A single
		// bfserved has nowhere to scatter to.
		psp.End()
		s.writeError(w, r, badReqf("partitions=%d requires a cluster router (this is a %s bfserved)", req.Partitions, s.cfg.Role))
		return
	}
	psp.End()
	// Registration computes an initial exact count; bound its
	// concurrency like any other computation.
	asp := root.Child("admission")
	err := s.lim.acquire(r.Context())
	asp.End()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	defer s.lim.release()
	lsp := root.Child("load")
	g, err := s.loadRequestGraph(&req)
	lsp.End()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	rsp := root.Child("registry")
	sn, err := s.reg.RegisterObserved(req.Name, g, req.Replace, rsp.Hook())
	rsp.End()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.nudgeCheckpoint()
	info := snapInfo(sn)
	s.writeOK(w, r, http.StatusCreated, &info)
}

// handleCheckpoint forces a synchronous checkpoint: snapshot every
// graph, truncate the WAL, GC stale snapshot files. 400 when the
// daemon runs without a data dir.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.writeError(w, r, badReqf("durability is not enabled (start bfserved with -data-dir)"))
		return
	}
	csp := stateOf(r).root().Child("checkpoint")
	stats, err := s.checkpoint()
	csp.End()
	if err != nil {
		s.metrics.noteCheckpointError()
		s.writeError(w, r, fmt.Errorf("checkpoint: %w", err))
		return
	}
	s.writeOK(w, r, http.StatusOK, &serveapi.CheckpointResponse{
		Graphs:         stats.Graphs,
		WALBytesBefore: stats.WALBytesBefore,
		WALBytesAfter:  stats.WALBytesAfter,
		ElapsedMS:      stats.Elapsed.Milliseconds(),
	})
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	root := stateOf(r).root()
	name := r.PathValue("name")
	psp := root.Child("parse")
	var req serveapi.MutateRequest
	if err := decodeBody(r, &req); err != nil {
		psp.End()
		s.writeError(w, r, err)
		return
	}
	if err := s.applyTenant(r, req.Tenant, req.Priority); err != nil {
		psp.End()
		s.writeError(w, r, err)
		return
	}
	psp.End()
	st := stateOf(r)
	echoTenant(w, st)
	asp := root.Child("admission")
	err := s.lim.acquireFor(r.Context(), st.tenant, st.lane)
	asp.End()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	defer s.lim.release()
	start := time.Now()
	msp := root.Child("mutate")
	res, err := s.reg.MutateObserved(name, req.Inserts, req.Deletes, msp.Hook())
	msp.End()
	if err != nil {
		var nf ErrNotFound
		var de DurabilityError
		if !errors.As(err, &nf) && !errors.As(err, &de) {
			err = badReqf("%v", err)
		}
		s.writeError(w, r, err) // DurabilityError falls through to 500
		return
	}
	s.nudgeCheckpoint()
	s.writeOK(w, r, http.StatusOK, &serveapi.MutateResponse{
		Graph:     name,
		Version:   res.Version,
		Inserted:  res.Inserted,
		Deleted:   res.Deleted,
		Created:   res.Created,
		Destroyed: res.Destroyed,
		Count:     res.Count,
		Edges:     res.Edges,
		ElapsedMS: time.Since(start).Milliseconds(),
	})
}

// --- query endpoints ---

// flightOutcome is what a coalesced query execution publishes to its
// followers: the leader's exact rendered bytes (followers must observe
// the leader's body bit-for-bit) or the leader's error.
type flightOutcome struct {
	body []byte
	err  error
}

// serveQuery is the shared skeleton of every cached, admission-
// controlled, deadline-bounded query endpoint:
//
//  1. resolve the graph snapshot (404);
//  2. check the result cache under (name, version, key) — hits skip
//     admission entirely, which is what makes a hot cache absorb
//     traffic spikes;
//  3. charge one token from the requester's tenant bucket (429
//     quota_exhausted with the bucket's refill horizon when empty);
//  4. coalesce with any identical in-flight query: one leader acquires
//     an execution slot (429 overloaded when its tenant's queue is
//     full, 504 when the deadline expires while queued), runs exec
//     under the deadline, renders and caches; followers wait and
//     observe the leader's exact bytes (X-Cache: coalesced). Step 3
//     runs before the coalescing point, so a thundering herd shares
//     one kernel execution but every request pays its own tenant's
//     quota;
//  5. reply. Cache status is reported in the X-Cache header so bodies
//     stay byte-identical between hit, miss and coalesced.
//
// The flight key is the cache key: API surface, graph, version and
// normalized query (including the aggregation mode for counts) — the
// same identity that makes two responses byte-interchangeable. Legacy
// and /v1 requests therefore never share an execution, for the same
// reason they do not share cache entries.
//
// The leader executes on a context detached from its own client
// (context.WithoutCancel): its result is shared, so a leader
// disconnect must not poison every follower. The resolved timeout
// still bounds the run. Followers wait for the leader without a bound
// of their own — the leader's deadline is the bound — and inherit the
// leader's error verbatim (a 504 for a too-slow leader, a 429 for a
// full queue), except that the degrade-to-estimate fallback is applied
// per request: a follower that asked for ?degrade=estimate degrades
// even when the leader did not ask for it.
//
// ?debug=true requests bypass the cache and the coalescing in both
// directions: a debug response carries its own trace, so it must
// describe its own execution and be neither served from nor stored
// into shared state.
//
// onShed, when non-nil, is the degrade-to-estimate fallback: instead
// of answering 429 when the admission queue is full, the request is
// answered inline — outside any execution slot — with whatever cheap
// approximation onShed produces (marked by the X-Degraded header and
// never cached). The fallback must be orders of magnitude cheaper than
// the exact query, since it deliberately bypasses admission control.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, timeoutMS int, key string, onShed func(snap *Snapshot) (any, error), exec func(ctx context.Context, sl *slot, snap *Snapshot, ksp *obsv.Span) (any, error)) {
	st := stateOf(r)
	root := st.root()

	rsp := root.Child("registry")
	snap, err := s.reg.Get(r.PathValue("name"))
	rsp.End()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if err := checkFloor(r, snap); err != nil {
		s.writeError(w, r, err)
		return
	}
	echoTenant(w, st)
	cacheKey := fmt.Sprintf("%s|%s|v%d|%s", st.api, snap.Name, snap.Version, key)
	if !st.debug {
		csp := root.Child("cache")
		body, ok := s.cache.get(cacheKey)
		csp.End()
		if ok {
			wsp := root.Child("render")
			w.Header().Set("X-Cache", "hit")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(body)
			wsp.End()
			return
		}
	}

	// Every request pays its own tenant's quota before anything is
	// shared: coalesced followers ride the leader's execution, never
	// its budget.
	asp := root.Child("admission")
	err = s.lim.charge(st.tenant)
	asp.End()
	if err != nil {
		s.writeError(w, r, err)
		return
	}

	if st.debug {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout(timeoutMS))
		defer cancel()
		qsp := root.Child("admission")
		err = s.lim.acquireSlot(ctx, st.tenant, st.lane)
		qsp.End()
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		sl := &slot{lim: s.lim}
		defer sl.release()
		start := time.Now()
		ksp := root.Child("kernel")
		s.compute(ctx)
		resp, err := exec(ctx, sl, snap, ksp)
		ksp.End()
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		setElapsed(resp, time.Since(start).Milliseconds())
		// Debug responses carry their span tree and are never cached.
		s.writeOK(w, r, http.StatusOK, resp)
		return
	}

	out, joined := s.flights.Do(cacheKey, func() flightOutcome {
		ctx, cancel := context.WithTimeout(context.WithoutCancel(r.Context()), s.timeout(timeoutMS))
		defer cancel()
		qsp := root.Child("admission")
		err := s.lim.acquireSlot(ctx, st.tenant, st.lane)
		qsp.End()
		if err != nil {
			return flightOutcome{err: err}
		}
		sl := &slot{lim: s.lim}
		defer sl.release()
		start := time.Now()
		ksp := root.Child("kernel")
		s.compute(ctx)
		resp, err := exec(ctx, sl, snap, ksp)
		ksp.End()
		if err != nil {
			return flightOutcome{err: err}
		}
		setElapsed(resp, time.Since(start).Milliseconds())
		body, err := json.Marshal(resp)
		if err != nil {
			return flightOutcome{err: err}
		}
		body = append(body, '\n')
		s.cache.put(cacheKey, body)
		return flightOutcome{body: body}
	})
	if joined {
		s.obs.coalesced.With().Inc()
	}
	if out.err != nil {
		if errors.Is(out.err, errShed) && onShed != nil {
			dsp := root.Child("degrade")
			resp, derr := onShed(snap)
			dsp.End()
			if derr == nil {
				s.obs.estimates.With("degraded").Inc()
				w.Header().Set("X-Degraded", "estimate")
				s.writeOK(w, r, http.StatusOK, resp)
				return
			}
		}
		s.writeError(w, r, out.err)
		return
	}

	wsp := root.Child("render")
	if joined {
		w.Header().Set("X-Cache", "coalesced")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out.body)
	wsp.End()
}

// echoTenant reports the resolved tenant and priority back to the
// caller — headers only. Response bodies are shared across tenants by
// the result cache and by coalescing, so tenancy must never leak into
// them.
func echoTenant(w http.ResponseWriter, st *reqState) {
	if st.api != apiV1 {
		return
	}
	w.Header().Set(serveapi.TenantHeader, st.tenant)
	w.Header().Set(serveapi.PriorityHeader, st.lane.String())
}

// applyTenant applies a request body's tenant/priority fields; the
// body wins over the headers instrument resolved. Legacy requests
// ignore both — the old surface predates tenancy.
func (s *Server) applyTenant(r *http.Request, tenant, priority string) error {
	st := stateOf(r)
	if st.api != apiV1 {
		return nil
	}
	if tenant != "" {
		st.tenant = s.lim.resolve(tenant)
	}
	if priority != "" {
		ln, err := parseLane(priority)
		if err != nil {
			return err
		}
		st.lane = ln
	}
	return nil
}

// --- QoS admin endpoints ---

// handleTenantsGet returns the active tenant config.
func (s *Server) handleTenantsGet(w http.ResponseWriter, r *http.Request) {
	cfg := s.lim.config()
	s.writeOK(w, r, http.StatusOK, &cfg)
}

// handleTenantsSet hot-swaps the tenant config. Buckets keep their
// earned tokens (clamped to the new burst) and queued requests drain
// under the new weights; nothing in flight is disturbed.
func (s *Server) handleTenantsSet(w http.ResponseWriter, r *http.Request) {
	var cfg TenantsConfig
	if err := decodeBody(r, &cfg); err != nil {
		s.writeError(w, r, err)
		return
	}
	s.lim.setConfig(cfg)
	out := s.lim.config()
	s.writeOK(w, r, http.StatusOK, &out)
}

// setElapsed stamps the compute latency on the response types that
// carry one. Cached replies keep the original compute time — the
// useful number for capacity planning ("what did this result cost").
func setElapsed(resp any, ms int64) {
	switch v := resp.(type) {
	case *serveapi.CountResponse:
		v.ElapsedMS = ms
	case *serveapi.VertexCountsResponse:
		v.ElapsedMS = ms
	case *serveapi.EdgeSupportsResponse:
		v.ElapsedMS = ms
	case *serveapi.EstimateResponse:
		v.ElapsedMS = ms
	case *serveapi.IngestResponse:
		v.ElapsedMS = ms
	case *serveapi.PeelResponse:
		v.ElapsedMS = ms
	}
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	psp := stateOf(r).root().Child("parse")
	var req serveapi.CountRequest
	if err := decodeBody(r, &req); err != nil {
		psp.End()
		s.writeError(w, r, err)
		return
	}
	if err := s.applyTenant(r, req.Tenant, req.Priority); err != nil {
		psp.End()
		s.writeError(w, r, err)
		return
	}
	if _, err := countOptions(&req); err != nil { // validate before admission
		psp.End()
		s.writeError(w, r, err)
		return
	}
	// ?degrade=estimate opts into the approximate tier under overload:
	// a shed request answers 200 with a sampling estimate (Degraded
	// set, X-Degraded header) instead of a bare 429.
	var onShed func(snap *Snapshot) (any, error)
	switch r.URL.Query().Get("degrade") {
	case "":
	case "estimate":
		onShed = s.degradedEstimate
	default:
		psp.End()
		s.writeError(w, r, badReqf("unknown degrade mode %q (want estimate)", r.URL.Query().Get("degrade")))
		return
	}
	psp.End()
	s.serveQuery(w, r, req.TimeoutMillis, keyCountFor(&req), onShed, func(ctx context.Context, sl *slot, snap *Snapshot, ksp *obsv.Span) (any, error) {
		return s.execCount(ctx, snap, &req, ksp)
	})
}

func (s *Server) handleVertexCounts(w http.ResponseWriter, r *http.Request) {
	psp := stateOf(r).root().Child("parse")
	var req serveapi.VertexCountsRequest
	if err := decodeBody(r, &req); err != nil {
		psp.End()
		s.writeError(w, r, err)
		return
	}
	if err := s.applyTenant(r, req.Tenant, req.Priority); err != nil {
		psp.End()
		s.writeError(w, r, err)
		return
	}
	side, err := parseSide(req.Side)
	if err != nil {
		psp.End()
		s.writeError(w, r, err)
		return
	}
	top := req.Top
	if top == 0 {
		top = 100
	}
	psp.End()
	s.serveQuery(w, r, req.TimeoutMillis, keyVertex(side, top), nil, func(ctx context.Context, sl *slot, snap *Snapshot, ksp *obsv.Span) (any, error) {
		return s.execVertexCounts(ctx, sl, snap, side, top)
	})
}

func (s *Server) handleEdgeSupports(w http.ResponseWriter, r *http.Request) {
	psp := stateOf(r).root().Child("parse")
	var req serveapi.EdgeSupportsRequest
	if err := decodeBody(r, &req); err != nil {
		psp.End()
		s.writeError(w, r, err)
		return
	}
	if err := s.applyTenant(r, req.Tenant, req.Priority); err != nil {
		psp.End()
		s.writeError(w, r, err)
		return
	}
	top := req.Top
	if top == 0 {
		top = 100
	}
	psp.End()
	s.serveQuery(w, r, req.TimeoutMillis, fmt.Sprintf("%s|top=%d", keyEdges, top), nil, func(ctx context.Context, sl *slot, snap *Snapshot, ksp *obsv.Span) (any, error) {
		return s.execEdgeSupports(ctx, sl, snap, top)
	})
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	root := stateOf(r).root()
	psp := root.Child("parse")
	var req serveapi.EstimateRequest
	if err := decodeBody(r, &req); err != nil {
		psp.End()
		s.writeError(w, r, err)
		return
	}
	if err := s.applyTenant(r, req.Tenant, req.Priority); err != nil {
		psp.End()
		s.writeError(w, r, err)
		return
	}
	psp.End()
	// A graph still streaming through /v1/ingest answers from the live
	// reservoir: O(1), uncached, and deliberately outside admission
	// control — the approximate tier must answer even when the exact
	// tier is saturated (that is its job).
	if ing, ok := s.reg.Ingest(r.PathValue("name")); ok {
		rsp := root.Child("reservoir")
		st := ing.status()
		rsp.End()
		s.obs.estimates.With("reservoir").Inc()
		resp := &serveapi.EstimateResponse{
			ResultMeta:    serveapi.ResultMeta{Graph: st.Graph},
			State:         "loading",
			Strategy:      "reservoir",
			Estimate:      st.Estimate,
			StdErr:        st.StdErr,
			CI95:          st.CI95,
			EdgesSeen:     st.EdgesSeen,
			ReservoirSize: st.ReservoirSize,
		}
		s.writeOK(w, r, http.StatusOK, resp)
		return
	}
	s.serveQuery(w, r, req.TimeoutMillis, keyEstimate(&req), nil, func(ctx context.Context, sl *slot, snap *Snapshot, ksp *obsv.Span) (any, error) {
		return s.execEstimate(ctx, sl, snap, &req)
	})
}

func (s *Server) handlePeel(w http.ResponseWriter, r *http.Request) {
	psp := stateOf(r).root().Child("parse")
	var req serveapi.PeelRequest
	if err := decodeBody(r, &req); err != nil {
		psp.End()
		s.writeError(w, r, err)
		return
	}
	if err := s.applyTenant(r, req.Tenant, req.Priority); err != nil {
		psp.End()
		s.writeError(w, r, err)
		return
	}
	side, err := parseSide(req.Side)
	if err != nil {
		psp.End()
		s.writeError(w, r, err)
		return
	}
	if req.Mode != "tip" && req.Mode != "wing" {
		psp.End()
		s.writeError(w, r, badReqf("unknown mode %q (want tip|wing)", req.Mode))
		return
	}
	if req.K < 0 {
		psp.End()
		s.writeError(w, r, badReqf("k must be ≥ 0, got %d", req.K))
		return
	}
	engine, err := parsePeelEngine(req.Engine)
	if err != nil {
		psp.End()
		s.writeError(w, r, err)
		return
	}
	psp.End()
	s.serveQuery(w, r, req.TimeoutMillis, keyPeel(req.Mode, req.K, side, engine), nil, func(ctx context.Context, sl *slot, snap *Snapshot, ksp *obsv.Span) (any, error) {
		return s.execPeel(ctx, sl, snap, &req, ksp)
	})
}
