package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"butterfly"
	"butterfly/internal/store"
	"butterfly/serveapi"
)

// Config tunes a Server. The zero value is usable: every field has a
// production-reasonable default, documented per field and in
// docs/SERVING.md ("capacity tuning").
type Config struct {
	// MaxInFlight bounds concurrently executing requests; ≤ 0 means
	// GOMAXPROCS. Counting is CPU-bound, so there is no benefit to
	// running more computations than cores — extra admissions only
	// inflate every request's latency.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot; beyond
	// it requests are shed with 429. ≤ 0 means 4 × MaxInFlight; use
	// NoQueue for an unbuffered admission gate.
	MaxQueue int
	// NoQueue forces an empty admission queue (MaxQueue = 0).
	NoQueue bool
	// CacheEntries bounds the LRU result cache; ≤ 0 means 1024 unless
	// NoCache is set.
	CacheEntries int
	// NoCache disables the result cache.
	NoCache bool
	// DefaultTimeout is the per-request deadline applied when a
	// request does not carry timeout_ms; ≤ 0 means 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested timeout_ms; ≤ 0 means 5m.
	MaxTimeout time.Duration
	// AllowPathLoad permits RegisterRequest.Path, i.e. loading graphs
	// from server-side files. Off by default: a remote caller naming
	// filesystem paths is a read-oracle unless the deployment
	// explicitly wants it.
	AllowPathLoad bool
	// Store, when non-nil, makes the registry durable: every
	// register/mutate/drop is WAL-appended before it is published,
	// a background checkpointer compacts the log when it outgrows the
	// store's threshold, and POST /admin/checkpoint forces a
	// checkpoint. The daemon opens the store (running crash recovery)
	// and adopts the recovered graphs before serving.
	Store *store.Store
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.NoQueue {
		c.MaxQueue = 0
	} else if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.NoCache {
		c.CacheEntries = 0
	} else if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	return c
}

// Server is the bfserved HTTP service: a graph registry plus
// admission control, deadlines, result caching and metrics. Construct
// with New; it is an http.Handler.
type Server struct {
	cfg     Config
	reg     *Registry
	lim     *limiter
	cache   *resultCache
	metrics *metrics
	mux     *http.ServeMux
	// arena pools counting workspaces across requests; the pool is
	// concurrency-safe and sheds nothing on mismatch, so one shared
	// arena serves every graph.
	arena    *butterfly.Arena
	draining atomic.Bool

	// store is the optional durability layer (Config.Store); ckptCh
	// nudges the background checkpointer, stopCh ends it.
	store     *store.Store
	ckptCh    chan struct{}
	stopCh    chan struct{}
	ckptDone  chan struct{}
	closeOnce sync.Once

	// computeHook, when non-nil, runs after admission and before the
	// computation of every query — tests use it to hold a slot or burn
	// a deadline deterministically.
	computeHook func(ctx context.Context)
}

// New returns a Server ready to serve HTTP.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistry(),
		lim:     newLimiter(cfg.MaxInFlight, cfg.MaxQueue),
		cache:   newResultCache(cfg.CacheEntries),
		metrics: newMetrics(),
		arena:   butterfly.NewArena(),
		store:   cfg.Store,
	}
	s.routes()
	if s.store != nil {
		s.reg.SetPersister(s.store)
		s.ckptCh = make(chan struct{}, 1)
		s.stopCh = make(chan struct{})
		s.ckptDone = make(chan struct{})
		go s.checkpointLoop()
	}
	return s
}

// Close stops the background checkpointer (if any). It does not close
// the store — the daemon owns that, after the HTTP server has fully
// drained.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.stopCh != nil {
			close(s.stopCh)
			<-s.ckptDone
		}
	})
}

// checkpointLoop runs size-triggered checkpoints in the background.
// Write endpoints nudge it after appending; it re-checks the
// threshold so spurious nudges are cheap.
func (s *Server) checkpointLoop() {
	defer close(s.ckptDone)
	for {
		select {
		case <-s.ckptCh:
			if s.store.ShouldCheckpoint() {
				if _, err := s.checkpoint(); err != nil {
					s.metrics.noteCheckpointError()
				}
			}
		case <-s.stopCh:
			return
		}
	}
}

// nudgeCheckpoint wakes the background checkpointer if the WAL has
// outgrown its threshold. Non-blocking: a full channel means a
// checkpoint is already pending.
func (s *Server) nudgeCheckpoint() {
	if s.store == nil || !s.store.ShouldCheckpoint() {
		return
	}
	select {
	case s.ckptCh <- struct{}{}:
	default:
	}
}

// checkpoint snapshots every graph's published state and compacts the
// WAL. See Registry.CheckpointTo and store.Checkpoint for the
// consistency and durability-ordering story.
func (s *Server) checkpoint() (store.CheckpointStats, error) {
	var stats store.CheckpointStats
	err := s.reg.CheckpointTo(func(snaps []*Snapshot) error {
		states := make([]store.GraphState, len(snaps))
		for i, sn := range snaps {
			states[i] = store.GraphState{Name: sn.Name, Version: sn.Version, Graph: sn.Graph, Count: sn.Count}
		}
		var err error
		stats, err = s.store.Checkpoint(states)
		return err
	})
	return stats, err
}

// Registry exposes the server's graph registry (the daemon preloads
// graphs through it).
func (s *Server) Registry() *Registry { return s.reg }

// Drain flips the health endpoint to "draining" (503) so load
// balancers stop sending new work while http.Server.Shutdown lets
// in-flight requests finish.
func (s *Server) Drain() { s.draining.Store(true) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /graphs", s.instrument("graphs.list", s.handleListGraphs))
	s.mux.HandleFunc("POST /graphs", s.instrument("graphs.register", s.handleRegister))
	s.mux.HandleFunc("GET /graphs/{name}", s.instrument("graphs.info", s.handleGraphInfo))
	s.mux.HandleFunc("DELETE /graphs/{name}", s.instrument("graphs.drop", s.handleDrop))
	s.mux.HandleFunc("POST /graphs/{name}/count", s.instrument("count", s.handleCount))
	s.mux.HandleFunc("POST /graphs/{name}/vertex-counts", s.instrument("vertex-counts", s.handleVertexCounts))
	s.mux.HandleFunc("POST /graphs/{name}/edge-supports", s.instrument("edge-supports", s.handleEdgeSupports))
	s.mux.HandleFunc("POST /graphs/{name}/estimate", s.instrument("estimate", s.handleEstimate))
	s.mux.HandleFunc("POST /graphs/{name}/peel", s.instrument("peel", s.handlePeel))
	s.mux.HandleFunc("POST /graphs/{name}/mutate", s.instrument("mutate", s.handleMutate))
	s.mux.HandleFunc("POST /admin/checkpoint", s.instrument("admin.checkpoint", s.handleCheckpoint))
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting and the latency
// histogram.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.metrics.observe(route, sw.code, time.Since(start))
	}
}

// compute invokes the test hook, if any.
func (s *Server) compute(ctx context.Context) {
	if s.computeHook != nil {
		s.computeHook(ctx)
	}
}

// timeout resolves a request's deadline from its timeout_ms.
func (s *Server) timeout(ms int) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeErr maps an error to its HTTP status and emits the JSON error
// body.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var nf ErrNotFound
	var ex ErrExists
	var br badRequestError
	switch {
	case errors.As(err, &br):
		code = http.StatusBadRequest
	case errors.As(err, &nf):
		code = http.StatusNotFound
	case errors.As(err, &ex):
		code = http.StatusConflict
	case errors.Is(err, errShed):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		code = http.StatusGatewayTimeout
	}
	writeJSON(w, code, serveapi.Error{Status: code, Message: err.Error()})
}

// decodeBody strictly decodes a JSON request body into v. An empty
// body is allowed and leaves v at its zero value, so `curl -X POST`
// without a body runs the default query.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return badReqf("invalid request body: %v", err)
	}
	return nil
}

// --- infrastructure endpoints ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := serveapi.Health{
		Status:   "ok",
		Graphs:   s.reg.Len(),
		InFlight: s.lim.inFlight(),
		Queued:   int(s.lim.queueDepth()),
	}
	code := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, s)
}

// --- registry endpoints ---

func snapInfo(sn *Snapshot) serveapi.GraphInfo {
	return serveapi.GraphInfo{
		Name:        sn.Name,
		Version:     sn.Version,
		NumV1:       sn.Graph.NumV1(),
		NumV2:       sn.Graph.NumV2(),
		NumEdges:    sn.Graph.NumEdges(),
		Butterflies: sn.Count,
		Density:     sn.Graph.Density(),
	}
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	snaps := s.reg.Snapshots()
	out := serveapi.GraphList{Graphs: make([]serveapi.GraphInfo, 0, len(snaps))}
	for _, sn := range snaps {
		out.Graphs = append(out.Graphs, snapInfo(sn))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGraphInfo(w http.ResponseWriter, r *http.Request) {
	sn, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snapInfo(sn))
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Drop(r.PathValue("name")); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// loadRequestGraph materializes the graph named by a RegisterRequest.
func (s *Server) loadRequestGraph(req *serveapi.RegisterRequest) (*butterfly.Graph, error) {
	sources := 0
	if req.Dataset != "" {
		sources++
	}
	if req.Path != "" {
		sources++
	}
	if len(req.Edges) > 0 || req.M > 0 || req.N > 0 {
		sources++
	}
	if sources != 1 {
		return nil, badReqf("exactly one of dataset, path, or m/n/edges must be set")
	}
	switch {
	case req.Dataset != "":
		scale := req.Scale
		if scale < 1 {
			scale = 1
		}
		g, err := butterfly.GeneratePaperDataset(req.Dataset, scale)
		if err != nil {
			return nil, badReqf("%v", err)
		}
		return g, nil
	case req.Path != "":
		if !s.cfg.AllowPathLoad {
			return nil, badReqf("server-side path loading is disabled (start bfserved with -allow-path-load)")
		}
		switch req.Format {
		case "", "konect":
			return butterfly.ReadKONECTFile(req.Path)
		case "matrixmarket", "mm":
			return butterfly.ReadMatrixMarketFile(req.Path)
		default:
			return nil, badReqf("unknown format %q (want konect|matrixmarket)", req.Format)
		}
	default:
		g, err := butterfly.FromEdges(req.M, req.N, req.Edges)
		if err != nil {
			return nil, badReqf("%v", err)
		}
		return g, nil
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req serveapi.RegisterRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if req.Name == "" {
		writeErr(w, badReqf("name is required"))
		return
	}
	// Registration computes an initial exact count; bound its
	// concurrency like any other computation.
	if err := s.lim.acquire(r.Context()); err != nil {
		writeErr(w, err)
		return
	}
	defer s.lim.release()
	g, err := s.loadRequestGraph(&req)
	if err != nil {
		writeErr(w, err)
		return
	}
	sn, err := s.reg.Register(req.Name, g, req.Replace)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.nudgeCheckpoint()
	writeJSON(w, http.StatusCreated, snapInfo(sn))
}

// handleCheckpoint forces a synchronous checkpoint: snapshot every
// graph, truncate the WAL, GC stale snapshot files. 400 when the
// daemon runs without a data dir.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeErr(w, badReqf("durability is not enabled (start bfserved with -data-dir)"))
		return
	}
	stats, err := s.checkpoint()
	if err != nil {
		s.metrics.noteCheckpointError()
		writeErr(w, fmt.Errorf("checkpoint: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, serveapi.CheckpointResponse{
		Graphs:         stats.Graphs,
		WALBytesBefore: stats.WALBytesBefore,
		WALBytesAfter:  stats.WALBytesAfter,
		ElapsedMS:      stats.Elapsed.Milliseconds(),
	})
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req serveapi.MutateRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.lim.acquire(r.Context()); err != nil {
		writeErr(w, err)
		return
	}
	defer s.lim.release()
	start := time.Now()
	res, err := s.reg.Mutate(name, req.Inserts, req.Deletes)
	if err != nil {
		var nf ErrNotFound
		var de DurabilityError
		if !errors.As(err, &nf) && !errors.As(err, &de) {
			err = badReqf("%v", err)
		}
		writeErr(w, err) // DurabilityError falls through to 500
		return
	}
	s.nudgeCheckpoint()
	writeJSON(w, http.StatusOK, serveapi.MutateResponse{
		Graph:     name,
		Version:   res.Version,
		Inserted:  res.Inserted,
		Deleted:   res.Deleted,
		Created:   res.Created,
		Destroyed: res.Destroyed,
		Count:     res.Count,
		Edges:     res.Edges,
		ElapsedMS: time.Since(start).Milliseconds(),
	})
}

// --- query endpoints ---

// serveQuery is the shared skeleton of every cached, admission-
// controlled, deadline-bounded query endpoint:
//
//  1. resolve the graph snapshot (404);
//  2. check the result cache under (name, version, key) — hits skip
//     admission entirely, which is what makes a hot cache absorb
//     traffic spikes;
//  3. acquire an execution slot (429 when the queue is full, 504 when
//     the deadline expires while queued);
//  4. run exec under the deadline (504 on expiry);
//  5. render, cache, reply. Cache status is reported in the X-Cache
//     header so bodies stay byte-identical between hit and miss.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, timeoutMS int, key string, exec func(ctx context.Context, sl *slot, snap *Snapshot) (any, error)) {
	snap, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	cacheKey := fmt.Sprintf("%s|v%d|%s", snap.Name, snap.Version, key)
	if body, ok := s.cache.get(cacheKey); ok {
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(timeoutMS))
	defer cancel()

	if err := s.lim.acquire(ctx); err != nil {
		writeErr(w, err)
		return
	}
	sl := &slot{lim: s.lim}
	defer sl.release()

	start := time.Now()
	s.compute(ctx)
	resp, err := exec(ctx, sl, snap)
	if err != nil {
		writeErr(w, err)
		return
	}
	elapsed := time.Since(start).Milliseconds()
	setElapsed(resp, elapsed)

	body, err := json.Marshal(resp)
	if err != nil {
		writeErr(w, err)
		return
	}
	body = append(body, '\n')
	s.cache.put(cacheKey, body)
	w.Header().Set("X-Cache", "miss")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// setElapsed stamps the compute latency on the response types that
// carry one. Cached replies keep the original compute time — the
// useful number for capacity planning ("what did this result cost").
func setElapsed(resp any, ms int64) {
	switch v := resp.(type) {
	case *serveapi.CountResponse:
		v.ElapsedMS = ms
	case *serveapi.VertexCountsResponse:
		v.ElapsedMS = ms
	case *serveapi.EdgeSupportsResponse:
		v.ElapsedMS = ms
	case *serveapi.EstimateResponse:
		v.ElapsedMS = ms
	case *serveapi.PeelResponse:
		v.ElapsedMS = ms
	}
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	var req serveapi.CountRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if _, err := countOptions(&req); err != nil { // validate before admission
		writeErr(w, err)
		return
	}
	s.serveQuery(w, r, req.TimeoutMillis, keyCount, func(ctx context.Context, sl *slot, snap *Snapshot) (any, error) {
		return s.execCount(ctx, snap, &req)
	})
}

func (s *Server) handleVertexCounts(w http.ResponseWriter, r *http.Request) {
	var req serveapi.VertexCountsRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	side, err := parseSide(req.Side)
	if err != nil {
		writeErr(w, err)
		return
	}
	top := req.Top
	if top == 0 {
		top = 100
	}
	s.serveQuery(w, r, req.TimeoutMillis, keyVertex(side, top), func(ctx context.Context, sl *slot, snap *Snapshot) (any, error) {
		return s.execVertexCounts(ctx, sl, snap, side, top)
	})
}

func (s *Server) handleEdgeSupports(w http.ResponseWriter, r *http.Request) {
	var req serveapi.EdgeSupportsRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	top := req.Top
	if top == 0 {
		top = 100
	}
	s.serveQuery(w, r, req.TimeoutMillis, fmt.Sprintf("%s|top=%d", keyEdges, top), func(ctx context.Context, sl *slot, snap *Snapshot) (any, error) {
		return s.execEdgeSupports(ctx, sl, snap, top)
	})
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req serveapi.EstimateRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	s.serveQuery(w, r, req.TimeoutMillis, keyEstimate(&req), func(ctx context.Context, sl *slot, snap *Snapshot) (any, error) {
		return s.execEstimate(ctx, sl, snap, &req)
	})
}

func (s *Server) handlePeel(w http.ResponseWriter, r *http.Request) {
	var req serveapi.PeelRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	side, err := parseSide(req.Side)
	if err != nil {
		writeErr(w, err)
		return
	}
	if req.Mode != "tip" && req.Mode != "wing" {
		writeErr(w, badReqf("unknown mode %q (want tip|wing)", req.Mode))
		return
	}
	if req.K < 0 {
		writeErr(w, badReqf("k must be ≥ 0, got %d", req.K))
		return
	}
	engine, err := parsePeelEngine(req.Engine)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.serveQuery(w, r, req.TimeoutMillis, keyPeel(req.Mode, req.K, side, engine), func(ctx context.Context, sl *slot, snap *Snapshot) (any, error) {
		return s.execPeel(ctx, sl, snap, &req)
	})
}
