package serve

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"butterfly"
	"butterfly/internal/obsv"
	"butterfly/serveapi"
)

// badRequestError marks validation failures that should answer 400.
type badRequestError struct{ msg string }

func (e badRequestError) Error() string { return e.msg }

func badReqf(format string, args ...any) error {
	return badRequestError{fmt.Sprintf(format, args...)}
}

func parseSide(s string) (butterfly.Side, error) {
	switch s {
	case "", "v1":
		return butterfly.V1, nil
	case "v2":
		return butterfly.V2, nil
	default:
		return 0, badReqf("unknown side %q (want v1|v2)", s)
	}
}

// countOptions validates a CountRequest into CountOptions.
func countOptions(req *serveapi.CountRequest) (butterfly.CountOptions, error) {
	var opts butterfly.CountOptions
	switch req.Algorithm {
	case "", "family":
		opts.Algorithm = butterfly.AlgorithmFamily
	case "wedge-hash":
		opts.Algorithm = butterfly.AlgorithmWedgeHash
	case "vertex-priority":
		opts.Algorithm = butterfly.AlgorithmVertexPriority
	case "sort-aggregate":
		opts.Algorithm = butterfly.AlgorithmSortAggregate
	case "spgemm":
		opts.Algorithm = butterfly.AlgorithmSpGEMM
	default:
		return opts, badReqf("unknown algorithm %q", req.Algorithm)
	}
	opts.Invariant = butterfly.Invariant(req.Invariant)
	if !opts.Invariant.Valid() {
		return opts, badReqf("invariant must be 0-8, got %d", req.Invariant)
	}
	if opts.Algorithm != butterfly.AlgorithmFamily && opts.Invariant != butterfly.InvariantAuto {
		return opts, badReqf("invariant is only meaningful with the family algorithm")
	}
	switch req.Hub {
	case "", "auto":
		opts.Hub = butterfly.HubAuto
	case "never":
		opts.Hub = butterfly.HubNever
	case "always":
		opts.Hub = butterfly.HubAlways
	default:
		return opts, badReqf("unknown hub policy %q (want auto|never|always)", req.Hub)
	}
	if req.Agg != "" {
		agg, err := butterfly.ParseAggPolicy(req.Agg)
		if err != nil {
			return opts, badReqf("unknown aggregation mode %q (want auto|sort|hash|hist|batch)", req.Agg)
		}
		if agg != butterfly.AggAuto && opts.Algorithm != butterfly.AlgorithmFamily {
			return opts, badReqf("agg is only meaningful with the family algorithm")
		}
		opts.Agg = agg
	}
	switch req.Order {
	case "", "natural":
		opts.Order = butterfly.OrderNatural
	case "degree-asc":
		opts.Order = butterfly.OrderDegreeAsc
	case "degree-desc":
		opts.Order = butterfly.OrderDegreeDesc
	default:
		return opts, badReqf("unknown order %q", req.Order)
	}
	if req.BlockSize < 0 {
		return opts, badReqf("block must be ≥ 0, got %d", req.BlockSize)
	}
	opts.BlockSize = req.BlockSize
	opts.Threads = req.Threads
	return opts, nil
}

// Cache keys. A key captures everything that can change the response
// body and nothing else. The exact count is invariant across all
// algorithms, invariants, hub policies, orders and thread counts —
// that equivalence is the paper's core result and is what makes the
// shared count key sound: a count served from cache is identical to a
// count computed by any family member. Performance knobs therefore
// never fragment the cache — with one exception: the response reports
// the wedge-aggregation mode that ran (CountResponse.Agg), so requests
// naming different modes produce different bodies and must key
// separately (keyCountFor). The default "auto" spelling shares one
// entry; which concrete mode auto resolves to is deterministic per
// graph, so that entry is stable too.
const (
	keyCount = "count|agg=auto"
	keyEdges = "edge-supports"
)

// keyCountFor returns the count-result cache key for a request:
// keyCount for a family count with the default aggregation, a
// mode-suffixed variant for explicit modes, and a shared baseline key
// for the non-family algorithms (whose responses carry no agg field,
// so they cannot share a body with family counts — but do share one
// with each other).
func keyCountFor(req *serveapi.CountRequest) string {
	switch req.Algorithm {
	case "", "family":
	default:
		return "count|baseline"
	}
	if req.Agg == "" || req.Agg == "auto" {
		return keyCount
	}
	return "count|agg=" + req.Agg
}

func keyVertex(side butterfly.Side, top int) string {
	return fmt.Sprintf("vertex|%v|top=%d", side, top)
}

func keyEstimate(req *serveapi.EstimateRequest) string {
	return fmt.Sprintf("estimate|%s|samples=%d|p=%g|seed=%d|tre=%g|max=%d",
		req.Strategy, req.Samples, req.P, req.Seed, req.TargetRelErr, req.MaxSamples)
}

// keyPeel includes the engine: the subgraph summary is identical
// across engines (confluence), but the response also reports the
// engine and its round count, which legitimately differ.
func keyPeel(mode string, k int64, side butterfly.Side, engine butterfly.PeelEngine) string {
	if mode == "wing" {
		return fmt.Sprintf("peel|wing|k=%d|%v", k, engine)
	}
	return fmt.Sprintf("peel|tip|k=%d|%v|%v", k, side, engine)
}

// parsePeelEngine maps the wire spelling to a PeelEngine.
func parsePeelEngine(s string) (butterfly.PeelEngine, error) {
	switch s {
	case "", "delta":
		return butterfly.PeelDelta, nil
	case "recount":
		return butterfly.PeelRecount, nil
	default:
		return 0, badReqf("unknown engine %q (want delta|recount)", s)
	}
}

// execCount runs an exact count on the snapshot with true cooperative
// cancellation (the ctx is threaded into the core counting loops).
// The kernel span, when present, receives the counting core's named
// sub-stages ("core.order", "core.count", …) as children.
func (s *Server) execCount(ctx context.Context, snap *Snapshot, req *serveapi.CountRequest, ksp *obsv.Span) (*serveapi.CountResponse, error) {
	opts, err := countOptions(req)
	if err != nil {
		return nil, err
	}
	opts.Arena = s.arena
	opts.Stage = ksp.Hook()
	c, err := snap.Graph.CountWithContext(ctx, opts)
	if err != nil {
		return nil, err
	}
	resp := &serveapi.CountResponse{
		ResultMeta:  serveapi.ResultMeta{Graph: snap.Name, Version: snap.Version},
		Butterflies: c,
	}
	if opts.Algorithm == butterfly.AlgorithmFamily {
		resp.Agg = snap.Graph.ResolvedAgg(opts).String()
	}
	return resp, nil
}

// execVertexCounts computes per-vertex butterfly counts and keeps the
// top-K. Runs under runAbandon (no checkpoints inside the vector
// kernel yet).
func (s *Server) execVertexCounts(ctx context.Context, sl *slot, snap *Snapshot, side butterfly.Side, top int) (*serveapi.VertexCountsResponse, error) {
	counts, err := runAbandon(ctx, sl, func() ([]int64, error) {
		return snap.Graph.VertexButterflies(side)
	})
	if err != nil {
		return nil, err
	}
	var total int64
	idx := make([]int, len(counts))
	for i, c := range counts {
		total += c
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if counts[idx[a]] != counts[idx[b]] {
			return counts[idx[a]] > counts[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if top > 0 && top < len(idx) {
		idx = idx[:top]
	}
	vs := make([]serveapi.VertexCount, len(idx))
	for i, v := range idx {
		vs[i] = serveapi.VertexCount{Vertex: v, Count: counts[v]}
	}
	return &serveapi.VertexCountsResponse{
		ResultMeta: serveapi.ResultMeta{Graph: snap.Name, Version: snap.Version},
		Side:       strings.ToLower(side.String()), Total: total, Vertices: vs,
	}, nil
}

// execEdgeSupports computes per-edge butterfly supports, top-K by
// support.
func (s *Server) execEdgeSupports(ctx context.Context, sl *slot, snap *Snapshot, top int) (*serveapi.EdgeSupportsResponse, error) {
	supports, err := runAbandon(ctx, sl, func() ([]butterfly.EdgeCount, error) {
		return snap.Graph.EdgeSupports(), nil
	})
	if err != nil {
		return nil, err
	}
	var total int64
	for _, e := range supports {
		total += e.Count
	}
	sort.Slice(supports, func(a, b int) bool {
		if supports[a].Count != supports[b].Count {
			return supports[a].Count > supports[b].Count
		}
		if supports[a].U != supports[b].U {
			return supports[a].U < supports[b].U
		}
		return supports[a].V < supports[b].V
	})
	if top > 0 && top < len(supports) {
		supports = supports[:top]
	}
	es := make([]serveapi.EdgeSupport, len(supports))
	for i, e := range supports {
		es[i] = serveapi.EdgeSupport{U: e.U, V: e.V, Count: e.Count}
	}
	return &serveapi.EdgeSupportsResponse{
		ResultMeta: serveapi.ResultMeta{Graph: snap.Name, Version: snap.Version},
		Total:      total, Edges: es,
	}, nil
}

// execEstimate runs a sampling estimator (deterministic given the
// seed, hence cacheable). Samples == 0 with a sampling strategy means
// adaptive sizing: draws accumulate until the 95% CI half-width is
// below the target relative error or MaxSamples is hit.
func (s *Server) execEstimate(ctx context.Context, sl *slot, snap *Snapshot, req *serveapi.EstimateRequest) (*serveapi.EstimateResponse, error) {
	opts := butterfly.EstimateOptions{
		Samples:      req.Samples,
		P:            req.P,
		Seed:         req.Seed,
		TargetRelErr: req.TargetRelErr,
		MaxSamples:   req.MaxSamples,
	}
	strategy := req.Strategy
	if strategy == "" || strategy == "auto" {
		// Edge sampling is usually the lowest-variance choice on skewed
		// graphs, and every sample is O(deg) — a safe default.
		strategy = "edges"
	}
	switch strategy {
	case "vertices":
		opts.Strategy = butterfly.SampleVertices
	case "edges":
		opts.Strategy = butterfly.SampleEdges
	case "sparsify":
		opts.Strategy = butterfly.SampleSparsify
	default:
		return nil, badReqf("unknown strategy %q (want auto|vertices|edges|sparsify)", req.Strategy)
	}
	if req.Samples < 0 {
		return nil, badReqf("samples must be ≥ 0, got %d", req.Samples)
	}
	if req.TargetRelErr < 0 {
		return nil, badReqf("target_rel_err must be ≥ 0, got %g", req.TargetRelErr)
	}
	if req.MaxSamples < 0 {
		return nil, badReqf("max_samples must be ≥ 0, got %d", req.MaxSamples)
	}
	res, err := runAbandon(ctx, sl, func() (butterfly.EstimateResult, error) {
		res, err := snap.Graph.EstimateWithCI(opts)
		if err != nil {
			return res, badRequestError{err.Error()}
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	s.obs.estimates.With("sample").Inc()
	return &serveapi.EstimateResponse{
		ResultMeta: serveapi.ResultMeta{Graph: snap.Name, Version: snap.Version},
		Strategy:   strategy,
		Estimate:   res.Estimate,
		StdErr:     res.StdErr,
		CI95:       res.CI95,
		Samples:    res.Samples,
	}, nil
}

// degradedEstimate is the admission limiter's degrade-to-estimate
// fallback (?degrade=estimate on /count): a small fixed-budget edge
// sample, deliberately bounded so it stays cheap enough to run outside
// an execution slot. The seed is fixed — under sustained overload
// repeated degrades return a stable answer instead of jittering.
func (s *Server) degradedEstimate(snap *Snapshot) (any, error) {
	start := time.Now()
	res, err := snap.Graph.EstimateWithCI(butterfly.EstimateOptions{
		Strategy: butterfly.SampleEdges,
		Samples:  degradeSamples,
		Seed:     1,
	})
	if err != nil {
		return nil, err
	}
	return &serveapi.EstimateResponse{
		ResultMeta: serveapi.ResultMeta{
			Graph: snap.Name, Version: snap.Version,
			Cache: "bypass", Degraded: true,
		},
		Strategy:  "edges",
		Estimate:  res.Estimate,
		StdErr:    res.StdErr,
		CI95:      res.CI95,
		Samples:   res.Samples,
		ElapsedMS: time.Since(start).Milliseconds(),
	}, nil
}

// degradeSamples is the fixed edge-sample budget of the degrade path.
const degradeSamples = 256

// execPeel runs a k-tip or k-wing peel and summarizes the surviving
// subgraph. The kernel span, when present, receives the peeling
// engine's sub-stages ("peel.seed", "peel.round[i]") as children.
func (s *Server) execPeel(ctx context.Context, sl *slot, snap *Snapshot, req *serveapi.PeelRequest, ksp *obsv.Span) (*serveapi.PeelResponse, error) {
	if req.K < 0 {
		return nil, badReqf("k must be ≥ 0, got %d", req.K)
	}
	side, err := parseSide(req.Side)
	if err != nil {
		return nil, err
	}
	var mode string
	switch req.Mode {
	case "tip":
		mode = "tip"
	case "wing":
		mode = "wing"
	default:
		return nil, badReqf("unknown mode %q (want tip|wing)", req.Mode)
	}
	engine, err := parsePeelEngine(req.Engine)
	if err != nil {
		return nil, err
	}
	opts := butterfly.PeelOptions{Engine: engine, Threads: req.Threads, Stage: ksp.Hook()}
	type peeled struct {
		sub   *butterfly.Graph
		stats butterfly.PeelStats
	}
	r, err := runAbandon(ctx, sl, func() (peeled, error) {
		if mode == "wing" {
			sub, st, err := snap.Graph.KWingWith(req.K, opts)
			return peeled{sub, st}, err
		}
		sub, st, err := snap.Graph.KTipWith(req.K, side, opts)
		return peeled{sub, st}, err
	})
	if err != nil {
		return nil, err
	}
	return &serveapi.PeelResponse{
		ResultMeta: serveapi.ResultMeta{Graph: snap.Name, Version: snap.Version},
		Mode:       mode, K: req.K,
		Engine: engine.String(), Rounds: r.stats.Rounds,
		EdgesRemaining: r.sub.NumEdges(), Butterflies: r.sub.Count(),
	}, nil
}

// slot is a claimed execution slot of the admission limiter whose
// release can be handed over to a background goroutine when a
// computation is abandoned on deadline. States: held (by the request
// goroutine) → transferred (to the abandoned computation) → released.
// Exactly one transition releases the limiter.
type slot struct {
	lim   *limiter
	state atomic.Int32
}

const (
	slotHeld int32 = iota
	slotTransferred
	slotReleased
)

// release frees the slot if the request goroutine still owns it; the
// handler defers it so every early-exit path is covered.
func (sl *slot) release() {
	if sl != nil && sl.state.CompareAndSwap(slotHeld, slotReleased) {
		sl.lim.release()
	}
}

// transfer hands ownership to a background goroutine: the handler's
// deferred release becomes a no-op and releaseOwned frees the slot
// when the computation actually finishes. This keeps the limiter's
// accounting honest — an abandoned count still occupies CPU, so it
// must keep occupying an execution slot until it is done.
func (sl *slot) transfer() { sl.state.CompareAndSwap(slotHeld, slotTransferred) }

// releaseOwned frees the slot from the computation goroutine,
// whichever side currently owns it.
func (sl *slot) releaseOwned() {
	if sl.state.CompareAndSwap(slotTransferred, slotReleased) ||
		sl.state.CompareAndSwap(slotHeld, slotReleased) {
		sl.lim.release()
	}
}

// runAbandon runs f in a helper goroutine and returns its result, or
// returns promptly with ctx.Err() on cancellation. On cancellation
// the goroutine finishes in the background, discards its result, and
// releases the execution slot only when it is truly done — used for
// the query kernels that do not yet have cancellation checkpoints of
// their own. With a non-cancellable ctx, f runs inline and slot
// handling is left entirely to the caller's defer.
func runAbandon[T any](ctx context.Context, sl *slot, f func() (T, error)) (T, error) {
	if ctx.Done() == nil {
		return f()
	}
	var zero T
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	type result struct {
		v   T
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := f()
		sl.releaseOwned()
		ch <- result{v, err}
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-ctx.Done():
		sl.transfer()
		return zero, ctx.Err()
	}
}
