package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"butterfly"
	"butterfly/client"
	"butterfly/internal/store"
	"butterfly/serveapi"
)

// openStore opens a durable store over dir and registers cleanup.
func openStore(t *testing.T, dir string) (*store.Store, []store.Recovered) {
	t.Helper()
	st, rec, err := store.Open(dir, store.Options{Fsync: store.FsyncNever, Logf: t.Logf})
	if err != nil {
		t.Fatalf("store open: %v", err)
	}
	return st, rec
}

// newDurableServer builds a Server backed by a store over dir.
func newDurableServer(t *testing.T, dir string) (*Server, *client.Client, *store.Store) {
	t.Helper()
	st, _ := openStore(t, dir)
	s, c := newTestServer(t, Config{Store: st})
	t.Cleanup(func() { s.Close(); st.Close() })
	return s, c, st
}

// adoptAll reopens dir and adopts every recovered graph into a fresh
// server — the daemon's restart path, in-process.
func adoptAll(t *testing.T, dir string) (*Server, *client.Client, *store.Store) {
	t.Helper()
	st, rec := openStore(t, dir)
	s, c := newTestServer(t, Config{Store: st})
	t.Cleanup(func() { s.Close(); st.Close() })
	for _, r := range rec {
		if _, err := s.Registry().Adopt(r.Name, r.Counter, r.Version); err != nil {
			t.Fatalf("adopt %q: %v", r.Name, err)
		}
	}
	return s, c, st
}

// TestDurableRestartServesIdenticalState is the end-to-end durability
// contract: register + mutate through HTTP, "crash" (drop the server
// without checkpointing), restart over the same dir, and the new
// process must serve identical counts at the same (graph, version).
func TestDurableRestartServesIdenticalState(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1, c1, st1 := newDurableServer(t, dir)
	if _, err := c1.Register(ctx, serveapi.RegisterRequest{
		Name: "k44", M: 4, N: 4, Edges: completeEdges(4, 4),
	}); err != nil {
		t.Fatalf("register: %v", err)
	}
	mut, err := c1.Mutate(ctx, "k44", serveapi.MutateRequest{
		Inserts: [][2]int{{0, 0}}, // duplicate: no-op but still a version
		Deletes: [][2]int{{3, 3}, {3, 2}},
	})
	if err != nil {
		t.Fatalf("mutate: %v", err)
	}
	mut2, err := c1.Mutate(ctx, "k44", serveapi.MutateRequest{Inserts: [][2]int{{3, 3}}})
	if err != nil {
		t.Fatalf("mutate 2: %v", err)
	}
	if mut2.Version != mut.Version+1 {
		t.Fatalf("versions not consecutive: %d then %d", mut.Version, mut2.Version)
	}
	want, err := c1.GraphInfo(ctx, "k44")
	if err != nil {
		t.Fatal(err)
	}
	// Crash: no drain, no checkpoint — just stop and reopen the dir.
	s1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	_, c2, _ := adoptAll(t, dir)
	got, err := c2.GraphInfo(ctx, "k44")
	if err != nil {
		t.Fatalf("graph lost across restart: %v", err)
	}
	if got != want {
		t.Fatalf("state differs across restart:\n got %+v\nwant %+v", got, want)
	}
	cnt, err := c2.Count(ctx, "k44", serveapi.CountRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Butterflies != want.Butterflies || cnt.Version != want.Version {
		t.Fatalf("recovered count %d @ v%d, want %d @ v%d",
			cnt.Butterflies, cnt.Version, want.Butterflies, want.Version)
	}
}

// TestDurableDropSurvivesRestart checks a drop is as durable as a
// register.
func TestDurableDropSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s1, c1, st1 := newDurableServer(t, dir)
	if _, err := c1.Register(ctx, serveapi.RegisterRequest{
		Name: "gone", M: 2, N: 2, Edges: completeEdges(2, 2),
	}); err != nil {
		t.Fatal(err)
	}
	if err := c1.Drop(ctx, "gone"); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	st1.Close()

	_, c2, _ := adoptAll(t, dir)
	if _, err := c2.GraphInfo(ctx, "gone"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("dropped graph resurrected: %v", err)
	}
}

// TestAdminCheckpoint exercises POST /admin/checkpoint: it must
// compact the WAL, and recovery afterwards must come from snapshots.
func TestAdminCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s1, c1, st1 := newDurableServer(t, dir)
	if _, err := c1.Register(ctx, serveapi.RegisterRequest{
		Name: "k33", M: 3, N: 3, Edges: completeEdges(3, 3),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Mutate(ctx, "k33", serveapi.MutateRequest{Deletes: [][2]int{{2, 2}}}); err != nil {
		t.Fatal(err)
	}
	resp, err := c1.Checkpoint(ctx)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if resp.Graphs != 1 || resp.WALBytesBefore == 0 || resp.WALBytesAfter != 0 {
		t.Fatalf("checkpoint response %+v", resp)
	}
	want, err := c1.GraphInfo(ctx, "k33")
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()
	st1.Close()

	st2, rec := openStore(t, dir)
	defer st2.Close()
	if len(rec) != 1 || rec[0].Source != "snapshot" {
		t.Fatalf("recovered %+v, want 1 graph from snapshot", rec)
	}
	if rec[0].Version != want.Version || rec[0].Count != want.Butterflies {
		t.Fatalf("snapshot recovery v%d count %d, want v%d count %d",
			rec[0].Version, rec[0].Count, want.Version, want.Butterflies)
	}
}

// TestAdminCheckpointWithoutStore: an in-memory daemon must answer 400,
// not pretend to be durable.
func TestAdminCheckpointWithoutStore(t *testing.T) {
	_, c := newTestServer(t, Config{})
	_, err := c.Checkpoint(context.Background())
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("checkpoint without -data-dir: %v, want 400", err)
	}
	if !strings.Contains(apiErr.Message, "durability") {
		t.Fatalf("unhelpful 400 message: %q", apiErr.Message)
	}
}

// TestDurabilityFailureIs500AndRollsBack: when the WAL cannot accept
// an append (simulated by closing the store under the live server),
// writes must fail with 500 — never 4xx, never a silent in-memory-only
// apply — and the published graph must be unchanged.
func TestDurabilityFailureIs500AndRollsBack(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	_, c, st := newDurableServer(t, dir)
	if _, err := c.Register(ctx, serveapi.RegisterRequest{
		Name: "k44", M: 4, N: 4, Edges: completeEdges(4, 4),
	}); err != nil {
		t.Fatal(err)
	}
	before, err := c.GraphInfo(ctx, "k44")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil { // the "disk" goes away
		t.Fatal(err)
	}

	_, err = c.Mutate(ctx, "k44", serveapi.MutateRequest{Deletes: [][2]int{{0, 0}}})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 500 {
		t.Fatalf("mutate with dead WAL: %v, want 500", err)
	}
	after, err := c.GraphInfo(ctx, "k44")
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("failed mutate leaked state:\n before %+v\n after %+v", before, after)
	}
	if _, err := c.Register(ctx, serveapi.RegisterRequest{
		Name: "late", M: 2, N: 2, Edges: completeEdges(2, 2),
	}); err == nil {
		t.Fatal("register with dead WAL succeeded")
	}
	if _, err := c.GraphInfo(ctx, "late"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("failed register published anyway: %v", err)
	}
}

// TestMutateCheckpointHammer races mutation batches against admin
// checkpoints (race detector coverage for the registry/store lock
// choreography), then proves a restart lands on the exact final state.
func TestMutateCheckpointHammer(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s1, c1, st1 := newDurableServer(t, dir)
	const graphs = 3
	for i := 0; i < graphs; i++ {
		if _, err := c1.Register(ctx, serveapi.RegisterRequest{
			Name: fmt.Sprintf("g%d", i), M: 6, N: 6, Edges: completeEdges(6, 6),
		}); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 20
	var wg sync.WaitGroup
	for i := 0; i < graphs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("g%d", i)
			for r := 0; r < rounds; r++ {
				var req serveapi.MutateRequest
				if r%2 == 0 {
					req.Deletes = [][2]int{{r % 6, (r + i) % 6}}
				} else {
					req.Inserts = [][2]int{{(r - 1) % 6, (r - 1 + i) % 6}}
				}
				if _, err := c1.Mutate(ctx, name, req); err != nil {
					t.Errorf("mutate %s round %d: %v", name, r, err)
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 5; r++ {
			if _, err := c1.Checkpoint(ctx); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	want := make(map[string]serveapi.GraphInfo)
	for i := 0; i < graphs; i++ {
		name := fmt.Sprintf("g%d", i)
		info, err := c1.GraphInfo(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = info
	}
	s1.Close()
	st1.Close()

	_, c2, _ := adoptAll(t, dir)
	for name, w := range want {
		got, err := c2.GraphInfo(ctx, name)
		if err != nil {
			t.Fatalf("%s lost: %v", name, err)
		}
		if got != w {
			t.Fatalf("%s differs after restart:\n got %+v\nwant %+v", name, got, w)
		}
	}
}

// TestMetricsExposeStoreGauges checks the durable-mode metrics appear
// in /metrics (and only in durable mode).
func TestMetricsExposeStoreGauges(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	_, c, _ := newDurableServer(t, dir)
	if _, err := c.Register(ctx, serveapi.RegisterRequest{
		Name: "m", M: 2, N: 2, Edges: completeEdges(2, 2),
	}); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{
		"bfserved_wal_bytes",
		"bfserved_wal_fsyncs_total",
		"bfserved_checkpoints_total",
		"bfserved_checkpoint_errors_total",
	} {
		if !strings.Contains(text, metric) {
			t.Fatalf("metrics missing %s:\n%s", metric, text)
		}
	}

	_, plain := newTestServer(t, Config{})
	text, err = plain.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text, "bfserved_wal_bytes") {
		t.Fatal("in-memory server exports WAL metrics")
	}
}

// TestAdoptRejectsLiveName: recovery adoption must never clobber a
// graph that is already registered.
func TestAdoptRejectsLiveName(t *testing.T) {
	s, c := newTestServer(t, Config{})
	if _, err := c.Register(context.Background(), serveapi.RegisterRequest{
		Name: "g", M: 2, N: 2, Edges: completeEdges(2, 2),
	}); err != nil {
		t.Fatal(err)
	}
	g, err := butterfly.FromEdges(2, 2, completeEdges(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry().Adopt("g", butterfly.NewDynamicCounterFromGraph(g), 5); err == nil {
		t.Fatal("adopt over a live graph succeeded")
	}
}
