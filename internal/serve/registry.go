// Package serve implements bfserved: a concurrent butterfly query
// service over a registry of named bipartite graphs.
//
// The design splits each graph into a mutable authority and immutable
// views. The authority is a DynamicCounter guarded by a per-graph
// mutex; mutation batches stream through it edge by edge (each a local
// wedge sweep, never a recount) and finish by materializing a fresh
// immutable Graph that is atomically published together with a bumped
// version number. Readers never lock: they grab the current Snapshot
// pointer and keep counting on it even while later batches publish new
// versions — copy-on-write snapshot isolation. The (graph, version)
// pair also keys the result cache, so cached results can never serve a
// stale edge set.
//
// Around the registry sit the production pieces: a concurrency
// limiter with a bounded admission queue (429 load-shedding), per-
// request deadlines threaded into the counting loops via
// CountWithContext, an LRU result cache, Prometheus-format metrics,
// and draining shutdown. See docs/SERVING.md.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"butterfly"
)

// Snapshot is one immutable published version of a registered graph.
// Everything reachable from it is read-only, so any number of queries
// may use it concurrently, indefinitely, regardless of later
// mutations.
type Snapshot struct {
	// Name of the registered graph.
	Name string
	// Version starts at 1 when the graph is registered and increments
	// once per mutation batch.
	Version uint64
	// Graph is the immutable edge set of this version.
	Graph *butterfly.Graph
	// Count is the exact butterfly count at this version, maintained
	// incrementally by the dynamic counter (O(1) to read here).
	Count int64
}

// MutateResult reports the effect of one mutation batch.
type MutateResult struct {
	Version   uint64 // version of the snapshot the batch produced
	Inserted  int    // edges actually added (duplicates excluded)
	Deleted   int    // edges actually removed (misses excluded)
	Created   int64  // butterflies created by the inserts
	Destroyed int64  // butterflies destroyed by the deletes
	Count     int64  // butterfly count of the new version
	Edges     int64  // edge count of the new version
}

// entry pairs a graph's mutable authority with its published snapshot.
type entry struct {
	name string
	m, n int // immutable dimensions; validate mutations without locking

	// mu serializes mutation batches (DynamicCounter is not safe for
	// concurrent mutation). Readers never take it.
	mu  sync.Mutex
	dyn *butterfly.DynamicCounter

	// snap is the atomically published current version.
	snap atomic.Pointer[Snapshot]
}

// Registry is a concurrency-safe collection of named versioned graphs.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// ErrNotFound reports a query against an unregistered graph name.
type ErrNotFound struct{ Name string }

func (e ErrNotFound) Error() string { return fmt.Sprintf("graph %q not registered", e.Name) }

// ErrExists reports a Register without Replace over an existing name.
type ErrExists struct{ Name string }

func (e ErrExists) Error() string { return fmt.Sprintf("graph %q already registered", e.Name) }

// Register publishes g under name at version 1. Registration computes
// the initial exact count once (seeding the dynamic counter); replace
// permits overwriting an existing name.
func (r *Registry) Register(name string, g *butterfly.Graph, replace bool) (*Snapshot, error) {
	if name == "" {
		return nil, fmt.Errorf("empty graph name")
	}
	// Seed the authority outside the registry lock — the initial count
	// is the expensive part and must not block unrelated lookups.
	dyn := butterfly.NewDynamicCounterFromGraph(g)
	e := &entry{name: name, m: g.NumV1(), n: g.NumV2(), dyn: dyn}
	snap := &Snapshot{Name: name, Version: 1, Graph: g, Count: dyn.Count()}
	e.snap.Store(snap)

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok && !replace {
		return nil, ErrExists{name}
	}
	r.entries[name] = e
	return snap, nil
}

// Get returns the current snapshot of name.
func (r *Registry) Get(name string) (*Snapshot, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound{name}
	}
	return e.snap.Load(), nil
}

// Drop removes name from the registry. In-flight queries holding a
// snapshot finish unaffected.
func (r *Registry) Drop(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		return ErrNotFound{name}
	}
	delete(r.entries, name)
	return nil
}

// Names returns the registered names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Len returns the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Snapshots returns the current snapshot of every registered graph,
// sorted by name (the metrics exporter's view).
func (r *Registry) Snapshots() []*Snapshot {
	names := r.Names()
	out := make([]*Snapshot, 0, len(names))
	for _, n := range names {
		if s, err := r.Get(n); err == nil {
			out = append(out, s)
		}
	}
	return out
}

// Mutate applies one batch — inserts first, then deletes — to name and
// publishes the resulting version. The batch is atomic with respect to
// readers: no query ever observes a half-applied batch, because
// queries only see published snapshots and the new snapshot is
// materialized after the whole batch has been applied. Endpoints
// outside the graph's original dimensions fail the batch up front,
// before any mutation is applied. Duplicate inserts and deletes of
// absent edges are tolerated (counted in neither Inserted nor
// Deleted).
func (r *Registry) Mutate(name string, inserts, deletes [][2]int) (MutateResult, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return MutateResult{}, ErrNotFound{name}
	}

	// Validate the whole batch against the (immutable) dimensions
	// first so the application loop below cannot fail half-way.
	for _, op := range inserts {
		if op[0] < 0 || op[0] >= e.m || op[1] < 0 || op[1] >= e.n {
			return MutateResult{}, fmt.Errorf("insert (%d,%d) out of range %dx%d", op[0], op[1], e.m, e.n)
		}
	}
	for _, op := range deletes {
		if op[0] < 0 || op[0] >= e.m || op[1] < 0 || op[1] >= e.n {
			return MutateResult{}, fmt.Errorf("delete (%d,%d) out of range %dx%d", op[0], op[1], e.m, e.n)
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	var res MutateResult
	for _, op := range inserts {
		added, created, err := e.dyn.InsertEdge(op[0], op[1])
		if err != nil {
			return MutateResult{}, err // unreachable: validated above
		}
		if added {
			res.Inserted++
			res.Created += created
		}
	}
	for _, op := range deletes {
		removed, destroyed, err := e.dyn.DeleteEdge(op[0], op[1])
		if err != nil {
			return MutateResult{}, err // unreachable: validated above
		}
		if removed {
			res.Deleted++
			res.Destroyed += destroyed
		}
	}

	// Copy-on-write publish: materialize the new immutable graph and
	// swap the snapshot pointer. Readers on the old pointer are
	// untouched; new queries (and new cache keys) see the new version.
	prev := e.snap.Load()
	next := &Snapshot{
		Name:    name,
		Version: prev.Version + 1,
		Graph:   e.dyn.Snapshot(),
		Count:   e.dyn.Count(),
	}
	e.snap.Store(next)

	res.Version = next.Version
	res.Count = next.Count
	res.Edges = next.Graph.NumEdges()
	return res, nil
}
