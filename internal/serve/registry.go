// Package serve implements bfserved: a concurrent butterfly query
// service over a registry of named bipartite graphs.
//
// The design splits each graph into a mutable authority and immutable
// views. The authority is a DynamicCounter guarded by a per-graph
// mutex; mutation batches stream through it edge by edge (each a local
// wedge sweep, never a recount) and finish by materializing a fresh
// immutable Graph that is atomically published together with a bumped
// version number. Readers never lock: they grab the current Snapshot
// pointer and keep counting on it even while later batches publish new
// versions — copy-on-write snapshot isolation. The (graph, version)
// pair also keys the result cache, so cached results can never serve a
// stale edge set.
//
// Around the registry sit the production pieces: a concurrency
// limiter with a bounded admission queue (429 load-shedding), per-
// request deadlines threaded into the counting loops via
// CountWithContext, an LRU result cache, Prometheus-format metrics,
// and draining shutdown. See docs/SERVING.md.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"butterfly"
)

// Snapshot is one immutable published version of a registered graph.
// Everything reachable from it is read-only, so any number of queries
// may use it concurrently, indefinitely, regardless of later
// mutations.
type Snapshot struct {
	// Name of the registered graph.
	Name string
	// Version starts at 1 when the graph is registered and increments
	// once per mutation batch.
	Version uint64
	// Graph is the immutable edge set of this version.
	Graph *butterfly.Graph
	// Count is the exact butterfly count at this version, maintained
	// incrementally by the dynamic counter (O(1) to read here).
	Count int64
}

// MutateResult reports the effect of one mutation batch.
type MutateResult struct {
	Version   uint64 // version of the snapshot the batch produced
	Inserted  int    // edges actually added (duplicates excluded)
	Deleted   int    // edges actually removed (misses excluded)
	Created   int64  // butterflies created by the inserts
	Destroyed int64  // butterflies destroyed by the deletes
	Count     int64  // butterfly count of the new version
	Edges     int64  // edge count of the new version
}

// entry pairs a graph's mutable authority with its published snapshot.
type entry struct {
	name string
	m, n int // immutable dimensions; validate mutations without locking

	// mu serializes mutation batches (DynamicCounter is not safe for
	// concurrent mutation). Readers never take it.
	mu  sync.Mutex
	dyn *butterfly.DynamicCounter

	// plog, when non-nil, is the wedge-partial delta history (see
	// partiallog.go). Guarded by mu; nil until the first partial
	// export activates it.
	plog *partialLog

	// snap is the atomically published current version.
	snap atomic.Pointer[Snapshot]
}

// Persister receives every registry state change before it is
// published to readers — the write-ahead hook that makes the registry
// durable. internal/store.Store implements it. Log calls happen while
// the registry holds the locks that order the change, so the log's
// record order always matches publication order; an error from a Log
// call aborts (and for mutations, rolls back) the change.
type Persister interface {
	// LogRegister records name (re)entering the registry with its full
	// edge set and initial exact count at version 1.
	LogRegister(name string, version uint64, g *butterfly.Graph, count int64) error
	// LogMutate records one applied batch with its post-state stamps.
	LogMutate(name string, version uint64, inserts, deletes [][2]int, count, edges int64) error
	// LogDrop records name leaving the registry.
	LogDrop(name string) error
}

// Registry is a concurrency-safe collection of named versioned graphs.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry

	// ingests are graphs still streaming in (see ingest.go): a name is
	// in entries (registered, exact-countable) or ingests (loading,
	// answerable only by the reservoir estimator), never both.
	ingests map[string]*ingestState

	// persist, when non-nil, is the durability hook: appended to
	// before any state change is published (append-before-publish).
	persist Persister
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry), ingests: make(map[string]*ingestState)}
}

// SetPersister installs the durability hook. Set it before the
// registry starts taking traffic; graphs adopted from recovery are
// not re-logged (their history is already in the store).
func (r *Registry) SetPersister(p Persister) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.persist = p
}

// ErrNotFound reports a query against an unregistered graph name.
type ErrNotFound struct{ Name string }

func (e ErrNotFound) Error() string { return fmt.Sprintf("graph %q not registered", e.Name) }

// ErrExists reports a Register without Replace over an existing name.
type ErrExists struct{ Name string }

func (e ErrExists) Error() string { return fmt.Sprintf("graph %q already registered", e.Name) }

// DurabilityError reports a state change the WAL refused to record.
// The change was not applied (mutations are rolled back); it answers
// 500, never 4xx — the request was fine, the disk was not.
type DurabilityError struct{ Err error }

func (e DurabilityError) Error() string { return fmt.Sprintf("not durable: %v", e.Err) }
func (e DurabilityError) Unwrap() error { return e.Err }

// Register publishes g under name at version 1. Registration computes
// the initial exact count once (seeding the dynamic counter); replace
// permits overwriting an existing name.
func (r *Registry) Register(name string, g *butterfly.Graph, replace bool) (*Snapshot, error) {
	return r.RegisterObserved(name, g, replace, nil)
}

// RegisterObserved is Register with an optional stage hook: when
// non-nil, stage receives "count.seed" (the initial exact count that
// seeds the dynamic counter) and, under a persister, "wal.append" (the
// durable register record). nil is exactly Register.
func (r *Registry) RegisterObserved(name string, g *butterfly.Graph, replace bool, stage func(name string, d time.Duration)) (*Snapshot, error) {
	if name == "" {
		return nil, fmt.Errorf("empty graph name")
	}
	// Seed the authority outside the registry lock — the initial count
	// is the expensive part and must not block unrelated lookups.
	t0 := time.Now()
	dyn := butterfly.NewDynamicCounterFromGraph(g)
	if stage != nil {
		stage("count.seed", time.Since(t0))
	}
	e := &entry{name: name, m: g.NumV1(), n: g.NumV2(), dyn: dyn}
	snap := &Snapshot{Name: name, Version: 1, Graph: g, Count: dyn.Count()}
	e.snap.Store(snap)

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok && !replace {
		return nil, ErrExists{name}
	}
	if _, ok := r.ingests[name]; ok && !replace {
		return nil, ErrExists{name}
	}
	// Append-before-publish: the register record (carrying the full
	// edge set) must be durable before any reader can observe the
	// graph. Holding r.mu across log+publish keeps the WAL's record
	// order identical to publication order.
	if r.persist != nil {
		w0 := time.Now()
		err := r.persist.LogRegister(name, 1, g, snap.Count)
		if stage != nil {
			stage("wal.append", time.Since(w0))
		}
		if err != nil {
			return nil, DurabilityError{err}
		}
	}
	// Registering (with replace) over an open ingest supersedes it —
	// this is also how sealing atomically swaps loading → registered.
	delete(r.ingests, name)
	r.entries[name] = e
	return snap, nil
}

// Adopt publishes a graph recovered from the durable store: dyn is
// the already-replayed authority and version is where its history
// left off. Nothing is recounted and nothing is logged — the store
// already holds this graph's past. Adopt refuses to overwrite a live
// name.
func (r *Registry) Adopt(name string, dyn *butterfly.DynamicCounter, version uint64) (*Snapshot, error) {
	if name == "" {
		return nil, fmt.Errorf("empty graph name")
	}
	if version == 0 {
		return nil, fmt.Errorf("adopt %q: version must be ≥ 1", name)
	}
	g := dyn.Snapshot()
	e := &entry{name: name, m: g.NumV1(), n: g.NumV2(), dyn: dyn}
	snap := &Snapshot{Name: name, Version: version, Graph: g, Count: dyn.Count()}
	e.snap.Store(snap)

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return nil, ErrExists{name}
	}
	r.entries[name] = e
	return snap, nil
}

// AdoptRemote installs a graph shipped from another shard (cluster
// rebalancing) at its carried version — unlike Adopt it is logged to
// the persister, because this shard's store has no history for the
// graph yet. The carried count is cross-checked against a recount of
// the edge set (the same logical-corruption gate store recovery
// applies to register records); a mismatch refuses the adoption.
// Replace permits overwriting an existing name, which is how a
// rebalance converges when a previous attempt half-finished.
func (r *Registry) AdoptRemote(name string, g *butterfly.Graph, version uint64, count int64, replace bool) (*Snapshot, error) {
	if name == "" {
		return nil, fmt.Errorf("empty graph name")
	}
	if version == 0 {
		return nil, fmt.Errorf("adopt %q: version must be ≥ 1", name)
	}
	dyn := butterfly.NewDynamicCounterFromGraph(g)
	if dyn.Count() != count {
		return nil, fmt.Errorf("adopt %q: carried count %d, recount computed %d", name, count, dyn.Count())
	}
	e := &entry{name: name, m: g.NumV1(), n: g.NumV2(), dyn: dyn}
	snap := &Snapshot{Name: name, Version: version, Graph: g, Count: count}
	e.snap.Store(snap)

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok && !replace {
		return nil, ErrExists{name}
	}
	if _, ok := r.ingests[name]; ok && !replace {
		return nil, ErrExists{name}
	}
	if r.persist != nil {
		if err := r.persist.LogRegister(name, version, g, count); err != nil {
			return nil, DurabilityError{err}
		}
	}
	delete(r.ingests, name)
	r.entries[name] = e
	return snap, nil
}

// Get returns the current snapshot of name. A name still streaming
// through an open ingest has no snapshot to query exactly and returns
// ErrLoading — callers wanting the approximate answer go through
// Ingest instead.
func (r *Registry) Get(name string) (*Snapshot, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	_, loading := r.ingests[name]
	r.mu.RUnlock()
	if ok {
		return e.snap.Load(), nil
	}
	if loading {
		return nil, ErrLoading{name}
	}
	return nil, ErrNotFound{name}
}

// Drop removes name from the registry. In-flight queries holding a
// snapshot finish unaffected. Dropping a name with an open ingest
// aborts the ingest (nothing durable to log — ingests are volatile
// until sealed).
func (r *Registry) Drop(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		if _, ok := r.ingests[name]; ok {
			delete(r.ingests, name)
			return nil
		}
		return ErrNotFound{name}
	}
	if r.persist != nil {
		if err := r.persist.LogDrop(name); err != nil {
			return DurabilityError{err}
		}
	}
	delete(r.entries, name)
	return nil
}

// Names returns the registered names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Len returns the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Snapshots returns the current snapshot of every registered graph,
// sorted by name (the metrics exporter's view).
func (r *Registry) Snapshots() []*Snapshot {
	names := r.Names()
	out := make([]*Snapshot, 0, len(names))
	for _, n := range names {
		if s, err := r.Get(n); err == nil {
			out = append(out, s)
		}
	}
	return out
}

// Mutate applies one batch — inserts first, then deletes — to name and
// publishes the resulting version. The batch is atomic with respect to
// readers: no query ever observes a half-applied batch, because
// queries only see published snapshots and the new snapshot is
// materialized after the whole batch has been applied. Endpoints
// outside the graph's original dimensions fail the batch up front,
// before any mutation is applied. Duplicate inserts and deletes of
// absent edges are tolerated (counted in neither Inserted nor
// Deleted).
func (r *Registry) Mutate(name string, inserts, deletes [][2]int) (MutateResult, error) {
	return r.MutateObserved(name, inserts, deletes, nil)
}

// MutateObserved is Mutate with an optional stage hook: when non-nil
// and the registry is durable, stage receives "wal.append" with the
// time spent in the write-ahead log. nil is exactly Mutate.
func (r *Registry) MutateObserved(name string, inserts, deletes [][2]int, stage func(name string, d time.Duration)) (MutateResult, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return MutateResult{}, ErrNotFound{name}
	}

	// Validate the whole batch against the (immutable) dimensions
	// first so the application loop below cannot fail half-way.
	for _, op := range inserts {
		if op[0] < 0 || op[0] >= e.m || op[1] < 0 || op[1] >= e.n {
			return MutateResult{}, fmt.Errorf("insert (%d,%d) out of range %dx%d", op[0], op[1], e.m, e.n)
		}
	}
	for _, op := range deletes {
		if op[0] < 0 || op[0] >= e.m || op[1] < 0 || op[1] >= e.n {
			return MutateResult{}, fmt.Errorf("delete (%d,%d) out of range %dx%d", op[0], op[1], e.m, e.n)
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	var res MutateResult
	// Ops that actually changed the edge set, kept for rollback if the
	// WAL append fails: memory must never run ahead of the log.
	var applied [][3]int // (u, v, 0=inserted 1=deleted)
	// V1 centers whose rows actually changed — the wedge-delta kernel's
	// input when the partial log is active.
	var touched []int
	for _, op := range inserts {
		added, created, err := e.dyn.InsertEdge(op[0], op[1])
		if err != nil {
			return MutateResult{}, err // unreachable: validated above
		}
		if added {
			res.Inserted++
			res.Created += created
			if r.persist != nil {
				applied = append(applied, [3]int{op[0], op[1], 0})
			}
			if e.plog != nil {
				touched = append(touched, op[0])
			}
		}
	}
	for _, op := range deletes {
		removed, destroyed, err := e.dyn.DeleteEdge(op[0], op[1])
		if err != nil {
			return MutateResult{}, err // unreachable: validated above
		}
		if removed {
			res.Deleted++
			res.Destroyed += destroyed
			if r.persist != nil {
				applied = append(applied, [3]int{op[0], op[1], 1})
			}
			if e.plog != nil {
				touched = append(touched, op[0])
			}
		}
	}

	prev := e.snap.Load()

	// Append-before-publish: the batch becomes durable (to the extent
	// the fsync policy promises) before any reader can observe it. If
	// the log refuses the record, undo the batch so memory and log
	// agree, and fail the request — an acked mutation is always in the
	// WAL, a nacked one is in neither.
	if r.persist != nil {
		w0 := time.Now()
		err := r.persist.LogMutate(name, prev.Version+1, inserts, deletes, e.dyn.Count(), e.dyn.NumEdges())
		if stage != nil {
			stage("wal.append", time.Since(w0))
		}
		if err != nil {
			for i := len(applied) - 1; i >= 0; i-- {
				op := applied[i]
				if op[2] == 0 {
					e.dyn.DeleteEdge(op[0], op[1]) //nolint:errcheck // in-range by construction
				} else {
					e.dyn.InsertEdge(op[0], op[1]) //nolint:errcheck // in-range by construction
				}
			}
			return MutateResult{}, DurabilityError{err}
		}
	}

	// Copy-on-write publish: materialize the new immutable graph and
	// swap the snapshot pointer. Readers on the old pointer are
	// untouched; new queries (and new cache keys) see the new version.
	next := &Snapshot{
		Name:    name,
		Version: prev.Version + 1,
		Graph:   e.dyn.Snapshot(),
		Count:   e.dyn.Count(),
	}
	e.snap.Store(next)

	// Record the batch's signed partial-map change, computed over just
	// the touched centers — O(affected wedges), not O(graph). Appending
	// after the publish keeps the log's versions aligned with what
	// readers can observe; the WAL-rollback path above never reaches
	// here, so the history never contains an unacked batch.
	if e.plog != nil {
		e.plog.append(next.Version, butterfly.WedgePartialDelta(prev.Graph, next.Graph, touched))
	}

	res.Version = next.Version
	res.Count = next.Count
	res.Edges = next.Graph.NumEdges()
	return res, nil
}

// CheckpointTo hands a consistent view of every graph's published
// state to fn — consistent meaning no mutation can be between its WAL
// append and its snapshot publish while fn runs, so a checkpoint
// built from the view plus a truncated WAL never loses an acked
// batch. It achieves this by holding the registry write lock and
// every per-graph mutation lock for fn's duration: registrations,
// drops and mutations stall; queries are untouched (they never lock —
// reads, cache hits and in-flight counts proceed on their pinned
// snapshots).
//
// Lock order is r.mu → e.mu → (store), consistent with Mutate's
// e.mu → (store); nothing takes e.mu before r.mu.
func (r *Registry) CheckpointTo(fn func(snaps []*Snapshot) error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	snaps := make([]*Snapshot, 0, len(names))
	for _, n := range names {
		e := r.entries[n]
		e.mu.Lock()
		defer e.mu.Unlock()
		snaps = append(snaps, e.snap.Load())
	}
	return fn(snaps)
}
