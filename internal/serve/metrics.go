package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the request-latency
// histogram — half-decade spacing from 1 ms to 10 s, which brackets
// everything from a cache hit to a full-size parallel count.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// metrics collects the server's counters. Everything is either atomic
// or guarded by mu; rendering takes a consistent-enough point-in-time
// view (Prometheus scrapes tolerate per-series skew).
type metrics struct {
	mu       sync.Mutex
	requests map[string]uint64 // "route\x00code" → count

	bucketCounts [numBuckets + 1]atomic.Uint64 // +Inf is the last slot
	latencySum   atomic.Uint64                 // microseconds, to stay integral
	latencyCount atomic.Uint64

	checkpointErrors atomic.Uint64
}

// noteCheckpointError counts a failed checkpoint (background or
// admin-triggered) so operators can alert on a store that stopped
// compacting.
func (m *metrics) noteCheckpointError() { m.checkpointErrors.Add(1) }

// numBuckets mirrors len(latencyBuckets); array sizes need a constant.
const numBuckets = 7

func init() {
	if len(latencyBuckets) != numBuckets {
		panic("serve: numBuckets out of sync with latencyBuckets")
	}
}

func newMetrics() *metrics {
	return &metrics{requests: make(map[string]uint64)}
}

// observe records one finished request: its route, HTTP status code
// and latency.
func (m *metrics) observe(route string, code int, elapsed time.Duration) {
	m.mu.Lock()
	m.requests[fmt.Sprintf("%s\x00%d", route, code)]++
	m.mu.Unlock()

	s := elapsed.Seconds()
	i := 0
	for ; i < len(latencyBuckets); i++ {
		if s <= latencyBuckets[i] {
			break
		}
	}
	m.bucketCounts[i].Add(1)
	m.latencySum.Add(uint64(elapsed.Microseconds()))
	m.latencyCount.Add(1)
}

// write renders the Prometheus text exposition format. The server
// passes itself in so gauges (queue depth, in-flight, cache size,
// per-graph version/edges) reflect scrape-time state.
func (m *metrics) write(w io.Writer, s *Server) {
	// Request counters.
	m.mu.Lock()
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintln(w, "# HELP bfserved_requests_total Finished HTTP requests by route and status code.")
	fmt.Fprintln(w, "# TYPE bfserved_requests_total counter")
	for _, k := range keys {
		route, code := k, ""
		for i := 0; i < len(k); i++ {
			if k[i] == 0 {
				route, code = k[:i], k[i+1:]
				break
			}
		}
		fmt.Fprintf(w, "bfserved_requests_total{route=%q,code=%q} %d\n", route, code, m.requests[k])
	}
	m.mu.Unlock()

	// Latency histogram.
	fmt.Fprintln(w, "# HELP bfserved_request_seconds Latency of finished HTTP requests.")
	fmt.Fprintln(w, "# TYPE bfserved_request_seconds histogram")
	var cum uint64
	for i, ub := range latencyBuckets {
		cum += m.bucketCounts[i].Load()
		fmt.Fprintf(w, "bfserved_request_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.bucketCounts[numBuckets].Load()
	fmt.Fprintf(w, "bfserved_request_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "bfserved_request_seconds_sum %g\n", float64(m.latencySum.Load())/1e6)
	fmt.Fprintf(w, "bfserved_request_seconds_count %d\n", m.latencyCount.Load())

	// Cache.
	hits, misses, size := s.cache.stats()
	fmt.Fprintln(w, "# HELP bfserved_cache_hits_total Result-cache hits.")
	fmt.Fprintln(w, "# TYPE bfserved_cache_hits_total counter")
	fmt.Fprintf(w, "bfserved_cache_hits_total %d\n", hits)
	fmt.Fprintln(w, "# HELP bfserved_cache_misses_total Result-cache misses.")
	fmt.Fprintln(w, "# TYPE bfserved_cache_misses_total counter")
	fmt.Fprintf(w, "bfserved_cache_misses_total %d\n", misses)
	fmt.Fprintln(w, "# HELP bfserved_cache_entries Result-cache current size.")
	fmt.Fprintln(w, "# TYPE bfserved_cache_entries gauge")
	fmt.Fprintf(w, "bfserved_cache_entries %d\n", size)
	if hits+misses > 0 {
		fmt.Fprintln(w, "# HELP bfserved_cache_hit_ratio Hits / (hits + misses) since start.")
		fmt.Fprintln(w, "# TYPE bfserved_cache_hit_ratio gauge")
		fmt.Fprintf(w, "bfserved_cache_hit_ratio %g\n", float64(hits)/float64(hits+misses))
	}

	// Admission control.
	fmt.Fprintln(w, "# HELP bfserved_in_flight Requests currently executing.")
	fmt.Fprintln(w, "# TYPE bfserved_in_flight gauge")
	fmt.Fprintf(w, "bfserved_in_flight %d\n", s.lim.inFlight())
	fmt.Fprintln(w, "# HELP bfserved_queue_depth Requests waiting for an execution slot.")
	fmt.Fprintln(w, "# TYPE bfserved_queue_depth gauge")
	fmt.Fprintf(w, "bfserved_queue_depth %d\n", s.lim.queueDepth())
	fmt.Fprintln(w, "# HELP bfserved_shed_total Requests rejected with 429 because the queue was full.")
	fmt.Fprintln(w, "# TYPE bfserved_shed_total counter")
	fmt.Fprintf(w, "bfserved_shed_total %d\n", s.lim.shedTotal())

	// Per-tenant QoS.
	tstats := s.lim.tenantStats()
	fmt.Fprintln(w, "# HELP bfserved_tenant_admitted_total Requests granted an execution slot, per tenant.")
	fmt.Fprintln(w, "# TYPE bfserved_tenant_admitted_total counter")
	for _, ts := range tstats {
		fmt.Fprintf(w, "bfserved_tenant_admitted_total{tenant=%q} %d\n", ts.name, ts.admitted)
	}
	fmt.Fprintln(w, "# HELP bfserved_tenant_shed_total Requests shed per tenant by reason: queue (bounded queue full) or quota (token bucket empty).")
	fmt.Fprintln(w, "# TYPE bfserved_tenant_shed_total counter")
	for _, ts := range tstats {
		fmt.Fprintf(w, "bfserved_tenant_shed_total{tenant=%q,reason=\"queue\"} %d\n", ts.name, ts.shedQueue)
		fmt.Fprintf(w, "bfserved_tenant_shed_total{tenant=%q,reason=\"quota\"} %d\n", ts.name, ts.shedQuota)
	}
	fmt.Fprintln(w, "# HELP bfserved_tenant_evicted_total Queued requests abandoned before dispatch (deadline expiry or disconnect), per tenant.")
	fmt.Fprintln(w, "# TYPE bfserved_tenant_evicted_total counter")
	for _, ts := range tstats {
		fmt.Fprintf(w, "bfserved_tenant_evicted_total{tenant=%q} %d\n", ts.name, ts.evicted)
	}
	fmt.Fprintln(w, "# HELP bfserved_tenant_queue_depth Requests currently waiting for a slot, per tenant.")
	fmt.Fprintln(w, "# TYPE bfserved_tenant_queue_depth gauge")
	for _, ts := range tstats {
		fmt.Fprintf(w, "bfserved_tenant_queue_depth{tenant=%q} %d\n", ts.name, ts.queued)
	}
	fmt.Fprintln(w, "# HELP bfserved_tenant_weight Configured weighted-round-robin weight, per tenant.")
	fmt.Fprintln(w, "# TYPE bfserved_tenant_weight gauge")
	for _, ts := range tstats {
		fmt.Fprintf(w, "bfserved_tenant_weight{tenant=%q} %d\n", ts.name, ts.weight)
	}
	fmt.Fprintln(w, "# HELP bfserved_tenant_slo_burn Error-budget burn rate against the tenant's latency SLO (1.0 = spending the budget of a 99% objective exactly).")
	fmt.Fprintln(w, "# TYPE bfserved_tenant_slo_burn gauge")
	for _, ts := range tstats {
		fmt.Fprintf(w, "bfserved_tenant_slo_burn{tenant=%q} %g\n", ts.name, ts.burn)
	}

	// Durability (only when the daemon runs with a data dir).
	if s.store != nil {
		fmt.Fprintln(w, "# HELP bfserved_wal_bytes Current write-ahead log length.")
		fmt.Fprintln(w, "# TYPE bfserved_wal_bytes gauge")
		fmt.Fprintf(w, "bfserved_wal_bytes %d\n", s.store.WALSize())
		fmt.Fprintln(w, "# HELP bfserved_wal_fsyncs_total Completed WAL fsyncs (group commit batches many appends per fsync).")
		fmt.Fprintln(w, "# TYPE bfserved_wal_fsyncs_total counter")
		fmt.Fprintf(w, "bfserved_wal_fsyncs_total %d\n", s.store.WALSyncs())
		fmt.Fprintln(w, "# HELP bfserved_checkpoints_total Completed snapshot checkpoints.")
		fmt.Fprintln(w, "# TYPE bfserved_checkpoints_total counter")
		fmt.Fprintf(w, "bfserved_checkpoints_total %d\n", s.store.Checkpoints())
		fmt.Fprintln(w, "# HELP bfserved_checkpoint_errors_total Failed checkpoints.")
		fmt.Fprintln(w, "# TYPE bfserved_checkpoint_errors_total counter")
		fmt.Fprintf(w, "bfserved_checkpoint_errors_total %d\n", m.checkpointErrors.Load())
	}

	// Streaming ingest.
	ingests := s.reg.Ingests()
	fmt.Fprintln(w, "# HELP bfserved_open_ingests Streaming ingests currently open (graphs in the loading state).")
	fmt.Fprintln(w, "# TYPE bfserved_open_ingests gauge")
	fmt.Fprintf(w, "bfserved_open_ingests %d\n", len(ingests))
	if len(ingests) > 0 {
		fmt.Fprintln(w, "# HELP bfserved_ingest_edges_seen Edges consumed so far by each open ingest.")
		fmt.Fprintln(w, "# TYPE bfserved_ingest_edges_seen gauge")
		for _, ing := range ingests {
			fmt.Fprintf(w, "bfserved_ingest_edges_seen{graph=%q} %d\n", ing.name, ing.res.Seen())
		}
	}

	// Per-graph state.
	snaps := s.reg.Snapshots()
	fmt.Fprintln(w, "# HELP bfserved_graph_version Current version of each registered graph.")
	fmt.Fprintln(w, "# TYPE bfserved_graph_version gauge")
	for _, sn := range snaps {
		fmt.Fprintf(w, "bfserved_graph_version{graph=%q} %d\n", sn.Name, sn.Version)
	}
	fmt.Fprintln(w, "# HELP bfserved_graph_edges Edge count of each registered graph's current version.")
	fmt.Fprintln(w, "# TYPE bfserved_graph_edges gauge")
	for _, sn := range snaps {
		fmt.Fprintf(w, "bfserved_graph_edges{graph=%q} %d\n", sn.Name, sn.Graph.NumEdges())
	}
	fmt.Fprintln(w, "# HELP bfserved_graph_butterflies Exact butterfly count of each registered graph's current version.")
	fmt.Fprintln(w, "# TYPE bfserved_graph_butterflies gauge")
	for _, sn := range snaps {
		fmt.Fprintf(w, "bfserved_graph_butterflies{graph=%q} %d\n", sn.Name, sn.Count)
	}
}
