package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// errShed reports that the admission queue was full — the caller
// should answer 429.
var errShed = errors.New("serve: overloaded, request shed")

// limiter is the admission controller: at most maxInFlight requests
// execute concurrently and at most maxQueue more wait for a slot.
// Anything beyond that is shed immediately — under overload the
// server degrades to fast 429s instead of collapsing under unbounded
// goroutine and memory growth, and queued requests still honor their
// deadline while waiting.
type limiter struct {
	sem      chan struct{} // buffered to maxInFlight; a token = an execution slot
	maxQueue int64
	queued   atomic.Int64 // current waiters
	shed     atomic.Uint64
}

func newLimiter(maxInFlight, maxQueue int) *limiter {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &limiter{sem: make(chan struct{}, maxInFlight), maxQueue: int64(maxQueue)}
}

// acquire claims an execution slot, waiting in the bounded queue if
// necessary. It returns errShed when the queue is full and ctx.Err()
// when the request deadline expires (or the client disconnects) while
// queued. A nil return must be paired with exactly one release.
func (l *limiter) acquire(ctx context.Context) error {
	// Fast path: free slot, no queueing.
	select {
	case l.sem <- struct{}{}:
		return nil
	default:
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		l.shed.Add(1)
		return errShed
	}
	defer l.queued.Add(-1)
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an execution slot.
func (l *limiter) release() { <-l.sem }

// inFlight returns the number of requests currently executing.
func (l *limiter) inFlight() int { return len(l.sem) }

// queueDepth returns the number of requests waiting for a slot.
func (l *limiter) queueDepth() int64 { return l.queued.Load() }

// shedTotal returns the cumulative number of shed requests.
func (l *limiter) shedTotal() uint64 { return l.shed.Load() }
