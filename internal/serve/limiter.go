package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// errShed reports that the admission queue was full — the caller
// should answer 429 with the "overloaded" code.
var errShed = errors.New("serve: overloaded, request shed")

// quotaError reports that a tenant's token bucket is empty. It maps to
// 429 with the "quota_exhausted" code and carries the refill horizon
// for the Retry-After hint, so well-behaved clients back off to the
// tenant's sustained rate instead of hammering the shared queue.
type quotaError struct {
	tenant  string
	retryMS int64
}

func (e quotaError) Error() string {
	return fmt.Sprintf("serve: tenant %q quota exhausted", e.tenant)
}

// lane is a priority class. Interactive strictly precedes batch: as
// long as any interactive request is queued, no batch request is
// dispatched. Fairness across tenants applies within a lane, never
// across lanes.
type lane int

const (
	laneInteractive lane = iota
	laneBatch
	numLanes
)

func (ln lane) String() string {
	if ln == laneBatch {
		return "batch"
	}
	return "interactive"
}

// parseLane maps the wire spelling of a priority to a lane. The empty
// string is the default (interactive) so absent headers cost nothing.
func parseLane(s string) (lane, error) {
	switch s {
	case "", "interactive":
		return laneInteractive, nil
	case "batch":
		return laneBatch, nil
	default:
		return 0, badReqf("unknown priority %q (want interactive|batch)", s)
	}
}

// TenantSpec configures one tenant's admission budget. The zero value
// means: unlimited rate, weight 1, half the shared queue budget, and a
// 250 ms latency objective.
type TenantSpec struct {
	// Rate is the sustained admission rate in requests/second fed into
	// the tenant's token bucket; ≤ 0 means unlimited (no bucket).
	Rate float64 `json:"rate,omitempty"`
	// Burst is the bucket capacity; ≤ 0 derives max(1, Rate).
	Burst float64 `json:"burst,omitempty"`
	// Weight is the tenant's share in the weighted round-robin across
	// queued tenants of the same lane; ≤ 0 means 1.
	Weight int `json:"weight,omitempty"`
	// MaxQueue bounds this tenant's waiting requests (both lanes
	// together); ≤ 0 means half the shared queue budget, so no single
	// tenant can ever own the whole queue.
	MaxQueue int `json:"max_queue,omitempty"`
	// SLOMillis is the per-request latency objective backing the
	// tenant's burn-rate gauge; ≤ 0 means 250 ms.
	SLOMillis int `json:"slo_ms,omitempty"`
}

// TenantsConfig is the QoS admission config: a default spec applied to
// unknown or unnamed tenants, plus named overrides. It is the wire
// shape of the -tenants file and of /admin/tenants.
type TenantsConfig struct {
	Default TenantSpec            `json:"default"`
	Tenants map[string]TenantSpec `json:"tenants,omitempty"`
}

// defaultTenant is the bucket every request without a configured
// tenant is charged to. Unknown tenant names collapse onto it, which
// both implements the fallback and keeps metric label cardinality
// bounded by the config rather than by whatever clients send.
const defaultTenant = "default"

const (
	defaultSLOMillis = 250
	// sloObjective is the success objective behind the burn-rate gauge:
	// burn = (fraction of requests over the SLO) / (1 - objective).
	// Burn 1.0 means the tenant is consuming its error budget exactly
	// as fast as a 99% objective allows; above 1.0 it is burning down.
	sloObjective = 0.99
)

func weightOf(s TenantSpec) int {
	if s.Weight > 0 {
		return s.Weight
	}
	return 1
}

func burstOf(s TenantSpec) float64 {
	if s.Burst > 0 {
		return s.Burst
	}
	return math.Max(1, s.Rate)
}

func sloOf(s TenantSpec) int {
	if s.SLOMillis > 0 {
		return s.SLOMillis
	}
	return defaultSLOMillis
}

// queueCapOf bounds one tenant's backlog. The default of half the
// shared budget guarantees a second tenant always finds room no matter
// how hard the first floods.
func queueCapOf(s TenantSpec, maxQueue int) int {
	if maxQueue <= 0 {
		return 0
	}
	if s.MaxQueue > 0 {
		if s.MaxQueue > maxQueue {
			return maxQueue
		}
		return s.MaxQueue
	}
	c := maxQueue / 2
	if c < 1 {
		c = 1
	}
	return c
}

// waiter is one queued request. All fields are guarded by limiter.mu.
type waiter struct {
	ready    chan struct{} // closed on grant
	granted  bool          // slot assigned (closed ready)
	removed  bool          // popped from its queue (granted or evicted)
	deadline time.Time     // zero = no deadline
	ts       *tenantState
	ln       lane
}

// tenantState is the per-tenant half of the scheduler: a token bucket
// for sustained-rate admission, per-lane FIFO queues, a WRR credit
// counter, and counters for the bfserved_tenant_* metric families.
// All fields are guarded by limiter.mu.
type tenantState struct {
	name string
	spec TenantSpec

	tokens float64
	last   time.Time

	credits int
	queues  [numLanes][]*waiter
	queued  int

	admitted  uint64
	shedQueue uint64
	shedQuota uint64
	evicted   uint64

	served  uint64
	overSLO uint64
}

// takeToken refills the bucket by elapsed wall time and takes one
// token. Unlimited tenants (Rate ≤ 0) always admit. On failure it
// returns the wait in milliseconds until the next token accrues.
func (ts *tenantState) takeToken(now time.Time) (ok bool, retryMS int64) {
	if ts.spec.Rate <= 0 {
		return true, 0
	}
	if dt := now.Sub(ts.last).Seconds(); dt > 0 {
		ts.tokens = math.Min(burstOf(ts.spec), ts.tokens+dt*ts.spec.Rate)
		ts.last = now
	}
	if ts.tokens >= 1 {
		ts.tokens--
		return true, 0
	}
	ms := int64(math.Ceil((1 - ts.tokens) / ts.spec.Rate * 1000))
	if ms < 1 {
		ms = 1
	}
	return false, ms
}

// limiter is the tenant-aware admission controller: at most capacity
// requests execute concurrently; excess requests wait in bounded
// per-tenant queues and are dispatched by strict lane precedence
// (interactive before batch) and weighted round-robin across tenants
// within a lane. Everything beyond the queue bounds is shed
// immediately — under overload the server degrades to fast 429s
// instead of collapsing under unbounded goroutine growth.
//
// Locking discipline: one mutex guards every scheduling decision, and
// release() dispatches queued waiters under that same lock before any
// new arrival can observe the freed slot. That yields the scheduler
// invariant `queued > 0 ⇒ inflight == capacity`: a free slot with a
// non-empty queue cannot be observed from outside the lock, so the
// direct-admit check in acquireSlot is sufficient — and the historical
// race where a request was shed although a slot freed between the
// lock-free fast-path check and joining the queue is gone by
// construction (see TestShedOnlyWhenQueueTrulyFull).
type limiter struct {
	mu sync.Mutex

	capacity int
	inflight int
	maxQueue int
	queued   int

	cfg        TenantsConfig
	configured map[string]bool
	tenants    map[string]*tenantState
	order      []*tenantState // stable scan order for WRR
	rr         int            // WRR cursor into order

	shed uint64 // queue-full sheds, all tenants (legacy bfserved_shed_total)

	now func() time.Time // injectable for deterministic bucket tests
}

// newQoSLimiter builds the weighted-fair admission controller.
func newQoSLimiter(maxInFlight, maxQueue int, cfg TenantsConfig) *limiter {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	l := &limiter{
		capacity: maxInFlight,
		maxQueue: maxQueue,
		tenants:  map[string]*tenantState{},
		now:      time.Now,
	}
	l.setConfig(cfg)
	return l
}

// newLimiter builds a limiter with the zero tenant config: one
// unlimited default tenant — exactly the pre-QoS behavior.
func newLimiter(maxInFlight, maxQueue int) *limiter {
	return newQoSLimiter(maxInFlight, maxQueue, TenantsConfig{})
}

// setConfig swaps the tenant config in place (hot reload via
// /admin/tenants). Existing buckets keep their earned tokens, clamped
// to the new burst; queued waiters are untouched and drain under the
// new weights. Tenants dropped from the config stop being resolvable —
// new requests naming them fall back to the default bucket.
func (l *limiter) setConfig(cfg TenantsConfig) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cfg = TenantsConfig{Default: cfg.Default, Tenants: map[string]TenantSpec{}}
	l.configured = map[string]bool{defaultTenant: true}
	l.applySpecLocked(defaultTenant, cfg.Default)
	for name, spec := range cfg.Tenants {
		if name == "" || name == defaultTenant {
			continue
		}
		l.cfg.Tenants[name] = spec
		l.configured[name] = true
		l.applySpecLocked(name, spec)
	}
}

func (l *limiter) applySpecLocked(name string, spec TenantSpec) {
	ts := l.tenants[name]
	if ts == nil {
		// A tenant configured for the first time starts with a full
		// bucket of its own burst — creating it via tenantLocked would
		// seed it with the default spec's burst instead.
		ts = &tenantState{name: name, spec: spec, tokens: burstOf(spec), last: l.now()}
		l.tenants[name] = ts
		l.order = append(l.order, ts)
		return
	}
	ts.spec = spec
	ts.tokens = math.Min(ts.tokens, burstOf(spec))
}

// config returns a deep copy of the active tenant config.
func (l *limiter) config() TenantsConfig {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := TenantsConfig{Default: l.cfg.Default, Tenants: map[string]TenantSpec{}}
	for name, spec := range l.cfg.Tenants {
		out.Tenants[name] = spec
	}
	return out
}

// resolve maps a request's claimed tenant to the tenant it is charged
// as: configured names pass through, everything else (including the
// empty string) collapses to the default tenant.
func (l *limiter) resolve(name string) string {
	if name == "" || name == defaultTenant {
		return defaultTenant
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.configured[name] {
		return name
	}
	return defaultTenant
}

// tenantLocked returns the state for a (resolved) tenant name,
// creating it with a full bucket on first sight.
func (l *limiter) tenantLocked(name string) *tenantState {
	if name == "" {
		name = defaultTenant
	}
	ts := l.tenants[name]
	if ts == nil {
		spec := l.cfg.Default
		ts = &tenantState{
			name:   name,
			spec:   spec,
			tokens: burstOf(spec),
			last:   l.now(),
		}
		l.tenants[name] = ts
		l.order = append(l.order, ts)
	}
	return ts
}

// charge takes one token from the tenant's bucket without claiming an
// execution slot. It is the whole admission cost for coalesced
// followers: they share the leader's execution but still pay their own
// tenant's quota, so coalescing cannot be used to launder load onto
// another tenant's budget.
func (l *limiter) charge(tenant string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ts := l.tenantLocked(tenant)
	ok, retry := ts.takeToken(l.now())
	if !ok {
		ts.shedQuota++
		return quotaError{tenant: ts.name, retryMS: retry}
	}
	return nil
}

// acquireSlot claims an execution slot for an already-charged request,
// waiting in the tenant's bounded queue if the server is saturated.
// It returns errShed when the tenant's queue (or the shared budget) is
// full and ctx.Err() when the deadline expires or the client
// disconnects while queued. A nil return must be paired with exactly
// one release.
func (l *limiter) acquireSlot(ctx context.Context, tenant string, ln lane) error {
	if ln < 0 || ln >= numLanes {
		ln = laneInteractive
	}
	l.mu.Lock()
	ts := l.tenantLocked(tenant)
	if l.inflight < l.capacity {
		// The invariant (queued > 0 ⇒ inflight == capacity) means a free
		// slot here proves the queue is empty — direct admission cannot
		// overtake a queued request.
		l.inflight++
		ts.admitted++
		l.mu.Unlock()
		return nil
	}
	if l.queued >= l.maxQueue || ts.queued >= queueCapOf(ts.spec, l.maxQueue) {
		ts.shedQueue++
		l.shed++
		l.mu.Unlock()
		return errShed
	}
	w := &waiter{ready: make(chan struct{}), ts: ts, ln: ln}
	if dl, ok := ctx.Deadline(); ok {
		w.deadline = dl
	}
	ts.queues[ln] = append(ts.queues[ln], w)
	ts.queued++
	l.queued++
	l.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		l.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: hand the slot straight to
			// the next waiter.
			l.inflight--
			l.dispatchLocked()
		} else {
			l.removeLocked(w)
		}
		l.mu.Unlock()
		return ctx.Err()
	}
}

// acquireFor is full admission: one token from the tenant's bucket,
// then an execution slot in the tenant's lane.
func (l *limiter) acquireFor(ctx context.Context, tenant string, ln lane) error {
	if err := l.charge(tenant); err != nil {
		return err
	}
	return l.acquireSlot(ctx, tenant, ln)
}

// acquire is the pre-QoS surface: full admission as the default
// tenant, interactive lane.
func (l *limiter) acquire(ctx context.Context) error {
	return l.acquireFor(ctx, defaultTenant, laneInteractive)
}

// release returns an execution slot and dispatches queued waiters
// under the same lock, preserving the scheduler invariant.
func (l *limiter) release() {
	l.mu.Lock()
	l.inflight--
	l.dispatchLocked()
	l.mu.Unlock()
}

// dispatchLocked grants free slots to queued waiters.
func (l *limiter) dispatchLocked() {
	for l.inflight < l.capacity && l.queued > 0 {
		w := l.nextLocked()
		if w == nil {
			return
		}
		l.inflight++
		w.ts.admitted++
		w.granted = true
		close(w.ready)
	}
}

// nextLocked picks the next waiter to admit: strict lane precedence,
// then weighted round-robin across tenants within the lane. Expired
// waiters encountered during the scan are evicted on the spot, so a
// dead request never consumes a slot ahead of a live one.
func (l *limiter) nextLocked() *waiter {
	now := l.now()
	for ln := laneInteractive; ln < numLanes; ln++ {
		if w := l.nextInLaneLocked(ln, now); w != nil {
			return w
		}
	}
	return nil
}

// nextInLaneLocked runs one WRR step in a lane. A tenant keeps the
// cursor while it has credits (so a weight-4 tenant drains up to four
// requests per round), then the cursor advances. When every
// backlogged tenant is out of credits the round ends and credits
// replenish to the configured weights — the second pass then succeeds.
func (l *limiter) nextInLaneLocked(ln lane, now time.Time) *waiter {
	n := len(l.order)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			at := (l.rr + i) % n
			ts := l.order[at]
			l.evictExpiredLocked(ts, ln, now)
			if len(ts.queues[ln]) == 0 || ts.credits <= 0 {
				continue
			}
			w := ts.queues[ln][0]
			ts.queues[ln] = ts.queues[ln][1:]
			w.removed = true
			ts.queued--
			l.queued--
			ts.credits--
			if ts.credits <= 0 {
				at++ // spent: move the cursor past this tenant
			}
			l.rr = at % n
			return w
		}
		refreshed := false
		for _, ts := range l.order {
			if len(ts.queues[ln]) > 0 {
				ts.credits = weightOf(ts.spec)
				refreshed = true
			}
		}
		if !refreshed {
			return nil
		}
	}
	return nil
}

// evictExpiredLocked drops waiters whose deadline has already passed.
// Their goroutines observe ctx.Done and return; removeLocked is then a
// no-op thanks to the removed flag.
func (l *limiter) evictExpiredLocked(ts *tenantState, ln lane, now time.Time) {
	q := ts.queues[ln]
	kept := q[:0]
	for _, w := range q {
		if !w.deadline.IsZero() && now.After(w.deadline) {
			w.removed = true
			ts.queued--
			l.queued--
			ts.evicted++
			continue
		}
		kept = append(kept, w)
	}
	ts.queues[ln] = kept
}

// removeLocked unlinks a cancelled waiter from its queue.
func (l *limiter) removeLocked(w *waiter) {
	if w.removed {
		return
	}
	w.removed = true
	q := w.ts.queues[w.ln]
	for i, x := range q {
		if x == w {
			w.ts.queues[w.ln] = append(q[:i:i], q[i+1:]...)
			break
		}
	}
	w.ts.queued--
	l.queued--
}

// observe records one finished request's latency against its tenant's
// SLO, feeding the burn-rate gauge.
func (l *limiter) observe(tenant string, elapsed time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ts := l.tenantLocked(tenant)
	ts.served++
	if elapsed.Milliseconds() > int64(sloOf(ts.spec)) {
		ts.overSLO++
	}
}

// tenantStat is a point-in-time snapshot of one tenant's QoS counters
// for the /metrics exposition.
type tenantStat struct {
	name      string
	weight    int
	queued    int
	admitted  uint64
	shedQueue uint64
	shedQuota uint64
	evicted   uint64
	sloMS     int
	burn      float64
}

// tenantStats snapshots every known tenant, sorted by name for stable
// exposition order.
func (l *limiter) tenantStats() []tenantStat {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]tenantStat, 0, len(l.order))
	for _, ts := range l.order {
		st := tenantStat{
			name:      ts.name,
			weight:    weightOf(ts.spec),
			queued:    ts.queued,
			admitted:  ts.admitted,
			shedQueue: ts.shedQueue,
			shedQuota: ts.shedQuota,
			evicted:   ts.evicted,
			sloMS:     sloOf(ts.spec),
		}
		if ts.served > 0 {
			st.burn = float64(ts.overSLO) / float64(ts.served) / (1 - sloObjective)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].name < out[b].name })
	return out
}

// inFlight returns the number of requests currently executing.
func (l *limiter) inFlight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// queueDepth returns the number of requests waiting for a slot.
func (l *limiter) queueDepth() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(l.queued)
}

// shedTotal returns the cumulative number of queue-full sheds.
func (l *limiter) shedTotal() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.shed
}
