package serve

// Per-request observability: the API-surface tag, the request state
// carried through the handler chain (trace + debug knob), the
// obsv-backed metric families, the span→wire conversion, and the
// slow-query log entry. The flat legacy metrics in metrics.go keep
// their exact exposition; everything here is additive.

import (
	"context"
	"net/http"
	"time"

	"butterfly/internal/obsv"
	"butterfly/serveapi"
)

// apiVer tags which HTTP surface a request arrived on.
type apiVer int

const (
	// apiLegacy is the original unversioned surface (deprecated; kept
	// as an alias of /v1 with the old error body).
	apiLegacy apiVer = iota
	// apiV1 is the versioned surface: /v1/... paths, uniform error
	// envelope, debug traces.
	apiV1
)

// String is the metrics label and cache-key spelling.
func (a apiVer) String() string {
	if a == apiV1 {
		return "v1"
	}
	return "legacy"
}

// reqState is the per-request observability state, carried in the
// request context by instrument. Handlers reach it via stateOf.
type reqState struct {
	tr    *obsv.Trace
	api   apiVer
	route string
	// debug is true when a /v1 request asked for ?debug=true: the
	// response carries the span tree and bypasses the result cache in
	// both directions (and request coalescing — a debug trace must
	// describe this execution, not a shared one).
	debug bool
	// tenant is the resolved QoS tenant the request is charged to
	// (headers first, body fields win; unknown names collapse to
	// "default"). lane is its resolved priority. Legacy-surface
	// requests always run as the default tenant, interactive lane.
	tenant string
	lane   lane
}

// root returns the request's root span (nil-safe: a nil state or trace
// yields a nil span whose methods all no-op).
func (st *reqState) root() *obsv.Span {
	if st == nil {
		return nil
	}
	return st.tr.Root()
}

type reqStateKey struct{}

// stateOf returns the request's observability state. Requests that
// bypassed instrument (direct handler tests) get an inert zero state:
// legacy surface, no trace, no debug.
func stateOf(r *http.Request) *reqState {
	if st, ok := r.Context().Value(reqStateKey{}).(*reqState); ok {
		return st
	}
	return &reqState{}
}

// withState installs st into the request context.
func withState(r *http.Request, st *reqState) *http.Request {
	return r.WithContext(context.WithValue(r.Context(), reqStateKey{}, st))
}

// debugRequested reports the ?debug query knob.
func debugRequested(r *http.Request) bool {
	switch r.URL.Query().Get("debug") {
	case "true", "1":
		return true
	}
	return false
}

// obsMetrics are the histogram-backed metric families introduced by
// the observability layer, rendered after the flat legacy metrics on
// /metrics. Route and stage label sets are bounded by construction
// (routes come from the static endpoint table; stages are the fixed
// top-level span names), so cardinality cannot run away.
type obsMetrics struct {
	reg           *obsv.Registry
	routeSeconds  *obsv.HistogramVec // {route, api}
	stageSeconds  *obsv.HistogramVec // {stage}
	responseBytes *obsv.HistogramVec
	slowQueries   *obsv.CounterVec
	estimates     *obsv.CounterVec // {kind}
	ingestEdges   *obsv.CounterVec
	// tenantSeconds is the per-tenant latency histogram behind the QoS
	// layer's p99 acceptance numbers. The tenant label set is bounded:
	// unresolvable names collapse to "default" before they get here.
	tenantSeconds *obsv.HistogramVec // {tenant}
	// coalesced counts follower requests that shared a leader's kernel
	// execution instead of running their own.
	coalesced *obsv.CounterVec
	// legacyReqs counts requests still arriving on the deprecated
	// unversioned aliases, by route — the signal for when the sunset
	// can complete.
	legacyReqs *obsv.CounterVec // {route}
}

func newObsMetrics() *obsMetrics {
	reg := obsv.NewRegistry()
	return &obsMetrics{
		reg: reg,
		routeSeconds: reg.Histogram("bfserved_route_seconds",
			"Latency of finished HTTP requests by route and API surface.",
			obsv.LatencyBuckets, "route", "api"),
		stageSeconds: reg.Histogram("bfserved_stage_seconds",
			"Duration of named request stages from the per-request trace.",
			obsv.LatencyBuckets, "stage"),
		responseBytes: reg.Histogram("bfserved_response_bytes",
			"Response body size in bytes.", obsv.SizeBuckets),
		slowQueries: reg.Counter("bfserved_slow_queries_total",
			"Requests at or above the slow-query threshold."),
		estimates: reg.Counter("bfserved_estimates_total",
			"Approximate-tier answers served, by kind (reservoir|sample|degraded).",
			"kind"),
		ingestEdges: reg.Counter("bfserved_ingest_edges_total",
			"Edges accepted by streaming ingest."),
		tenantSeconds: reg.Histogram("bfserved_tenant_seconds",
			"Latency of finished HTTP requests by QoS tenant.",
			obsv.LatencyBuckets, "tenant"),
		coalesced: reg.Counter("bfserved_coalesced_total",
			"Requests that joined an identical in-flight execution instead of running their own."),
		legacyReqs: reg.Counter("bfserved_legacy_requests_total",
			"Requests on the deprecated unversioned routes, by route.",
			"route"),
	}
}

// observeRequest records one finished request into the histogram
// families: route latency, response size, and one stage-seconds
// observation per top-level span of the request's trace.
func (m *obsMetrics) observeRequest(st *reqState, elapsed time.Duration, bytes int64) {
	m.routeSeconds.With(st.route, st.api.String()).Observe(elapsed.Seconds())
	m.responseBytes.With().Observe(float64(bytes))
	if st.tenant != "" {
		m.tenantSeconds.With(st.tenant).Observe(elapsed.Seconds())
	}
	for _, stg := range st.tr.Stages() {
		m.stageSeconds.With(stg.Name).Observe(stg.Dur.Seconds())
	}
}

// spanToAPI converts a snapshot of the request's span tree into the
// wire representation.
func spanToAPI(n obsv.SpanNode) *serveapi.TraceSpan {
	t := spanNode(n)
	return &t
}

func spanNode(n obsv.SpanNode) serveapi.TraceSpan {
	out := serveapi.TraceSpan{Name: n.Name, StartUS: n.StartUS, DurUS: n.DurUS, Dropped: n.Dropped}
	for _, c := range n.Children {
		out.Children = append(out.Children, spanNode(c))
	}
	return out
}

// setTrace attaches the span tree to the response types that carry
// one (the ?debug=true path).
func setTrace(resp any, t *serveapi.TraceSpan) {
	switch v := resp.(type) {
	case *serveapi.CountResponse:
		v.Trace = t
	case *serveapi.VertexCountsResponse:
		v.Trace = t
	case *serveapi.EdgeSupportsResponse:
		v.Trace = t
	case *serveapi.EstimateResponse:
		v.Trace = t
	case *serveapi.IngestResponse:
		v.Trace = t
	case *serveapi.PeelResponse:
		v.Trace = t
	case *serveapi.MutateResponse:
		v.Trace = t
	case *serveapi.CheckpointResponse:
		v.Trace = t
	case *serveapi.Health:
		v.Trace = t
	case *serveapi.GraphInfo:
		v.Trace = t
	case *serveapi.GraphList:
		v.Trace = t
	}
}

// slowEntry is one line of the structured slow-query log.
type slowEntry struct {
	TS        string             `json:"ts"`
	Route     string             `json:"route"`
	API       string             `json:"api"`
	Method    string             `json:"method"`
	Path      string             `json:"path"`
	Status    int                `json:"status"`
	ElapsedMS float64            `json:"elapsed_ms"`
	Trace     serveapi.TraceSpan `json:"trace"`
}
