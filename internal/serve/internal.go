package serve

// Shard-side cluster endpoints: the wedge-partial export that powers
// scatter-gather cross-shard counting, the snapshot export/adopt pair
// that powers rebalancing hand-off, and the replica version-floor
// check that gives routed replica reads read-your-writes semantics.
// These live under /v1/internal/ — always mounted, but addressed to
// the routing tier rather than end users (see docs/CLUSTER.md).

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"butterfly"
	"butterfly/serveapi"
)

// MinVersionHeader is the read floor a router attaches to replica
// reads: a shard whose published snapshot is older answers 503
// replica_behind so the router can fall to a fresher replica.
const MinVersionHeader = "X-Bf-Min-Version"

// VersionHeader carries the snapshot version of a binary response
// (the partial export, whose body has no JSON envelope to put it in).
const VersionHeader = "X-Bf-Version"

// PartialEpochHeader carries the partial log's activation token on
// partial responses. A router pins it with the partials and echoes it
// in `?epoch=`, so a graph re-registered at a coincidentally matching
// version can never satisfy a delta request from the wrong history.
const PartialEpochHeader = "X-Bf-Partial-Epoch"

// PartialKindHeader labels a partial response body "full" or "delta"
// for human debugging; machine clients sniff the body magic instead.
const PartialKindHeader = "X-Bf-Partial"

// replicaBehindError reports a read floor this replica has not caught
// up to; answers 503 with code replica_behind.
type replicaBehindError struct {
	name       string
	have, want uint64
}

func (e replicaBehindError) Error() string {
	return fmt.Sprintf("replica has %q at v%d, read requires ≥ v%d", e.name, e.have, e.want)
}

// checkFloor enforces the request's X-Bf-Min-Version floor against
// the snapshot about to serve it. A zero or absent floor always
// passes; a malformed floor is ignored (the header is router-internal
// and a router never sends garbage — failing open keeps manual curl
// debugging pleasant).
func checkFloor(r *http.Request, snap *Snapshot) error {
	h := r.Header.Get(MinVersionHeader)
	if h == "" {
		return nil
	}
	floor, err := strconv.ParseUint(h, 10, 64)
	if err != nil || floor == 0 {
		return nil
	}
	if snap.Version < floor {
		return replicaBehindError{name: snap.Name, have: snap.Version, want: floor}
	}
	return nil
}

// handlePartial serves GET /v1/internal/partial/{name}: the graph's
// V1-centered wedge partial map in the binary serveapi format. This
// is the scatter half of cross-shard counting — the router merges the
// partials of every partition and applies Σ C(β, 2).
//
// Two reply shapes. `?since=V&epoch=E` asks for the signed delta from
// version V: when the maintained history (partiallog.go) covers
// (V, current] under epoch E, the composed delta frame is served
// straight from that state — no wedge enumeration, no admission slot.
// Otherwise (history evicted, epoch mismatch, no since) the full map
// is exported: the same wedge work as a local count, so it runs under
// admission control and its encoded body is cached per version — a
// full export also activates delta maintenance so later syncs go by
// delta. The cache key includes the resolved aggregation mode
// (`?agg=`), so a shard restarted under a different default policy
// never aliases an old entry.
func (s *Server) handlePartial(w http.ResponseWriter, r *http.Request) {
	st := stateOf(r)
	root := st.root()
	q := r.URL.Query()

	agg := butterfly.AggAuto
	if a := q.Get("agg"); a != "" {
		pol, err := butterfly.ParseAggPolicy(a)
		if err != nil {
			s.writeError(w, r, badReqf("unknown aggregation mode %q (want auto|sort|hash|hist|batch)", a))
			return
		}
		agg = pol
	}
	var since, epoch uint64
	if v := q.Get("since"); v != "" {
		u, err := strconv.ParseUint(v, 10, 64)
		if err != nil || u == 0 {
			s.writeError(w, r, badReqf("invalid since version %q", v))
			return
		}
		since = u
	}
	if v := q.Get("epoch"); v != "" {
		u, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.writeError(w, r, badReqf("invalid epoch %q", v))
			return
		}
		epoch = u
	}

	rsp := root.Child("registry")
	snap, err := s.reg.Get(r.PathValue("name"))
	rsp.End()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if err := checkFloor(r, snap); err != nil {
		s.writeError(w, r, err)
		return
	}

	writeBody := func(body []byte, cache, kind string, version, ep uint64) {
		wsp := root.Child("render")
		w.Header().Set("X-Cache", cache)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set(VersionHeader, strconv.FormatUint(version, 10))
		w.Header().Set(PartialKindHeader, kind)
		if ep != 0 {
			w.Header().Set(PartialEpochHeader, strconv.FormatUint(ep, 10))
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
		wsp.End()
	}

	if since > 0 {
		dsp := root.Child("delta")
		delta, ok := s.reg.PartialDeltaSince(snap.Name, epoch, since, snap.Version)
		dsp.End()
		if ok {
			writeBody(serveapi.EncodePartialDelta(since, snap.Version, delta),
				"none", serveapi.PartialFrameDelta, snap.Version, epoch)
			return
		}
		// History does not reach back to `since`: fall through to the
		// full map, which re-bases the client.
	}

	// Activate delta maintenance and pin the activation snapshot: its
	// version is exactly the log's base, so a client holding this full
	// map can sync every later version by delta.
	esp := root.Child("activate")
	snap, logEpoch, err := s.reg.EnablePartialLog(snap.Name)
	esp.End()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	resolved := snap.Graph.ResolvedAgg(butterfly.CountOptions{Agg: agg}).String()

	cacheKey := fmt.Sprintf("%s|%s|v%d|partial|agg=%s", st.api, snap.Name, snap.Version, resolved)
	if !st.debug {
		csp := root.Child("cache")
		body, ok := s.cache.get(cacheKey)
		csp.End()
		if ok {
			writeBody(body, "hit", serveapi.PartialFrameFull, snap.Version, logEpoch)
			return
		}
	}

	timeoutMS := 0
	if t := r.URL.Query().Get("timeout_ms"); t != "" {
		if v, err := strconv.Atoi(t); err == nil && v > 0 {
			timeoutMS = v
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(timeoutMS))
	defer cancel()

	asp := root.Child("admission")
	err = s.lim.acquire(ctx)
	asp.End()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	sl := &slot{lim: s.lim}
	defer sl.release()

	ksp := root.Child("kernel")
	s.compute(ctx)
	body, err := runAbandon(ctx, sl, func() ([]byte, error) {
		return serveapi.EncodePartial(snap.Version, snap.Graph.WedgePartials()), nil
	})
	ksp.End()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if !st.debug {
		s.cache.put(cacheKey, body)
	}
	writeBody(body, "miss", serveapi.PartialFrameFull, snap.Version, logEpoch)
}

// handleExport serves GET /v1/internal/export/{name}: the graph's
// full published state for rebalancing hand-off. The snapshot served
// is, under a durable store, exactly the newest bfstore snapshot plus
// the replayed WAL tail — nothing is recomputed to ship a graph.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	sp := stateOf(r).root().Child("registry")
	snap, err := s.reg.Get(r.PathValue("name"))
	sp.End()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if err := checkFloor(r, snap); err != nil {
		s.writeError(w, r, err)
		return
	}
	resp := &serveapi.ExportResponse{
		Name:    snap.Name,
		M:       snap.Graph.NumV1(),
		N:       snap.Graph.NumV2(),
		Version: snap.Version,
		Count:   snap.Count,
		Edges:   snap.Graph.Edges(),
	}
	s.writeOK(w, r, http.StatusOK, resp)
}

// handleAdopt serves POST /v1/internal/adopt: install an exported
// graph at its carried version (rebalance hand-off, replica seeding).
// The recount that seeds the dynamic counter doubles as the integrity
// gate — a carried count the recount contradicts refuses the adopt.
func (s *Server) handleAdopt(w http.ResponseWriter, r *http.Request) {
	root := stateOf(r).root()
	psp := root.Child("parse")
	var req serveapi.AdoptRequest
	if err := decodeBody(r, &req); err != nil {
		psp.End()
		s.writeError(w, r, err)
		return
	}
	if req.Name == "" {
		psp.End()
		s.writeError(w, r, badReqf("name is required"))
		return
	}
	if req.Version == 0 {
		psp.End()
		s.writeError(w, r, badReqf("version must be ≥ 1"))
		return
	}
	psp.End()
	// Adoption recounts the shipped edge set; bound that like any
	// other computation.
	asp := root.Child("admission")
	err := s.lim.acquire(r.Context())
	asp.End()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	defer s.lim.release()
	g, err := butterfly.FromEdges(req.M, req.N, req.Edges)
	if err != nil {
		s.writeError(w, r, badReqf("%v", err))
		return
	}
	rsp := root.Child("registry")
	snap, err := s.reg.AdoptRemote(req.Name, g, req.Version, req.Count, req.Replace)
	rsp.End()
	if err != nil {
		var ex ErrExists
		var de DurabilityError
		if !errors.As(err, &ex) && !errors.As(err, &de) {
			err = badReqf("%v", err)
		}
		s.writeError(w, r, err)
		return
	}
	s.nudgeCheckpoint()
	info := snapInfo(snap)
	s.writeOK(w, r, http.StatusCreated, &info)
}
