package serve

// Streaming ingestion: the "loading" half of the approximate-answer
// tier. A graph enters the registry either fully formed (POST
// /v1/graphs) or as an open ingest (POST /v1/ingest) that receives
// edges in NDJSON batches. While the ingest is open the graph has no
// snapshot — exact queries answer 409 loading — but /v1/estimate
// answers in O(1) from a FLEET reservoir estimator that tracks the
// stream. Sealing replays the retained edge log into a normal
// registered graph (version 1, exact count seeded, WAL-logged under a
// persister); until then the ingest is volatile — a crash loses it,
// which is the honest contract for data that was never acked durable.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"butterfly"
	"butterfly/internal/estimate"
	"butterfly/serveapi"
)

// ErrLoading reports an exact query against a graph whose ingest is
// still open: there is no snapshot to count yet.
type ErrLoading struct{ Name string }

func (e ErrLoading) Error() string {
	return fmt.Sprintf("graph %q is still loading; use the estimate endpoint or seal the ingest", e.Name)
}

// ErrNotIngesting reports an ingest operation (append, seal, abort)
// against a name with no open ingest — typically already sealed.
type ErrNotIngesting struct{ Name string }

func (e ErrNotIngesting) Error() string {
	return fmt.Sprintf("graph %q has no open ingest", e.Name)
}

// ingestState is one open streaming ingest: the reservoir estimator
// answering approximate queries plus the full edge log replayed at
// seal time. The reservoir has its own lock (snapshots never block
// appends for long); mu serializes the edge log and the seal
// transition.
type ingestState struct {
	name string
	m, n int
	res  *estimate.Reservoir

	mu      sync.Mutex
	edges   [][2]int
	sealing bool
}

// append applies one validated batch: reservoir first (which rejects
// the whole batch on any out-of-range endpoint, applying nothing),
// then the edge log. Returns the number of edges accepted.
func (ing *ingestState) append(batch [][2]int) (int, error) {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.sealing {
		return 0, ErrNotIngesting{ing.name}
	}
	if err := ing.res.AddBatch(batch); err != nil {
		return 0, badRequestError{err.Error()}
	}
	ing.edges = append(ing.edges, batch...)
	return len(batch), nil
}

// status renders the live wire view of the ingest.
func (ing *ingestState) status() serveapi.IngestResponse {
	s := ing.res.Snapshot()
	return serveapi.IngestResponse{
		Graph:         ing.name,
		State:         "loading",
		M:             ing.m,
		N:             ing.n,
		EdgesSeen:     s.EdgesSeen,
		ReservoirSize: s.ReservoirSize,
		ReservoirCap:  s.Capacity,
		Estimate:      s.Estimate,
		StdErr:        s.StdErr,
		CI95:          s.CI95,
		Exact:         s.Exact,
	}
}

// --- registry side ---

// OpenIngest opens a streaming ingest for name over an m×n vertex set
// with a reservoir of the given capacity. replace supersedes an
// existing registered graph (logged as a drop under a persister) or
// open ingest of the same name.
func (r *Registry) OpenIngest(name string, m, n, capacity int, seed int64, replace bool) (*ingestState, error) {
	if name == "" {
		return nil, badReqf("name is required")
	}
	res, err := estimate.NewReservoir(m, n, capacity, seed)
	if err != nil {
		return nil, badRequestError{err.Error()}
	}
	ing := &ingestState{name: name, m: m, n: n, res: res}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		if !replace {
			return nil, ErrExists{name}
		}
		// The registered graph leaves the registry now; under a
		// persister that departure must be durable before readers can
		// observe the name as loading.
		if r.persist != nil {
			if err := r.persist.LogDrop(name); err != nil {
				return nil, DurabilityError{err}
			}
		}
		delete(r.entries, name)
	}
	if _, ok := r.ingests[name]; ok && !replace {
		return nil, ErrExists{name}
	}
	r.ingests[name] = ing
	return ing, nil
}

// Ingest returns the open ingest for name, if any.
func (r *Registry) Ingest(name string) (*ingestState, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ing, ok := r.ingests[name]
	return ing, ok
}

// Ingests returns every open ingest, sorted by name.
func (r *Registry) Ingests() []*ingestState {
	r.mu.RLock()
	out := make([]*ingestState, 0, len(r.ingests))
	for _, ing := range r.ingests {
		out = append(out, ing)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// SealIngest promotes an open ingest to a registered graph: the
// retained edge log is replayed into an immutable graph (duplicates
// collapse), the exact count is seeded, and the result is published at
// version 1 exactly like a register — including the WAL append under a
// persister, which is the moment the graph first becomes durable.
// Further appends to the ingest fail from the moment sealing starts.
func (r *Registry) SealIngest(name string, stage func(name string, d time.Duration)) (*Snapshot, error) {
	r.mu.RLock()
	ing, ok := r.ingests[name]
	r.mu.RUnlock()
	if !ok {
		return nil, ErrNotIngesting{name}
	}
	ing.mu.Lock()
	if ing.sealing {
		ing.mu.Unlock()
		return nil, ErrNotIngesting{name}
	}
	ing.sealing = true
	edges := ing.edges
	ing.mu.Unlock()

	t0 := time.Now()
	g, err := butterfly.FromEdges(ing.m, ing.n, edges)
	if stage != nil {
		stage("seal.build", time.Since(t0))
	}
	if err != nil { // unreachable: every edge was validated on append
		ing.mu.Lock()
		ing.sealing = false
		ing.mu.Unlock()
		return nil, err
	}
	// replace=true atomically swaps loading → registered under r.mu
	// (RegisterObserved removes the ingest entry when it publishes).
	snap, err := r.RegisterObserved(name, g, true, stage)
	if err != nil {
		ing.mu.Lock()
		ing.sealing = false
		ing.mu.Unlock()
		return nil, err
	}
	return snap, nil
}

// AbortIngest discards an open ingest. Aborting a sealing ingest
// fails: its graph is already on the way into the registry.
func (r *Registry) AbortIngest(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ing, ok := r.ingests[name]
	if !ok {
		return ErrNotIngesting{name}
	}
	ing.mu.Lock()
	sealing := ing.sealing
	ing.mu.Unlock()
	if sealing {
		return ErrNotIngesting{name}
	}
	delete(r.ingests, name)
	return nil
}

// --- HTTP side ---

// ingestInfo renders an open ingest as a GraphInfo row for listings:
// version 0, state "loading", the edge count seen so far and the
// current reservoir estimate (rounded) in place of the exact count.
func ingestInfo(ing *ingestState) serveapi.GraphInfo {
	s := ing.res.Snapshot()
	info := serveapi.GraphInfo{
		Name:        ing.name,
		State:       "loading",
		NumV1:       ing.m,
		NumV2:       ing.n,
		NumEdges:    s.EdgesSeen,
		Butterflies: int64(s.Estimate + 0.5),
	}
	if ing.m > 0 && ing.n > 0 {
		info.Density = float64(s.EdgesSeen) / (float64(ing.m) * float64(ing.n))
	}
	return info
}

func (s *Server) handleIngestOpen(w http.ResponseWriter, r *http.Request) {
	root := stateOf(r).root()
	psp := root.Child("parse")
	var req serveapi.IngestRequest
	if err := decodeBody(r, &req); err != nil {
		psp.End()
		s.writeError(w, r, err)
		return
	}
	if req.Name == "" {
		psp.End()
		s.writeError(w, r, badReqf("name is required"))
		return
	}
	if req.Reservoir < 0 {
		psp.End()
		s.writeError(w, r, badReqf("reservoir must be ≥ 0, got %d", req.Reservoir))
		return
	}
	psp.End()
	capacity := req.Reservoir
	if capacity == 0 {
		capacity = s.cfg.DefaultReservoir
	}
	rsp := root.Child("registry")
	ing, err := s.reg.OpenIngest(req.Name, req.M, req.N, capacity, req.Seed, req.Replace)
	rsp.End()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	resp := ing.status()
	s.writeOK(w, r, http.StatusCreated, &resp)
}

func (s *Server) handleIngestStatus(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sp := stateOf(r).root().Child("registry")
	ing, ok := s.reg.Ingest(name)
	sp.End()
	if !ok {
		s.writeError(w, r, ErrNotIngesting{name})
		return
	}
	resp := ing.status()
	s.writeOK(w, r, http.StatusOK, &resp)
}

// ingestChunk is the number of edges applied to the reservoir per
// batch while streaming a request body: large enough to amortize the
// estimator's lock, small enough that mid-request estimate queries see
// the stream advance.
const ingestChunk = 4096

func (s *Server) handleIngestAppend(w http.ResponseWriter, r *http.Request) {
	root := stateOf(r).root()
	name := r.PathValue("name")
	ing, ok := s.reg.Ingest(name)
	if !ok {
		s.writeError(w, r, ErrNotIngesting{name})
		return
	}
	// Reservoir replacements run wedge sweeps; bound their concurrency
	// like any other computation.
	asp := root.Child("admission")
	err := s.lim.acquire(r.Context())
	asp.End()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	defer s.lim.release()
	start := time.Now()
	ksp := root.Child("ingest")
	accepted, err := s.ingestEdges(ing, r.Body)
	ksp.End()
	if accepted > 0 {
		s.obs.ingestEdges.With().Add(uint64(accepted))
	}
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	resp := ing.status()
	resp.Accepted = accepted
	resp.ElapsedMS = time.Since(start).Milliseconds()
	s.writeOK(w, r, http.StatusOK, &resp)
}

// ingestEdges consumes an NDJSON edge stream — one "[u,v]" JSON array
// per line, blank lines skipped — applying it in chunks so the
// reservoir (and every concurrent estimate query) advances while the
// body is still uploading. On a malformed line or invalid endpoint the
// current chunk is discarded but earlier chunks stay applied; the
// response reports how far the stream got via the error message, and
// the ingest remains open.
func (s *Server) ingestEdges(ing *ingestState, body io.Reader) (int64, error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var total int64
	chunk := make([][2]int, 0, ingestChunk)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		n, err := ing.append(chunk)
		total += int64(n)
		chunk = chunk[:0]
		return err
	}
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var e [2]int
		if err := json.Unmarshal(b, &e); err != nil {
			return total, badReqf("edge line %d: %v (want [u,v]); %d edges were applied", line, err, total)
		}
		chunk = append(chunk, e)
		if len(chunk) == ingestChunk {
			if err := flush(); err != nil {
				return total, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return total, badReqf("reading edge stream at line %d: %v; %d edges were applied", line, err, total)
	}
	if err := flush(); err != nil {
		return total, err
	}
	return total, nil
}

func (s *Server) handleIngestSeal(w http.ResponseWriter, r *http.Request) {
	root := stateOf(r).root()
	name := r.PathValue("name")
	// Sealing seeds the exact count — the expensive step; admit it
	// like a query.
	asp := root.Child("admission")
	err := s.lim.acquire(r.Context())
	asp.End()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	defer s.lim.release()
	ssp := root.Child("seal")
	snap, err := s.reg.SealIngest(name, ssp.Hook())
	ssp.End()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.nudgeCheckpoint()
	info := snapInfo(snap)
	s.writeOK(w, r, http.StatusOK, &info)
}

func (s *Server) handleIngestAbort(w http.ResponseWriter, r *http.Request) {
	sp := stateOf(r).root().Child("registry")
	err := s.reg.AbortIngest(r.PathValue("name"))
	sp.End()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
