package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"butterfly/client"
	"butterfly/serveapi"
)

// completeEdges returns the edge list of the complete bipartite graph
// K_{m,n} (C(m,2)·C(n,2) butterflies).
func completeEdges(m, n int) [][2]int {
	edges := make([][2]int, 0, m*n)
	for u := 0; u < m; u++ {
		for v := 0; v < n; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	return edges
}

// newTestServer spins up a Server behind httptest and returns it with
// a client pointed at it.
func newTestServer(t *testing.T, cfg Config) (*Server, *client.Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, client.New(ts.URL)
}

func registerK44(t *testing.T, c *client.Client) serveapi.GraphInfo {
	t.Helper()
	info, err := c.Register(context.Background(), serveapi.RegisterRequest{
		Name: "k44", M: 4, N: 4, Edges: completeEdges(4, 4),
	})
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	return info
}

func TestRegisterAndCount(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	info := registerK44(t, c)
	if info.Version != 1 || info.NumV1 != 4 || info.NumV2 != 4 || info.NumEdges != 16 {
		t.Fatalf("bad register info: %+v", info)
	}
	if info.Butterflies != 36 { // C(4,2)^2
		t.Fatalf("register butterflies = %d, want 36", info.Butterflies)
	}

	// Every algorithm and family member agrees.
	for _, req := range []serveapi.CountRequest{
		{},
		{Invariant: 3},
		{Invariant: 7, Threads: 2},
		{Algorithm: "wedge-hash"},
		{Algorithm: "spgemm", Threads: 2},
		{Hub: "always"},
		{Order: "degree-desc", BlockSize: 2},
	} {
		resp, err := c.Count(ctx, "k44", req)
		if err != nil {
			t.Fatalf("count %+v: %v", req, err)
		}
		if resp.Butterflies != 36 || resp.Version != 1 || resp.Graph != "k44" {
			t.Fatalf("count %+v = %+v, want 36 @ v1", req, resp)
		}
	}

	// Graph listing and info.
	graphs, err := c.Graphs(ctx)
	if err != nil || len(graphs) != 1 || graphs[0].Name != "k44" {
		t.Fatalf("graphs = %+v, %v", graphs, err)
	}
	if _, err := c.GraphInfo(ctx, "k44"); err != nil {
		t.Fatalf("info: %v", err)
	}
}

func TestQueryEndpoints(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	registerK44(t, c)

	vc, err := c.VertexCounts(ctx, "k44", serveapi.VertexCountsRequest{Side: "v1", Top: 2})
	if err != nil {
		t.Fatalf("vertex-counts: %v", err)
	}
	// Each V1 vertex of K_{4,4} is in C(3,1)*C(4,2)=18 butterflies;
	// total = 2 * 36 = 72.
	if vc.Total != 72 || len(vc.Vertices) != 2 || vc.Vertices[0].Count != 18 {
		t.Fatalf("vertex-counts = %+v", vc)
	}

	es, err := c.EdgeSupports(ctx, "k44", serveapi.EdgeSupportsRequest{Top: 3})
	if err != nil {
		t.Fatalf("edge-supports: %v", err)
	}
	if es.Total != 4*36 || len(es.Edges) != 3 || es.Edges[0].Count != 9 {
		t.Fatalf("edge-supports = %+v", es)
	}

	est, err := c.Estimate(ctx, "k44", serveapi.EstimateRequest{Strategy: "edges", Samples: 200, Seed: 7})
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	if est.Estimate <= 0 {
		t.Fatalf("estimate = %+v", est)
	}

	pl, err := c.Peel(ctx, "k44", serveapi.PeelRequest{Mode: "tip", K: 1, Side: "v1"})
	if err != nil {
		t.Fatalf("peel: %v", err)
	}
	if pl.EdgesRemaining != 16 || pl.Butterflies != 36 {
		t.Fatalf("peel = %+v", pl)
	}
	// Nothing is below k=1 in K(4,4), so the delta cascade settles in
	// zero rounds — the engine name still reports the default.
	if pl.Engine != "delta" || pl.Rounds != 0 {
		t.Fatalf("peel should default to the delta engine: %+v", pl)
	}
	// The recount engine answers identically (confluence) and reports
	// its own engine name and round count.
	plr, err := c.Peel(ctx, "k44", serveapi.PeelRequest{Mode: "tip", K: 1, Side: "v1", Engine: "recount"})
	if err != nil {
		t.Fatalf("peel recount: %v", err)
	}
	if plr.EdgesRemaining != pl.EdgesRemaining || plr.Butterflies != pl.Butterflies {
		t.Fatalf("engines disagree: delta %+v recount %+v", pl, plr)
	}
	if plr.Engine != "recount" || plr.Rounds < 1 {
		t.Fatalf("peel recount = %+v", plr)
	}
	// k beyond every tip number peels everything.
	pl, err = c.Peel(ctx, "k44", serveapi.PeelRequest{Mode: "wing", K: 1000})
	if err != nil {
		t.Fatalf("peel wing: %v", err)
	}
	if pl.EdgesRemaining != 0 || pl.Butterflies != 0 {
		t.Fatalf("peel wing k=1000 = %+v", pl)
	}
	if pl.Engine != "delta" || pl.Rounds < 1 {
		t.Fatalf("peeling everything should report at least one delta round: %+v", pl)
	}
}

func TestBadInputs(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	registerK44(t, c)

	wantStatus := func(err error, want int, what string) {
		t.Helper()
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("%s: err = %v, want APIError %d", what, err, want)
		}
		if apiErr.Status != want {
			t.Fatalf("%s: status = %d (%s), want %d", what, apiErr.Status, apiErr.Message, want)
		}
	}

	_, err := c.Count(ctx, "nope", serveapi.CountRequest{})
	wantStatus(err, http.StatusNotFound, "unknown graph")
	if !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("404 should unwrap to ErrNotFound, got %v", err)
	}

	_, err = c.Count(ctx, "k44", serveapi.CountRequest{Algorithm: "bogus"})
	wantStatus(err, http.StatusBadRequest, "bad algorithm")
	_, err = c.Count(ctx, "k44", serveapi.CountRequest{Invariant: 11})
	wantStatus(err, http.StatusBadRequest, "bad invariant")
	_, err = c.Count(ctx, "k44", serveapi.CountRequest{Algorithm: "spgemm", Invariant: 2})
	wantStatus(err, http.StatusBadRequest, "invariant with non-family")
	_, err = c.Count(ctx, "k44", serveapi.CountRequest{Hub: "sometimes"})
	wantStatus(err, http.StatusBadRequest, "bad hub")
	_, err = c.VertexCounts(ctx, "k44", serveapi.VertexCountsRequest{Side: "v3"})
	wantStatus(err, http.StatusBadRequest, "bad side")
	_, err = c.Estimate(ctx, "k44", serveapi.EstimateRequest{Strategy: "edges", Samples: -1})
	wantStatus(err, http.StatusBadRequest, "bad samples")
	_, err = c.Estimate(ctx, "k44", serveapi.EstimateRequest{Strategy: "guess"})
	wantStatus(err, http.StatusBadRequest, "bad strategy")
	_, err = c.Peel(ctx, "k44", serveapi.PeelRequest{Mode: "fin", K: 1})
	wantStatus(err, http.StatusBadRequest, "bad mode")
	_, err = c.Peel(ctx, "k44", serveapi.PeelRequest{Mode: "tip", K: -1})
	wantStatus(err, http.StatusBadRequest, "negative k")
	_, err = c.Peel(ctx, "k44", serveapi.PeelRequest{Mode: "tip", K: 1, Engine: "heapsort"})
	wantStatus(err, http.StatusBadRequest, "bad engine")
	_, err = c.Mutate(ctx, "k44", serveapi.MutateRequest{Inserts: [][2]int{{9, 0}}})
	wantStatus(err, http.StatusBadRequest, "out-of-range insert")
	_, err = c.Register(ctx, serveapi.RegisterRequest{Name: "k44", M: 2, N: 2, Edges: completeEdges(2, 2)})
	wantStatus(err, http.StatusConflict, "duplicate register")
	_, err = c.Register(ctx, serveapi.RegisterRequest{Name: ""})
	wantStatus(err, http.StatusBadRequest, "empty name")
	_, err = c.Register(ctx, serveapi.RegisterRequest{Name: "p", Path: "/etc/passwd"})
	wantStatus(err, http.StatusBadRequest, "path load disabled")
	_, err = c.Register(ctx, serveapi.RegisterRequest{Name: "d", Dataset: "no-such-dataset"})
	wantStatus(err, http.StatusBadRequest, "unknown dataset")

	// Malformed JSON body.
	s, _ := newTestServer(t, Config{})
	_ = s
	resp, err := http.Post(urlOf(t, c)+"/graphs/k44/count", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d, want 400", resp.StatusCode)
	}
}

// urlOf digs the base URL back out of the client (tests only).
func urlOf(t *testing.T, c *client.Client) string {
	t.Helper()
	return c.BaseURL()
}

func TestDeadlineExceeded504(t *testing.T) {
	s, c := newTestServer(t, Config{})
	registerK44(t, c)
	// The hook parks the request until its deadline fires, making the
	// 504 path deterministic regardless of machine speed.
	s.computeHook = func(ctx context.Context) { <-ctx.Done() }

	_, err := c.Count(context.Background(), "k44", serveapi.CountRequest{TimeoutMillis: 30})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("err = %v, want 504", err)
	}
	if !errors.Is(err, client.ErrDeadline) {
		t.Fatalf("504 should unwrap to ErrDeadline, got %v", err)
	}

	// Same for an abandoned-kernel endpoint.
	_, err = c.Peel(context.Background(), "k44", serveapi.PeelRequest{Mode: "tip", K: 1, TimeoutMillis: 30})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("peel err = %v, want 504", err)
	}
}

func TestLoadShedding429(t *testing.T) {
	s, c := newTestServer(t, Config{MaxInFlight: 1, NoQueue: true})
	registerK44(t, c)
	ctx := context.Background()

	entered := make(chan struct{})
	gate := make(chan struct{})
	s.computeHook = func(ctx context.Context) {
		select {
		case entered <- struct{}{}:
			<-gate
		default:
			// Later requests (after the gate opens) pass straight through.
		}
	}

	// Request A occupies the only slot...
	aDone := make(chan error, 1)
	go func() {
		_, err := c.Count(ctx, "k44", serveapi.CountRequest{})
		aDone <- err
	}()
	<-entered

	// ...so request B (different cache key — estimates are never
	// pre-warmed here) is shed.
	_, err := c.Estimate(ctx, "k44", serveapi.EstimateRequest{Strategy: "edges", Samples: 10, Seed: 1})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want 429", err)
	}
	if !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("429 should unwrap to ErrOverloaded, got %v", err)
	}

	close(gate)
	if err := <-aDone; err != nil {
		t.Fatalf("request A: %v", err)
	}
}

func TestResultCache(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	registerK44(t, c)

	get := func() string {
		resp, err := http.Post(urlOf(t, c)+"/graphs/k44/count", "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		return resp.Header.Get("X-Cache")
	}
	if xc := get(); xc != "miss" {
		t.Fatalf("first count X-Cache = %q, want miss", xc)
	}
	if xc := get(); xc != "hit" {
		t.Fatalf("second count X-Cache = %q, want hit", xc)
	}

	// The count key is shared across equivalent algorithm choices —
	// an Inv5 request hits the cache warmed by the auto request.
	resp, err := http.Post(urlOf(t, c)+"/graphs/k44/count", "application/json", strings.NewReader(`{"invariant":5,"threads":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if xc := resp.Header.Get("X-Cache"); xc != "hit" {
		t.Fatalf("equivalent-query X-Cache = %q, want hit", xc)
	}

	// A mutation bumps the version, so the next count misses.
	if _, err := c.Mutate(ctx, "k44", serveapi.MutateRequest{Deletes: [][2]int{{0, 0}}}); err != nil {
		t.Fatal(err)
	}
	if xc := get(); xc != "miss" {
		t.Fatalf("post-mutation X-Cache = %q, want miss", xc)
	}
}

func TestHealthzAndDraining(t *testing.T) {
	s, c := newTestServer(t, Config{})
	ctx := context.Background()
	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, %v", h, err)
	}
	s.Drain()
	_, err = c.Health(ctx)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("draining health err = %v, want 503", err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	registerK44(t, c)
	if _, err := c.Count(ctx, "k44", serveapi.CountRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Count(ctx, "k44", serveapi.CountRequest{}); err != nil {
		t.Fatal(err)
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`bfserved_requests_total{route="count",code="200"} 2`,
		"bfserved_request_seconds_bucket{le=\"+Inf\"}",
		"bfserved_request_seconds_count",
		"bfserved_cache_hits_total 1",
		"bfserved_cache_misses_total 1",
		"bfserved_cache_hit_ratio 0.5",
		"bfserved_queue_depth 0",
		"bfserved_in_flight",
		"bfserved_shed_total 0",
		`bfserved_graph_version{graph="k44"} 1`,
		`bfserved_graph_edges{graph="k44"} 16`,
		`bfserved_graph_butterflies{graph="k44"} 36`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestDropGraph(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	registerK44(t, c)
	if err := c.Drop(ctx, "k44"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Count(ctx, "k44", serveapi.CountRequest{}); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("count after drop = %v, want ErrNotFound", err)
	}
	if err := c.Drop(ctx, "k44"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("double drop = %v, want ErrNotFound", err)
	}
}

func TestLimiterQueueHonorsDeadline(t *testing.T) {
	l := newLimiter(1, 8)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := l.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire = %v, want DeadlineExceeded", err)
	}
	l.release()
	if err := l.acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("1"))
	c.put("b", []byte("2"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", []byte("3")) // evicts b (LRU)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should be evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should survive")
	}
	hits, misses, size := c.stats()
	if size != 2 || hits != 2 || misses != 1 {
		t.Fatalf("stats = %d/%d/%d", hits, misses, size)
	}
}

// TestCountAggField: family counts report the aggregation mode that
// actually ran (never "auto"), all modes agree on the count, baseline
// algorithms omit the field, and bad modes answer 400.
func TestCountAggField(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	registerK44(t, c)

	for _, agg := range []string{"", "auto", "sort", "hash", "hist", "batch"} {
		resp, err := c.Count(ctx, "k44", serveapi.CountRequest{Agg: agg})
		if err != nil {
			t.Fatalf("agg=%q: %v", agg, err)
		}
		if resp.Butterflies != 36 {
			t.Fatalf("agg=%q: %d butterflies, want 36", agg, resp.Butterflies)
		}
		switch agg {
		case "", "auto":
			if resp.Agg == "" || resp.Agg == "auto" {
				t.Fatalf("auto request must report the concrete mode, got %q", resp.Agg)
			}
		default:
			if resp.Agg != agg {
				t.Fatalf("agg=%q reported %q", agg, resp.Agg)
			}
		}
	}

	resp, err := c.Count(ctx, "k44", serveapi.CountRequest{Algorithm: "wedge-hash"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Agg != "" {
		t.Fatalf("baseline count must omit agg, got %q", resp.Agg)
	}

	if _, err := c.Count(ctx, "k44", serveapi.CountRequest{Agg: "bogus"}); err == nil {
		t.Fatal("bad agg accepted")
	}
	if _, err := c.Count(ctx, "k44", serveapi.CountRequest{Agg: "sort", Algorithm: "spgemm"}); err == nil {
		t.Fatal("agg with baseline algorithm accepted")
	}
}

// TestResultCacheAggKeys: requests naming different aggregation modes
// produce different response bodies (the reported mode), so they must
// not share a cache entry — while repeats of the same mode still hit.
func TestResultCacheAggKeys(t *testing.T) {
	_, c := newTestServer(t, Config{})
	registerK44(t, c)

	post := func(body string) string {
		resp, err := http.Post(urlOf(t, c)+"/graphs/k44/count", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d for %s", resp.StatusCode, body)
		}
		return resp.Header.Get("X-Cache")
	}
	if xc := post(`{}`); xc != "miss" {
		t.Fatalf("first auto count X-Cache = %q, want miss", xc)
	}
	// An explicit mode is a different response body: own entry.
	if xc := post(`{"agg":"sort"}`); xc != "miss" {
		t.Fatalf("first sort count X-Cache = %q, want miss", xc)
	}
	if xc := post(`{"agg":"sort"}`); xc != "hit" {
		t.Fatalf("second sort count X-Cache = %q, want hit", xc)
	}
	// The explicit "auto" spelling shares the default's entry.
	if xc := post(`{"agg":"auto"}`); xc != "hit" {
		t.Fatalf("explicit auto X-Cache = %q, want hit", xc)
	}
	// Other performance knobs still share the mode's entry.
	if xc := post(`{"agg":"sort","threads":2,"invariant":5}`); xc != "hit" {
		t.Fatalf("equivalent sort query X-Cache = %q, want hit", xc)
	}
}
