package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"butterfly/serveapi"
)

// rawPost fires a raw POST (bypassing the /v1-only client) and returns
// the response with its body read.
func rawDo(t *testing.T, method, url string, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// decodeEnvelope asserts the body is a /v1 error envelope and returns
// its detail.
func decodeEnvelope(t *testing.T, body []byte) serveapi.ErrorDetail {
	t.Helper()
	var env serveapi.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("not an envelope: %v\nbody: %s", err, body)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %s", body)
	}
	return env.Error
}

// TestV1ErrorEnvelope pins the uniform /v1 error surface: every 4xx
// answers {error:{code,message}} with the right machine code, while
// the legacy alias keeps the old {status,error} body and advertises
// its deprecation.
func TestV1ErrorEnvelope(t *testing.T) {
	_, c := newTestServer(t, Config{})
	base := urlOf(t, c)
	registerK44(t, c)

	t.Run("not_found", func(t *testing.T) {
		resp, body := rawDo(t, "GET", base+"/v1/graphs/nope", "")
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", resp.StatusCode)
		}
		if det := decodeEnvelope(t, body); det.Code != serveapi.CodeNotFound {
			t.Fatalf("code = %q, want %q", det.Code, serveapi.CodeNotFound)
		}
	})

	t.Run("invalid_argument", func(t *testing.T) {
		resp, body := rawDo(t, "POST", base+"/v1/graphs/k44/count", `{"algorithm":"bogus"}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		if det := decodeEnvelope(t, body); det.Code != serveapi.CodeInvalidArgument {
			t.Fatalf("code = %q, want %q", det.Code, serveapi.CodeInvalidArgument)
		}
	})

	t.Run("already_exists", func(t *testing.T) {
		resp, body := rawDo(t, "POST", base+"/v1/graphs",
			`{"name":"k44","m":2,"n":2,"edges":[[0,0]]}`)
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("status = %d, want 409", resp.StatusCode)
		}
		if det := decodeEnvelope(t, body); det.Code != serveapi.CodeAlreadyExists {
			t.Fatalf("code = %q, want %q", det.Code, serveapi.CodeAlreadyExists)
		}
	})

	t.Run("legacy keeps old shape and Deprecation header", func(t *testing.T) {
		resp, body := rawDo(t, "GET", base+"/graphs/nope", "")
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", resp.StatusCode)
		}
		if resp.Header.Get("Deprecation") != "true" {
			t.Fatalf("legacy response missing Deprecation header")
		}
		var legacy serveapi.Error
		if err := json.Unmarshal(body, &legacy); err != nil || legacy.Status != 404 || legacy.Message == "" {
			t.Fatalf("legacy body = %s (err %v), want {status,error}", body, err)
		}
		if bytes.Contains(body, []byte(`"code"`)) {
			t.Fatalf("legacy body leaked the envelope: %s", body)
		}
	})

	t.Run("v1 has no Deprecation header", func(t *testing.T) {
		resp, _ := rawDo(t, "GET", base+"/v1/graphs", "")
		if resp.Header.Get("Deprecation") != "" {
			t.Fatalf("/v1 response carries Deprecation header")
		}
	})
}

// TestOverloadedEnvelope checks the 429 path: envelope code
// "overloaded" with a retry_after_ms hint and a Retry-After header.
func TestOverloadedEnvelope(t *testing.T) {
	s, c := newTestServer(t, Config{MaxInFlight: 1, NoQueue: true})
	base := urlOf(t, c)
	registerK44(t, c)

	hold := make(chan struct{})
	release := make(chan struct{})
	s.computeHook = func(ctx context.Context) {
		close(hold)
		<-release
	}
	defer close(release)

	done := make(chan struct{})
	go func() {
		defer close(done)
		rawDo(t, "POST", base+"/v1/graphs/k44/count", `{"invariant":1}`)
	}()
	<-hold

	// The probe must NOT share the leader's cache key: family counts
	// with the default aggregation all coalesce onto one flight (their
	// bodies are byte-interchangeable), so an explicit agg forces a
	// distinct execution that actually hits the full queue.
	resp, body := rawDo(t, "POST", base+"/v1/graphs/k44/count", `{"agg":"sort"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	det := decodeEnvelope(t, body)
	if det.Code != serveapi.CodeOverloaded {
		t.Fatalf("code = %q, want %q", det.Code, serveapi.CodeOverloaded)
	}
	if det.RetryAfterMS <= 0 {
		t.Fatalf("retry_after_ms = %d, want > 0", det.RetryAfterMS)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 missing Retry-After header")
	}
	release <- struct{}{}
	<-done
}

// countSpans counts named spans in a wire trace (root included).
func countSpans(tr *serveapi.TraceSpan) int {
	if tr == nil {
		return 0
	}
	n := 0
	var walk func(serveapi.TraceSpan)
	walk = func(s serveapi.TraceSpan) {
		if s.Name != "" {
			n++
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(*tr)
	return n
}

func stageNames(tr *serveapi.TraceSpan) map[string]bool {
	names := map[string]bool{}
	if tr == nil {
		return names
	}
	var walk func(serveapi.TraceSpan)
	walk = func(s serveapi.TraceSpan) {
		names[s.Name] = true
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(*tr)
	return names
}

// TestDebugTraces: ?debug=true on /v1 attaches the span tree to both
// success and error responses, with at least three named stages and
// the kernel's algorithm sub-stages nested under "kernel".
func TestDebugTraces(t *testing.T) {
	_, c := newTestServer(t, Config{})
	base := urlOf(t, c)
	registerK44(t, c)

	t.Run("count 2xx", func(t *testing.T) {
		resp, body := rawDo(t, "POST", base+"/v1/graphs/k44/count?debug=true", `{}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200\n%s", resp.StatusCode, body)
		}
		var cr serveapi.CountResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		if cr.Butterflies != 36 {
			t.Fatalf("butterflies = %d, want 36", cr.Butterflies)
		}
		if cr.Trace == nil {
			t.Fatalf("debug response missing trace: %s", body)
		}
		if n := countSpans(cr.Trace); n < 3 {
			t.Fatalf("trace has %d named spans, want >= 3: %s", n, body)
		}
		names := stageNames(cr.Trace)
		for _, want := range []string{"request", "parse", "registry", "admission", "kernel", "core.count"} {
			if !names[want] {
				t.Fatalf("trace missing stage %q; have %v", want, names)
			}
		}
	})

	t.Run("peel 2xx has engine stages", func(t *testing.T) {
		resp, body := rawDo(t, "POST", base+"/v1/graphs/k44/peel?debug=true", `{"mode":"tip","k":1}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200\n%s", resp.StatusCode, body)
		}
		var pr serveapi.PeelResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		names := stageNames(pr.Trace)
		if !names["kernel"] || !names["peel.seed"] {
			t.Fatalf("peel trace missing kernel/peel.seed stages; have %v", names)
		}
	})

	t.Run("error carries trace", func(t *testing.T) {
		resp, body := rawDo(t, "GET", base+"/v1/graphs/nope?debug=true", "")
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", resp.StatusCode)
		}
		det := decodeEnvelope(t, body)
		if det.Trace == nil {
			t.Fatalf("debug error missing trace: %s", body)
		}
		if n := countSpans(det.Trace); n < 3 {
			t.Fatalf("error trace has %d named spans, want >= 3: %s", n, body)
		}
	})

	t.Run("non-debug has no trace", func(t *testing.T) {
		_, body := rawDo(t, "POST", base+"/v1/graphs/k44/count", `{}`)
		if bytes.Contains(body, []byte(`"trace"`)) {
			t.Fatalf("non-debug response leaked a trace: %s", body)
		}
	})

	t.Run("debug ignored on legacy surface", func(t *testing.T) {
		_, body := rawDo(t, "POST", base+"/graphs/k44/count?debug=true", `{}`)
		if bytes.Contains(body, []byte(`"trace"`)) {
			t.Fatalf("legacy response honored debug: %s", body)
		}
	})
}

// TestCacheIsolation pins the cache-key fix: legacy and /v1 responses
// are cached under separate keys, and ?debug=true bypasses the cache
// in both directions (a debug response is neither served from nor
// stored into the cache).
func TestCacheIsolation(t *testing.T) {
	_, c := newTestServer(t, Config{})
	base := urlOf(t, c)
	registerK44(t, c)

	// Warm the /v1 entry.
	r1, _ := rawDo(t, "POST", base+"/v1/graphs/k44/count", `{}`)
	if got := r1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first /v1 count X-Cache = %q, want miss", got)
	}
	r2, _ := rawDo(t, "POST", base+"/v1/graphs/k44/count", `{}`)
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second /v1 count X-Cache = %q, want hit", got)
	}

	// The legacy surface must not see the /v1 entry.
	r3, _ := rawDo(t, "POST", base+"/graphs/k44/count", `{}`)
	if got := r3.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first legacy count X-Cache = %q, want miss (separate key)", got)
	}
	r4, _ := rawDo(t, "POST", base+"/graphs/k44/count", `{}`)
	if got := r4.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second legacy count X-Cache = %q, want hit", got)
	}

	// Debug never reads the warm cache (the response must recompute and
	// carry a trace) and never writes (the cached body stays traceless).
	rd, body := rawDo(t, "POST", base+"/v1/graphs/k44/count?debug=true", `{}`)
	if got := rd.Header.Get("X-Cache"); got == "hit" {
		t.Fatalf("debug request served from cache")
	}
	if !bytes.Contains(body, []byte(`"trace"`)) {
		t.Fatalf("debug response missing trace: %s", body)
	}
	r5, body5 := rawDo(t, "POST", base+"/v1/graphs/k44/count", `{}`)
	if got := r5.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("post-debug /v1 count X-Cache = %q, want hit", got)
	}
	if bytes.Contains(body5, []byte(`"trace"`)) {
		t.Fatalf("debug response poisoned the cache: %s", body5)
	}
}

// TestObsMetricsHistograms drives a concurrent mixed burst and then
// scrapes /metrics, asserting the new histogram families are present,
// their bucket counts are monotone in le, and +Inf matches _count —
// the Prometheus exposition invariants. Run under -race this also
// exercises the registry/histogram concurrency.
func TestObsMetricsHistograms(t *testing.T) {
	_, c := newTestServer(t, Config{})
	base := urlOf(t, c)
	registerK44(t, c)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				switch (i + j) % 4 {
				case 0:
					rawDo(t, "POST", base+"/v1/graphs/k44/count", `{}`)
				case 1:
					rawDo(t, "GET", base+"/v1/healthz", "")
				case 2:
					rawDo(t, "GET", base+"/graphs/nope", "") // legacy 404
				case 3:
					rawDo(t, "POST", base+"/v1/graphs/k44/count?debug=true", `{}`)
				}
			}
		}(i)
	}
	wg.Wait()

	_, body := rawDo(t, "GET", base+"/metrics", "")
	text := string(body)
	for _, fam := range []string{
		"bfserved_route_seconds", "bfserved_stage_seconds",
		"bfserved_response_bytes", "bfserved_slow_queries_total",
	} {
		if !strings.Contains(text, fam) {
			t.Fatalf("/metrics missing family %s", fam)
		}
	}
	// Both surfaces must appear as route labels.
	if !strings.Contains(text, `api="v1"`) || !strings.Contains(text, `api="legacy"`) {
		t.Fatalf("/metrics missing api labels:\n%s", text)
	}
	// The flat legacy metrics must survive untouched.
	for _, fam := range []string{"bfserved_requests_total", "bfserved_request_seconds_bucket"} {
		if !strings.Contains(text, fam) {
			t.Fatalf("/metrics lost legacy family %s", fam)
		}
	}
	checkHistogramInvariants(t, text, "bfserved_route_seconds")
	checkHistogramInvariants(t, text, "bfserved_stage_seconds")
}

// checkHistogramInvariants parses one histogram family out of the
// exposition text and asserts per-series bucket monotonicity and
// +Inf == count.
func checkHistogramInvariants(t *testing.T, text, fam string) {
	t.Helper()
	bucketRe := regexp.MustCompile(`^` + fam + `_bucket\{(.*)le="([^"]+)"\} (\d+)$`)
	countRe := regexp.MustCompile(`^` + fam + `_count(?:\{(.*)\})? (\d+)$`)
	type seriesState struct {
		last uint64
		inf  uint64
	}
	series := map[string]*seriesState{}
	counts := map[string]uint64{}
	for _, line := range strings.Split(text, "\n") {
		if m := bucketRe.FindStringSubmatch(line); m != nil {
			key := strings.TrimSuffix(m[1], ",")
			v, _ := strconv.ParseUint(m[3], 10, 64)
			st, ok := series[key]
			if !ok {
				st = &seriesState{}
				series[key] = st
			}
			if v < st.last {
				t.Fatalf("%s: bucket counts not monotone at %s", fam, line)
			}
			st.last = v
			if m[2] == "+Inf" {
				st.inf = v
			}
		} else if m := countRe.FindStringSubmatch(line); m != nil {
			v, _ := strconv.ParseUint(m[2], 10, 64)
			counts[m[1]] = v
		}
	}
	if len(series) == 0 {
		t.Fatalf("%s: no bucket series found", fam)
	}
	var total uint64
	for key, st := range series {
		if st.inf == 0 && st.last == 0 {
			continue
		}
		total += st.inf
		_ = key
	}
	var countTotal uint64
	for _, v := range counts {
		countTotal += v
	}
	if total != countTotal {
		t.Fatalf("%s: sum of +Inf buckets %d != sum of counts %d", fam, total, countTotal)
	}
	if countTotal == 0 {
		t.Fatalf("%s: no observations recorded", fam)
	}
}

// syncBuffer is a concurrency-safe bytes.Buffer for the slow-query
// writer (requests finish concurrently).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestSlowQueryLog runs with a zero threshold (log everything) and
// checks each emitted line is well-formed JSON carrying the route,
// status and a non-empty trace.
func TestSlowQueryLog(t *testing.T) {
	buf := &syncBuffer{}
	_, c := newTestServer(t, Config{SlowQueryLog: buf, SlowQueryThreshold: 0})
	base := urlOf(t, c)
	registerK44(t, c)

	rawDo(t, "POST", base+"/v1/graphs/k44/count", `{}`)
	rawDo(t, "GET", base+"/v1/graphs/nope", "")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 3 { // register + count + 404
		t.Fatalf("slow log has %d lines, want >= 3:\n%s", len(lines), buf.String())
	}
	sawCount, saw404 := false, false
	for _, line := range lines {
		var e slowEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("slow log line is not JSON: %v\n%s", err, line)
		}
		if e.Route == "" || e.TS == "" || e.Method == "" || e.Trace.Name == "" {
			t.Fatalf("slow log entry missing fields: %s", line)
		}
		if e.Route == "count" && e.Status == http.StatusOK && e.API == "v1" {
			sawCount = true
		}
		if e.Status == http.StatusNotFound {
			saw404 = true
		}
	}
	if !sawCount || !saw404 {
		t.Fatalf("slow log missing expected entries (count=%v, 404=%v):\n%s",
			sawCount, saw404, buf.String())
	}
}

// TestPprofGate: the profiling endpoints exist only when enabled.
func TestPprofGate(t *testing.T) {
	_, cOn := newTestServer(t, Config{EnablePprof: true})
	resp, _ := rawDo(t, "GET", urlOf(t, cOn)+"/debug/pprof/", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof enabled: status = %d, want 200", resp.StatusCode)
	}

	_, cOff := newTestServer(t, Config{})
	resp, _ = rawDo(t, "GET", urlOf(t, cOff)+"/debug/pprof/", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof disabled: status = %d, want 404", resp.StatusCode)
	}
}

// TestV1AndLegacyBodiesMatch: apart from errors and the debug knob,
// the two surfaces answer byte-identical bodies — the alias really is
// an alias.
func TestV1AndLegacyBodiesMatch(t *testing.T) {
	_, c := newTestServer(t, Config{NoCache: true})
	base := urlOf(t, c)
	registerK44(t, c)

	for _, p := range []string{"/graphs/k44/count", "/graphs/k44/vertex-counts", "/graphs/k44/edge-supports"} {
		_, legacy := rawDo(t, "POST", base+p, `{}`)
		_, v1 := rawDo(t, "POST", base+"/v1"+p, `{}`)
		// elapsed_ms can differ between runs; normalize it.
		norm := regexp.MustCompile(`"elapsed_ms":\d+`)
		l := norm.ReplaceAllString(string(legacy), `"elapsed_ms":0`)
		v := norm.ReplaceAllString(string(v1), `"elapsed_ms":0`)
		if l != v {
			t.Fatalf("surfaces diverge on %s:\nlegacy: %s\nv1:     %s", p, l, v)
		}
	}
}
