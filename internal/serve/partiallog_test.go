package serve

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"butterfly"
	"butterfly/client"
	"butterfly/serveapi"
)

// getPartial fetches /v1/internal/partial/{name} with the given raw
// query and returns status, body and the partial headers.
func getPartial(t *testing.T, base, name, query string) (status int, body []byte, version, epoch uint64, kind, xcache string) {
	t.Helper()
	url := base + "/v1/internal/partial/" + name
	if query != "" {
		url += "?" + query
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	version, _ = strconv.ParseUint(resp.Header.Get(VersionHeader), 10, 64)
	epoch, _ = strconv.ParseUint(resp.Header.Get(PartialEpochHeader), 10, 64)
	return resp.StatusCode, body, version, epoch, resp.Header.Get(PartialKindHeader), resp.Header.Get("X-Cache")
}

// TestPartialCacheKeyIncludesAgg is the regression test for the cache
// key aliasing bug: two requests that resolve to different aggregation
// modes must not share a cached body, while repeats of the same mode
// must hit.
func TestPartialCacheKeyIncludesAgg(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := client.New(ts.URL)
	registerK44(t, c)

	status, sortBody, _, _, _, xc := getPartial(t, ts.URL, "k44", "agg=sort")
	if status != http.StatusOK || xc != "miss" {
		t.Fatalf("first agg=sort: status %d, X-Cache %q (want 200 miss)", status, xc)
	}
	if status, _, _, _, _, xc = getPartial(t, ts.URL, "k44", "agg=sort"); xc != "hit" {
		t.Fatalf("repeat agg=sort: status %d, X-Cache %q (want hit)", status, xc)
	}
	status, hashBody, _, _, _, xc := getPartial(t, ts.URL, "k44", "agg=hash")
	if status != http.StatusOK || xc != "miss" {
		t.Fatalf("first agg=hash: status %d, X-Cache %q (want 200 miss — agg missing from cache key?)", status, xc)
	}
	if _, _, _, _, _, xc = getPartial(t, ts.URL, "k44", "agg=hash"); xc != "hit" {
		t.Fatalf("repeat agg=hash: X-Cache %q (want hit)", xc)
	}

	// Different cache entries, same semantics: both bodies decode to
	// the same partial map.
	_, p1, err := serveapi.DecodePartial(sortBody)
	if err != nil {
		t.Fatal(err)
	}
	_, p2, err := serveapi.DecodePartial(hashBody)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != len(p2) {
		t.Fatalf("agg=sort and agg=hash partials differ: %d vs %d entries", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("partials diverge at %d: %+v vs %+v", i, p1[i], p2[i])
		}
	}

	if status, _, _, _, _, _ := getPartial(t, ts.URL, "k44", "agg=bogus"); status != http.StatusBadRequest {
		t.Fatalf("agg=bogus: status %d, want 400", status)
	}
}

// TestPartialDeltaSync drives the full → mutate → `?since=` lifecycle
// over HTTP and checks the delta frame re-derives exactly the partials
// a fresh full export reports.
func TestPartialDeltaSync(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := client.New(ts.URL)
	registerK44(t, c)
	ctx := context.Background()

	// First fetch: a full frame that activates the delta log.
	status, body, v1, epoch, kind, _ := getPartial(t, ts.URL, "k44", "")
	if status != http.StatusOK || kind != serveapi.PartialFrameFull {
		t.Fatalf("first fetch: status %d kind %q", status, kind)
	}
	if epoch == 0 {
		t.Fatal("full reply carries no epoch — delta log not activated?")
	}
	_, pinned, err := serveapi.DecodePartial(body)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate twice.
	if _, err := c.Mutate(ctx, "k44", serveapi.MutateRequest{Deletes: [][2]int{{0, 0}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Mutate(ctx, "k44", serveapi.MutateRequest{Inserts: [][2]int{{0, 0}}, Deletes: [][2]int{{3, 3}}}); err != nil {
		t.Fatal(err)
	}

	// Delta sync from v1: a delta frame whose application matches a
	// fresh full export.
	q := "since=" + strconv.FormatUint(v1, 10) + "&epoch=" + strconv.FormatUint(epoch, 10)
	status, body, v3, epoch2, kind, _ := getPartial(t, ts.URL, "k44", q)
	if status != http.StatusOK || kind != serveapi.PartialFrameDelta {
		t.Fatalf("since fetch: status %d kind %q (want delta)", status, kind)
	}
	if epoch2 != epoch {
		t.Fatalf("delta reply epoch %d, want %d", epoch2, epoch)
	}
	from, to, delta, err := serveapi.DecodePartialDelta(body)
	if err != nil {
		t.Fatal(err)
	}
	if from != v1 || to != v3 || v3 != v1+2 {
		t.Fatalf("delta spans %d→%d (header v%d), want %d→%d", from, to, v3, v1, v1+2)
	}
	applied, err := butterfly.ApplyWedgePartialDelta(pinned, delta)
	if err != nil {
		t.Fatal(err)
	}
	_, fresh, _, _, _, _ := getPartial(t, ts.URL, "k44", "debug=true")
	_, want, err := serveapi.DecodePartial(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != len(want) {
		t.Fatalf("applied partial has %d entries, fresh full has %d", len(applied), len(want))
	}
	for i := range applied {
		if applied[i] != want[i] {
			t.Fatalf("applied diverges at %d: %+v vs %+v", i, applied[i], want[i])
		}
	}

	// since == current version: an empty "noop" delta.
	q = "since=" + strconv.FormatUint(v3, 10) + "&epoch=" + strconv.FormatUint(epoch, 10)
	_, body, _, _, kind, _ = getPartial(t, ts.URL, "k44", q)
	if kind != serveapi.PartialFrameDelta {
		t.Fatalf("noop since: kind %q", kind)
	}
	if from, to, delta, err := serveapi.DecodePartialDelta(body); err != nil || from != to || len(delta) != 0 {
		t.Fatalf("noop since: %d→%d, %d entries, err %v", from, to, len(delta), err)
	}

	// Wrong epoch: fall back to a full frame re-basing the client.
	q = "since=" + strconv.FormatUint(v1, 10) + "&epoch=" + strconv.FormatUint(epoch+1, 10)
	if _, _, _, _, kind, _ = getPartial(t, ts.URL, "k44", q); kind != serveapi.PartialFrameFull {
		t.Fatalf("wrong epoch: kind %q, want full fallback", kind)
	}

	// Malformed since values are 400s.
	for _, bad := range []string{"since=0", "since=abc", "since=1&epoch=x"} {
		if status, _, _, _, _, _ := getPartial(t, ts.URL, "k44", bad); status != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, status)
		}
	}
}

// TestPartialDeltaEviction shrinks the history bounds so mutations
// evict it, and checks `?since=` falls back to a full frame.
func TestPartialDeltaEviction(t *testing.T) {
	oldV := partialLogMaxVersions
	partialLogMaxVersions = 2
	defer func() { partialLogMaxVersions = oldV }()

	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := client.New(ts.URL)
	registerK44(t, c)
	ctx := context.Background()

	_, _, v1, epoch, _, _ := getPartial(t, ts.URL, "k44", "")
	for i := 0; i < 4; i++ {
		pair := [2]int{i % 4, (i + 1) % 4}
		if _, err := c.Mutate(ctx, "k44", serveapi.MutateRequest{Deletes: [][2]int{pair}}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Mutate(ctx, "k44", serveapi.MutateRequest{Inserts: [][2]int{pair}}); err != nil {
			t.Fatal(err)
		}
	}
	q := "since=" + strconv.FormatUint(v1, 10) + "&epoch=" + strconv.FormatUint(epoch, 10)
	_, _, _, _, kind, _ := getPartial(t, ts.URL, "k44", q)
	if kind != serveapi.PartialFrameFull {
		t.Fatalf("evicted history answered kind %q, want full fallback", kind)
	}
	// Recent history is still intact.
	info, err := c.GraphInfo(ctx, "k44")
	if err != nil {
		t.Fatal(err)
	}
	q = "since=" + strconv.FormatUint(info.Version-1, 10) + "&epoch=" + strconv.FormatUint(epoch, 10)
	if _, _, _, _, kind, _ = getPartial(t, ts.URL, "k44", q); kind != serveapi.PartialFrameDelta {
		t.Fatalf("recent since answered kind %q, want delta", kind)
	}
}

// TestPartialLogHammer runs mutators against a graph while a verifier
// tracks the partial map by delta sync at the registry level, checking
// at every observed version that the delta-applied partials equal the
// snapshot's freshly derived ones. Run with -race this also exercises
// the publish-vs-read locking of the partial log.
func TestPartialLogHammer(t *testing.T) {
	const m, n = 16, 16
	rng := rand.New(rand.NewSource(42))
	var edges [][2]int
	for u := 0; u < m; u++ {
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	g, err := butterfly.FromEdges(m, n, edges)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if _, err := reg.Register("g", g, false); err != nil {
		t.Fatal(err)
	}

	snap, epoch, err := reg.EnablePartialLog("g")
	if err != nil {
		t.Fatal(err)
	}
	pinned := snap.Graph.WedgePartials()
	pinnedV := snap.Version

	const workers, batches = 4, 120
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < batches; i++ {
				var ins, del [][2]int
				for k := rng.Intn(4); k >= 0; k-- {
					e := [2]int{rng.Intn(m), rng.Intn(n)}
					if rng.Intn(2) == 0 {
						ins = append(ins, e)
					} else {
						del = append(del, e)
					}
				}
				if _, err := reg.Mutate("g", ins, del); err != nil {
					t.Errorf("mutate: %v", err)
					return
				}
			}
		}(int64(w) + 1)
	}
	go func() { wg.Wait(); close(done) }()

	verify := func() {
		cur, err := reg.Get("g")
		if err != nil {
			t.Fatal(err)
		}
		delta, ok := reg.PartialDeltaSince("g", epoch, pinnedV, cur.Version)
		if !ok {
			// History evicted under us (not expected at default bounds,
			// but legal): re-pin from the snapshot.
			pinned, pinnedV = cur.Graph.WedgePartials(), cur.Version
			return
		}
		applied, err := butterfly.ApplyWedgePartialDelta(pinned, delta)
		if err != nil {
			t.Fatalf("apply at v%d→v%d: %v", pinnedV, cur.Version, err)
		}
		want := cur.Graph.WedgePartials()
		if len(applied) != len(want) {
			t.Fatalf("v%d: applied %d entries, fresh %d", cur.Version, len(applied), len(want))
		}
		for i := range applied {
			if applied[i] != want[i] {
				t.Fatalf("v%d: entry %d: applied %+v, fresh %+v", cur.Version, i, applied[i], want[i])
			}
		}
		pinned, pinnedV = applied, cur.Version
	}

	for {
		select {
		case <-done:
			verify() // final state
			return
		default:
			verify()
		}
	}
}
