package obsv

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceNesting(t *testing.T) {
	tr := NewTrace("request")
	reg := tr.Root().Child("registry")
	time.Sleep(time.Millisecond)
	reg.End()

	kernel := tr.Root().Child("kernel")
	kernel.Stage("core.count", 2*time.Millisecond)
	r0 := kernel.Child("peel.round[0]")
	r0.End()
	kernel.End()
	tr.Stage("render", 500*time.Microsecond)

	n := tr.Snapshot()
	if n.Name != "request" {
		t.Fatalf("root name = %q", n.Name)
	}
	if len(n.Children) != 3 {
		t.Fatalf("root children = %d, want 3: %+v", len(n.Children), n)
	}
	if n.Children[0].Name != "registry" || n.Children[1].Name != "kernel" || n.Children[2].Name != "render" {
		t.Fatalf("child order wrong: %+v", n.Children)
	}
	k := n.Children[1]
	if len(k.Children) != 2 || k.Children[0].Name != "core.count" || k.Children[1].Name != "peel.round[0]" {
		t.Fatalf("kernel children: %+v", k.Children)
	}
	if n.Children[0].DurUS < 900 {
		t.Fatalf("registry dur %dus, want ≥ ~1ms", n.Children[0].DurUS)
	}
	if k.Children[0].DurUS < 1900 || k.Children[0].DurUS > 2100 {
		t.Fatalf("stage dur %dus, want ~2000", k.Children[0].DurUS)
	}
	// Stage start offsets are monotonic and within the trace.
	if k.Children[0].StartUS < 0 || n.Children[2].StartUS < n.Children[0].StartUS {
		t.Fatalf("offsets wrong: %+v", n)
	}
	if got := n.NumStages(); got != 6 { // root + registry + kernel + 2 + render
		t.Fatalf("NumStages = %d, want 6", got)
	}
}

func TestTraceOpenSpanReportsLiveDuration(t *testing.T) {
	tr := NewTrace("r")
	_ = tr.Root().Child("open")
	time.Sleep(time.Millisecond)
	n := tr.Snapshot()
	if len(n.Children) != 1 || n.Children[0].DurUS < 900 {
		t.Fatalf("open span should report live duration: %+v", n)
	}
	// Root itself is open too.
	if n.DurUS < 900 {
		t.Fatalf("root live duration = %dus", n.DurUS)
	}
}

func TestTraceChildCap(t *testing.T) {
	tr := NewTrace("r")
	sp := tr.Root().Child("kernel")
	for i := 0; i < MaxChildren+10; i++ {
		sp.Stage(fmt.Sprintf("peel.round[%d]", i), time.Microsecond)
	}
	sp.End()
	n := tr.Snapshot()
	k := n.Children[0]
	if len(k.Children) != MaxChildren {
		t.Fatalf("children = %d, want cap %d", len(k.Children), MaxChildren)
	}
	if k.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", k.Dropped)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.Stage("x", time.Second)
	if tr.Elapsed() != 0 {
		t.Fatal("nil Elapsed")
	}
	sp := tr.Root()
	if sp != nil {
		t.Fatal("nil trace root should be nil span")
	}
	sp.Stage("x", 0)
	sp.Child("y").End()
	if sp.Hook() != nil {
		t.Fatal("nil span Hook should be nil")
	}
	if n := tr.Snapshot(); n.Name != "" || len(tr.Stages()) != 0 {
		t.Fatalf("nil snapshot: %+v", n)
	}
}

func TestTraceConcurrentStages(t *testing.T) {
	tr := NewTrace("r")
	sp := tr.Root().Child("kernel")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp.Stage(fmt.Sprintf("w%d", i), time.Microsecond)
				_ = tr.Snapshot()
			}
		}(i)
	}
	wg.Wait()
	sp.End()
	n := tr.Snapshot()
	if got := len(n.Children[0].Children) + n.Children[0].Dropped; got != 800 {
		t.Fatalf("recorded+dropped = %d, want 800", got)
	}
}

func TestStages(t *testing.T) {
	tr := NewTrace("r")
	tr.Stage("admission", 3*time.Millisecond)
	k := tr.Root().Child("kernel")
	k.Stage("inner", time.Millisecond) // nested: not a top-level stage
	k.End()
	st := tr.Stages()
	if len(st) != 2 || st[0].Name != "admission" || st[1].Name != "kernel" {
		t.Fatalf("stages = %+v", st)
	}
	if st[0].Dur < 2900*time.Microsecond || st[0].Dur > 3100*time.Microsecond {
		t.Fatalf("admission dur = %v", st[0].Dur)
	}
}
