package obsv

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 25})
	// Prometheus `le` semantics: a value equal to an upper bound lands
	// in that bucket; just above goes to the next.
	h.Observe(1)           // bucket le=1
	h.Observe(1.0000001)   // bucket le=5
	h.Observe(5)           // bucket le=5
	h.Observe(25)          // bucket le=25
	h.Observe(26)          // +Inf
	h.Observe(-3)          // le=1 (below the first bound)
	h.Observe(math.Inf(1)) // +Inf

	cum, sum, count := h.snapshot()
	want := []uint64{2, 4, 5, 7} // cumulative
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (all: %v)", i, cum[i], w, cum)
		}
	}
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}
	if !math.IsInf(sum, 1) { // Inf observation dominates the sum
		t.Fatalf("sum = %g", sum)
	}
}

func TestHistogramSumAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 40)) // uniform 0..39
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	wantSum := 0.0
	for i := 0; i < 100; i++ {
		wantSum += float64(i % 40)
	}
	if h.Sum() != wantSum {
		t.Fatalf("sum = %g, want %g", h.Sum(), wantSum)
	}
	// Uniform 0..39: the median is ~20, p99 near the top of the last
	// finite bucket. Interpolation is approximate; allow slack of one
	// bucket width.
	if q := h.Quantile(0.5); q < 10 || q > 30 {
		t.Fatalf("p50 = %g, want ~20", q)
	}
	if q := h.Quantile(0.99); q < 30 || q > 40 {
		t.Fatalf("p99 = %g, want ~40", q)
	}
	if q := h.Quantile(1); q > 40 {
		t.Fatalf("p100 = %g, want ≤ 40", q)
	}
	empty := NewHistogram([]float64{1})
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestHistogramQuantileOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(100)
	h.Observe(200)
	// Everything in +Inf: quantiles clamp to the largest finite bound.
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("overflow quantile = %g, want 2", q)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-9 {
		t.Fatalf("sum = %g, want 8", h.Sum())
	}
}

func TestRegistryPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("test_requests_total", "Requests.", "route", "code")
	lat := r.Histogram("test_seconds", "Latency.", []float64{0.1, 1})
	reqs.With("count", "200").Add(2)
	reqs.With("peel", "404").Inc()
	lat.With().Observe(0.05)
	lat.With().Observe(0.5)
	lat.With().Observe(5)

	var b bytes.Buffer
	r.WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total Requests.",
		"# TYPE test_requests_total counter",
		`test_requests_total{route="count",code="200"} 2`,
		`test_requests_total{route="peel",code="404"} 1`,
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 2`,
		`test_seconds_bucket{le="+Inf"} 3`,
		"test_seconds_sum 5.55",
		"test_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families render sorted by name: requests before seconds.
	if strings.Index(out, "test_requests_total") > strings.Index(out, "test_seconds") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestRegistryLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	v := r.Histogram("stage_seconds", "Stage latency.", []float64{1}, "stage")
	v.With("kernel").Observe(0.5)
	var b bytes.Buffer
	r.WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		`stage_seconds_bucket{stage="kernel",le="1"} 1`,
		`stage_seconds_bucket{stage="kernel",le="+Inf"} 1`,
		`stage_seconds_sum{stage="kernel"} 0.5`,
		`stage_seconds_count{stage="kernel"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSlowLog(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, 10*time.Millisecond)
	if l.Should(5 * time.Millisecond) {
		t.Fatal("below threshold should not log")
	}
	if !l.Should(10 * time.Millisecond) {
		t.Fatal("at threshold should log")
	}
	l.Record(map[string]any{"route": "count", "elapsed_ms": 12.5})
	l.Record(map[string]any{"route": "peel", "elapsed_ms": 99.0})
	if l.Logged() != 2 {
		t.Fatalf("logged = %d", l.Logged())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], `"route":"count"`) {
		t.Fatalf("lines = %q", lines)
	}

	var nilLog *SlowLog
	if nilLog.Should(time.Hour) || nilLog.Logged() != 0 {
		t.Fatal("nil slowlog must be disabled")
	}
	nilLog.Record("ignored")
	if NewSlowLog(nil, 0) != nil {
		t.Fatal("nil writer should yield nil log")
	}
}
