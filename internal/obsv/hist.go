package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBuckets are the default request-latency bucket upper bounds
// in seconds: half-decade spacing from 0.5 ms to 10 s, bracketing
// everything from a cache hit to a full-size parallel count.
var LatencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10}

// SizeBuckets are the default response-size bucket upper bounds in
// bytes (powers of four from 256 B to 16 MiB, the server's body cap).
var SizeBuckets = []float64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}

// Histogram is a fixed-bucket histogram: atomics only, no locks, no
// allocation per observation. Values equal to a bucket's upper bound
// land in that bucket (Prometheus `le` semantics); values above every
// bound land in the implicit +Inf bucket.
type Histogram struct {
	buckets []float64       // ascending upper bounds; +Inf implicit
	counts  []atomic.Uint64 // len(buckets)+1
	sumBits atomic.Uint64   // float64 bits, CAS-updated
	count   atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds. The bounds slice is not copied; do not mutate it.
func NewHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("obsv: histogram needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obsv: histogram buckets not ascending: %v", buckets))
		}
	}
	return &Histogram{buckets: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first bound ≥ v → its bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the bucket containing it — the standard
// histogram_quantile estimate. Returns 0 with no observations; the
// +Inf bucket reports the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.buckets) { // +Inf bucket: clamp to last finite bound
				return h.buckets[len(h.buckets)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.buckets[i-1]
			}
			hi := h.buckets[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.buckets[len(h.buckets)-1]
}

// snapshot returns cumulative bucket counts (aligned with buckets,
// then +Inf), the sum, and the total count. Prometheus scrapes
// tolerate per-series skew, so no global lock is taken.
func (h *Histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	cum = make([]uint64, len(h.counts))
	var c uint64
	for i := range h.counts {
		c += h.counts[i].Load()
		cum[i] = c
	}
	return cum, h.Sum(), h.count.Load()
}

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// family is one named metric family: a set of label-distinguished
// series sharing a name, help string and kind.
type family struct {
	name    string
	help    string
	kind    string // "counter" | "histogram"
	labels  []string
	buckets []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series
}

type series struct {
	labelVals []string
	c         *Counter
	h         *Histogram
}

// with returns (creating on first use) the series for the given label
// values.
func (f *family) with(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obsv: %s expects %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelVals: append([]string(nil), vals...)}
		if f.kind == "counter" {
			s.c = &Counter{}
		} else {
			s.h = NewHistogram(f.buckets)
		}
		f.series[key] = s
	}
	return s
}

// sorted returns the series sorted by label values, for deterministic
// exposition.
func (f *family) sorted() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, f.series[k])
	}
	f.mu.Unlock()
	return out
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(vals ...string) *Counter { return v.f.with(vals).c }

// HistogramVec is a family of histograms distinguished by label
// values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values, creating it
// on first use.
func (v *HistogramVec) With(vals ...string) *Histogram { return v.f.with(vals).h }

// Registry holds metric families and renders them in the Prometheus
// text exposition format (version 0.0.4). Families render sorted by
// name; series within a family sort by label values.
type Registry struct {
	mu   sync.Mutex
	fams []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.fams {
		if have.name == f.name {
			panic("obsv: duplicate metric family " + f.name)
		}
	}
	r.fams = append(r.fams, f)
}

// Counter registers a counter family. With no labels the single
// series is created eagerly so it renders as 0 before first use.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	f := &family{name: name, help: help, kind: "counter", labels: labels, series: make(map[string]*series)}
	r.add(f)
	v := &CounterVec{f: f}
	if len(labels) == 0 {
		v.With()
	}
	return v
}

// Histogram registers a histogram family over the given buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := &family{name: name, help: help, kind: "histogram", labels: labels, buckets: buckets, series: make(map[string]*series)}
	r.add(f)
	v := &HistogramVec{f: f}
	if len(labels) == 0 {
		v.With()
	}
	return v
}

// labelString renders {l1="v1",l2="v2"} (empty for no labels); extra
// appends one more pair (the histogram `le` label).
func labelString(names, vals []string, extraName, extraVal string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, vals[i])
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// WriteProm renders every family in the Prometheus text format.
func (r *Registry) WriteProm(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.sorted() {
			switch f.kind {
			case "counter":
				fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, s.labelVals, "", ""), s.c.Value())
			case "histogram":
				cum, sum, count := s.h.snapshot()
				for i, ub := range f.buckets {
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labelVals, "le", fmt.Sprintf("%g", ub)), cum[i])
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labelVals, "le", "+Inf"), cum[len(cum)-1])
				fmt.Fprintf(w, "%s_sum%s %g\n", f.name, labelString(f.labels, s.labelVals, "", ""), sum)
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, s.labelVals, "", ""), count)
			}
		}
	}
}
