package obsv

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SlowLog emits one JSON line per over-threshold request — the
// structured slow-query log. A nil *SlowLog is a valid, disabled log:
// every method no-ops, so the serving hot path carries no conditional
// beyond the nil receiver check.
type SlowLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
	logged    atomic.Uint64
	errs      atomic.Uint64
}

// NewSlowLog returns a slow-query log writing to w for requests at or
// above threshold (0 logs everything). A nil w returns a nil (i.e.
// disabled) log.
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	if w == nil {
		return nil
	}
	if threshold < 0 {
		threshold = 0
	}
	return &SlowLog{w: w, threshold: threshold}
}

// Should reports whether a request of the given duration should be
// logged.
func (l *SlowLog) Should(elapsed time.Duration) bool {
	return l != nil && elapsed >= l.threshold
}

// Record marshals entry as one JSON line. Entries are serialized under
// a mutex so concurrent requests never interleave bytes.
func (l *SlowLog) Record(entry any) {
	if l == nil {
		return
	}
	b, err := json.Marshal(entry)
	if err != nil {
		l.errs.Add(1)
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	_, werr := l.w.Write(b)
	l.mu.Unlock()
	if werr != nil {
		l.errs.Add(1)
		return
	}
	l.logged.Add(1)
}

// Logged returns the number of lines successfully written.
func (l *SlowLog) Logged() uint64 {
	if l == nil {
		return 0
	}
	return l.logged.Load()
}
