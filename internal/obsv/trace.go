package obsv

import (
	"sync"
	"time"
)

// MaxChildren bounds the children recorded under one span. Beyond it,
// further children are counted in Dropped instead of stored — a peel
// with ten thousand rounds must not inflate a debug response or a
// slow-query line into megabytes.
const MaxChildren = 64

// Trace is one request's span tree. The zero value is not usable;
// construct with NewTrace. All methods are safe for concurrent use
// (kernel callbacks may fire from worker goroutines) and safe on a nil
// receiver (no-ops), so call sites never need nil guards.
type Trace struct {
	start time.Time
	mu    sync.Mutex
	root  span
}

// span is the internal node. start/dur are monotonic offsets from the
// trace start; dur == -1 marks a span still open.
type span struct {
	name     string
	start    time.Duration
	dur      time.Duration
	children []*span
	dropped  int
}

// Span is a handle on one node of a trace's span tree.
type Span struct {
	t *Trace
	s *span
}

// NewTrace starts a trace whose root span is named name.
func NewTrace(name string) *Trace {
	t := &Trace{start: time.Now()}
	t.root = span{name: name, dur: -1}
	return t
}

// Elapsed returns the time since the trace started.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Root returns a handle on the root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, s: &t.root}
}

// Stage records a completed stage of duration d as a child of the root
// span, ending now.
func (t *Trace) Stage(name string, d time.Duration) { t.Root().Stage(name, d) }

// Child opens a new child span named name under sp. End it with End;
// a child left open is rendered with its live duration at snapshot
// time.
func (sp *Span) Child(name string) *Span {
	if sp == nil || sp.t == nil {
		return nil
	}
	c := &span{name: name, start: sp.t.Elapsed(), dur: -1}
	sp.t.mu.Lock()
	sp.attachLocked(c)
	sp.t.mu.Unlock()
	return &Span{t: sp.t, s: c}
}

// Stage records an already-completed child of sp: duration d, ending
// now. This is the adapter shape for kernel callbacks, which time a
// stage themselves and report (name, d) after the fact.
func (sp *Span) Stage(name string, d time.Duration) {
	if sp == nil || sp.t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	start := sp.t.Elapsed() - d
	if start < 0 {
		start = 0
	}
	c := &span{name: name, start: start, dur: d}
	sp.t.mu.Lock()
	sp.attachLocked(c)
	sp.t.mu.Unlock()
}

// attachLocked appends c under sp, honoring MaxChildren. Caller holds
// t.mu.
func (sp *Span) attachLocked(c *span) {
	if len(sp.s.children) >= MaxChildren {
		sp.s.dropped++
		return
	}
	sp.s.children = append(sp.s.children, c)
}

// End closes the span. Ending twice keeps the first duration.
func (sp *Span) End() {
	if sp == nil || sp.t == nil {
		return
	}
	now := sp.t.Elapsed()
	sp.t.mu.Lock()
	if sp.s.dur < 0 {
		sp.s.dur = now - sp.s.start
	}
	sp.t.mu.Unlock()
}

// Hook adapts the span into the plain stage-callback shape consumed by
// the compute kernels (core.Options.Stage, peel.Options.Stage). A nil
// span yields a nil func, preserving the kernels' zero-overhead path.
func (sp *Span) Hook() func(stage string, d time.Duration) {
	if sp == nil || sp.t == nil {
		return nil
	}
	return sp.Stage
}

// SpanNode is an immutable snapshot of one span, with offsets and
// durations in microseconds. Still-open spans report their live
// duration at snapshot time.
type SpanNode struct {
	Name     string
	StartUS  int64
	DurUS    int64
	Dropped  int
	Children []SpanNode
}

// Snapshot returns the current span tree. The trace remains live;
// snapshots are cheap enough to take once per request.
func (t *Trace) Snapshot() SpanNode {
	if t == nil {
		return SpanNode{}
	}
	now := t.Elapsed()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.snapshotLocked(now)
}

func (s *span) snapshotLocked(now time.Duration) SpanNode {
	dur := s.dur
	if dur < 0 { // still open: live duration
		dur = now - s.start
	}
	n := SpanNode{
		Name:    s.name,
		StartUS: s.start.Microseconds(),
		DurUS:   dur.Microseconds(),
		Dropped: s.dropped,
	}
	if len(s.children) > 0 {
		n.Children = make([]SpanNode, len(s.children))
		for i, c := range s.children {
			n.Children[i] = c.snapshotLocked(now)
		}
	}
	return n
}

// Stages returns the top-level stage names and durations of the trace
// (the root's direct children) — the per-stage view the serving layer
// feeds into its stage-latency histograms.
func (t *Trace) Stages() []StageTiming {
	if t == nil {
		return nil
	}
	now := t.Elapsed()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageTiming, 0, len(t.root.children))
	for _, c := range t.root.children {
		d := c.dur
		if d < 0 {
			d = now - c.start
		}
		out = append(out, StageTiming{Name: c.name, Dur: d})
	}
	return out
}

// StageTiming is one (stage, duration) pair from Stages.
type StageTiming struct {
	Name string
	Dur  time.Duration
}

// NumStages returns the number of named spans in the tree including
// the root — the quantity the serving contract ("every /v1 response
// carries a trace with ≥ 3 named stages") is stated over.
func (n SpanNode) NumStages() int {
	total := 1
	for _, c := range n.Children {
		total += c.NumStages()
	}
	return total
}
