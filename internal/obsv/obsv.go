// Package obsv is the observability core of the serving stack:
// lock-cheap per-request span traces, fixed-bucket histograms with
// Prometheus text exposition, and a structured (JSON lines) slow-query
// log.
//
// The package is deliberately dependency-free and small enough to be
// threaded through hot paths:
//
//   - A Trace is one request's span tree. Spans carry monotonic
//     offsets from the trace start and nest (admission → kernel →
//     peel.round[i], …). All methods are safe for concurrent use and
//     nil-receiver safe, so instrumentation points never need to be
//     guarded at the call site.
//   - A Histogram is a fixed-bucket, atomics-only latency/size
//     histogram; a Registry groups counter and histogram families and
//     renders them in the Prometheus text exposition format.
//   - A SlowLog emits one JSON line per over-threshold request.
//
// Compute kernels (internal/core, internal/peel) do not import this
// package: they expose plain `func(stage string, d time.Duration)`
// callbacks, and the serving layer adapts those to trace spans via
// (*Span).Hook. A nil callback costs one predictable branch — the
// contract that keeps disabled tracing invisible on count benchmarks.
package obsv
