package baseline

import (
	"sort"
	"sync"
	"sync/atomic"

	"butterfly/internal/graph"
)

// vpChunk is the number of start vertices a worker claims at a time in
// CountVertexPriorityParallel.
const vpChunk = 64

// CountVertexPriorityParallel is CountVertexPriority with `threads`
// workers — the parallelization ParButterfly applies to the
// vertex-priority strategy. Each butterfly is counted exactly once at
// its highest-priority vertex, and start vertices are independent, so
// workers claim chunks of the global priority-ordered vertex range
// with private accumulators; the result is identical to the sequential
// counter.
func CountVertexPriorityParallel(g *graph.Bipartite, threads int) int64 {
	if threads <= 1 {
		return CountVertexPriority(g)
	}
	m, n := g.NumV1(), g.NumV2()
	total := m + n

	deg := make([]int32, total)
	for u := 0; u < m; u++ {
		deg[u] = int32(g.DegreeV1(u))
	}
	for v := 0; v < n; v++ {
		deg[m+v] = int32(g.DegreeV2(v))
	}
	order := make([]int32, total)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		if deg[order[a]] != deg[order[b]] {
			return deg[order[a]] > deg[order[b]]
		}
		return order[a] < order[b]
	})
	rank := make([]int32, total)
	for pos, x := range order {
		rank[x] = int32(pos)
	}

	var (
		cursor atomic.Int64
		count  atomic.Int64
		wg     sync.WaitGroup
	)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			acc := make([]int32, total)
			touched := make([]int32, 0, 1024)
			var local int64
			for {
				start := int(cursor.Add(vpChunk)) - vpChunk
				if start >= total {
					break
				}
				end := start + vpChunk
				if end > total {
					end = total
				}
				for u := start; u < end; u++ {
					ru := rank[u]
					var nbrs []int32
					var offset int32
					if u < m {
						nbrs, offset = g.NeighborsOfV1(u), int32(m)
					} else {
						nbrs, offset = g.NeighborsOfV2(u-m), 0
					}
					for _, nb := range nbrs {
						mid := nb + offset
						if rank[mid] < ru {
							continue
						}
						var nbrs2 []int32
						var offset2 int32
						if int(mid) < m {
							nbrs2, offset2 = g.NeighborsOfV1(int(mid)), int32(m)
						} else {
							nbrs2, offset2 = g.NeighborsOfV2(int(mid)-m), 0
						}
						for _, nb2 := range nbrs2 {
							w := nb2 + offset2
							if rank[w] <= ru {
								continue
							}
							if acc[w] == 0 {
								touched = append(touched, w)
							}
							acc[w]++
						}
					}
					for _, w := range touched {
						c := int64(acc[w])
						local += c * (c - 1) / 2
						acc[w] = 0
					}
					touched = touched[:0]
				}
			}
			count.Add(local)
		}()
	}
	wg.Wait()
	return count.Load()
}
