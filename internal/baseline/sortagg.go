package baseline

import (
	"sort"
	"sync"

	"butterfly/internal/graph"
)

// CountSortAggregate counts butterflies with the sort-based wedge
// aggregation of ParButterfly (Shi & Shun [12]): materialize every
// wedge as its endpoint pair, sort the pair list, and sum C(run, 2)
// over equal runs. Compared with hashing (CountWedgeHash) the working
// set is a flat array and the aggregation is a single sorted scan —
// the structure that parallelizes well; compared with the paper's
// loop invariants it pays O(W) memory for the wedge list.
//
// threads > 1 sorts and scans chunks concurrently (a merge-free
// partition by leading endpoint).
func CountSortAggregate(g *graph.Bipartite, threads int) int64 {
	m := g.NumV1()
	// Wedges with endpoints in V1: one entry per (u1 < u2) pair per
	// shared neighbor.
	var wedges []int64
	for v := 0; v < g.NumV2(); v++ {
		nbrs := g.NeighborsOfV2(v)
		for x := 0; x < len(nbrs); x++ {
			for y := x + 1; y < len(nbrs); y++ {
				wedges = append(wedges, int64(nbrs[x])*int64(m)+int64(nbrs[y]))
			}
		}
	}
	if len(wedges) == 0 {
		return 0
	}
	if threads <= 1 {
		sort.Slice(wedges, func(a, b int) bool { return wedges[a] < wedges[b] })
		return sumRuns(wedges)
	}

	// Parallel path: bucket wedges by leading endpoint range so each
	// bucket's runs are self-contained, then sort/scan buckets
	// concurrently.
	buckets := make([][]int64, threads)
	span := (int64(m)*int64(m) + int64(threads) - 1) / int64(threads)
	for _, w := range wedges {
		b := int(w / span)
		if b >= threads {
			b = threads - 1
		}
		buckets[b] = append(buckets[b], w)
	}
	var (
		wg    sync.WaitGroup
		total int64
		mu    sync.Mutex
	)
	for _, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		wg.Add(1)
		go func(b []int64) {
			defer wg.Done()
			sort.Slice(b, func(x, y int) bool { return b[x] < b[y] })
			t := sumRuns(b)
			mu.Lock()
			total += t
			mu.Unlock()
		}(bucket)
	}
	wg.Wait()
	return total
}

// sumRuns sums C(runLength, 2) over equal runs of a sorted slice.
func sumRuns(sorted []int64) int64 {
	var total int64
	run := int64(1)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			run++
			continue
		}
		total += run * (run - 1) / 2
		run = 1
	}
	total += run * (run - 1) / 2
	return total
}

// EstimateSparsify approximates ΞG by graph sparsification
// (Sanei-Mehri et al. [10]'s ESpar): keep each edge independently with
// probability p, count the sparsified graph exactly, and scale by
// 1/p⁴ — a butterfly survives iff all four edges do. Unbiased;
// variance grows as p shrinks. Deterministic given seed.
func EstimateSparsify(g *graph.Bipartite, p float64, seed int64) float64 {
	if p <= 0 || p > 1 {
		panic("baseline: sparsification probability must be in (0,1]")
	}
	if p == 1 {
		return float64(exactAuto(g))
	}
	rng := newSplitMix(seed)
	b := graph.NewBuilder(g.NumV1(), g.NumV2())
	for u := 0; u < g.NumV1(); u++ {
		for _, v := range g.NeighborsOfV1(u) {
			if rng.float64() < p {
				b.AddEdge(u, int(v))
			}
		}
	}
	h := b.Build()
	return float64(exactAuto(h)) / (p * p * p * p)
}

// exactAuto is a local seam so sparsification reuses whichever exact
// counter is cheapest without importing core (avoiding an import
// cycle is not needed here — core is imported in sampling.go — but the
// seam keeps this file self-contained for testing).
var exactAuto = func(g *graph.Bipartite) int64 { return CountVertexPriority(g) }

// splitMix is a tiny deterministic PRNG (SplitMix64) so sparsification
// does not share math/rand global state.
type splitMix struct{ s uint64 }

func newSplitMix(seed int64) *splitMix { return &splitMix{s: uint64(seed)*2654435769 + 1} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitMix) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
