package baseline

import (
	"fmt"

	"butterfly/internal/estimate"
)

// StreamEstimator approximates the butterfly count of an edge stream
// with a fixed-size uniform reservoir (the FLEET family of estimators,
// Sanei-Mehri et al.): edges arrive one at a time, reservoir sampling
// keeps a uniform subset, and at any point the butterfly count of the
// reservoir subgraph is scaled by the inverse probability that all
// four edges of a butterfly survived together,
//
//	p₄ = Π_{i=0..3} (R − i) / (N − i)
//
// for reservoir size R and N edges seen. The estimate is unbiased for
// duplicate-free streams; with R ≥ N it is exact. Memory is O(R)
// regardless of stream length — the property that matters when the
// stream cannot be stored.
//
// This is the original panic-on-misuse prototype surface, retained for
// differential tests; the implementation is internal/estimate's
// Reservoir, which additionally maintains the reservoir count
// incrementally and tracks error bars.
type StreamEstimator struct {
	r *estimate.Reservoir
}

// NewStreamEstimator returns an estimator over vertex sets of size m
// and n with the given reservoir capacity.
func NewStreamEstimator(m, n, reservoir int, seed int64) *StreamEstimator {
	if m < 0 || n < 0 {
		panic(fmt.Sprintf("baseline: negative vertex-set size %d/%d", m, n))
	}
	if reservoir < 4 {
		panic(fmt.Sprintf("baseline: reservoir %d < 4 cannot hold a butterfly", reservoir))
	}
	r, err := estimate.NewReservoir(m, n, reservoir, seed)
	if err != nil {
		panic("baseline: " + err.Error())
	}
	return &StreamEstimator{r: r}
}

// Add feeds the next stream edge. Out-of-range endpoints panic.
func (s *StreamEstimator) Add(u, v int) {
	if err := s.r.Add(u, v); err != nil {
		m, n := s.r.Dims()
		panic(fmt.Sprintf("baseline: stream edge (%d,%d) out of range %dx%d", u, v, m, n))
	}
}

// Seen returns the number of stream edges consumed.
func (s *StreamEstimator) Seen() int64 { return s.r.Seen() }

// Estimate returns the current butterfly estimate for the whole
// stream.
func (s *StreamEstimator) Estimate() float64 { return s.r.Snapshot().Estimate }
