package baseline

import (
	"fmt"
	"math/rand"

	"butterfly/internal/core"
	"butterfly/internal/graph"
)

// StreamEstimator approximates the butterfly count of an edge stream
// with a fixed-size uniform reservoir (the FLEET family of estimators,
// Sanei-Mehri et al.): edges arrive one at a time, reservoir sampling
// keeps a uniform subset, and at any point the butterfly count of the
// reservoir subgraph is scaled by the inverse probability that all
// four edges of a butterfly survived together,
//
//	p₄ = Π_{i=0..3} (R − i) / (N − i)
//
// for reservoir size R and N edges seen. The estimate is unbiased for
// duplicate-free streams; with R ≥ N it is exact. Memory is O(R)
// regardless of stream length — the property that matters when the
// stream cannot be stored.
type StreamEstimator struct {
	m, n int
	cap  int
	seen int64
	res  []graph.Edge
	rng  *rand.Rand
}

// NewStreamEstimator returns an estimator over vertex sets of size m
// and n with the given reservoir capacity.
func NewStreamEstimator(m, n, reservoir int, seed int64) *StreamEstimator {
	if m < 0 || n < 0 {
		panic(fmt.Sprintf("baseline: negative vertex-set size %d/%d", m, n))
	}
	if reservoir < 4 {
		panic(fmt.Sprintf("baseline: reservoir %d < 4 cannot hold a butterfly", reservoir))
	}
	return &StreamEstimator{
		m: m, n: n, cap: reservoir,
		res: make([]graph.Edge, 0, reservoir),
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Add feeds the next stream edge. Out-of-range endpoints panic.
func (s *StreamEstimator) Add(u, v int) {
	if u < 0 || u >= s.m || v < 0 || v >= s.n {
		panic(fmt.Sprintf("baseline: stream edge (%d,%d) out of range %dx%d", u, v, s.m, s.n))
	}
	s.seen++
	e := graph.Edge{U: int32(u), V: int32(v)}
	if len(s.res) < s.cap {
		s.res = append(s.res, e)
		return
	}
	// Classic reservoir replacement: keep with probability cap/seen.
	if j := s.rng.Int63n(s.seen); j < int64(s.cap) {
		s.res[j] = e
	}
}

// Seen returns the number of stream edges consumed.
func (s *StreamEstimator) Seen() int64 { return s.seen }

// Estimate returns the current butterfly estimate for the whole
// stream.
func (s *StreamEstimator) Estimate() float64 {
	sample := graph.FromEdges(s.m, s.n, s.res)
	count := float64(core.CountAuto(sample))
	if s.seen <= int64(s.cap) {
		return count
	}
	p4 := 1.0
	for i := int64(0); i < 4; i++ {
		p4 *= float64(int64(s.cap)-i) / float64(s.seen-i)
	}
	return count / p4
}
