package baseline

import (
	"fmt"
	"math/rand"

	"butterfly/internal/core"
	"butterfly/internal/graph"
)

// EstimateVertexSampling approximates ΞG with the vertex-sampling
// estimator of Sanei-Mehri et al. [10]: draw `samples` vertices
// uniformly from V1 (with replacement), compute each one's exact
// butterfly participation b_u, and scale:
//
//	ΞG ≈ |V1| · mean(b_u) / 2
//
// (each butterfly touches exactly two V1 vertices). The estimator is
// unbiased; variance shrinks as 1/samples.
func EstimateVertexSampling(g *graph.Bipartite, samples int, seed int64) float64 {
	if samples <= 0 {
		panic("baseline: samples must be positive")
	}
	m := g.NumV1()
	if m == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	adj, adjT := g.Adj(), g.AdjT()
	acc := make([]int32, m)
	touched := make([]int32, 0, 1024)

	var sum float64
	for s := 0; s < samples; s++ {
		u := rng.Intn(m)
		u32 := int32(u)
		var bu int64
		for _, v := range adj.Row(u) {
			for _, w := range adjT.Row(int(v)) {
				if w == u32 {
					continue
				}
				if acc[w] == 0 {
					touched = append(touched, w)
				}
				acc[w]++
			}
		}
		for _, w := range touched {
			c := int64(acc[w])
			bu += c * (c - 1) / 2
			acc[w] = 0
		}
		touched = touched[:0]
		sum += float64(bu)
	}
	return float64(m) * (sum / float64(samples)) / 2
}

// EstimateEdgeSampling approximates ΞG by sampling `samples` edges
// uniformly (with replacement), computing each edge's exact butterfly
// support, and scaling:
//
//	ΞG ≈ |E| · mean(support) / 4
//
// (each butterfly has four edges). Unbiased, usually lower-variance
// than vertex sampling on skewed graphs because supports are more
// homogeneous than vertex counts.
func EstimateEdgeSampling(g *graph.Bipartite, samples int, seed int64) float64 {
	if samples <= 0 {
		panic("baseline: samples must be positive")
	}
	e := g.NumEdges()
	if e == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	adj, adjT := g.Adj(), g.AdjT()
	acc := make([]int32, g.NumV1())
	touched := make([]int32, 0, 1024)

	var sum float64
	for s := 0; s < samples; s++ {
		k := rng.Int63n(e) // edge id = position in the CSR value array
		u := edgeRow(adj.Ptr, k)
		v := adj.Col[k]
		u32 := int32(u)
		// β_uw for all partners w of u.
		for _, vv := range adj.Row(u) {
			for _, w := range adjT.Row(int(vv)) {
				if w == u32 {
					continue
				}
				if acc[w] == 0 {
					touched = append(touched, w)
				}
				acc[w]++
			}
		}
		// support(u,v) = Σ_{w∈N(v), w≠u} (β_uw − 1).
		var sup int64
		for _, w := range adjT.Row(int(v)) {
			if w == u32 {
				continue
			}
			sup += int64(acc[w]) - 1
		}
		for _, w := range touched {
			acc[w] = 0
		}
		touched = touched[:0]
		sum += float64(sup)
	}
	return float64(e) * (sum / float64(samples)) / 4
}

// edgeRow locates the row containing flat edge index k by binary search
// over the CSR row pointer.
func edgeRow(ptr []int64, k int64) int {
	lo, hi := 0, len(ptr)-1
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if ptr[mid] <= k {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// RelativeError is a convenience for reporting estimator quality:
// |est − exact| / exact, or the absolute estimate when exact is 0.
func RelativeError(est float64, exact int64) float64 {
	if exact == 0 {
		if est < 0 {
			return -est
		}
		return est
	}
	d := est - float64(exact)
	if d < 0 {
		d = -d
	}
	return d / float64(exact)
}

// VerifyAll cross-checks every counter in this package plus the core
// family on g and returns an error naming the first disagreement. Used
// by tests and the CLI's --verify flag.
func VerifyAll(g *graph.Bipartite) error {
	want := core.CountAuto(g)
	checks := []struct {
		name string
		got  int64
	}{
		{"wedge-hash", CountWedgeHash(g)},
		{"vertex-priority", CountVertexPriority(g)},
		{"enumerate", CountEnumerate(g)},
		{"spgemm", core.CountSpGEMM(g)},
		{"sort-aggregate", CountSortAggregate(g, 1)},
		{"sort-aggregate-par", CountSortAggregate(g, 4)},
	}
	for _, c := range checks {
		if c.got != want {
			return fmt.Errorf("baseline: %s counted %d, core counted %d", c.name, c.got, want)
		}
	}
	for _, inv := range core.Invariants() {
		if got := core.Count(g, inv); got != want {
			return fmt.Errorf("baseline: %v counted %d, auto counted %d", inv, got, want)
		}
	}
	return nil
}
