package baseline

import (
	"fmt"

	"butterfly/internal/core"
	"butterfly/internal/estimate"
	"butterfly/internal/graph"
)

// The sampling estimators below are retained as the differential-test
// surface for internal/estimate, which owns the production
// implementation (shared wedge-accumulator kernel, adaptive stopping,
// error bars). These wrappers keep the original fixed-budget
// signatures and panic semantics.

// EstimateVertexSampling approximates ΞG with the vertex-sampling
// estimator of Sanei-Mehri et al. [10]: draw `samples` vertices
// uniformly from V1 (with replacement), compute each one's exact
// butterfly participation b_u, and scale:
//
//	ΞG ≈ |V1| · mean(b_u) / 2
//
// (each butterfly touches exactly two V1 vertices). The estimator is
// unbiased; variance shrinks as 1/samples.
func EstimateVertexSampling(g *graph.Bipartite, samples int, seed int64) float64 {
	if samples <= 0 {
		panic("baseline: samples must be positive")
	}
	return estimate.VertexSampling(g, samples, seed)
}

// EstimateEdgeSampling approximates ΞG by sampling `samples` edges
// uniformly (with replacement), computing each edge's exact butterfly
// support, and scaling:
//
//	ΞG ≈ |E| · mean(support) / 4
//
// (each butterfly has four edges). Unbiased, usually lower-variance
// than vertex sampling on skewed graphs because supports are more
// homogeneous than vertex counts.
func EstimateEdgeSampling(g *graph.Bipartite, samples int, seed int64) float64 {
	if samples <= 0 {
		panic("baseline: samples must be positive")
	}
	return estimate.EdgeSampling(g, samples, seed)
}

// RelativeError is a convenience for reporting estimator quality:
// |est − exact| / exact, or the absolute estimate when exact is 0.
func RelativeError(est float64, exact int64) float64 {
	if exact == 0 {
		if est < 0 {
			return -est
		}
		return est
	}
	d := est - float64(exact)
	if d < 0 {
		d = -d
	}
	return d / float64(exact)
}

// VerifyAll cross-checks every counter in this package plus the core
// family on g and returns an error naming the first disagreement. Used
// by tests and the CLI's --verify flag.
func VerifyAll(g *graph.Bipartite) error {
	want := core.CountAuto(g)
	checks := []struct {
		name string
		got  int64
	}{
		{"wedge-hash", CountWedgeHash(g)},
		{"vertex-priority", CountVertexPriority(g)},
		{"enumerate", CountEnumerate(g)},
		{"spgemm", core.CountSpGEMM(g)},
		{"sort-aggregate", CountSortAggregate(g, 1)},
		{"sort-aggregate-par", CountSortAggregate(g, 4)},
	}
	for _, c := range checks {
		if c.got != want {
			return fmt.Errorf("baseline: %s counted %d, core counted %d", c.name, c.got, want)
		}
	}
	for _, inv := range core.Invariants() {
		if got := core.Count(g, inv); got != want {
			return fmt.Errorf("baseline: %v counted %d, auto counted %d", inv, got, want)
		}
	}
	return nil
}
