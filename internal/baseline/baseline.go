// Package baseline implements butterfly counters that are independent
// of the paper's linear-algebraic family: the wedge-hashing exact
// counter the paper builds on (Wang et al. 2014 [14]), the
// vertex-priority counter (Wang et al. 2019 [15]), the sampling
// estimators (Sanei-Mehri et al. 2018 [10]), and a full enumerator.
//
// They serve two purposes: independent correctness references for the
// core family, and the comparison points a downstream user of a
// butterfly library expects to find.
package baseline

import (
	"sort"

	"butterfly/internal/graph"
)

// CountWedgeHash counts butterflies with the classic two-phase
// wedge-aggregation algorithm of Wang et al. [14]: every wedge
// (endpoints in V1, wedge point in V2) is hashed on its endpoint pair;
// ΞG = Σ_pairs C(wedges, 2). Exact, but the hash table holds one entry
// per connected endpoint pair, which is the O(Σ deg²) space cost the
// paper's loop invariants avoid.
func CountWedgeHash(g *graph.Bipartite) int64 {
	m := int64(g.NumV1())
	pairs := make(map[int64]int32)
	for v := 0; v < g.NumV2(); v++ {
		nbrs := g.NeighborsOfV2(v)
		for x := 0; x < len(nbrs); x++ {
			for y := x + 1; y < len(nbrs); y++ {
				pairs[int64(nbrs[x])*m+int64(nbrs[y])]++
			}
		}
	}
	var total int64
	for _, c := range pairs {
		total += int64(c) * int64(c-1) / 2
	}
	return total
}

// CountVertexPriority counts butterflies with the vertex-priority
// strategy of Wang et al. [15]: all m+n vertices get a global priority
// (descending degree, ties by id), and each butterfly is counted
// exactly once, at its highest-priority vertex. For each start vertex
// u, wedges u→mid→w are accumulated only when both mid and w have
// lower priority than u; the butterfly contribution is Σ_w C(acc_w, 2).
func CountVertexPriority(g *graph.Bipartite) int64 {
	m, n := g.NumV1(), g.NumV2()
	total := m + n

	// Global ids: V1 vertex u ↦ u, V2 vertex v ↦ m+v.
	deg := make([]int32, total)
	for u := 0; u < m; u++ {
		deg[u] = int32(g.DegreeV1(u))
	}
	for v := 0; v < n; v++ {
		deg[m+v] = int32(g.DegreeV2(v))
	}
	order := make([]int32, total)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		if deg[order[a]] != deg[order[b]] {
			return deg[order[a]] > deg[order[b]]
		}
		return order[a] < order[b]
	})
	// rank[x] = priority position; smaller rank = higher priority.
	rank := make([]int32, total)
	for pos, x := range order {
		rank[x] = int32(pos)
	}

	neighbors := func(x int) []int32 { // global neighbor ids of global x
		if x < m {
			return g.NeighborsOfV1(x)
		}
		return g.NeighborsOfV2(x - m)
	}
	globalize := func(x int, nbr int32) int32 {
		if x < m {
			return nbr + int32(m) // neighbors of a V1 vertex live in V2
		}
		return nbr
	}

	acc := make([]int32, total)
	touched := make([]int32, 0, 1024)
	var count int64
	for u := 0; u < total; u++ {
		ru := rank[u]
		for _, nb := range neighbors(u) {
			mid := globalize(u, nb)
			if rank[mid] < ru {
				// mid has higher priority than u — this wedge is counted
				// from a higher-priority start vertex instead. Ranks are a
				// permutation and mid ≠ u, so equality cannot occur.
				continue
			}
			for _, nb2 := range neighbors(int(mid)) {
				w := globalize(int(mid), nb2)
				if rank[w] <= ru {
					continue
				}
				if acc[w] == 0 {
					touched = append(touched, w)
				}
				acc[w]++
			}
		}
		for _, w := range touched {
			c := int64(acc[w])
			count += c * (c - 1) / 2
			acc[w] = 0
		}
		touched = touched[:0]
	}
	return count
}

// CountEnumerate counts by explicit enumeration via ListButterflies;
// exact but O(ΞG) — only sensible for graphs with modest counts.
func CountEnumerate(g *graph.Bipartite) int64 {
	var c int64
	ListButterflies(g, func(Butterfly) bool {
		c++
		return true
	})
	return c
}

// Butterfly is one enumerated 2×2 biclique: rows U1 < U2 in V1,
// columns W1 < W2 in V2.
type Butterfly struct {
	U1, U2 int32 // V1 vertices, U1 < U2
	W1, W2 int32 // V2 vertices, W1 < W2
}

// ListButterflies calls fn for every butterfly in g, in lexicographic
// order of (U1, U2, W1, W2). Enumeration stops early if fn returns
// false.
func ListButterflies(g *graph.Bipartite, fn func(Butterfly) bool) {
	m := g.NumV1()
	// For each V1 pair (u1 < u2) sharing ≥ 2 neighbors, every pair of
	// common neighbors is a butterfly. Iterate u1, accumulate common
	// neighbor lists against partners u2 > u1.
	common := make([][]int32, m)
	partners := make([]int32, 0, 64)
	for u1 := 0; u1 < m; u1++ {
		for _, v := range g.NeighborsOfV1(u1) {
			for _, u2 := range g.NeighborsOfV2(int(v)) {
				if u2 <= int32(u1) {
					continue
				}
				if common[u2] == nil {
					partners = append(partners, u2)
				}
				common[u2] = append(common[u2], v)
			}
		}
		sort.Slice(partners, func(a, b int) bool { return partners[a] < partners[b] })
		stop := false
		for _, u2 := range partners {
			vs := common[u2] // ascending: produced in ascending v order
			for x := 0; x < len(vs) && !stop; x++ {
				for y := x + 1; y < len(vs) && !stop; y++ {
					if !fn(Butterfly{U1: int32(u1), U2: u2, W1: vs[x], W2: vs[y]}) {
						stop = true
					}
				}
			}
			common[u2] = nil
		}
		partners = partners[:0]
		if stop {
			return
		}
	}
}
