package baseline

import (
	"math"
	"math/rand"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/gen"
)

func TestStreamExactWhenReservoirFits(t *testing.T) {
	g := gen.PowerLawBipartite(100, 80, 500, 0.7, 0.7, 3)
	s := NewStreamEstimator(100, 80, 1000, 1)
	for _, e := range g.Edges() {
		s.Add(int(e.U), int(e.V))
	}
	if s.Seen() != g.NumEdges() {
		t.Fatalf("Seen = %d", s.Seen())
	}
	exact := float64(core.CountAuto(g))
	if got := s.Estimate(); got != exact {
		t.Fatalf("estimate %f, want exact %f", got, exact)
	}
}

func TestStreamUnbiasedOnAverage(t *testing.T) {
	g := gen.PowerLawBipartite(200, 150, 2000, 0.7, 0.7, 4)
	exact := float64(core.CountAuto(g))
	if exact == 0 {
		t.Skip("degenerate workload")
	}
	edges := g.Edges()
	const trials = 40
	var sum float64
	for seed := int64(0); seed < trials; seed++ {
		s := NewStreamEstimator(200, 150, 800, seed)
		rng := rand.New(rand.NewSource(seed + 1000))
		for _, i := range rng.Perm(len(edges)) {
			s.Add(int(edges[i].U), int(edges[i].V))
		}
		sum += s.Estimate()
	}
	mean := sum / trials
	if math.Abs(mean-exact)/exact > 0.3 {
		t.Fatalf("stream estimator mean %.0f vs exact %.0f (%.0f%% off)",
			mean, exact, 100*math.Abs(mean-exact)/exact)
	}
}

func TestStreamOrderInsensitiveExactRegime(t *testing.T) {
	g := gen.CompleteBipartite(5, 5)
	edges := g.Edges()
	forward := NewStreamEstimator(5, 5, 100, 1)
	backward := NewStreamEstimator(5, 5, 100, 2)
	for i := range edges {
		forward.Add(int(edges[i].U), int(edges[i].V))
		j := len(edges) - 1 - i
		backward.Add(int(edges[j].U), int(edges[j].V))
	}
	if forward.Estimate() != backward.Estimate() {
		t.Fatal("exact regime depends on order")
	}
}

func TestStreamPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negativeSide":   func() { NewStreamEstimator(-1, 2, 10, 1) },
		"tinyReservoir":  func() { NewStreamEstimator(2, 2, 3, 1) },
		"edgeOutOfRange": func() { NewStreamEstimator(2, 2, 4, 1).Add(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStreamEmpty(t *testing.T) {
	s := NewStreamEstimator(5, 5, 10, 1)
	if s.Estimate() != 0 {
		t.Fatal("empty stream estimate not 0")
	}
}
