package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/core"
	"butterfly/internal/dense"
	"butterfly/internal/gen"
)

func TestQuickSortAggregateMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 12)
		want := dense.SpecCount(d)
		return CountSortAggregate(g, 1) == want && CountSortAggregate(g, 4) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortAggregateClosedForms(t *testing.T) {
	for _, threads := range []int{1, 2, 8} {
		if got := CountSortAggregate(gen.CompleteBipartite(4, 4), threads); got != 36 {
			t.Errorf("K(4,4) threads=%d: %d, want 36", threads, got)
		}
		if got := CountSortAggregate(gen.Star(5), threads); got != 0 {
			t.Errorf("star threads=%d: %d, want 0", threads, got)
		}
	}
	empty := gen.CompleteBipartite(0, 0)
	if CountSortAggregate(empty, 4) != 0 {
		t.Error("empty graph not 0")
	}
}

func TestSumRuns(t *testing.T) {
	cases := []struct {
		in   []int64
		want int64
	}{
		{[]int64{1}, 0},
		{[]int64{1, 1}, 1},
		{[]int64{1, 1, 1}, 3},
		{[]int64{1, 2, 2, 3, 3, 3}, 1 + 3},
		{[]int64{5, 6, 7}, 0},
	}
	for _, c := range cases {
		if got := sumRuns(c.in); got != c.want {
			t.Errorf("sumRuns(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestEstimateSparsifyExactAtP1(t *testing.T) {
	g := gen.PowerLawBipartite(100, 80, 600, 0.7, 0.7, 3)
	want := float64(core.CountAuto(g))
	if got := EstimateSparsify(g, 1, 1); got != want {
		t.Fatalf("p=1: %f, want %f", got, want)
	}
}

func TestEstimateSparsifyConverges(t *testing.T) {
	g := gen.PowerLawBipartite(400, 300, 4000, 0.7, 0.7, 4)
	exact := float64(core.CountAuto(g))
	if exact == 0 {
		t.Skip("degenerate workload")
	}
	// Average several independent sparsifications; the mean should
	// land near the exact count.
	const trials = 30
	var sum float64
	for s := int64(0); s < trials; s++ {
		sum += EstimateSparsify(g, 0.6, 100+s)
	}
	mean := sum / trials
	if math.Abs(mean-exact)/exact > 0.2 {
		t.Fatalf("sparsify mean %f vs exact %f (%.1f%% off)", mean, exact, 100*math.Abs(mean-exact)/exact)
	}
}

func TestEstimateSparsifyDeterministic(t *testing.T) {
	g := gen.PowerLawBipartite(100, 100, 500, 0.7, 0.7, 5)
	if EstimateSparsify(g, 0.5, 42) != EstimateSparsify(g, 0.5, 42) {
		t.Fatal("same seed gave different estimates")
	}
}

func TestEstimateSparsifyPanics(t *testing.T) {
	g := gen.Star(2)
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%f: no panic", p)
				}
			}()
			EstimateSparsify(g, p, 1)
		}()
	}
}

func TestSplitMixUniform(t *testing.T) {
	r := newSplitMix(7)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.float64()
		if v < 0 || v >= 1 {
			t.Fatalf("sample %f out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %f far from 0.5", mean)
	}
}
