package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/core"
	"butterfly/internal/dense"
	"butterfly/internal/gen"
	"butterfly/internal/graph"
	"butterfly/internal/sparse"
)

func randGraphAndDense(rng *rand.Rand, maxSide int) (*dense.Matrix, *graph.Bipartite) {
	m := rng.Intn(maxSide) + 1
	n := rng.Intn(maxSide) + 1
	d := dense.New(m, n)
	p := 0.2 + 0.6*rng.Float64()
	for i := range d.Data {
		if rng.Float64() < p {
			d.Data[i] = 1
		}
	}
	g, err := graph.FromCSR(sparse.FromDense(d, true))
	if err != nil {
		panic(err)
	}
	return d, g
}

func TestQuickWedgeHashMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 12)
		return CountWedgeHash(g) == dense.SpecCount(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVertexPriorityMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 12)
		return CountVertexPriority(g) == dense.SpecCount(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEnumerateMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 10)
		return CountEnumerate(g) == dense.SpecCount(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBaselinesOnClosedForms(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Bipartite
		want int64
	}{
		{"K(2,2)", gen.CompleteBipartite(2, 2), 1},
		{"K(5,4)", gen.CompleteBipartite(5, 4), 60},
		{"star", gen.Star(8), 0},
		{"C4", gen.Cycle(2), 1},
		{"C10", gen.Cycle(5), 0},
		{"chain", gen.BicliqueChain(4, 2, 3), 4 * 3},
	}
	for _, c := range cases {
		if got := CountWedgeHash(c.g); got != c.want {
			t.Errorf("%s wedge-hash: %d, want %d", c.name, got, c.want)
		}
		if got := CountVertexPriority(c.g); got != c.want {
			t.Errorf("%s vertex-priority: %d, want %d", c.name, got, c.want)
		}
		if got := CountEnumerate(c.g); got != c.want {
			t.Errorf("%s enumerate: %d, want %d", c.name, got, c.want)
		}
	}
}

func TestListButterfliesOrderAndContent(t *testing.T) {
	g := gen.CompleteBipartite(3, 2) // butterflies: pairs of rows × the single column pair
	var got []Butterfly
	ListButterflies(g, func(b Butterfly) bool {
		got = append(got, b)
		return true
	})
	want := []Butterfly{
		{0, 1, 0, 1},
		{0, 2, 0, 1},
		{1, 2, 0, 1},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d butterflies, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("butterfly %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Canonical form invariants.
	for _, b := range got {
		if b.U1 >= b.U2 || b.W1 >= b.W2 {
			t.Errorf("non-canonical butterfly %+v", b)
		}
	}
}

func TestListButterfliesEarlyStop(t *testing.T) {
	g := gen.CompleteBipartite(4, 4)
	calls := 0
	ListButterflies(g, func(Butterfly) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("early stop after %d calls, want 3", calls)
	}
}

func TestEstimatorsExactOnUniformGraph(t *testing.T) {
	// In K(a,b) every vertex and edge has identical participation, so a
	// single sample is already exact.
	g := gen.CompleteBipartite(5, 6)
	exact := core.CountAuto(g)
	if est := EstimateVertexSampling(g, 1, 1); est != float64(exact) {
		t.Errorf("vertex sampling on K(5,6): %f, want %d", est, exact)
	}
	if est := EstimateEdgeSampling(g, 1, 1); est != float64(exact) {
		t.Errorf("edge sampling on K(5,6): %f, want %d", est, exact)
	}
}

func TestEstimatorsConvergeOnSkewedGraph(t *testing.T) {
	g := gen.PowerLawBipartite(300, 200, 2500, 0.8, 0.7, 5)
	exact := core.CountAuto(g)
	if exact == 0 {
		t.Skip("degenerate workload")
	}
	vs := EstimateVertexSampling(g, 4000, 9)
	if RelativeError(vs, exact) > 0.25 {
		t.Errorf("vertex sampling error %.2f (est %.0f, exact %d)", RelativeError(vs, exact), vs, exact)
	}
	es := EstimateEdgeSampling(g, 4000, 9)
	if RelativeError(es, exact) > 0.25 {
		t.Errorf("edge sampling error %.2f (est %.0f, exact %d)", RelativeError(es, exact), es, exact)
	}
}

func TestEstimatorsEmptyAndDegenerate(t *testing.T) {
	empty := graph.NewBuilder(0, 0).Build()
	if EstimateVertexSampling(empty, 5, 1) != 0 {
		t.Error("vertex sampling on empty graph not 0")
	}
	if EstimateEdgeSampling(empty, 5, 1) != 0 {
		t.Error("edge sampling on empty graph not 0")
	}
	star := gen.Star(5)
	if EstimateVertexSampling(star, 50, 1) != 0 {
		t.Error("vertex sampling on star not 0")
	}
	if EstimateEdgeSampling(star, 50, 1) != 0 {
		t.Error("edge sampling on star not 0")
	}
}

func TestEstimatorPanics(t *testing.T) {
	g := gen.Star(2)
	for name, fn := range map[string]func(){
		"vertex": func() { EstimateVertexSampling(g, 0, 1) },
		"edge":   func() { EstimateEdgeSampling(g, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on bad sample count", name)
				}
			}()
			fn()
		}()
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(110, 100) != 0.1 {
		t.Fatal("RelativeError(110,100) wrong")
	}
	if RelativeError(90, 100) != 0.1 {
		t.Fatal("RelativeError(90,100) wrong")
	}
	if RelativeError(3, 0) != 3 || RelativeError(-3, 0) != 3 {
		t.Fatal("RelativeError at exact=0 wrong")
	}
}

func TestVerifyAll(t *testing.T) {
	g := gen.PowerLawBipartite(80, 60, 400, 0.7, 0.7, 3)
	if err := VerifyAll(g); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVerifyAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 10)
		return VerifyAll(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVertexPriorityParallelMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 12)
		want := dense.SpecCount(d)
		return CountVertexPriorityParallel(g, 4) == want &&
			CountVertexPriorityParallel(g, 1) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestVertexPriorityParallelLarge(t *testing.T) {
	g := gen.PowerLawBipartite(3000, 2500, 15000, 0.75, 0.7, 12)
	want := CountVertexPriority(g)
	for _, threads := range []int{2, 6} {
		if got := CountVertexPriorityParallel(g, threads); got != want {
			t.Fatalf("threads=%d: %d, want %d", threads, got, want)
		}
	}
}
