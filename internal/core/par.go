package core

import (
	"sync"
	"sync/atomic"

	"butterfly/internal/graph"
	"butterfly/internal/sparse"
)

// parChunk is the number of exposed vertices a worker claims at a time.
// Chunks amortize the atomic fetch while staying small enough to load-
// balance the skewed degree distributions of real bipartite graphs: a
// chunk containing a hub bounds the schedule's makespan from below, so
// smaller is safer, and one atomic add per 64 vertices is noise.
const parChunk = 64

// countParallel runs the invariant's algorithm with `threads` workers.
//
// The outer loop over exposed vertices is embarrassingly parallel: the
// per-iteration update (18) only reads the adjacency and writes a
// worker-private wedge accumulator, so workers claim chunks of the
// traversal with an atomic cursor and reduce their partial ΞG at the
// end. The result is bit-identical to the sequential algorithm (integer
// addition is associative), which the tests assert.
func countParallel(g *graph.Bipartite, inv Invariant, threads int) int64 {
	desc, above := inv.geometry()
	var exposed, secondary *sparse.CSR
	if inv.PartitionsV2() {
		exposed, secondary = g.AdjT(), g.Adj()
	} else {
		exposed, secondary = g.Adj(), g.AdjT()
	}

	nExp := exposed.R
	if threads > nExp/parChunk+1 {
		threads = nExp/parChunk + 1
	}
	if threads <= 1 {
		return countFamily(exposed, secondary, desc, above)
	}

	var (
		cursor atomic.Int64
		total  atomic.Int64
		wg     sync.WaitGroup
	)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			acc := make([]int32, nExp)
			touched := make([]int32, 0, 1024)
			var local int64
			for {
				start := int(cursor.Add(parChunk)) - parChunk
				if start >= nExp {
					break
				}
				end := start + parChunk
				if end > nExp {
					end = nExp
				}
				for idx := start; idx < end; idx++ {
					k := idx
					if desc {
						k = nExp - 1 - idx
					}
					k32 := int32(k)
					for _, y := range exposed.Row(k) {
						prow := secondary.Row(int(y))
						if above {
							for _, z := range prow[searchInt32(prow, k32+1):] {
								if acc[z] == 0 {
									touched = append(touched, z)
								}
								acc[z]++
							}
						} else {
							for _, z := range prow {
								if z >= k32 {
									break
								}
								if acc[z] == 0 {
									touched = append(touched, z)
								}
								acc[z]++
							}
						}
					}
					local += flush(acc, &touched)
				}
			}
			total.Add(local)
		}()
	}
	wg.Wait()
	return total.Load()
}
