package core

import (
	"sync"
	"sync/atomic"

	"butterfly/internal/graph"
)

// countParallel runs the invariant's algorithm with up to `threads`
// workers on the work-weighted schedule.
//
// The outer loop over exposed vertices is embarrassingly parallel: the
// per-iteration update (18) only reads the adjacency and writes a
// worker-private wedge accumulator. The engine:
//
//  1. computes the exact per-vertex wedge work in one CSR pass;
//  2. builds a work-weighted schedule (sched.go) — guided decreasing
//     chunks plus hub splitting for any vertex above the spill budget;
//  3. clamps the worker count to the number of schedule units (a
//     hub-heavy graph with few exposed vertices still gets as many
//     workers as it has units — the old clamp counted vertices);
//  4. phase 1: workers claim units from an atomic cursor. Chunks run
//     the hybrid kernel per vertex; candidate-range segments of
//     bitset-path hubs are additive and accumulate directly;
//     neighbor-list segments of sparse hubs export partial wedge
//     counts;
//  5. phase 2: split-hub partials are merged and C(β, 2) applied.
//
// Every path computes the same integer wedge multiplicities, so the
// result is bit-identical to the sequential algorithm (asserted by the
// tests) for every policy, tuning and thread count.
// A non-nil stop flag is polled by every worker between schedule
// units (and by the threads≤1 fallback between exposed vertices); a
// raised flag makes workers abandon the cursor race, so the whole pool
// drains within one unit's worth of work. The partial total returned
// after an abort is unspecified — CountContext discards it.
func countParallel(g *graph.Bipartite, inv Invariant, threads int, pol HubPolicy, agg AggPolicy, a *Arena, stop *atomic.Bool) int64 {
	return countParallelTuned(g, inv, threads, pol, agg, a, schedTuning{}, stop)
}

// countParallelTuned is countParallel with explicit scheduler tuning;
// tests shrink the budgets to force hub splitting on small graphs.
func countParallelTuned(g *graph.Bipartite, inv Invariant, threads int, pol HubPolicy, agg AggPolicy, a *Arena, tun schedTuning, stop *atomic.Bool) int64 {
	desc, above := inv.geometry()
	exposed, secondary := orient(g, inv)
	nExp := exposed.R

	work := workPerExposed(exposed, secondary, above)
	ks := newKernShared(exposed, secondary, above, pol, agg, work)
	sched := buildSchedule(work, desc, threads, tun,
		restrictedSegWork(exposed, secondary, above),
		exposed.RowDeg, ks.bitsSplitFunc(), exposed.Ptr)

	// Clamp on schedulable work units, not vertex count: a unit is the
	// smallest indivisible piece of work, so extra workers would only
	// spin on the cursor.
	if threads > len(sched.units) {
		threads = len(sched.units)
	}
	if threads <= 1 {
		kn := ks.worker(a)
		defer kn.release()
		var total int64
		for idx := 0; idx < nExp; idx++ {
			if idx&stopStride == 0 && stopped(stop) {
				return total
			}
			k := idx
			if desc {
				k = nExp - 1 - idx
			}
			total += kn.contrib(k)
		}
		return total
	}

	// parts[i][s] holds segment s of spill i, written by exactly one
	// phase-1 unit and read after the wg.Wait barrier.
	parts := make([][][]hubPair, len(sched.spills))
	for i, sp := range sched.spills {
		parts[i] = make([][]hubPair, sp.segs)
	}

	var (
		cursor atomic.Int64
		total  atomic.Int64
		wg     sync.WaitGroup
	)
	nUnits := len(sched.units)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			kn := ks.worker(a)
			defer kn.release()
			var local int64
			for {
				i := int(cursor.Add(1)) - 1
				if i >= nUnits || stopped(stop) {
					break
				}
				u := &sched.units[i]
				switch u.kind {
				case unitChunk:
					for idx := u.lo; idx < u.hi; idx++ {
						k := idx
						if desc {
							k = nExp - 1 - idx
						}
						local += kn.contrib(k)
					}
				case unitZSeg:
					local += kn.contribBitsRange(u.hub, u.lo, u.hi)
				case unitYSeg:
					parts[u.spill][u.seg] = kn.segPairs(u.hub, u.lo, u.hi)
				}
			}
			total.Add(local)
		}()
	}
	wg.Wait()

	// Phase 2: reduce split-hub partials. Spills are rare (one per hub
	// above the spill budget), so a small second pool suffices. An
	// aborted phase 1 may have left nil segments in parts; the whole
	// reduction is skipped then — the partial total is discarded by the
	// cancelling caller anyway.
	if len(sched.spills) > 0 && !stopped(stop) {
		reducers := threads
		if reducers > len(sched.spills) {
			reducers = len(sched.spills)
		}
		var (
			rc  atomic.Int64
			wg2 sync.WaitGroup
		)
		for t := 0; t < reducers; t++ {
			wg2.Add(1)
			go func() {
				defer wg2.Done()
				kn := ks.worker(a)
				defer kn.release()
				var local int64
				for {
					i := int(rc.Add(1)) - 1
					if i >= len(parts) {
						break
					}
					local += kn.reducePairs(parts[i])
				}
				total.Add(local)
			}()
		}
		wg2.Wait()
	}
	return total.Load()
}
