package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/gen"
	"butterfly/internal/graph"
)

// Σ WorkPerVertex must equal the total number of restricted partner
// visits, which for either restriction is the number of ordered wedge
// endpoint pairs — i.e. exactly the family's wedge total.
func TestQuickWorkPerVertexTotals(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 12)
		w1, w2 := WedgeCount(g)
		for _, inv := range Invariants() {
			var total int64
			for _, w := range WorkPerVertex(g, inv) {
				total += w
			}
			want := w2 // invariants 1–4 enumerate Σ_{u∈V1} C(deg u, 2)
			if !inv.PartitionsV2() {
				want = w1
			}
			if total != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkPerVertexLookAheadComplement(t *testing.T) {
	// Eager and look-ahead restrictions partition each wedge pair, so
	// per-vertex work of Inv1 + Inv2 = unrestricted partner visits.
	g := gen.PowerLawBipartite(60, 50, 300, 0.7, 0.7, 5)
	w1 := WorkPerVertex(g, Inv1)
	w2 := WorkPerVertex(g, Inv2)
	for k := 0; k < g.NumV2(); k++ {
		var full int64
		for _, i := range g.NeighborsOfV2(k) {
			full += int64(g.DegreeV1(int(i)) - 1)
		}
		if w1[k]+w2[k] != full {
			t.Fatalf("vertex %d: %d + %d != %d", k, w1[k], w2[k], full)
		}
	}
}

func TestWorkBalanceConservation(t *testing.T) {
	g := gen.PowerLawBipartite(3000, 2500, 15000, 0.8, 0.8, 6)
	for _, inv := range []Invariant{Inv2, Inv4, Inv7} {
		var want int64
		for _, w := range WorkPerVertex(g, inv) {
			want += w
		}
		for _, threads := range []int{1, 2, 6} {
			loads := WorkBalance(g, inv, threads)
			if len(loads) != threads {
				t.Fatalf("%v: %d workers", inv, len(loads))
			}
			var got int64
			for _, l := range loads {
				got += l
			}
			if got != want {
				t.Fatalf("%v threads=%d: scheduled %d work, want %d", inv, threads, got, want)
			}
		}
	}
}

func TestWorkBalanceIsBalanced(t *testing.T) {
	// Chung–Lu assigns ids in weight order, which packs every hub into
	// the first chunks — the adversarial labeling. A degree-shuffling
	// relabel (ascending: hubs last, one per tail chunk) models natural
	// inputs; schedule should be within 25% of perfect on 6 workers.
	g := gen.PowerLawBipartite(20000, 15000, 90000, 0.75, 0.75, 7)
	shuffled, _, _ := g.Relabel(graph.OrderDegreeAsc)
	f := ImbalanceFactor(WorkBalance(shuffled, AutoInvariant(shuffled), 6))
	if f > 1.25 {
		t.Fatalf("imbalance factor %.3f > 1.25", f)
	}
	// The weight-sorted labeling is measurably worse — that asymmetry
	// is a property, not a bug; EXPERIMENTS.md reports it.
	fSorted := ImbalanceFactor(WorkBalance(g, AutoInvariant(g), 6))
	if fSorted < 1.0 {
		t.Fatalf("impossible imbalance %.3f", fSorted)
	}
}

func TestWorkBalancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("threads=0 did not panic")
		}
	}()
	WorkBalance(gen.Star(3), Inv1, 0)
}

func TestImbalanceFactor(t *testing.T) {
	if ImbalanceFactor(nil) != 1 {
		t.Fatal("empty loads")
	}
	if ImbalanceFactor([]int64{0, 0}) != 1 {
		t.Fatal("zero loads")
	}
	if got := ImbalanceFactor([]int64{2, 2, 2}); got != 1 {
		t.Fatalf("uniform loads: %f", got)
	}
	if got := ImbalanceFactor([]int64{4, 0}); got != 2 {
		t.Fatalf("skewed loads: %f", got)
	}
}
