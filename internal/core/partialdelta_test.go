package core

import (
	"errors"
	"math/rand"
	"testing"

	"butterfly/internal/graph"
)

// mutateRows rebuilds g with the adjacency of every center in touched
// re-rolled at random (possibly empty), returning the new graph. All
// other rows are copied verbatim, so touched is exactly the set of
// centers whose wedge contribution may have changed.
func mutateRows(g *graph.Bipartite, touched []int, seed int64) *graph.Bipartite {
	rng := rand.New(rand.NewSource(seed))
	isTouched := map[int]bool{}
	for _, u := range touched {
		isTouched[u] = true
	}
	b := graph.NewBuilder(g.NumV1(), g.NumV2())
	for u := 0; u < g.NumV1(); u++ {
		if isTouched[u] {
			for k := rng.Intn(8); k > 0; k-- {
				b.AddEdge(u, rng.Intn(g.NumV2()))
			}
			continue
		}
		for _, v := range g.NeighborsOfV1(u) {
			b.AddEdge(u, int(v))
		}
	}
	return b.Build()
}

func pairCountsEqual(a, b []PairCount) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestWedgePartialsOfMatchesFilteredFull(t *testing.T) {
	g := randomBipartite(50, 40, 400, 11)
	centers := []int{3, 3, 17, -1, 49, 1000, 8} // dups and out-of-range ignored
	got := WedgePartialsOf(g, centers)

	// Reference: zero out every untouched row and take the full partial.
	keep := map[int]bool{3: true, 17: true, 49: true, 8: true}
	b := graph.NewBuilder(g.NumV1(), g.NumV2())
	for u := 0; u < g.NumV1(); u++ {
		if !keep[u] {
			continue
		}
		for _, v := range g.NeighborsOfV1(u) {
			b.AddEdge(u, int(v))
		}
	}
	want := WedgePartials(b.Build())
	if !pairCountsEqual(got, want) {
		t.Fatalf("WedgePartialsOf = %v, want %v", got, want)
	}

	if out := WedgePartialsOf(g, nil); len(out) != 0 {
		t.Errorf("no centers should yield empty partial, got %d entries", len(out))
	}
	if !pairCountsEqual(WedgePartialsOf(g, rangeInts(g.NumV1())), WedgePartials(g)) {
		t.Error("all centers should reproduce the full partial")
	}
}

func rangeInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestDiffApplyRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed * 100))
		before := randomBipartite(60, 45, 500, seed)
		touched := make([]int, 0, 10)
		for i := 0; i < 10; i++ {
			touched = append(touched, rng.Intn(before.NumV1()))
		}
		after := mutateRows(before, touched, seed*100+1)

		delta := DiffPartials(
			WedgePartialsOf(after, touched),
			WedgePartialsOf(before, touched),
		)
		for _, d := range delta {
			if d.C == 0 {
				t.Fatalf("seed %d: zero-count entry in delta: %+v", seed, d)
			}
		}
		got, err := ApplyPartialDelta(WedgePartials(before), delta)
		if err != nil {
			t.Fatalf("seed %d: apply: %v", seed, err)
		}
		if want := WedgePartials(after); !pairCountsEqual(got, want) {
			t.Fatalf("seed %d: delta-applied partial diverges from fresh partial", seed)
		}
	}
}

func TestDiffPartialsCancelsUnchanged(t *testing.T) {
	g := randomBipartite(30, 20, 250, 6)
	full := WedgePartials(g)
	if d := DiffPartials(full, full); len(d) != 0 {
		t.Fatalf("self-diff should be empty, got %d entries", len(d))
	}
}

func TestSumPartialDeltasComposes(t *testing.T) {
	// Composing v1→v2 and v2→v3 deltas must equal the v1→v3 delta.
	g1 := randomBipartite(40, 30, 300, 21)
	g2 := mutateRows(g1, []int{2, 9, 11}, 22)
	g3 := mutateRows(g2, []int{9, 30, 5}, 23)
	d12 := DiffPartials(WedgePartials(g2), WedgePartials(g1))
	d23 := DiffPartials(WedgePartials(g3), WedgePartials(g2))
	d13 := DiffPartials(WedgePartials(g3), WedgePartials(g1))
	if !pairCountsEqual(SumPartialDeltas(d12, d23), d13) {
		t.Fatal("composed delta diverges from direct diff")
	}
}

func TestApplyPartialDeltaRejectsNegative(t *testing.T) {
	base := []PairCount{{V: 1, W: 2, C: 3}}
	delta := []PairCount{{V: 1, W: 2, C: -5}}
	_, err := ApplyPartialDelta(base, delta)
	if err == nil {
		t.Fatal("negative result accepted")
	}
	var ne *NegativePartialError
	if !errors.As(err, &ne) {
		t.Fatalf("error %T, want *NegativePartialError", err)
	}
	if ne.V != 1 || ne.W != 2 || ne.C != -2 {
		t.Errorf("error detail = %+v", ne)
	}

	// Exact cancellation is fine: the pair just disappears.
	got, err := ApplyPartialDelta(base, []PairCount{{V: 1, W: 2, C: -3}})
	if err != nil || len(got) != 0 {
		t.Fatalf("cancel-to-zero: got %v, err %v", got, err)
	}
}
