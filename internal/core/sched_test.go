package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/gen"
)

// workPerExposedReference recomputes the restricted work with the
// search-based per-vertex definition the scheduler's one-pass version
// must match.
func workPerExposedReference(g interface{ NumV1() int }, inv Invariant, exposedR int, segW func(k, yi int) int64, deg func(k int) int) []int64 {
	work := make([]int64, exposedR)
	for k := range work {
		for yi := 0; yi < deg(k); yi++ {
			work[k] += segW(k, yi)
		}
	}
	return work
}

func TestQuickWorkPerExposedMatchesSearchReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 14)
		for _, inv := range Invariants() {
			_, above := inv.geometry()
			exposed, secondary := orient(g, inv)
			got := workPerExposed(exposed, secondary, above)
			want := workPerExposedReference(g, inv, exposed.R,
				restrictedSegWork(exposed, secondary, above), exposed.RowDeg)
			for k := range want {
				if got[k] != want[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkFullExposedMatchesMaskedAllActive(t *testing.T) {
	g := gen.PowerLawBipartite(300, 250, 2000, 0.7, 0.7, 11)
	exposed, secondary := g.Adj(), g.AdjT()
	active := make([]bool, exposed.R)
	for i := range active {
		active[i] = true
	}
	full := workFullExposed(exposed, secondary)
	masked, rowAct := workFullExposedMasked(exposed, secondary, active)
	for k := range full {
		if full[k] != masked[k] {
			t.Fatalf("vertex %d: full %d, masked(all) %d", k, full[k], masked[k])
		}
	}
	for y := 0; y < secondary.R; y++ {
		if int(rowAct[y]) != secondary.RowDeg(y) {
			t.Fatalf("row %d active count %d, deg %d", y, rowAct[y], secondary.RowDeg(y))
		}
	}
}

// Every schedule must cover each traversal index exactly once: spilled
// hubs through the union of their segments, everything else through
// chunks. Work must be conserved exactly.
func checkScheduleCovers(t *testing.T, s *schedule, work []int64, desc bool, deg func(k int) int) {
	t.Helper()
	n := len(work)
	covered := make([]int, n) // count of chunk/whole-hub coverings
	segCover := make(map[int][]bool)
	var total int64
	for _, u := range s.units {
		total += u.work
		switch u.kind {
		case unitChunk:
			for idx := u.lo; idx < u.hi; idx++ {
				k := idx
				if desc {
					k = n - 1 - idx
				}
				covered[k]++
			}
		case unitYSeg:
			c, ok := segCover[u.hub]
			if !ok {
				c = make([]bool, deg(u.hub))
				segCover[u.hub] = c
			}
			for yi := u.lo; yi < u.hi; yi++ {
				if c[yi] {
					t.Fatalf("hub %d neighbor %d covered twice", u.hub, yi)
				}
				c[yi] = true
			}
		case unitZSeg:
			t.Fatalf("unexpected zSeg with nil bitsSplit")
		}
	}
	for hub, c := range segCover {
		covered[hub]++
		for yi, ok := range c {
			if !ok {
				t.Fatalf("hub %d neighbor %d uncovered", hub, yi)
			}
		}
		if s.spills == nil {
			t.Fatalf("segments without spill records")
		}
		_ = hub
	}
	for k, c := range covered {
		if c != 1 {
			t.Fatalf("vertex %d covered %d times", k, c)
		}
	}
	var want int64
	for _, w := range work {
		want += w
	}
	if total != want {
		t.Fatalf("schedule carries %d work, want %d", total, want)
	}
	if total != s.total {
		t.Fatalf("schedule.total %d, units sum %d", s.total, total)
	}
}

func TestQuickScheduleCoversAndConserves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 16)
		for _, inv := range []Invariant{Inv1, Inv2, Inv3, Inv4, Inv6, Inv7} {
			desc, above := inv.geometry()
			exposed, secondary := orient(g, inv)
			work := workPerExposed(exposed, secondary, above)
			for _, threads := range []int{1, 2, 4, 8} {
				// minWork=1 forces aggressive spilling even on tiny
				// graphs, exercising the hub-splitting machinery.
				s := buildSchedule(work, desc, threads, schedTuning{minWork: 1},
					restrictedSegWork(exposed, secondary, above),
					exposed.RowDeg, nil, nil)
				checkScheduleCovers(t, s, work, desc, exposed.RowDeg)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleSplitsHubs(t *testing.T) {
	// K(40,3) under Inv2 exposes three V2 vertices of degree 40; the
	// first carries 2/3 of the restricted work, far above the budget
	// once minWork is shrunk, so the scheduler must split it.
	g := gen.CompleteBipartite(40, 3)
	exposed, secondary := orient(g, Inv2) // exposes V2
	_, above := Inv2.geometry()
	work := workPerExposed(exposed, secondary, above)
	s := buildSchedule(work, false, 4, schedTuning{minWork: 1, spillDiv: 4},
		restrictedSegWork(exposed, secondary, above), exposed.RowDeg, nil, nil)
	if len(s.spills) == 0 {
		t.Fatal("no hub was split")
	}
	for _, sp := range s.spills {
		if sp.segs < 2 {
			t.Fatalf("hub %d split into %d segments", sp.k, sp.segs)
		}
	}
	checkScheduleCovers(t, s, work, false, exposed.RowDeg)
}

func TestScheduleZSegSplit(t *testing.T) {
	g := gen.CompleteBipartite(30, 30)
	exposed, secondary := orient(g, Inv2)
	_, above := Inv2.geometry()
	work := workPerExposed(exposed, secondary, above)
	all := func(k int) (int, int, bool) {
		if above {
			return k + 1, exposed.R, k+1 < exposed.R
		}
		return 0, k, k > 0
	}
	s := buildSchedule(work, false, 4, schedTuning{minWork: 1, spillDiv: 4},
		restrictedSegWork(exposed, secondary, above), exposed.RowDeg, all, exposed.Ptr)
	var zsegs int
	var total int64
	for _, u := range s.units {
		total += u.work
		if u.kind == unitZSeg {
			zsegs++
			if u.hi <= u.lo {
				t.Fatalf("empty zSeg [%d,%d)", u.lo, u.hi)
			}
		}
	}
	if zsegs == 0 {
		t.Fatal("no candidate-range segments emitted")
	}
	var want int64
	for _, w := range work {
		want += w
	}
	if total != want {
		t.Fatalf("zSeg schedule carries %d work, want %d", total, want)
	}
	if len(s.spills) != 0 {
		t.Fatalf("zSeg splits must not require reductions, got %d spills", len(s.spills))
	}
}

func TestSimulateLeastLoaded(t *testing.T) {
	s := &schedule{units: []schedUnit{
		{kind: unitChunk, work: 10},
		{kind: unitChunk, work: 10},
		{kind: unitChunk, work: 1},
		{kind: unitChunk, work: 1},
	}}
	loads := s.simulate(2)
	if loads[0] != 11 || loads[1] != 11 {
		t.Fatalf("loads = %v, want [11 11]", loads)
	}
	// Deterministic: same input, same output.
	loads2 := s.simulate(2)
	for i := range loads {
		if loads[i] != loads2[i] {
			t.Fatal("simulate is not deterministic")
		}
	}
}

// oldFixedChunkBalance reproduces the retired scheduler's model — fixed
// chunks of 64 exposed vertices to the least-loaded worker — so the
// regression test below can assert the improvement without wall clocks.
func oldFixedChunkBalance(work []int64, desc bool, threads int) []int64 {
	const oldChunk = 64
	loads := make([]int64, threads)
	n := len(work)
	for start := 0; start < n; start += oldChunk {
		end := start + oldChunk
		if end > n {
			end = n
		}
		var chunk int64
		for idx := start; idx < end; idx++ {
			k := idx
			if desc {
				k = n - 1 - idx
			}
			chunk += work[k]
		}
		min := 0
		for t := 1; t < threads; t++ {
			if loads[t] < loads[min] {
				min = t
			}
		}
		loads[min] += chunk
	}
	return loads
}

// The hub-packed record-labels stand-in is the documented failure mode
// of the fixed-chunk scheduler: its weight-sorted labeling packs every
// hub into the first chunks, and docs/PERFORMANCE.md measured max/mean
// 1.68 on six workers. The work-weighted schedule must be within 25% of
// perfect on the same input. Fully deterministic — no wall-clock
// dependence, so it holds on single-CPU CI.
func TestWorkBalanceRecordLabelsHubPacked(t *testing.T) {
	g, err := gen.PaperDataset("record-labels")
	if err != nil {
		t.Fatal(err)
	}
	inv := AutoInvariant(g)
	const threads = 6

	desc, above := inv.geometry()
	exposed, secondary := orient(g, inv)
	work := workPerExposed(exposed, secondary, above)

	fOld := ImbalanceFactor(oldFixedChunkBalance(work, desc, threads))
	if fOld < 1.5 {
		t.Fatalf("fixed-chunk baseline imbalance %.3f — the stand-in no longer reproduces the failure mode", fOld)
	}

	fNew := ImbalanceFactor(WorkBalance(g, inv, threads))
	if fNew > 1.25 {
		t.Fatalf("work-weighted imbalance %.3f > 1.25 (fixed-chunk baseline %.3f)", fNew, fOld)
	}
	if fNew >= fOld {
		t.Fatalf("work-weighted schedule (%.3f) did not improve on fixed chunks (%.3f)", fNew, fOld)
	}
	t.Logf("record-labels imbalance: fixed-chunk %.3f → work-weighted %.3f", fOld, fNew)
}
