package core

import (
	"sort"

	"butterfly/internal/sparse"
)

// This file implements the work-weighted parallel scheduler shared by
// the counting, per-vertex and per-edge kernels.
//
// The old scheduler claimed fixed chunks of 64 exposed vertices from an
// atomic cursor. On hub-packed labelings (KONECT datasets whose ids are
// assigned in weight order, e.g. the record-labels stand-in) a single
// chunk can contain every hub, serializing most of the graph's wedge
// work on one worker — docs/PERFORMANCE.md measured max/mean worker
// load of 1.68 on six workers. ParButterfly (Shi & Shun 2019) shows
// that work-aware partitioning from per-vertex work estimates is what
// makes parallel butterfly kernels scale on skewed graphs.
//
// The scheduler here:
//
//  1. computes an exact per-exposed-vertex wedge-work vector in one
//     pass over the secondary CSR (see workPerExposed);
//  2. cuts the traversal into *work-weighted* units with guided
//     (decreasing) chunk targets, so every unit carries roughly equal
//     wedge work no matter how skewed the labeling is;
//  3. splits any single vertex whose work exceeds the spill budget
//     ("hub splitting"): either by neighbor-list range, with per-worker
//     partial accumulators merged in a reduction phase, or — when the
//     hybrid kernel selects the bitset path for that hub — by candidate
//     range, whose per-candidate contributions are additive and need no
//     reduction.
//
// Workers still claim units dynamically with an atomic cursor, so the
// schedule degrades gracefully under OS noise; WorkBalance simulates
// the steady state deterministically for single-CPU CI environments.

// Unit kinds.
const (
	// unitChunk is a contiguous run of whole exposed vertices in
	// traversal-index space.
	unitChunk = iota
	// unitYSeg is one neighbor-list segment of a split hub; segments
	// export partial wedge accumulators that a reduction phase merges.
	unitYSeg
	// unitZSeg is one candidate-range segment of a split hub processed
	// with the bitset kernel; contributions are additive, no reduction.
	unitZSeg
)

// schedUnit is one schedulable piece of a traversal.
type schedUnit struct {
	kind int
	// lo, hi bound the unit: a traversal-index range for unitChunk, a
	// neighbor-list range for unitYSeg, a candidate-id range for
	// unitZSeg.
	lo, hi int
	// hub is the exposed-side id of the split vertex (unitYSeg and
	// unitZSeg only).
	hub int
	// spill indexes schedule.spills and seg the segment slot within it
	// (unitYSeg only; -1 otherwise).
	spill, seg int
	// work is the unit's wedge-work estimate, used by the simulator.
	work int64
}

// spillInfo describes one hub split into neighbor-list segments that
// require a reduction.
type spillInfo struct {
	k    int // exposed-side id
	segs int // number of unitYSeg segments emitted
}

// schedule is a deterministic work-weighted partition of a traversal.
type schedule struct {
	units  []schedUnit
	spills []spillInfo
	total  int64 // Σ work
}

// schedTuning overrides the scheduler's constants; the zero value means
// defaults. Tests shrink minWork to force hub splitting on small
// graphs.
type schedTuning struct {
	// chunkDiv controls the guided target: a chunk closes once it holds
	// ≥ remaining/(threads·chunkDiv) work, so chunk sizes decrease as
	// the traversal drains.
	chunkDiv int
	// spillDiv sets the spill budget total/(threads·spillDiv); any
	// single vertex above it is split, and chunk targets never drop
	// below it.
	spillDiv int
	// minWork floors both budgets so tiny graphs schedule as one unit
	// instead of spawning workers that cannot amortize their start-up.
	minWork int64
}

const (
	defaultChunkDiv = 2
	defaultSpillDiv = 8
	defaultMinWork  = 256
)

func (t schedTuning) norm() schedTuning {
	if t.chunkDiv <= 0 {
		t.chunkDiv = defaultChunkDiv
	}
	if t.spillDiv <= 0 {
		t.spillDiv = defaultSpillDiv
	}
	if t.minWork <= 0 {
		t.minWork = defaultMinWork
	}
	return t
}

// workPerExposed returns the exact restricted wedge work of every
// exposed vertex — Σ over its neighbors y of the length of y's
// restricted partner list — in ONE pass over the secondary CSR, with no
// searches: in a sorted partner row z_0 < … < z_{d−1}, vertex z_i has
// exactly i partners below it and d−1−i above it.
func workPerExposed(exposed, secondary *sparse.CSR, above bool) []int64 {
	work := make([]int64, exposed.R)
	for y := 0; y < secondary.R; y++ {
		row := secondary.Row(y)
		if above {
			d := len(row) - 1
			for i, z := range row {
				work[z] += int64(d - i)
			}
		} else {
			for i, z := range row {
				work[z] += int64(i)
			}
		}
	}
	return work
}

// workFullExposed is the unrestricted variant (both directions,
// excluding the vertex itself) used by the per-vertex kernels.
func workFullExposed(exposed, secondary *sparse.CSR) []int64 {
	work := make([]int64, exposed.R)
	for y := 0; y < secondary.R; y++ {
		row := secondary.Row(y)
		d := int64(len(row) - 1)
		if d <= 0 {
			continue
		}
		for _, z := range row {
			work[z] += d
		}
	}
	return work
}

// workFullExposedMasked is workFullExposed restricted to active
// vertices. It also returns the per-secondary-row active membership
// counts, which the hub splitter reuses as per-neighbor segment work.
func workFullExposedMasked(exposed, secondary *sparse.CSR, active []bool) ([]int64, []int32) {
	work := make([]int64, exposed.R)
	rowAct := make([]int32, secondary.R)
	for y := 0; y < secondary.R; y++ {
		row := secondary.Row(y)
		var a int32
		for _, z := range row {
			if active[z] {
				a++
			}
		}
		rowAct[y] = a
		if a <= 1 {
			continue
		}
		for _, z := range row {
			if active[z] {
				work[z] += int64(a - 1)
			}
		}
	}
	return work, rowAct
}

// restrictedSegWork returns a closure computing the restricted wedge
// work of the yi-th neighbor of exposed vertex k — used to cut a
// spilled hub's neighbor list into balanced segments.
func restrictedSegWork(exposed, secondary *sparse.CSR, above bool) func(k, yi int) int64 {
	return func(k, yi int) int64 {
		y := exposed.Row(k)[yi]
		prow := secondary.Row(int(y))
		if above {
			return int64(len(prow) - searchInt32(prow, int32(k)+1))
		}
		return int64(searchInt32(prow, int32(k)))
	}
}

// buildSchedule partitions a traversal over len(work) exposed vertices
// into work-weighted units. desc reverses the traversal order. segWork
// and deg describe hub neighbor lists for neighbor-range splitting.
// bitsSplit, when non-nil, reports the candidate range of a hub the
// bitset kernel will process, enabling reduction-free candidate-range
// splitting; ptr must then be the exposed CSR's row-pointer array (its
// degree prefix sums), used to cut candidate ranges by modeled cost.
func buildSchedule(work []int64, desc bool, threads int, tun schedTuning,
	segWork func(k, yi int) int64, deg func(k int) int,
	bitsSplit func(k int) (lo, hi int, ok bool), ptr []int64) *schedule {

	tun = tun.norm()
	if threads < 1 {
		threads = 1
	}
	n := len(work)
	s := &schedule{}
	for _, w := range work {
		s.total += w
	}

	spillBudget := s.total / int64(threads*tun.spillDiv)
	if spillBudget < tun.minWork {
		spillBudget = tun.minWork
	}

	remaining := s.total
	curLo, curWork := -1, int64(0)
	flush := func(hiIdx int) {
		if curLo >= 0 {
			s.units = append(s.units, schedUnit{
				kind: unitChunk, lo: curLo, hi: hiIdx,
				hub: -1, spill: -1, seg: -1, work: curWork,
			})
			curLo, curWork = -1, 0
		}
	}

	for idx := 0; idx < n; idx++ {
		k := idx
		if desc {
			k = n - 1 - idx
		}
		w := work[k]
		if w > spillBudget && deg(k) > 1 {
			flush(idx)
			s.addSpill(idx, k, w, spillBudget, segWork, deg, bitsSplit, ptr)
			remaining -= w
			continue
		}
		if curLo < 0 {
			curLo = idx
		}
		curWork += w
		remaining -= w
		// Guided target: early chunks are large, later ones shrink with
		// the remaining work, floored at the spill budget.
		target := remaining / int64(threads*tun.chunkDiv)
		if target < spillBudget {
			target = spillBudget
		}
		if curWork >= target {
			flush(idx + 1)
		}
	}
	flush(n)
	return s
}

// addSpill splits hub k (work w > budget) into segments. idx is the
// hub's traversal index, used for the unsplittable fallback.
func (s *schedule) addSpill(idx, k int, w, budget int64,
	segWork func(k, yi int) int64, deg func(k int) int,
	bitsSplit func(k int) (int, int, bool), ptr []int64) {

	if bitsSplit != nil {
		if lo, hi, ok := bitsSplit(k); ok && hi > lo {
			s.addZSegs(k, lo, hi, w, budget, ptr)
			return
		}
	}

	d := deg(k)
	segs := int((w + budget - 1) / budget)
	if segs > d {
		segs = d
	}
	if segs < 2 {
		// Unsplittable (degree ≤ 1 hubs never reach here; deg 2+ with
		// segs computed 1 cannot happen since w > budget, but keep a
		// correct fallback).
		s.units = append(s.units, schedUnit{
			kind: unitChunk, lo: idx, hi: idx + 1,
			hub: -1, spill: -1, seg: -1, work: w,
		})
		return
	}

	spillIdx := len(s.spills)
	per := (w + int64(segs) - 1) / int64(segs)
	ylo, seg := 0, 0
	var sw int64
	for yi := 0; yi < d; yi++ {
		sw += segWork(k, yi)
		if seg < segs-1 && sw >= per {
			s.units = append(s.units, schedUnit{
				kind: unitYSeg, lo: ylo, hi: yi + 1,
				hub: k, spill: spillIdx, seg: seg, work: sw,
			})
			seg++
			ylo, sw = yi+1, 0
		}
	}
	// Final segment takes the remainder (possibly zero work, but it
	// must exist so the neighbor list is fully covered).
	s.units = append(s.units, schedUnit{
		kind: unitYSeg, lo: ylo, hi: d,
		hub: k, spill: spillIdx, seg: seg, work: sw,
	})
	s.spills = append(s.spills, spillInfo{k: k, segs: seg + 1})
}

// addZSegs splits hub k's candidate range [lo, hi) into segments of
// roughly equal modeled bitset cost (1 + deg(z) per candidate, prefix
// sums available as z + ptr[z]). Work shares are proportional so the
// simulator conserves total work exactly.
func (s *schedule) addZSegs(k, lo, hi int, w, budget int64, ptr []int64) {
	cost := func(z int) int64 { return int64(z) + ptr[z] }
	totalCost := cost(hi) - cost(lo)
	segs := int((w + budget - 1) / budget)
	if segs > hi-lo {
		segs = hi - lo
	}
	if segs < 2 || totalCost <= 0 {
		s.units = append(s.units, schedUnit{
			kind: unitZSeg, lo: lo, hi: hi,
			hub: k, spill: -1, seg: -1, work: w,
		})
		return
	}
	per := (totalCost + int64(segs) - 1) / int64(segs)
	zlo := lo
	var assigned int64
	for zlo < hi {
		targetF := cost(zlo) + per
		zhi := zlo + sort.Search(hi-zlo, func(i int) bool { return cost(zlo+i+1) >= targetF })
		zhi++
		if zhi > hi {
			zhi = hi
		}
		var share int64
		if zhi == hi {
			share = w - assigned
		} else {
			share = w * (cost(zhi) - cost(zlo)) / totalCost
		}
		assigned += share
		s.units = append(s.units, schedUnit{
			kind: unitZSeg, lo: zlo, hi: zhi,
			hub: k, spill: -1, seg: -1, work: share,
		})
		zlo = zhi
	}
}

// simulate assigns units to the least-loaded of `threads` workers in
// unit order — the deterministic steady-state model of dynamic
// claiming — and returns per-worker work totals.
func (s *schedule) simulate(threads int) []int64 {
	loads := make([]int64, threads)
	for _, u := range s.units {
		min := 0
		for t := 1; t < threads; t++ {
			if loads[t] < loads[min] {
				min = t
			}
		}
		loads[min] += u.work
	}
	return loads
}

// orient returns the exposed and secondary adjacency for an invariant:
// the column-partitioned family (1–4) exposes V2 (rows of Aᵀ), the
// row-partitioned family (5–8) exposes V1 (rows of A).
func orient(g interface {
	Adj() *sparse.CSR
	AdjT() *sparse.CSR
}, inv Invariant) (exposed, secondary *sparse.CSR) {
	if inv.PartitionsV2() {
		return g.AdjT(), g.Adj()
	}
	return g.Adj(), g.AdjT()
}
