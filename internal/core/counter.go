package core

import (
	"butterfly/internal/graph"
)

// Counter amortizes accumulator allocation across repeated sequential
// counts — the hot pattern in peeling loops, streaming snapshots and
// benchmark harnesses, where a fresh O(|V|) allocation per count
// dominates small-graph runtimes. The zero value is ready to use; a
// Counter is not safe for concurrent use.
type Counter struct {
	acc     []int32
	touched []int32
}

// NewCounter returns a Counter pre-sized for graphs whose exposed side
// has up to n vertices.
func NewCounter(n int) *Counter {
	return &Counter{acc: make([]int32, n), touched: make([]int32, 0, 1024)}
}

// Count counts butterflies in g with the invariant's sequential
// algorithm, reusing the Counter's buffers. Results are identical to
// core.Count.
func (c *Counter) Count(g *graph.Bipartite, inv Invariant) int64 {
	if inv < Inv1 || inv > Inv8 {
		panic("core: invalid invariant " + inv.String())
	}
	desc, above := inv.geometry()
	exposed, secondary := g.Adj(), g.AdjT()
	if inv.PartitionsV2() {
		exposed, secondary = g.AdjT(), g.Adj()
	}
	if len(c.acc) < exposed.R {
		c.acc = make([]int32, exposed.R)
	}
	// touched can hold at most one entry per exposed vertex, so sizing
	// it to the exposed side makes reuse allocation-free.
	if cap(c.touched) < exposed.R {
		c.touched = make([]int32, 0, exposed.R)
	}
	return countFamilyWith(c.acc, c.touched, exposed, secondary, desc, above)
}

// CountAuto counts with the automatically selected invariant.
func (c *Counter) CountAuto(g *graph.Bipartite) int64 {
	return c.Count(g, AutoInvariant(g))
}
