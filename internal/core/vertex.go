package core

import (
	"sync"
	"sync/atomic"

	"butterfly/internal/graph"
	"butterfly/internal/sparse"
)

// Side selects a bipartition side for per-vertex quantities.
type Side int

const (
	// SideV1 refers to the row side of the biadjacency matrix.
	SideV1 Side = iota
	// SideV2 refers to the column side.
	SideV2
)

// String names the side.
func (s Side) String() string {
	if s == SideV1 {
		return "V1"
	}
	return "V2"
}

// VertexButterflies returns the number of butterflies each vertex of
// the chosen side participates in — the vector s of equation (19)
// (with the ½ per-vertex coefficient; see the erratum note on
// dense.SpecVertexButterflies). Σ of the result is 2·ΞG.
//
// The computation exposes each vertex u once and accumulates wedge
// multiplicities β against partners w < u, crediting C(β, 2) to both
// endpoints, so each pair is touched exactly once.
func VertexButterflies(g *graph.Bipartite, side Side) []int64 {
	exposed, secondary := g.Adj(), g.AdjT()
	if side == SideV2 {
		exposed, secondary = g.AdjT(), g.Adj()
	}
	n := exposed.R
	s := make([]int64, n)
	acc := make([]int32, n)
	touched := make([]int32, 0, 1024)

	for u := 0; u < n; u++ {
		u32 := int32(u)
		for _, y := range exposed.Row(u) {
			prow := secondary.Row(int(y))
			for _, w := range prow {
				if w >= u32 {
					break
				}
				if acc[w] == 0 {
					touched = append(touched, w)
				}
				acc[w]++
			}
		}
		for _, w := range touched {
			c := int64(acc[w])
			b := c * (c - 1) / 2
			s[u] += b
			s[w] += b
			acc[w] = 0
		}
		touched = touched[:0]
	}
	return s
}

// VertexButterfliesParallel computes the same vector with `threads`
// workers. Each worker enumerates the full partner set of its exposed
// vertices (both directions) and writes only its own entries, trading
// 2× wedge work for a race-free partition; results are identical to
// the sequential version.
func VertexButterfliesParallel(g *graph.Bipartite, side Side, threads int) []int64 {
	if threads <= 1 {
		return VertexButterflies(g, side)
	}
	exposed, secondary := g.Adj(), g.AdjT()
	if side == SideV2 {
		exposed, secondary = g.AdjT(), g.Adj()
	}
	n := exposed.R
	s := make([]int64, n)

	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
	)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			acc := make([]int32, n)
			touched := make([]int32, 0, 1024)
			for {
				start := int(cursor.Add(parChunk)) - parChunk
				if start >= n {
					break
				}
				end := start + parChunk
				if end > n {
					end = n
				}
				for u := start; u < end; u++ {
					u32 := int32(u)
					for _, y := range exposed.Row(u) {
						for _, w := range secondary.Row(int(y)) {
							if w == u32 {
								continue
							}
							if acc[w] == 0 {
								touched = append(touched, w)
							}
							acc[w]++
						}
					}
					var su int64
					for _, w := range touched {
						c := int64(acc[w])
						su += c * (c - 1) / 2
						acc[w] = 0
					}
					touched = touched[:0]
					s[u] = su
				}
			}
		}()
	}
	wg.Wait()
	return s
}

// vertexButterfliesMasked is the peeling-aware variant: only vertices
// with active[x] on the exposed side participate (their edges are
// considered removed otherwise). Opposite-side vertices are never
// masked here — k-tip peels one side. Used by internal/peel.
func vertexButterfliesMasked(exposed, secondary *sparse.CSR, active []bool) []int64 {
	n := exposed.R
	s := make([]int64, n)
	acc := make([]int32, n)
	touched := make([]int32, 0, 1024)

	for u := 0; u < n; u++ {
		if !active[u] {
			continue
		}
		u32 := int32(u)
		for _, y := range exposed.Row(u) {
			for _, w := range secondary.Row(int(y)) {
				if w >= u32 {
					break
				}
				if !active[w] {
					continue
				}
				if acc[w] == 0 {
					touched = append(touched, w)
				}
				acc[w]++
			}
		}
		for _, w := range touched {
			c := int64(acc[w])
			b := c * (c - 1) / 2
			s[u] += b
			s[w] += b
			acc[w] = 0
		}
		touched = touched[:0]
	}
	return s
}

// VertexButterfliesMasked computes per-vertex butterfly counts for the
// chosen side counting only butterflies whose two exposed-side vertices
// are both active. Entries of inactive vertices are zero.
func VertexButterfliesMasked(g *graph.Bipartite, side Side, active []bool) []int64 {
	exposed, secondary := g.Adj(), g.AdjT()
	if side == SideV2 {
		exposed, secondary = g.AdjT(), g.Adj()
	}
	if len(active) != exposed.R {
		panic("core: active mask length mismatch")
	}
	return vertexButterfliesMasked(exposed, secondary, active)
}

// VertexButterfliesMaskedParallel is VertexButterfliesMasked with
// `threads` workers; each worker enumerates the full partner set of
// its vertices and writes only its own entries (2× wedge work for a
// race-free partition, as in VertexButterfliesParallel).
func VertexButterfliesMaskedParallel(g *graph.Bipartite, side Side, active []bool, threads int) []int64 {
	if threads <= 1 {
		return VertexButterfliesMasked(g, side, active)
	}
	exposed, secondary := g.Adj(), g.AdjT()
	if side == SideV2 {
		exposed, secondary = g.AdjT(), g.Adj()
	}
	if len(active) != exposed.R {
		panic("core: active mask length mismatch")
	}
	n := exposed.R
	s := make([]int64, n)
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
	)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			acc := make([]int32, n)
			touched := make([]int32, 0, 1024)
			for {
				start := int(cursor.Add(parChunk)) - parChunk
				if start >= n {
					break
				}
				end := start + parChunk
				if end > n {
					end = n
				}
				for u := start; u < end; u++ {
					if !active[u] {
						continue
					}
					u32 := int32(u)
					for _, y := range exposed.Row(u) {
						for _, w := range secondary.Row(int(y)) {
							if w == u32 || !active[w] {
								continue
							}
							if acc[w] == 0 {
								touched = append(touched, w)
							}
							acc[w]++
						}
					}
					var su int64
					for _, w := range touched {
						c := int64(acc[w])
						su += c * (c - 1) / 2
						acc[w] = 0
					}
					touched = touched[:0]
					s[u] = su
				}
			}
		}()
	}
	wg.Wait()
	return s
}
