package core

import (
	"sync"
	"sync/atomic"

	"butterfly/internal/graph"
	"butterfly/internal/sparse"
)

// Side selects a bipartition side for per-vertex quantities.
type Side int

const (
	// SideV1 refers to the row side of the biadjacency matrix.
	SideV1 Side = iota
	// SideV2 refers to the column side.
	SideV2
)

// String names the side.
func (s Side) String() string {
	if s == SideV1 {
		return "V1"
	}
	return "V2"
}

func vertexOrient(g *graph.Bipartite, side Side) (exposed, secondary *sparse.CSR) {
	if side == SideV2 {
		return g.AdjT(), g.Adj()
	}
	return g.Adj(), g.AdjT()
}

// VertexButterflies returns the number of butterflies each vertex of
// the chosen side participates in — the vector s of equation (19)
// (with the ½ per-vertex coefficient; see the erratum note on
// dense.SpecVertexButterflies). Σ of the result is 2·ΞG.
//
// The computation exposes each vertex u once and accumulates wedge
// multiplicities β against partners w < u, crediting C(β, 2) to both
// endpoints, so each pair is touched exactly once.
func VertexButterflies(g *graph.Bipartite, side Side) []int64 {
	exposed, secondary := vertexOrient(g, side)
	s := make([]int64, exposed.R)
	ws := newWorkspace(exposed.R)
	vertexHalfInto(s, exposed, secondary, nil, ws)
	return s
}

// VertexButterfliesParallel computes the same vector with up to
// `threads` workers on the work-weighted schedule; results are
// identical to the sequential version.
func VertexButterfliesParallel(g *graph.Bipartite, side Side, threads int) []int64 {
	exposed, _ := vertexOrient(g, side)
	s := make([]int64, exposed.R)
	vertexButterfliesInto(s, g, side, nil, threads, nil)
	return s
}

// vertexHalfInto is the sequential half kernel: expose each (active)
// vertex u, accumulate β against partners w < u, credit C(β, 2) to both
// endpoints. Adds into s, which must be zeroed by the caller.
func vertexHalfInto(s []int64, exposed, secondary *sparse.CSR, active []bool, ws *workspace) {
	n := exposed.R
	acc, touched := ws.acc, ws.touched
	for u := 0; u < n; u++ {
		if active != nil && !active[u] {
			continue
		}
		u32 := int32(u)
		for _, y := range exposed.Row(u) {
			for _, w := range secondary.Row(int(y)) {
				if w >= u32 {
					break
				}
				if active != nil && !active[w] {
					continue
				}
				if acc[w] == 0 {
					touched = append(touched, w)
				}
				acc[w]++
			}
		}
		for _, w := range touched {
			c := int64(acc[w])
			b := c * (c - 1) / 2
			s[u] += b
			s[w] += b
			acc[w] = 0
		}
		touched = touched[:0]
	}
	ws.touched = touched
}

// vertexFullOne computes s[u] with the full (both-direction) partner
// enumeration — the race-free per-vertex unit of the parallel kernel.
func vertexFullOne(u int, exposed, secondary *sparse.CSR, active []bool, ws *workspace) int64 {
	acc, touched := ws.acc, ws.touched
	u32 := int32(u)
	for _, y := range exposed.Row(u) {
		for _, w := range secondary.Row(int(y)) {
			if w == u32 {
				continue
			}
			if active != nil && !active[w] {
				continue
			}
			if acc[w] == 0 {
				touched = append(touched, w)
			}
			acc[w]++
		}
	}
	var su int64
	for _, w := range touched {
		c := int64(acc[w])
		su += c * (c - 1) / 2
		acc[w] = 0
	}
	ws.touched = touched[:0]
	return su
}

// vertexSegPairs runs the full partner enumeration for neighbor-list
// segment [ylo, yhi) of hub u and exports the partial wedge counts for
// the reduction phase.
func vertexSegPairs(u, ylo, yhi int, exposed, secondary *sparse.CSR, active []bool, ws *workspace) []hubPair {
	acc, touched := ws.acc, ws.touched
	u32 := int32(u)
	for _, y := range exposed.Row(u)[ylo:yhi] {
		for _, w := range secondary.Row(int(y)) {
			if w == u32 {
				continue
			}
			if active != nil && !active[w] {
				continue
			}
			if acc[w] == 0 {
				touched = append(touched, w)
			}
			acc[w]++
		}
	}
	out := make([]hubPair, len(touched))
	for i, w := range touched {
		out[i] = hubPair{z: w, c: acc[w]}
		acc[w] = 0
	}
	ws.touched = touched[:0]
	return out
}

// vertexWork returns the per-vertex work vector of the full kernel and
// the per-neighbor segment-work closure used to split hubs.
func vertexWork(exposed, secondary *sparse.CSR, active []bool) ([]int64, func(k, yi int) int64) {
	if active == nil {
		work := workFullExposed(exposed, secondary)
		return work, func(k, yi int) int64 {
			d := secondary.RowDeg(int(exposed.Row(k)[yi]))
			if d <= 1 {
				return 0
			}
			return int64(d - 1)
		}
	}
	work, rowAct := workFullExposedMasked(exposed, secondary, active)
	return work, func(k, yi int) int64 {
		a := rowAct[exposed.Row(k)[yi]]
		if a <= 1 {
			return 0
		}
		return int64(a - 1)
	}
}

// vertexButterfliesInto fills s (len = side size) with per-vertex
// butterfly counts, optionally masked to active vertices, with up to
// `threads` workers and scratch from a (nil allowed). s is zeroed
// first, so one buffer can serve every round of a peeling loop.
func vertexButterfliesInto(s []int64, g *graph.Bipartite, side Side, active []bool, threads int, a *Arena) {
	exposed, secondary := vertexOrient(g, side)
	n := exposed.R
	if len(s) != n {
		panic("core: vertex output length mismatch")
	}
	if active != nil && len(active) != n {
		panic("core: active mask length mismatch")
	}
	for i := range s {
		s[i] = 0
	}
	if threads <= 1 {
		// The half kernel does 2× less wedge work than the parallel
		// full kernel and allocates nothing beyond the workspace.
		ws := a.get(n)
		vertexHalfInto(s, exposed, secondary, active, ws)
		a.put(ws)
		return
	}

	work, segW := vertexWork(exposed, secondary, active)
	sched := buildSchedule(work, false, threads, schedTuning{}, segW, exposed.RowDeg, nil, nil)
	if threads > len(sched.units) {
		threads = len(sched.units)
	}
	if threads <= 1 {
		ws := a.get(n)
		vertexHalfInto(s, exposed, secondary, active, ws)
		a.put(ws)
		return
	}

	parts := make([][][]hubPair, len(sched.spills))
	for i, sp := range sched.spills {
		parts[i] = make([][]hubPair, sp.segs)
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
	)
	nUnits := len(sched.units)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := a.get(n)
			defer a.put(ws)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= nUnits {
					break
				}
				u := &sched.units[i]
				switch u.kind {
				case unitChunk:
					for v := u.lo; v < u.hi; v++ {
						if active != nil && !active[v] {
							continue
						}
						s[v] = vertexFullOne(v, exposed, secondary, active, ws)
					}
				case unitYSeg:
					parts[u.spill][u.seg] = vertexSegPairs(u.hub, u.lo, u.hi, exposed, secondary, active, ws)
				}
			}
		}()
	}
	wg.Wait()

	// Reduce split hubs: merge the partial wedge counts and apply the
	// butterfly formula; each hub is written by exactly one reducer.
	if len(sched.spills) > 0 {
		ws := a.get(n)
		for i, sp := range sched.spills {
			acc, touched := ws.acc, ws.touched
			for _, seg := range parts[i] {
				for _, p := range seg {
					if acc[p.z] == 0 {
						touched = append(touched, p.z)
					}
					acc[p.z] += p.c
				}
			}
			s[sp.k] = flush(acc, &touched)
			ws.touched = touched
		}
		a.put(ws)
	}
}

// VertexButterfliesMasked computes per-vertex butterfly counts for the
// chosen side counting only butterflies whose two exposed-side vertices
// are both active. Entries of inactive vertices are zero.
func VertexButterfliesMasked(g *graph.Bipartite, side Side, active []bool) []int64 {
	exposed, secondary := vertexOrient(g, side)
	if len(active) != exposed.R {
		panic("core: active mask length mismatch")
	}
	s := make([]int64, exposed.R)
	ws := newWorkspace(exposed.R)
	vertexHalfInto(s, exposed, secondary, active, ws)
	return s
}

// VertexButterfliesMaskedParallel is VertexButterfliesMasked with up to
// `threads` workers on the work-weighted schedule; results are
// identical to the sequential version.
func VertexButterfliesMaskedParallel(g *graph.Bipartite, side Side, active []bool, threads int) []int64 {
	exposed, _ := vertexOrient(g, side)
	s := make([]int64, exposed.R)
	vertexButterfliesInto(s, g, side, active, threads, nil)
	return s
}

// VertexButterfliesMaskedInto is the allocation-conscious form used by
// peeling loops: the caller supplies the output buffer and an arena,
// so repeated rounds over the same graph allocate nothing (see
// TestTipRoundsArenaZeroAlloc). s must have the side's length; active
// may be nil for an unmasked count.
func VertexButterfliesMaskedInto(s []int64, g *graph.Bipartite, side Side, active []bool, threads int, a *Arena) {
	vertexButterfliesInto(s, g, side, active, threads, a)
}
