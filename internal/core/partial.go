package core

import (
	"slices"

	"butterfly/internal/graph"
)

// PairCount is one entry of a V1-centered wedge partial: C wedges
// (v—u—w) with center u in this graph's V1 and endpoints V < W in V2.
// It is the cross-node analogue of the hub-split partial-pair
// accumulator (kernel.go segPairs/reducePairs): C(β, 2) is not
// additive across partitions of the center side, so partitions export
// integer wedge counts and a reduction phase merges them before the
// butterfly formula is applied.
type PairCount struct {
	V, W int32
	C    int64
}

// WedgePartials returns g's V1-centered wedge frequency map over V2
// endpoint pairs, sorted by (V, W). Merging the partials of an
// edge-disjoint V1 partition of a graph reconstructs the exact wedge
// multiset of the whole graph, because each wedge's center lives in
// exactly one partition:
//
//	butterflies(g) = Σ_{(v,w)} C(Σ_parts β_vw, 2)
//
// Cost is O(Σ_u C(deg u, 2)) time and O(wedges) transient memory —
// the same wedge work as a sequential count, plus the materialized
// map.
func WedgePartials(g *graph.Bipartite) []PairCount {
	var wedges int64
	for u := 0; u < g.NumV1(); u++ {
		d := int64(g.DegreeV1(u))
		wedges += d * (d - 1) / 2
	}
	keys := make([]uint64, 0, wedges)
	for u := 0; u < g.NumV1(); u++ {
		row := g.NeighborsOfV1(u)
		for i, v := range row {
			for _, w := range row[i+1:] {
				// CSR rows are sorted, so v < w and the key orders
				// pairs lexicographically.
				keys = append(keys, uint64(v)<<32|uint64(uint32(w)))
			}
		}
	}
	slices.Sort(keys)
	out := make([]PairCount, 0, len(keys)/2+1)
	for i := 0; i < len(keys); {
		j := i + 1
		for j < len(keys) && keys[j] == keys[i] {
			j++
		}
		out = append(out, PairCount{
			V: int32(keys[i] >> 32),
			W: int32(uint32(keys[i])),
			C: int64(j - i),
		})
		i = j
	}
	return out
}

// WedgePartialsOf returns the wedge partial restricted to the given
// V1 centers: only wedges (v—u—w) with u ∈ centers contribute.
// Duplicate and out-of-range centers are ignored. This is the delta
// kernel's workhorse — a mutation batch touches a handful of centers,
// and the partial-map change is exactly the difference of the touched
// centers' contributions before and after, O(Σ_{u∈centers} C(deg u, 2))
// instead of O(wedges).
func WedgePartialsOf(g *graph.Bipartite, centers []int) []PairCount {
	seen := make(map[int]struct{}, len(centers))
	var wedges int64
	for _, u := range centers {
		if u < 0 || u >= g.NumV1() {
			continue
		}
		if _, dup := seen[u]; dup {
			continue
		}
		seen[u] = struct{}{}
		d := int64(g.DegreeV1(u))
		wedges += d * (d - 1) / 2
	}
	keys := make([]uint64, 0, wedges)
	for u := range seen {
		row := g.NeighborsOfV1(u)
		for i, v := range row {
			for _, w := range row[i+1:] {
				keys = append(keys, uint64(v)<<32|uint64(uint32(w)))
			}
		}
	}
	slices.Sort(keys)
	out := make([]PairCount, 0, len(keys)/2+1)
	for i := 0; i < len(keys); {
		j := i + 1
		for j < len(keys) && keys[j] == keys[i] {
			j++
		}
		out = append(out, PairCount{
			V: int32(keys[i] >> 32),
			W: int32(uint32(keys[i])),
			C: int64(j - i),
		})
		i = j
	}
	return out
}

func pairKey(p PairCount) uint64 { return uint64(p.V)<<32 | uint64(uint32(p.W)) }

// SumPartialDeltas merges sorted signed partial deltas by summing
// counts per pair key and dropping entries that cancel to zero. It is
// used both to compose consecutive per-version deltas (shard-side log
// compaction for a `?since=` reply spanning several versions) and to
// compute a diff: SumPartialDeltas(after, negate(before)).
func SumPartialDeltas(parts ...[]PairCount) []PairCount {
	idx := make([]int, len(parts))
	var out []PairCount
	for {
		minKey := uint64(1)<<63 | uint64(1)<<62
		live := false
		for p, part := range parts {
			if idx[p] < len(part) {
				if k := pairKey(part[idx[p]]); !live || k < minKey {
					minKey, live = k, true
				}
			}
		}
		if !live {
			return out
		}
		var c int64
		for p, part := range parts {
			if idx[p] < len(part) && pairKey(part[idx[p]]) == minKey {
				c += part[idx[p]].C
				idx[p]++
			}
		}
		if c != 0 {
			out = append(out, PairCount{V: int32(minKey >> 32), W: int32(uint32(minKey)), C: c})
		}
	}
}

// DiffPartials returns the signed delta after − before over pair keys:
// applying the result to `before` with ApplyPartialDelta reconstructs
// `after` exactly. Both inputs must be sorted by (V, W); entries with
// equal counts cancel out of the result.
func DiffPartials(after, before []PairCount) []PairCount {
	neg := make([]PairCount, len(before))
	for i, p := range before {
		neg[i] = PairCount{V: p.V, W: p.W, C: -p.C}
	}
	return SumPartialDeltas(after, neg)
}

// ApplyPartialDelta merges a signed delta into a (non-negative) base
// partial, dropping pairs whose count reaches zero. A pair driven
// negative means the delta does not belong to this base version — the
// caller's pinned copy is stale or corrupt — and is reported as an
// error rather than silently clamped.
func ApplyPartialDelta(base, delta []PairCount) ([]PairCount, error) {
	merged := SumPartialDeltas(base, delta)
	for _, p := range merged {
		if p.C < 0 {
			return nil, &NegativePartialError{V: p.V, W: p.W, C: p.C}
		}
	}
	return merged, nil
}

// NegativePartialError reports a delta application that drove a wedge
// count below zero — the signal that the base partial and the delta
// frame disagree about the starting version.
type NegativePartialError struct {
	V, W int32
	C    int64
}

func (e *NegativePartialError) Error() string {
	return "core: partial delta drove pair below zero"
}

// CountFromPartials merges sorted wedge partials (a k-way merge over
// the pair keys) and applies Σ C(β, 2) — the distributed reduction
// that turns per-partition exports into the exact global butterfly
// count. Passing a single partial computes the count of that graph
// alone.
func CountFromPartials(parts ...[]PairCount) int64 {
	idx := make([]int, len(parts))
	var total int64
	for {
		// Find the minimum live key across all partials.
		minKey := uint64(1)<<63 | uint64(1)<<62 // sentinel above any packed pair
		live := false
		for p, part := range parts {
			if idx[p] < len(part) {
				k := uint64(part[idx[p]].V)<<32 | uint64(uint32(part[idx[p]].W))
				if !live || k < minKey {
					minKey, live = k, true
				}
			}
		}
		if !live {
			return total
		}
		var beta int64
		for p, part := range parts {
			if idx[p] < len(part) {
				e := part[idx[p]]
				if uint64(e.V)<<32|uint64(uint32(e.W)) == minKey {
					beta += e.C
					idx[p]++
				}
			}
		}
		total += beta * (beta - 1) / 2
	}
}
