package core

import (
	"sort"
	"sync/atomic"

	"butterfly/internal/graph"
	"butterfly/internal/sparse"
)

// countSeq runs the sequential algorithm for one invariant. The
// column-partitioned family (1–4) exposes vertices of V2, walking the
// CSC of A (stored as CSR of Aᵀ); the row-partitioned family (5–8)
// exposes vertices of V1, walking the CSR of A — matching the paper's
// storage discussion in Section V.
func countSeq(g *graph.Bipartite, inv Invariant) int64 {
	desc, above := inv.geometry()
	if inv.PartitionsV2() {
		return countFamily(g.AdjT(), g.Adj(), desc, above)
	}
	return countFamily(g.Adj(), g.AdjT(), desc, above)
}

// countSeqHub is the sequential traversal through the hybrid kernel:
// identical counts to countSeq, but dense exposed vertices may take the
// bitset path per the policy's cost model, and scratch state comes from
// the (optional) arena. A non-nil stop flag is polled between exposed
// vertices — a point where the workspace is at rest, so an aborted run
// still returns a clean workspace to the arena.
func countSeqHub(g *graph.Bipartite, inv Invariant, pol HubPolicy, agg AggPolicy, a *Arena, stop *atomic.Bool) int64 {
	desc, above := inv.geometry()
	exposed, secondary := orient(g, inv)
	if pol == HubNever && agg == AggHist {
		// Pure sparse histogram path: skip the kernel analysis entirely
		// so a warm arena makes repeated counts allocation-free.
		ws := a.get(exposed.R)
		defer a.put(ws)
		return countFamilyStop(ws.acc, ws.touched, exposed, secondary, desc, above, stop)
	}
	kn := newKernShared(exposed, secondary, above, pol, agg, nil).worker(a)
	defer kn.release()
	nExp := exposed.R
	var total int64
	for idx := 0; idx < nExp; idx++ {
		if idx&stopStride == 0 && stopped(stop) {
			return total
		}
		k := idx
		if desc {
			k = nExp - 1 - idx
		}
		total += kn.contrib(k)
	}
	return total
}

// stopStride masks the iteration index for cancellation polls: a
// checkpoint every 256 exposed vertices keeps the poll off the hot
// wedge loop while bounding abort latency to a few hundred rows.
const stopStride = 0xFF

// countFamily implements the shared wedge-accumulation kernel behind
// all eight invariants (the paper's update (18) with the subtraction
// term folded away):
//
// for each exposed vertex k (a row of `exposed`, i.e. a vertex of the
// partitioned side), and each of its neighbors y on the opposite side,
// every partner z ∈ N(y) on the exposed side with z<k (eager) or z>k
// (look-ahead) increments a wedge accumulator; the iteration's
// butterfly contribution is Σ_z C(acc[z], 2).
//
// `exposed` holds the adjacency of the partitioned side (rows =
// exposed-side vertices); `secondary` is its transpose. desc reverses
// the traversal; above selects partners with larger index.
func countFamily(exposed, secondary *sparse.CSR, desc, above bool) int64 {
	nExp := exposed.R
	return countFamilyWith(make([]int32, nExp), make([]int32, 0, 1024), exposed, secondary, desc, above)
}

// countFamilyWith is countFamily with caller-supplied buffers
// (len(acc) ≥ exposed.R, all zero; touched empty). Both come back in
// that state, so a Counter can reuse them across calls.
func countFamilyWith(acc, touched []int32, exposed, secondary *sparse.CSR, desc, above bool) int64 {
	return countFamilyStop(acc, touched, exposed, secondary, desc, above, nil)
}

// countFamilyStop is countFamilyWith with a cancellation flag polled
// every stopStride+1 exposed vertices. The poll sits at the iteration
// boundary, after the previous iteration's flush, so the accumulator is
// all-zero and touched empty whenever the loop aborts — the buffer
// at-rest invariant holds for partial runs too.
func countFamilyStop(acc, touched []int32, exposed, secondary *sparse.CSR, desc, above bool, stop *atomic.Bool) int64 {
	nExp := exposed.R
	var total int64

	for idx := 0; idx < nExp; idx++ {
		if idx&stopStride == 0 && stopped(stop) {
			return total
		}
		k := idx
		if desc {
			k = nExp - 1 - idx
		}
		k32 := int32(k)
		for _, y := range exposed.Row(k) {
			prow := secondary.Row(int(y))
			if above {
				for _, z := range prow[searchInt32(prow, k32+1):] {
					if acc[z] == 0 {
						touched = append(touched, z)
					}
					acc[z]++
				}
			} else {
				for _, z := range prow {
					if z >= k32 {
						break
					}
					if acc[z] == 0 {
						touched = append(touched, z)
					}
					acc[z]++
				}
			}
		}
		total += flush(acc, &touched)
	}
	return total
}

// flush sums C(acc[z], 2) over the touched list and resets it.
func flush(acc []int32, touched *[]int32) int64 {
	var t int64
	for _, z := range *touched {
		c := int64(acc[z])
		t += c * (c - 1) / 2
		acc[z] = 0
	}
	*touched = (*touched)[:0]
	return t
}

// searchInt32 returns the first index in the sorted slice s whose value
// is ≥ x.
func searchInt32(s []int32, x int32) int {
	// Small rows dominate; a linear scan beats binary search below a
	// threshold and falls back to sort.Search above it.
	if len(s) <= 16 {
		for i, v := range s {
			if v >= x {
				return i
			}
		}
		return len(s)
	}
	return sort.Search(len(s), func(i int) bool { return s[i] >= x })
}

// countBlocked is the blocked refinement of the family: each iteration
// exposes a block of `block` consecutive vertices instead of one
// (a1 → A1 in the FLAME worksheet). Cross-partition butterflies are
// accumulated per exposed vertex against the block-external partner
// region, then block-internal pairs are handled within the block, which
// keeps the accumulator's working set block-local for the second pass.
// The count is identical to the unblocked algorithm for every
// invariant. A non-nil stop flag is polled once per block (blocks are
// small, so abort latency stays bounded).
func countBlocked(g *graph.Bipartite, inv Invariant, block int, stop *atomic.Bool) int64 {
	desc, above := inv.geometry()
	var exposed, secondary *sparse.CSR
	if inv.PartitionsV2() {
		exposed, secondary = g.AdjT(), g.Adj()
	} else {
		exposed, secondary = g.Adj(), g.AdjT()
	}

	nExp := exposed.R
	acc := make([]int32, nExp)
	touched := make([]int32, 0, 1024)
	var total int64

	for b0 := 0; b0 < nExp; b0 += block {
		if stopped(stop) {
			return total
		}
		b1 := b0 + block
		if b1 > nExp {
			b1 = nExp
		}
		lo, hi := int32(b0), int32(b1) // exposed block is [lo, hi)
		if desc {
			lo, hi = int32(nExp-b1), int32(nExp-b0)
		}

		// Pass 1: cross-partition pairs — partners strictly outside the
		// block on the restriction side.
		for k := lo; k < hi; k++ {
			for _, y := range exposed.Row(int(k)) {
				prow := secondary.Row(int(y))
				if above {
					for _, z := range prow[searchInt32(prow, hi):] {
						if acc[z] == 0 {
							touched = append(touched, z)
						}
						acc[z]++
					}
				} else {
					for _, z := range prow {
						if z >= lo {
							break
						}
						if acc[z] == 0 {
							touched = append(touched, z)
						}
						acc[z]++
					}
				}
			}
			total += flush(acc, &touched)
		}

		// Pass 2: block-internal pairs — both endpoints inside [lo, hi).
		for k := lo; k < hi; k++ {
			for _, y := range exposed.Row(int(k)) {
				prow := secondary.Row(int(y))
				start := searchInt32(prow, lo)
				for _, z := range prow[start:] {
					if z >= k {
						break
					}
					if acc[z] == 0 {
						touched = append(touched, z)
					}
					acc[z]++
				}
			}
			total += flush(acc, &touched)
		}
	}
	return total
}
