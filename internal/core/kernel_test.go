package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/dense"
	"butterfly/internal/gen"
	"butterfly/internal/graph"
)

var allPolicies = []HubPolicy{HubAuto, HubNever, HubAlways}

func TestHubPolicyString(t *testing.T) {
	cases := map[HubPolicy]string{
		HubAuto: "HubAuto", HubNever: "HubNever", HubAlways: "HubAlways",
		HubPolicy(42): "HubPolicy(?)",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
	if HubPolicy(0) != HubAuto {
		t.Fatal("HubAuto must be the zero value")
	}
}

// The headline exactness claim of the hybrid kernel: the bitset path
// agrees bit-for-bit with the sparse path for every invariant, across
// thresholds forced to 0 (HubAlways) and ∞ (HubNever), and across
// Threads ∈ {1, 2, 4, 8}. Exhaustive over all 512 graphs on 3×3.
func TestHybridKernelExhaustive3x3(t *testing.T) {
	enumerateGraphs(3, 3, func(d *dense.Matrix, g *graph.Bipartite) {
		want := bruteCount(d)
		for _, inv := range Invariants() {
			for _, pol := range allPolicies {
				for _, threads := range []int{1, 2, 4, 8} {
					got := CountWith(g, Options{Invariant: inv, Threads: threads, Hub: pol})
					if got != want {
						t.Fatalf("graph %v %v %v threads=%d: %d, want %d",
							d.Data, inv, pol, threads, got, want)
					}
				}
			}
		}
	})
}

// Property form of the same claim on random graphs large enough to hit
// the bitset fast paths (pre-materialized hub bitsets need ≥ 64
// secondary vertices; the exhaustive test above cannot reach them).
func TestQuickHybridKernelMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 20)
		want := dense.SpecCount(d)
		for _, inv := range Invariants() {
			for _, pol := range allPolicies {
				for _, threads := range []int{1, 2, 4, 8} {
					if CountWith(g, Options{Invariant: inv, Threads: threads, Hub: pol}) != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// denseHubGraph builds a bipartite graph with `hubs` V2 vertices
// adjacent to every V1 vertex plus a sparse random tail — the dense-hub
// regime where word-wise AND + popcount dominates the sparse kernel.
func denseHubGraph(n1, n2, hubs, tailDeg int, seed int64) *graph.Bipartite {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n1, n2)
	for v := 0; v < hubs; v++ {
		for u := 0; u < n1; u++ {
			b.AddEdge(u, v)
		}
	}
	for v := hubs; v < n2; v++ {
		for t := 0; t < tailDeg; t++ {
			b.AddEdge(rng.Intn(n1), v)
		}
	}
	return b.Build()
}

func TestHybridKernelDenseHubAllPolicies(t *testing.T) {
	g := denseHubGraph(256, 256, 24, 4, 5)
	for _, inv := range Invariants() {
		want := CountWith(g, Options{Invariant: inv, Hub: HubNever})
		for _, pol := range allPolicies {
			for _, threads := range []int{1, 2, 4, 8} {
				got := CountWith(g, Options{Invariant: inv, Threads: threads, Hub: pol})
				if got != want {
					t.Fatalf("%v %v threads=%d: %d, want %d", inv, pol, threads, got, want)
				}
			}
		}
	}
	// Sanity: the graph must actually trigger the auto bitset path.
	exposed, secondary := orient(g, Inv2)
	_, above := Inv2.geometry()
	ks := newKernShared(exposed, secondary, above, HubAuto, AggHist, nil)
	if !ks.anyBits {
		t.Fatal("dense-hub graph did not trigger the auto bitset path")
	}
	var nHubBits int
	for _, hb := range ks.hubBits {
		if hb != nil {
			nHubBits++
		}
	}
	if nHubBits == 0 {
		t.Fatal("no hub bitsets were materialized")
	}
}

// Forced hub splitting: shrinking the scheduler budgets makes even
// small graphs spill, exercising segment export + reduction (sparse
// hubs) and candidate-range splitting (bitset hubs) under every policy.
func TestQuickForcedSpillExactness(t *testing.T) {
	tun := schedTuning{minWork: 1, spillDiv: 2, chunkDiv: 2}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 18)
		want := dense.SpecCount(d)
		for _, inv := range Invariants() {
			for _, pol := range allPolicies {
				for _, threads := range []int{2, 4, 8} {
					if countParallelTuned(g, inv, threads, pol, AggHist, nil, tun, nil) != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForcedSpillPowerLaw(t *testing.T) {
	g := gen.PowerLawBipartite(900, 700, 6000, 0.85, 0.75, 9)
	tun := schedTuning{minWork: 1, spillDiv: 4}
	for _, inv := range Invariants() {
		want := Count(g, inv)
		for _, pol := range allPolicies {
			for _, threads := range []int{2, 4, 8} {
				if got := countParallelTuned(g, inv, threads, pol, AggHist, nil, tun, nil); got != want {
					t.Fatalf("%v %v threads=%d: %d, want %d", inv, pol, threads, got, want)
				}
			}
		}
	}
}

// An arena shared across counts — including counts over different
// graphs and orientations — must never change results.
func TestArenaSharedAcrossCounts(t *testing.T) {
	arena := NewArena()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		d, g := randGraphAndDense(rng, 16)
		want := dense.SpecCount(d)
		for _, inv := range Invariants() {
			for _, threads := range []int{1, 4} {
				got := CountWith(g, Options{Invariant: inv, Threads: threads, Arena: arena})
				if got != want {
					t.Fatalf("trial %d %v threads=%d: %d, want %d", trial, inv, threads, got, want)
				}
			}
		}
	}
	if arena.Size() == 0 {
		t.Fatal("arena never pooled a workspace")
	}
}

// The per-vertex kernels must agree across threads, masks and the
// work-weighted schedule (hub splitting included via the power-law
// skew at default tuning on a larger graph).
func TestVertexButterfliesIntoMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.PowerLawBipartite(700, 500, 5000, 0.8, 0.7, 13)
	arena := NewArena()
	for _, side := range []Side{SideV1, SideV2} {
		n := g.NumV1()
		if side == SideV2 {
			n = g.NumV2()
		}
		active := make([]bool, n)
		for i := range active {
			active[i] = rng.Intn(4) > 0
		}
		wantFull := VertexButterflies(g, side)
		wantMasked := VertexButterfliesMasked(g, side, active)
		s := make([]int64, n)
		for _, threads := range []int{1, 2, 4, 8} {
			VertexButterfliesMaskedInto(s, g, side, nil, threads, arena)
			for i := range s {
				if s[i] != wantFull[i] {
					t.Fatalf("side %v threads=%d vertex %d: %d, want %d", side, threads, i, s[i], wantFull[i])
				}
			}
			VertexButterfliesMaskedInto(s, g, side, active, threads, arena)
			for i := range s {
				if s[i] != wantMasked[i] {
					t.Fatalf("side %v threads=%d masked vertex %d: %d, want %d", side, threads, i, s[i], wantMasked[i])
				}
			}
		}
	}
}

func TestEdgeSupportParallelIntoMatches(t *testing.T) {
	g := gen.PowerLawBipartite(600, 450, 4000, 0.8, 0.75, 21)
	want := EdgeSupport(g)
	arena := NewArena()
	vals := make([]int64, g.NumEdges())
	for _, threads := range []int{1, 2, 4, 8} {
		got := EdgeSupportParallelInto(vals, g, threads, arena)
		if got.NNZ() != want.NNZ() {
			t.Fatalf("threads=%d: nnz %d, want %d", threads, got.NNZ(), want.NNZ())
		}
		for e := range want.Val {
			if got.Val[e] != want.Val[e] {
				t.Fatalf("threads=%d edge %d: %d, want %d", threads, e, got.Val[e], want.Val[e])
			}
		}
	}
}

// BenchmarkBitsetVsSparseKernel demonstrates the hybrid kernel's win on
// a dense-hub synthetic graph: 64 full-row hubs over 1024 vertices turn
// the inner loop into word-wise AND + popcount.
func BenchmarkBitsetVsSparseKernel(b *testing.B) {
	g := denseHubGraph(1024, 1024, 64, 4, 7)
	inv := Inv2
	arena := NewArena()
	for _, tc := range []struct {
		name string
		pol  HubPolicy
	}{{"sparse", HubNever}, {"auto", HubAuto}, {"bitset", HubAlways}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sinkBench = CountWith(g, Options{Invariant: inv, Hub: tc.pol, Arena: arena})
			}
		})
	}
}
