package core

import (
	"sync"
	"sync/atomic"

	"butterfly/internal/graph"
	"butterfly/internal/sparse"
)

// EdgeSupport returns the support matrix S_w of equation (25): a matrix
// with the pattern of A whose (u, v) value is the number of butterflies
// containing the edge (u, v). Σ of all supports is 4·ΞG (a butterfly
// has four edges).
//
// Per exposed vertex u the wedge multiplicities β_uw are accumulated
// once (equation (23)'s Σ_w |N(u)∩N(w)| term); each incident edge
// (u, v) then gathers Σ_{w∈N(v),w≠u}(β_uw − 1), which is equation (24)
// evaluated without materializing AAᵀA — the masked-SpGEMM structure of
// (25) executed one row at a time.
//
// Orientation: the sweep's work is Σ_{v∈V2} deg(v)² when exposing V1
// and Σ_{u∈V1} deg(u)² when exposing V2, so EdgeSupport computes on
// the cheaper side and transposes the result back into A's pattern.
func EdgeSupport(g *graph.Bipartite) *sparse.CSR {
	if edgeSupportOrientationCost(g) > edgeSupportOrientationCost(g.Transposed()) {
		return sparse.Transpose(edgeSupportRange(g.Transposed(), 0, g.NumV2(), nil))
	}
	return edgeSupportRange(g, 0, g.NumV1(), nil)
}

// edgeSupportOrientationCost estimates the β-accumulation work of an
// exposed-V1 sweep: Σ_{v∈V2} deg(v)².
func edgeSupportOrientationCost(g *graph.Bipartite) int64 {
	var c int64
	for v := 0; v < g.NumV2(); v++ {
		d := int64(g.DegreeV2(v))
		c += d * d
	}
	return c
}

// EdgeSupportParallel computes the same matrix with up to `threads`
// workers; each worker owns disjoint rows of the output.
func EdgeSupportParallel(g *graph.Bipartite, threads int) *sparse.CSR {
	if threads <= 1 {
		return EdgeSupport(g)
	}
	return EdgeSupportParallelInto(nil, g, threads, nil)
}

// edgeWorkPerRow returns the modeled support work of each exposed row:
// Σ over incident columns v of deg(v), the row-scan cost shared by the
// β-accumulation and gather passes.
func edgeWorkPerRow(g *graph.Bipartite) []int64 {
	adj, adjT := g.Adj(), g.AdjT()
	work := make([]int64, adj.R)
	for u := 0; u < adj.R; u++ {
		var w int64
		for _, v := range adj.Row(u) {
			w += int64(adjT.RowDeg(int(v)))
		}
		work[u] = w
	}
	return work
}

// EdgeSupportParallelInto is the allocation-conscious form used by
// peeling loops: vals (len ≥ NNZ, or nil to allocate) receives the
// support values and scratch comes from the arena, so repeated rounds
// reuse every buffer. Rows are scheduled by work units — a hub row caps
// its chunk — but stay atomic, because the per-edge gather needs the
// row's complete β accumulator; splitting hub rows is the counting
// kernel's job (see countParallel), not the support sweep's.
func EdgeSupportParallelInto(vals []int64, g *graph.Bipartite, threads int, a *Arena) *sparse.CSR {
	adj := g.Adj()
	if vals == nil {
		vals = make([]int64, adj.NNZ())
	}
	out := &sparse.CSR{R: adj.R, C: adj.C, Ptr: adj.Ptr, Col: adj.Col, Val: vals[:adj.NNZ()]}
	n1 := g.NumV1()

	seq := func() *sparse.CSR {
		ws := a.get(n1)
		touched := ws.touched
		supportRows(g, 0, n1, out.Val, ws.acc, &touched)
		ws.touched = touched
		a.put(ws)
		return out
	}
	if threads <= 1 {
		return seq()
	}

	work := edgeWorkPerRow(g)
	sched := buildSchedule(work, false, threads, schedTuning{}, nil,
		func(int) int { return 1 }, // rows are atomic: never split
		nil, nil)
	if threads > len(sched.units) {
		threads = len(sched.units)
	}
	if threads <= 1 {
		return seq()
	}

	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
	)
	nUnits := len(sched.units)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := a.get(n1)
			defer a.put(ws)
			touched := ws.touched
			for {
				i := int(cursor.Add(1)) - 1
				if i >= nUnits {
					break
				}
				u := &sched.units[i]
				supportRows(g, u.lo, u.hi, out.Val, ws.acc, &touched)
			}
			ws.touched = touched
		}()
	}
	wg.Wait()
	return out
}

// edgeSupportRange computes supports for rows [lo, hi); vals may be nil
// to allocate the full output.
func edgeSupportRange(g *graph.Bipartite, lo, hi int, vals []int64) *sparse.CSR {
	adj := g.Adj()
	if vals == nil {
		vals = make([]int64, adj.NNZ())
	}
	acc := make([]int32, g.NumV1())
	touched := make([]int32, 0, 1024)
	supportRows(g, lo, hi, vals, acc, &touched)
	return &sparse.CSR{R: adj.R, C: adj.C, Ptr: adj.Ptr, Col: adj.Col, Val: vals}
}

// supportRows fills support values for exposed rows [lo, hi) of A.
func supportRows(g *graph.Bipartite, lo, hi int, vals []int64, acc []int32, touched *[]int32) {
	adj, adjT := g.Adj(), g.AdjT()
	for u := lo; u < hi; u++ {
		u32 := int32(u)
		urow := adj.Row(u)
		// β_uw for every partner w sharing a neighbor with u.
		for _, v := range urow {
			for _, w := range adjT.Row(int(v)) {
				if w == u32 {
					continue
				}
				if acc[w] == 0 {
					*touched = append(*touched, w)
				}
				acc[w]++
			}
		}
		// Gather per incident edge: support(u,v) = Σ_{w∈N(v),w≠u}(β_uw−1).
		base := adj.Ptr[u]
		for k, v := range urow {
			var s int64
			for _, w := range adjT.Row(int(v)) {
				if w == u32 {
					continue
				}
				s += int64(acc[w]) - 1
			}
			vals[base+int64(k)] = s
		}
		for _, w := range *touched {
			acc[w] = 0
		}
		*touched = (*touched)[:0]
	}
}

// EdgeSupportSpGEMM computes the support matrix by executing equation
// (25) literally on the sparse substrate:
//
//	S_w = (AAᵀA − diag(AAᵀ)·1ᵀ − 1·diag(AᵀA)ᵀ + J) ∘ A
//
// The (AAᵀ)·A term is evaluated with a masked SpGEMM (only positions
// where A stores an edge are kept), so the dense-ish product never
// materializes; the rank-one correction terms reduce to the endpoint
// degrees at each stored edge. It is the "pure linear algebra" per-edge
// algorithm — a cross-validation of the accumulator sweep and the
// masked-product kernel, asymptotically equivalent but constant-factor
// heavier (it materializes AAᵀ).
func EdgeSupportSpGEMM(g *graph.Bipartite) *sparse.CSR {
	adj, adjT := g.Adj(), g.AdjT()
	b := sparse.MxM(adj, adjT, sparse.PlusTimes)            // AAᵀ
	core := sparse.MxMMasked(b, adj, adj, sparse.PlusTimes) // (AAᵀA) ∘ A
	out := core.Clone()
	for u := 0; u < out.R; u++ {
		du := int64(g.DegreeV1(u))
		row := out.Row(u)
		vals := out.Val[out.Ptr[u]:out.Ptr[u+1]]
		for k, v := range row {
			vals[k] -= du + int64(g.DegreeV2(int(v))) - 1
		}
	}
	return out
}

// CountFromEdgeSupport recovers ΞG from a support matrix: Σ/4.
// Used as a consistency check and by the wing-peeling code.
func CountFromEdgeSupport(s *sparse.CSR) int64 {
	total := sparse.SumAll(s)
	if total%4 != 0 {
		panic("core: edge-support sum not divisible by 4")
	}
	return total / 4
}
