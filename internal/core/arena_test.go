package core

import (
	"testing"

	"butterfly/internal/gen"
)

func TestArenaNilIsUsable(t *testing.T) {
	var a *Arena
	ws := a.get(10)
	if len(ws.acc) != 10 {
		t.Fatalf("nil arena workspace acc len %d", len(ws.acc))
	}
	a.put(ws) // must not panic
	if a.Size() != 0 {
		t.Fatal("nil arena reports nonzero size")
	}
}

func TestArenaRecyclesAndGrows(t *testing.T) {
	a := NewArena()
	ws := a.get(8)
	a.put(ws)
	if a.Size() != 1 {
		t.Fatalf("size %d after one put", a.Size())
	}
	ws2 := a.get(4)
	if ws2 != ws {
		t.Fatal("arena did not recycle the pooled workspace")
	}
	if len(ws2.acc) < 4 {
		t.Fatal("recycled workspace too small")
	}
	a.put(ws2)
	ws3 := a.get(100) // must grow
	if len(ws3.acc) < 100 {
		t.Fatalf("grown workspace acc len %d", len(ws3.acc))
	}
	for i, v := range ws3.acc {
		if v != 0 {
			t.Fatalf("grown acc[%d] = %d, want 0", i, v)
		}
	}
	a.put(ws3)
	a.put(nil) // no-op
	if a.Size() != 1 {
		t.Fatalf("size %d, want 1", a.Size())
	}
}

func TestWorkspaceBitsetReuse(t *testing.T) {
	ws := newWorkspace(4)
	b1 := ws.bitset(70)
	b1.Set(3)
	b1.Set(69)
	b2 := ws.bitset(70)
	if b2 != b1 {
		t.Fatal("bitset not reused")
	}
	if b2.Any() {
		t.Fatal("reused bitset not cleared")
	}
	b3 := ws.bitset(10)
	if b3.Len() != 10 {
		t.Fatalf("resized bitset len %d", b3.Len())
	}
}

// The peeling hot loop — repeated masked per-vertex counts into a
// caller-owned buffer with a warm arena — must allocate nothing.
func TestTipRoundsArenaZeroAlloc(t *testing.T) {
	g := gen.PowerLawBipartite(800, 600, 4000, 0.7, 0.7, 8)
	n := g.NumV1()
	active := make([]bool, n)
	for i := range active {
		active[i] = i%5 != 0
	}
	s := make([]int64, n)
	arena := NewArena()
	// Warm the arena and the touched-list capacity.
	VertexButterfliesMaskedInto(s, g, SideV1, active, 1, arena)

	allocs := testing.AllocsPerRun(20, func() {
		VertexButterfliesMaskedInto(s, g, SideV1, active, 1, arena)
	})
	if allocs != 0 {
		t.Fatalf("warm masked count allocated %.1f objects/op, want 0", allocs)
	}
}

// Same claim for the per-edge support sweep used by wing peeling.
func TestWingRoundsArenaZeroAlloc(t *testing.T) {
	g := gen.PowerLawBipartite(500, 400, 3000, 0.7, 0.7, 12)
	vals := make([]int64, g.NumEdges())
	arena := NewArena()
	EdgeSupportParallelInto(vals, g, 1, arena)

	allocs := testing.AllocsPerRun(20, func() {
		EdgeSupportParallelInto(vals, g, 1, arena)
	})
	// One CSR header per call is unavoidable (the result wrapper); the
	// point is that the O(V + E) scratch is gone.
	if allocs > 1 {
		t.Fatalf("warm support sweep allocated %.1f objects/op, want ≤ 1", allocs)
	}
}

// Sequential counting through CountWith with a warm arena is also
// allocation-free — the repeated-count pattern of cmd/bfbench.
func TestCountWithArenaZeroAlloc(t *testing.T) {
	g := gen.PowerLawBipartite(600, 500, 3000, 0.7, 0.7, 15)
	arena := NewArena()
	opts := Options{Invariant: Inv2, Hub: HubNever, Arena: arena}
	want := CountWith(g, opts)

	allocs := testing.AllocsPerRun(20, func() {
		if CountWith(g, opts) != want {
			t.Fatal("arena count mismatch")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm sequential count allocated %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkTipRoundsArena contrasts the arena-backed peel-round kernel
// with the allocating one; the arena path reports 0 allocs/op.
func BenchmarkTipRoundsArena(b *testing.B) {
	g := gen.PowerLawBipartite(2000, 1500, 10000, 0.7, 0.7, 4)
	n := g.NumV1()
	active := make([]bool, n)
	for i := range active {
		active[i] = i%7 != 0
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := VertexButterfliesMasked(g, SideV1, active)
			sinkBench = s[0]
		}
	})
	b.Run("arena", func(b *testing.B) {
		s := make([]int64, n)
		arena := NewArena()
		VertexButterfliesMaskedInto(s, g, SideV1, active, 1, arena)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			VertexButterfliesMaskedInto(s, g, SideV1, active, 1, arena)
			sinkBench = s[0]
		}
	})
}
