package core

// Wedge-aggregation kernels: the four interchangeable ways one exposed
// vertex's wedge multiset {β_z} is materialized before the butterfly
// formula Σ_z C(β_z, 2) is applied.
//
// ParButterfly (Shi & Shun, arXiv:1907.08607) shows that no single
// aggregation strategy dominates: sort-, hash-, histogram- and
// batch-based aggregation each win on different graph shapes. This file
// implements all four behind Options.Agg, mirroring the Options.Hub
// pattern — every mode computes the same integer wedge multiplicities
// over the same restricted partner ranges, so totals are bit-identical
// to the sequential reference regardless of mode, policy or thread
// count (asserted by the cross-mode matrix in agg_test.go).
//
//   - AggHist: the dense per-endpoint counter array with a touched
//     list — the arena-backed fast path this package has always run.
//     Wins when the exposed side is narrow (the counters stay
//     cache-resident) or hub-skewed (the hot counters cluster at the
//     low ids, especially after the degree-ordered relayout).
//   - AggSort: gather every restricted partner id into a flat buffer
//     with bulk copies, LSD-radix-sort it, and count runs. All memory
//     traffic is sequential; no O(width) state. Wins on wide, flat
//     graphs where histogram counters would stride a cold array.
//   - AggHash: an open-addressing table keyed by partner id — the
//     classic map-based path, tightened from Go's map to two flat
//     arrays with Fibonacci hashing. Footprint is O(distinct partners)
//     regardless of side width; wins when partner sets are tiny and
//     the exposed side is huge.
//   - AggBatch: the sort kernel's gather with a fixed-size buffer,
//     flushed through the histogram whenever it fills. Bounds the
//     gather memory on huge hubs (a hub's wedge list can exceed the
//     graph itself) while keeping the sequential-write gather.
//
// AggAuto picks per graph from the degree profile (graph.Profile; max
// degree, mean degree, side widths, skew) — computed once at graph
// build and cached. Neighbor-list segments of split hubs (unitYSeg)
// always aggregate through the histogram regardless of mode: the
// partial-pair export/merge protocol of the reduction phase requires
// the dense accumulator, and a spilled hub is by definition one whose
// partner multiset is too hot for the buffer-based kernels — that is
// AggAuto's per-split-hub-segment choice.

import (
	"fmt"
	"runtime"

	"butterfly/internal/graph"
)

// AggPolicy selects the wedge-aggregation kernel.
type AggPolicy int

const (
	// AggAuto (the default) picks per graph from the degree profile:
	// histogram for narrow or hub-skewed exposed sides, hash for huge
	// sparse ones, batch when a single hub's wedge list would dwarf
	// memory, sort otherwise. See ResolveAgg.
	AggAuto AggPolicy = iota
	// AggSort gathers wedge endpoints into a flat buffer, radix-sorts,
	// and counts runs.
	AggSort
	// AggHash aggregates in an open-addressing hash table keyed by
	// partner id.
	AggHash
	// AggHist aggregates in the dense per-endpoint counter array (the
	// classic path).
	AggHist
	// AggBatch gathers into a fixed-size buffer flushed through the
	// histogram, bounding memory on huge hubs.
	AggBatch
)

// String names the policy.
func (p AggPolicy) String() string {
	switch p {
	case AggAuto:
		return "AggAuto"
	case AggSort:
		return "AggSort"
	case AggHash:
		return "AggHash"
	case AggHist:
		return "AggHist"
	case AggBatch:
		return "AggBatch"
	default:
		return fmt.Sprintf("AggPolicy(%d)", int(p))
	}
}

// Mode returns the short lower-case spelling used by CLIs, wire
// requests and stage attribution ("auto", "sort", "hash", "hist",
// "batch").
func (p AggPolicy) Mode() string {
	switch p {
	case AggAuto:
		return "auto"
	case AggSort:
		return "sort"
	case AggHash:
		return "hash"
	case AggHist:
		return "hist"
	case AggBatch:
		return "batch"
	default:
		return fmt.Sprintf("agg(%d)", int(p))
	}
}

// Valid reports whether p is one of the five policies.
func (p AggPolicy) Valid() bool { return p >= AggAuto && p <= AggBatch }

// Thresholds of the AggAuto chooser and the relayout gate. The values
// were calibrated on the synthetic paper stand-ins (BENCH_PR6.json);
// docs/PERFORMANCE.md discusses the tradeoffs.
const (
	// aggHistWidth is the widest exposed side for which the dense
	// counter array is assumed cache-resident (256 KiB of int32 —
	// roughly an L2).
	aggHistWidth = 1 << 16
	// aggHistSkew keeps the histogram on hub-skewed graphs of any
	// width: when max/mean degree is high, most wedge endpoints land on
	// few hot counters, and the degree-ordered relayout packs exactly
	// those into the first cache lines of the array.
	aggHistSkew = 8.0
	// aggHashRate is the expected-partner-visits-per-exposed-vertex
	// (mean degree product) below which the hash table's O(distinct)
	// footprint beats every array strategy.
	aggHashRate = 8.0
	// aggBatchWork bounds the sort kernel's gather: when a single
	// vertex's wedge list can exceed this (max-degree product), the
	// fixed-buffer batch kernel is chosen instead.
	aggBatchWork = 1 << 22
	// relayoutSkew and relayoutMinEdges gate the automatic
	// degree-ordered relayout: worth an O(|E|) one-time rebuild only
	// when hubs exist to concentrate (skew) and the graph is large
	// enough for locality to matter.
	relayoutSkew     = 4.0
	relayoutMinEdges = 1 << 12
)

// ResolveAgg returns the concrete aggregation mode CountWith will run
// for g under opts — one of AggSort, AggHash, AggHist, AggBatch, never
// AggAuto. Exposed so callers (bfc -json, the serving layer, bfbench)
// can report the mode actually used. The resolution reads only the
// cached degree profile, so it is cheap and stable across calls; it is
// also invariant under the degree-ordered relayout, which preserves
// the degree multiset.
func ResolveAgg(g *graph.Bipartite, opts Options) AggPolicy {
	threads := opts.Threads
	if threads < 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads <= 1 && opts.BlockSize > 1 {
		// The blocked variant's two-pass accumulation is inherently
		// histogram-based; Agg selects among kernels for the unblocked
		// sequential and parallel algorithms only.
		return AggHist
	}
	if opts.Agg != AggAuto {
		if !opts.Agg.Valid() {
			panic("core: invalid aggregation policy " + opts.Agg.String())
		}
		return opts.Agg
	}
	inv := opts.Invariant
	if inv == 0 {
		inv = AutoInvariant(g)
	}
	return autoAgg(g.Profile(), inv.PartitionsV2())
}

// autoAgg is the AggAuto decision table over the degree profile of the
// invariant's orientation. exposedV2 reports whether the exposed side
// (the partner id space the aggregation indexes) is V2.
func autoAgg(p graph.DegreeProfile, exposedV2 bool) AggPolicy {
	expW, expMax, expMean, expSkew := p.Side(!exposedV2)
	_, secMax, secMean, _ := p.Side(exposedV2)
	switch {
	case expW <= aggHistWidth:
		return AggHist
	case expSkew >= aggHistSkew:
		return AggHist
	case expMean*secMean <= aggHashRate:
		return AggHash
	case int64(expMax)*int64(secMax) >= aggBatchWork:
		return AggBatch
	default:
		return AggSort
	}
}

// shouldRelayout reports whether CountWith counts on the cached
// degree-ordered twin (graph.DegreeOrdered) instead of g itself. The
// count is invariant under relabeling, so the relayout is invisible at
// every API surface; it only changes which memory the kernels stream.
func shouldRelayout(p graph.DegreeProfile) bool {
	return p.NumEdges >= relayoutMinEdges &&
		(p.SkewV1 >= relayoutSkew || p.SkewV2 >= relayoutSkew)
}

// --- sort kernel ---

// contribSort computes exposed vertex k's contribution by gathering
// every restricted partner id into a flat buffer with bulk copies,
// sorting, and summing C(run, 2) over equal runs. The gather is pure
// sequential reads and appends — no per-wedge random access — which is
// what lets it win on wide flat graphs.
func (kn *kern) contribSort(k int) int64 {
	buf := kn.ws.sbuf[:0]
	k32 := int32(k)
	for _, y := range kn.exposed.Row(k) {
		prow := kn.secondary.Row(int(y))
		if kn.above {
			buf = append(buf, prow[searchInt32(prow, k32+1):]...)
		} else {
			buf = append(buf, prow[:searchInt32(prow, k32)]...)
		}
	}
	kn.ws.sbuf = buf[:0] // keep the grown capacity
	if len(buf) == 0 {
		return 0
	}
	sorted := kn.ws.sortWedges(buf, int32(kn.exposed.R-1))
	var total, run int64
	run = 1
	prev := sorted[0]
	for _, z := range sorted[1:] {
		if z == prev {
			run++
			continue
		}
		total += run * (run - 1) / 2
		prev, run = z, 1
	}
	return total + run*(run-1)/2
}

// sortWedgesCutoff is the buffer length below which insertion sort
// beats the radix passes' fixed cost.
const sortWedgesCutoff = 48

// sortWedges sorts buf ascending and returns the sorted slice (which
// may alias the workspace's radix aux buffer rather than buf). Values
// must lie in [0, maxVal]. Large buffers take an LSD radix sort with
// 8-bit digits and only as many passes as maxVal needs.
func (ws *workspace) sortWedges(buf []int32, maxVal int32) []int32 {
	if len(buf) <= sortWedgesCutoff {
		for i := 1; i < len(buf); i++ {
			v := buf[i]
			j := i - 1
			for j >= 0 && buf[j] > v {
				buf[j+1] = buf[j]
				j--
			}
			buf[j+1] = v
		}
		return buf
	}
	if cap(ws.saux) < len(buf) {
		ws.saux = make([]int32, len(buf))
	}
	src, dst := buf, ws.saux[:len(buf)]
	var count [256]int32
	for shift := uint(0); maxVal>>shift != 0; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, v := range src {
			count[uint8(v>>shift)]++
		}
		var sum int32
		for i, c := range count {
			count[i] = sum
			sum += c
		}
		for _, v := range src {
			d := uint8(v >> shift)
			dst[count[d]] = v
			count[d]++
		}
		src, dst = dst, src
	}
	return src
}

// --- hash kernel ---

// aggHashMinSize is the initial open-addressing table size (a power of
// two); the table doubles at 75% load and persists in the workspace.
const aggHashMinSize = 64

// contribHash aggregates k's restricted wedge multiset in the
// workspace's open-addressing table. The table is cleared slot-by-slot
// from the used list after the flush, so its cost tracks the vertex's
// distinct-partner count, not the table size.
func (kn *kern) contribHash(k int) int64 {
	ws := kn.ws
	if ws.hkey == nil {
		ws.hashInit(aggHashMinSize)
	}
	k32 := int32(k)
	for _, y := range kn.exposed.Row(k) {
		prow := kn.secondary.Row(int(y))
		if kn.above {
			for _, z := range prow[searchInt32(prow, k32+1):] {
				ws.hashAdd(z)
			}
		} else {
			for _, z := range prow {
				if z >= k32 {
					break
				}
				ws.hashAdd(z)
			}
		}
	}
	var total int64
	for _, s := range ws.hused {
		c := int64(ws.hval[s])
		total += c * (c - 1) / 2
		ws.hkey[s] = -1
	}
	ws.hused = ws.hused[:0]
	return total
}

// hashInit allocates the open-addressing arrays at the given
// power-of-two size with every slot empty.
func (ws *workspace) hashInit(size int) {
	ws.hkey = make([]int32, size)
	ws.hval = make([]int32, size)
	for i := range ws.hkey {
		ws.hkey[i] = -1
	}
	if ws.hused == nil {
		ws.hused = make([]int32, 0, size)
	}
}

// hashAdd increments partner z's multiplicity, growing the table at
// 75% load. Fibonacci hashing with linear probing: partner ids are
// dense small ints, which the multiplicative scramble spreads evenly.
func (ws *workspace) hashAdd(z int32) {
	mask := uint32(len(ws.hkey) - 1)
	i := (uint32(z) * 2654435769) & mask
	for {
		switch ws.hkey[i] {
		case z:
			ws.hval[i]++
			return
		case -1:
			if (len(ws.hused)+1)*4 >= len(ws.hkey)*3 {
				ws.hashGrow()
				ws.hashAdd(z)
				return
			}
			ws.hkey[i] = z
			ws.hval[i] = 1
			ws.hused = append(ws.hused, int32(i))
			return
		}
		i = (i + 1) & mask
	}
}

// hashGrow doubles the table, rehashing only the used slots.
func (ws *workspace) hashGrow() {
	oldK, oldV, oldU := ws.hkey, ws.hval, ws.hused
	size := 2 * len(oldK)
	ws.hkey = make([]int32, size)
	ws.hval = make([]int32, size)
	for i := range ws.hkey {
		ws.hkey[i] = -1
	}
	ws.hused = make([]int32, 0, size)
	mask := uint32(size - 1)
	for _, s := range oldU {
		z, c := oldK[s], oldV[s]
		i := (uint32(z) * 2654435769) & mask
		for ws.hkey[i] != -1 {
			i = (i + 1) & mask
		}
		ws.hkey[i], ws.hval[i] = z, c
		ws.hused = append(ws.hused, int32(i))
	}
}

// --- batch kernel ---

// aggBatchSize is the fixed gather-buffer length of the batch kernel:
// 16 KiB of int32 — enough to amortize the drain loop, small enough to
// stay cache-resident next to the histogram's hot counters.
const aggBatchSize = 1 << 12

// contribBatch is the sort kernel's bulk gather bounded by a
// fixed-size buffer: whenever the buffer fills it is drained into the
// dense histogram, so a hub whose wedge list exceeds memory still
// aggregates in O(aggBatchSize) buffer space. The sequential
// gather-then-scatter pattern also overlaps the histogram's random
// writes better than the interleaved classic loop on deep memory
// hierarchies.
func (kn *kern) contribBatch(k int) int64 {
	ws := kn.ws
	if cap(ws.sbuf) < aggBatchSize {
		ws.sbuf = make([]int32, 0, aggBatchSize)
	}
	buf := ws.sbuf[:0]
	acc, touched := ws.acc, ws.touched
	drain := func() {
		for _, z := range buf {
			if acc[z] == 0 {
				touched = append(touched, z)
			}
			acc[z]++
		}
		buf = buf[:0]
	}
	k32 := int32(k)
	for _, y := range kn.exposed.Row(k) {
		prow := kn.secondary.Row(int(y))
		var seg []int32
		if kn.above {
			seg = prow[searchInt32(prow, k32+1):]
		} else {
			seg = prow[:searchInt32(prow, k32)]
		}
		for len(seg) > 0 {
			take := aggBatchSize - len(buf)
			if take > len(seg) {
				take = len(seg)
			}
			buf = append(buf, seg[:take]...)
			seg = seg[take:]
			if len(buf) == aggBatchSize {
				drain()
			}
		}
	}
	drain()
	ws.sbuf = buf[:0]
	t := flush(acc, &touched)
	kn.ws.touched = touched
	return t
}
