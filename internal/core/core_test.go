package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/dense"
	"butterfly/internal/gen"
	"butterfly/internal/graph"
	"butterfly/internal/sparse"
)

// randDense returns a random binary m×n matrix.
func randDense(rng *rand.Rand, m, n int, density float64) *dense.Matrix {
	d := dense.New(m, n)
	for i := range d.Data {
		if rng.Float64() < density {
			d.Data[i] = 1
		}
	}
	return d
}

// graphOf converts a binary dense matrix into a Bipartite graph.
func graphOf(t testing.TB, d *dense.Matrix) *graph.Bipartite {
	g, err := graph.FromCSR(sparse.FromDense(d, true))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randGraphAndDense(rng *rand.Rand, maxSide int) (*dense.Matrix, *graph.Bipartite) {
	m := rng.Intn(maxSide) + 1
	n := rng.Intn(maxSide) + 1
	d := randDense(rng, m, n, 0.2+0.6*rng.Float64())
	g, err := graph.FromCSR(sparse.FromDense(d, true))
	if err != nil {
		panic(err)
	}
	return d, g
}

func binom2(x int64) int64 { return x * (x - 1) / 2 }

func TestInvariantMetadata(t *testing.T) {
	if len(Invariants()) != NumInvariants {
		t.Fatalf("Invariants() returned %d members", len(Invariants()))
	}
	if Inv1.String() != "Inv1" || Inv8.String() != "Inv8" {
		t.Fatal("String names wrong")
	}
	if Invariant(0).String() != "Invariant(0)" {
		t.Fatal("invalid invariant String wrong")
	}
	for _, inv := range []Invariant{Inv1, Inv2, Inv3, Inv4} {
		if !inv.PartitionsV2() {
			t.Errorf("%v should partition V2", inv)
		}
	}
	for _, inv := range []Invariant{Inv5, Inv6, Inv7, Inv8} {
		if inv.PartitionsV2() {
			t.Errorf("%v should partition V1", inv)
		}
	}
	lookAhead := map[Invariant]bool{Inv2: true, Inv3: true, Inv6: true, Inv7: true}
	for _, inv := range Invariants() {
		if inv.LookAhead() != lookAhead[inv] {
			t.Errorf("%v LookAhead = %v", inv, inv.LookAhead())
		}
	}
}

func TestCountInvalidInvariantPanics(t *testing.T) {
	g := gen.CompleteBipartite(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid invariant did not panic")
		}
	}()
	Count(g, Invariant(9))
}

func TestCountSingleButterfly(t *testing.T) {
	g := gen.CompleteBipartite(2, 2)
	for _, inv := range Invariants() {
		if got := Count(g, inv); got != 1 {
			t.Errorf("%v: Count(K2,2) = %d, want 1", inv, got)
		}
	}
}

func TestCountClosedForms(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Bipartite
		want int64
	}{
		{"K(4,5)", gen.CompleteBipartite(4, 5), binom2(4) * binom2(5)},
		{"K(7,3)", gen.CompleteBipartite(7, 3), binom2(7) * binom2(3)},
		{"C4", gen.Cycle(2), 1},
		{"C12", gen.Cycle(6), 0},
		{"Star", gen.Star(9), 0},
		{"BicliqueChain", gen.BicliqueChain(5, 3, 4), 5 * binom2(3) * binom2(4)},
		{"empty", graph.NewBuilder(4, 4).Build(), 0},
	}
	for _, c := range cases {
		for _, inv := range Invariants() {
			if got := Count(c.g, inv); got != c.want {
				t.Errorf("%s/%v: Count = %d, want %d", c.name, inv, got, c.want)
			}
		}
	}
}

// The headline property test: every family member agrees with the
// dense specification (7) on random graphs.
func TestQuickAllInvariantsMatchSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 12)
		want := dense.SpecCount(d)
		for _, inv := range Invariants() {
			if Count(g, inv) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountAutoMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 12)
		return CountAuto(g) == dense.SpecCount(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAutoInvariantPartitionsSmallerSide(t *testing.T) {
	wide := gen.ErdosRenyi(5, 50, 0.2, 1) // |V2| ≫ |V1| → partition V1
	if inv := AutoInvariant(wide); inv.PartitionsV2() {
		t.Errorf("wide graph picked %v, want a V1-partitioning invariant", inv)
	}
	tall := gen.ErdosRenyi(50, 5, 0.2, 1)
	if inv := AutoInvariant(tall); !inv.PartitionsV2() {
		t.Errorf("tall graph picked %v, want a V2-partitioning invariant", inv)
	}
}

// Parallel counting is exactly equal to sequential for every invariant
// and a spread of worker counts.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := gen.PowerLawBipartite(400, 300, 3000, 0.8, 0.6, 7)
	for _, inv := range Invariants() {
		want := Count(g, inv)
		for _, threads := range []int{2, 3, 6, 16} {
			got := CountWith(g, Options{Invariant: inv, Threads: threads})
			if got != want {
				t.Errorf("%v threads=%d: %d, want %d", inv, threads, got, want)
			}
		}
	}
	_ = rng
}

func TestQuickParallelMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 15)
		want := dense.SpecCount(d)
		for _, inv := range []Invariant{Inv1, Inv4, Inv6, Inv7} {
			if CountWith(g, Options{Invariant: inv, Threads: 4}) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestThreadsNegativeUsesGOMAXPROCS(t *testing.T) {
	g := gen.CompleteBipartite(6, 6)
	want := Count(g, Inv2)
	if got := CountWith(g, Options{Invariant: Inv2, Threads: -1}); got != want {
		t.Fatalf("Threads=-1: %d, want %d", got, want)
	}
}

// Blocked variants agree with unblocked for all invariants and block
// sizes, including sizes larger than the vertex set.
func TestQuickBlockedMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 14)
		want := dense.SpecCount(d)
		for _, inv := range Invariants() {
			for _, block := range []int{2, 3, 7, 64} {
				if CountWith(g, Options{Invariant: inv, BlockSize: block}) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Degree reordering must not change the count.
func TestQuickOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 12)
		want := dense.SpecCount(d)
		for _, o := range []graph.Order{graph.OrderDegreeAsc, graph.OrderDegreeDesc} {
			if CountWith(g, Options{Invariant: Inv2, Order: o}) != want {
				return false
			}
			if CountWith(g, Options{Invariant: Inv7, Order: o, Threads: 3}) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountSpGEMMMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 12)
		return CountSpGEMM(g) == dense.SpecCount(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWedgeCountMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 12)
		w1, w2 := WedgeCount(g)
		return w1 == dense.SpecWedges(d) && w2 == dense.SpecWedges(d.Transpose())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCaterpillarsAndClustering(t *testing.T) {
	k22 := gen.CompleteBipartite(2, 2)
	if got := Caterpillars(k22); got != 4 {
		t.Fatalf("Caterpillars(K2,2) = %d, want 4", got)
	}
	if cc := ClusteringCoefficient(k22); cc != 1 {
		t.Fatalf("cc(K2,2) = %f, want 1", cc)
	}
	if cc := ClusteringCoefficient(gen.CompleteBipartite(4, 6)); cc != 1 {
		t.Fatalf("cc(K4,6) = %f, want 1", cc)
	}
	if cc := ClusteringCoefficient(gen.Star(5)); cc != 0 {
		t.Fatalf("cc(star) = %f, want 0", cc)
	}
	if cc := ClusteringCoefficient(gen.Cycle(6)); cc != 0 {
		t.Fatalf("cc(C12) = %f, want 0 (no butterflies)", cc)
	}
	// Clustering lies in [0, 1] on random graphs.
	g := gen.ErdosRenyi(40, 40, 0.2, 3)
	if cc := ClusteringCoefficient(g); cc < 0 || cc > 1 {
		t.Fatalf("cc out of range: %f", cc)
	}
}
