package core

import (
	"butterfly/internal/graph"
	"butterfly/internal/sparse"
)

// CountSpGEMM counts butterflies by executing the specification (7)
// directly on the sparse substrate: it materializes the wedge matrix
// B = A·Aᵀ with a sparse matrix–matrix product and evaluates
// ΞG = ½·Σ_{i≠j} C(β_ij, 2). It is the "pure linear algebra" family
// member — asymptotically heavier than the loop invariants (B has one
// entry per connected row pair) but a useful independent implementation
// and the natural bridge to GraphBLAS-style systems.
func CountSpGEMM(g *graph.Bipartite) int64 {
	a := g.Adj()
	at := g.AdjT()
	// Work on the smaller side to keep B small, mirroring the family
	// selection rule: B is |side|²-shaped in the worst case.
	if g.NumV2() < g.NumV1() {
		a, at = at, a
	}
	return countFromWedgeMatrix(sparse.MxM(a, at, sparse.PlusTimes))
}

// CountSpGEMMParallel is CountSpGEMM with a row-parallel sparse
// product (threads ≤ 1 falls back to the sequential kernel).
func CountSpGEMMParallel(g *graph.Bipartite, threads int) int64 {
	a := g.Adj()
	at := g.AdjT()
	if g.NumV2() < g.NumV1() {
		a, at = at, a
	}
	return countFromWedgeMatrix(sparse.MxMParallel(a, at, sparse.PlusTimes, threads))
}

// countFromWedgeMatrix evaluates ΞG = ½·Σ_{i≠j} C(β_ij, 2) over the
// stored entries of B = AAᵀ.
func countFromWedgeMatrix(b *sparse.CSR) int64 {
	var twice int64
	for i := 0; i < b.R; i++ {
		row := b.Row(i)
		vals := b.RowVals(i)
		for k, j := range row {
			if int(j) == i {
				continue
			}
			c := vals[k]
			twice += c * (c - 1) / 2
		}
	}
	return twice / 2
}

// CountBlockedAlgebraic executes the blocked FLAME update with matrix
// products instead of scalar loops: the adjacency is processed in
// column panels A1 of the given width, and each panel contributes
//
//	ΞG += ½·Σᵢⱼ (A1ᵀ·A0)∘(A1ᵀ·A0)  − ½·(pairs with β=1 correction)
//	    + butterflies within the panel
//
// concretely: cross-panel wedge counts W = A1ᵀ·A0 give Σ C(w,2) over
// stored entries, and within-panel counts come from the strictly-upper
// part of A1ᵀ·A1. This is the third execution strategy for the same
// invariant family — scalar loops (Count), blocked scalar loops
// (Options.BlockSize), and block linear algebra (this function) — all
// proven equal by tests. Heavier than the loops (it materializes panel
// products) but the natural shape for offload to a GraphBLAS/BLAS
// backend.
func CountBlockedAlgebraic(g *graph.Bipartite, panel int) int64 {
	if panel < 1 {
		panic("core: panel width must be ≥ 1")
	}
	at := g.AdjT() // rows = V2 vertices = columns of A
	n := g.NumV2()
	var total int64
	for p0 := 0; p0 < n; p0 += panel {
		p1 := p0 + panel
		if p1 > n {
			p1 = n
		}
		a1t := rowSlice(at, p0, p1) // A1ᵀ: panel columns as rows
		a0 := rowSlice(at, 0, p0)   // A0ᵀ: processed columns as rows
		// Cross wedges: W = A1ᵀ·A0 = a1t · (a0)ᵀ.
		if a0.R > 0 {
			w := sparse.MxM(a1t, sparse.Transpose(a0), sparse.PlusTimes)
			for _, beta := range w.Val {
				total += beta * (beta - 1) / 2
			}
		}
		// Within-panel pairs: strictly upper part of A1ᵀ·A1.
		wp := sparse.MxM(a1t, sparse.Transpose(a1t), sparse.PlusTimes)
		for i := 0; i < wp.R; i++ {
			row := wp.Row(i)
			vals := wp.RowVals(i)
			for k, j := range row {
				if int(j) > i {
					beta := vals[k]
					total += beta * (beta - 1) / 2
				}
			}
		}
	}
	return total
}

// rowSlice views rows [lo, hi) of a CSR as a standalone matrix. The
// slice shares column storage; Ptr is rebased.
func rowSlice(a *sparse.CSR, lo, hi int) *sparse.CSR {
	ptr := make([]int64, hi-lo+1)
	base := a.Ptr[lo]
	for i := lo; i <= hi; i++ {
		ptr[i-lo] = a.Ptr[i] - base
	}
	out := &sparse.CSR{R: hi - lo, C: a.C, Ptr: ptr, Col: a.Col[base:a.Ptr[hi]]}
	if a.Val != nil {
		out.Val = a.Val[base:a.Ptr[hi]]
	}
	return out
}

// VertexButterfliesSpGEMM computes the per-vertex butterfly vector of
// equation (19) directly on the sparse substrate: materialize
// B = A·Aᵀ and evaluate, per row i,
//
//	s_i = ½·(Σ_j β_ij² − β_ii² − Σ_j β_ij + β_ii)
//
// which is the i-th diagonal entry of (BB − B∘B − JB + B)/2. The
// linear-algebra cross-check of VertexButterflies; heavier because B
// is materialized.
func VertexButterfliesSpGEMM(g *graph.Bipartite, side Side) []int64 {
	a, at := g.Adj(), g.AdjT()
	if side == SideV2 {
		a, at = at, a
	}
	b := sparse.MxM(a, at, sparse.PlusTimes)
	s := make([]int64, b.R)
	for i := 0; i < b.R; i++ {
		row := b.Row(i)
		vals := b.RowVals(i)
		var sumSq, sum, diag int64
		for k, j := range row {
			v := vals[k]
			sumSq += v * v
			sum += v
			if int(j) == i {
				diag = v
			}
		}
		num := sumSq - diag*diag - sum + diag
		if num%2 != 0 {
			panic("core: per-vertex numerator not divisible by 2")
		}
		s[i] = num / 2
	}
	return s
}

// WedgeCount returns the paper's equation (6) for both orientations:
// wedgesV1 counts wedges whose endpoints lie in V1 (wedge point in V2),
// wedgesV2 the symmetric quantity. Computed in closed form from the
// degree sequences: W = Σ C(deg, 2).
func WedgeCount(g *graph.Bipartite) (wedgesV1, wedgesV2 int64) {
	for v := 0; v < g.NumV2(); v++ {
		d := int64(g.DegreeV2(v))
		wedgesV1 += d * (d - 1) / 2
	}
	for u := 0; u < g.NumV1(); u++ {
		d := int64(g.DegreeV1(u))
		wedgesV2 += d * (d - 1) / 2
	}
	return wedgesV1, wedgesV2
}

// Caterpillars returns the number of paths of length 3 in g:
// Σ_{(u,v)∈E} (deg u − 1)(deg v − 1). A butterfly contains exactly four
// caterpillars, so this is the normalizer of the bipartite clustering
// coefficient.
func Caterpillars(g *graph.Bipartite) int64 {
	var total int64
	for u := 0; u < g.NumV1(); u++ {
		du := int64(g.DegreeV1(u)) - 1
		if du <= 0 {
			continue
		}
		for _, v := range g.NeighborsOfV1(u) {
			total += du * (int64(g.DegreeV2(int(v))) - 1)
		}
	}
	return total
}

// ClusteringCoefficient returns the bipartite clustering coefficient
// (Sanei-Mehri et al. [10], the metric the paper's introduction points
// at): 4·ΞG / caterpillars, the fraction of length-3 paths that close
// into butterflies. It is 1 for complete bipartite graphs and 0 for
// butterfly-free graphs; returns 0 when the graph has no caterpillars.
func ClusteringCoefficient(g *graph.Bipartite) float64 {
	cats := Caterpillars(g)
	if cats == 0 {
		return 0
	}
	return 4 * float64(CountAuto(g)) / float64(cats)
}
