package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/gen"
)

// Present/RemoveEdge must keep both compacted directions consistent:
// every surviving edge stays findable in its exposed and transpose
// rows, every removed edge disappears from both.
func TestWingPeelStateRemoveEdge(t *testing.T) {
	g := gen.PowerLawBipartite(40, 30, 220, 0.7, 0.7, 3)
	adj := g.Adj()
	nnz := int(adj.NNZ())
	s := NewWingPeelState(g)
	rng := rand.New(rand.NewSource(7))
	removed := make([]bool, nnz)
	for _, e := range rng.Perm(nnz)[:nnz/2] {
		if !s.Present(int64(e)) {
			t.Fatalf("edge %d missing before removal", e)
		}
		s.RemoveEdge(int64(e))
		removed[e] = true
	}
	for e := 0; e < nnz; e++ {
		if s.Present(int64(e)) == removed[e] {
			t.Fatalf("edge %d: Present=%v, removed=%v", e, s.Present(int64(e)), removed[e])
		}
	}
	// Each exposed row must hold exactly the surviving edges of that row,
	// with matching columns.
	for u := 0; u < adj.R; u++ {
		want := map[int64]int32{}
		base := adj.Ptr[u]
		for k, v := range adj.Row(u) {
			if e := base + int64(k); !removed[e] {
				want[e] = v
			}
		}
		cols, eids := s.row(int32(u))
		if len(eids) != len(want) {
			t.Fatalf("row %d: %d entries, want %d", u, len(eids), len(want))
		}
		for i, e := range eids {
			if v, ok := want[e]; !ok || v != cols[i] {
				t.Fatalf("row %d: unexpected entry (e=%d col=%d)", u, e, cols[i])
			}
		}
	}
	// Transpose rows likewise: every surviving edge appears under its
	// secondary endpoint with the right exposed endpoint.
	var tentries int
	for v := 0; v < g.NumV2(); v++ {
		cols, eids := s.trow(int32(v))
		tentries += len(eids)
		for i, e := range eids {
			if removed[e] {
				t.Fatalf("trow %d: removed edge %d still present", v, e)
			}
			if s.edgeV[e] != int32(v) || s.edgeU[e] != cols[i] {
				t.Fatalf("trow %d: edge %d endpoints (%d,%d) vs entry col %d",
					v, e, s.edgeU[e], s.edgeV[e], cols[i])
			}
		}
	}
	if tentries != nnz-nnz/2 {
		t.Fatalf("transpose holds %d edges, want %d", tentries, nnz-nnz/2)
	}
}

// WingStateDeltaBatch must compute exactly the same decrements as the
// stateless oracle kernel: the difference between the edge supports of
// the pre-batch subgraph and the post-batch subgraph, for any sequence
// of earlier removals and any batch drawn from the survivors.
func TestQuickWingStateDeltaBatchExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 9)
		nnz := int(g.NumEdges())
		if nnz == 0 {
			return true
		}
		s := NewWingPeelState(g)
		alive := make([]bool, nnz)   // true = survives the batch
		inBatch := make([]bool, nnz) // true = peeled by this batch
		var batch []int64
		for e := 0; e < nnz; e++ {
			switch rng.Intn(4) {
			case 0: // dead from an earlier round: already compacted away
				s.RemoveEdge(int64(e))
			case 1:
				inBatch[e] = true
				batch = append(batch, int64(e))
			default:
				alive[e] = true
			}
		}
		if len(batch) == 0 {
			return true
		}
		sup := make([]int64, nnz)
		supportInto(sup, g, func(e int) bool { return alive[e] || inBatch[e] })
		want := make([]int64, nnz)
		supportInto(want, g, func(e int) bool { return alive[e] })

		dirty := make([]int32, nnz)
		var touched []int64
		for _, threads := range []int{1, 3} {
			got := append([]int64(nil), sup...)
			touched = touched[:0]
			WingStateDeltaBatch(s, batch, alive, inBatch, got, dirty, &touched, threads, nil)
			for _, f := range touched {
				dirty[f] = 0
			}
			for e := 0; e < nnz; e++ {
				if alive[e] && got[e] != want[e] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// A warm wing-state round allocates nothing on the sequential path —
// the same per-round guarantee as the stateless kernels, which is what
// lets the delta engine's total work track the butterflies destroyed.
func TestWingStateDeltaSteadyStateZeroAlloc(t *testing.T) {
	g := gen.PowerLawBipartite(500, 400, 3000, 0.7, 0.7, 12)
	nnz := int(g.NumEdges())
	s := NewWingPeelState(g)
	alive := make([]bool, nnz)
	inBatch := make([]bool, nnz)
	var batch []int64
	for e := 0; e < nnz; e++ {
		if e%9 == 0 {
			inBatch[e] = true
			batch = append(batch, int64(e))
		} else {
			alive[e] = true
		}
	}
	sup := make([]int64, nnz)
	EdgeSupportParallelInto(sup, g, 1, nil)
	dirty := make([]int32, nnz)
	touched := make([]int64, 0, nnz)
	arena := NewArena()

	// Warm the arena workspace and the touched capacity.
	WingStateDeltaBatch(s, batch, alive, inBatch, sup, dirty, &touched, 1, arena)
	for _, f := range touched {
		dirty[f] = 0
	}
	allocs := testing.AllocsPerRun(20, func() {
		touched = touched[:0]
		WingStateDeltaBatch(s, batch, alive, inBatch, sup, dirty, &touched, 1, arena)
		for _, f := range touched {
			dirty[f] = 0
		}
	})
	if allocs != 0 {
		t.Fatalf("warm wing-state round allocated %.1f objects/op, want 0", allocs)
	}
}
