package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/gen"
	"butterfly/internal/graph"
)

// TipDeltaBatch must compute exactly the difference between the masked
// butterfly vectors before and after the batch is removed — for any
// alive mask (earlier rounds) and any batch drawn from it.
func TestQuickTipDeltaBatchExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 10)
		for _, side := range []Side{SideV1, SideV2} {
			n := g.NumV1()
			if side == SideV2 {
				n = g.NumV2()
			}
			if n == 0 {
				continue
			}
			before := make([]bool, n)
			after := make([]bool, n)
			var batch []int32
			for u := range before {
				switch rng.Intn(4) {
				case 0: // dead from an earlier round
				case 1: // peeled by this batch
					before[u] = true
					batch = append(batch, int32(u))
				default: // survivor
					before[u] = true
					after[u] = true
				}
			}
			if len(batch) == 0 {
				continue
			}
			s := VertexButterfliesMasked(g, side, before)
			want := VertexButterfliesMasked(g, side, after)

			dirty := make([]int32, n)
			var touched []int32
			for _, threads := range []int{1, 3} {
				got := append([]int64(nil), s...)
				touched = touched[:0]
				TipDeltaBatch(g, side, batch, after, got, dirty, &touched, threads, nil)
				for _, w := range touched {
					dirty[w] = 0
				}
				for u := range after {
					if after[u] && got[u] != want[u] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// WingDeltaBatch must compute exactly the difference between the edge
// supports of the graph without the earlier-dead edges and the graph
// additionally without the batch — the alive-masked analogue of the tip
// test above, checked through explicit subgraph rebuilds.
func TestQuickWingDeltaBatchExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 9)
		nnz := int(g.NumEdges())
		if nnz == 0 {
			return true
		}
		alive := make([]bool, nnz)   // true = survives the batch
		inBatch := make([]bool, nnz) // true = peeled by this batch
		var batch []int64
		for e := 0; e < nnz; e++ {
			switch rng.Intn(4) {
			case 0: // dead from an earlier round
			case 1:
				inBatch[e] = true
				batch = append(batch, int64(e))
			default:
				alive[e] = true
			}
		}
		if len(batch) == 0 {
			return true
		}
		// Supports of the pre-batch subgraph, spread onto original ids.
		sup := make([]int64, nnz)
		supportInto(sup, g, func(e int) bool { return alive[e] || inBatch[e] })
		want := make([]int64, nnz)
		supportInto(want, g, func(e int) bool { return alive[e] })

		tmap := TransposeEdgeMap(g)
		dirty := make([]int32, nnz)
		var touched []int64
		for _, threads := range []int{1, 3} {
			for _, pol := range []HubPolicy{HubAuto, HubNever, HubAlways} {
				got := append([]int64(nil), sup...)
				touched = touched[:0]
				WingDeltaBatch(g, batch, alive, inBatch, tmap, got, dirty, &touched, threads, pol, nil)
				for _, f := range touched {
					dirty[f] = 0
				}
				for e := 0; e < nnz; e++ {
					if alive[e] && got[e] != want[e] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// supportInto writes the butterfly support of every kept edge (by the
// keep predicate over original flat ids) into sup at its original id,
// by rebuilding the kept subgraph and mapping positions back.
func supportInto(sup []int64, g *graph.Bipartite, keep func(int) bool) {
	adj := g.Adj()
	b := graph.NewBuilder(adj.R, adj.C)
	var kept []int
	for u := 0; u < adj.R; u++ {
		base := adj.Ptr[u]
		for k, v := range adj.Row(u) {
			e := int(base) + k
			if keep(e) {
				b.AddEdge(u, int(v))
				kept = append(kept, e)
			}
		}
	}
	sub := b.Build()
	vals := make([]int64, sub.NumEdges())
	EdgeSupportParallelInto(vals, sub, 1, nil)
	for i, e := range kept {
		sup[e] = vals[i]
	}
}

// A warm tip-delta round allocates nothing on the sequential path: the
// wedge workspace comes from the arena and the touched list reuses its
// high-water capacity. This is the per-round guarantee the delta
// peeling engine's O(deltas) work bound rests on.
func TestTipDeltaSteadyStateZeroAlloc(t *testing.T) {
	g := gen.PowerLawBipartite(800, 600, 4000, 0.7, 0.7, 8)
	n := g.NumV1()
	alive := make([]bool, n)
	var batch []int32
	for u := range alive {
		if u%7 == 0 {
			batch = append(batch, int32(u))
		} else {
			alive[u] = true
		}
	}
	s := make([]int64, n)
	VertexButterfliesMaskedInto(s, g, SideV1, nil, 1, nil)
	dirty := make([]int32, n)
	touched := make([]int32, 0, n)
	arena := NewArena()
	// Warm the arena workspace and the touched capacity.
	TipDeltaBatch(g, SideV1, batch, alive, s, dirty, &touched, 1, arena)
	for _, w := range touched {
		dirty[w] = 0
	}

	allocs := testing.AllocsPerRun(20, func() {
		touched = touched[:0]
		TipDeltaBatch(g, SideV1, batch, alive, s, dirty, &touched, 1, arena)
		for _, w := range touched {
			dirty[w] = 0
		}
	})
	if allocs != 0 {
		t.Fatalf("warm tip-delta round allocated %.1f objects/op, want 0", allocs)
	}
}

// Same claim for the wing-delta kernel, on both intersection paths.
func TestWingDeltaSteadyStateZeroAlloc(t *testing.T) {
	g := gen.PowerLawBipartite(500, 400, 3000, 0.7, 0.7, 12)
	nnz := int(g.NumEdges())
	alive := make([]bool, nnz)
	inBatch := make([]bool, nnz)
	var batch []int64
	for e := 0; e < nnz; e++ {
		if e%9 == 0 {
			inBatch[e] = true
			batch = append(batch, int64(e))
		} else {
			alive[e] = true
		}
	}
	sup := make([]int64, nnz)
	EdgeSupportParallelInto(sup, g, 1, nil)
	tmap := TransposeEdgeMap(g)
	dirty := make([]int32, nnz)
	touched := make([]int64, 0, nnz)
	arena := NewArena()

	for _, pol := range []HubPolicy{HubAuto, HubAlways, HubNever} {
		// Warm the arena workspace and the touched capacity.
		touched = touched[:0]
		WingDeltaBatch(g, batch, alive, inBatch, tmap, sup, dirty, &touched, 1, pol, arena)
		for _, f := range touched {
			dirty[f] = 0
		}
		allocs := testing.AllocsPerRun(20, func() {
			touched = touched[:0]
			WingDeltaBatch(g, batch, alive, inBatch, tmap, sup, dirty, &touched, 1, pol, arena)
			for _, f := range touched {
				dirty[f] = 0
			}
		})
		if allocs != 0 {
			t.Fatalf("warm wing-delta round (policy %v) allocated %.1f objects/op, want 0", pol, allocs)
		}
	}
}

// TransposeEdgeMap must invert the CSR/CSC correspondence exactly.
func TestTransposeEdgeMap(t *testing.T) {
	g := gen.PowerLawBipartite(60, 50, 400, 0.7, 0.7, 5)
	adj, adjT := g.Adj(), g.AdjT()
	tmap := TransposeEdgeMap(g)
	if len(tmap) != int(adj.NNZ()) {
		t.Fatalf("tmap length %d, want %d", len(tmap), adj.NNZ())
	}
	for v := 0; v < adjT.R; v++ {
		base := adjT.Ptr[v]
		for k, u := range adjT.Row(v) {
			e := tmap[base+int64(k)]
			if got := adj.Col[e]; int(got) != v {
				t.Fatalf("tmap[%d]: edge %d has column %d, want %d", base+int64(k), e, got, v)
			}
			if row := rowOfEdge(adj, e); row != int(u) {
				t.Fatalf("tmap[%d]: edge %d has row %d, want %d", base+int64(k), e, row, u)
			}
		}
	}
}
