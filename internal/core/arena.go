package core

import (
	"sync"

	"butterfly/internal/bitvec"
)

// workspace bundles the per-worker scratch state of every kernel in this
// package: a wedge accumulator, its touched list, and a bitset used by
// the hybrid intersection kernel. The invariant at rest — maintained by
// every kernel — is that acc is all-zero and touched is empty, so a
// recycled workspace needs no clearing pass.
type workspace struct {
	acc     []int32
	touched []int32
	bits    *bitvec.Vector

	// Aggregation-mode scratch (agg.go), all lazily allocated and
	// persisted across rounds like the rest of the workspace: sbuf is
	// the wedge-endpoint gather buffer of the sort and batch kernels,
	// saux the radix-sort ping-pong buffer, and hkey/hval/hused the
	// open-addressing table of the hash kernel (hkey slots are −1 when
	// empty — the at-rest state the hash kernel restores after every
	// vertex).
	sbuf, saux []int32
	hkey, hval []int32
	hused      []int32
}

func newWorkspace(n int) *workspace {
	// touched can hold at most one entry per exposed vertex, so sizing
	// it to the exposed side makes reuse allocation-free.
	return &workspace{acc: make([]int32, n), touched: make([]int32, 0, n)}
}

// ensure grows the workspace to serve an exposed side of n vertices.
// A freshly grown accumulator is zero by construction, so the at-rest
// invariant is preserved.
func (ws *workspace) ensure(n int) {
	if len(ws.acc) < n {
		ws.acc = make([]int32, n)
	}
	if cap(ws.touched) < n {
		ws.touched = make([]int32, 0, n)
	}
	ws.touched = ws.touched[:0]
}

// bitset returns the workspace's scratch bitset resized (and fully
// cleared) to n bits, allocating it on first use.
func (ws *workspace) bitset(n int) *bitvec.Vector {
	if ws.bits == nil {
		ws.bits = bitvec.New(n)
	} else {
		ws.bits.Reset(n)
	}
	return ws.bits
}

// Arena is a pool of kernel workspaces (accumulator + touched list +
// bitset scratch) shared across counting runs. Peeling loops and
// benchmark harnesses perform thousands of counts over same-sized
// graphs; without an arena every round re-allocates O(|V|) scratch,
// which dominates allocation profiles (see BenchmarkTipRoundsArena).
//
// An Arena is safe for concurrent use: parallel workers check
// workspaces out at start-up and return them when the run ends, so a
// single Arena serves every round of a peeling loop regardless of
// thread count. The zero value is ready to use; a nil *Arena is also
// valid and simply allocates fresh workspaces (pooling disabled).
type Arena struct {
	mu   sync.Mutex
	free []*workspace
}

// NewArena returns an empty arena. Workspaces are created on demand and
// sized to the graphs they serve, growing monotonically.
func NewArena() *Arena { return &Arena{} }

// get checks a workspace out of the arena, sized for an exposed side of
// n vertices. On a nil arena it allocates a fresh workspace.
func (a *Arena) get(n int) *workspace {
	if a == nil {
		return newWorkspace(n)
	}
	a.mu.Lock()
	var ws *workspace
	if len(a.free) > 0 {
		ws = a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
	}
	a.mu.Unlock()
	if ws == nil {
		return newWorkspace(n)
	}
	ws.ensure(n)
	return ws
}

// put returns a workspace to the arena. The caller must have restored
// the at-rest invariant (acc all-zero, touched empty). On a nil arena
// the workspace is simply dropped.
func (a *Arena) put(ws *workspace) {
	if a == nil || ws == nil {
		return
	}
	a.mu.Lock()
	a.free = append(a.free, ws)
	a.mu.Unlock()
}

// Size reports how many workspaces are currently checked in — useful in
// tests asserting that parallel runs return everything they borrow.
func (a *Arena) Size() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.free)
}
