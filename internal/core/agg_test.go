package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"butterfly/internal/gen"
	"butterfly/internal/graph"
)

var allAggs = []AggPolicy{AggSort, AggHash, AggHist, AggBatch}

func TestAggPolicyStrings(t *testing.T) {
	wantLong := map[AggPolicy]string{
		AggAuto: "AggAuto", AggSort: "AggSort", AggHash: "AggHash",
		AggHist: "AggHist", AggBatch: "AggBatch",
	}
	wantMode := map[AggPolicy]string{
		AggAuto: "auto", AggSort: "sort", AggHash: "hash",
		AggHist: "hist", AggBatch: "batch",
	}
	for p, s := range wantLong {
		if p.String() != s {
			t.Errorf("String(%d) = %q, want %q", int(p), p.String(), s)
		}
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	for p, s := range wantMode {
		if p.Mode() != s {
			t.Errorf("Mode(%d) = %q, want %q", int(p), p.Mode(), s)
		}
	}
	if AggPolicy(99).Valid() || AggPolicy(-1).Valid() {
		t.Error("out-of-range policies must be invalid")
	}
}

// adversarialGraphs are the shapes the cross-mode matrix runs on: star
// hubs (maximal skew, zero butterflies), long paths (no wedges close),
// bicliques (every wedge closes), chained bicliques, empty and
// singleton sides, plus a seeded power-law graph.
func adversarialGraphs() map[string]*graph.Bipartite {
	return map[string]*graph.Bipartite{
		"star":          gen.Star(40),
		"star-T":        gen.Star(40).Transposed(),
		"path":          gen.Cycle(30).FilterEdges(func(u, v int32) bool { return !(u == 29 && v == 0) }),
		"cycle":         gen.Cycle(24),
		"biclique":      gen.CompleteBipartite(8, 8),
		"bicliques":     gen.BicliqueChain(4, 5, 6),
		"empty":         gen.CompleteBipartite(0, 0),
		"singleton-v1":  gen.CompleteBipartite(1, 12),
		"singleton-v2":  gen.CompleteBipartite(12, 1),
		"edgeless":      graph.FromEdges(6, 7, nil),
		"powerlaw":      gen.PowerLawBipartite(90, 70, 700, 0.8, 0.8, 11),
		"powerlaw-wide": gen.PowerLawBipartite(40, 300, 900, 0.9, 0.5, 7),
	}
}

// TestAggCrossModeMatrix is the satellite's differential matrix: all
// four aggregation modes × all hub policies × sequential and parallel
// execution must produce the identical exact count on every adversarial
// shape. Run under -race in CI, which also exercises the parallel
// kernels' sharing discipline.
func TestAggCrossModeMatrix(t *testing.T) {
	hubs := []HubPolicy{HubAuto, HubNever, HubAlways}
	threads := []int{1, 4}
	for name, g := range adversarialGraphs() {
		want := countSeq(g, AutoInvariant(g))
		for _, inv := range []Invariant{Inv2, Inv5} {
			ref := countSeq(g, inv)
			for _, agg := range allAggs {
				for _, hub := range hubs {
					for _, th := range threads {
						got := CountWith(g, Options{
							Invariant: inv, Threads: th, Hub: hub, Agg: agg,
						})
						if got != ref {
							t.Errorf("%s inv=%v agg=%v hub=%v threads=%d: got %d, want %d",
								name, inv, agg, hub, th, got, ref)
						}
					}
				}
			}
			if ref != want {
				t.Errorf("%s: invariant %v disagrees with auto member: %d vs %d", name, inv, ref, want)
			}
		}
	}
}

// TestQuickAggModesAgree drives the modes through random graphs with
// the dense-matrix oracle as ground truth (same oracle the family
// tests use).
func TestQuickAggModesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 12)
		inv := Invariants()[rng.Intn(NumInvariants)]
		want := countSeq(g, inv)
		for _, agg := range allAggs {
			if CountWith(g, Options{Invariant: inv, Agg: agg}) != want {
				return false
			}
			if CountWith(g, Options{Invariant: inv, Agg: agg, Threads: 3, Hub: HubNever}) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAggArenaReuse checks the new kernels keep the workspace at-rest
// invariant: a warm arena must serve repeated counts of every mode with
// consistent results (a dirty accumulator or stale hash slot would skew
// the second round).
func TestAggArenaReuse(t *testing.T) {
	g := gen.PowerLawBipartite(80, 60, 600, 0.8, 0.8, 5)
	want := countSeq(g, Inv2)
	a := NewArena()
	for round := 0; round < 3; round++ {
		for _, agg := range allAggs {
			if got := CountWith(g, Options{Invariant: Inv2, Agg: agg, Arena: a}); got != want {
				t.Fatalf("round %d agg=%v: got %d, want %d", round, agg, got, want)
			}
		}
	}
}

func TestSortWedges(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ws := newWorkspace(0)
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(400)
		maxVal := int32(rng.Intn(1<<20) + 1)
		buf := make([]int32, n)
		for i := range buf {
			buf[i] = rng.Int31n(maxVal + 1)
		}
		want := append([]int32(nil), buf...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := ws.sortWedges(buf, maxVal)
		if len(got) != len(want) {
			t.Fatalf("trial %d: length %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: index %d: %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestHashTableGrowth(t *testing.T) {
	ws := newWorkspace(0)
	ws.hashInit(aggHashMinSize)
	const n = 10_000
	for rep := 0; rep < 3; rep++ {
		for z := int32(0); z < n; z++ {
			ws.hashAdd(z)
		}
	}
	if len(ws.hused) != n {
		t.Fatalf("distinct keys %d, want %d", len(ws.hused), n)
	}
	seen := make(map[int32]bool, n)
	for _, s := range ws.hused {
		z, c := ws.hkey[s], ws.hval[s]
		if c != 3 {
			t.Fatalf("key %d count %d, want 3", z, c)
		}
		if seen[z] {
			t.Fatalf("key %d stored twice", z)
		}
		seen[z] = true
	}
}

// TestResolveAgg pins the chooser's behavior on canonical shapes: it
// must return a concrete mode (never AggAuto), honor explicit requests,
// and report hist for the inherently-histogram blocked variant.
func TestResolveAgg(t *testing.T) {
	g := gen.PowerLawBipartite(50, 40, 300, 0.8, 0.8, 3)
	if got := ResolveAgg(g, Options{}); got == AggAuto || !got.Valid() {
		t.Fatalf("auto resolution returned %v", got)
	}
	if got := ResolveAgg(g, Options{Agg: AggSort}); got != AggSort {
		t.Fatalf("explicit request resolved to %v", got)
	}
	if got := ResolveAgg(g, Options{Agg: AggSort, BlockSize: 8}); got != AggHist {
		t.Fatalf("blocked variant resolved to %v, want AggHist", got)
	}
	if got := ResolveAgg(g, Options{Agg: AggSort, BlockSize: 8, Threads: 4}); got != AggSort {
		t.Fatalf("parallel run ignores BlockSize; resolved to %v, want AggSort", got)
	}
	// A narrow exposed side must choose the cache-resident histogram.
	if got := ResolveAgg(g, Options{Invariant: Inv2}); got != AggHist {
		t.Fatalf("narrow graph resolved to %v, want AggHist", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid Agg should panic")
		}
	}()
	ResolveAgg(g, Options{Agg: AggPolicy(77)})
}

// TestAutoAggDecisionTable exercises every branch of the chooser with
// synthetic profiles.
func TestAutoAggDecisionTable(t *testing.T) {
	mk := func(w, maxd int, mean float64) graph.DegreeProfile {
		skew := 0.0
		if mean > 0 {
			skew = float64(maxd) / mean
		}
		return graph.DegreeProfile{
			NumV1: w, NumV2: w, MaxDegV1: maxd, MaxDegV2: maxd,
			MeanDegV1: mean, MeanDegV2: mean, SkewV1: skew, SkewV2: skew,
		}
	}
	cases := []struct {
		name string
		p    graph.DegreeProfile
		want AggPolicy
	}{
		{"narrow", mk(1000, 10, 5), AggHist},
		{"wide-skewed", mk(1<<18, 4000, 6), AggHist},
		{"wide-sparse", mk(1<<18, 7, 1.2), AggHash},
		{"wide-hub-product", mk(1<<18, 2048, 400), AggBatch},
		{"wide-flat", mk(1<<18, 40, 30), AggSort},
	}
	for _, c := range cases {
		if got := autoAgg(c.p, true); got != c.want {
			t.Errorf("%s: autoAgg = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestRelayoutCountInvariance: counting on the degree-ordered twin
// returns the same scalar as the original graph for every invariant —
// the property that makes the automatic relayout invisible.
func TestRelayoutCountInvariance(t *testing.T) {
	g := gen.PowerLawBipartite(100, 80, 800, 0.9, 0.9, 17)
	h, p1, p2 := g.DegreeOrdered()
	if len(p1) != g.NumV1() || len(p2) != g.NumV2() {
		t.Fatalf("permutation lengths %d/%d", len(p1), len(p2))
	}
	for _, inv := range Invariants() {
		if a, b := countSeq(g, inv), countSeq(h, inv); a != b {
			t.Fatalf("%v: original %d, relayouted %d", inv, a, b)
		}
	}
	// The twin is cached: a second call returns the same object.
	h2, _, _ := g.DegreeOrdered()
	if h2 != h {
		t.Fatal("DegreeOrdered must cache the twin")
	}
}
