package core

import (
	"testing"

	"butterfly/internal/dense"
	"butterfly/internal/graph"
	"butterfly/internal/sparse"
)

// enumerateGraphs calls fn with every bipartite graph on an m×n
// biadjacency matrix (2^(m·n) of them).
func enumerateGraphs(m, n int, fn func(d *dense.Matrix, g *graph.Bipartite)) {
	cells := m * n
	for bits := 0; bits < 1<<cells; bits++ {
		d := dense.New(m, n)
		for c := 0; c < cells; c++ {
			if bits&(1<<c) != 0 {
				d.Data[c] = 1
			}
		}
		g, err := graph.FromCSR(sparse.FromDense(d, true))
		if err != nil {
			panic(err)
		}
		fn(d, g)
	}
}

// bruteCount counts butterflies by quadruple enumeration.
func bruteCount(d *dense.Matrix) int64 {
	var c int64
	for i := 0; i < d.Rows; i++ {
		for j := i + 1; j < d.Rows; j++ {
			for k := 0; k < d.Cols; k++ {
				for p := k + 1; p < d.Cols; p++ {
					if d.At(i, k) != 0 && d.At(i, p) != 0 && d.At(j, k) != 0 && d.At(j, p) != 0 {
						c++
					}
				}
			}
		}
	}
	return c
}

// TestExhaustiveAllGraphs3x3 verifies every family member against
// brute-force enumeration on ALL 512 graphs with |V1| = |V2| = 3 —
// no sampling gaps on the smallest interesting universe.
func TestExhaustiveAllGraphs3x3(t *testing.T) {
	enumerateGraphs(3, 3, func(d *dense.Matrix, g *graph.Bipartite) {
		want := bruteCount(d)
		for _, inv := range Invariants() {
			if got := Count(g, inv); got != want {
				t.Fatalf("graph %v %v: %d, want %d", d.Data, inv, got, want)
			}
		}
		if got := CountSpGEMM(g); got != want {
			t.Fatalf("graph %v spgemm: %d, want %d", d.Data, got, want)
		}
	})
}

// TestExhaustiveAllGraphs2x4 covers every rectangular 2×4 universe
// (256 graphs) including the blocked and parallel paths.
func TestExhaustiveAllGraphs2x4(t *testing.T) {
	enumerateGraphs(2, 4, func(d *dense.Matrix, g *graph.Bipartite) {
		want := bruteCount(d)
		for _, inv := range []Invariant{Inv1, Inv4, Inv5, Inv8} {
			if got := CountWith(g, Options{Invariant: inv, BlockSize: 3}); got != want {
				t.Fatalf("graph %v %v blocked: %d, want %d", d.Data, inv, got, want)
			}
			if got := CountWith(g, Options{Invariant: inv, Threads: 2}); got != want {
				t.Fatalf("graph %v %v parallel: %d, want %d", d.Data, inv, got, want)
			}
		}
	})
}

// TestExhaustivePerVertexAndEdge3x3 verifies per-vertex counts and edge
// supports on the full 3×3 universe.
func TestExhaustivePerVertexAndEdge3x3(t *testing.T) {
	enumerateGraphs(3, 3, func(d *dense.Matrix, g *graph.Bipartite) {
		total := bruteCount(d)
		var vs int64
		for _, v := range VertexButterflies(g, SideV1) {
			vs += v
		}
		if vs != 2*total {
			t.Fatalf("graph %v: Σ vertex counts %d, want %d", d.Data, vs, 2*total)
		}
		if got := sparse.SumAll(EdgeSupport(g)); got != 4*total {
			t.Fatalf("graph %v: Σ supports %d, want %d", d.Data, got, 4*total)
		}
	})
}
