package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/dense"
	"butterfly/internal/gen"
)

func TestCounterMatchesCount(t *testing.T) {
	c := NewCounter(0) // deliberately undersized; must grow
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		_, g := randGraphAndDense(rng, 14)
		for _, inv := range Invariants() {
			if got, want := c.Count(g, inv), Count(g, inv); got != want {
				t.Fatalf("trial %d %v: %d, want %d", trial, inv, got, want)
			}
		}
	}
}

func TestCounterZeroValueUsable(t *testing.T) {
	var c Counter
	g := gen.CompleteBipartite(3, 3)
	if c.CountAuto(g) != 9 {
		t.Fatal("zero-value Counter wrong")
	}
}

func TestCounterReuseLeavesBuffersClean(t *testing.T) {
	c := NewCounter(100)
	g := gen.PowerLawBipartite(80, 60, 300, 0.7, 0.7, 2)
	first := c.CountAuto(g)
	// A second count must see zeroed accumulators.
	if second := c.CountAuto(g); second != first {
		t.Fatalf("reuse changed result: %d vs %d", second, first)
	}
	for i, v := range c.acc {
		if v != 0 {
			t.Fatalf("acc[%d] = %d left dirty", i, v)
		}
	}
}

func TestCounterInvalidInvariantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewCounter(4).Count(gen.Star(2), Invariant(0))
}

func TestQuickCountSpGEMMParallelMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 12)
		want := dense.SpecCount(d)
		return CountSpGEMMParallel(g, 4) == want && CountSpGEMMParallel(g, 1) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCountSpGEMMParallelLarge(t *testing.T) {
	g := gen.PowerLawBipartite(4000, 3000, 20000, 0.7, 0.7, 3)
	want := CountAuto(g)
	if got := CountSpGEMMParallel(g, 6); got != want {
		t.Fatalf("parallel SpGEMM count %d, want %d", got, want)
	}
}

func BenchmarkCounterReuseVsFresh(b *testing.B) {
	g := gen.PowerLawBipartite(2000, 1500, 8000, 0.7, 0.7, 4)
	inv := AutoInvariant(g)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkBench = Count(g, inv)
		}
	})
	b.Run("reused", func(b *testing.B) {
		c := NewCounter(g.NumV2())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkBench = c.Count(g, inv)
		}
	})
}

var sinkBench int64

func TestQuickVertexButterfliesSpGEMMMatchesSweep(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 12)
		for _, side := range []Side{SideV1, SideV2} {
			want := VertexButterflies(g, side)
			got := VertexButterfliesSpGEMM(g, side)
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestVertexButterfliesSpGEMMMedium(t *testing.T) {
	g := gen.PowerLawBipartite(500, 400, 3000, 0.7, 0.7, 18)
	want := VertexButterflies(g, SideV1)
	got := VertexButterfliesSpGEMM(g, SideV1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: %d, want %d", i, got[i], want[i])
		}
	}
}

func TestQuickCountBlockedAlgebraicMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 12)
		want := dense.SpecCount(d)
		for _, panel := range []int{1, 2, 3, 7, 64} {
			if CountBlockedAlgebraic(g, panel) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestCountBlockedAlgebraicMedium(t *testing.T) {
	g := gen.PowerLawBipartite(600, 500, 4000, 0.7, 0.7, 19)
	want := CountAuto(g)
	for _, panel := range []int{16, 128} {
		if got := CountBlockedAlgebraic(g, panel); got != want {
			t.Fatalf("panel=%d: %d, want %d", panel, got, want)
		}
	}
}

func TestCountBlockedAlgebraicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	CountBlockedAlgebraic(gen.Star(2), 0)
}
