// Package core implements the paper's primary contribution: the family
// of eight provably-correct butterfly counting algorithms derived from
// the linear-algebraic specification
//
//	ΞG = ¼Γ(AAᵀAAᵀ) − ¼Γ(AAᵀ∘AAᵀ) − (¼Γ(JAAᵀ) − ¼Γ(AAᵀ))     (eq. 7)
//
// via the FLAME methodology, plus the per-vertex and per-edge butterfly
// counts that power k-tip and k-wing peeling.
//
// # The algorithm family
//
// Each loop invariant of the paper corresponds to one traversal of one
// vertex side with one partner restriction. For invariants 1–4 the
// exposed unit is a column a1 of A (a vertex v2k ∈ V2) and the update is
// equation (18):
//
//	ΞG += ½·a1ᵀ·Ap·Apᵀ·a1 − ½·Γ(a1a1ᵀ ∘ ApApᵀ)
//
// where Ap is the partner partition (A0 = already-exposed columns for
// the eager variants, A2 = not-yet-exposed columns for the look-ahead
// variants). Concretely the update is Σ_j C(|N(v2k) ∩ N(v2j)|, 2) over
// partner columns j, computed with a sparse wedge accumulator — the
// subtraction term of (18) never materializes, exactly as the paper
// notes ("by carefully implementing this update, the computation of the
// subtraction term can be avoided"). Invariants 5–8 are the symmetric
// row-partitioned family.
//
// Work bounds follow directly: invariants 1–4 touch every pair of
// columns sharing a row, Σ_{u∈V1} C(deg u, 2) wedge steps, while
// invariants 5–8 touch Σ_{v∈V2} C(deg v, 2). This is the mechanism
// behind the paper's "partition the smaller vertex set" guidance.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"butterfly/internal/graph"
)

// Invariant selects one of the paper's eight loop invariants (Fig 4 and
// Fig 5), i.e. one member of the algorithm family.
type Invariant int

const (
	// Inv1 partitions V2, traverses L→R, counts against the exposed
	// partition A0 (Fig 6, Algorithm 1).
	Inv1 Invariant = iota + 1
	// Inv2 partitions V2, traverses L→R, counts against the unexposed
	// partition A2 — a "look-ahead" algorithm (Fig 6, Algorithm 2).
	Inv2
	// Inv3 partitions V2, traverses R→L, counts against A0, which is
	// unexposed under this traversal (Fig 6, Algorithm 3).
	Inv3
	// Inv4 partitions V2, traverses R→L, counts against A2 (Fig 6,
	// Algorithm 4).
	Inv4
	// Inv5 partitions V1, traverses T→B, counts against A0 (Fig 7,
	// Algorithm 5).
	Inv5
	// Inv6 partitions V1, traverses T→B, counts against A2 (Fig 7,
	// Algorithm 6).
	Inv6
	// Inv7 partitions V1, traverses B→T, counts against A0 — a
	// "look-ahead" algorithm (Fig 7, Algorithm 7).
	Inv7
	// Inv8 partitions V1, traverses B→T, counts against A2 (Fig 7,
	// Algorithm 8).
	Inv8
)

// NumInvariants is the size of the algorithm family.
const NumInvariants = 8

// Invariants lists the whole family in paper order.
func Invariants() []Invariant {
	return []Invariant{Inv1, Inv2, Inv3, Inv4, Inv5, Inv6, Inv7, Inv8}
}

// String returns the paper's name for the invariant.
func (inv Invariant) String() string {
	if inv < Inv1 || inv > Inv8 {
		return fmt.Sprintf("Invariant(%d)", int(inv))
	}
	return fmt.Sprintf("Inv%d", int(inv))
}

// PartitionsV2 reports whether the invariant belongs to the
// column-partitioned family (1–4).
func (inv Invariant) PartitionsV2() bool { return inv >= Inv1 && inv <= Inv4 }

// LookAhead reports whether the invariant counts against the partition
// that has not been exposed yet (the paper's "look-ahead" property).
func (inv Invariant) LookAhead() bool {
	switch inv {
	case Inv2, Inv3, Inv6, Inv7:
		return true
	default:
		return false
	}
}

// traversal geometry of an invariant: iteration direction over the
// exposed side and whether partners are taken from indices below or
// above the exposed vertex.
func (inv Invariant) geometry() (descending, partnersAbove bool) {
	switch inv {
	case Inv1: // L→R, partners in A0 (left of a1): j < k
		return false, false
	case Inv2: // L→R, partners in A2 (right): j > k
		return false, true
	case Inv3: // R→L, partners in A0 (left): j < k
		return true, false
	case Inv4: // R→L, partners in A2 (right): j > k
		return true, true
	case Inv5: // T→B, partners in A0 (above): w < u
		return false, false
	case Inv6: // T→B, partners in A2 (below): w > u
		return false, true
	case Inv7: // B→T, partners in A0 (above): w < u
		return true, false
	case Inv8: // B→T, partners in A2 (below): w > u
		return true, true
	default:
		panic("core: invalid invariant " + inv.String())
	}
}

// Options configures a counting run.
type Options struct {
	// Invariant selects the family member; zero value defaults to
	// automatic selection (the family that partitions the smaller
	// vertex set, look-ahead variant).
	Invariant Invariant
	// Threads > 1 runs the parallel algorithm with that many workers;
	// 0 or 1 runs sequentially. Negative uses GOMAXPROCS.
	Threads int
	// BlockSize > 1 exposes BlockSize vertices per iteration (the
	// blocked variants); 0 or 1 is the unblocked algorithm of Fig 6/7.
	BlockSize int
	// Order optionally relabels vertices before counting (degree
	// ordering is the paper's future-work optimization; the count is
	// invariant under relabeling).
	Order graph.Order
	// Hub selects the hybrid intersection kernel policy: HubAuto (the
	// zero value) chooses per vertex from a cost model, HubNever forces
	// the sparse path, HubAlways forces the bitset path. Every policy
	// returns the exact count.
	Hub HubPolicy
	// Agg selects the wedge-aggregation kernel: AggAuto (the zero
	// value) picks per graph from the degree profile; AggSort, AggHash,
	// AggHist and AggBatch force one mode. Every mode returns the exact
	// count. The blocked variant (Threads ≤ 1, BlockSize > 1) is
	// inherently histogram-based and ignores this knob; ResolveAgg
	// reports the mode that actually runs. See agg.go.
	Agg AggPolicy
	// Arena optionally supplies a workspace pool reused across counts;
	// nil allocates fresh scratch per run. See NewArena.
	Arena *Arena
	// stop, when non-nil, is polled at checkpoints by every counting
	// loop (between exposed vertices sequentially, between schedule
	// units in parallel). Once it reads true the loops abandon their
	// traversal and CountWith returns an unspecified partial value —
	// callers that set it must discard the result. Set via
	// CountContext; not exported because a bare partial count is a
	// footgun without the error return that CountContext pairs it with.
	stop *atomic.Bool

	// Stage, when non-nil, receives coarse stage timings: "core.order"
	// for the optional relabeling pass, "core.relayout" for the
	// automatic degree-ordered relayout (first count on a graph only —
	// the twin is cached afterwards), "core.count" for the count
	// itself, and "core.agg.<mode>" re-attributing the same count
	// duration to the resolved aggregation mode (an attribution label,
	// not an extra phase — its duration equals core.count's). The hook
	// fires a handful of times per count — never inside the wedge
	// loops — so a nil hook costs one predictable branch and an
	// installed hook costs a few time.Now calls, keeping disabled
	// tracing invisible on the count benchmarks. The serving layer
	// adapts this to trace spans; core deliberately does not import the
	// tracer.
	Stage func(stage string, d time.Duration)
}

// AutoInvariant picks the family member the paper's Section V
// recommends for g: partition the smaller vertex set, preferring the
// look-ahead member of that family.
func AutoInvariant(g *graph.Bipartite) Invariant {
	if g.NumV2() <= g.NumV1() {
		return Inv2
	}
	return Inv7
}

// Count returns the exact number of butterflies in g using the given
// invariant's sequential algorithm.
func Count(g *graph.Bipartite, inv Invariant) int64 {
	return CountWith(g, Options{Invariant: inv})
}

// CountAuto counts with the automatically selected invariant.
func CountAuto(g *graph.Bipartite) int64 {
	return Count(g, AutoInvariant(g))
}

// CountWith counts butterflies according to opts.
func CountWith(g *graph.Bipartite, opts Options) int64 {
	inv := opts.Invariant
	if inv == 0 {
		inv = AutoInvariant(g)
	}
	if inv < Inv1 || inv > Inv8 {
		panic("core: invalid invariant " + inv.String())
	}
	agg := ResolveAgg(g, opts)
	if opts.Order != graph.OrderNatural {
		if opts.Stage != nil {
			t0 := time.Now()
			g, _, _ = g.Relabel(opts.Order)
			opts.Stage("core.order", time.Since(t0))
		} else {
			g, _, _ = g.Relabel(opts.Order)
		}
	} else if shouldRelayout(g.Profile()) {
		// Count on the cached degree-ordered twin: the scalar count is
		// invariant under relabeling, so the relayout never leaks into
		// results — it only concentrates the kernels' memory traffic
		// (see graph.DegreeOrdered). Explicit Order requests above take
		// precedence; per-vertex and per-edge kernels do their own
		// orientation and never come through here.
		if opts.Stage != nil {
			t0 := time.Now()
			g, _, _ = g.DegreeOrdered()
			opts.Stage("core.relayout", time.Since(t0))
		} else {
			g, _, _ = g.DegreeOrdered()
		}
	}
	threads := opts.Threads
	if threads < 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	var t0 time.Time
	if opts.Stage != nil {
		t0 = time.Now()
	}
	var c int64
	switch {
	case threads > 1:
		c = countParallel(g, inv, threads, opts.Hub, agg, opts.Arena, opts.stop)
	case opts.BlockSize > 1:
		c = countBlocked(g, inv, opts.BlockSize, opts.stop)
	case opts.Hub == HubNever && opts.Arena == nil && opts.stop == nil && agg == AggHist:
		c = countSeq(g, inv)
	default:
		c = countSeqHub(g, inv, opts.Hub, agg, opts.Arena, opts.stop)
	}
	if opts.Stage != nil {
		d := time.Since(t0)
		opts.Stage("core.count", d)
		opts.Stage("core.agg."+agg.Mode(), d)
	}
	return c
}

// stopped reports whether the stop flag has been raised. The nil check
// is inlined at every checkpoint; the atomic load only happens for
// cancellable runs.
func stopped(stop *atomic.Bool) bool { return stop != nil && stop.Load() }

// CountContext is CountWith with cooperative cancellation: when ctx is
// cancelled (deadline, timeout or explicit cancel) the counting loops
// abandon their traversal at the next checkpoint — between exposed
// vertices sequentially, between schedule units in parallel — and
// CountContext returns ctx.Err(). Checkpoints are frequent enough that
// return is prompt even on hub-dominated graphs (a schedule unit is
// bounded by the hub spill budget). With a never-cancelled context the
// result and performance are identical to CountWith: the fast path
// adds one nil check per checkpoint and no goroutine.
func CountContext(ctx context.Context, g *graph.Bipartite, opts Options) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	done := ctx.Done()
	if done == nil {
		return CountWith(g, opts), nil
	}
	var stop atomic.Bool
	opts.stop = &stop
	finished := make(chan struct{})
	go func() {
		select {
		case <-done:
			stop.Store(true)
		case <-finished:
		}
	}()
	c := CountWith(g, opts)
	close(finished)
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return c, nil
}
