package core

// Wedge-delta kernels for incremental peeling (ParButterfly-style
// bucketed decomposition; Shi & Shun [12], Wang et al. [13]).
//
// Round-synchronous peeling recomputes every surviving support from
// scratch each round — O(wedges of the surviving subgraph) per level.
// The kernels here invert that: given the batch peeled this round, they
// compute the exact support *decrements* of the affected neighbors only,
// so total decomposition cost is proportional to the butterflies
// destroyed rather than levels × wedges.
//
// Exactness (asserted by the quick-check suites in delta_test.go and
// internal/peel):
//
//   - Tip: removing an exposed-side batch B never changes the wedge
//     multiplicity β_uw between two surviving exposed vertices (only
//     exposed vertices leave; every secondary vertex and surviving edge
//     stays). A survivor w therefore loses exactly
//     Σ_{u∈B} C(β_uw, 2) butterflies — the pair terms it shared with
//     the batch — and nothing else.
//   - Wing: a butterfly {u,w} × {v,p} is destroyed by the batch iff at
//     least one of its four edges is in the batch and none was dead
//     before the batch. Each destroyed butterfly decrements the support
//     of each of its surviving edges by exactly 1. To count every
//     destroyed butterfly exactly once under parallel execution, the
//     butterfly is "assigned" to its minimum-id batch edge: the sweep
//     from batch edge e skips any butterfly that also contains a batch
//     edge with a smaller flat id. The rule is order-free, so workers
//     can process batch edges concurrently with atomic decrements.
//
// Both kernels draw scratch from a core.Arena and append first-touched
// ids to a caller-owned buffer (deduplicated through a caller-owned
// dirty-mark array), so steady-state peeling rounds allocate nothing on
// the sequential path (TestTipDeltaSteadyStateZeroAlloc /
// TestWingDeltaSteadyStateZeroAlloc).

import (
	"sync"
	"sync/atomic"

	"butterfly/internal/graph"
	"butterfly/internal/sparse"
)

// minDeltaParallelBatch is the smallest peeled batch worth fanning out
// to worker goroutines; below it the spawn cost dominates the wedge
// work and the kernels fall back to the sequential path.
const minDeltaParallelBatch = 8

// TipDeltaBatch subtracts from s the butterflies each still-alive
// vertex of the chosen side lost when batch was peeled. alive must
// already be false for every batch member (and every vertex peeled in
// earlier rounds); s is indexed by side vertex. Every vertex whose
// count actually decreased is appended exactly once to *touched, using
// dirty (an all-zero int32 array of the side's length) for
// deduplication; the caller must clear the marks of the returned ids
// before the next round. With threads > 1 the batch is processed by
// worker goroutines using atomic decrements; results are identical to
// the sequential path (the decrement multiset is the same).
func TipDeltaBatch(g *graph.Bipartite, side Side, batch []int32, alive []bool, s []int64, dirty []int32, touched *[]int32, threads int, a *Arena) {
	if len(batch) == 0 {
		return
	}
	exposed, secondary := vertexOrient(g, side)
	if threads > len(batch) {
		threads = len(batch)
	}
	if threads <= 1 || len(batch) < minDeltaParallelBatch {
		ws := a.get(exposed.R)
		for _, u := range batch {
			partners := tipDeltaWedges(int(u), exposed, secondary, alive, ws)
			acc := ws.acc
			for _, w := range partners {
				c := int64(acc[w])
				acc[w] = 0
				if b := c * (c - 1) / 2; b > 0 {
					s[w] -= b
					if dirty[w] == 0 {
						dirty[w] = 1
						*touched = append(*touched, w)
					}
				}
			}
			ws.touched = ws.touched[:0]
		}
		a.put(ws)
		return
	}

	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
	)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := a.get(exposed.R)
			defer a.put(ws)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(batch) {
					break
				}
				partners := tipDeltaWedges(int(batch[i]), exposed, secondary, alive, ws)
				acc := ws.acc
				for _, w := range partners {
					c := int64(acc[w])
					acc[w] = 0
					if b := c * (c - 1) / 2; b > 0 {
						atomic.AddInt64(&s[w], -b)
						if atomic.CompareAndSwapInt32(&dirty[w], 0, 1) {
							mu.Lock()
							*touched = append(*touched, w)
							mu.Unlock()
						}
					}
				}
				ws.touched = ws.touched[:0]
			}
		}()
	}
	wg.Wait()
}

// tipDeltaWedges accumulates the wedge multiplicities β_uw of peeled
// vertex u against every still-alive partner w into ws.acc and returns
// the touched partner list. The caller consumes and re-zeroes the
// accumulator (restoring the workspace's at-rest invariant). u itself
// is never a partner because alive[u] is already false.
func tipDeltaWedges(u int, exposed, secondary *sparse.CSR, alive []bool, ws *workspace) []int32 {
	acc := ws.acc
	partners := ws.touched[:0]
	for _, y := range exposed.Row(u) {
		for _, w := range secondary.Row(int(y)) {
			if !alive[w] {
				continue
			}
			if acc[w] == 0 {
				partners = append(partners, w)
			}
			acc[w]++
		}
	}
	ws.touched = partners
	return partners
}

// TransposeEdgeMap returns tmap with tmap[j] equal to the flat edge id
// in g.Adj() of the edge stored at flat position j of g.AdjT(). Built
// in O(nnz); the wing-delta kernel uses it to resolve (w, v) edge ids
// without per-wedge binary searches.
func TransposeEdgeMap(g *graph.Bipartite) []int64 {
	adj, adjT := g.Adj(), g.AdjT()
	tmap := make([]int64, adj.NNZ())
	next := make([]int64, adjT.R)
	copy(next, adjT.Ptr[:adjT.R])
	for u := 0; u < adj.R; u++ {
		for k := adj.Ptr[u]; k < adj.Ptr[u+1]; k++ {
			v := adj.Col[k]
			tmap[next[v]] = k
			next[v]++
		}
	}
	return tmap
}

// WingDeltaBatch decrements sup (indexed by flat edge id of g.Adj())
// for every surviving edge that lost butterflies when the batch of
// edges was peeled. The caller must have, for every batch edge e:
// alive[e] = false and inBatch[e] = true (inBatch distinguishes
// "dying this round" from "dead in an earlier round"; the caller clears
// it after the kernel returns). tmap is TransposeEdgeMap(g). Decrements
// are deduplicated per destroyed butterfly via the minimum-batch-id
// assignment rule, so the kernel is exact for batches of any size and
// parallelizes over batch edges (threads > 1 uses atomic decrements).
// First-touched surviving edges are appended to *touched once, using
// dirty for deduplication as in TipDeltaBatch.
//
// pol selects the intersection flavor for resolving N(u) ∩ N(w): the
// merge path walks both sorted rows; the hub path (taken for dense u
// under HubAuto's cost model, always under HubAlways) materializes u's
// neighbor→position map in the workspace accumulator so every partner
// row is resolved by O(deg w) direct lookups — PR 1's dense-row-gets-a-
// different-kernel policy applied to the delta sweep. All paths produce
// identical decrements.
func WingDeltaBatch(g *graph.Bipartite, batch []int64, alive, inBatch []bool, tmap, sup []int64, dirty []int32, touched *[]int64, threads int, pol HubPolicy, a *Arena) {
	if len(batch) == 0 {
		return
	}
	adj, adjT := g.Adj(), g.AdjT()
	if threads > len(batch) {
		threads = len(batch)
	}
	if threads <= 1 || len(batch) < minDeltaParallelBatch {
		ws := a.get(adj.C)
		for _, e := range batch {
			wingDeltaEdge(e, adj, adjT, alive, inBatch, tmap, sup, dirty, touched, nil, pol, ws)
		}
		a.put(ws)
		return
	}

	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
	)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := a.get(adj.C)
			defer a.put(ws)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(batch) {
					break
				}
				wingDeltaEdge(batch[i], adj, adjT, alive, inBatch, tmap, sup, dirty, touched, &mu, pol, ws)
			}
		}()
	}
	wg.Wait()
}

// wingHubDeg is the minimum exposed degree at which the hub
// (position-map) path pays for its build+clear cost under HubAuto.
// Below it the per-partner merge's deg(u) term is too small for the
// map's 2·deg(u) build to amortize across realistic partner counts.
const wingHubDeg = 16

// wingDeltaEdge enumerates the butterflies assigned to dying edge e and
// decrements the supports of their surviving edges. mu == nil selects
// the sequential (non-atomic) decrement path.
func wingDeltaEdge(e int64, adj, adjT *sparse.CSR, alive, inBatch []bool, tmap, sup []int64, dirty []int32, touched *[]int64, mu *sync.Mutex, pol HubPolicy, ws *workspace) {
	u := rowOfEdge(adj, e)
	v := adj.Col[e]
	ru := adj.Row(u)
	baseU := adj.Ptr[u]
	vrow := adjT.Row(int(v))
	tbase := adjT.Ptr[int(v)]

	// Hub path decision: materializing u's neighbor→position map costs
	// 2·deg(u) (build + clear) and turns every partner intersection
	// from a deg(u)+deg(w) merge into deg(w) direct lookups — saving
	// ~deg(u) per partner, so it pays once u is dense (≥ wingHubDeg)
	// and there are enough partners (≥ 3) to amortize the build.
	//
	// The model deliberately reads only degrees — deg(u) via len(ru),
	// the partner count via len(vrow) — never vertex ids. Peeling runs
	// on the graph's public (original) vertex order, but the counting
	// core may have served the peel's initial supports from the
	// degree-ordered relayout twin, where hubs occupy the low ids; an
	// id-based density proxy (e.g. "small u is dense") would be wrong
	// in one order or the other, while degrees are preserved by any
	// relabeling. TestWingDeltaRelayoutAgreement pins this down by
	// peeling a relayouted twin and checking delta against recount.
	usePos := false
	switch pol {
	case HubAlways:
		usePos = len(ru) > 0
	case HubAuto:
		usePos = len(ru) >= wingHubDeg && len(vrow) >= 3
	}
	acc := ws.acc
	if usePos {
		for k, p := range ru {
			acc[p] = int32(k) + 1
		}
	}

	for wi, w := range vrow {
		if int(w) == u {
			continue
		}
		// Every butterfly {u,w} × {v,·} contains edge (w,v): if it died
		// in an earlier round all those butterflies are long destroyed;
		// if it dies this round with a smaller id, they are assigned to
		// it, not to e.
		ewv := tmap[tbase+int64(wi)]
		if !alive[ewv] && !inBatch[ewv] {
			continue
		}
		if inBatch[ewv] && ewv < e {
			continue
		}
		rw := adj.Row(int(w))
		baseW := adj.Ptr[w]
		if usePos {
			for kw, p := range rw {
				if p == v {
					continue
				}
				pu := acc[p]
				if pu == 0 {
					continue
				}
				wingButterfly(e, ewv, baseU+int64(pu)-1, baseW+int64(kw), alive, inBatch, sup, dirty, touched, mu)
			}
		} else {
			x, y := 0, 0
			for x < len(ru) && y < len(rw) {
				switch {
				case ru[x] < rw[y]:
					x++
				case ru[x] > rw[y]:
					y++
				default:
					if ru[x] != v {
						wingButterfly(e, ewv, baseU+int64(x), baseW+int64(y), alive, inBatch, sup, dirty, touched, mu)
					}
					x++
					y++
				}
			}
		}
	}

	if usePos {
		for _, p := range ru {
			acc[p] = 0
		}
	}
}

// wingButterfly applies the assignment rule to one candidate butterfly
// (dying edge e, companion edges ewv, eup, ewp) and, if the butterfly
// is destroyed by e, decrements the support of each surviving edge.
func wingButterfly(e, ewv, eup, ewp int64, alive, inBatch []bool, sup []int64, dirty []int32, touched *[]int64, mu *sync.Mutex) {
	if !alive[eup] && !inBatch[eup] {
		return // butterfly destroyed in an earlier round
	}
	if !alive[ewp] && !inBatch[ewp] {
		return
	}
	if inBatch[eup] && eup < e {
		return // assigned to a smaller-id batch edge
	}
	if inBatch[ewp] && ewp < e {
		return
	}
	if mu == nil {
		if alive[ewv] {
			wingDecSeq(ewv, sup, dirty, touched)
		}
		if alive[eup] {
			wingDecSeq(eup, sup, dirty, touched)
		}
		if alive[ewp] {
			wingDecSeq(ewp, sup, dirty, touched)
		}
		return
	}
	if alive[ewv] {
		wingDecAtomic(ewv, sup, dirty, touched, mu)
	}
	if alive[eup] {
		wingDecAtomic(eup, sup, dirty, touched, mu)
	}
	if alive[ewp] {
		wingDecAtomic(ewp, sup, dirty, touched, mu)
	}
}

func wingDecSeq(f int64, sup []int64, dirty []int32, touched *[]int64) {
	sup[f]--
	if dirty[f] == 0 {
		dirty[f] = 1
		*touched = append(*touched, f)
	}
}

func wingDecAtomic(f int64, sup []int64, dirty []int32, touched *[]int64, mu *sync.Mutex) {
	atomic.AddInt64(&sup[f], -1)
	if atomic.CompareAndSwapInt32(&dirty[f], 0, 1) {
		mu.Lock()
		*touched = append(*touched, f)
		mu.Unlock()
	}
}

// rowOfEdge finds the exposed row of flat edge id e by binary search on
// the row pointer.
func rowOfEdge(a *sparse.CSR, e int64) int {
	lo, hi := 0, a.R
	for lo < hi {
		mid := (lo + hi) / 2
		if a.Ptr[mid+1] > e {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
