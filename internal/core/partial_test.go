package core

import (
	"math/rand"
	"testing"

	"butterfly/internal/graph"
)

// randomBipartite builds a random m×n graph with about e edges.
func randomBipartite(m, n int, e int, seed int64) *graph.Bipartite {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(m, n)
	for i := 0; i < e; i++ {
		b.AddEdge(rng.Intn(m), rng.Intn(n))
	}
	return b.Build()
}

// partitionV1 splits g's edges by a hash of the V1 endpoint into p
// edge-disjoint graphs over the same vertex sets.
func partitionV1(g *graph.Bipartite, p int) []*graph.Bipartite {
	builders := make([]*graph.Builder, p)
	for i := range builders {
		builders[i] = graph.NewBuilder(g.NumV1(), g.NumV2())
	}
	for u := 0; u < g.NumV1(); u++ {
		part := int(uint64(u*2654435761) % uint64(p))
		for _, v := range g.NeighborsOfV1(u) {
			builders[part].AddEdge(u, int(v))
		}
	}
	out := make([]*graph.Bipartite, p)
	for i, b := range builders {
		out[i] = b.Build()
	}
	return out
}

func TestWedgePartialsSingleEqualsExact(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Bipartite
	}{
		{"random", randomBipartite(40, 30, 300, 1)},
		{"dense", randomBipartite(12, 12, 200, 2)},
		{"sparse", randomBipartite(100, 100, 150, 3)},
	} {
		exact := CountAuto(tc.g)
		got := CountFromPartials(WedgePartials(tc.g))
		if got != exact {
			t.Errorf("%s: CountFromPartials(single) = %d, exact = %d", tc.name, got, exact)
		}
	}
}

func TestWedgePartialsMergeAcrossPartitions(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g := randomBipartite(60, 45, 500, seed)
		exact := CountAuto(g)
		for _, p := range []int{1, 2, 3, 4, 7} {
			parts := partitionV1(g, p)
			partials := make([][]PairCount, p)
			var local int64
			for i, pg := range parts {
				partials[i] = WedgePartials(pg)
				local += CountFromPartials(partials[i])
			}
			got := CountFromPartials(partials...)
			if got != exact {
				t.Errorf("seed %d p=%d: merged count %d, exact %d", seed, p, got, exact)
			}
			if p > 1 && local > exact {
				t.Errorf("seed %d p=%d: intra-partition counts %d exceed exact %d", seed, p, local, exact)
			}
		}
	}
}

func TestWedgePartialsSortedAndDeduped(t *testing.T) {
	g := randomBipartite(30, 20, 250, 9)
	ps := WedgePartials(g)
	for i := 1; i < len(ps); i++ {
		a, b := ps[i-1], ps[i]
		if a.V > b.V || (a.V == b.V && a.W >= b.W) {
			t.Fatalf("partials not strictly sorted at %d: %+v then %+v", i, a, b)
		}
	}
	for _, p := range ps {
		if p.V >= p.W {
			t.Fatalf("pair not ordered: %+v", p)
		}
		if p.C <= 0 {
			t.Fatalf("non-positive wedge count: %+v", p)
		}
	}
}
