package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/dense"
	"butterfly/internal/gen"
	"butterfly/internal/graph"
	"butterfly/internal/sparse"
)

func TestQuickVertexButterfliesMatchSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 12)
		wantV1 := dense.SpecVertexButterflies(d)
		gotV1 := VertexButterflies(g, SideV1)
		for i := range wantV1 {
			if gotV1[i] != wantV1[i] {
				return false
			}
		}
		wantV2 := dense.SpecVertexButterfliesV2(d)
		gotV2 := VertexButterflies(g, SideV2)
		for i := range wantV2 {
			if gotV2[i] != wantV2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVertexButterfliesSumIsTwiceCount(t *testing.T) {
	g := gen.PowerLawBipartite(200, 150, 1500, 0.7, 0.7, 3)
	want := 2 * CountAuto(g)
	for _, side := range []Side{SideV1, SideV2} {
		var sum int64
		for _, v := range VertexButterflies(g, side) {
			sum += v
		}
		if sum != want {
			t.Errorf("side %v: Σs = %d, want %d", side, sum, want)
		}
	}
}

func TestQuickVertexButterfliesParallelMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 15)
		for _, side := range []Side{SideV1, SideV2} {
			want := VertexButterflies(g, side)
			got := VertexButterfliesParallel(g, side, 4)
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVertexButterfliesParallelSingleThreadDelegates(t *testing.T) {
	g := gen.CompleteBipartite(4, 4)
	want := VertexButterflies(g, SideV1)
	got := VertexButterfliesParallel(g, SideV1, 1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("threads=1 differs from sequential")
		}
	}
}

// Masked per-vertex counts equal the spec on the induced subgraph where
// inactive exposed-side vertices lose their edges.
func TestQuickVertexButterfliesMaskedMatchesInduced(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 10)
		active := make([]bool, g.NumV1())
		masked := d.Clone()
		for i := range active {
			active[i] = rng.Intn(3) > 0
			if !active[i] {
				for j := 0; j < masked.Cols; j++ {
					masked.Set(i, j, 0)
				}
			}
		}
		want := dense.SpecVertexButterflies(masked)
		got := VertexButterfliesMasked(g, SideV1, active)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestVertexButterfliesMaskedLengthPanics(t *testing.T) {
	g := gen.CompleteBipartite(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("bad mask length did not panic")
		}
	}()
	VertexButterfliesMasked(g, SideV1, make([]bool, 2))
}

func TestSideString(t *testing.T) {
	if SideV1.String() != "V1" || SideV2.String() != "V2" {
		t.Fatal("Side.String wrong")
	}
}

func TestQuickEdgeSupportMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 12)
		want := dense.SpecEdgeSupport(d)
		got := EdgeSupport(g)
		return sparse.ToDense(got).Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEdgeSupportParallelMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 15)
		want := EdgeSupport(g)
		got := EdgeSupportParallel(g, 4)
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeSupportParallelSingleThreadDelegates(t *testing.T) {
	g := gen.CompleteBipartite(3, 4)
	if !EdgeSupportParallel(g, 1).Equal(EdgeSupport(g)) {
		t.Fatal("threads=1 differs")
	}
}

func TestCountFromEdgeSupport(t *testing.T) {
	g := gen.BicliqueChain(3, 3, 3)
	want := CountAuto(g)
	if got := CountFromEdgeSupport(EdgeSupport(g)); got != want {
		t.Fatalf("CountFromEdgeSupport = %d, want %d", got, want)
	}
}

func TestCountFromEdgeSupportPanicsOnCorrupt(t *testing.T) {
	s := &sparse.CSR{R: 1, C: 1, Ptr: []int64{0, 1}, Col: []int32{0}, Val: []int64{3}}
	defer func() {
		if recover() == nil {
			t.Fatal("corrupt support sum did not panic")
		}
	}()
	CountFromEdgeSupport(s)
}

func TestEdgeSupportCompleteBipartite(t *testing.T) {
	// In K(a,b) every edge supports C(a-1,1)·C(b-1,1) butterflies.
	a, b := 4, 5
	g := gen.CompleteBipartite(a, b)
	want := int64((a - 1) * (b - 1))
	s := EdgeSupport(g)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			if got := s.At(u, v); got != want {
				t.Fatalf("support(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
}

// Orientation selection must be invisible: strongly asymmetric graphs
// in both directions produce supports identical to the spec and to the
// parallel (non-reoriented) path.
func TestEdgeSupportOrientationInvisible(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][2]int{{40, 5}, {5, 40}, {20, 20}} {
		d := randDense(rng, dims[0], dims[1], 0.4)
		g := graphOf(t, d)
		got := EdgeSupport(g)
		if !sparse.ToDense(got).Equal(dense.SpecEdgeSupport(d)) {
			t.Fatalf("dims %v: support differs from spec", dims)
		}
		if !got.Equal(EdgeSupportParallel(g, 3)) {
			t.Fatalf("dims %v: oriented differs from parallel", dims)
		}
		// Flat-order alignment with Adj (wing peeling depends on it).
		adj := g.Adj()
		if got.NNZ() != adj.NNZ() {
			t.Fatalf("dims %v: nnz mismatch", dims)
		}
		for k := range got.Col {
			if got.Col[k] != adj.Col[k] {
				t.Fatalf("dims %v: pattern misaligned at %d", dims, k)
			}
		}
	}
}

func TestQuickEdgeSupportSpGEMMMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 12)
		got := EdgeSupportSpGEMM(g)
		if !sparse.ToDense(got).Equal(dense.SpecEdgeSupport(d)) {
			return false
		}
		// Flat alignment with the sweep implementation.
		return got.Equal(EdgeSupport(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeSupportSpGEMMMedium(t *testing.T) {
	g := gen.PowerLawBipartite(400, 300, 2500, 0.7, 0.7, 13)
	if !EdgeSupportSpGEMM(g).Equal(EdgeSupport(g)) {
		t.Fatal("SpGEMM support differs from sweep support")
	}
}

func TestVertexButterfliesMaskedParallelDirect(t *testing.T) {
	g := gen.PowerLawBipartite(300, 250, 1800, 0.7, 0.7, 17)
	active := make([]bool, g.NumV1())
	for i := range active {
		active[i] = i%3 != 0
	}
	want := VertexButterfliesMasked(g, SideV1, active)
	got := VertexButterfliesMaskedParallel(g, SideV1, active, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: %d, want %d", i, got[i], want[i])
		}
	}
	// threads ≤ 1 delegates.
	got = VertexButterfliesMaskedParallel(g, SideV1, active, 1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("delegation differs")
		}
	}
	// V2 side path.
	activeV2 := make([]bool, g.NumV2())
	for i := range activeV2 {
		activeV2[i] = true
	}
	wantV2 := VertexButterflies(g, SideV2)
	gotV2 := VertexButterfliesMaskedParallel(g, SideV2, activeV2, 3)
	for i := range wantV2 {
		if gotV2[i] != wantV2[i] {
			t.Fatal("V2 masked parallel differs from unmasked")
		}
	}
}

func TestVertexButterfliesMaskedParallelPanics(t *testing.T) {
	g := gen.CompleteBipartite(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	VertexButterfliesMaskedParallel(g, SideV1, make([]bool, 2), 4)
}

func TestCaterpillarsClosedForms(t *testing.T) {
	// K(2,2): 4 caterpillars; star: 0; path of 3 edges: 1.
	if got := Caterpillars(gen.CompleteBipartite(2, 2)); got != 4 {
		t.Fatalf("K22 caterpillars = %d", got)
	}
	if got := Caterpillars(gen.Star(7)); got != 0 {
		t.Fatalf("star caterpillars = %d", got)
	}
	b := graphBuilder3Path(t)
	if got := Caterpillars(b); got != 1 {
		t.Fatalf("P4 caterpillars = %d", got)
	}
}

// graphBuilder3Path builds u0–v0–u1–v1 (3 edges).
func graphBuilder3Path(t *testing.T) *graph.Bipartite {
	t.Helper()
	bl := graph.NewBuilder(2, 2)
	bl.AddEdge(0, 0)
	bl.AddEdge(1, 0)
	bl.AddEdge(1, 1)
	return bl.Build()
}
