package core

import (
	"butterfly/internal/bitvec"
	"butterfly/internal/sparse"
)

// This file implements the hybrid intersection kernel: the per-exposed-
// vertex butterfly contribution computed either with the classic sparse
// wedge accumulator or, for dense ("hub") vertices, with bitset
// operations — membership tests against a materialized partner set, and
// word-wise AND + popcount when both sides of an intersection have
// bitsets. Wang et al. 2019's vertex-priority counting motivates giving
// hub rows a different kernel than tail rows; the cost model below picks
// per vertex.
//
// Exactness: every path computes the same integer wedge multiplicities
// β_z = |N(k) ∩ N(z)| over the same restricted partner range, so totals
// are bit-identical to the sequential reference regardless of policy,
// threshold or thread count (asserted by TestHybridKernelExhaustive and
// the quick-check suite in kernel_test.go).

// HubPolicy selects how the hybrid kernel treats dense exposed vertices.
type HubPolicy int

const (
	// HubAuto (the default) picks per vertex from the cost model:
	// the bitset path is taken when the vertex's exact wedge work
	// exceeds the modeled bitset cost (build + candidate scan).
	HubAuto HubPolicy = iota
	// HubNever forces the sparse accumulator path everywhere —
	// equivalent to an infinite density threshold.
	HubNever
	// HubAlways forces the bitset path wherever a candidate range
	// exists — a zero threshold. Used by tests and benchmarks.
	HubAlways
)

// String names the policy.
func (p HubPolicy) String() string {
	switch p {
	case HubAuto:
		return "HubAuto"
	case HubNever:
		return "HubNever"
	case HubAlways:
		return "HubAlways"
	default:
		return "HubPolicy(?)"
	}
}

// hubPair is one (partner, wedge-count) export of a split hub segment.
type hubPair struct {
	z int32
	c int32
}

// kernShared is the read-only state one counting run shares between its
// workers: the oriented adjacency, the per-vertex work vector, the
// bitset-path decisions, and the pre-materialized hub bitsets.
type kernShared struct {
	exposed, secondary *sparse.CSR
	above              bool

	// agg is the resolved wedge-aggregation mode (never AggAuto; see
	// agg.go) used by contrib for vertices off the bitset path.
	agg AggPolicy

	// work[k] is the exact restricted wedge work of exposed vertex k
	// (nil when the policy is HubNever and no scheduler needs it).
	work []int64
	// useBits[k] reports whether k takes the bitset path (nil when no
	// vertex does).
	useBits []bool
	// hubBits[z] is the materialized neighbor bitset of dense exposed
	// vertices, used both as B_k for a bitset-path vertex and for
	// word-wise AND + popcount when such a vertex appears as a
	// candidate. nil when no vertex takes the bitset path.
	hubBits []*bitvec.Vector
	anyBits bool
}

// hubBitsDegThreshold returns the minimum degree at which an exposed
// vertex's neighbor set is materialized as a bitset: deg ≥ n/64 means
// the bitset (n/64 words) is no larger than the neighbor list itself,
// floored at 16 so tiny rows never materialize.
func hubBitsDegThreshold(nSec int) int {
	t := nSec / 64
	if t < 16 {
		t = 16
	}
	return t
}

// newKernShared analyses the oriented traversal once. work may be nil,
// in which case it is computed here when the policy needs it.
func newKernShared(exposed, secondary *sparse.CSR, above bool, pol HubPolicy, agg AggPolicy, work []int64) *kernShared {
	if agg == AggAuto {
		// Callers resolve the policy up front (ResolveAgg); default to
		// the classic path if one forgets.
		agg = AggHist
	}
	ks := &kernShared{exposed: exposed, secondary: secondary, above: above, agg: agg, work: work}
	nExp, nSec := exposed.R, secondary.R
	if pol == HubNever || nExp == 0 || nSec == 0 {
		return ks
	}
	if ks.work == nil {
		ks.work = workPerExposed(exposed, secondary, above)
	}

	// Prefix sums of the modeled per-candidate scan cost: a sparse
	// candidate costs its degree (row membership scan against B_k),
	// while a dense candidate — one whose bitset will be materialized —
	// costs only the word count of the AND + popcount.
	var scanCost []int64
	if pol == HubAuto {
		scanCost = make([]int64, nExp+1)
		wordCost := int64((nSec + 63) / 64)
		thresh := hubBitsDegThreshold(nSec)
		for z := 0; z < nExp; z++ {
			c := int64(exposed.RowDeg(z))
			if nSec >= 64 && c >= int64(thresh) && wordCost < c {
				c = wordCost
			}
			scanCost[z+1] = scanCost[z] + c
		}
	}

	useBits := make([]bool, nExp)
	for k := 0; k < nExp; k++ {
		lo, hi := 0, k
		if above {
			lo, hi = k+1, nExp
		}
		if hi <= lo {
			continue
		}
		if pol == HubAlways {
			useBits[k] = true
			ks.anyBits = true
			continue
		}
		// Modeled bitset cost: build + clear B_k (2·deg k), visit every
		// candidate in the restricted range, and scan each candidate
		// (degree or word count, whichever its kernel uses). The sparse
		// path's exact cost is work[k]; take bits when it loses.
		cand := int64(hi - lo)
		costB := 2*int64(exposed.RowDeg(k)) + cand + scanCost[hi] - scanCost[lo]
		if ks.work[k] > costB {
			useBits[k] = true
			ks.anyBits = true
		}
	}
	if !ks.anyBits {
		return ks
	}
	ks.useBits = useBits

	// Materialize neighbor bitsets of dense rows so candidate scans
	// against them become word-wise AND + popcount. Memory is bounded:
	// a bitset costs nSec/8 bytes and is only built for rows of degree
	// ≥ nSec/64, i.e. at most 8 bytes per stored edge in total.
	ks.hubBits = make([]*bitvec.Vector, nExp)
	if nSec >= 64 {
		thresh := hubBitsDegThreshold(nSec)
		for z := 0; z < nExp; z++ {
			if exposed.RowDeg(z) >= thresh {
				b := bitvec.New(nSec)
				for _, y := range exposed.Row(z) {
					b.Set(int(y))
				}
				ks.hubBits[z] = b
			}
		}
	}
	return ks
}

// bitsSplitFunc returns the candidate-range splitter handed to the
// scheduler: for a bitset-path hub the per-candidate contributions are
// additive, so the hub can be split by candidate range with no
// reduction. Returns nil when no vertex takes the bitset path.
func (ks *kernShared) bitsSplitFunc() func(k int) (int, int, bool) {
	if ks.useBits == nil {
		return nil
	}
	nExp := ks.exposed.R
	return func(k int) (int, int, bool) {
		if !ks.useBits[k] {
			return 0, 0, false
		}
		if ks.above {
			return k + 1, nExp, true
		}
		return 0, k, true
	}
}

// kern is one worker's view of a run: the shared state plus a private
// workspace checked out of an arena.
type kern struct {
	*kernShared
	ws *workspace
	a  *Arena
}

// worker checks a workspace out of a (nil allowed) and prepares it for
// this run.
func (ks *kernShared) worker(a *Arena) *kern {
	ws := a.get(ks.exposed.R)
	if ks.anyBits {
		ws.bitset(ks.secondary.R)
	}
	return &kern{kernShared: ks, ws: ws, a: a}
}

// release returns the workspace to the arena.
func (kn *kern) release() { kn.a.put(kn.ws) }

// contrib returns exposed vertex k's butterfly contribution
// Σ_z C(β_z, 2) over its restricted partner range, dispatching between
// the bitset path and the selected aggregation kernel (agg.go).
func (kn *kern) contrib(k int) int64 {
	if kn.useBits != nil && kn.useBits[k] {
		return kn.contribBits(k)
	}
	switch kn.agg {
	case AggSort:
		return kn.contribSort(k)
	case AggHash:
		return kn.contribHash(k)
	case AggBatch:
		return kn.contribBatch(k)
	default:
		return kn.contribSparse(k)
	}
}

// contribSparse is the classic restricted wedge-accumulator path.
func (kn *kern) contribSparse(k int) int64 {
	acc, touched := kn.ws.acc, kn.ws.touched
	k32 := int32(k)
	for _, y := range kn.exposed.Row(k) {
		prow := kn.secondary.Row(int(y))
		if kn.above {
			for _, z := range prow[searchInt32(prow, k32+1):] {
				if acc[z] == 0 {
					touched = append(touched, z)
				}
				acc[z]++
			}
		} else {
			for _, z := range prow {
				if z >= k32 {
					break
				}
				if acc[z] == 0 {
					touched = append(touched, z)
				}
				acc[z]++
			}
		}
	}
	t := flush(acc, &touched)
	kn.ws.touched = touched
	return t
}

// contribBits is the bitset path over k's full restricted range.
func (kn *kern) contribBits(k int) int64 {
	if kn.above {
		return kn.contribBitsRange(k, k+1, kn.exposed.R)
	}
	return kn.contribBitsRange(k, 0, k)
}

// contribBitsRange computes Σ_z C(β_z, 2) for candidates z ∈ [zlo, zhi)
// with bitset operations: β_z is a word-wise AND + popcount when z has a
// materialized bitset, otherwise a membership scan of z's row against
// B_k. Per-candidate contributions are additive, so candidate ranges of
// one hub can be processed by different workers with no reduction.
func (kn *kern) contribBitsRange(k, zlo, zhi int) int64 {
	bk := kn.hubBits[k]
	scratch := bk == nil
	if scratch {
		bk = kn.ws.bits
		for _, y := range kn.exposed.Row(k) {
			bk.Set(int(y))
		}
	}
	var total int64
	for z := zlo; z < zhi; z++ {
		var beta int64
		if hb := kn.hubBits[z]; hb != nil {
			beta = int64(bk.IntersectionCount(hb))
		} else {
			for _, y := range kn.exposed.Row(z) {
				if bk.Get(int(y)) {
					beta++
				}
			}
		}
		total += beta * (beta - 1) / 2
	}
	if scratch {
		for _, y := range kn.exposed.Row(k) {
			bk.Clear(int(y))
		}
	}
	return total
}

// segPairs runs the restricted sparse accumulation for neighbor-list
// segment [ylo, yhi) of hub k and exports the partial wedge counts.
// C(β, 2) is not additive across segments, so the counts must be merged
// by reducePairs before the butterfly formula is applied.
func (kn *kern) segPairs(k, ylo, yhi int) []hubPair {
	acc, touched := kn.ws.acc, kn.ws.touched
	k32 := int32(k)
	for _, y := range kn.exposed.Row(k)[ylo:yhi] {
		prow := kn.secondary.Row(int(y))
		if kn.above {
			for _, z := range prow[searchInt32(prow, k32+1):] {
				if acc[z] == 0 {
					touched = append(touched, z)
				}
				acc[z]++
			}
		} else {
			for _, z := range prow {
				if z >= k32 {
					break
				}
				if acc[z] == 0 {
					touched = append(touched, z)
				}
				acc[z]++
			}
		}
	}
	out := make([]hubPair, len(touched))
	for i, z := range touched {
		out[i] = hubPair{z: z, c: acc[z]}
		acc[z] = 0
	}
	kn.ws.touched = touched[:0]
	return out
}

// reducePairs merges the partial wedge counts of one split hub and
// applies Σ_z C(β_z, 2). Summing the integer partials reconstructs the
// exact multiset a single-worker accumulation would have produced.
func (kn *kern) reducePairs(segs [][]hubPair) int64 {
	acc, touched := kn.ws.acc, kn.ws.touched
	for _, seg := range segs {
		for _, p := range seg {
			if acc[p.z] == 0 {
				touched = append(touched, p.z)
			}
			acc[p.z] += p.c
		}
	}
	t := flush(acc, &touched)
	kn.ws.touched = touched
	return t
}
