package core

import (
	"context"
	"testing"
	"time"

	"butterfly/internal/graph"
)

func cancelTestGraph(tb testing.TB) *graph.Bipartite {
	tb.Helper()
	// Dense-ish random graph large enough that a full count comfortably
	// outlasts an already-cancelled context check, small enough for CI.
	b := graph.NewBuilder(600, 600)
	seed := uint64(0x9e3779b97f4a7c15)
	for u := 0; u < 600; u++ {
		for v := 0; v < 600; v++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			if seed>>33&0x7 == 0 { // p = 1/8
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func TestCountContextMatchesCountWith(t *testing.T) {
	g := cancelTestGraph(t)
	want := CountWith(g, Options{})
	for _, opts := range []Options{
		{},
		{Threads: 4},
		{BlockSize: 8},
		{Hub: HubAlways},
		{Hub: HubNever, Arena: NewArena()},
	} {
		got, err := CountContext(context.Background(), g, opts)
		if err != nil {
			t.Fatalf("CountContext(%+v): %v", opts, err)
		}
		if got != want {
			t.Fatalf("CountContext(%+v) = %d, want %d", opts, got, want)
		}
	}
}

func TestCountContextCancelled(t *testing.T) {
	g := cancelTestGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, opts := range []Options{{}, {Threads: 4}, {BlockSize: 8}} {
		if _, err := CountContext(ctx, g, opts); err != context.Canceled {
			t.Fatalf("CountContext(cancelled, %+v) err = %v, want context.Canceled", opts, err)
		}
	}
}

func TestCountContextDeadline(t *testing.T) {
	g := cancelTestGraph(t)
	// A deadline that expires mid-count: loop until the count is
	// actually interrupted (on a fast machine the first try may finish
	// before the timer fires — that run still validates the count).
	want := CountWith(g, Options{})
	for _, threads := range []int{1, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Microsecond)
		c, err := CountContext(ctx, g, Options{Threads: threads})
		cancel()
		if err == nil {
			if c != want {
				t.Fatalf("uncancelled run returned %d, want %d", c, want)
			}
			continue
		}
		if err != context.DeadlineExceeded {
			t.Fatalf("err = %v, want DeadlineExceeded", err)
		}
		if c != 0 {
			t.Fatalf("cancelled CountContext leaked partial count %d", c)
		}
	}
}
