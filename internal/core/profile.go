package core

import (
	"fmt"

	"butterfly/internal/graph"
)

// WorkPerVertex returns, for each exposed-side vertex of the
// invariant, the number of wedge steps its iteration performs (the
// inner-loop partner visits of update (18)). Σ of the vector is the
// invariant's total work. Cost: one pass over the secondary CSR, with
// no searches — in a sorted partner row the i-th entry has exactly i
// partners below it (see workPerExposed).
func WorkPerVertex(g *graph.Bipartite, inv Invariant) []int64 {
	_, above := inv.geometry()
	exposed, secondary := orient(g, inv)
	return workPerExposed(exposed, secondary, above)
}

// WorkBalance simulates the work-weighted parallel scheduler
// deterministically: the traversal is cut into work-weighted units —
// guided decreasing chunks plus neighbor-list segments of any hub above
// the spill budget (see buildSchedule) — and each unit goes to the
// currently least-loaded of `threads` workers, the steady-state
// behaviour of the dynamic unit cursor in countParallel. It returns
// the per-worker wedge-step totals; max/mean of the result is the
// load-imbalance factor, 1.0 being perfect.
//
// The simulation models the sparse schedule (no bitset-path candidate
// splitting), so Σ of the returned loads equals Σ WorkPerVertex
// exactly — the conservation law the tests pin down.
//
// The function exists because single-CPU CI environments cannot
// observe wall-clock speedup (see EXPERIMENTS.md, Fig 11): balance of
// the simulated schedule is the machine-independent part of the
// parallel claim.
func WorkBalance(g *graph.Bipartite, inv Invariant, threads int) []int64 {
	if threads < 1 {
		panic(fmt.Sprintf("core: WorkBalance threads = %d", threads))
	}
	desc, above := inv.geometry()
	exposed, secondary := orient(g, inv)
	work := workPerExposed(exposed, secondary, above)
	sched := buildSchedule(work, desc, threads, schedTuning{},
		restrictedSegWork(exposed, secondary, above),
		exposed.RowDeg, nil, nil)
	return sched.simulate(threads)
}

// ImbalanceFactor reduces a per-worker load vector to max/mean;
// returns 1 for empty or all-zero loads.
func ImbalanceFactor(loads []int64) float64 {
	if len(loads) == 0 {
		return 1
	}
	var sum, max int64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(loads))
	return float64(max) / mean
}
