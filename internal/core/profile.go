package core

import (
	"fmt"

	"butterfly/internal/graph"
	"butterfly/internal/sparse"
)

// WorkPerVertex returns, for each exposed-side vertex of the
// invariant, the number of wedge steps its iteration performs (the
// inner-loop partner visits of update (18)). Σ of the vector is the
// invariant's total work. Cost: one traversal without accumulation.
func WorkPerVertex(g *graph.Bipartite, inv Invariant) []int64 {
	_, above := inv.geometry()
	var exposed, secondary *sparse.CSR
	if inv.PartitionsV2() {
		exposed, secondary = g.AdjT(), g.Adj()
	} else {
		exposed, secondary = g.Adj(), g.AdjT()
	}
	nExp := exposed.R
	work := make([]int64, nExp)
	for k := 0; k < nExp; k++ {
		k32 := int32(k)
		var w int64
		for _, y := range exposed.Row(k) {
			prow := secondary.Row(int(y))
			if above {
				w += int64(len(prow) - searchInt32(prow, k32+1))
			} else {
				w += int64(searchInt32(prow, k32))
			}
		}
		work[k] = w
	}
	return work
}

// WorkBalance simulates the parallel scheduler deterministically: the
// traversal is split into chunks of parChunk exposed vertices and each
// chunk goes to the currently least-loaded of `threads` workers — the
// steady-state behaviour of the dynamic chunk cursor in countParallel.
// It returns the per-worker wedge-step totals. max/mean of the result
// is the load-imbalance factor; 1.0 is perfect.
//
// The function exists because single-CPU CI environments cannot
// observe wall-clock speedup (see EXPERIMENTS.md, Fig 11): balance of
// the simulated schedule is the machine-independent part of the
// parallel claim.
func WorkBalance(g *graph.Bipartite, inv Invariant, threads int) []int64 {
	if threads < 1 {
		panic(fmt.Sprintf("core: WorkBalance threads = %d", threads))
	}
	work := WorkPerVertex(g, inv)
	desc, _ := inv.geometry()
	loads := make([]int64, threads)
	for start := 0; start < len(work); start += parChunk {
		end := start + parChunk
		if end > len(work) {
			end = len(work)
		}
		var chunk int64
		for idx := start; idx < end; idx++ {
			k := idx
			if desc {
				k = len(work) - 1 - idx
			}
			chunk += work[k]
		}
		min := 0
		for t := 1; t < threads; t++ {
			if loads[t] < loads[min] {
				min = t
			}
		}
		loads[min] += chunk
	}
	return loads
}

// ImbalanceFactor reduces a per-worker load vector to max/mean;
// returns 1 for empty or all-zero loads.
func ImbalanceFactor(loads []int64) float64 {
	if len(loads) == 0 {
		return 1
	}
	var sum, max int64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(loads))
	return float64(max) / mean
}
