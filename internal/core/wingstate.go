package core

// WingPeelState: the compacted alive-adjacency structure behind the
// incremental wing-peeling engine's hot path.
//
// The stateless WingDeltaBatch sweeps the static CSR rows, so each
// dying edge pays O(deg u + Σ deg w) over *original* degrees even when
// almost everything is already peeled — late in a decomposition the
// rows are graveyards and the sweep is mostly skip-work. This structure
// removes the graveyards: every exposed row and every secondary
// (transpose) row is kept compacted to its still-present edges by
// O(1) swap-deletion, so a dying edge's sweep costs O(deg⁺ u + Σ deg⁺ w)
// over the *surviving* degrees. Total engine work then genuinely tracks
// the butterflies destroyed plus the surviving adjacency actually
// inspected, which is what makes the delta engine scale on deep
// peeling hierarchies.
//
// Compaction gives up sorted rows, so the sweep always resolves
// N(u) ∩ N(w) through the workspace position map (the hub path of the
// stateless kernel — here every row is treated as a hub, because the
// map lookups are what tolerate unsorted rows).
//
// Concurrency contract: rows are immutable during a round — workers of
// StateDeltaBatch only read them — and RemoveEdge is called by the
// engine between rounds, after the batch kernel returned.

import (
	"sync"
	"sync/atomic"

	"butterfly/internal/graph"
)

// WingPeelState holds both adjacency directions compacted to the edges
// that are still present (alive, or dying in the current round until
// RemoveEdge is called). Edge identities are flat indices into g.Adj(),
// as everywhere else in the peeling stack.
type WingPeelState struct {
	// Exposed rows: segment u is rcol/reid[rstart[u] : rstart[u]+rlen[u]].
	rstart []int64
	rlen   []int32
	rcol   []int32 // secondary endpoint of the edge
	reid   []int64 // flat edge id
	rpos   []int32 // edge id -> index within its row segment

	// Secondary (transpose) rows, same layout.
	tstart []int64
	tlen   []int32
	tcol   []int32 // exposed endpoint of the edge
	teid   []int64
	tpos   []int32

	edgeU []int32 // flat edge id -> exposed endpoint
	edgeV []int32 // flat edge id -> secondary endpoint

	nsec int // secondary side size (workspace accumulator width)
}

// NewWingPeelState builds the compacted structure with every edge
// present, in O(nnz).
func NewWingPeelState(g *graph.Bipartite) *WingPeelState {
	adj, adjT := g.Adj(), g.AdjT()
	nnz := int(adj.NNZ())
	s := &WingPeelState{
		rstart: adj.Ptr,
		rlen:   make([]int32, adj.R),
		rcol:   make([]int32, nnz),
		reid:   make([]int64, nnz),
		rpos:   make([]int32, nnz),
		tstart: adjT.Ptr,
		tlen:   make([]int32, adjT.R),
		tcol:   make([]int32, nnz),
		teid:   make([]int64, nnz),
		tpos:   make([]int32, nnz),
		edgeU:  make([]int32, nnz),
		edgeV:  make([]int32, nnz),
		nsec:   adj.C,
	}
	copy(s.rcol, adj.Col)
	for u := 0; u < adj.R; u++ {
		base := adj.Ptr[u]
		end := adj.Ptr[u+1]
		s.rlen[u] = int32(end - base)
		for k := base; k < end; k++ {
			s.reid[k] = k
			s.rpos[k] = int32(k - base)
			s.edgeU[k] = int32(u)
			s.edgeV[k] = adj.Col[k]
		}
	}
	copy(s.tcol, adjT.Col)
	tmap := TransposeEdgeMap(g)
	for v := 0; v < adjT.R; v++ {
		base := adjT.Ptr[v]
		end := adjT.Ptr[v+1]
		s.tlen[v] = int32(end - base)
		for j := base; j < end; j++ {
			e := tmap[j]
			s.teid[j] = e
			s.tpos[e] = int32(j - base)
		}
	}
	return s
}

// Present reports whether edge e is still in the structure (alive or
// dying in the current round). Mostly for tests.
func (s *WingPeelState) Present(e int64) bool {
	u := s.edgeU[e]
	i := s.rstart[u] + int64(s.rpos[e])
	return int64(s.rpos[e]) < int64(s.rlen[u]) && s.reid[i] == e
}

// RemoveEdge deletes edge e from both directions by swap-deletion in
// O(1). The engine calls it for every batch edge after the round's
// delta kernel returned; removing an edge twice is a bug.
func (s *WingPeelState) RemoveEdge(e int64) {
	u, v := s.edgeU[e], s.edgeV[e]
	// Exposed row.
	base := s.rstart[u]
	last := base + int64(s.rlen[u]) - 1
	i := base + int64(s.rpos[e])
	s.rcol[i] = s.rcol[last]
	s.reid[i] = s.reid[last]
	s.rpos[s.reid[i]] = int32(i - base)
	s.rlen[u]--
	// Transpose row.
	base = s.tstart[v]
	last = base + int64(s.tlen[v]) - 1
	i = base + int64(s.tpos[e])
	s.tcol[i] = s.tcol[last]
	s.teid[i] = s.teid[last]
	s.tpos[s.teid[i]] = int32(i - base)
	s.tlen[v]--
}

// row returns the compacted exposed row of u: parallel slices of
// secondary endpoints and edge ids.
func (s *WingPeelState) row(u int32) ([]int32, []int64) {
	b, l := s.rstart[u], int64(s.rlen[u])
	return s.rcol[b : b+l], s.reid[b : b+l]
}

// trow returns the compacted secondary row of v: parallel slices of
// exposed endpoints and edge ids.
func (s *WingPeelState) trow(v int32) ([]int32, []int64) {
	b, l := s.tstart[v], int64(s.tlen[v])
	return s.tcol[b : b+l], s.teid[b : b+l]
}

// WingStateDeltaBatch is WingDeltaBatch on the compacted structure:
// it decrements sup for every surviving edge that lost butterflies to
// the batch, using the same minimum-batch-id assignment rule, but its
// sweeps touch only present edges. The caller must have inBatch[e] =
// true for every batch edge (present in s, not yet removed) and clears
// it — and calls s.RemoveEdge — after the kernel returns. alive is the
// engine's liveness array (false for batch edges already), used only
// to guard decrements. First-touched edges are appended to *touched
// once via dirty, as in WingDeltaBatch.
func WingStateDeltaBatch(s *WingPeelState, batch []int64, alive, inBatch []bool, sup []int64, dirty []int32, touched *[]int64, threads int, a *Arena) {
	if len(batch) == 0 {
		return
	}
	if threads > len(batch) {
		threads = len(batch)
	}
	if threads <= 1 || len(batch) < minDeltaParallelBatch {
		ws := a.get(s.nsec)
		for _, e := range batch {
			wingStateEdge(s, e, inBatch, alive, sup, dirty, touched, nil, ws)
		}
		a.put(ws)
		return
	}

	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
	)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := a.get(s.nsec)
			defer a.put(ws)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(batch) {
					break
				}
				wingStateEdge(s, batch[i], inBatch, alive, sup, dirty, touched, &mu, ws)
			}
		}()
	}
	wg.Wait()
}

// wingStateEdge enumerates the butterflies assigned to dying edge e
// over the compacted rows. Every edge it sees is present — alive or in
// this round's batch — so the only filtering left is the assignment
// rule. mu == nil selects the sequential decrement path.
func wingStateEdge(s *WingPeelState, e int64, inBatch, alive []bool, sup []int64, dirty []int32, touched *[]int64, mu *sync.Mutex, ws *workspace) {
	u, v := s.edgeU[e], s.edgeV[e]
	ucols, ueids := s.row(u)
	acc := ws.acc
	for k, p := range ucols {
		acc[p] = int32(k) + 1
	}
	wcols, weids := s.trow(v)
	for wi, w := range wcols {
		if w == u {
			continue
		}
		ewv := weids[wi]
		if inBatch[ewv] && ewv < e {
			continue // assigned to a smaller-id batch edge
		}
		pcols, peids := s.row(w)
		for pi, p := range pcols {
			if p == v {
				continue
			}
			pu := acc[p]
			if pu == 0 {
				continue
			}
			eup := ueids[pu-1]
			ewp := peids[pi]
			if inBatch[eup] && eup < e {
				continue
			}
			if inBatch[ewp] && ewp < e {
				continue
			}
			if mu == nil {
				if alive[ewv] {
					wingDecSeq(ewv, sup, dirty, touched)
				}
				if alive[eup] {
					wingDecSeq(eup, sup, dirty, touched)
				}
				if alive[ewp] {
					wingDecSeq(ewp, sup, dirty, touched)
				}
			} else {
				if alive[ewv] {
					wingDecAtomic(ewv, sup, dirty, touched, mu)
				}
				if alive[eup] {
					wingDecAtomic(eup, sup, dirty, touched, mu)
				}
				if alive[ewp] {
					wingDecAtomic(ewp, sup, dirty, touched, mu)
				}
			}
		}
	}
	for _, p := range ucols {
		acc[p] = 0
	}
}
