package bench

import (
	"path/filepath"
	"strings"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/gen"
	"butterfly/internal/konect"
)

func TestLoadDatasetSynthetic(t *testing.T) {
	g, err := LoadDataset("arxiv-cond-mat", "", 50)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("scaled dataset has no edges")
	}
	if _, err := LoadDataset("unknown", "", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestLoadDatasetFromFile(t *testing.T) {
	dir := t.TempDir()
	src := gen.CompleteBipartite(3, 3)
	if err := konect.WriteFile(filepath.Join(dir, "mydata"), src); err != nil {
		t.Fatal(err)
	}
	g, err := LoadDataset("mydata", dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 9 {
		t.Fatalf("loaded %d edges, want 9", g.NumEdges())
	}
}

func TestTimeInvariantsAgree(t *testing.T) {
	g := gen.PowerLawBipartite(150, 120, 900, 0.7, 0.7, 5)
	for _, threads := range []int{1, 3} {
		cells := TimeInvariants(g, threads)
		if len(cells) != core.NumInvariants {
			t.Fatalf("%d cells", len(cells))
		}
		for _, c := range cells[1:] {
			if c.Count != cells[0].Count {
				t.Fatalf("count mismatch across invariants")
			}
		}
	}
}

func TestFig9SmallScale(t *testing.T) {
	rows, err := Fig9([]string{"arxiv-cond-mat", "record-labels"}, "", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.V1 == 0 || r.Edges == 0 || r.PaperCount == 0 {
			t.Fatalf("row %+v incomplete", r)
		}
	}
	var sb strings.Builder
	PrintFig9(&sb, rows)
	if !strings.Contains(sb.String(), "record-labels") {
		t.Fatal("printed table missing dataset")
	}
}

func TestTimingGridAndPrint(t *testing.T) {
	grid, err := TimingGrid([]string{"arxiv-cond-mat"}, "", 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Threads != 2 || len(grid.Rows) != 1 || len(grid.Rows[0].Cells) != 8 {
		t.Fatalf("grid shape wrong: %+v", grid)
	}
	var sb strings.Builder
	PrintTimingTable(&sb, grid)
	out := sb.String()
	for _, inv := range core.Invariants() {
		if !strings.Contains(out, inv.String()) {
			t.Fatalf("printed grid missing %v", inv)
		}
	}
}

func TestPartitionSweep(t *testing.T) {
	pts := PartitionSweep(600, 2000, []float64{0.2, 0.5, 0.8}, 3)
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	var sb strings.Builder
	PrintPartitionSweep(&sb, pts)
	if !strings.Contains(sb.String(), "winner") {
		t.Fatal("sweep print missing header")
	}
	// Degenerate ratios are skipped.
	if got := PartitionSweep(10, 20, []float64{0.01}, 1); len(got) != 0 {
		t.Fatal("degenerate ratio not skipped")
	}
}

func TestSparsitySweep(t *testing.T) {
	pts := SparsitySweep(200, 200, []int64{200, 1000, 5000}, 4)
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Edges >= pts[2].Edges {
		t.Fatal("edge counts not increasing")
	}
	var sb strings.Builder
	PrintSparsitySweep(&sb, pts)
	if sb.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestLookAheadAblation(t *testing.T) {
	rows, err := LookAheadAblation([]string{"producers"}, "", 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Dataset != "producers" {
		t.Fatalf("rows = %+v", rows)
	}
	var sb strings.Builder
	PrintLookAhead(&sb, rows)
	if !strings.Contains(sb.String(), "producers") {
		t.Fatal("print missing dataset")
	}
}

func TestBlockedAndOrderAblations(t *testing.T) {
	g := gen.PowerLawBipartite(200, 150, 1200, 0.7, 0.7, 6)
	blocked := BlockedAblation(g, []int{1, 64, 512})
	if len(blocked) != 3 || blocked[1].BlockSize != 64 {
		t.Fatalf("blocked = %+v", blocked)
	}
	var sb strings.Builder
	PrintBlocked(&sb, blocked)
	if !strings.Contains(sb.String(), "unblocked") {
		t.Fatal("blocked print missing unblocked label")
	}

	order := OrderAblation(g)
	if len(order) != 3 {
		t.Fatalf("order = %+v", order)
	}
	sb.Reset()
	PrintOrder(&sb, order)
	if !strings.Contains(sb.String(), "degree-asc") {
		t.Fatal("order print missing label")
	}
}

func TestBaselineComparison(t *testing.T) {
	g := gen.PowerLawBipartite(120, 100, 700, 0.7, 0.7, 7)
	pts := BaselineComparison(g)
	if len(pts) != 6 {
		t.Fatalf("%d baselines", len(pts))
	}
	for _, p := range pts[1:] {
		if p.Count != pts[0].Count {
			t.Fatalf("%s disagrees: %d vs %d", p.Name, p.Count, pts[0].Count)
		}
	}
	var sb strings.Builder
	PrintBaselines(&sb, pts)
	if !strings.Contains(sb.String(), "vertex-priority") {
		t.Fatal("baseline print incomplete")
	}
}

func TestBalanceTable(t *testing.T) {
	rows, err := BalanceTable([]string{"arxiv-cond-mat", "github"}, "", 50, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Threads != 6 || len(r.PerWorker) != 6 {
			t.Fatalf("row %+v has wrong worker count", r)
		}
		if r.Imbalance < 1.0 {
			t.Fatalf("impossible imbalance %.3f", r.Imbalance)
		}
	}
	var sb strings.Builder
	PrintBalance(&sb, rows)
	if !strings.Contains(sb.String(), "max/mean") {
		t.Fatal("balance print missing header")
	}
	if _, err := BalanceTable([]string{"nope"}, "", 1, 2); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestDynamicThroughput(t *testing.T) {
	g := gen.PowerLawBipartite(300, 250, 1500, 0.7, 0.7, 8)
	p := DynamicThroughput(g, 500, 9)
	if p.Updates != 500 || p.PerSecond <= 0 {
		t.Fatalf("point = %+v", p)
	}
	var sb strings.Builder
	PrintDynamic(&sb, p)
	if !strings.Contains(sb.String(), "updates/s") {
		t.Fatal("dynamic print missing header")
	}
}

func TestPeelingComparison(t *testing.T) {
	g := gen.PowerLawBipartite(200, 150, 1000, 0.7, 0.7, 10)
	pts := PeelingComparison(g, 1, 2)
	if len(pts) != 6 {
		t.Fatalf("%d variants", len(pts))
	}
	var sb strings.Builder
	PrintPeeling(&sb, pts)
	if !strings.Contains(sb.String(), "ktip-lookahead") {
		t.Fatal("peeling print incomplete")
	}
}

func TestDistTable(t *testing.T) {
	rows, err := DistTable([]string{"record-labels"}, "", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].MaxDegV2 <= 0 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].GiniV2 <= 0 || rows[0].GiniV2 >= 1 {
		t.Fatalf("Gini out of range: %+v", rows[0])
	}
	var sb strings.Builder
	PrintDist(&sb, rows)
	if !strings.Contains(sb.String(), "Gini") {
		t.Fatal("dist print incomplete")
	}
	if _, err := DistTable([]string{"nope"}, "", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestEstimatorComparison(t *testing.T) {
	g := gen.PowerLawBipartite(300, 250, 2000, 0.7, 0.7, 14)
	pts := EstimatorComparison(g, 500, 0.5, 15)
	if len(pts) != 4 {
		t.Fatalf("%d estimators", len(pts))
	}
	if pts[0].RelErr != 0 {
		t.Fatalf("reference rel err %.3f", pts[0].RelErr)
	}
	var sb strings.Builder
	PrintEstimators(&sb, pts)
	if !strings.Contains(sb.String(), "sparsify") {
		t.Fatal("estimator print incomplete")
	}
}

func TestCSVWriters(t *testing.T) {
	grid, err := TimingGrid([]string{"arxiv-cond-mat"}, "", 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTimingCSV(&sb, grid); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "dataset,Inv1,") {
		t.Fatalf("header: %q", lines[0])
	}
	if len(strings.Split(lines[1], ",")) != 9 {
		t.Fatalf("row fields: %q", lines[1])
	}

	rows, err := Fig9([]string{"arxiv-cond-mat"}, "", 200)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteFig9CSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "butterflies_paper") {
		t.Fatalf("fig9 CSV: %q", sb.String())
	}
}

func TestSignificanceTable(t *testing.T) {
	rows, err := SignificanceTable([]string{"arxiv-cond-mat"}, "", 100, 3, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Observed <= 0 {
		t.Fatalf("rows = %+v", rows)
	}
	var sb strings.Builder
	PrintSignificance(&sb, rows)
	if !strings.Contains(sb.String(), "z-score") {
		t.Fatal("significance print incomplete")
	}
	if _, err := SignificanceTable([]string{"nope"}, "", 1, 2, 2, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestTimingGridRepeat(t *testing.T) {
	grid, err := TimingGridRepeat([]string{"arxiv-cond-mat"}, "", 300, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Rows[0].Cells) != 8 {
		t.Fatal("grid shape wrong")
	}
	// repeat < 1 clamps.
	cells := TimeInvariantsBest(gen.CompleteBipartite(4, 4), 1, 0)
	if len(cells) != 8 || cells[0].Count != 36 {
		t.Fatal("clamped repeat wrong")
	}
}
