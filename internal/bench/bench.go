// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section V): Fig 9 (dataset
// statistics), Fig 10 (sequential runtimes of invariants 1–8), Fig 11
// (6-thread parallel runtimes), plus the ablation sweeps behind the
// section's three qualitative claims (partition-side selection, edge
// sparsity, look-ahead) and this implementation's own ablations
// (blocked variants, degree ordering, baseline comparison).
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/gen"
	"butterfly/internal/graph"
	"butterfly/internal/konect"
)

// LoadDataset returns the named paper dataset. If dataDir contains a
// real KONECT download at <dataDir>/<name>/out.<name> (or a flat
// <dataDir>/<name>), it is used; otherwise the seeded synthetic
// stand-in is generated (scaled down by `scale` ≥ 1).
func LoadDataset(name, dataDir string, scale int) (*graph.Bipartite, error) {
	if dataDir != "" {
		for _, p := range []string{
			filepath.Join(dataDir, name, "out."+name),
			filepath.Join(dataDir, name),
		} {
			if st, err := os.Stat(p); err == nil && !st.IsDir() {
				return konect.ReadFile(p)
			}
		}
	}
	if scale <= 1 {
		return gen.PaperDataset(name)
	}
	return gen.ScaledPaperDataset(name, scale)
}

// TimeIt runs fn once and returns its duration and result.
func TimeIt(fn func() int64) (time.Duration, int64) {
	start := time.Now()
	v := fn()
	return time.Since(start), v
}

// InvariantTiming is one cell of Fig 10/11.
type InvariantTiming struct {
	Invariant core.Invariant
	Seconds   float64
	Count     int64
}

// TimeInvariants measures all eight invariants on g with the given
// thread count (1 = sequential, matching Fig 10; 6 matches Fig 11).
// All counts are verified equal; a mismatch panics, because a harness
// that times wrong answers is worse than no harness.
func TimeInvariants(g *graph.Bipartite, threads int) []InvariantTiming {
	return TimeInvariantsBest(g, threads, 1)
}

// TimeInvariantsBest is TimeInvariants reporting the minimum over
// `repeat` runs per cell — the usual defense against scheduler noise
// in small-cell grids.
func TimeInvariantsBest(g *graph.Bipartite, threads, repeat int) []InvariantTiming {
	if repeat < 1 {
		repeat = 1
	}
	out := make([]InvariantTiming, 0, core.NumInvariants)
	var want int64
	for i, inv := range core.Invariants() {
		best := -1.0
		var c int64
		for r := 0; r < repeat; r++ {
			d, got := TimeIt(func() int64 {
				return core.CountWith(g, core.Options{Invariant: inv, Threads: threads})
			})
			c = got
			if best < 0 || d.Seconds() < best {
				best = d.Seconds()
			}
		}
		if i == 0 {
			want = c
		} else if c != want {
			panic(fmt.Sprintf("bench: %v counted %d, %v counted %d", core.Invariants()[0], want, inv, c))
		}
		out = append(out, InvariantTiming{Invariant: inv, Seconds: best, Count: c})
	}
	return out
}

// DatasetRow is one row of the Fig 9 table.
type DatasetRow struct {
	Name        string
	V1, V2      int
	Edges       int64
	Butterflies int64
	PaperCount  int64 // KONECT's count, for the paper-vs-measured column
	Seconds     float64
}

// Fig9 computes the dataset-statistics table over the named datasets.
func Fig9(names []string, dataDir string, scale int) ([]DatasetRow, error) {
	rows := make([]DatasetRow, 0, len(names))
	for _, name := range names {
		g, err := LoadDataset(name, dataDir, scale)
		if err != nil {
			return nil, err
		}
		spec, err := gen.PaperDatasetSpec(name)
		if err != nil {
			return nil, err
		}
		d, c := TimeIt(func() int64 { return core.CountAuto(g) })
		rows = append(rows, DatasetRow{
			Name: name, V1: g.NumV1(), V2: g.NumV2(), Edges: g.NumEdges(),
			Butterflies: c, PaperCount: spec.PaperButterflies, Seconds: d.Seconds(),
		})
	}
	return rows, nil
}

// TimingTable is the Fig 10/11 grid: one row per dataset, one column
// per invariant.
type TimingTable struct {
	Threads int
	Rows    []TimingRow
}

// TimingRow is one dataset's timings.
type TimingRow struct {
	Dataset string
	Cells   []InvariantTiming
}

// TimingGrid measures invariants 1–8 across the named datasets with
// the given thread count.
func TimingGrid(names []string, dataDir string, scale, threads int) (*TimingTable, error) {
	return TimingGridRepeat(names, dataDir, scale, threads, 1)
}

// TimingGridRepeat is TimingGrid with min-of-`repeat` timing per cell.
func TimingGridRepeat(names []string, dataDir string, scale, threads, repeat int) (*TimingTable, error) {
	t := &TimingTable{Threads: threads}
	for _, name := range names {
		g, err := LoadDataset(name, dataDir, scale)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, TimingRow{Dataset: name, Cells: TimeInvariantsBest(g, threads, repeat)})
	}
	return t, nil
}
