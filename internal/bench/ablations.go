package bench

import (
	"fmt"
	"math"
	"math/rand"

	"butterfly/internal/baseline"
	"butterfly/internal/core"
	"butterfly/internal/dynamic"
	"butterfly/internal/gen"
	"butterfly/internal/graph"
	"butterfly/internal/peel"
)

// PartitionPoint is one sample of the partition-side sweep (claim C1):
// the same graph is counted with both families as the |V1|:|V2| ratio
// varies; the winning family should flip when the smaller side flips.
type PartitionPoint struct {
	V1, V2      int
	Edges       int64
	SecFamily14 float64 // best sequential time among invariants 1–4
	SecFamily58 float64 // best sequential time among invariants 5–8
}

// PartitionSweep generates graphs with a fixed vertex budget and edge
// count but varying side ratios, timing both families on each.
func PartitionSweep(vertexBudget int, edges int64, ratios []float64, seed int64) []PartitionPoint {
	out := make([]PartitionPoint, 0, len(ratios))
	for i, r := range ratios {
		m := int(float64(vertexBudget) * r)
		n := vertexBudget - m
		if m < 2 || n < 2 {
			continue
		}
		e := edges
		if limit := int64(m) * int64(n); e > limit {
			e = limit
		}
		g := gen.PowerLawBipartite(m, n, e, 0.7, 0.7, seed+int64(i))
		p := PartitionPoint{V1: m, V2: n, Edges: g.NumEdges()}
		p.SecFamily14 = bestTime(g, []core.Invariant{core.Inv1, core.Inv2, core.Inv3, core.Inv4})
		p.SecFamily58 = bestTime(g, []core.Invariant{core.Inv5, core.Inv6, core.Inv7, core.Inv8})
		out = append(out, p)
	}
	return out
}

func bestTime(g *graph.Bipartite, invs []core.Invariant) float64 {
	best := -1.0
	for _, inv := range invs {
		d, _ := TimeIt(func() int64 { return core.Count(g, inv) })
		if best < 0 || d.Seconds() < best {
			best = d.Seconds()
		}
	}
	return best
}

// SparsityPoint is one sample of the edge-sparsity sweep (claim C2):
// same vertex sets, growing edge counts.
type SparsityPoint struct {
	Edges   int64
	Density float64
	Seconds float64 // auto-selected invariant, sequential
	Count   int64
}

// SparsitySweep fixes |V1| and |V2| and sweeps the edge count,
// reproducing the GitHub-vs-Producers comparison in controlled form.
func SparsitySweep(m, n int, edgeCounts []int64, seed int64) []SparsityPoint {
	out := make([]SparsityPoint, 0, len(edgeCounts))
	for i, e := range edgeCounts {
		if limit := int64(m) * int64(n); e > limit {
			e = limit
		}
		g := gen.PowerLawBipartite(m, n, e, 0.7, 0.7, seed+int64(i))
		d, c := TimeIt(func() int64 { return core.CountAuto(g) })
		out = append(out, SparsityPoint{
			Edges: g.NumEdges(), Density: g.Density(), Seconds: d.Seconds(), Count: c,
		})
	}
	return out
}

// LookAheadRow compares the eager and look-ahead members of each
// family on one dataset (claim C3).
type LookAheadRow struct {
	Dataset                string
	EagerCols, AheadCols   float64 // Inv1 vs Inv2
	EagerRows, AheadRows   float64 // Inv8 vs Inv7
	ColsSpeedup, RowsSpeed float64
}

// LookAheadAblation times eager-vs-look-ahead pairs per dataset.
func LookAheadAblation(names []string, dataDir string, scale int) ([]LookAheadRow, error) {
	rows := make([]LookAheadRow, 0, len(names))
	for _, name := range names {
		g, err := LoadDataset(name, dataDir, scale)
		if err != nil {
			return nil, err
		}
		r := LookAheadRow{Dataset: name}
		d, _ := TimeIt(func() int64 { return core.Count(g, core.Inv1) })
		r.EagerCols = d.Seconds()
		d, _ = TimeIt(func() int64 { return core.Count(g, core.Inv2) })
		r.AheadCols = d.Seconds()
		d, _ = TimeIt(func() int64 { return core.Count(g, core.Inv8) })
		r.EagerRows = d.Seconds()
		d, _ = TimeIt(func() int64 { return core.Count(g, core.Inv7) })
		r.AheadRows = d.Seconds()
		if r.AheadCols > 0 {
			r.ColsSpeedup = r.EagerCols / r.AheadCols
		}
		if r.AheadRows > 0 {
			r.RowsSpeed = r.EagerRows / r.AheadRows
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// BlockedPoint is one sample of the blocked-variant ablation.
type BlockedPoint struct {
	BlockSize int // 1 = unblocked
	Seconds   float64
}

// BlockedAblation sweeps block sizes on one dataset with the
// auto-selected invariant.
func BlockedAblation(g *graph.Bipartite, blockSizes []int) []BlockedPoint {
	inv := core.AutoInvariant(g)
	out := make([]BlockedPoint, 0, len(blockSizes))
	for _, b := range blockSizes {
		d, _ := TimeIt(func() int64 {
			return core.CountWith(g, core.Options{Invariant: inv, BlockSize: b})
		})
		out = append(out, BlockedPoint{BlockSize: b, Seconds: d.Seconds()})
	}
	return out
}

// OrderPoint is one sample of the degree-ordering ablation (the
// paper's future-work optimization).
type OrderPoint struct {
	Order   graph.Order
	Seconds float64
}

// OrderAblation compares vertex orderings on one dataset. Relabeling
// time is excluded — the claim concerns counting-loop locality.
func OrderAblation(g *graph.Bipartite) []OrderPoint {
	inv := core.AutoInvariant(g)
	out := make([]OrderPoint, 0, 3)
	for _, o := range []graph.Order{graph.OrderNatural, graph.OrderDegreeAsc, graph.OrderDegreeDesc} {
		h, _, _ := g.Relabel(o)
		d, _ := TimeIt(func() int64 { return core.Count(h, inv) })
		out = append(out, OrderPoint{Order: o, Seconds: d.Seconds()})
	}
	return out
}

// BaselinePoint compares a baseline counter against the family's best.
type BaselinePoint struct {
	Name    string
	Seconds float64
	Count   int64
}

// BaselineComparison times the family (auto), the wedge-hash counter,
// the vertex-priority counter, and the sparse-algebra counter on g.
func BaselineComparison(g *graph.Bipartite) []BaselinePoint {
	out := make([]BaselinePoint, 0, 4)
	d, c := TimeIt(func() int64 { return core.CountAuto(g) })
	out = append(out, BaselinePoint{Name: "family-auto", Seconds: d.Seconds(), Count: c})
	d, c = TimeIt(func() int64 { return baseline.CountWedgeHash(g) })
	out = append(out, BaselinePoint{Name: "wedge-hash", Seconds: d.Seconds(), Count: c})
	d, c = TimeIt(func() int64 { return baseline.CountVertexPriority(g) })
	out = append(out, BaselinePoint{Name: "vertex-priority", Seconds: d.Seconds(), Count: c})
	d, c = TimeIt(func() int64 { return baseline.CountSortAggregate(g, 1) })
	out = append(out, BaselinePoint{Name: "sort-aggregate", Seconds: d.Seconds(), Count: c})
	d, c = TimeIt(func() int64 { return core.CountSpGEMM(g) })
	out = append(out, BaselinePoint{Name: "spgemm", Seconds: d.Seconds(), Count: c})
	d, c = TimeIt(func() int64 { return core.CountBlockedAlgebraic(g, 256) })
	out = append(out, BaselinePoint{Name: "panel-algebra(256)", Seconds: d.Seconds(), Count: c})
	return out
}

// DynamicPoint reports incremental-maintenance throughput.
type DynamicPoint struct {
	Name      string
	Updates   int
	Seconds   float64
	PerSecond float64
}

// DynamicThroughput seeds a dynamic counter with g and applies
// `updates` alternating random insertions and deletions, reporting the
// sustained update rate. The final count is audited against a static
// recount; a mismatch panics.
func DynamicThroughput(g *graph.Bipartite, updates int, seed int64) DynamicPoint {
	c := dynamic.FromGraph(g)
	rng := rand.New(rand.NewSource(seed))
	m, n := g.NumV1(), g.NumV2()
	d, _ := TimeIt(func() int64 {
		for i := 0; i < updates; i++ {
			u, v := rng.Intn(m), rng.Intn(n)
			if i%2 == 0 {
				c.InsertEdge(u, v)
			} else {
				c.DeleteEdge(u, v)
			}
		}
		return c.Count()
	})
	if c.Count() != core.CountAuto(c.Snapshot()) {
		panic("bench: dynamic counter diverged from static recount")
	}
	return DynamicPoint{
		Name: "insert/delete mix", Updates: updates,
		Seconds: d.Seconds(), PerSecond: float64(updates) / d.Seconds(),
	}
}

// BalanceRow reports the simulated parallel work balance for one
// dataset (the machine-independent half of the Fig 11 claim; see
// EXPERIMENTS.md).
type BalanceRow struct {
	Dataset   string
	Invariant core.Invariant
	Threads   int
	Imbalance float64 // max/mean worker load; 1.0 = perfect
	PerWorker []int64
}

// BalanceTable simulates the parallel schedule of the auto-selected
// invariant on each dataset and reports per-worker wedge-step loads.
func BalanceTable(names []string, dataDir string, scale, threads int) ([]BalanceRow, error) {
	rows := make([]BalanceRow, 0, len(names))
	for _, name := range names {
		g, err := LoadDataset(name, dataDir, scale)
		if err != nil {
			return nil, err
		}
		inv := core.AutoInvariant(g)
		loads := core.WorkBalance(g, inv, threads)
		rows = append(rows, BalanceRow{
			Dataset: name, Invariant: inv, Threads: threads,
			Imbalance: core.ImbalanceFactor(loads), PerWorker: loads,
		})
	}
	return rows, nil
}

// PeelingPoint compares sequential and round-synchronous peeling.
type PeelingPoint struct {
	Name    string
	Seconds float64
}

// PeelingComparison times tip/wing extraction variants on g at
// threshold k with the given worker count for the round variants.
func PeelingComparison(g *graph.Bipartite, k int64, threads int) []PeelingPoint {
	out := make([]PeelingPoint, 0, 6)
	add := func(name string, fn func()) {
		d, _ := TimeIt(func() int64 { fn(); return 0 })
		out = append(out, PeelingPoint{Name: name, Seconds: d.Seconds()})
	}
	add("ktip-iterative", func() { peel.KTipSubgraph(g, k, core.SideV1) })
	add("ktip-lookahead", func() { peel.KTipLookAhead(g, k, core.SideV1) })
	add("ktip-parallel", func() { peel.KTipParallel(g, k, core.SideV1, threads) })
	add("tip-numbers-heap", func() { peel.TipDecomposition(g, core.SideV1) })
	add("tip-numbers-rounds", func() { peel.TipDecompositionRounds(g, core.SideV1, threads) })
	add("kwing-iterative", func() { peel.KWingSubgraph(g, k) })
	return out
}

// DistRow characterizes one dataset's degree structure — the inputs
// that drive every performance effect in the evaluation.
type DistRow struct {
	Dataset            string
	MaxDegV1, MaxDegV2 int
	GiniV1, GiniV2     float64
	WedgesV1, WedgesV2 int64
}

// DistTable computes the characterization for the named datasets.
func DistTable(names []string, dataDir string, scale int) ([]DistRow, error) {
	rows := make([]DistRow, 0, len(names))
	for _, name := range names {
		g, err := LoadDataset(name, dataDir, scale)
		if err != nil {
			return nil, err
		}
		s := graph.ComputeStats(g)
		rows = append(rows, DistRow{
			Dataset:  name,
			MaxDegV1: s.MaxDegV1, MaxDegV2: s.MaxDegV2,
			GiniV1: graph.DegreeGini(g, true), GiniV2: graph.DegreeGini(g, false),
			WedgesV1: s.WedgesV1, WedgesV2: s.WedgesV2,
		})
	}
	return rows, nil
}

// EstimatorPoint is one sample of the estimator accuracy/time sweep.
type EstimatorPoint struct {
	Name     string
	Seconds  float64
	Estimate float64
	RelErr   float64
}

// EstimatorComparison measures each approximate counter against the
// exact count on g, at the given sampling budgets.
func EstimatorComparison(g *graph.Bipartite, samples int, sparsifyP float64, seed int64) []EstimatorPoint {
	exact := core.CountAuto(g)
	out := make([]EstimatorPoint, 0, 4)
	add := func(name string, fn func() float64) {
		var est float64
		d, _ := TimeIt(func() int64 { est = fn(); return 0 })
		out = append(out, EstimatorPoint{
			Name: name, Seconds: d.Seconds(), Estimate: est,
			RelErr: baseline.RelativeError(est, exact),
		})
	}
	add("exact (reference)", func() float64 { return float64(core.CountAuto(g)) })
	add(fmt.Sprintf("vertex-sampling (%d)", samples), func() float64 {
		return baseline.EstimateVertexSampling(g, samples, seed)
	})
	add(fmt.Sprintf("edge-sampling (%d)", samples), func() float64 {
		return baseline.EstimateEdgeSampling(g, samples, seed)
	})
	add(fmt.Sprintf("sparsify (p=%.2f)", sparsifyP), func() float64 {
		return baseline.EstimateSparsify(g, sparsifyP, seed)
	})
	return out
}

// SignificanceRow reports a dataset's butterfly count against its
// degree-preserving null model.
type SignificanceRow struct {
	Dataset  string
	Observed int64
	NullMean float64
	NullStd  float64
	ZScore   float64
}

// SignificanceTable draws `samples` rewired null graphs per dataset
// (swapsPerEdge·|E| swaps each) and reports z-scores.
func SignificanceTable(names []string, dataDir string, scale, samples, swapsPerEdge int, seed int64) ([]SignificanceRow, error) {
	rows := make([]SignificanceRow, 0, len(names))
	for _, name := range names {
		g, err := LoadDataset(name, dataDir, scale)
		if err != nil {
			return nil, err
		}
		observed := core.CountAuto(g)
		swaps := int(g.NumEdges()) * swapsPerEdge
		var sum, sumSq float64
		for i := 0; i < samples; i++ {
			c := float64(core.CountAuto(gen.Rewire(g, swaps, seed+int64(i)*104729)))
			sum += c
			sumSq += c * c
		}
		mean := sum / float64(samples)
		variance := (sumSq - sum*mean) / float64(samples-1)
		if variance < 0 {
			variance = 0
		}
		std := math.Sqrt(variance)
		z := 0.0
		if std > 0 {
			z = (float64(observed) - mean) / std
		}
		rows = append(rows, SignificanceRow{
			Dataset: name, Observed: observed, NullMean: mean, NullStd: std, ZScore: z,
		})
	}
	return rows, nil
}
