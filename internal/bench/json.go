package bench

// Machine-readable benchmark output: the -json flag of cmd/bfbench
// writes a JSONReport so successive PRs can diff performance without
// parsing text tables. BENCH_PR1.json at the repo root is the first
// committed snapshot.

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/estimate"
	"butterfly/internal/graph"
	"butterfly/internal/peel"
)

// JSONResult is one measured cell: a (dataset, algorithm, invariant,
// threads) combination with its best-of-repeat wall time and the
// allocation count of the measured run. Counting rows put the butterfly
// count in Count; peeling rows (schema v2, algorithm "peel-tip/…" or
// "peel-wing/…") put the decomposition checksum (Σ tip/wing numbers)
// there, which must agree across engines, and name the engine in
// Invariant.
//
// Schema v3 "family/agg" rows additionally carry the wedge-aggregation
// mode that was requested (Agg), the concrete mode that actually ran
// (AggUsed — differs from Agg only on the "auto" row), and the degree
// profile of the exposed side that the AggAuto chooser read, so a BENCH
// snapshot is self-explaining: one can see from the row alone why the
// policy picked the mode it did.
type JSONResult struct {
	Dataset   string `json:"dataset"`
	Algorithm string `json:"algorithm"`
	Invariant string `json:"invariant"`
	Threads   int    `json:"threads"`
	NsPerOp   int64  `json:"ns_per_op"`
	Allocs    int64  `json:"allocs"`
	Count     int64  `json:"count"`

	// family/agg rows only (schema v3).
	Agg     string  `json:"agg,omitempty"`
	AggUsed string  `json:"agg_used,omitempty"`
	MaxDeg  int     `json:"max_deg,omitempty"`
	MeanDeg float64 `json:"mean_deg,omitempty"`
	V2Width int     `json:"v2_width,omitempty"`
	Skew    float64 `json:"skew,omitempty"`

	// estimate rows only (schema v4). Count holds the exact count the
	// estimate is judged against; RelErr = |Estimate−Count|/Count and
	// Speedup = exact auto-invariant ns/op ÷ this row's ns/op, so the
	// accuracy/throughput trade sits in the row itself.
	Estimate float64 `json:"estimate,omitempty"`
	StdErr   float64 `json:"stderr,omitempty"`
	CI95     float64 `json:"ci95,omitempty"`
	Samples  int     `json:"samples,omitempty"`
	RelErr   float64 `json:"rel_err,omitempty"`
	Speedup  float64 `json:"speedup_vs_exact,omitempty"`
}

// JSONReport is the top-level -json document.
type JSONReport struct {
	Schema  string       `json:"schema"`
	Go      string       `json:"go"`
	Scale   int          `json:"scale"`
	Repeat  int          `json:"repeat"`
	Results []JSONResult `json:"results"`
}

// measureJSON times fn best-of-repeat and reports the allocation count
// observed during the fastest run.
func measureJSON(repeat int, fn func() int64) (nsPerOp, allocs, count int64) {
	if repeat < 1 {
		repeat = 1
	}
	var ms1, ms2 runtime.MemStats
	best := int64(-1)
	for r := 0; r < repeat; r++ {
		runtime.ReadMemStats(&ms1)
		t0 := time.Now()
		count = fn()
		ns := time.Since(t0).Nanoseconds()
		runtime.ReadMemStats(&ms2)
		if best < 0 || ns < best {
			best = ns
			allocs = int64(ms2.Mallocs - ms1.Mallocs)
		}
	}
	return best, allocs, count
}

// JSONBench measures every invariant sequentially plus the auto
// invariant at each requested thread count, for every named dataset.
// The "family/arena" row re-runs the sequential auto count through a
// warm core.Arena, making the allocation win visible in the snapshot.
// Schema v2 adds peeling rows: the tip and wing decompositions on the
// delta and recount engines at every requested thread count. Schema v3
// adds "family/agg" rows: the sequential auto-invariant count under
// every wedge-aggregation mode (auto plus the four fixed kernels),
// annotated with the degree profile so the auto row's choice can be
// audited from the snapshot alone. Schema v4 adds "estimate/…" rows:
// the vertex- and edge-sampling estimators at a fixed budget and under
// the adaptive stopping rule, each carrying accuracy (estimate, error
// bars, relative error vs. exact) alongside throughput.
func JSONBench(names []string, dataDir string, scale int, threadsList []int, repeat int) (*JSONReport, error) {
	rep := &JSONReport{
		Schema: "bfbench/v4",
		Go:     runtime.Version(),
		Scale:  scale,
		Repeat: repeat,
	}
	for _, name := range names {
		g, err := LoadDataset(name, dataDir, scale)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, jsonDatasetRows(name, g, threadsList, repeat)...)
		rep.Results = append(rep.Results, jsonAggRows(name, g, repeat)...)
		rep.Results = append(rep.Results, jsonEstimateRows(name, g, repeat)...)
		rep.Results = append(rep.Results, jsonPeelRows(name, g, threadsList, repeat)...)
	}
	return rep, nil
}

// jsonAggRows measures the sequential auto-invariant count under every
// wedge-aggregation mode. All five rows must report the same Count — CI
// asserts this on every snapshot — and the auto row's AggUsed names the
// fixed mode the policy resolved to for this graph's degree profile.
func jsonAggRows(name string, g *graph.Bipartite, repeat int) []JSONResult {
	auto := core.AutoInvariant(g)
	prof := g.Profile()
	// The profile of the exposed side: the id space the aggregation
	// kernels index, which is what the AggAuto decision table reads.
	_, maxDeg, meanDeg, skew := prof.Side(!auto.PartitionsV2())
	var rows []JSONResult
	for _, agg := range []core.AggPolicy{core.AggAuto, core.AggSort, core.AggHash, core.AggHist, core.AggBatch} {
		opts := core.Options{Invariant: auto, Agg: agg}
		used := core.ResolveAgg(g, opts)
		ns, allocs, count := measureJSON(repeat, func() int64 {
			return core.CountWith(g, opts)
		})
		rows = append(rows, JSONResult{
			Dataset: name, Algorithm: "family/agg", Invariant: auto.String(),
			Threads: 1, NsPerOp: ns, Allocs: allocs, Count: count,
			Agg: agg.Mode(), AggUsed: used.Mode(),
			MaxDeg: maxDeg, MeanDeg: meanDeg, V2Width: prof.NumV2, Skew: skew,
		})
	}
	return rows
}

// jsonEstimateRows measures the approximate tier (schema v4). Five
// rows per dataset: the vertex- and edge-sampling estimators, each at
// a fixed 1024-draw budget (Invariant "fixed") and under the adaptive
// 5% stopping rule (Invariant "adaptive"), plus the streaming
// reservoir's snapshot read (Invariant "stream"). The row's Speedup
// divides the exact sequential auto-invariant time by the estimator's,
// so the ≥10×-at-≤5%-error acceptance bar reads straight off the
// snapshot.
func jsonEstimateRows(name string, g *graph.Bipartite, repeat int) []JSONResult {
	auto := core.AutoInvariant(g)
	exactNs, _, exact := measureJSON(repeat, func() int64 {
		return core.CountWith(g, core.Options{Invariant: auto})
	})
	configs := []struct {
		label string
		opts  estimate.Options
	}{
		{"fixed", estimate.Options{Strategy: estimate.StrategyVertices, Samples: 1024, Seed: 1}},
		{"fixed", estimate.Options{Strategy: estimate.StrategyEdges, Samples: 1024, Seed: 1}},
		{"adaptive", estimate.Options{Strategy: estimate.StrategyVertices, Seed: 1}},
		{"adaptive", estimate.Options{Strategy: estimate.StrategyEdges, Seed: 1}},
	}
	var rows []JSONResult
	for _, cfg := range configs {
		var res estimate.Result
		ns, allocs, _ := measureJSON(repeat, func() int64 {
			var err error
			res, err = estimate.Sample(g, cfg.opts)
			if err != nil {
				return -1
			}
			return int64(res.Estimate)
		})
		relErr := 0.0
		if exact > 0 {
			relErr = (res.Estimate - float64(exact)) / float64(exact)
			if relErr < 0 {
				relErr = -relErr
			}
		}
		rows = append(rows, JSONResult{
			Dataset:   name,
			Algorithm: "estimate/" + cfg.opts.Strategy.String(),
			Invariant: cfg.label,
			Threads:   1, NsPerOp: ns, Allocs: allocs, Count: exact,
			Estimate: res.Estimate, StdErr: res.StdErr, CI95: res.CI95,
			Samples: res.Samples, RelErr: relErr,
			Speedup: float64(exactNs) / float64(ns),
		})
	}

	// The streaming tier's query path: ingest the edge stream once
	// (that cost is the load, not the query — it replaces the CSR
	// build), then measure the snapshot read /v1/estimate serves on a
	// loading graph. The variance pass is cached per stream position,
	// so the steady-state query is O(1) regardless of |E| — this is
	// the row that carries the dashboard-tier throughput claim.
	capacity := int(g.NumEdges() / 4)
	if capacity < 4096 {
		capacity = 4096
	}
	res, err := estimate.NewReservoir(g.NumV1(), g.NumV2(), capacity, 1)
	if err == nil {
		for _, e := range g.Edges() {
			_ = res.Add(int(e.U), int(e.V))
		}
		res.Snapshot() // populate the per-position variance cache
		var snap estimate.ReservoirSnapshot
		ns, allocs, _ := measureJSON(repeat, func() int64 {
			snap = res.Snapshot()
			return int64(snap.Estimate)
		})
		relErr := 0.0
		if exact > 0 {
			relErr = (snap.Estimate - float64(exact)) / float64(exact)
			if relErr < 0 {
				relErr = -relErr
			}
		}
		rows = append(rows, JSONResult{
			Dataset:   name,
			Algorithm: "estimate/reservoir",
			Invariant: "stream",
			Threads:   1, NsPerOp: ns, Allocs: allocs, Count: exact,
			Estimate: snap.Estimate, StdErr: snap.StdErr, CI95: snap.CI95,
			Samples: snap.ReservoirSize, RelErr: relErr,
			Speedup: float64(exactNs) / float64(ns),
		})
	}
	return rows
}

// jsonPeelRows measures the tip and wing decompositions on both
// peeling engines. Count is the decomposition checksum (Σ numbers), so
// a snapshot diff immediately exposes an engine disagreement.
func jsonPeelRows(name string, g *graph.Bipartite, threadsList []int, repeat int) []JSONResult {
	threads := []int{1}
	for _, t := range threadsList {
		if t > 1 {
			threads = append(threads, t)
		}
	}
	var rows []JSONResult
	for _, engine := range []peel.Engine{peel.EngineDelta, peel.EngineRecount} {
		for _, t := range threads {
			opts := peel.Options{Engine: engine, Threads: t}
			ns, allocs, count := measureJSON(repeat, func() int64 {
				tip, _ := peel.TipNumbersWith(g, core.SideV1, opts)
				return sum64(tip)
			})
			rows = append(rows, JSONResult{
				Dataset: name, Algorithm: "peel-tip/" + engine.String(), Invariant: engine.String(),
				Threads: t, NsPerOp: ns, Allocs: allocs, Count: count,
			})
			ns, allocs, count = measureJSON(repeat, func() int64 {
				wing, _ := peel.WingNumbersWith(g, opts)
				return sum64(wing)
			})
			rows = append(rows, JSONResult{
				Dataset: name, Algorithm: "peel-wing/" + engine.String(), Invariant: engine.String(),
				Threads: t, NsPerOp: ns, Allocs: allocs, Count: count,
			})
		}
	}
	return rows
}

func sum64(vals []int64) int64 {
	var s int64
	for _, v := range vals {
		s += v
	}
	return s
}

func jsonDatasetRows(name string, g *graph.Bipartite, threadsList []int, repeat int) []JSONResult {
	var rows []JSONResult
	for _, inv := range core.Invariants() {
		ns, allocs, count := measureJSON(repeat, func() int64 {
			return core.Count(g, inv)
		})
		rows = append(rows, JSONResult{
			Dataset: name, Algorithm: "family/seq", Invariant: inv.String(),
			Threads: 1, NsPerOp: ns, Allocs: allocs, Count: count,
		})
	}
	auto := core.AutoInvariant(g)
	arena := core.NewArena()
	opts := core.Options{Invariant: auto, Hub: core.HubNever, Arena: arena}
	core.CountWith(g, opts) // warm the arena
	ns, allocs, count := measureJSON(repeat, func() int64 {
		return core.CountWith(g, opts)
	})
	rows = append(rows, JSONResult{
		Dataset: name, Algorithm: "family/arena", Invariant: auto.String(),
		Threads: 1, NsPerOp: ns, Allocs: allocs, Count: count,
	})
	for _, threads := range threadsList {
		if threads <= 1 {
			continue
		}
		ns, allocs, count := measureJSON(repeat, func() int64 {
			return core.CountWith(g, core.Options{Invariant: auto, Threads: threads})
		})
		rows = append(rows, JSONResult{
			Dataset: name, Algorithm: "family/parallel", Invariant: auto.String(),
			Threads: threads, NsPerOp: ns, Allocs: allocs, Count: count,
		})
	}
	return rows
}

// WriteJSON renders the report with stable indentation (diff-friendly).
func WriteJSON(w io.Writer, rep *JSONReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
