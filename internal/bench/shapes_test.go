package bench

// Deterministic "shape" assertions for the paper's Section V findings.
// Wall-clock comparisons are flaky in CI, but the findings are driven
// by work counts that are exact and machine-independent:
//
//   - family 1–4 performs Σ_{u∈V1} C(deg u, 2) wedge steps,
//   - family 5–8 performs Σ_{v∈V2} C(deg v, 2),
//
// so "who wins" is a comparison of two integers. These tests pin the
// reproduction of Fig 10's winners and claim C1's crossover.

import (
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/gen"
)

func familyWork(t *testing.T, name string, scale int) (work14, work58 int64) {
	t.Helper()
	g, err := LoadDataset(name, "", scale)
	if err != nil {
		t.Fatal(err)
	}
	w1, w2 := core.WedgeCount(g)
	return w2, w1 // family 1–4 enumerates V2-endpoint... see core docs
}

// TestFig10WinnersShape asserts the per-dataset winning family of
// Fig 10 via exact work counts, at a scale where degree structure is
// preserved.
func TestFig10WinnersShape(t *testing.T) {
	const scale = 10
	cases := []struct {
		dataset     string
		family14Win bool // paper Fig 10's winner
	}{
		{"record-labels", true}, // |V2| ≪ |V1|
		{"occupations", true},
		{"producers", false}, // |V1| ≪ |V2|
		{"github", false},
	}
	for _, c := range cases {
		w14, w58 := familyWork(t, c.dataset, scale)
		if (w14 < w58) != c.family14Win {
			t.Errorf("%s: work14=%d work58=%d, paper winner family14=%v",
				c.dataset, w14, w58, c.family14Win)
		}
	}
}

// TestClaimC1CrossoverShape asserts that the winning family flips
// exactly when the smaller vertex side flips, on controlled sweeps.
func TestClaimC1CrossoverShape(t *testing.T) {
	const budget, edges = 20000, 60000
	for _, ratio := range []float64{0.15, 0.3, 0.7, 0.85} {
		m := int(float64(budget) * ratio)
		n := budget - m
		g := gen.PowerLawBipartite(m, n, edges, 0.7, 0.7, 77)
		w1, w2 := core.WedgeCount(g)
		work14, work58 := w2, w1
		wantFamily14 := n < m // partition the smaller side = V2 side smaller
		if (work14 < work58) != wantFamily14 {
			t.Errorf("ratio %.2f (V1=%d V2=%d): work14=%d work58=%d, want family14 win=%v",
				ratio, m, n, work14, work58, wantFamily14)
		}
	}
}

// TestClaimC2SparsityShape: at fixed vertex sets, wedge work grows
// superlinearly with edges (the mechanism behind "sparser is faster").
func TestClaimC2SparsityShape(t *testing.T) {
	const m, n = 5000, 10000
	prevWork := int64(-1)
	prevEdges := int64(-1)
	for i, e := range []int64{10000, 20000, 40000} {
		g := gen.PowerLawBipartite(m, n, e, 0.7, 0.7, 78+int64(i))
		w1, w2 := core.WedgeCount(g)
		work := w1 + w2
		if prevWork > 0 {
			// Doubling edges should more than double wedge work
			// (superlinear growth: work ratio exceeds edge ratio).
			if float64(work)/float64(prevWork) <= float64(e)/float64(prevEdges) {
				t.Errorf("edges %d→%d: work %d→%d is not superlinear",
					prevEdges, e, prevWork, work)
			}
		}
		prevWork, prevEdges = work, e
	}
}

// TestFig11ExactnessShape: the parallel algorithm is exact on every
// dataset stand-in (the machine-independent part of Fig 11).
func TestFig11ExactnessShape(t *testing.T) {
	for _, name := range gen.PaperDatasetNames() {
		g, err := LoadDataset(name, "", 20)
		if err != nil {
			t.Fatal(err)
		}
		want := core.CountAuto(g)
		for _, inv := range []core.Invariant{core.Inv2, core.Inv7} {
			if got := core.CountWith(g, core.Options{Invariant: inv, Threads: 6}); got != want {
				t.Errorf("%s %v parallel: %d, want %d", name, inv, got, want)
			}
		}
	}
}
