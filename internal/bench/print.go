package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"

	"butterfly/internal/core"
)

// PrintFig9 renders the dataset table in the layout of the paper's
// Fig 9, with a paper-vs-measured butterfly column (the stand-ins
// preserve sizes, not counts; see DESIGN.md §4).
func PrintFig9(w io.Writer, rows []DatasetRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\t|V1|\t|V2|\t|E|\tButterflies (measured)\tButterflies (paper)\tCount time (s)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.3f\n",
			r.Name, r.V1, r.V2, r.Edges, r.Butterflies, r.PaperCount, r.Seconds)
	}
	tw.Flush()
}

// PrintTimingTable renders a Fig 10/11-style grid: datasets down,
// invariants across, seconds in the cells.
func PrintTimingTable(w io.Writer, t *TimingTable) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Dataset (threads=%d)", t.Threads)
	for _, inv := range core.Invariants() {
		fmt.Fprintf(tw, "\t%v", inv)
	}
	fmt.Fprintln(tw)
	for _, row := range t.Rows {
		fmt.Fprintf(tw, "%s", row.Dataset)
		for _, c := range row.Cells {
			fmt.Fprintf(tw, "\t%.3f", c.Seconds)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// PrintPartitionSweep renders claim C1's sweep.
func PrintPartitionSweep(w io.Writer, pts []PartitionPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "|V1|\t|V2|\t|E|\tbest Inv1-4 (s)\tbest Inv5-8 (s)\twinner")
	for _, p := range pts {
		winner := "family 1-4 (partitions V2)"
		if p.SecFamily58 < p.SecFamily14 {
			winner = "family 5-8 (partitions V1)"
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.3f\t%.3f\t%s\n",
			p.V1, p.V2, p.Edges, p.SecFamily14, p.SecFamily58, winner)
	}
	tw.Flush()
}

// PrintSparsitySweep renders claim C2's sweep.
func PrintSparsitySweep(w io.Writer, pts []SparsityPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "|E|\tdensity\tseconds\tbutterflies")
	for _, p := range pts {
		fmt.Fprintf(tw, "%d\t%.2e\t%.3f\t%d\n", p.Edges, p.Density, p.Seconds, p.Count)
	}
	tw.Flush()
}

// PrintLookAhead renders claim C3's ablation.
func PrintLookAhead(w io.Writer, rows []LookAheadRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tInv1 (s)\tInv2 (s)\tspeedup\tInv8 (s)\tInv7 (s)\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.2fx\t%.3f\t%.3f\t%.2fx\n",
			r.Dataset, r.EagerCols, r.AheadCols, r.ColsSpeedup, r.EagerRows, r.AheadRows, r.RowsSpeed)
	}
	tw.Flush()
}

// PrintBlocked renders the blocked-variant ablation.
func PrintBlocked(w io.Writer, pts []BlockedPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "block size\tseconds")
	for _, p := range pts {
		label := fmt.Sprintf("%d", p.BlockSize)
		if p.BlockSize <= 1 {
			label = "unblocked"
		}
		fmt.Fprintf(tw, "%s\t%.3f\n", label, p.Seconds)
	}
	tw.Flush()
}

// PrintOrder renders the degree-ordering ablation.
func PrintOrder(w io.Writer, pts []OrderPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "vertex order\tseconds")
	for _, p := range pts {
		fmt.Fprintf(tw, "%v\t%.3f\n", p.Order, p.Seconds)
	}
	tw.Flush()
}

// PrintBaselines renders the baseline comparison.
func PrintBaselines(w io.Writer, pts []BaselinePoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tseconds\tbutterflies")
	for _, p := range pts {
		fmt.Fprintf(tw, "%s\t%.3f\t%d\n", p.Name, p.Seconds, p.Count)
	}
	tw.Flush()
}

// PrintBalance renders the parallel work-balance table.
func PrintBalance(w io.Writer, rows []BalanceRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tinvariant\tworkers\tmax/mean load\tper-worker wedge steps")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%v\t%d\t%.3f\t%v\n", r.Dataset, r.Invariant, r.Threads, r.Imbalance, r.PerWorker)
	}
	tw.Flush()
}

// PrintDynamic renders the dynamic-throughput result.
func PrintDynamic(w io.Writer, p DynamicPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tupdates\tseconds\tupdates/s")
	fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.0f\n", p.Name, p.Updates, p.Seconds, p.PerSecond)
	tw.Flush()
}

// PrintPeeling renders the peeling-variant comparison.
func PrintPeeling(w io.Writer, pts []PeelingPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tseconds")
	for _, p := range pts {
		fmt.Fprintf(tw, "%s\t%.3f\n", p.Name, p.Seconds)
	}
	tw.Flush()
}

// PrintDist renders the dataset characterization table.
func PrintDist(w io.Writer, rows []DistRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tmax deg V1\tmax deg V2\tGini V1\tGini V2\twedges(V1 ends)\twedges(V2 ends)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%.3f\t%d\t%d\n",
			r.Dataset, r.MaxDegV1, r.MaxDegV2, r.GiniV1, r.GiniV2, r.WedgesV1, r.WedgesV2)
	}
	tw.Flush()
}

// PrintEstimators renders the estimator comparison.
func PrintEstimators(w io.Writer, pts []EstimatorPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "estimator\tseconds\testimate\trel. error")
	for _, p := range pts {
		fmt.Fprintf(tw, "%s\t%.3f\t%.0f\t%.1f%%\n", p.Name, p.Seconds, p.Estimate, 100*p.RelErr)
	}
	tw.Flush()
}

// WriteTimingCSV emits a Fig 10/11 grid as CSV (dataset, then one
// column per invariant, seconds) for plotting pipelines.
func WriteTimingCSV(w io.Writer, t *TimingTable) error {
	cw := csv.NewWriter(w)
	header := []string{"dataset"}
	for _, inv := range core.Invariants() {
		header = append(header, inv.String())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		rec := []string{row.Dataset}
		for _, c := range row.Cells {
			rec = append(rec, strconv.FormatFloat(c.Seconds, 'f', 6, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig9CSV emits the dataset table as CSV.
func WriteFig9CSV(w io.Writer, rows []DatasetRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "v1", "v2", "edges", "butterflies_measured", "butterflies_paper", "seconds"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Name,
			strconv.Itoa(r.V1), strconv.Itoa(r.V2),
			strconv.FormatInt(r.Edges, 10),
			strconv.FormatInt(r.Butterflies, 10),
			strconv.FormatInt(r.PaperCount, 10),
			strconv.FormatFloat(r.Seconds, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// PrintSignificance renders the null-model table.
func PrintSignificance(w io.Writer, rows []SignificanceRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tobserved ΞG\tnull mean\tnull std\tz-score")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.1f\n", r.Dataset, r.Observed, r.NullMean, r.NullStd, r.ZScore)
	}
	tw.Flush()
}
