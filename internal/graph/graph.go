// Package graph defines the simple, undirected bipartite graph type
// shared by all butterfly algorithms, together with builders, induced
// subgraphs, relabelings and summary statistics.
//
// A bipartite graph G = (V1, V2, E) is stored as its biadjacency
// pattern A in CSR form (rows = V1, columns = V2) plus the transpose
// Aᵀ. Keeping both orientations resident is what lets the paper's two
// algorithm families pick their preferred storage: invariants 1–4 walk
// columns of A (CSC ≡ CSR of Aᵀ), invariants 5–8 walk rows.
package graph

import (
	"errors"
	"fmt"

	"butterfly/internal/bitvec"
	"butterfly/internal/sparse"
)

// Bipartite is an immutable simple bipartite graph. Construct one with
// Builder, FromCSR or FromEdges; do not mutate the adjacency matrices
// after construction.
type Bipartite struct {
	adj  *sparse.CSR // A: V1 → V2, pattern matrix
	adjT *sparse.CSR // Aᵀ: V2 → V1, pattern matrix

	// Lazily-computed caches (see profile.go): the degree profile the
	// adaptive execution policies read, and the degree-ordered twin the
	// counting kernels stream. Both derive deterministically from the
	// immutable adjacency, so they never invalidate.
	prof   profCache
	degOrd degOrdCache
}

// Edge is an undirected edge between vertex U ∈ V1 and V ∈ V2.
type Edge struct {
	U, V int32
}

// Builder accumulates edges for a Bipartite graph. Duplicate edges are
// merged silently (simple graph).
type Builder struct {
	coo *sparse.COO
}

// NewBuilder returns a builder for a graph with |V1| = m, |V2| = n.
func NewBuilder(m, n int) *Builder {
	return &Builder{coo: sparse.NewCOO(m, n)}
}

// AddEdge records the edge (u ∈ V1, v ∈ V2). Panics if out of range.
func (b *Builder) AddEdge(u, v int) { b.coo.Add(u, v) }

// Build finalizes the graph.
func (b *Builder) Build() *Bipartite {
	a := b.coo.ToCSR(sparse.DupBinary)
	return &Bipartite{adj: a, adjT: sparse.Transpose(a)}
}

// FromCSR wraps an existing biadjacency pattern. The matrix must be a
// valid pattern CSR; an error is returned otherwise. The matrix is used
// directly (not copied).
func FromCSR(a *sparse.CSR) (*Bipartite, error) {
	if a == nil {
		return nil, errors.New("graph: nil adjacency")
	}
	if !a.IsPattern() {
		return nil, errors.New("graph: adjacency must be a pattern (0/1) matrix")
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("graph: invalid adjacency: %w", err)
	}
	return &Bipartite{adj: a, adjT: sparse.Transpose(a)}, nil
}

// FromEdges builds a graph from an edge list.
func FromEdges(m, n int, edges []Edge) *Bipartite {
	b := NewBuilder(m, n)
	for _, e := range edges {
		b.AddEdge(int(e.U), int(e.V))
	}
	return b.Build()
}

// NumV1 returns |V1|.
func (g *Bipartite) NumV1() int { return g.adj.R }

// NumV2 returns |V2|.
func (g *Bipartite) NumV2() int { return g.adj.C }

// NumEdges returns |E|.
func (g *Bipartite) NumEdges() int64 { return g.adj.NNZ() }

// Adj returns the biadjacency pattern A (V1 rows → V2 columns). The
// returned matrix aliases internal storage; treat it as read-only.
func (g *Bipartite) Adj() *sparse.CSR { return g.adj }

// AdjT returns Aᵀ (V2 rows → V1 columns); read-only.
func (g *Bipartite) AdjT() *sparse.CSR { return g.adjT }

// CSC returns the biadjacency in CSC form, sharing storage with AdjT.
// This is the layout invariants 1–4 iterate over.
func (g *Bipartite) CSC() *sparse.CSC { return sparse.CSCFromCSRTranspose(g.adjT) }

// NeighborsOfV1 returns the V2 neighbors of u ∈ V1 (sorted, read-only).
func (g *Bipartite) NeighborsOfV1(u int) []int32 { return g.adj.Row(u) }

// NeighborsOfV2 returns the V1 neighbors of v ∈ V2 (sorted, read-only).
func (g *Bipartite) NeighborsOfV2(v int) []int32 { return g.adjT.Row(v) }

// DegreeV1 returns deg(u) for u ∈ V1.
func (g *Bipartite) DegreeV1(u int) int { return g.adj.RowDeg(u) }

// DegreeV2 returns deg(v) for v ∈ V2.
func (g *Bipartite) DegreeV2(v int) int { return g.adjT.RowDeg(v) }

// HasEdge reports whether (u, v) ∈ E.
func (g *Bipartite) HasEdge(u, v int) bool { return g.adj.At(u, v) != 0 }

// Edges returns the edge list in row-major order.
func (g *Bipartite) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for u := 0; u < g.NumV1(); u++ {
		for _, v := range g.adj.Row(u) {
			out = append(out, Edge{U: int32(u), V: v})
		}
	}
	return out
}

// Transposed returns the graph with the two vertex sets swapped (Aᵀ as
// the biadjacency). Storage is shared with g.
func (g *Bipartite) Transposed() *Bipartite {
	return &Bipartite{adj: g.adjT, adjT: g.adj}
}

// Equal reports whether two graphs have identical vertex-set sizes and
// edge sets.
func (g *Bipartite) Equal(h *Bipartite) bool { return g.adj.Equal(h.adj) }

// Density returns |E| / (|V1|·|V2|), the fill fraction of A.
func (g *Bipartite) Density() float64 {
	cells := float64(g.NumV1()) * float64(g.NumV2())
	if cells == 0 {
		return 0
	}
	return float64(g.NumEdges()) / cells
}

// InducedSubgraph returns the subgraph keeping only vertices set in
// keep1/keep2 (nil keeps the whole side). Vertex identifiers are
// preserved — removed vertices simply become isolated. This matches the
// paper's masking semantics (equations (21)–(22), (26)–(27)), where the
// adjacency stays the same shape and rows/columns are zeroed.
func (g *Bipartite) InducedSubgraph(keep1, keep2 *bitvec.Vector) *Bipartite {
	a := sparse.ZeroRowsCols(g.adj, keep1, keep2)
	return &Bipartite{adj: a, adjT: sparse.Transpose(a)}
}

// FilterEdges returns the subgraph retaining only edges for which keep
// returns true.
func (g *Bipartite) FilterEdges(keep func(u, v int32) bool) *Bipartite {
	a := sparse.Select(g.adj, func(i int, j int32, _ int64) bool { return keep(int32(i), j) })
	return &Bipartite{adj: a, adjT: sparse.Transpose(a)}
}

// Compact renumbers away isolated vertices on both sides, returning the
// compacted graph plus the old→new vertex maps (−1 for dropped
// vertices).
func (g *Bipartite) Compact() (h *Bipartite, mapV1, mapV2 []int32) {
	mapV1 = make([]int32, g.NumV1())
	mapV2 = make([]int32, g.NumV2())
	m := 0
	for u := range mapV1 {
		if g.DegreeV1(u) > 0 {
			mapV1[u] = int32(m)
			m++
		} else {
			mapV1[u] = -1
		}
	}
	n := 0
	for v := range mapV2 {
		if g.DegreeV2(v) > 0 {
			mapV2[v] = int32(n)
			n++
		} else {
			mapV2[v] = -1
		}
	}
	b := NewBuilder(m, n)
	for u := 0; u < g.NumV1(); u++ {
		for _, v := range g.adj.Row(u) {
			b.AddEdge(int(mapV1[u]), int(mapV2[v]))
		}
	}
	return b.Build(), mapV1, mapV2
}

// Validate checks internal consistency (adjacency valid, transpose in
// sync); it is cheap insurance after hand-constructed graphs.
func (g *Bipartite) Validate() error {
	if err := g.adj.Validate(); err != nil {
		return fmt.Errorf("graph: adj: %w", err)
	}
	if err := g.adjT.Validate(); err != nil {
		return fmt.Errorf("graph: adjT: %w", err)
	}
	if !sparse.Transpose(g.adj).Equal(g.adjT) {
		return errors.New("graph: adjT is not the transpose of adj")
	}
	return nil
}

// String summarizes the graph.
func (g *Bipartite) String() string {
	return fmt.Sprintf("Bipartite(|V1|=%d, |V2|=%d, |E|=%d)", g.NumV1(), g.NumV2(), g.NumEdges())
}
