package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/bitvec"
	"butterfly/internal/sparse"
)

// k22 builds the single-butterfly graph K(2,2).
func k22() *Bipartite {
	b := NewBuilder(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(1, 1)
	return b.Build()
}

func randGraph(rng *rand.Rand, m, n int, density float64) *Bipartite {
	b := NewBuilder(m, n)
	for u := 0; u < m; u++ {
		for v := 0; v < n; v++ {
			if rng.Float64() < density {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := k22()
	if g.NumV1() != 2 || g.NumV2() != 2 || g.NumEdges() != 4 {
		t.Fatalf("bad shape: %s", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(2-1, 2) == true && false {
		t.Fatal("HasEdge wrong")
	}
	if g.DegreeV1(0) != 2 || g.DegreeV2(1) != 2 {
		t.Fatal("degrees wrong")
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 0)
	b.AddEdge(0, 0)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 after dedup", g.NumEdges())
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range AddEdge did not panic")
		}
	}()
	NewBuilder(1, 1).AddEdge(1, 0)
}

func TestNeighbors(t *testing.T) {
	b := NewBuilder(3, 3)
	b.AddEdge(0, 2)
	b.AddEdge(0, 0)
	b.AddEdge(1, 1)
	b.AddEdge(2, 1)
	g := b.Build()

	n0 := g.NeighborsOfV1(0)
	if len(n0) != 2 || n0[0] != 0 || n0[1] != 2 {
		t.Fatalf("NeighborsOfV1(0) = %v", n0)
	}
	n1 := g.NeighborsOfV2(1)
	if len(n1) != 2 || n1[0] != 1 || n1[1] != 2 {
		t.Fatalf("NeighborsOfV2(1) = %v", n1)
	}
}

func TestFromEdgesAndEdges(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 0}, {2, 2}}
	g := FromEdges(3, 3, edges)
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	back := g.Edges()
	if len(back) != 3 {
		t.Fatalf("Edges len = %d", len(back))
	}
	h := FromEdges(3, 3, back)
	if !g.Equal(h) {
		t.Fatal("edge-list round trip differs")
	}
}

func TestFromCSRRejectsBad(t *testing.T) {
	if _, err := FromCSR(nil); err == nil {
		t.Fatal("nil CSR accepted")
	}
	vals := &sparse.CSR{R: 1, C: 1, Ptr: []int64{0, 1}, Col: []int32{0}, Val: []int64{2}}
	if _, err := FromCSR(vals); err == nil {
		t.Fatal("valued CSR accepted as pattern graph")
	}
	corrupt := &sparse.CSR{R: 1, C: 1, Ptr: []int64{0, 1}, Col: []int32{5}}
	if _, err := FromCSR(corrupt); err == nil {
		t.Fatal("corrupt CSR accepted")
	}
}

func TestTransposed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randGraph(rng, 5, 8, 0.3)
	h := g.Transposed()
	if h.NumV1() != 8 || h.NumV2() != 5 || h.NumEdges() != g.NumEdges() {
		t.Fatalf("transpose shape wrong: %s", h)
	}
	for u := 0; u < 5; u++ {
		for v := 0; v < 8; v++ {
			if g.HasEdge(u, v) != h.HasEdge(v, u) {
				t.Fatalf("edge (%d,%d) mismatch after transpose", u, v)
			}
		}
	}
	if !h.Transposed().Equal(g) {
		t.Fatal("double transpose differs")
	}
}

func TestDensity(t *testing.T) {
	g := k22()
	if g.Density() != 1.0 {
		t.Fatalf("K(2,2) density = %f", g.Density())
	}
	if NewBuilder(0, 0).Build().Density() != 0 {
		t.Fatal("empty graph density should be 0")
	}
}

func TestInducedSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randGraph(rng, 6, 6, 0.5)
	keep1 := bitvec.NewFull(6)
	keep1.Clear(0)
	keep2 := bitvec.NewFull(6)
	keep2.Clear(5)
	h := g.InducedSubgraph(keep1, keep2)
	if h.NumV1() != 6 || h.NumV2() != 6 {
		t.Fatal("InducedSubgraph must preserve vertex-set sizes")
	}
	for u := 0; u < 6; u++ {
		for v := 0; v < 6; v++ {
			want := g.HasEdge(u, v) && u != 0 && v != 5
			if h.HasEdge(u, v) != want {
				t.Fatalf("induced edge (%d,%d) = %v, want %v", u, v, h.HasEdge(u, v), want)
			}
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFilterEdges(t *testing.T) {
	g := k22()
	h := g.FilterEdges(func(u, v int32) bool { return u != v })
	if h.NumEdges() != 2 || h.HasEdge(0, 0) || !h.HasEdge(0, 1) {
		t.Fatal("FilterEdges wrong")
	}
}

func TestCompact(t *testing.T) {
	b := NewBuilder(4, 4)
	b.AddEdge(1, 2)
	b.AddEdge(3, 2)
	g := b.Build()
	h, m1, m2 := g.Compact()
	if h.NumV1() != 2 || h.NumV2() != 1 || h.NumEdges() != 2 {
		t.Fatalf("compact shape: %s", h)
	}
	if m1[0] != -1 || m1[1] != 0 || m1[3] != 1 {
		t.Fatalf("mapV1 = %v", m1)
	}
	if m2[2] != 0 || m2[0] != -1 {
		t.Fatalf("mapV2 = %v", m2)
	}
	if !h.HasEdge(0, 0) || !h.HasEdge(1, 0) {
		t.Fatal("compacted edges wrong")
	}
}

func TestRelabelDegreeOrders(t *testing.T) {
	b := NewBuilder(3, 3)
	// degrees V1: 0→3, 1→1, 2→2
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 0)
	b.AddEdge(2, 0)
	b.AddEdge(2, 1)
	g := b.Build()

	asc, p1, _ := g.Relabel(OrderDegreeAsc)
	if g.DegreeV1(int(p1[0])) > g.DegreeV1(int(p1[1])) || g.DegreeV1(int(p1[1])) > g.DegreeV1(int(p1[2])) {
		t.Fatal("asc permutation not sorted by degree")
	}
	for newID := 0; newID < 2; newID++ {
		if asc.DegreeV1(newID) > asc.DegreeV1(newID+1) {
			t.Fatal("relabeled graph degrees not ascending")
		}
	}

	desc, _, _ := g.Relabel(OrderDegreeDesc)
	for newID := 0; newID < 2; newID++ {
		if desc.DegreeV1(newID) < desc.DegreeV1(newID+1) {
			t.Fatal("relabeled graph degrees not descending")
		}
	}

	nat, p1n, p2n := g.Relabel(OrderNatural)
	if !nat.Equal(g) {
		t.Fatal("natural order changed the graph")
	}
	for i, v := range p1n {
		if int(v) != i {
			t.Fatal("natural permV1 not identity")
		}
	}
	for i, v := range p2n {
		if int(v) != i {
			t.Fatal("natural permV2 not identity")
		}
	}
}

// Relabeling is an isomorphism: edges map exactly through the
// permutations, and edge count is preserved.
func TestQuickRelabelIsIsomorphism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randGraph(rng, rng.Intn(8)+1, rng.Intn(8)+1, 0.4)
		for _, o := range []Order{OrderDegreeAsc, OrderDegreeDesc} {
			h, p1, p2 := g.Relabel(o)
			if h.NumEdges() != g.NumEdges() {
				return false
			}
			for newU := 0; newU < h.NumV1(); newU++ {
				for _, newV := range h.NeighborsOfV1(newU) {
					if !g.HasEdge(int(p1[newU]), int(p2[newV])) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderString(t *testing.T) {
	if OrderNatural.String() != "natural" || OrderDegreeAsc.String() != "degree-asc" ||
		OrderDegreeDesc.String() != "degree-desc" || Order(99).String() != "order(?)" {
		t.Fatal("Order.String wrong")
	}
}

func TestStats(t *testing.T) {
	b := NewBuilder(3, 2)
	b.AddEdge(0, 0)
	b.AddEdge(1, 0)
	b.AddEdge(2, 0)
	b.AddEdge(0, 1)
	g := b.Build()
	s := ComputeStats(g)
	if s.NumV1 != 3 || s.NumV2 != 2 || s.NumEdges != 4 {
		t.Fatalf("stats counts wrong: %+v", s)
	}
	// deg V2: v0 = 3, v1 = 1 → wedges with V1 endpoints = C(3,2) = 3.
	if s.WedgesV1 != 3 {
		t.Fatalf("WedgesV1 = %d, want 3", s.WedgesV1)
	}
	// deg V1: 2, 1, 1 → wedges with V2 endpoints = C(2,2→)=1.
	if s.WedgesV2 != 1 {
		t.Fatalf("WedgesV2 = %d, want 1", s.WedgesV2)
	}
	if s.MaxDegV2 != 3 || s.MinDegV2 != 1 || s.MaxDegV1 != 2 || s.MinDegV1 != 1 {
		t.Fatalf("degree extremes wrong: %+v", s)
	}
	if s.SmallerSideIsV2() != true {
		t.Fatal("SmallerSideIsV2 wrong")
	}
	if len(s.String()) == 0 {
		t.Fatal("empty Stats.String")
	}
}

func TestStatsEmpty(t *testing.T) {
	s := ComputeStats(NewBuilder(0, 0).Build())
	if s.NumEdges != 0 || s.Density != 0 || s.AvgDegV1 != 0 {
		t.Fatalf("empty stats wrong: %+v", s)
	}
}

// Stats wedge counts are invariant under relabeling.
func TestQuickStatsRelabelInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randGraph(rng, rng.Intn(8)+1, rng.Intn(8)+1, 0.4)
		h, _, _ := g.Relabel(OrderDegreeAsc)
		sg, sh := ComputeStats(g), ComputeStats(h)
		return sg.WedgesV1 == sh.WedgesV1 && sg.WedgesV2 == sh.WedgesV2 &&
			sg.NumEdges == sh.NumEdges && sg.MaxDegV1 == sh.MaxDegV1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCSCView(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randGraph(rng, 6, 4, 0.5)
	csc := g.CSC()
	if csc.R != 6 || csc.C != 4 {
		t.Fatalf("CSC dims %dx%d", csc.R, csc.C)
	}
	for v := 0; v < 4; v++ {
		rows := csc.ColIdx(v)
		nbrs := g.NeighborsOfV2(v)
		if len(rows) != len(nbrs) {
			t.Fatalf("column %d degree mismatch", v)
		}
		for k := range rows {
			if rows[k] != nbrs[k] {
				t.Fatalf("column %d row list mismatch", v)
			}
		}
	}
}

func TestValidateCatchesDesync(t *testing.T) {
	g := k22()
	// Unsafe mutation: callers are told not to do this; Validate is the
	// safety net that catches it.
	g.Adj().Col[0] = 1 // duplicate column within the row → invalid CSR
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed corrupted adjacency")
	}

	h := k22()
	// Structurally valid but transpose-desynced adjacency.
	h.Adj().Col[0], h.Adj().Col[1] = 0, 1 // unchanged pattern: rebuild a real desync below
	b := NewBuilder(2, 2)
	b.AddEdge(0, 0)
	fresh := b.Build()
	// Splice fresh adj into h without refreshing adjT.
	*h.Adj() = *fresh.Adj()
	if err := h.Validate(); err == nil {
		t.Fatal("Validate missed adj/adjT desync")
	}
}
