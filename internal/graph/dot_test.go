package graph

import (
	"math"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	var sb strings.Builder
	if err := WriteDOT(&sb, k22(), "test"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`graph "test"`, "cluster_v1", "cluster_v2", "u0 -- v0;", "u1 -- v1;"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, " -- ") != 4 {
		t.Fatalf("edge count wrong:\n%s", out)
	}
	// Default name.
	sb.Reset()
	if err := WriteDOT(&sb, k22(), ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `graph "bipartite"`) {
		t.Fatal("default name missing")
	}
}

func TestDegreeHistogram(t *testing.T) {
	b := NewBuilder(3, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g := b.Build()
	h1 := DegreeHistogram(g, true) // V1 degrees: 2, 1, 0
	if len(h1) != 3 || h1[0] != 1 || h1[1] != 1 || h1[2] != 1 {
		t.Fatalf("V1 histogram = %v", h1)
	}
	h2 := DegreeHistogram(g, false) // V2 degrees: 2, 1
	if len(h2) != 3 || h2[1] != 1 || h2[2] != 1 {
		t.Fatalf("V2 histogram = %v", h2)
	}
}

func TestDegreeGini(t *testing.T) {
	// Uniform degrees → Gini 0.
	uniform := k22()
	if g := DegreeGini(uniform, true); math.Abs(g) > 1e-9 {
		t.Fatalf("uniform Gini = %f", g)
	}
	// A hub-and-spokes side is maximally skewed: Gini → (n-1)/n.
	b := NewBuilder(4, 4)
	for v := 0; v < 4; v++ {
		b.AddEdge(0, v)
	}
	star := b.Build()
	want := 3.0 / 4.0
	if g := DegreeGini(star, true); math.Abs(g-want) > 1e-9 {
		t.Fatalf("star Gini = %f, want %f", g, want)
	}
	// Empty side.
	if g := DegreeGini(NewBuilder(0, 0).Build(), true); g != 0 {
		t.Fatalf("empty Gini = %f", g)
	}
	// Edgeless side.
	if g := DegreeGini(NewBuilder(3, 3).Build(), false); g != 0 {
		t.Fatalf("edgeless Gini = %f", g)
	}
}

func TestDegreeGiniMonotoneInSkew(t *testing.T) {
	// More skewed distributions score higher.
	even := NewBuilder(4, 4)
	for i := 0; i < 4; i++ {
		even.AddEdge(i, i)
	}
	flat := DegreeGini(even.Build(), true)

	skewed := NewBuilder(4, 4)
	skewed.AddEdge(0, 0)
	skewed.AddEdge(0, 1)
	skewed.AddEdge(0, 2)
	skewed.AddEdge(1, 3)
	sk := DegreeGini(skewed.Build(), true)
	if sk <= flat {
		t.Fatalf("skewed Gini %f not above flat %f", sk, flat)
	}
}
