package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders the bipartite graph in Graphviz DOT format: V1
// vertices as boxes named u<i> on one rank, V2 vertices as ellipses
// named v<j> on another. Intended for eyeballing small graphs and
// peeling results (`dot -Tsvg`); emitting a million-edge graph is
// possible but unkind.
func WriteDOT(w io.Writer, g *Bipartite, name string) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "bipartite"
	}
	fmt.Fprintf(bw, "graph %q {\n  rankdir=LR;\n", name)
	fmt.Fprintf(bw, "  subgraph cluster_v1 { label=\"V1\"; node [shape=box];\n")
	for u := 0; u < g.NumV1(); u++ {
		fmt.Fprintf(bw, "    u%d;\n", u)
	}
	fmt.Fprintf(bw, "  }\n  subgraph cluster_v2 { label=\"V2\"; node [shape=ellipse];\n")
	for v := 0; v < g.NumV2(); v++ {
		fmt.Fprintf(bw, "    v%d;\n", v)
	}
	fmt.Fprintf(bw, "  }\n")
	for u := 0; u < g.NumV1(); u++ {
		for _, v := range g.NeighborsOfV1(u) {
			fmt.Fprintf(bw, "  u%d -- v%d;\n", u, v)
		}
	}
	fmt.Fprintf(bw, "}\n")
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: WriteDOT: %w", err)
	}
	return nil
}

// DegreeHistogram returns hist where hist[d] is the number of vertices
// with degree d on the chosen side (true = V1).
func DegreeHistogram(g *Bipartite, sideV1 bool) []int64 {
	n, deg := g.NumV2(), g.DegreeV2
	if sideV1 {
		n, deg = g.NumV1(), g.DegreeV1
	}
	maxDeg := 0
	for i := 0; i < n; i++ {
		if d := deg(i); d > maxDeg {
			maxDeg = d
		}
	}
	hist := make([]int64, maxDeg+1)
	for i := 0; i < n; i++ {
		hist[deg(i)]++
	}
	return hist
}

// DegreeGini returns the Gini coefficient of the side's degree
// distribution — 0 for perfectly uniform degrees, approaching 1 for
// hub-dominated ones. It quantifies the skew that decides how well
// chunked parallel schedules balance (see core.WorkBalance).
func DegreeGini(g *Bipartite, sideV1 bool) float64 {
	n := g.NumV2()
	if sideV1 {
		n = g.NumV1()
	}
	if n == 0 {
		return 0
	}
	// Gini from the histogram: Σᵢ Σⱼ |dᵢ − dⱼ| / (2 n² mean).
	hist := DegreeHistogram(g, sideV1)
	var total, weighted float64
	// Sorted traversal: cumulative form G = (2 Σ i·d₍ᵢ₎)/(n Σ d) − (n+1)/n.
	i := 1
	for d, cnt := range hist {
		for c := int64(0); c < cnt; c++ {
			total += float64(d)
			weighted += float64(i) * float64(d)
			i++
		}
	}
	if total == 0 {
		return 0
	}
	nn := float64(n)
	return 2*weighted/(nn*total) - (nn+1)/nn
}
