package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComponentsSingle(t *testing.T) {
	g := k22()
	c1, c2, n := Components(g)
	if n != 1 {
		t.Fatalf("components = %d, want 1", n)
	}
	for _, c := range append(c1, c2...) {
		if c != 0 {
			t.Fatal("vertex outside component 0")
		}
	}
}

func TestComponentsDisjointBlocks(t *testing.T) {
	// Two K(2,2) blocks plus one isolated vertex per side.
	b := NewBuilder(5, 5)
	for _, e := range [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 2}, {2, 3}, {3, 2}, {3, 3}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	c1, c2, n := Components(g)
	if n != 4 { // two blocks + isolated u4 + isolated v4
		t.Fatalf("components = %d, want 4", n)
	}
	if c1[0] != c1[1] || c1[0] != c2[0] || c1[0] != c2[1] {
		t.Fatal("block 1 split")
	}
	if c1[2] != c1[3] || c1[2] != c2[2] {
		t.Fatal("block 2 split")
	}
	if c1[0] == c1[2] {
		t.Fatal("blocks merged")
	}
	if c1[4] == c1[0] || c1[4] == c1[2] || c2[4] == c1[4] {
		// isolated vertices have fresh ids
		if c1[4] == c2[4] {
			t.Fatal("distinct isolated vertices share a component")
		}
	}
}

func TestComponentsEmpty(t *testing.T) {
	_, _, n := Components(NewBuilder(0, 0).Build())
	if n != 0 {
		t.Fatalf("empty graph components = %d", n)
	}
	_, c2, n := Components(NewBuilder(0, 3).Build())
	if n != 3 || c2[0] == c2[1] {
		t.Fatalf("isolated-only graph wrong: n=%d", n)
	}
}

// Every edge joins same-component endpoints, and component ids are
// dense in [0, count).
func TestQuickComponentsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randGraph(rng, rng.Intn(12)+1, rng.Intn(12)+1, 0.15)
		c1, c2, n := Components(g)
		used := make([]bool, n)
		for u := 0; u < g.NumV1(); u++ {
			if c1[u] < 0 || int(c1[u]) >= n {
				return false
			}
			used[c1[u]] = true
			for _, v := range g.NeighborsOfV1(u) {
				if c2[v] != c1[u] {
					return false
				}
			}
		}
		for v := 0; v < g.NumV2(); v++ {
			if c2[v] < 0 || int(c2[v]) >= n {
				return false
			}
			used[c2[v]] = true
		}
		for _, ok := range used {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargestComponent(t *testing.T) {
	// A big K(3,3) block and a small K(2,2) block.
	b := NewBuilder(5, 5)
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			b.AddEdge(u, v)
		}
	}
	b.AddEdge(3, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 3)
	b.AddEdge(4, 4)
	g := b.Build()

	lc := LargestComponent(g)
	if lc.NumEdges() != 9 {
		t.Fatalf("largest component has %d edges, want 9", lc.NumEdges())
	}
	if lc.HasEdge(3, 3) {
		t.Fatal("small block survived")
	}
	// Single-component graph is returned unchanged.
	if LargestComponent(k22()) != k22() && !LargestComponent(k22()).Equal(k22()) {
		t.Fatal("single component altered")
	}
}
