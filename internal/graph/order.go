package graph

import "sort"

// Order selects a vertex relabeling strategy. Degree ordering is the
// optimization the paper's future-work section points at ([3], [12]):
// processing low-degree wedge points first shrinks the accumulator
// working set of the counting loops.
type Order int

const (
	// OrderNatural keeps the input labeling.
	OrderNatural Order = iota
	// OrderDegreeAsc relabels so vertex 0 has the smallest degree.
	OrderDegreeAsc
	// OrderDegreeDesc relabels so vertex 0 has the largest degree.
	OrderDegreeDesc
)

func (o Order) String() string {
	switch o {
	case OrderNatural:
		return "natural"
	case OrderDegreeAsc:
		return "degree-asc"
	case OrderDegreeDesc:
		return "degree-desc"
	default:
		return "order(?)"
	}
}

// permutationByDegree returns a permutation perm where perm[newID] =
// oldID, ordered by the given degree function. Ties break by original
// id, making the relabeling deterministic.
func permutationByDegree(n int, deg func(int) int, asc bool) []int32 {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(x, y int) bool {
		dx, dy := deg(int(perm[x])), deg(int(perm[y]))
		if dx != dy {
			if asc {
				return dx < dy
			}
			return dx > dy
		}
		return perm[x] < perm[y]
	})
	return perm
}

// Relabel returns a new graph with both vertex sets renumbered
// according to the order, plus the permutations used
// (permV1[newID] = oldID, and likewise for V2). OrderNatural returns
// the receiver unchanged with identity permutations.
func (g *Bipartite) Relabel(o Order) (h *Bipartite, permV1, permV2 []int32) {
	m, n := g.NumV1(), g.NumV2()
	switch o {
	case OrderNatural:
		permV1 = make([]int32, m)
		permV2 = make([]int32, n)
		for i := range permV1 {
			permV1[i] = int32(i)
		}
		for j := range permV2 {
			permV2[j] = int32(j)
		}
		return g, permV1, permV2
	case OrderDegreeAsc:
		permV1 = permutationByDegree(m, g.DegreeV1, true)
		permV2 = permutationByDegree(n, g.DegreeV2, true)
	case OrderDegreeDesc:
		permV1 = permutationByDegree(m, g.DegreeV1, false)
		permV2 = permutationByDegree(n, g.DegreeV2, false)
	default:
		panic("graph: unknown order")
	}

	// Invert: inv[oldID] = newID.
	inv1 := make([]int32, m)
	for newID, oldID := range permV1 {
		inv1[oldID] = int32(newID)
	}
	inv2 := make([]int32, n)
	for newID, oldID := range permV2 {
		inv2[oldID] = int32(newID)
	}

	b := NewBuilder(m, n)
	for u := 0; u < m; u++ {
		for _, v := range g.adj.Row(u) {
			b.AddEdge(int(inv1[u]), int(inv2[v]))
		}
	}
	return b.Build(), permV1, permV2
}
