package graph

// Components labels the connected components of the bipartite graph.
// compV1[u] and compV2[v] hold 0-based component ids; isolated vertices
// get their own singleton components. Butterflies never span
// components, so component structure bounds where dense cores can live
// and lets large analyses shard per component.
func Components(g *Bipartite) (compV1, compV2 []int32, count int) {
	m, n := g.NumV1(), g.NumV2()
	compV1 = make([]int32, m)
	compV2 = make([]int32, n)
	for i := range compV1 {
		compV1[i] = -1
	}
	for i := range compV2 {
		compV2[i] = -1
	}

	// BFS over the union vertex set; V2 ids are offset by m.
	queue := make([]int32, 0, 1024)
	next := int32(0)
	for start := 0; start < m; start++ {
		if compV1[start] != -1 {
			continue
		}
		id := next
		next++
		compV1[start] = id
		queue = append(queue[:0], int32(start))
		for len(queue) > 0 {
			x := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if int(x) < m {
				for _, v := range g.NeighborsOfV1(int(x)) {
					if compV2[v] == -1 {
						compV2[v] = id
						queue = append(queue, int32(m)+v)
					}
				}
			} else {
				for _, u := range g.NeighborsOfV2(int(x) - m) {
					if compV1[u] == -1 {
						compV1[u] = id
						queue = append(queue, u)
					}
				}
			}
		}
	}
	// Isolated V2 vertices become their own components.
	for v := range compV2 {
		if compV2[v] == -1 {
			compV2[v] = next
			next++
		}
	}
	return compV1, compV2, int(next)
}

// LargestComponent returns the subgraph induced by the component with
// the most edges (vertex ids preserved; everything else isolated).
// Returns g unchanged when it has at most one component.
func LargestComponent(g *Bipartite) *Bipartite {
	compV1, _, count := Components(g)
	if count <= 1 {
		return g
	}
	edgeCount := make([]int64, count)
	for u := 0; u < g.NumV1(); u++ {
		edgeCount[compV1[u]] += int64(g.DegreeV1(u))
	}
	best := int32(0)
	for id := 1; id < count; id++ {
		if edgeCount[id] > edgeCount[best] {
			best = int32(id)
		}
	}
	return g.FilterEdges(func(u, v int32) bool { return compV1[u] == best })
}
