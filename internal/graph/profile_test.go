package graph

import (
	"strings"
	"sync"
	"testing"
)

func profGraph(t *testing.T) *Bipartite {
	t.Helper()
	// V1 degrees: 4, 1, 1; V2 degrees: 2, 2, 1, 1.
	return FromEdges(3, 4, []Edge{
		{0, 0}, {0, 1}, {0, 2}, {0, 3},
		{1, 0}, {2, 1},
	})
}

func TestProfileValues(t *testing.T) {
	g := profGraph(t)
	p := g.Profile()
	if p.NumV1 != 3 || p.NumV2 != 4 || p.NumEdges != 6 {
		t.Fatalf("sizes wrong: %+v", p)
	}
	if p.MaxDegV1 != 4 || p.MaxDegV2 != 2 {
		t.Fatalf("max degrees wrong: %+v", p)
	}
	if p.MeanDegV1 != 2 || p.MeanDegV2 != 1.5 {
		t.Fatalf("mean degrees wrong: %+v", p)
	}
	if p.SkewV1 != 2 || p.SkewV2 != 2/1.5 {
		t.Fatalf("skew wrong: %+v", p)
	}
	w, m, mean, skew := p.Side(true)
	if w != 3 || m != 4 || mean != 2 || skew != 2 {
		t.Fatalf("Side(V1) wrong: %d %d %g %g", w, m, mean, skew)
	}
	w, m, _, _ = p.Side(false)
	if w != 4 || m != 2 {
		t.Fatalf("Side(V2) wrong: %d %d", w, m)
	}
	if !strings.Contains(p.String(), "maxdeg=4") {
		t.Fatalf("String: %s", p.String())
	}
}

func TestProfileEmptyGraph(t *testing.T) {
	p := FromEdges(0, 0, nil).Profile()
	if p.MaxDegV1 != 0 || p.MeanDegV1 != 0 || p.SkewV1 != 0 {
		t.Fatalf("empty profile: %+v", p)
	}
}

// TestProfileConcurrent hammers the lazy cache from many goroutines;
// run under -race in CI.
func TestProfileConcurrent(t *testing.T) {
	g := profGraph(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if g.Profile().MaxDegV1 != 4 {
					t.Error("profile corrupted")
					return
				}
				h, _, _ := g.DegreeOrdered()
				if h.NumEdges() != g.NumEdges() {
					t.Error("relayout lost edges")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestDegreeOrderedStructure(t *testing.T) {
	g := profGraph(t)
	h, p1, p2 := g.DegreeOrdered()
	// Descending degree per side.
	for u := 1; u < h.NumV1(); u++ {
		if h.DegreeV1(u) > h.DegreeV1(u-1) {
			t.Fatalf("V1 not degree-descending at %d", u)
		}
	}
	for v := 1; v < h.NumV2(); v++ {
		if h.DegreeV2(v) > h.DegreeV2(v-1) {
			t.Fatalf("V2 not degree-descending at %d", v)
		}
	}
	// Permutations translate back: edge (pu, pv) of g iff (u, v) of h.
	for u := 0; u < h.NumV1(); u++ {
		for _, v := range h.NeighborsOfV1(u) {
			if !g.HasEdge(int(p1[u]), int(p2[v])) {
				t.Fatalf("edge (%d,%d) of twin missing in original", u, v)
			}
		}
	}
	if h.NumEdges() != g.NumEdges() {
		t.Fatal("edge count changed")
	}
	// Cached: same twin object on repeat calls.
	h2, _, _ := g.DegreeOrdered()
	if h2 != h {
		t.Fatal("DegreeOrdered not cached")
	}
	// The original graph is untouched (public ids preserved).
	if !g.HasEdge(0, 3) || g.DegreeV1(0) != 4 {
		t.Fatal("original graph mutated by relayout")
	}
}
