package graph

import (
	"fmt"
	"sync/atomic"
)

// DegreeProfile is the cheap shape summary the adaptive execution
// policies read: per-side vertex counts, max and mean degrees, and the
// degree skew (max/mean). It is computed from the CSR row pointers in
// one O(|V1|+|V2|) pass — no edge traversal — and cached on the graph,
// so every policy decision after the first is a pointer load.
//
// Skew is the hub indicator: a side whose heaviest vertex carries many
// times the mean degree concentrates wedge work (and accumulator
// traffic) on few ids, which is what the aggregation-mode chooser and
// the degree-ordered relayout key off.
type DegreeProfile struct {
	NumV1, NumV2       int
	NumEdges           int64
	MaxDegV1, MaxDegV2 int
	MeanDegV1          float64
	MeanDegV2          float64
	SkewV1, SkewV2     float64
}

// Side returns the profile of one side as (width, maxDeg, meanDeg,
// skew), where width is the number of vertices on that side. sideV1
// selects V1.
func (p DegreeProfile) Side(sideV1 bool) (width, maxDeg int, meanDeg, skew float64) {
	if sideV1 {
		return p.NumV1, p.MaxDegV1, p.MeanDegV1, p.SkewV1
	}
	return p.NumV2, p.MaxDegV2, p.MeanDegV2, p.SkewV2
}

// String renders the profile in a compact one-line form.
func (p DegreeProfile) String() string {
	return fmt.Sprintf("profile(|V1|=%d maxdeg=%d mean=%.2f skew=%.1f, |V2|=%d maxdeg=%d mean=%.2f skew=%.1f)",
		p.NumV1, p.MaxDegV1, p.MeanDegV1, p.SkewV1,
		p.NumV2, p.MaxDegV2, p.MeanDegV2, p.SkewV2)
}

// computeProfile derives the profile from the row-pointer arrays only.
func computeProfile(g *Bipartite) *DegreeProfile {
	p := &DegreeProfile{
		NumV1:    g.NumV1(),
		NumV2:    g.NumV2(),
		NumEdges: g.NumEdges(),
	}
	for u := 0; u < p.NumV1; u++ {
		if d := g.adj.RowDeg(u); d > p.MaxDegV1 {
			p.MaxDegV1 = d
		}
	}
	for v := 0; v < p.NumV2; v++ {
		if d := g.adjT.RowDeg(v); d > p.MaxDegV2 {
			p.MaxDegV2 = d
		}
	}
	if p.NumV1 > 0 {
		p.MeanDegV1 = float64(p.NumEdges) / float64(p.NumV1)
	}
	if p.NumV2 > 0 {
		p.MeanDegV2 = float64(p.NumEdges) / float64(p.NumV2)
	}
	if p.MeanDegV1 > 0 {
		p.SkewV1 = float64(p.MaxDegV1) / p.MeanDegV1
	}
	if p.MeanDegV2 > 0 {
		p.SkewV2 = float64(p.MaxDegV2) / p.MeanDegV2
	}
	return p
}

// Profile returns the graph's degree profile, computing it on first use
// and caching it for the graph's lifetime (the graph is immutable, so
// the profile never invalidates). Safe for concurrent use; a race on
// first use computes the identical value twice and one copy wins.
func (g *Bipartite) Profile() DegreeProfile {
	if p := g.prof.Load(); p != nil {
		return *p
	}
	p := computeProfile(g)
	g.prof.CompareAndSwap(nil, p)
	return *g.prof.Load()
}

// relayout bundles the cached degree-ordered twin with the permutations
// that translate between the public and relayouted id spaces.
type relayout struct {
	g *Bipartite
	// permV1[newID] = oldID, and likewise permV2; see Relabel.
	permV1, permV2 []int32
}

// DegreeOrdered returns the graph relabeled so vertex 0 of each side
// has the largest degree, with the adjacency repacked contiguously in
// the new order — the cache-conscious layout the counting kernels
// stream. The twin is built once per graph (an O(|E|) rebuild) and then
// cached, so repeated counts — serving traffic, -all sweeps, peeling
// oracles — pay only a pointer load. The permutations translate ids:
// permV1[newID] = oldID (and likewise permV2), matching Relabel.
//
// The relayout concentrates two access patterns:
//
//   - wedge accumulation: partner ids of hub wedges collapse into the
//     low indices of the accumulator array, keeping the hot counters in
//     cache no matter how wide the exposed side is;
//   - intersection: hub neighbor lists, the rows every merge touches,
//     pack into the first bytes of the CSR's column array.
//
// Butterfly counts are invariant under relabeling (the paper's
// family-equivalence result), so callers may count on the twin and
// report the result for the original graph unchanged. Per-vertex and
// per-edge outputs must be translated through the permutations; the
// counting core only uses the twin for scalar counts.
//
// Safe for concurrent use; a race on first use builds the twin twice
// and one copy wins.
func (g *Bipartite) DegreeOrdered() (h *Bipartite, permV1, permV2 []int32) {
	if rl := g.degOrd.Load(); rl != nil {
		return rl.g, rl.permV1, rl.permV2
	}
	h, p1, p2 := g.Relabel(OrderDegreeDesc)
	g.degOrd.CompareAndSwap(nil, &relayout{g: h, permV1: p1, permV2: p2})
	rl := g.degOrd.Load()
	return rl.g, rl.permV1, rl.permV2
}

// profCache and degOrdCache are the lazily-populated caches embedded in
// Bipartite. They live in their own struct types so Bipartite's
// composite literals elsewhere in the package need no changes.
type profCache = atomic.Pointer[DegreeProfile]
type degOrdCache = atomic.Pointer[relayout]
