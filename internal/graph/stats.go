package graph

import (
	"fmt"
	"strings"
)

// Stats summarizes a bipartite graph with the quantities the paper's
// Fig 9 reports, plus the degree statistics its Section V analysis
// relies on (partition-size asymmetry, edge sparsity).
type Stats struct {
	NumV1, NumV2 int
	NumEdges     int64
	Density      float64

	MinDegV1, MaxDegV1 int
	MinDegV2, MaxDegV2 int
	AvgDegV1, AvgDegV2 float64

	// WedgesV1 counts wedges whose endpoints lie in V1 (wedge point in
	// V2): Σ_{v∈V2} C(deg(v), 2). WedgesV2 is symmetric. These bound the
	// work of the two algorithm families: invariants 1–4 enumerate
	// WedgesV1, invariants 5–8 enumerate WedgesV2.
	WedgesV1, WedgesV2 int64
}

func binom2(x int64) int64 { return x * (x - 1) / 2 }

// ComputeStats walks the graph once per side.
func ComputeStats(g *Bipartite) Stats {
	s := Stats{
		NumV1:    g.NumV1(),
		NumV2:    g.NumV2(),
		NumEdges: g.NumEdges(),
		Density:  g.Density(),
	}
	if s.NumV1 > 0 {
		s.MinDegV1 = g.DegreeV1(0)
	}
	for u := 0; u < s.NumV1; u++ {
		d := g.DegreeV1(u)
		if d < s.MinDegV1 {
			s.MinDegV1 = d
		}
		if d > s.MaxDegV1 {
			s.MaxDegV1 = d
		}
		s.WedgesV2 += binom2(int64(d))
	}
	if s.NumV2 > 0 {
		s.MinDegV2 = g.DegreeV2(0)
	}
	for v := 0; v < s.NumV2; v++ {
		d := g.DegreeV2(v)
		if d < s.MinDegV2 {
			s.MinDegV2 = d
		}
		if d > s.MaxDegV2 {
			s.MaxDegV2 = d
		}
		s.WedgesV1 += binom2(int64(d))
	}
	if s.NumV1 > 0 {
		s.AvgDegV1 = float64(s.NumEdges) / float64(s.NumV1)
	}
	if s.NumV2 > 0 {
		s.AvgDegV2 = float64(s.NumEdges) / float64(s.NumV2)
	}
	return s
}

// SmallerSideIsV2 reports whether |V2| < |V1| — the condition under
// which the paper recommends the column-partitioned family
// (invariants 1–4).
func (s Stats) SmallerSideIsV2() bool { return s.NumV2 < s.NumV1 }

// String renders the stats in a compact one-line form.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "|V1|=%d |V2|=%d |E|=%d density=%.3g", s.NumV1, s.NumV2, s.NumEdges, s.Density)
	fmt.Fprintf(&sb, " degV1=[%d,%d] avg %.2f", s.MinDegV1, s.MaxDegV1, s.AvgDegV1)
	fmt.Fprintf(&sb, " degV2=[%d,%d] avg %.2f", s.MinDegV2, s.MaxDegV2, s.AvgDegV2)
	fmt.Fprintf(&sb, " wedges(V1-endpoints)=%d wedges(V2-endpoints)=%d", s.WedgesV1, s.WedgesV2)
	return sb.String()
}
