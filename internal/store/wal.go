package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// FsyncPolicy selects when WAL appends are flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs before an append is acknowledged. Group
	// commit batches concurrent appends under one fsync, so the cost
	// amortizes under load. No acked mutation is ever lost.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs on a background ticker (Options.
	// FsyncInterval). A crash can lose at most one flush window of
	// acked mutations; an OS crash is required — a dead process alone
	// loses nothing, since appends always reach the page cache.
	FsyncInterval
	// FsyncNever leaves flushing to the OS (and Close). Fastest;
	// recovery still never serves a corrupt graph, it just may rewind
	// further.
	FsyncNever
)

// ParseFsyncPolicy maps the -fsync flag values onto policies.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("store: unknown fsync policy %q (want always|interval|never)", s)
	}
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// WAL record types.
const (
	recRegister = 1 // full edge set enters the registry (replace included)
	recMutate   = 2 // one batch: inserts then deletes, with post-state stamps
	recDrop     = 3 // graph leaves the registry
)

// maxRecordLen rejects absurd record length prefixes during scans.
const maxRecordLen = 1 << 30

// Record is one logical WAL entry. Which fields are meaningful
// depends on Type:
//
//	register: Name, Version (1), M, N, Count, Edges (the full set)
//	mutate:   Name, Version (post-batch), Inserts, Deletes,
//	          Count and NumEdges (post-batch cross-check stamps)
//	drop:     Name
type Record struct {
	Type    byte
	Name    string
	Version uint64

	M, N  int
	Edges [][2]int

	Inserts, Deletes [][2]int

	Count    int64
	NumEdges int64
}

func (r *Record) marshal() ([]byte, error) {
	var e encoder
	e.str(r.Name)
	e.uvarint(r.Version)
	switch r.Type {
	case recRegister:
		e.uvarint(uint64(r.M))
		e.uvarint(uint64(r.N))
		e.uvarint(uint64(r.Count))
		e.sortedPairs(r.Edges)
	case recMutate:
		e.uvarint(uint64(r.Count))
		e.uvarint(uint64(r.NumEdges))
		e.pairs(r.Inserts)
		e.pairs(r.Deletes)
	case recDrop:
	default:
		return nil, fmt.Errorf("store: unknown record type %d", r.Type)
	}
	return e.buf, nil
}

func unmarshalRecord(typ byte, payload []byte) (*Record, error) {
	d := decoder{buf: payload}
	r := &Record{Type: typ, Name: d.str(), Version: d.uvarint()}
	switch typ {
	case recRegister:
		r.M = d.intv()
		r.N = d.intv()
		r.Count = int64(d.uvarint())
		r.Edges = d.sortedPairs()
	case recMutate:
		r.Count = int64(d.uvarint())
		r.NumEdges = int64(d.uvarint())
		r.Inserts = d.pairs()
		r.Deletes = d.pairs()
	case recDrop:
	default:
		return nil, fmt.Errorf("store: unknown record type %d", typ)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("store: record has %d trailing bytes", d.remaining())
	}
	if r.Name == "" {
		return nil, fmt.Errorf("store: record missing graph name")
	}
	return r, nil
}

// WAL is the append-only mutation log. Appends are safe for
// concurrent use; under FsyncAlways, concurrent appenders share
// fsyncs through leader-based group commit.
type WAL struct {
	policy FsyncPolicy

	mu sync.Mutex // serializes writes to f
	f  *os.File

	size atomic.Int64  // current file length
	seq  atomic.Uint64 // records written (monotonic)

	// syncFn performs the flush; swapped by tests to count and fault-
	// inject fsyncs.
	syncFn func() error

	gc struct {
		mu     sync.Mutex
		cond   *sync.Cond
		synced uint64 // highest seq known durable
		leader bool   // an fsync is in flight
		err    error  // sticky: a failed fsync poisons the WAL
		syncs  uint64 // completed fsyncs (group-commit observability)
	}

	stopFlusher chan struct{}
	flusherDone chan struct{}
	closed      bool
}

// openWAL opens (creating if needed) the log at path for appending.
func openWAL(path string, policy FsyncPolicy, interval time.Duration) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &WAL{policy: policy, f: f}
	w.size.Store(st.Size())
	w.syncFn = f.Sync
	w.gc.cond = sync.NewCond(&w.gc.mu)
	if policy == FsyncInterval {
		if interval <= 0 {
			interval = 100 * time.Millisecond
		}
		w.stopFlusher = make(chan struct{})
		w.flusherDone = make(chan struct{})
		go w.flushLoop(interval)
	}
	return w, nil
}

func (w *WAL) flushLoop(interval time.Duration) {
	defer close(w.flusherDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = w.Sync()
		case <-w.stopFlusher:
			return
		}
	}
}

// Append frames, checksums and writes rec, honoring the fsync policy
// before acknowledging. The returned error is fatal for the WAL when
// it stems from a failed write or fsync (the log may be torn past the
// last durable record).
func (w *WAL) Append(rec *Record) error {
	payload, err := rec.marshal()
	if err != nil {
		return err
	}
	frame := make([]byte, 0, 5+len(payload)+4)
	frame = append(frame, rec.Type)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	crc := crc32.Update(0, castagnoli, frame)
	frame = binary.LittleEndian.AppendUint32(frame, crc)

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("store: append to closed WAL")
	}
	if err := w.gcErr(); err != nil {
		// A past fsync failure means durability promises can no longer
		// be kept; refuse further appends.
		w.mu.Unlock()
		return err
	}
	n, err := w.f.Write(frame)
	w.size.Add(int64(n))
	if err != nil {
		w.mu.Unlock()
		return fmt.Errorf("store: wal append: %w", err)
	}
	seq := w.seq.Add(1)
	w.mu.Unlock()

	if w.policy != FsyncAlways {
		return nil
	}
	return w.commitWait(seq)
}

func (w *WAL) gcErr() error {
	w.gc.mu.Lock()
	defer w.gc.mu.Unlock()
	return w.gc.err
}

// commitWait blocks until every record up to seq is durable,
// participating in leader-based group commit: the first waiter becomes
// leader and fsyncs once on behalf of everything written so far;
// followers just wait for a covering sync. One fsync therefore commits
// a whole flush window of concurrent appends.
func (w *WAL) commitWait(seq uint64) error {
	g := &w.gc
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if g.err != nil {
			return g.err
		}
		if g.synced >= seq {
			return nil
		}
		if g.leader {
			g.cond.Wait()
			continue
		}
		g.leader = true
		// Everything written before this point is covered by the
		// coming fsync; our own record is, since its write completed
		// before commitWait was called.
		covered := w.seq.Load()
		g.mu.Unlock()
		err := w.syncFn()
		g.mu.Lock()
		g.leader = false
		g.syncs++
		if err != nil {
			g.err = fmt.Errorf("store: wal fsync: %w", err)
		} else if covered > g.synced {
			g.synced = covered
		}
		g.cond.Broadcast()
	}
}

// Sync flushes the log to stable storage regardless of policy.
func (w *WAL) Sync() error {
	w.gc.mu.Lock()
	if w.gc.err != nil {
		defer w.gc.mu.Unlock()
		return w.gc.err
	}
	w.gc.mu.Unlock()
	covered := w.seq.Load()
	err := w.syncFn()
	w.gc.mu.Lock()
	defer w.gc.mu.Unlock()
	w.gc.syncs++
	if err != nil {
		w.gc.err = fmt.Errorf("store: wal fsync: %w", err)
		w.gc.cond.Broadcast()
		return w.gc.err
	}
	if covered > w.gc.synced {
		w.gc.synced = covered
	}
	w.gc.cond.Broadcast()
	return nil
}

// Size returns the current log length in bytes.
func (w *WAL) Size() int64 { return w.size.Load() }

// Syncs returns the number of completed fsyncs (for group-commit
// observability and tests).
func (w *WAL) Syncs() uint64 {
	w.gc.mu.Lock()
	defer w.gc.mu.Unlock()
	return w.gc.syncs
}

// Truncate empties the log after a checkpoint has made its contents
// redundant. Callers must exclude concurrent appends.
func (w *WAL) Truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: wal truncate: %w", err)
	}
	if err := w.syncFn(); err != nil {
		return fmt.Errorf("store: wal truncate fsync: %w", err)
	}
	w.size.Store(0)
	return nil
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	if w.stopFlusher != nil {
		close(w.stopFlusher)
		<-w.flusherDone
	}
	syncErr := w.syncFn()
	closeErr := w.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// scanWAL reads records from r until clean EOF or the first sign of
// corruption: a torn frame, a short payload, an unknown type, an
// absurd length, or a checksum mismatch. It returns the decoded
// records, the byte length of the valid prefix, and — when the scan
// stopped early — the reason (nil for a clean end). Everything at and
// beyond validLen is untrustworthy and must be truncated before the
// log is appended to again.
func scanWAL(r io.Reader) (recs []*Record, validLen int64, reason error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var off int64
	for {
		var hdr [5]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return recs, off, nil // clean end
			}
			return recs, off, fmt.Errorf("torn record header at offset %d", off)
		}
		typ := hdr[0]
		if typ != recRegister && typ != recMutate && typ != recDrop {
			return recs, off, fmt.Errorf("unknown record type %d at offset %d", typ, off)
		}
		n := binary.LittleEndian.Uint32(hdr[1:])
		if n > maxRecordLen {
			return recs, off, fmt.Errorf("record length %d at offset %d exceeds limit", n, off)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return recs, off, fmt.Errorf("short record payload at offset %d", off)
		}
		var tail [4]byte
		if _, err := io.ReadFull(br, tail[:]); err != nil {
			return recs, off, fmt.Errorf("record at offset %d missing checksum", off)
		}
		crc := crc32.Update(0, castagnoli, hdr[:])
		crc = crc32.Update(crc, castagnoli, payload)
		if got := binary.LittleEndian.Uint32(tail[:]); got != crc {
			return recs, off, fmt.Errorf("record checksum mismatch at offset %d", off)
		}
		rec, err := unmarshalRecord(typ, payload)
		if err != nil {
			return recs, off, fmt.Errorf("record at offset %d: %w", off, err)
		}
		recs = append(recs, rec)
		off += int64(len(hdr)) + int64(n) + int64(len(tail))
	}
}
