package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"butterfly"
)

// Options tunes a Store. The zero value is a production-safe default:
// fsync on every acknowledged mutation, checkpoint when the WAL
// passes 64 MiB.
type Options struct {
	// Fsync selects the WAL flush policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the background flush period under
	// FsyncInterval; ≤ 0 means 100ms.
	FsyncInterval time.Duration
	// CheckpointBytes is the WAL size past which ShouldCheckpoint
	// reports true; 0 means 64 MiB, < 0 disables size-triggered
	// checkpoints.
	CheckpointBytes int64
	// Logf, when non-nil, receives recovery and checkpoint notices
	// (wired to log.Printf in the daemon).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = 64 << 20
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Store is the durable graph store: one WAL plus a directory of
// per-graph snapshots under a single data directory.
//
//	<dir>/wal.log
//	<dir>/snapshots/<name>.v<version>.snap
//
// Log* appends may run concurrently (group commit batches their
// fsyncs); Checkpoint excludes appends for its duration so the
// snapshot set plus the truncated log always covers every
// acknowledged mutation.
type Store struct {
	dir  string
	opts Options

	// mu is the append/checkpoint exclusion: appends hold it read,
	// checkpoint holds it write. Lock order: registry locks → mu.
	mu  sync.RWMutex
	wal *WAL

	checkpoints atomic.Uint64
	closed      atomic.Bool
}

// Recovered describes one graph reconstructed by Open: its authority
// counter (ready to adopt into the serve registry), the version it
// reached, and how it was rebuilt.
type Recovered struct {
	Name    string
	Version uint64
	// Counter is the replayed authority; Counter.Count() has been
	// cross-checked against the stored stamps.
	Counter *butterfly.DynamicCounter
	Count   int64
	// Source is "snapshot", "wal", or "snapshot+wal".
	Source string
	// Replayed is the number of WAL mutation batches applied on top of
	// the snapshot (or register record).
	Replayed int
}

const walFileName = "wal.log"

// Open attaches to (creating if needed) the data directory, runs
// crash recovery, truncates any torn WAL tail, and returns the store
// ready for appends plus every recovered graph.
//
// Physical tail corruption — a torn, short or checksum-failing record,
// exactly what a crash mid-write produces — is tolerated: the log is
// truncated at the last valid record and recovery proceeds. Logical
// corruption (a replayed count disagreeing with a stored stamp, a
// version gap, a mutation for an unknown graph) means the directory
// cannot be trusted to reproduce the acknowledged state, so Open
// refuses it rather than serve a corrupt graph.
func Open(dir string, opts Options) (*Store, []Recovered, error) {
	opts = opts.withDefaults()
	snapDir := filepath.Join(dir, "snapshots")
	if err := os.MkdirAll(snapDir, 0o755); err != nil {
		return nil, nil, err
	}

	recovered, err := recoverDir(dir, opts.Logf)
	if err != nil {
		return nil, nil, err
	}

	wal, err := openWAL(filepath.Join(dir, walFileName), opts.Fsync, opts.FsyncInterval)
	if err != nil {
		return nil, nil, err
	}
	return &Store{dir: dir, opts: opts, wal: wal}, recovered, nil
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// WALSize returns the current WAL length in bytes.
func (s *Store) WALSize() int64 { return s.wal.Size() }

// WALSyncs returns the number of completed WAL fsyncs.
func (s *Store) WALSyncs() uint64 { return s.wal.Syncs() }

// Checkpoints returns the number of completed checkpoints.
func (s *Store) Checkpoints() uint64 { return s.checkpoints.Load() }

// FsyncPolicy returns the configured flush policy.
func (s *Store) FsyncPolicy() FsyncPolicy { return s.opts.Fsync }

// ShouldCheckpoint reports whether the WAL has outgrown the
// configured threshold.
func (s *Store) ShouldCheckpoint() bool {
	return s.opts.CheckpointBytes > 0 && s.wal.Size() >= s.opts.CheckpointBytes
}

// append writes one record under the shared (append-side) lock.
func (s *Store) append(rec *Record) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed.Load() {
		return fmt.Errorf("store: closed")
	}
	return s.wal.Append(rec)
}

// LogRegister records a graph (re)entering the registry with its full
// edge set, initial count, and version 1. It must be acknowledged
// before the registration is published.
func (s *Store) LogRegister(name string, version uint64, g *butterfly.Graph, count int64) error {
	return s.append(&Record{
		Type:    recRegister,
		Name:    name,
		Version: version,
		M:       g.NumV1(),
		N:       g.NumV2(),
		Count:   count,
		Edges:   g.Edges(),
	})
}

// LogMutate records one applied mutation batch together with its
// post-state stamps (version, count, edge count) — replay cross-checks
// against them. It must be acknowledged before the new snapshot is
// published.
func (s *Store) LogMutate(name string, version uint64, inserts, deletes [][2]int, count, edges int64) error {
	return s.append(&Record{
		Type:     recMutate,
		Name:     name,
		Version:  version,
		Inserts:  inserts,
		Deletes:  deletes,
		Count:    count,
		NumEdges: edges,
	})
}

// LogDrop records a graph leaving the registry.
func (s *Store) LogDrop(name string) error {
	return s.append(&Record{Type: recDrop, Name: name, Version: 0})
}

// GraphState is one graph's published state handed to Checkpoint.
type GraphState struct {
	Name    string
	Version uint64
	Graph   *butterfly.Graph
	Count   int64
}

// CheckpointStats summarizes one checkpoint.
type CheckpointStats struct {
	Graphs         int
	WALBytesBefore int64
	WALBytesAfter  int64
	Elapsed        time.Duration
}

// Checkpoint makes states durable as snapshot files, then compacts:
// truncates the WAL (every record is now covered by a snapshot) and
// deletes stale snapshot generations and snapshots of dropped graphs.
//
// The caller must guarantee states is consistent with every
// acknowledged append — i.e. no mutation may be in flight between its
// WAL append and its registry publish while Checkpoint runs. The
// serve registry enforces this by holding its write locks across the
// call; Checkpoint additionally excludes new appends itself.
//
// Durability ordering: snapshots are fsynced into place before the
// WAL is truncated, and stale files are removed only after the
// truncate — a crash at any point leaves a directory that still
// recovers to the same state.
func (s *Store) Checkpoint(states []GraphState) (CheckpointStats, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return CheckpointStats{}, fmt.Errorf("store: closed")
	}

	stats := CheckpointStats{Graphs: len(states), WALBytesBefore: s.wal.Size()}
	snapDir := filepath.Join(s.dir, "snapshots")
	keep := make(map[string]bool, len(states))
	for _, st := range states {
		file := snapshotFileName(st.Name, st.Version)
		keep[file] = true
		sd := &SnapshotData{
			Name:    st.Name,
			Version: st.Version,
			M:       st.Graph.NumV1(),
			N:       st.Graph.NumV2(),
			Count:   st.Count,
			Edges:   st.Graph.Edges(),
		}
		if err := WriteSnapshotFile(filepath.Join(snapDir, file), sd); err != nil {
			return stats, fmt.Errorf("store: checkpoint %q: %w", st.Name, err)
		}
	}

	if err := s.wal.Truncate(); err != nil {
		return stats, err
	}
	stats.WALBytesAfter = s.wal.Size()

	// Log compaction epilogue: drop everything the new snapshot set
	// supersedes — older generations, dropped graphs, stray temp files
	// from interrupted writes.
	entries, err := os.ReadDir(snapDir)
	if err != nil {
		return stats, err
	}
	for _, ent := range entries {
		name := ent.Name()
		if keep[name] {
			continue
		}
		if strings.HasSuffix(name, ".snap") || strings.HasPrefix(name, ".tmp-snap-") {
			if err := os.Remove(filepath.Join(snapDir, name)); err != nil {
				s.opts.Logf("store: checkpoint gc %s: %v", name, err)
			}
		}
	}

	s.checkpoints.Add(1)
	stats.Elapsed = time.Since(start)
	s.opts.Logf("store: checkpoint: %d graph(s), wal %d → %d bytes (%.3fs)",
		stats.Graphs, stats.WALBytesBefore, stats.WALBytesAfter, stats.Elapsed.Seconds())
	return stats, nil
}

// Close flushes and closes the WAL. Appends after Close fail.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Close()
}

// --- recovery ---

// recState is one graph's in-flight recovery state.
type recState struct {
	dyn      *butterfly.DynamicCounter
	version  uint64
	source   string
	replayed int
}

// recoverDir rebuilds every graph from dir's snapshots + WAL and
// truncates any torn WAL tail. See Open for the corruption policy.
func recoverDir(dir string, logf func(string, ...any)) ([]Recovered, error) {
	snapDir := filepath.Join(dir, "snapshots")
	states := make(map[string]*recState)

	// 1. Newest valid snapshot per graph. Validity is layered: file
	// checksums first, then the rebuilt counter's count must equal the
	// stored stamp (the count is recomputed edge-by-edge through the
	// dynamic update rule, so this cross-checks codec and counter
	// against each other).
	byName, err := loadSnapshotCandidates(snapDir, logf)
	if err != nil {
		return nil, err
	}
	for name, cands := range byName {
		for _, sd := range cands { // sorted newest first
			g, err := butterfly.FromEdges(sd.M, sd.N, sd.Edges)
			if err != nil {
				logf("store: recovery: snapshot %s v%d: bad edge set: %v (trying older)", name, sd.Version, err)
				continue
			}
			dyn := butterfly.NewDynamicCounterFromGraph(g)
			if dyn.Count() != sd.Count {
				logf("store: recovery: snapshot %s v%d: stored count %d != recomputed %d (trying older)",
					name, sd.Version, sd.Count, dyn.Count())
				continue
			}
			states[name] = &recState{dyn: dyn, version: sd.Version, source: "snapshot"}
			break
		}
	}

	// 2. Scan the WAL's valid prefix and truncate the rest.
	walPath := filepath.Join(dir, walFileName)
	var recs []*Record
	if f, err := os.Open(walPath); err == nil {
		var validLen int64
		var reason error
		recs, validLen, reason = scanWAL(f)
		st, statErr := f.Stat()
		f.Close()
		if statErr != nil {
			return nil, statErr
		}
		if reason != nil || validLen < st.Size() {
			logf("store: recovery: wal %s: %d of %d bytes valid (%v); truncating tail",
				walPath, validLen, st.Size(), reason)
			if err := truncateFile(walPath, validLen); err != nil {
				return nil, fmt.Errorf("store: truncating torn wal tail: %w", err)
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	// 3. Replay. A register record always rebuilds the graph from the
	// record — never trust a same-named snapshot over it, because the
	// record may be a replace-registration that supersedes the
	// checkpointed graph. This is always correct: checkpoints truncate
	// whole histories, so any register record still in the WAL is
	// followed there by every subsequent batch for that graph (an
	// interrupted checkpoint merely means the rebuild re-derives what
	// the snapshot already knew). Mutations at or below the current
	// version are already inside the snapshot and are skipped; each
	// applied batch must land exactly on the record's post-state
	// stamps.
	for i, rec := range recs {
		switch rec.Type {
		case recRegister:
			g, err := butterfly.FromEdges(rec.M, rec.N, rec.Edges)
			if err != nil {
				return nil, fmt.Errorf("store: wal record %d: register %q: %w", i, rec.Name, err)
			}
			dyn := butterfly.NewDynamicCounterFromGraph(g)
			if dyn.Count() != rec.Count {
				return nil, fmt.Errorf("store: wal record %d: register %q stamps count %d, replay computed %d",
					i, rec.Name, rec.Count, dyn.Count())
			}
			states[rec.Name] = &recState{dyn: dyn, version: rec.Version, source: "wal"}
		case recMutate:
			st, ok := states[rec.Name]
			if !ok {
				return nil, fmt.Errorf("store: wal record %d: mutation for unknown graph %q", i, rec.Name)
			}
			if rec.Version <= st.version {
				continue // already inside the snapshot
			}
			if rec.Version != st.version+1 {
				return nil, fmt.Errorf("store: wal record %d: %q version gap: have v%d, record is v%d",
					i, rec.Name, st.version, rec.Version)
			}
			for _, p := range rec.Inserts {
				if _, _, err := st.dyn.InsertEdge(p[0], p[1]); err != nil {
					return nil, fmt.Errorf("store: wal record %d: %q: %w", i, rec.Name, err)
				}
			}
			for _, p := range rec.Deletes {
				if _, _, err := st.dyn.DeleteEdge(p[0], p[1]); err != nil {
					return nil, fmt.Errorf("store: wal record %d: %q: %w", i, rec.Name, err)
				}
			}
			if st.dyn.Count() != rec.Count || st.dyn.NumEdges() != rec.NumEdges {
				return nil, fmt.Errorf("store: wal record %d: %q v%d: stamps (count=%d, edges=%d), replay reached (count=%d, edges=%d)",
					i, rec.Name, rec.Version, rec.Count, rec.NumEdges, st.dyn.Count(), st.dyn.NumEdges())
			}
			st.version = rec.Version
			st.replayed++
			if st.source == "snapshot" {
				st.source = "snapshot+wal"
			}
		case recDrop:
			if _, ok := states[rec.Name]; !ok {
				logf("store: recovery: wal record %d drops unknown graph %q (ignored)", i, rec.Name)
				continue
			}
			delete(states, rec.Name)
		}
	}

	names := make([]string, 0, len(states))
	for n := range states {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Recovered, 0, len(names))
	for _, n := range names {
		st := states[n]
		out = append(out, Recovered{
			Name:     n,
			Version:  st.version,
			Counter:  st.dyn,
			Count:    st.dyn.Count(),
			Source:   st.source,
			Replayed: st.replayed,
		})
	}
	return out, nil
}

// loadSnapshotCandidates reads every *.snap file, groups the valid
// ones by graph name (the header is authoritative, never the file
// name), newest version first. Corrupt files are logged and left in
// place for forensics; checkpoint GC removes them eventually.
func loadSnapshotCandidates(snapDir string, logf func(string, ...any)) (map[string][]*SnapshotData, error) {
	entries, err := os.ReadDir(snapDir)
	if err != nil {
		return nil, err
	}
	byName := make(map[string][]*SnapshotData)
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".snap") {
			continue
		}
		sd, err := ReadSnapshotFile(filepath.Join(snapDir, ent.Name()))
		if err != nil {
			logf("store: recovery: invalid snapshot %s: %v", ent.Name(), err)
			continue
		}
		byName[sd.Name] = append(byName[sd.Name], sd)
	}
	for _, cands := range byName {
		sort.Slice(cands, func(i, j int) bool { return cands[i].Version > cands[j].Version })
	}
	return byName, nil
}

// truncateFile cuts path to n bytes and fsyncs the result.
func truncateFile(path string, n int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(n); err != nil {
		return err
	}
	return f.Sync()
}
