package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func walRecords(t *testing.T) []*Record {
	t.Helper()
	return []*Record{
		{Type: recRegister, Name: "g", Version: 1, M: 4, N: 4, Count: 1,
			Edges: [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}},
		{Type: recMutate, Name: "g", Version: 2, Count: 3, NumEdges: 6,
			Inserts: [][2]int{{2, 0}, {2, 1}}, Deletes: nil},
		{Type: recMutate, Name: "g", Version: 3, Count: 1, NumEdges: 4,
			Deletes: [][2]int{{2, 0}, {2, 1}}},
		{Type: recDrop, Name: "g"},
		{Type: recRegister, Name: "h", Version: 1, M: 1, N: 2, Count: 0,
			Edges: [][2]int{{0, 0}, {0, 1}}},
	}
}

func appendAll(t *testing.T, w *WAL, recs []*Record) {
	t.Helper()
	for i, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestWALAppendScanRoundTrip(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			w, err := openWAL(path, policy, 5*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			recs := walRecords(t)
			appendAll(t, w, recs)
			if w.Size() <= 0 {
				t.Fatal("wal size not tracked")
			}
			if err := w.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			got, validLen, reason := scanWAL(f)
			if reason != nil {
				t.Fatalf("clean log scanned dirty: %v", reason)
			}
			st, _ := f.Stat()
			if validLen != st.Size() {
				t.Fatalf("validLen %d != file size %d", validLen, st.Size())
			}
			if len(got) != len(recs) {
				t.Fatalf("scanned %d records, want %d", len(got), len(recs))
			}
			for i := range recs {
				want := *recs[i]
				// Register edge sets round-trip as sets (delta coding
				// sorts); these are already sorted.
				if !reflect.DeepEqual(normalizeRec(got[i]), normalizeRec(&want)) {
					t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], &want)
				}
			}
		})
	}
}

func normalizeRec(r *Record) Record {
	c := *r
	if len(c.Edges) == 0 {
		c.Edges = nil
	}
	if len(c.Inserts) == 0 {
		c.Inserts = nil
	}
	if len(c.Deletes) == 0 {
		c.Deletes = nil
	}
	return c
}

// TestWALGroupCommit holds the first fsync hostage until 8 concurrent
// appenders have all written, then checks the whole window committed
// under at most two fsyncs — the group-commit guarantee that makes
// fsync=always affordable.
func TestWALGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWAL(path, FsyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const writers = 8
	gate := make(chan struct{})
	var gateOnce sync.Once
	var syncs atomic.Int64
	realSync := w.syncFn
	w.syncFn = func() error {
		n := syncs.Add(1)
		if n == 1 {
			gateOnce.Do(func() {}) // first sync reached
			<-gate                 // stall until every writer has appended
		}
		return realSync()
	}

	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Append(&Record{Type: recDrop, Name: "g"})
		}(i)
	}
	// Wait until all 8 records are written to the file (the appends
	// block afterwards, in commitWait), then release the leader.
	deadline := time.Now().Add(10 * time.Second)
	for w.seq.Load() < writers {
		if time.Now().After(deadline) {
			t.Fatal("appenders never all wrote")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if n := syncs.Load(); n < 1 || n > 2 {
		t.Fatalf("%d appends took %d fsyncs, want 1-2 (group commit broken)", writers, n)
	}
}

// TestWALFsyncErrorIsSticky checks that one failed fsync poisons the
// WAL: the failing append errors and so does every later one — the
// log can no longer keep its durability promise.
func TestWALFsyncErrorIsSticky(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWAL(path, FsyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	fail := true
	w.syncFn = func() error {
		if fail {
			return boom
		}
		return nil
	}
	if err := w.Append(&Record{Type: recDrop, Name: "g"}); !errors.Is(err, boom) {
		t.Fatalf("append after failed fsync = %v, want %v", err, boom)
	}
	fail = false // even a healed disk must not revive the log
	if err := w.Append(&Record{Type: recDrop, Name: "g"}); !errors.Is(err, boom) {
		t.Fatalf("append after poisoned WAL = %v, want sticky %v", err, boom)
	}
}

// TestScanWALTornTail truncates a valid log at every byte boundary of
// its final record; the scan must always surface exactly the earlier
// records and report the torn tail.
func TestScanWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWAL(path, FsyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := walRecords(t)
	appendAll(t, w, recs[:len(recs)-1])
	cut := w.Size() // offset where the last record starts
	appendAll(t, w, recs[len(recs)-1:])
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Cutting exactly at the record boundary is not a torn log: it is
	// simply a shorter clean log.
	if _, validLen, reason := scanWAL(bytes.NewReader(full[:cut])); reason != nil || validLen != cut {
		t.Fatalf("boundary cut: validLen %d reason %v, want %d <nil>", validLen, reason, cut)
	}
	for n := cut + 1; n < int64(len(full)); n++ {
		got, validLen, reason := scanWAL(bytes.NewReader(full[:n]))
		if reason == nil {
			t.Fatalf("torn log (cut at %d of %d) scanned clean", n, len(full))
		}
		if validLen != cut {
			t.Fatalf("cut at %d: validLen %d, want %d", n, validLen, cut)
		}
		if len(got) != len(recs)-1 {
			t.Fatalf("cut at %d: %d records, want %d", n, len(got), len(recs)-1)
		}
	}
}

// TestScanWALFlippedByte flips every byte of a middle record; the
// scan must stop before it (never resynchronize past corruption).
func TestScanWALFlippedByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWAL(path, FsyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := walRecords(t)
	appendAll(t, w, recs[:2])
	start := w.Size()
	appendAll(t, w, recs[2:3])
	end := w.Size()
	appendAll(t, w, recs[3:])
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for i := start; i < end; i++ {
		mutant := bytes.Clone(full)
		mutant[i] ^= 0xA5
		got, validLen, reason := scanWAL(bytes.NewReader(mutant))
		if reason == nil {
			t.Fatalf("flip at %d scanned clean", i)
		}
		if validLen != start {
			t.Fatalf("flip at %d: validLen %d, want %d", i, validLen, start)
		}
		if len(got) != 2 {
			t.Fatalf("flip at %d: %d records survive, want 2", i, len(got))
		}
	}
}

func TestWALTruncateResetsSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWAL(path, FsyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendAll(t, w, walRecords(t))
	if w.Size() == 0 {
		t.Fatal("size zero after appends")
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 {
		t.Fatalf("size %d after truncate, want 0", w.Size())
	}
	// The log must remain appendable after compaction.
	if err := w.Append(&Record{Type: recDrop, Name: "g"}); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	f, _ := os.Open(path)
	defer f.Close()
	got, _, reason := scanWAL(f)
	if reason != nil || len(got) != 1 {
		t.Fatalf("post-truncate log: %d records, reason %v", len(got), reason)
	}
}
