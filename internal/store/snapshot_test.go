package store

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"butterfly"
)

// testEdges returns a deterministic pseudo-random bipartite edge set.
func testEdges(m, n, count int, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]int]bool)
	var edges [][2]int
	for len(edges) < count {
		e := [2]int{rng.Intn(m), rng.Intn(n)}
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	return edges
}

func canonicalEdges(edges [][2]int) [][2]int {
	g, err := butterfly.FromEdges(maxDim(edges, 0)+1, maxDim(edges, 1)+1, edges)
	if err != nil {
		panic(err)
	}
	return g.Edges()
}

func maxDim(edges [][2]int, i int) int {
	m := 0
	for _, e := range edges {
		if e[i] > m {
			m = e[i]
		}
	}
	return m
}

func TestSnapshotRoundTrip(t *testing.T) {
	cases := []*SnapshotData{
		{Name: "empty", Version: 1, M: 3, N: 4, Count: 0, Edges: nil},
		{Name: "single", Version: 2, M: 1, N: 1, Count: 0, Edges: [][2]int{{0, 0}}},
		{Name: "square", Version: 7, M: 2, N: 2, Count: 1,
			Edges: [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}},
		{Name: "weird/name with spaces%and.bytes", Version: 42, M: 50, N: 60, Count: 0,
			Edges: canonicalEdges(testEdges(50, 60, 300, 1))},
	}
	for _, sd := range cases {
		t.Run(sd.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, sd); err != nil {
				t.Fatalf("write: %v", err)
			}
			got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			want := *sd
			want.Edges = canonicalSortedOrNil(sd.Edges)
			got.Edges = canonicalSortedOrNil(got.Edges)
			if !reflect.DeepEqual(got, &want) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, &want)
			}
		})
	}
}

func canonicalSortedOrNil(edges [][2]int) [][2]int {
	if len(edges) == 0 {
		return nil
	}
	return canonicalEdges(edges)
}

// TestSnapshotChunking forces multiple edge sections and checks the
// set survives reassembly.
func TestSnapshotChunking(t *testing.T) {
	m, n := 2000, 2000 // 4M possible pairs >> edges requested below
	edges := canonicalEdges(testEdges(m, n, 3*snapEdgeChunk+17, 2))
	sd := &SnapshotData{Name: "big", Version: 3, M: m, N: n, Count: 0, Edges: edges}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, sd); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(got.Edges, edges) {
		t.Fatalf("chunked edges corrupted: got %d edges, want %d", len(got.Edges), len(edges))
	}
}

// TestSnapshotFlippedByte corrupts every single byte of a snapshot in
// turn; the reader must reject every mutant. This is the codec-level
// guarantee behind "recovery never serves a corrupt graph".
func TestSnapshotFlippedByte(t *testing.T) {
	sd := &SnapshotData{Name: "g", Version: 5, M: 20, N: 20, Count: 9,
		Edges: canonicalEdges(testEdges(20, 20, 60, 3))}
	// Count=9 is deliberately wrong vs the real count — the codec
	// stores what it is told; cross-checking is recovery's job.
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, sd); err != nil {
		t.Fatalf("write: %v", err)
	}
	orig := buf.Bytes()
	for i := range orig {
		mutant := bytes.Clone(orig)
		mutant[i] ^= 0x5A
		if _, err := ReadSnapshot(bytes.NewReader(mutant)); err == nil {
			t.Fatalf("flipped byte %d of %d accepted", i, len(orig))
		}
	}
}

// TestSnapshotTruncated cuts the snapshot at every length; every
// prefix must be rejected.
func TestSnapshotTruncated(t *testing.T) {
	sd := &SnapshotData{Name: "g", Version: 1, M: 4, N: 4, Count: 1,
		Edges: [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 3}}}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, sd); err != nil {
		t.Fatalf("write: %v", err)
	}
	orig := buf.Bytes()
	for i := 0; i < len(orig); i++ {
		if _, err := ReadSnapshot(bytes.NewReader(orig[:i])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", i, len(orig))
		}
	}
}

func TestSnapshotFileAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.v1.snap")
	sd := &SnapshotData{Name: "g", Version: 1, M: 2, N: 2, Count: 1,
		Edges: [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}}
	if err := WriteSnapshotFile(path, sd); err != nil {
		t.Fatalf("write file: %v", err)
	}
	// Overwrite with a new version: the old file must be fully
	// replaced, and no temp litter may remain.
	sd2 := *sd
	sd2.Version = 2
	sd2.Edges = sd.Edges[:3]
	sd2.Count = 0
	if err := WriteSnapshotFile(path, &sd2); err != nil {
		t.Fatalf("rewrite file: %v", err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatalf("read file: %v", err)
	}
	if got.Version != 2 || len(got.Edges) != 3 {
		t.Fatalf("got v%d with %d edges, want v2 with 3", got.Version, len(got.Edges))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-snap-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestSnapshotFileNameInjective(t *testing.T) {
	names := []string{"a", "a%2F", "a/", "a b", "a%20b", "ä", "..", "a.b"}
	seen := make(map[string]string)
	for _, n := range names {
		f := snapshotFileName(n, 1)
		if strings.ContainsAny(f, "/\x00") {
			t.Fatalf("unsafe file name %q for graph %q", f, n)
		}
		if prev, ok := seen[f]; ok {
			t.Fatalf("names %q and %q collide on file %q", prev, n, f)
		}
		seen[f] = n
	}
}

func TestSnapshotRejectsWrongVersionMagic(t *testing.T) {
	sd := &SnapshotData{Name: "g", Version: 1, M: 1, N: 1, Edges: [][2]int{{0, 0}}}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, sd); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[7] = 0x02 // future format version
	_, err := ReadSnapshot(bytes.NewReader(b))
	if err == nil || !strings.Contains(err.Error(), "format version") {
		t.Fatalf("future version accepted or wrong error: %v", err)
	}
}
