package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Snapshot file layout (version 1):
//
//	magic   [8]byte  "BFSNAP\x00\x01"  (format version in the last byte)
//	section*         kind u8 | len u32le | payload | crc u32le
//	end              kind 0xFF | len 0 | crc
//
// The CRC32C covers kind ‖ len ‖ payload, so a flipped byte anywhere
// in a section — including its length prefix — fails verification.
// Sections:
//
//	header (1): name, version, m, n, numEdges, count   (varint payload)
//	edges  (2): uvarint count + delta-coded sorted pairs; large edge
//	            sets are chunked so corruption is localized per chunk
//	end  (255): empty; a snapshot without it is torn and rejected
//
// Writers go through a temp file + fsync + atomic rename + directory
// fsync, so a crash mid-write can never leave a half-snapshot under
// the final name.

var snapMagic = [8]byte{'B', 'F', 'S', 'N', 'A', 'P', 0x00, 0x01}

const (
	secHeader = 1
	secEdges  = 2
	secEnd    = 0xFF

	// snapEdgeChunk bounds edges per section; ~1 MiB of payload per
	// chunk keeps per-section CRC granularity useful on big graphs.
	snapEdgeChunk = 1 << 18

	// maxSectionLen rejects absurd length prefixes before allocating.
	maxSectionLen = 1 << 26
)

// SnapshotData is the logical content of one snapshot file: a graph's
// full edge set at one version plus its exact butterfly count.
type SnapshotData struct {
	Name    string
	Version uint64
	M, N    int
	Count   int64
	Edges   [][2]int
}

// writeSection frames one checksummed section.
func writeSection(w io.Writer, kind byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, hdr[:])
	crc = crc32.Update(crc, castagnoli, payload)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	_, err := w.Write(tail[:])
	return err
}

// readSection reads one section, verifying its checksum.
func readSection(r io.Reader) (kind byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("store: snapshot truncated: missing section header: %w", io.ErrUnexpectedEOF)
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxSectionLen {
		return 0, nil, fmt.Errorf("store: snapshot section length %d exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("store: snapshot truncated mid-section: %w", err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, nil, fmt.Errorf("store: snapshot truncated before checksum: %w", err)
	}
	crc := crc32.Update(0, castagnoli, hdr[:])
	crc = crc32.Update(crc, castagnoli, payload)
	if got := binary.LittleEndian.Uint32(tail[:]); got != crc {
		return 0, nil, fmt.Errorf("store: snapshot section checksum mismatch (stored %08x, computed %08x)", got, crc)
	}
	return hdr[0], payload, nil
}

// WriteSnapshot serializes sd to w in the checksummed binary format.
func WriteSnapshot(w io.Writer, sd *SnapshotData) error {
	if sd.Name == "" {
		return fmt.Errorf("store: snapshot needs a graph name")
	}
	if sd.Count < 0 {
		return fmt.Errorf("store: negative butterfly count %d", sd.Count)
	}
	if _, err := w.Write(snapMagic[:]); err != nil {
		return err
	}

	var h encoder
	h.str(sd.Name)
	h.uvarint(sd.Version)
	h.uvarint(uint64(sd.M))
	h.uvarint(uint64(sd.N))
	h.uvarint(uint64(len(sd.Edges)))
	h.uvarint(uint64(sd.Count))
	if err := writeSection(w, secHeader, h.buf); err != nil {
		return err
	}

	for off := 0; off < len(sd.Edges) || off == 0; off += snapEdgeChunk {
		end := off + snapEdgeChunk
		if end > len(sd.Edges) {
			end = len(sd.Edges)
		}
		var e encoder
		// Chunks are delta-coded independently so a bad chunk does not
		// poison its neighbors' decoding (detection is per-section).
		e.sortedPairs(sd.Edges[off:end])
		if err := writeSection(w, secEdges, e.buf); err != nil {
			return err
		}
		if len(sd.Edges) == 0 {
			break
		}
	}

	return writeSection(w, secEnd, nil)
}

// ReadSnapshot parses and verifies one snapshot stream.
func ReadSnapshot(r io.Reader) (*SnapshotData, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("store: snapshot too short for magic: %w", err)
	}
	if magic != snapMagic {
		if string(magic[:6]) == string(snapMagic[:6]) {
			return nil, fmt.Errorf("store: unsupported snapshot format version %d", magic[7])
		}
		return nil, fmt.Errorf("store: bad snapshot magic %q", magic[:])
	}

	kind, payload, err := readSection(br)
	if err != nil {
		return nil, err
	}
	if kind != secHeader {
		return nil, fmt.Errorf("store: snapshot starts with section kind %d, want header", kind)
	}
	d := decoder{buf: payload}
	sd := &SnapshotData{Name: d.str()}
	sd.Version = d.uvarint()
	sd.M = d.intv()
	sd.N = d.intv()
	numEdges := d.intv()
	sd.Count = int64(d.uvarint())
	if d.err != nil {
		return nil, fmt.Errorf("store: snapshot header: %w", d.err)
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("store: snapshot header has %d trailing bytes", d.remaining())
	}
	if sd.Name == "" || sd.Version == 0 {
		return nil, fmt.Errorf("store: snapshot header missing name or version")
	}

	sd.Edges = make([][2]int, 0, numEdges)
	for {
		kind, payload, err := readSection(br)
		if err != nil {
			return nil, err
		}
		switch kind {
		case secEdges:
			d := decoder{buf: payload}
			chunk := d.sortedPairs()
			if d.err != nil {
				return nil, fmt.Errorf("store: snapshot edges: %w", d.err)
			}
			if d.remaining() != 0 {
				return nil, fmt.Errorf("store: snapshot edge section has %d trailing bytes", d.remaining())
			}
			sd.Edges = append(sd.Edges, chunk...)
		case secEnd:
			if len(sd.Edges) != numEdges {
				return nil, fmt.Errorf("store: snapshot holds %d edges, header promised %d", len(sd.Edges), numEdges)
			}
			return sd, nil
		default:
			return nil, fmt.Errorf("store: unknown snapshot section kind %d", kind)
		}
	}
}

// WriteSnapshotFile writes sd to path atomically: temp file in the
// same directory, fsync, rename into place, fsync the directory. A
// crash at any point leaves either the old file or the new one, never
// a torn hybrid.
func WriteSnapshotFile(path string, sd *SnapshotData) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-snap-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<16)
	if err = WriteSnapshot(bw, sd); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// ReadSnapshotFile reads and verifies the snapshot at path.
func ReadSnapshotFile(path string) (*SnapshotData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sd, err := ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return sd, nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// snapshotFileName maps a graph name and version to a stable file
// name. The graph name is percent-escaped (injective, filesystem-safe:
// only [A-Za-z0-9_-] pass through), but the name inside the header is
// authoritative — recovery never parses file names.
func snapshotFileName(name string, version uint64) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return fmt.Sprintf("%s.v%d.snap", b.String(), version)
}
