// Package store is bfserved's durable storage subsystem: a
// checksummed binary snapshot codec, an append-only mutation WAL with
// group commit, crash recovery, and background checkpointing with log
// compaction.
//
// The durability model is snapshot + log. Each registered graph is
// periodically checkpointed into a CRC32C-checksummed snapshot file
// holding its exact edge set and butterfly count; every mutation batch
// between checkpoints is appended to a single write-ahead log before
// it is published to readers. Recovery loads the newest valid snapshot
// of each graph, replays the WAL tail through a DynamicCounter — the
// same incremental machinery that applied the batches the first time,
// so the replayed count is recomputed by the paper's per-edge support
// update rule, never trusted blindly — and truncates the log at the
// first torn or corrupt record.
//
// Everything on disk is length-prefixed and checksummed with CRC32C
// (Castagnoli), the polynomial with hardware support on amd64/arm64.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// castagnoli is the CRC32C table shared by the snapshot codec and the
// WAL framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encoder builds a varint-packed payload.
type encoder struct{ buf []byte }

func (e *encoder) uvarint(x uint64) { e.buf = binary.AppendUvarint(e.buf, x) }

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// pairs encodes an edge list verbatim (order-preserving), one uvarint
// per endpoint. Used for mutation batches, which are small and whose
// order is part of the record's meaning.
func (e *encoder) pairs(edges [][2]int) {
	e.uvarint(uint64(len(edges)))
	for _, p := range edges {
		e.uvarint(uint64(p[0]))
		e.uvarint(uint64(p[1]))
	}
}

// sortedPairs encodes an edge list delta-compressed: edges are sorted
// row-major (ascending u, then v) and each edge stores (Δu, v) — or
// (0, Δv) within a run of equal u — so neighbor lists cost ~1 byte per
// edge instead of 8–16. Used for full edge sets (snapshots, register
// records), where only the set matters.
func (e *encoder) sortedPairs(edges [][2]int) {
	if !pairsSorted(edges) {
		cp := make([][2]int, len(edges))
		copy(cp, edges)
		sort.Slice(cp, func(i, j int) bool {
			if cp[i][0] != cp[j][0] {
				return cp[i][0] < cp[j][0]
			}
			return cp[i][1] < cp[j][1]
		})
		edges = cp
	}
	e.uvarint(uint64(len(edges)))
	prevU, prevV := 0, 0
	for _, p := range edges {
		du := p[0] - prevU
		if du == 0 {
			e.uvarint(0)
			e.uvarint(uint64(p[1] - prevV))
		} else {
			e.uvarint(uint64(du))
			e.uvarint(uint64(p[1]))
		}
		prevU, prevV = p[0], p[1]
	}
}

func pairsSorted(edges [][2]int) bool {
	for i := 1; i < len(edges); i++ {
		if edges[i-1][0] > edges[i][0] ||
			(edges[i-1][0] == edges[i][0] && edges[i-1][1] >= edges[i][1]) {
			return false
		}
	}
	return true
}

// decoder consumes a varint-packed payload with sticky error state, so
// callers can chain reads and check once at the end.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("store: truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return x
}

// intv decodes a uvarint bounded to the non-negative int range.
func (d *decoder) intv() int {
	x := d.uvarint()
	if d.err == nil && x > uint64(maxInt) {
		d.fail("store: value %d overflows int", x)
		return 0
	}
	return int(x)
}

const maxInt = int(^uint(0) >> 1)

func (d *decoder) str() string {
	n := d.intv()
	if d.err != nil {
		return ""
	}
	if n > len(d.buf)-d.off {
		d.fail("store: string length %d exceeds remaining %d bytes", n, len(d.buf)-d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) pairs() [][2]int {
	n := d.intv()
	if d.err != nil {
		return nil
	}
	// Each pair costs at least 2 bytes; reject counts the buffer cannot
	// possibly hold before allocating.
	if n > (len(d.buf)-d.off)/2+1 {
		d.fail("store: pair count %d exceeds remaining payload", n)
		return nil
	}
	out := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		u := d.intv()
		v := d.intv()
		if d.err != nil {
			return nil
		}
		out = append(out, [2]int{u, v})
	}
	return out
}

func (d *decoder) sortedPairs() [][2]int {
	n := d.intv()
	if d.err != nil {
		return nil
	}
	if n > len(d.buf)-d.off {
		// Delta coding costs ≥ 1 byte per endpoint pair (two varints).
		d.fail("store: edge count %d exceeds remaining payload", n)
		return nil
	}
	out := make([][2]int, 0, n)
	prevU, prevV := 0, 0
	for i := 0; i < n; i++ {
		du := d.intv()
		dv := d.intv()
		if d.err != nil {
			return nil
		}
		if du == 0 {
			prevV += dv
		} else {
			prevU += du
			prevV = dv
		}
		out = append(out, [2]int{prevU, prevV})
	}
	return out
}

// remaining reports whether unconsumed bytes remain; a well-formed
// payload is consumed exactly.
func (d *decoder) remaining() int { return len(d.buf) - d.off }
