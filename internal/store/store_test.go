package store

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"butterfly"
)

// openT opens a store over dir with fsync disabled (tests don't need
// real durability, just the record/replay semantics) and fails the
// test on error.
func openT(t *testing.T, dir string) (*Store, []Recovered) {
	t.Helper()
	st, rec, err := Open(dir, Options{Fsync: FsyncNever, Logf: t.Logf})
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return st, rec
}

func mkGraph(t *testing.T, m, n int, edges [][2]int) *butterfly.Graph {
	t.Helper()
	g, err := butterfly.FromEdges(m, n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// writeHistory drives a store through register + two mutation batches
// and returns the expected final state: the edge set, count, and
// version a correct recovery must reproduce.
func writeHistory(t *testing.T, st *Store, name string) (g *butterfly.Graph, count int64, version uint64) {
	t.Helper()
	base := mkGraph(t, 4, 4, [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	dyn := butterfly.NewDynamicCounterFromGraph(base)
	if err := st.LogRegister(name, 1, base, dyn.Count()); err != nil {
		t.Fatalf("log register: %v", err)
	}

	batches := [][2][][2]int{
		{{{2, 0}, {2, 1}, {3, 3}}, nil},      // inserts only
		{{{0, 2}}, [][2]int{{3, 3}, {1, 1}}}, // insert + deletes
	}
	version = 1
	for _, b := range batches {
		for _, p := range b[0] {
			if _, _, err := dyn.InsertEdge(p[0], p[1]); err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range b[1] {
			if _, _, err := dyn.DeleteEdge(p[0], p[1]); err != nil {
				t.Fatal(err)
			}
		}
		version++
		if err := st.LogMutate(name, version, b[0], b[1], dyn.Count(), dyn.NumEdges()); err != nil {
			t.Fatalf("log mutate v%d: %v", version, err)
		}
	}
	return dyn.Snapshot(), dyn.Count(), version
}

// checkRecovered asserts rec matches the expected graph state and that
// the replayed counter agrees with an independent exact recount.
func checkRecovered(t *testing.T, rec Recovered, g *butterfly.Graph, count int64, version uint64) {
	t.Helper()
	if rec.Version != version {
		t.Fatalf("recovered v%d, want v%d", rec.Version, version)
	}
	if rec.Count != count {
		t.Fatalf("recovered count %d, want %d", rec.Count, count)
	}
	got := rec.Counter.Snapshot()
	if !got.Equal(g) {
		t.Fatalf("recovered graph %s differs from expected %s", got, g)
	}
	// The decisive cross-check: replayed dynamic count vs a from-scratch
	// exact count over the recovered edge set.
	if exact := got.Count(); exact != rec.Count {
		t.Fatalf("recovered count %d != exact recount %d", rec.Count, exact)
	}
}

func TestStoreOpenEmptyDir(t *testing.T) {
	dir := t.TempDir()
	st, rec := openT(t, dir)
	defer st.Close()
	if len(rec) != 0 {
		t.Fatalf("empty dir recovered %d graphs", len(rec))
	}
	if st.WALSize() != 0 {
		t.Fatalf("fresh wal has %d bytes", st.WALSize())
	}
	if err := st.LogDrop("nope"); err != nil {
		t.Fatalf("append on fresh store: %v", err)
	}
}

func TestStoreRecoverFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir)
	g, count, version := writeHistory(t, st, "g")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec := openT(t, dir)
	defer st2.Close()
	if len(rec) != 1 {
		t.Fatalf("recovered %d graphs, want 1", len(rec))
	}
	checkRecovered(t, rec[0], g, count, version)
	if rec[0].Source != "wal" || rec[0].Replayed != 2 {
		t.Fatalf("source %q replayed %d, want wal/2", rec[0].Source, rec[0].Replayed)
	}
}

func TestStoreRecoverFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir)
	g, count, version := writeHistory(t, st, "g")
	stats, err := st.Checkpoint([]GraphState{{Name: "g", Version: version, Graph: g, Count: count}})
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if stats.WALBytesAfter != 0 || stats.WALBytesBefore == 0 {
		t.Fatalf("checkpoint did not compact: %+v", stats)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec := openT(t, dir)
	defer st2.Close()
	if len(rec) != 1 {
		t.Fatalf("recovered %d graphs, want 1", len(rec))
	}
	checkRecovered(t, rec[0], g, count, version)
	if rec[0].Source != "snapshot" || rec[0].Replayed != 0 {
		t.Fatalf("source %q replayed %d, want snapshot/0", rec[0].Source, rec[0].Replayed)
	}
}

func TestStoreRecoverSnapshotPlusWALTail(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir)
	g, count, version := writeHistory(t, st, "g")
	if _, err := st.Checkpoint([]GraphState{{Name: "g", Version: version, Graph: g, Count: count}}); err != nil {
		t.Fatal(err)
	}
	// One more batch after the checkpoint — must come from the WAL.
	dyn := butterfly.NewDynamicCounterFromGraph(g)
	if _, _, err := dyn.InsertEdge(3, 2); err != nil {
		t.Fatal(err)
	}
	version++
	if err := st.LogMutate("g", version, [][2]int{{3, 2}}, nil, dyn.Count(), dyn.NumEdges()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec := openT(t, dir)
	defer st2.Close()
	if len(rec) != 1 {
		t.Fatalf("recovered %d graphs, want 1", len(rec))
	}
	checkRecovered(t, rec[0], dyn.Snapshot(), dyn.Count(), version)
	if rec[0].Source != "snapshot+wal" || rec[0].Replayed != 1 {
		t.Fatalf("source %q replayed %d, want snapshot+wal/1", rec[0].Source, rec[0].Replayed)
	}
}

// TestStoreTornWALTail simulates a crash mid-append: garbage partial
// frame bytes at the end of the log. Open must truncate the tail and
// recover the last complete state.
func TestStoreTornWALTail(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir)
	g, count, version := writeHistory(t, st, "g")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Looks like the start of a mutate frame, but the payload never
	// made it to disk.
	if _, err := f.Write([]byte{recMutate, 0xE0, 0x00, 0x00, 0x00, 'g'}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tornSize := fileSize(t, walPath)

	st2, rec := openT(t, dir)
	defer st2.Close()
	if len(rec) != 1 {
		t.Fatalf("recovered %d graphs, want 1", len(rec))
	}
	checkRecovered(t, rec[0], g, count, version)
	if got := fileSize(t, walPath); got >= tornSize {
		t.Fatalf("torn tail not truncated: %d bytes, was %d", got, tornSize)
	}
	// The truncated log must accept new appends and recover again.
	if err := st2.LogDrop("g"); err != nil {
		t.Fatalf("append after tail truncation: %v", err)
	}
	st2.Close()
	st3, rec3 := openT(t, dir)
	defer st3.Close()
	if len(rec3) != 0 {
		t.Fatalf("drop after truncation not replayed: %d graphs", len(rec3))
	}
}

// TestStoreFlippedByteInWALTail flips one byte inside the final record;
// recovery must fall back to the state before that batch, not serve a
// corrupt graph.
func TestStoreFlippedByteInWALTail(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir)

	base := mkGraph(t, 4, 4, [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	dyn := butterfly.NewDynamicCounterFromGraph(base)
	if err := st.LogRegister("g", 1, base, dyn.Count()); err != nil {
		t.Fatal(err)
	}
	cut := st.WALSize()
	wantG, wantCount := dyn.Snapshot(), dyn.Count()
	if _, _, err := dyn.InsertEdge(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.LogMutate("g", 2, [][2]int{{2, 0}}, nil, dyn.Count(), dyn.NumEdges()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, walFileName)
	b, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	b[cut+int64(len(b[cut:]))/2] ^= 0xFF // middle of the final record
	if err := os.WriteFile(walPath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, rec := openT(t, dir)
	defer st2.Close()
	if len(rec) != 1 {
		t.Fatalf("recovered %d graphs, want 1", len(rec))
	}
	checkRecovered(t, rec[0], wantG, wantCount, 1)
	if got := fileSize(t, walPath); got != cut {
		t.Fatalf("wal truncated to %d, want %d", got, cut)
	}
}

// TestStoreCrashBeforeWALTruncate simulates dying between the
// checkpoint's snapshot writes and its WAL truncate: both the new
// snapshot and the full log survive. Replay must skip the batches the
// snapshot already contains and converge on the same state.
func TestStoreCrashBeforeWALTruncate(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir)
	g, count, version := writeHistory(t, st, "g")
	walBytes, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Checkpoint([]GraphState{{Name: "g", Version: version, Graph: g, Count: count}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Resurrect the pre-truncate log next to the new snapshot.
	if err := os.WriteFile(filepath.Join(dir, walFileName), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, rec := openT(t, dir)
	defer st2.Close()
	if len(rec) != 1 {
		t.Fatalf("recovered %d graphs, want 1", len(rec))
	}
	checkRecovered(t, rec[0], g, count, version)
}

// TestStoreCorruptSnapshotFallsBackToWAL pairs a flipped-byte snapshot
// with an intact log: recovery must reject the snapshot and rebuild
// everything from the WAL.
func TestStoreCorruptSnapshotFallsBackToWAL(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir)
	g, count, version := writeHistory(t, st, "g")
	walBytes, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Checkpoint([]GraphState{{Name: "g", Version: version, Graph: g, Count: count}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walFileName), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "snapshots", snapshotFileName("g", version))
	sb, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	sb[len(sb)/2] ^= 0x5A
	if err := os.WriteFile(snapPath, sb, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, rec := openT(t, dir)
	defer st2.Close()
	if len(rec) != 1 {
		t.Fatalf("recovered %d graphs, want 1", len(rec))
	}
	checkRecovered(t, rec[0], g, count, version)
	if rec[0].Source != "wal" {
		t.Fatalf("source %q, want wal (snapshot was corrupt)", rec[0].Source)
	}
}

// TestStoreDropAndReregister replays a drop followed by a fresh
// registration under the same name: the new graph (and only it) must
// survive, at version 1.
func TestStoreDropAndReregister(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir)
	writeHistory(t, st, "g")
	if err := st.LogDrop("g"); err != nil {
		t.Fatal(err)
	}
	g2 := mkGraph(t, 2, 3, [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {1, 2}})
	dyn2 := butterfly.NewDynamicCounterFromGraph(g2)
	if err := st.LogRegister("g", 1, g2, dyn2.Count()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec := openT(t, dir)
	defer st2.Close()
	if len(rec) != 1 {
		t.Fatalf("recovered %d graphs, want 1", len(rec))
	}
	checkRecovered(t, rec[0], g2, dyn2.Count(), 1)
}

// TestStoreReplaceRegistrationBeatsSnapshot is the nasty case: a graph
// is checkpointed, then replaced (register v1, no drop record), then
// the process dies. Recovery sees an older snapshot AND a register
// record — the record must win.
func TestStoreReplaceRegistrationBeatsSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir)
	g, count, version := writeHistory(t, st, "g")
	if _, err := st.Checkpoint([]GraphState{{Name: "g", Version: version, Graph: g, Count: count}}); err != nil {
		t.Fatal(err)
	}
	g2 := mkGraph(t, 2, 2, [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	dyn2 := butterfly.NewDynamicCounterFromGraph(g2)
	if err := st.LogRegister("g", 1, g2, dyn2.Count()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec := openT(t, dir)
	defer st2.Close()
	if len(rec) != 1 {
		t.Fatalf("recovered %d graphs, want 1", len(rec))
	}
	checkRecovered(t, rec[0], g2, dyn2.Count(), 1)
	if rec[0].Source != "wal" {
		t.Fatalf("source %q, want wal (replace-registration supersedes snapshot)", rec[0].Source)
	}
}

// TestStoreRefusesLogicalCorruption: a register record whose count
// stamp disagrees with its own edge set is not a torn tail — it means
// the directory cannot reproduce acknowledged state, and Open must
// refuse rather than serve it.
func TestStoreRefusesLogicalCorruption(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "snapshots"), 0o755); err != nil {
		t.Fatal(err)
	}
	w, err := openWAL(filepath.Join(dir, walFileName), FsyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The square has exactly 1 butterfly; stamp claims 7.
	if err := w.Append(&Record{Type: recRegister, Name: "g", Version: 1, M: 2, N: 2,
		Count: 7, Edges: [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(dir, Options{Fsync: FsyncNever, Logf: t.Logf})
	if err == nil {
		t.Fatal("logically corrupt WAL accepted")
	}
	if !strings.Contains(err.Error(), "stamps count") {
		t.Fatalf("wrong refusal: %v", err)
	}
}

// TestStoreCheckpointGC drops one graph and checkpoints the survivor:
// every stale snapshot generation and the dropped graph's snapshot
// must be collected.
func TestStoreCheckpointGC(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir)
	defer st.Close()
	ga, countA, verA := writeHistory(t, st, "a")
	gb, countB, verB := writeHistory(t, st, "b")
	if _, err := st.Checkpoint([]GraphState{
		{Name: "a", Version: verA, Graph: ga, Count: countA},
		{Name: "b", Version: verB, Graph: gb, Count: countB},
	}); err != nil {
		t.Fatal(err)
	}
	// Advance a, drop b, checkpoint the new world.
	dyn := butterfly.NewDynamicCounterFromGraph(ga)
	if _, _, err := dyn.InsertEdge(3, 2); err != nil {
		t.Fatal(err)
	}
	verA++
	if err := st.LogMutate("a", verA, [][2]int{{3, 2}}, nil, dyn.Count(), dyn.NumEdges()); err != nil {
		t.Fatal(err)
	}
	if err := st.LogDrop("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Checkpoint([]GraphState{
		{Name: "a", Version: verA, Graph: dyn.Snapshot(), Count: dyn.Count()},
	}); err != nil {
		t.Fatal(err)
	}

	ents, err := os.ReadDir(filepath.Join(dir, "snapshots"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) != 1 || names[0] != snapshotFileName("a", verA) {
		t.Fatalf("snapshot dir after GC: %v, want only %s", names, snapshotFileName("a", verA))
	}
	if st.Checkpoints() != 2 {
		t.Fatalf("checkpoints counter %d, want 2", st.Checkpoints())
	}
}

// TestStoreConcurrentAppends hammers the append path from many
// goroutines (race detector coverage for the group-commit machinery)
// and verifies every record survives a reopen.
func TestStoreConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir)
	g := mkGraph(t, 2, 2, [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	dyn := butterfly.NewDynamicCounterFromGraph(g)

	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := "g" + string(rune('a'+i))
			errs[i] = st.LogRegister(name, 1, g, dyn.Count())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec := openT(t, dir)
	defer st2.Close()
	if len(rec) != writers {
		t.Fatalf("recovered %d graphs, want %d", len(rec), writers)
	}
	for _, r := range rec {
		checkRecovered(t, r, g, dyn.Count(), 1)
	}
}

func TestStoreClosedAppendsFail(t *testing.T) {
	dir := t.TempDir()
	st, _ := openT(t, dir)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.LogDrop("g"); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestStoreShouldCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{Fsync: FsyncNever, CheckpointBytes: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.ShouldCheckpoint() {
		t.Fatal("empty wal wants checkpoint")
	}
	if err := st.LogDrop("g"); err != nil {
		t.Fatal(err)
	}
	if !st.ShouldCheckpoint() {
		t.Fatal("wal past threshold but no checkpoint wanted")
	}

	disabled, _, err := Open(t.TempDir(), Options{Fsync: FsyncNever, CheckpointBytes: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer disabled.Close()
	if err := disabled.LogDrop("g"); err != nil {
		t.Fatal(err)
	}
	if disabled.ShouldCheckpoint() {
		t.Fatal("disabled threshold still triggers")
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
