package estimate

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/gen"
	"butterfly/internal/graph"
)

// --- Reservoir ---

func streamOf(g *graph.Bipartite) [][2]int {
	edges := g.Edges()
	out := make([][2]int, len(edges))
	for i, e := range edges {
		out[i] = [2]int{int(e.U), int(e.V)}
	}
	return out
}

func TestReservoirExactRegime(t *testing.T) {
	g := gen.PowerLawBipartite(100, 80, 500, 0.7, 0.7, 3)
	exact := core.CountAuto(g)
	r, err := NewReservoir(100, 80, int(g.NumEdges())+10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range streamOf(g) {
		if err := r.Add(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	snap := r.Snapshot()
	if !snap.Exact {
		t.Fatalf("reservoir larger than stream should be exact")
	}
	if snap.Estimate != float64(exact) {
		t.Fatalf("exact-regime estimate %g, want %d", snap.Estimate, exact)
	}
	if snap.StdErr != 0 || snap.CI95 != 0 {
		t.Fatalf("exact-regime error bars must be zero, got %g/%g", snap.StdErr, snap.CI95)
	}
	if snap.EdgesSeen != g.NumEdges() || snap.ReservoirSize != int(g.NumEdges()) {
		t.Fatalf("snapshot bookkeeping: seen=%d size=%d want %d", snap.EdgesSeen, snap.ReservoirSize, g.NumEdges())
	}
}

// TestReservoirIncrementalMatchesRecount is the differential test for
// the incremental count: after a long stream with many evictions, the
// maintained count must equal an exact recount of the reservoir
// subgraph.
func TestReservoirIncrementalMatchesRecount(t *testing.T) {
	g := gen.PowerLawBipartite(120, 90, 1500, 0.8, 0.7, 7)
	for _, capacity := range []int{4, 50, 300} {
		r, err := NewReservoir(120, 90, capacity, 42)
		if err != nil {
			t.Fatal(err)
		}
		stream := streamOf(g)
		rng := rand.New(rand.NewSource(9))
		// Include duplicate stream elements to exercise the dup path.
		for i := 0; i < 3000; i++ {
			e := stream[rng.Intn(len(stream))]
			if err := r.Add(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		// Rebuild the reservoir subgraph from the live adjacency.
		b := graph.NewBuilder(120, 90)
		for u, nbrs := range r.adjU {
			for _, v := range nbrs {
				b.AddEdge(int(u), int(v))
			}
		}
		want := core.CountAuto(b.Build())
		snap := r.Snapshot()
		if snap.Butterflies != want {
			t.Fatalf("cap=%d: incremental count %d, recount %d", capacity, snap.Butterflies, want)
		}
	}
}

// TestReservoirUnbiased checks the estimator statistically: the mean
// over many independent seeds must land within a few standard errors of
// the exact count.
func TestReservoirUnbiased(t *testing.T) {
	g := gen.PowerLawBipartite(200, 150, 2000, 0.7, 0.7, 4)
	exact := float64(core.CountAuto(g))
	stream := streamOf(g)
	const trials = 40
	var sum float64
	covered := 0
	for seed := int64(0); seed < trials; seed++ {
		r, err := NewReservoir(200, 150, 800, seed)
		if err != nil {
			t.Fatal(err)
		}
		perm := rand.New(rand.NewSource(seed + 100)).Perm(len(stream))
		for _, i := range perm {
			if err := r.Add(stream[i][0], stream[i][1]); err != nil {
				t.Fatal(err)
			}
		}
		snap := r.Snapshot()
		sum += snap.Estimate
		if snap.StdErr <= 0 {
			t.Fatalf("seed %d: scaled regime must report positive stderr", seed)
		}
		if math.Abs(snap.Estimate-exact) <= snap.CI95 {
			covered++
		}
	}
	mean := sum / trials
	if rel := math.Abs(mean-exact) / exact; rel > 0.30 {
		t.Fatalf("mean of %d trials %.1f vs exact %.0f (rel err %.2f)", trials, mean, exact, rel)
	}
	// The binomial-approximation CI is not a guaranteed 95% interval
	// (butterfly survivals are correlated), but it should cover the
	// truth more often than not.
	if covered < trials/2 {
		t.Fatalf("CI95 covered exact only %d/%d times", covered, trials)
	}
}

func TestReservoirValidation(t *testing.T) {
	if _, err := NewReservoir(-1, 5, 10, 0); err == nil {
		t.Fatal("negative dimension must error")
	}
	if _, err := NewReservoir(5, 5, 3, 0); err == nil {
		t.Fatal("capacity below 4 must error")
	}
	r, err := NewReservoir(5, 5, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Add(5, 0); err == nil {
		t.Fatal("out-of-range edge must error")
	}
	if err := r.AddBatch([][2]int{{0, 0}, {0, 9}}); err == nil {
		t.Fatal("out-of-range batch edge must error")
	}
	if got := r.Seen(); got != 0 {
		t.Fatalf("failed adds must not advance the stream, seen=%d", got)
	}
}

// TestReservoirConcurrent runs batched ingest against concurrent
// snapshot reads; under -race this proves the locking discipline, and
// the final snapshot must be exact and correct.
func TestReservoirConcurrent(t *testing.T) {
	g := gen.PowerLawBipartite(150, 100, 1200, 0.7, 0.7, 11)
	exact := float64(core.CountAuto(g))
	stream := streamOf(g)
	r, err := NewReservoir(150, 100, len(stream)+1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := r.Snapshot()
				if snap.Estimate < 0 || snap.ReservoirSize > snap.Capacity {
					t.Errorf("inconsistent snapshot: %+v", snap)
					return
				}
			}
		}()
	}
	const batch = 64
	for lo := 0; lo < len(stream); lo += batch {
		hi := lo + batch
		if hi > len(stream) {
			hi = len(stream)
		}
		if err := r.AddBatch(stream[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if snap := r.Snapshot(); snap.Estimate != exact {
		t.Fatalf("post-ingest estimate %g, want %g", snap.Estimate, exact)
	}
}

// --- Sampling ---

func TestSampleExactOnUniformGraph(t *testing.T) {
	g := gen.CompleteBipartite(5, 6)
	exact := float64(core.CountAuto(g))
	for _, strat := range []Strategy{StrategyVertices, StrategyEdges} {
		res, err := Sample(g, Options{Strategy: strat, Samples: 1, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		if res.Estimate != exact {
			t.Fatalf("%v: single-sample estimate on uniform graph %g, want %g", strat, res.Estimate, exact)
		}
		if res.Samples != 1 || res.StdErr != 0 {
			t.Fatalf("%v: want 1 sample and zero stderr, got %d/%g", strat, res.Samples, res.StdErr)
		}
	}
}

// TestSampleAdaptiveStops checks the stopping rule: on a uniform graph
// the sample variance is zero, so the adaptive loop must stop at
// MinSamples with a tight CI; on a skewed graph it must stop before
// MaxSamples once the target is met, and the reported CI must honor the
// target.
func TestSampleAdaptiveStops(t *testing.T) {
	uniform := gen.CompleteBipartite(8, 8)
	res, err := Sample(uniform, Options{Strategy: StrategyVertices, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != DefaultMinSamples {
		t.Fatalf("uniform graph: adaptive loop drew %d samples, want %d", res.Samples, DefaultMinSamples)
	}
	if res.CI95 != 0 {
		t.Fatalf("uniform graph: CI should collapse, got %g", res.CI95)
	}

	skewed := gen.PowerLawBipartite(400, 300, 5000, 0.8, 0.7, 6)
	res, err = Sample(skewed, Options{Strategy: StrategyEdges, TargetRelErr: 0.10, MaxSamples: 40000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples < DefaultMinSamples {
		t.Fatalf("drew %d samples, below the minimum", res.Samples)
	}
	if res.Samples < 40000 && res.CI95 > 0.10*res.Estimate {
		t.Fatalf("stopped at %d samples with CI %.1f > 10%% of %.1f", res.Samples, res.CI95, res.Estimate)
	}
}

// TestSampleStatisticalAcceptance runs the estimators over repeated
// seeds: the mean must land within k·stderr of the exact count, with
// stderr of the mean derived from the per-run spread.
func TestSampleStatisticalAcceptance(t *testing.T) {
	g := gen.PowerLawBipartite(300, 200, 2500, 0.8, 0.7, 5)
	exact := float64(core.CountAuto(g))
	for _, strat := range []Strategy{StrategyVertices, StrategyEdges} {
		const trials = 30
		var sum, sumsq float64
		for seed := int64(0); seed < trials; seed++ {
			res, err := Sample(g, Options{Strategy: strat, Samples: 400, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Estimate
			sumsq += res.Estimate * res.Estimate
		}
		mean := sum / trials
		varMean := (sumsq/trials - mean*mean) / (trials - 1)
		se := math.Sqrt(math.Max(varMean, 1))
		if math.Abs(mean-exact) > 5*se {
			t.Fatalf("%v: mean %.1f vs exact %.0f exceeds 5·stderr (%.1f)", strat, mean, exact, se)
		}
	}
}

// TestSampleAccumulatorsAgree forces both accumulator implementations
// over the same seed; the estimates must be identical because the RNG
// draw sequence and per-sample values do not depend on the accumulator.
func TestSampleAccumulatorsAgree(t *testing.T) {
	g := gen.PowerLawBipartite(200, 150, 1800, 0.7, 0.7, 8)
	for _, strat := range []Strategy{StrategyVertices, StrategyEdges} {
		dense, err := Sample(g, Options{Strategy: strat, Samples: 200, Agg: core.AggHist, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		hash, err := Sample(g, Options{Strategy: strat, Samples: 200, Agg: core.AggHash, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		if dense.Estimate != hash.Estimate || dense.StdErr != hash.StdErr {
			t.Fatalf("%v: dense %+v != hash %+v", strat, dense, hash)
		}
	}
}

func TestSampleDegenerate(t *testing.T) {
	empty := gen.CompleteBipartite(0, 0)
	for _, strat := range []Strategy{StrategyVertices, StrategyEdges} {
		res, err := Sample(empty, Options{Strategy: strat, Samples: 10})
		if err != nil {
			t.Fatal(err)
		}
		if res.Estimate != 0 || res.Samples != 0 {
			t.Fatalf("%v: empty graph should report a zero result, got %+v", strat, res)
		}
	}
	star := gen.Star(6)
	res, err := Sample(star, Options{Strategy: StrategyVertices, Samples: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 {
		t.Fatalf("star has no butterflies, estimate %g", res.Estimate)
	}
	if _, err := Sample(star, Options{Strategy: Strategy(9)}); err == nil {
		t.Fatal("invalid strategy must error")
	}
	if _, err := Sample(star, Options{Samples: -1}); err == nil {
		t.Fatal("negative samples must error")
	}
}

func TestEdgeRow(t *testing.T) {
	ptr := []int64{0, 2, 2, 5, 6}
	cases := []struct {
		k    int64
		want int
	}{{0, 0}, {1, 0}, {2, 2}, {4, 2}, {5, 3}}
	for _, c := range cases {
		if got := edgeRow(ptr, c.k); got != c.want {
			t.Errorf("edgeRow(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	g := gen.PowerLawBipartite(150, 120, 1000, 0.7, 0.7, 9)
	a, _ := Sample(g, Options{Strategy: StrategyEdges, Samples: 300, Seed: 21})
	b, _ := Sample(g, Options{Strategy: StrategyEdges, Samples: 300, Seed: 21})
	if a != b {
		t.Fatalf("same seed must reproduce: %+v vs %+v", a, b)
	}
}
