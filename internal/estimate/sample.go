package estimate

import (
	"fmt"
	"math"
	"math/rand"

	"butterfly/internal/core"
	"butterfly/internal/graph"
)

// Strategy selects a per-query sampling estimator for a fully
// materialized graph.
type Strategy int

const (
	// StrategyVertices estimates from uniformly sampled V1 vertices:
	// ΞG ≈ |V1| · mean(b_u) / 2 (each butterfly touches two V1
	// vertices).
	StrategyVertices Strategy = iota
	// StrategyEdges estimates from uniformly sampled edges:
	// ΞG ≈ |E| · mean(support) / 4 (each butterfly has four edges).
	// Usually lower-variance on skewed graphs because edge supports are
	// more homogeneous than vertex participations.
	StrategyEdges
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyVertices:
		return "vertices"
	case StrategyEdges:
		return "edges"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Defaults for the adaptive stopping rule.
const (
	DefaultTargetRelErr = 0.05
	DefaultMinSamples   = 64
	DefaultMaxSamples   = 1 << 16
	adaptiveBatch       = 32
)

// Options configures Sample.
type Options struct {
	Strategy Strategy
	// Samples > 0 draws exactly that many samples (no early stop).
	// Samples == 0 enables the adaptive stopping rule.
	Samples int
	// TargetRelErr is the adaptive target: stop once the 95% CI
	// half-width falls below TargetRelErr · estimate. 0 means
	// DefaultTargetRelErr.
	TargetRelErr float64
	// MinSamples / MaxSamples bound the adaptive loop; 0 means the
	// package defaults.
	MinSamples int
	MaxSamples int
	// Agg picks the wedge accumulator: AggHash uses the sparse map
	// accumulator (huge V1, tiny touched sets), everything else the
	// dense per-vertex array. AggAuto resolves from the graph's cached
	// degree profile — the same decision table the exact kernels use.
	Agg core.AggPolicy
	// Seed makes the estimator deterministic.
	Seed int64
}

// Result is a point estimate with error bars. StdErr is the standard
// error of the scaled estimator mean (zero when fewer than two samples
// were drawn); CI95 is its 1.96× half-width.
type Result struct {
	Estimate float64
	StdErr   float64
	CI95     float64
	Samples  int
}

// Sample estimates the butterfly count of g by Monte-Carlo sampling.
// With Options.Samples > 0 it draws a fixed number of samples; with
// Samples == 0 it draws in batches until the 95% CI half-width falls
// below TargetRelErr × estimate (bounded by Min/MaxSamples). Both
// estimators are unbiased (see docs/ALGORITHMS.md for the derivation);
// the per-sample kernel is the shared wedge accumulator also used by
// the internal/baseline wrappers.
func Sample(g *graph.Bipartite, opts Options) (Result, error) {
	if opts.Strategy != StrategyVertices && opts.Strategy != StrategyEdges {
		return Result{}, fmt.Errorf("estimate: invalid strategy %v", opts.Strategy)
	}
	if opts.Samples < 0 {
		return Result{}, fmt.Errorf("estimate: negative sample count %d", opts.Samples)
	}
	var scale, population float64
	if opts.Strategy == StrategyVertices {
		population = float64(g.NumV1())
		scale = population / 2
	} else {
		population = float64(g.NumEdges())
		scale = population / 4
	}
	if population == 0 {
		return Result{}, nil
	}

	target := opts.TargetRelErr
	if target <= 0 {
		target = DefaultTargetRelErr
	}
	minS, maxS := opts.MinSamples, opts.MaxSamples
	if minS <= 0 {
		minS = DefaultMinSamples
	}
	if maxS <= 0 {
		maxS = DefaultMaxSamples
	}
	if maxS < minS {
		maxS = minS
	}
	if opts.Samples > 0 {
		minS, maxS = opts.Samples, opts.Samples
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	acc := newAccum(g, opts.Agg)
	kernel := wedgeKernel{g: g, adj: g.Adj(), adjT: g.AdjT(), acc: acc}

	// Welford running mean/variance of the raw per-sample values.
	var k int
	var mean, m2 float64
	push := func(x float64) {
		k++
		d := x - mean
		mean += d / float64(k)
		m2 += d * (x - mean)
	}
	result := func() Result {
		res := Result{Estimate: scale * mean, Samples: k}
		if k >= 2 {
			sd := math.Sqrt(m2 / float64(k-1))
			res.StdErr = scale * sd / math.Sqrt(float64(k))
			res.CI95 = 1.96 * res.StdErr
		}
		return res
	}

	for k < maxS {
		batch := adaptiveBatch
		if k+batch > maxS {
			batch = maxS - k
		}
		for i := 0; i < batch; i++ {
			if opts.Strategy == StrategyVertices {
				push(float64(kernel.vertexSample(rng.Intn(g.NumV1()))))
			} else {
				push(float64(kernel.edgeSample(rng.Int63n(g.NumEdges()))))
			}
		}
		if k < minS {
			continue
		}
		res := result()
		if res.Estimate > 0 && res.CI95 <= target*res.Estimate {
			break
		}
		if m2 == 0 {
			// Zero sample variance: either a perfectly uniform graph or
			// an all-zero stretch. More identical samples add nothing.
			break
		}
	}
	return result(), nil
}

// VertexSampling draws exactly `samples` V1 vertices and returns the
// scaled estimate — the fixed-budget entry point internal/baseline
// delegates to. samples must be positive.
func VertexSampling(g *graph.Bipartite, samples int, seed int64) float64 {
	res, err := Sample(g, Options{Strategy: StrategyVertices, Samples: samples, Seed: seed})
	if err != nil {
		panic(err)
	}
	return res.Estimate
}

// EdgeSampling draws exactly `samples` edges and returns the scaled
// estimate. samples must be positive.
func EdgeSampling(g *graph.Bipartite, samples int, seed int64) float64 {
	res, err := Sample(g, Options{Strategy: StrategyEdges, Samples: samples, Seed: seed})
	if err != nil {
		panic(err)
	}
	return res.Estimate
}

// wedgeKernel computes exact per-vertex butterfly participations and
// per-edge supports through one shared accumulator — the deduplicated
// core of both sampling estimators.
type wedgeKernel struct {
	g         *graph.Bipartite
	adj, adjT interface {
		Row(int) []int32
	}
	acc accum
}

// gather fills the accumulator with β_uw = |N(u) ∩ N(w)| for every V1
// vertex w ≠ u reachable through a common neighbor.
func (wk *wedgeKernel) gather(u int) {
	u32 := int32(u)
	for _, v := range wk.adj.Row(u) {
		for _, w := range wk.adjT.Row(int(v)) {
			if w != u32 {
				wk.acc.inc(w)
			}
		}
	}
}

// vertexSample returns b_u = Σ_w C(β_uw, 2), the number of butterflies
// vertex u participates in.
func (wk *wedgeKernel) vertexSample(u int) int64 {
	wk.gather(u)
	var bu int64
	wk.acc.drain(func(c int64) {
		bu += c * (c - 1) / 2
	})
	return bu
}

// edgeSample returns support(u,v) = Σ_{w∈N(v), w≠u} (β_uw − 1) for the
// edge at flat CSR position k.
func (wk *wedgeKernel) edgeSample(k int64) int64 {
	g := wk.g
	u := edgeRow(g.Adj().Ptr, k)
	v := g.Adj().Col[k]
	u32 := int32(u)
	wk.gather(u)
	var sup int64
	for _, w := range wk.adjT.Row(int(v)) {
		if w == u32 {
			continue
		}
		sup += wk.acc.get(w) - 1
	}
	wk.acc.reset()
	return sup
}

// edgeRow locates the row containing flat edge index k by binary search
// over the CSR row pointer.
func edgeRow(ptr []int64, k int64) int {
	lo, hi := 0, len(ptr)-1
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if ptr[mid] <= k {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// accum is the per-sample wedge accumulator. drain visits every nonzero
// counter and resets; get/reset serve the edge-support path, which
// needs random access after gathering.
type accum interface {
	inc(w int32)
	get(w int32) int64
	drain(f func(c int64))
	reset()
}

// newAccum picks dense vs. hash from the requested aggregation policy,
// resolving AggAuto through the same degree-profile decision table the
// exact kernels use (AggHash means "huge sparse id space" there too).
func newAccum(g *graph.Bipartite, agg core.AggPolicy) accum {
	resolved := agg
	if agg == core.AggAuto {
		resolved = core.ResolveAgg(g, core.Options{Agg: core.AggAuto})
	}
	if resolved == core.AggHash {
		return &hashAccum{counts: make(map[int32]int32)}
	}
	return &denseAccum{counts: make([]int32, g.NumV1()), touched: make([]int32, 0, 1024)}
}

type denseAccum struct {
	counts  []int32
	touched []int32
}

func (a *denseAccum) inc(w int32) {
	if a.counts[w] == 0 {
		a.touched = append(a.touched, w)
	}
	a.counts[w]++
}

func (a *denseAccum) get(w int32) int64 { return int64(a.counts[w]) }

func (a *denseAccum) drain(f func(c int64)) {
	for _, w := range a.touched {
		f(int64(a.counts[w]))
		a.counts[w] = 0
	}
	a.touched = a.touched[:0]
}

func (a *denseAccum) reset() {
	for _, w := range a.touched {
		a.counts[w] = 0
	}
	a.touched = a.touched[:0]
}

type hashAccum struct {
	counts map[int32]int32
}

func (a *hashAccum) inc(w int32)       { a.counts[w]++ }
func (a *hashAccum) get(w int32) int64 { return int64(a.counts[w]) }

func (a *hashAccum) drain(f func(c int64)) {
	for _, c := range a.counts {
		f(int64(c))
	}
	clear(a.counts)
}

func (a *hashAccum) reset() { clear(a.counts) }
