// Package estimate is the approximate-answer tier: fixed-memory
// reservoir estimation over edge streams (the FLEET family of
// Sanei-Mehri et al., arXiv:1812.03398) and adaptive sampling
// estimators with error bars for registered graphs. The serving layer
// answers /v1/estimate from this package; internal/baseline keeps its
// original estimator signatures as thin wrappers for differential
// tests.
package estimate

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// slot is one reservoir cell. dup marks a stream element whose (u,v)
// pair was already present in the reservoir when it entered: it holds a
// cell (keeping the sample uniform over stream *elements*) but does not
// contribute adjacency or butterflies a second time.
type slot struct {
	u, v int32
	dup  bool
}

// Reservoir is a fixed-budget streaming butterfly estimator. It keeps a
// uniform sample of at most Cap stream edges; the butterfly count of
// the sampled subgraph is maintained *incrementally* — every insert and
// evict applies a wedge delta over the small in-reservoir adjacency —
// so a snapshot is O(1), not a recount. At any point the stream count
// is estimated by scaling with the inverse probability that all four
// edges of a butterfly survived together,
//
//	p₄ = Π_{i=0..3} (R − i) / (N − i)
//
// for reservoir capacity R and N stream edges seen; with N ≤ R the
// estimate is exact and the error bars collapse to zero.
//
// The standard error reported by Snapshot starts from the binomial
// term Var ≈ c·(1−p₄)/p₄² and adds the covariance of butterfly pairs
// that share edges (pairs sharing a wedge co-survive with probability
// p₆, pairs sharing one edge with p₇ — far above p₄², so ignoring them
// badly understates the variance on skewed graphs). The pair counts
// are measured on the reservoir subgraph and scaled up by their own
// survival probabilities; see docs/ALGORITHMS.md for the derivation.
// The pair pass costs O(Σ deg²) over the (small) reservoir and is
// cached per stream position, so repeated snapshots between batches
// are O(1). Memory is O(R) regardless of stream length. All methods
// are safe for concurrent use.
type Reservoir struct {
	mu   sync.Mutex
	m, n int
	cap  int
	seed int64

	seen  int64
	slots []slot
	held  int   // slots with dup == false (distinct edges in the subgraph)
	count int64 // butterflies inside the reservoir subgraph

	rng  *rand.Rand
	adjU map[int32][]int32 // V1 vertex -> sorted V2 neighbors
	adjV map[int32][]int32 // V2 vertex -> sorted V1 neighbors
	free [][]int32         // recycled neighbor slices (zero-alloc steady state)

	// Cached variance pass: valid while (seen, count) are unchanged.
	varSeen   int64
	varCount  int64
	varStdErr float64
}

// ReservoirSnapshot is a consistent point-in-time view of the
// estimator. Exact reports whether the whole stream still fits the
// reservoir (estimate is the true count, error bars are zero).
type ReservoirSnapshot struct {
	Estimate      float64
	StdErr        float64
	CI95          float64 // 1.96 · StdErr (95% half-width)
	EdgesSeen     int64
	ReservoirSize int // distinct edges currently held
	Capacity      int
	Butterflies   int64 // exact count inside the reservoir subgraph
	Exact         bool
}

// NewReservoir returns an estimator over vertex sets of size m and n
// with the given edge capacity. The capacity must be at least 4 — a
// butterfly has four edges — and the estimator is deterministic given
// the seed.
func NewReservoir(m, n, capacity int, seed int64) (*Reservoir, error) {
	if m < 0 || n < 0 {
		return nil, fmt.Errorf("estimate: negative vertex-set size %d/%d", m, n)
	}
	if capacity < 4 {
		return nil, fmt.Errorf("estimate: reservoir capacity %d < 4 cannot hold a butterfly", capacity)
	}
	return &Reservoir{
		m: m, n: n, cap: capacity, seed: seed,
		slots: make([]slot, 0, capacity),
		rng:   rand.New(rand.NewSource(seed)),
		adjU:  make(map[int32][]int32),
		adjV:  make(map[int32][]int32),
	}, nil
}

// Dims returns the declared vertex-set sizes.
func (r *Reservoir) Dims() (m, n int) { return r.m, r.n }

// Cap returns the edge capacity.
func (r *Reservoir) Cap() int { return r.cap }

// Seen returns the number of stream edges consumed so far.
func (r *Reservoir) Seen() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// Add feeds the next stream edge. Out-of-range endpoints are an error
// and leave the estimator unchanged.
func (r *Reservoir) Add(u, v int) error {
	if u < 0 || u >= r.m || v < 0 || v >= r.n {
		return fmt.Errorf("estimate: stream edge (%d,%d) out of range %dx%d", u, v, r.m, r.n)
	}
	r.mu.Lock()
	r.add(int32(u), int32(v))
	r.mu.Unlock()
	return nil
}

// AddBatch feeds a batch of stream edges atomically with respect to
// Snapshot. The whole batch is validated before any edge is applied, so
// an error means the estimator state did not change.
func (r *Reservoir) AddBatch(edges [][2]int) error {
	for _, e := range edges {
		if e[0] < 0 || e[0] >= r.m || e[1] < 0 || e[1] >= r.n {
			return fmt.Errorf("estimate: stream edge (%d,%d) out of range %dx%d", e[0], e[1], r.m, r.n)
		}
	}
	r.mu.Lock()
	for _, e := range edges {
		r.add(int32(e[0]), int32(e[1]))
	}
	r.mu.Unlock()
	return nil
}

func (r *Reservoir) add(u, v int32) {
	r.seen++
	if len(r.slots) < r.cap {
		r.place(len(r.slots), u, v)
		r.slots = r.slots[:len(r.slots)+1]
		return
	}
	// Classic reservoir replacement: keep with probability cap/seen.
	j := r.rng.Int63n(r.seen)
	if j >= int64(r.cap) {
		return
	}
	r.evict(int(j))
	r.place(int(j), u, v)
}

// place writes the new edge into slot i (which must already be vacated)
// and applies its wedge delta. The delta is computed with the edge
// absent from the adjacency — the same orientation evict uses — so
// insert and delete are exact mirrors.
func (r *Reservoir) place(i int, u, v int32) {
	s := r.slots[:cap(r.slots)]
	if r.contains(u, v) {
		s[i] = slot{u: u, v: v, dup: true}
		return
	}
	r.count += r.wedgeDelta(u, v)
	r.insertAdj(u, v)
	r.held++
	s[i] = slot{u: u, v: v}
}

// evict removes slot i's edge from the subgraph, subtracting its wedge
// delta. Duplicate slots vacate without touching adjacency.
func (r *Reservoir) evict(i int) {
	e := r.slots[i]
	if e.dup {
		return
	}
	r.removeAdj(e.u, e.v)
	r.count -= r.wedgeDelta(e.u, e.v)
	r.held--
}

// wedgeDelta returns the number of butterflies the edge (u,v) closes
// against the current adjacency, which must NOT contain (u,v): every
// other V1 vertex w adjacent to v contributes |N(u) ∩ N(w)| butterflies
// (each shared V2 partner besides v completes a 2×2 biclique).
func (r *Reservoir) wedgeDelta(u, v int32) int64 {
	nu := r.adjU[u]
	if len(nu) == 0 {
		return 0
	}
	var delta int64
	for _, w := range r.adjV[v] {
		if w == u {
			continue
		}
		delta += intersectCount(nu, r.adjU[w])
	}
	return delta
}

func (r *Reservoir) contains(u, v int32) bool {
	nu := r.adjU[u]
	i := sort.Search(len(nu), func(i int) bool { return nu[i] >= v })
	return i < len(nu) && nu[i] == v
}

func (r *Reservoir) insertAdj(u, v int32) {
	r.adjU[u] = r.sortedInsert(r.adjU[u], v)
	r.adjV[v] = r.sortedInsert(r.adjV[v], u)
}

func (r *Reservoir) removeAdj(u, v int32) {
	r.adjU[u] = r.sortedRemove(r.adjU, u, v)
	r.adjV[v] = r.sortedRemove(r.adjV, v, u)
	if len(r.adjU[u]) == 0 {
		delete(r.adjU, u)
	}
	if len(r.adjV[v]) == 0 {
		delete(r.adjV, v)
	}
}

// sortedInsert places x into sorted slice s, drawing backing arrays
// from the free list so the saturated steady state (every insert paired
// with an evict) allocates nothing.
func (r *Reservoir) sortedInsert(s []int32, x int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if len(s) == cap(s) {
		grown := r.grab(len(s) + 1)
		grown = append(grown, s[:i]...)
		grown = append(grown, x)
		grown = append(grown, s[i:]...)
		if s != nil {
			r.recycle(s)
		}
		return grown
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

func (r *Reservoir) sortedRemove(adj map[int32][]int32, k, x int32) []int32 {
	s := adj[k]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i >= len(s) || s[i] != x {
		return s
	}
	copy(s[i:], s[i+1:])
	s = s[:len(s)-1]
	if len(s) == 0 {
		r.recycle(s[:0])
	}
	return s
}

// grab returns a zero-length slice with capacity ≥ need, preferring the
// recycle pool.
func (r *Reservoir) grab(need int) []int32 {
	for i := len(r.free) - 1; i >= 0; i-- {
		if cap(r.free[i]) >= need {
			s := r.free[i][:0]
			r.free[i] = r.free[len(r.free)-1]
			r.free = r.free[:len(r.free)-1]
			return s
		}
	}
	c := 4
	for c < need {
		c *= 2
	}
	return make([]int32, 0, c)
}

func (r *Reservoir) recycle(s []int32) {
	if cap(s) == 0 || len(r.free) >= 64 {
		return
	}
	r.free = append(r.free, s[:0])
}

// Snapshot returns a consistent view of the estimator: safe to call
// concurrently with Add/AddBatch, O(1) work.
func (r *Reservoir) Snapshot() ReservoirSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := ReservoirSnapshot{
		EdgesSeen:     r.seen,
		ReservoirSize: r.held,
		Capacity:      r.cap,
		Butterflies:   r.count,
	}
	if r.seen <= int64(r.cap) {
		snap.Estimate = float64(r.count)
		snap.Exact = true
		return snap
	}
	p4 := r.survival(4)
	snap.Estimate = float64(r.count) / p4
	if r.varSeen != r.seen || r.varCount != r.count {
		r.varStdErr = r.stdErr(p4)
		r.varSeen, r.varCount = r.seen, r.count
	}
	snap.StdErr = r.varStdErr
	snap.CI95 = 1.96 * snap.StdErr
	return snap
}

// survival returns p_k = Π_{i=0..k−1} (R − i) / (N − i): the
// probability that k specific distinct stream edges are all in the
// reservoir together.
func (r *Reservoir) survival(k int64) float64 {
	p := 1.0
	for i := int64(0); i < k; i++ {
		p *= float64(int64(r.cap)-i) / float64(r.seen-i)
	}
	return p
}

// stdErr estimates the standard error of the scaled count. Writing T
// for the true stream count, P1/P2 for the number of butterfly pairs
// sharing exactly one/two edges, and c ~ observed reservoir count:
//
//	Var(c) = T·p₄(1−p₄) + 2P1(p₇−p₄²) + 2P2(p₆−p₄²)
//
// (two distinct butterflies share at most two edges, and a shared edge
// pair is always a wedge). T, P1 and P2 are estimated from the
// reservoir by inverse-probability scaling: T ≈ c/p₄, P2 ≈ q2/p₆,
// P1 ≈ (sₑ − 2q2)/p₇, where q2 and sₑ are the shared-wedge pair count
// and Σₑ C(supportₑ, 2) measured on the reservoir subgraph. The
// negative covariance of disjoint pairs (p₈ < p₄²) is ignored, making
// the bars slightly conservative.
func (r *Reservoir) stdErr(p4 float64) float64 {
	c := float64(r.count)
	if c < 1 {
		c = 1 // a zero observed count still has sampling uncertainty
	}
	q2, se := r.pairStats()
	p6, p7 := r.survival(6), r.survival(7)
	varC := c * (1 - p4)
	if p7 > 0 {
		if p1 := se - 2*q2; p1 > 0 {
			varC += 2 * p1 * (p7 - p4*p4) / p7
		}
	}
	if p6 > 0 && q2 > 0 {
		varC += 2 * q2 * (p6 - p4*p4) / p6
	}
	return math.Sqrt(varC) / p4
}

// pairStats walks the reservoir subgraph and returns q2 — the number
// of butterfly pairs sharing a wedge — and se = Σₑ C(supportₑ, 2),
// which counts pairs sharing one edge once and pairs sharing two edges
// twice. A wedge centered at a V2 vertex with V1 endpoints (u,w) is
// contained in β_uw − 1 butterflies (β_uw = common-neighbor count), so
// the pair's β_uw wedges contribute β·C(β−1, 2); V1-centered wedges
// symmetrically via γ_vx.
func (r *Reservoir) pairStats() (q2, se float64) {
	beta := make(map[int64]int32) // V1-pair -> common V2 neighbors
	for _, us := range r.adjV {
		for i := 0; i < len(us); i++ {
			for j := i + 1; j < len(us); j++ {
				beta[pairKey(us[i], us[j])]++
			}
		}
	}
	for _, b := range beta {
		q2 += float64(b) * choose2(int64(b)-1)
	}
	gamma := make(map[int64]int32) // V2-pair -> common V1 neighbors
	for _, vs := range r.adjU {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				gamma[pairKey(vs[i], vs[j])]++
			}
		}
	}
	for _, g := range gamma {
		q2 += float64(g) * choose2(int64(g)-1)
	}
	for u, vs := range r.adjU {
		for _, v := range vs {
			var sup int64
			for _, w := range r.adjV[v] {
				if w == u {
					continue
				}
				sup += int64(beta[pairKey(u, w)]) - 1
			}
			se += choose2(sup)
		}
	}
	return q2, se
}

func pairKey(a, b int32) int64 {
	if a > b {
		a, b = b, a
	}
	return int64(a)<<32 | int64(uint32(b))
}

func choose2(n int64) float64 {
	if n < 2 {
		return 0
	}
	return float64(n) * float64(n-1) / 2
}

// intersectCount returns |a ∩ b| for sorted slices.
func intersectCount(a, b []int32) int64 {
	var n int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
