// Package dynamic maintains an exact butterfly count under edge
// insertions and deletions.
//
// The static family recounts from scratch; here the update rule falls
// out of the same per-edge support quantity the paper's equation (24)
// derives: inserting edge (u, v) creates exactly
//
//	Σ_{w ∈ N(v)\{u}} (|N(u) ∩ N(w)| − 1)
//
// new butterflies (its support in the post-insertion graph), and
// deleting an edge destroys its pre-deletion support. Each update
// costs O(Σ_{w∈N(v)} min(deg u, deg w)) set intersections — far below
// a recount for local changes. This is the building block for
// streaming butterfly analytics over evolving bipartite graphs.
package dynamic

import (
	"fmt"

	"butterfly/internal/graph"
)

// Counter is a mutable bipartite graph with an incrementally
// maintained butterfly count. Not safe for concurrent mutation.
type Counter struct {
	adj   []map[int32]struct{} // u ∈ V1 → neighbor set in V2
	adjT  []map[int32]struct{} // v ∈ V2 → neighbor set in V1
	edges int64
	count int64
}

// New returns an empty counter over vertex sets of size m and n.
func New(m, n int) *Counter {
	if m < 0 || n < 0 {
		panic(fmt.Sprintf("dynamic: negative vertex-set size %d/%d", m, n))
	}
	c := &Counter{
		adj:  make([]map[int32]struct{}, m),
		adjT: make([]map[int32]struct{}, n),
	}
	for i := range c.adj {
		c.adj[i] = make(map[int32]struct{})
	}
	for i := range c.adjT {
		c.adjT[i] = make(map[int32]struct{})
	}
	return c
}

// FromGraph seeds a counter with an existing graph. Cost: one pass to
// load adjacency plus one incremental insert per edge (so the initial
// count is itself produced by the update rule — a deliberate
// self-check; use core.Count* + manual loading when seeding giant
// graphs).
func FromGraph(g *graph.Bipartite) *Counter {
	c := New(g.NumV1(), g.NumV2())
	for u := 0; u < g.NumV1(); u++ {
		for _, v := range g.NeighborsOfV1(u) {
			c.InsertEdge(u, int(v))
		}
	}
	return c
}

// NumV1 returns |V1|.
func (c *Counter) NumV1() int { return len(c.adj) }

// NumV2 returns |V2|.
func (c *Counter) NumV2() int { return len(c.adjT) }

// NumEdges returns the current |E|.
func (c *Counter) NumEdges() int64 { return c.edges }

// Count returns the current number of butterflies.
func (c *Counter) Count() int64 { return c.count }

// HasEdge reports whether (u, v) is present.
func (c *Counter) HasEdge(u, v int) bool {
	if u < 0 || u >= len(c.adj) || v < 0 || v >= len(c.adjT) {
		return false
	}
	_, ok := c.adj[u][int32(v)]
	return ok
}

func (c *Counter) check(u, v int) {
	if u < 0 || u >= len(c.adj) || v < 0 || v >= len(c.adjT) {
		panic(fmt.Sprintf("dynamic: edge (%d,%d) out of range %dx%d", u, v, len(c.adj), len(c.adjT)))
	}
}

// InsertEdge adds (u, v) and returns whether it was new plus the
// number of butterflies it created.
func (c *Counter) InsertEdge(u, v int) (added bool, delta int64) {
	c.check(u, v)
	if _, dup := c.adj[u][int32(v)]; dup {
		return false, 0
	}
	c.adj[u][int32(v)] = struct{}{}
	c.adjT[v][int32(u)] = struct{}{}
	c.edges++
	delta = c.support(u, v)
	c.count += delta
	return true, delta
}

// DeleteEdge removes (u, v) and returns whether it existed plus the
// (non-negative) number of butterflies it destroyed.
func (c *Counter) DeleteEdge(u, v int) (removed bool, delta int64) {
	c.check(u, v)
	if _, ok := c.adj[u][int32(v)]; !ok {
		return false, 0
	}
	delta = c.support(u, v)
	delete(c.adj[u], int32(v))
	delete(c.adjT[v], int32(u))
	c.edges--
	c.count -= delta
	return true, delta
}

// support computes the number of butterflies containing the present
// edge (u, v): Σ_{w∈N(v)\{u}} (|N(u) ∩ N(w)| − 1), where the −1
// removes the shared neighbor v itself.
func (c *Counter) support(u, v int) int64 {
	var s int64
	nu := c.adj[u]
	for w := range c.adjT[v] {
		if int(w) == u {
			continue
		}
		s += intersectSize(nu, c.adj[w]) - 1
	}
	return s
}

// intersectSize returns |a ∩ b|, iterating the smaller set.
func intersectSize(a, b map[int32]struct{}) int64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	var n int64
	for k := range a {
		if _, ok := b[k]; ok {
			n++
		}
	}
	return n
}

// Snapshot materializes the current graph as an immutable Bipartite.
func (c *Counter) Snapshot() *graph.Bipartite {
	b := graph.NewBuilder(len(c.adj), len(c.adjT))
	for u, nbrs := range c.adj {
		for v := range nbrs {
			b.AddEdge(u, int(v))
		}
	}
	return b.Build()
}

// VertexDelta returns how many butterflies vertex u ∈ V1 would lose if
// removed right now — the dynamic analogue of the per-vertex vector
// (19), useful for online tip-style maintenance.
func (c *Counter) VertexDelta(u int) int64 {
	if u < 0 || u >= len(c.adj) {
		panic(fmt.Sprintf("dynamic: vertex %d out of range", u))
	}
	return vertexDelta(c.adj, c.adjT, u)
}

// VertexDeltaV2 is VertexDelta for a vertex v ∈ V2.
func (c *Counter) VertexDeltaV2(v int) int64 {
	if v < 0 || v >= len(c.adjT) {
		panic(fmt.Sprintf("dynamic: vertex %d out of range", v))
	}
	return vertexDelta(c.adjT, c.adj, v)
}

// vertexDelta computes Σ_{w≠u} C(β_uw, 2) with β accumulated over
// two-hop neighbors in the given orientation.
func vertexDelta(adj, adjT []map[int32]struct{}, u int) int64 {
	acc := make(map[int32]int64)
	for v := range adj[u] {
		for w := range adjT[v] {
			if int(w) != u {
				acc[w]++
			}
		}
	}
	var s int64
	for _, beta := range acc {
		s += beta * (beta - 1) / 2
	}
	return s
}
