package dynamic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/core"
	"butterfly/internal/gen"
)

func TestEmptyCounter(t *testing.T) {
	c := New(3, 4)
	if c.Count() != 0 || c.NumEdges() != 0 || c.NumV1() != 3 || c.NumV2() != 4 {
		t.Fatal("empty counter wrong")
	}
	if c.HasEdge(0, 0) || c.HasEdge(-1, 0) || c.HasEdge(0, 9) {
		t.Fatal("phantom edges")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(-1, 2)
}

func TestInsertBuildsButterfly(t *testing.T) {
	c := New(2, 2)
	for _, e := range [][2]int{{0, 0}, {0, 1}, {1, 0}} {
		added, delta := c.InsertEdge(e[0], e[1])
		if !added || delta != 0 {
			t.Fatalf("edge %v: added=%v delta=%d", e, added, delta)
		}
	}
	added, delta := c.InsertEdge(1, 1) // closes K(2,2)
	if !added || delta != 1 {
		t.Fatalf("closing edge: added=%v delta=%d", added, delta)
	}
	if c.Count() != 1 {
		t.Fatalf("Count = %d", c.Count())
	}
}

func TestDuplicateInsertNoop(t *testing.T) {
	c := New(2, 2)
	c.InsertEdge(0, 0)
	added, delta := c.InsertEdge(0, 0)
	if added || delta != 0 || c.NumEdges() != 1 {
		t.Fatal("duplicate insert not a no-op")
	}
}

func TestDeleteMissingNoop(t *testing.T) {
	c := New(2, 2)
	removed, delta := c.DeleteEdge(1, 1)
	if removed || delta != 0 {
		t.Fatal("missing delete not a no-op")
	}
}

func TestInsertDeleteRoundTrip(t *testing.T) {
	c := FromGraph(gen.CompleteBipartite(3, 3))
	if c.Count() != 9 {
		t.Fatalf("K(3,3) count = %d, want 9", c.Count())
	}
	removed, delta := c.DeleteEdge(0, 0)
	if !removed || delta != 4 {
		// edge (0,0) in K(3,3) supports (3-1)(3-1) = 4 butterflies
		t.Fatalf("delete: removed=%v delta=%d", removed, delta)
	}
	if c.Count() != 5 {
		t.Fatalf("count after delete = %d, want 5", c.Count())
	}
	added, delta := c.InsertEdge(0, 0)
	if !added || delta != 4 || c.Count() != 9 {
		t.Fatalf("reinsert: delta=%d count=%d", delta, c.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	c := New(2, 2)
	for name, fn := range map[string]func(){
		"insert": func() { c.InsertEdge(2, 0) },
		"delete": func() { c.DeleteEdge(0, -1) },
		"vertex": func() { c.VertexDelta(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// The core property: after any random mutation sequence, the
// maintained count equals a fresh static recount of the snapshot.
func TestQuickCounterMatchesStaticRecount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := rng.Intn(8)+2, rng.Intn(8)+2
		c := New(m, n)
		for step := 0; step < 60; step++ {
			u, v := rng.Intn(m), rng.Intn(n)
			if rng.Intn(3) == 0 {
				c.DeleteEdge(u, v)
			} else {
				c.InsertEdge(u, v)
			}
		}
		return c.Count() == core.CountAuto(c.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Deltas must telescope: Σ insert deltas − Σ delete deltas == count.
func TestQuickDeltasTelescope(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := rng.Intn(7)+2, rng.Intn(7)+2
		c := New(m, n)
		var running int64
		for step := 0; step < 50; step++ {
			u, v := rng.Intn(m), rng.Intn(n)
			if rng.Intn(3) == 0 {
				_, d := c.DeleteEdge(u, v)
				running -= d
			} else {
				_, d := c.InsertEdge(u, v)
				running += d
			}
		}
		return running == c.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFromGraphMatchesStatic(t *testing.T) {
	g := gen.PowerLawBipartite(80, 60, 400, 0.7, 0.7, 9)
	c := FromGraph(g)
	if c.Count() != core.CountAuto(g) {
		t.Fatalf("FromGraph count %d, static %d", c.Count(), core.CountAuto(g))
	}
	if c.NumEdges() != g.NumEdges() {
		t.Fatal("edge count mismatch")
	}
	if !c.Snapshot().Equal(g) {
		t.Fatal("snapshot differs from source")
	}
}

// VertexDelta agrees with the static per-vertex vector.
func TestQuickVertexDeltaMatchesStatic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng.Intn(8)+2, rng.Intn(8)+2, 0.5, seed)
		c := FromGraph(g)
		want := core.VertexButterflies(g, core.SideV1)
		for u := 0; u < g.NumV1(); u++ {
			if c.VertexDelta(u) != want[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	g := gen.PowerLawBipartite(5000, 4000, 30000, 0.7, 0.7, 11)
	c := FromGraph(g)
	rng := rand.New(rand.NewSource(12))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := rng.Intn(5000), rng.Intn(4000)
		if i%2 == 0 {
			c.InsertEdge(u, v)
		} else {
			c.DeleteEdge(u, v)
		}
	}
}

func TestQuickVertexDeltaV2MatchesStatic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng.Intn(8)+2, rng.Intn(8)+2, 0.5, seed)
		c := FromGraph(g)
		want := core.VertexButterflies(g, core.SideV2)
		for v := 0; v < g.NumV2(); v++ {
			if c.VertexDeltaV2(v) != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestVertexDeltaV2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(2, 2).VertexDeltaV2(2)
}
