package peel

import (
	"butterfly/internal/core"
	"butterfly/internal/graph"
	"butterfly/internal/sparse"
)

// KWingParallel is KWingSubgraph with each iteration's support matrix
// computed by `threads` workers; the fixpoint is identical. The rounds
// share one value buffer and one core.Arena, so each iteration's
// support sweep reuses the previous round's scratch. This is the
// recount engine, kept as the oracle for KWingDelta.
func KWingParallel(g *graph.Bipartite, k int64, threads int) *graph.Bipartite {
	sub, _ := kWingRecount(g, k, threads, nil)
	return sub
}

// kWingRecount is KWingParallel reporting the number of fixpoint
// rounds, with an optional stage hook.
func kWingRecount(g *graph.Bipartite, k int64, threads int, stage stageFunc) (*graph.Bipartite, int) {
	arena := core.NewArena()
	valsBuf := make([]int64, g.NumEdges())
	cur := g
	rounds := 0
	for {
		rt := stageNow(stage)
		rounds++
		sw := core.EdgeSupportParallelInto(valsBuf, cur, threads, arena)
		kept := sparse.PatternOf(sparse.Select(sw, func(_ int, _ int32, v int64) bool {
			return v >= k
		}))
		if kept.NNZ() == cur.NumEdges() {
			emitRound(stage, rounds-1, rt)
			return cur, rounds
		}
		next, err := graph.FromCSR(kept)
		if err != nil {
			panic("peel: internal error rebuilding k-wing graph: " + err.Error())
		}
		cur = next
		emitRound(stage, rounds-1, rt)
	}
}

// WingDecompositionRounds computes the same wing numbers as
// WingDecomposition with round-synchronous peeling: every round
// removes all edges whose current support is at or below the running
// level, then recomputes supports of the surviving subgraph with
// `threads` workers. Confluence makes the result identical to the
// heap-ordered sequential peeling (asserted by tests).
//
// Edge identities are flat indices into g.Adj(); removed edges keep
// their original ids across rounds via an explicit id map, so the
// output lines up with WingDecomposition's.
//
// This is the recount engine — every round rebuilds the surviving
// subgraph and recomputes all supports — kept as the oracle for the
// incremental WingDecompositionDelta.
func WingDecompositionRounds(g *graph.Bipartite, threads int) []int64 {
	wing, _ := wingDecompositionRecount(g, threads, nil)
	return wing
}

// wingDecompositionRecount is WingDecompositionRounds reporting the
// number of peeling rounds, with an optional stage hook.
func wingDecompositionRecount(g *graph.Bipartite, threads int, stage stageFunc) ([]int64, int) {
	orig := g.Adj()
	wing := make([]int64, orig.NNZ())

	cur := g
	// ids[k] = original flat id of the k-th surviving edge of cur.
	ids := make([]int64, orig.NNZ())
	for i := range ids {
		ids[i] = int64(i)
	}

	arena := core.NewArena()
	valsBuf := make([]int64, orig.NNZ())

	var level int64
	rounds := 0
	for cur.NumEdges() > 0 {
		rt := stageNow(stage)
		rounds++
		sup := core.EdgeSupportParallelInto(valsBuf, cur, threads, arena)
		min := int64(-1)
		for _, v := range sup.Val {
			if min < 0 || v < min {
				min = v
			}
		}
		if min > level {
			level = min
		}

		adj := cur.Adj()
		keep := make([]bool, adj.NNZ())
		nextIDs := ids[:0:0]
		removedAny := false
		for e, v := range sup.Val {
			if v <= level {
				wing[ids[e]] = level
				removedAny = true
				continue
			}
			keep[e] = true
			nextIDs = append(nextIDs, ids[e])
		}
		if !removedAny {
			// Cannot happen: min ≤ level always peels at least one edge.
			panic("peel: wing rounds made no progress")
		}
		kept := sparse.PatternOf(sparse.Select(adj, func(i int, j int32, _ int64) bool {
			e, ok := edgeID(adj, i, j)
			return ok && keep[e]
		}))
		next, err := graph.FromCSR(kept)
		if err != nil {
			panic("peel: internal error rebuilding graph: " + err.Error())
		}
		cur = next
		ids = nextIDs
		emitRound(stage, rounds-1, rt)
	}
	return wing, rounds
}
