package peel

import (
	"butterfly/internal/bitvec"
	"butterfly/internal/core"
	"butterfly/internal/graph"
)

// DensestResult describes the subgraph found by DensestByButterflies.
type DensestResult struct {
	// KeepSide marks the surviving vertices of the peeled side.
	KeepSide []bool
	// Butterflies and Vertices of the best prefix; Density is their
	// ratio.
	Butterflies int64
	Vertices    int
	Density     float64
}

// DensestByButterflies extracts a subgraph maximizing butterflies per
// retained vertex of the chosen side, with the classic greedy-peeling
// scheme: repeatedly remove the vertex in the fewest butterflies
// (exactly the tip-decomposition order) and remember the moment the
// running density Ξ/|active| peaked. For the clique-like dense regions
// the paper's abstract motivates, greedy peeling of a supermodular
// density objective gives the usual constant-factor guarantee; on a
// planted biclique it recovers the block exactly (tested).
func DensestByButterflies(g *graph.Bipartite, side core.Side) DensestResult {
	exposed, secondary := g.Adj(), g.AdjT()
	if side == core.SideV2 {
		exposed, secondary = g.AdjT(), g.Adj()
	}
	n := exposed.R

	active := make([]bool, n)
	activeCount := 0
	for i := range active {
		if exposed.RowDeg(i) > 0 {
			active[i] = true
			activeCount++
		}
	}
	res := DensestResult{KeepSide: make([]bool, n)}
	if activeCount == 0 {
		return res
	}

	s := core.VertexButterfliesMasked(g, side, active)
	var total int64
	for _, v := range s {
		total += v
	}
	total /= 2 // each butterfly credited at both same-side vertices

	removed := make([]bool, n)
	h := newLazyMin(s)
	// Track the best density over the peeling trajectory; order of
	// removal is the tip-decomposition order.
	order := make([]int32, 0, activeCount)
	best := float64(total) / float64(activeCount)
	bestStep := 0 // number of removals at the best prefix
	if total == 0 {
		best = 0
	}

	acc := make([]int32, n)
	touched := make([]int32, 0, 1024)
	step := 0
	for {
		_, id, ok := h.popCurrent(s, removed)
		if !ok {
			break
		}
		u := int(id)
		if !active[u] {
			removed[u] = true
			continue
		}
		// Remove u: subtract its pair contributions.
		removed[u] = true
		active[u] = false
		order = append(order, int32(u))
		total -= s[u]
		activeCount--
		step++

		u32 := int32(u)
		for _, y := range exposed.Row(u) {
			for _, w := range secondary.Row(int(y)) {
				if w == u32 || !active[w] {
					continue
				}
				if acc[w] == 0 {
					touched = append(touched, w)
				}
				acc[w]++
			}
		}
		for _, w := range touched {
			c := int64(acc[w])
			loss := c * (c - 1) / 2
			s[w] -= loss
			h.push(s[w], int64(w))
			acc[w] = 0
		}
		touched = touched[:0]

		if activeCount > 0 {
			if d := float64(total) / float64(activeCount); d > best {
				best = d
				bestStep = step
			}
		}
	}

	// Reconstruct the best prefix: everything not among the first
	// bestStep removals (and not isolated at the start).
	for i := range res.KeepSide {
		res.KeepSide[i] = exposed.RowDeg(i) > 0
	}
	for _, u := range order[:bestStep] {
		res.KeepSide[u] = false
	}
	res.Vertices = 0
	for _, k := range res.KeepSide {
		if k {
			res.Vertices++
		}
	}
	res.Butterflies = countKept(g, side, res.KeepSide)
	if res.Vertices > 0 {
		res.Density = float64(res.Butterflies) / float64(res.Vertices)
	}
	return res
}

// countKept counts butterflies of the side-masked subgraph.
func countKept(g *graph.Bipartite, side core.Side, keep []bool) int64 {
	bv := bitvec.New(len(keep))
	for i, k := range keep {
		if k {
			bv.Set(i)
		}
	}
	var h *graph.Bipartite
	if side == core.SideV1 {
		h = g.InducedSubgraph(bv, nil)
	} else {
		h = g.InducedSubgraph(nil, bv)
	}
	return core.CountAuto(h)
}
