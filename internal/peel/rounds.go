package peel

import (
	"butterfly/internal/core"
	"butterfly/internal/graph"
)

// TipDecompositionRounds computes the same tip numbers as
// TipDecomposition with round-synchronous peeling: every round removes
// *all* vertices whose current butterfly count is at or below the
// running level and recomputes the survivors' counts with `threads`
// workers. This is the bulk-parallel peeling structure of ParButterfly
// [12]; peeling is confluent, so the resulting tip numbers are
// identical to the heap-ordered sequential ones (asserted by tests).
//
// Trade-off versus TipDecomposition: each round recomputes counts in
// O(wedges of the surviving subgraph) but rounds are internally
// parallel; the heap version does minimal incremental work but is
// inherently sequential. Graphs with few peeling levels (most
// real-world bipartite networks) favor rounds.
//
// All rounds share one output buffer and one core.Arena, so the loop's
// steady state allocates nothing (see TestTipRoundsArenaZeroAlloc).
//
// This is the "recount" engine: simple, internally parallel, and kept
// as the differential-testing oracle for the incremental delta engine
// (TipDecompositionDelta), which does asymptotically less work.
func TipDecompositionRounds(g *graph.Bipartite, side core.Side, threads int) []int64 {
	tip, _ := tipDecompositionRecount(g, side, threads, nil)
	return tip
}

// tipDecompositionRecount is TipDecompositionRounds reporting the
// number of peeling rounds, with an optional stage hook receiving
// per-round "peel.round[i]" timings.
func tipDecompositionRecount(g *graph.Bipartite, side core.Side, threads int, stage stageFunc) ([]int64, int) {
	n := g.NumV1()
	if side == core.SideV2 {
		n = g.NumV2()
	}
	active := make([]bool, n)
	remaining := 0
	for i := range active {
		active[i] = true
		remaining++
	}
	tip := make([]int64, n)
	var level int64
	rounds := 0

	arena := core.NewArena()
	s := make([]int64, n)
	for remaining > 0 {
		rt := stageNow(stage)
		rounds++
		core.VertexButterfliesMaskedInto(s, g, side, active, threads, arena)
		// Find the minimum count among active vertices.
		min := int64(-1)
		for u, a := range active {
			if a && (min < 0 || s[u] < min) {
				min = s[u]
			}
		}
		if min > level {
			level = min
		}
		// Peel everything at or below the level.
		for u, a := range active {
			if a && s[u] <= level {
				tip[u] = level
				active[u] = false
				remaining--
			}
		}
		emitRound(stage, rounds-1, rt)
	}
	return tip, rounds
}

// KTipParallel is KTipSubgraph with the per-iteration butterfly vector
// computed by `threads` workers. Results are identical to KTipSubgraph.
// Like TipDecompositionRounds this is the recount engine, kept as the
// oracle for KTipDelta.
func KTipParallel(g *graph.Bipartite, k int64, side core.Side, threads int) *graph.Bipartite {
	sub, _ := kTipRecount(g, k, side, threads, nil)
	return sub
}

// kTipRecount is KTipParallel reporting the number of fixpoint rounds,
// with an optional stage hook.
func kTipRecount(g *graph.Bipartite, k int64, side core.Side, threads int, stage stageFunc) (*graph.Bipartite, int) {
	n := g.NumV1()
	if side == core.SideV2 {
		n = g.NumV2()
	}
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	arena := core.NewArena()
	s := make([]int64, n)
	rounds := 0
	for {
		rt := stageNow(stage)
		rounds++
		core.VertexButterfliesMaskedInto(s, g, side, active, threads, arena)
		changed := false
		for u := range active {
			if active[u] && s[u] < k {
				active[u] = false
				changed = true
			}
		}
		emitRound(stage, rounds-1, rt)
		if !changed {
			break
		}
	}
	return maskSide(g, side, active), rounds
}
