package peel

import (
	"sort"

	"butterfly/internal/core"
	"butterfly/internal/graph"
	"butterfly/internal/sparse"
)

// KWingSubgraph returns the k-wing of g: the maximal subgraph in which
// every remaining edge is contained in at least k butterflies. It runs
// the paper's iterative formulation (25)–(27): compute the support
// matrix S_w, keep edges with support ≥ k (the mask M of (26) applied
// as the Hadamard product (27)), repeat to a fixpoint.
func KWingSubgraph(g *graph.Bipartite, k int64) *graph.Bipartite {
	cur := g
	for {
		sw := core.EdgeSupport(cur)
		kept := sparse.PatternOf(sparse.Select(sw, func(_ int, _ int32, v int64) bool {
			return v >= k
		}))
		if kept.NNZ() == cur.NumEdges() {
			return cur
		}
		next, err := graph.FromCSR(kept)
		if err != nil {
			panic("peel: internal error rebuilding k-wing graph: " + err.Error())
		}
		// Preserve the original shape: FromCSR keeps dimensions, since
		// Select never drops rows/columns, only entries.
		cur = next
	}
}

// WingDecomposition returns the wing number of every edge of g, in the
// flat CSR edge order of g.Adj() (edge id = Ptr[u] + offset): the
// largest k such that the edge survives in the k-wing.
//
// Edges are peeled in non-decreasing support order. Removing edge
// (u, v) destroys exactly the butterflies containing it; each such
// butterfly {u, w} × {v, p} decrements the supports of its other three
// edges (w,v), (u,p), (w,p). Butterflies containing (u, v) are
// enumerated by intersecting N(u) with N(w) for each co-neighbor w of
// v, skipping dead edges.
func WingDecomposition(g *graph.Bipartite) []int64 {
	adj, adjT := g.Adj(), g.AdjT()
	nnz := adj.NNZ()

	sup := append([]int64(nil), core.EdgeSupport(g).Val...)
	wing := make([]int64, nnz)
	dead := make([]bool, nnz)
	h := newLazyMin(sup)

	var level int64
	for {
		key, id, ok := h.popCurrent(sup, dead)
		if !ok {
			break
		}
		e := int(id)
		if key > level {
			level = key
		}
		wing[e] = level
		dead[e] = true

		u := edgeRowOf(adj, e)
		v := adj.Col[e]
		// Every butterfly {u,w} × {v,p} through the dying edge loses its
		// other three edges one unit of support.
		for _, w := range adjT.Row(int(v)) {
			if w == int32(u) {
				continue
			}
			ewv, ok := edgeID(adj, int(w), v)
			if !ok || dead[ewv] {
				continue
			}
			forEachCommonNeighbor(adj, u, int(w), func(p int32, eup, ewp int64) {
				if p == v || dead[eup] || dead[ewp] {
					return
				}
				decr(sup, h, ewv)
				decr(sup, h, eup)
				decr(sup, h, ewp)
			})
		}
	}
	return wing
}

// decr lowers an edge's support, clamping at zero, and re-keys it.
func decr(sup []int64, h *lazyMin, e int64) {
	if sup[e] > 0 {
		sup[e]--
		h.push(sup[e], e)
	}
}

// edgeRowOf finds the row of flat edge index e by binary search on the
// row pointer.
func edgeRowOf(a *sparse.CSR, e int) int {
	return sort.Search(a.R, func(i int) bool { return a.Ptr[i+1] > int64(e) })
}

// edgeID returns the flat edge index of (u, v), if present.
func edgeID(a *sparse.CSR, u int, v int32) (int64, bool) {
	row := a.Row(u)
	k := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	if k < len(row) && row[k] == v {
		return a.Ptr[u] + int64(k), true
	}
	return 0, false
}

// forEachCommonNeighbor merges the sorted neighbor rows of u and w and
// calls fn for every common neighbor p with the flat ids of edges
// (u, p) and (w, p).
func forEachCommonNeighbor(a *sparse.CSR, u, w int, fn func(p int32, eup, ewp int64)) {
	ru, rw := a.Row(u), a.Row(w)
	bu, bw := a.Ptr[u], a.Ptr[w]
	x, y := 0, 0
	for x < len(ru) && y < len(rw) {
		switch {
		case ru[x] < rw[y]:
			x++
		case ru[x] > rw[y]:
			y++
		default:
			fn(ru[x], bu+int64(x), bw+int64(y))
			x++
			y++
		}
	}
}

// WingNumbersByEdge converts a flat wing-number vector into a map keyed
// by (u, v) edges, convenient for presentation layers.
func WingNumbersByEdge(g *graph.Bipartite, wing []int64) map[graph.Edge]int64 {
	adj := g.Adj()
	out := make(map[graph.Edge]int64, len(wing))
	for u := 0; u < adj.R; u++ {
		for k := adj.Ptr[u]; k < adj.Ptr[u+1]; k++ {
			out[graph.Edge{U: int32(u), V: adj.Col[k]}] = wing[k]
		}
	}
	return out
}
