package peel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/bitvec"
	"butterfly/internal/core"
	"butterfly/internal/dense"
	"butterfly/internal/gen"
	"butterfly/internal/graph"
	"butterfly/internal/sparse"
)

func randGraphAndDense(rng *rand.Rand, maxSide int) (*dense.Matrix, *graph.Bipartite) {
	m := rng.Intn(maxSide) + 1
	n := rng.Intn(maxSide) + 1
	d := dense.New(m, n)
	p := 0.3 + 0.5*rng.Float64()
	for i := range d.Data {
		if rng.Float64() < p {
			d.Data[i] = 1
		}
	}
	g, err := graph.FromCSR(sparse.FromDense(d, true))
	if err != nil {
		panic(err)
	}
	return d, g
}

func TestKTipZeroKeepsGraph(t *testing.T) {
	g := gen.PowerLawBipartite(50, 40, 200, 0.7, 0.7, 1)
	if !KTipSubgraph(g, 0, core.SideV1).Equal(g) {
		t.Fatal("0-tip should keep the whole graph")
	}
}

func TestKTipCompleteBipartite(t *testing.T) {
	g := gen.CompleteBipartite(4, 4)
	s := core.VertexButterflies(g, core.SideV1)[0]
	if !KTipSubgraph(g, s, core.SideV1).Equal(g) {
		t.Fatal("s-tip of K(4,4) should be the whole graph")
	}
	empty := KTipSubgraph(g, s+1, core.SideV1)
	if empty.NumEdges() != 0 {
		t.Fatalf("(s+1)-tip should be empty, has %d edges", empty.NumEdges())
	}
}

func TestQuickKTipMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 8)
		for k := int64(0); k <= 4; k++ {
			want := dense.SpecKTip(d, k)
			got := sparse.ToDense(KTipSubgraph(g, k, core.SideV1).Adj())
			if !got.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKTipLookAheadAgrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 10)
		for k := int64(0); k <= 4; k++ {
			for _, side := range []core.Side{core.SideV1, core.SideV2} {
				if !KTipLookAhead(g, k, side).Equal(KTipSubgraph(g, k, side)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestKTipSideV2MatchesTransposedV1(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	_, g := randGraphAndDense(rng, 9)
	for k := int64(0); k <= 3; k++ {
		a := KTipSubgraph(g, k, core.SideV2)
		b := KTipSubgraph(g.Transposed(), k, core.SideV1).Transposed()
		if !a.Equal(b) {
			t.Fatalf("k=%d: V2-side tip differs from transposed V1-side tip", k)
		}
	}
}

// Every vertex surviving in the k-tip must indeed sit in ≥ k
// butterflies of the k-tip (the defining property).
func TestQuickKTipDefiningProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 10)
		for k := int64(1); k <= 3; k++ {
			h := KTipSubgraph(g, k, core.SideV1)
			s := core.VertexButterflies(h, core.SideV1)
			for u := 0; u < h.NumV1(); u++ {
				if h.DegreeV1(u) > 0 && s[u] < k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestKWingZeroKeepsGraph(t *testing.T) {
	g := gen.PowerLawBipartite(50, 40, 200, 0.7, 0.7, 2)
	if !KWingSubgraph(g, 0).Equal(g) {
		t.Fatal("0-wing should keep the whole graph")
	}
}

func TestKWingCompleteBipartite(t *testing.T) {
	g := gen.CompleteBipartite(3, 5)
	s := core.EdgeSupport(g).Val[0]
	if !KWingSubgraph(g, s).Equal(g) {
		t.Fatal("s-wing of complete graph should be whole graph")
	}
	if KWingSubgraph(g, s+1).NumEdges() != 0 {
		t.Fatal("(s+1)-wing should be empty")
	}
}

func TestQuickKWingMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, g := randGraphAndDense(rng, 8)
		for k := int64(0); k <= 4; k++ {
			want := dense.SpecKWing(d, k)
			got := sparse.ToDense(KWingSubgraph(g, k).Adj())
			if !got.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Every edge surviving in the k-wing supports ≥ k butterflies inside it.
func TestQuickKWingDefiningProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 9)
		for k := int64(1); k <= 3; k++ {
			h := KWingSubgraph(g, k)
			sup := core.EdgeSupport(h)
			for _, v := range sup.Val {
				if v < k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Tip numbers are exactly the thresholds at which vertices drop out of
// k-tips.
func TestQuickTipDecompositionConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 8)
		tip := TipDecomposition(g, core.SideV1)
		maxTip := int64(0)
		for _, v := range tip {
			if v > maxTip {
				maxTip = v
			}
		}
		for k := int64(0); k <= maxTip+1; k++ {
			keep := bitvec.New(g.NumV1())
			for u, tn := range tip {
				if tn >= k {
					keep.Set(u)
				}
			}
			want := KTipSubgraph(g, k, core.SideV1)
			got := g.InducedSubgraph(keep, nil)
			if !got.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Wing numbers are exactly the thresholds at which edges drop out of
// k-wings.
func TestQuickWingDecompositionConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 7)
		wing := WingDecomposition(g)
		maxWing := int64(0)
		for _, v := range wing {
			if v > maxWing {
				maxWing = v
			}
		}
		adj := g.Adj()
		for k := int64(0); k <= maxWing+1; k++ {
			kept := sparse.PatternOf(sparse.Select(adj, func(i int, j int32, _ int64) bool {
				e, ok := edgeID(adj, i, j)
				return ok && wing[e] >= k
			}))
			got, err := graph.FromCSR(kept)
			if err != nil {
				return false
			}
			if !got.Equal(KWingSubgraph(g, k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTipDecompositionCompleteBipartite(t *testing.T) {
	g := gen.CompleteBipartite(4, 5)
	s := core.VertexButterflies(g, core.SideV1)[0]
	for u, tn := range TipDecomposition(g, core.SideV1) {
		if tn != s {
			t.Fatalf("tip number of u%d = %d, want %d (uniform graph)", u, tn, s)
		}
	}
}

func TestWingDecompositionCompleteBipartite(t *testing.T) {
	g := gen.CompleteBipartite(4, 4)
	s := core.EdgeSupport(g).Val[0]
	for e, wn := range WingDecomposition(g) {
		if wn != s {
			t.Fatalf("wing number of edge %d = %d, want %d", e, wn, s)
		}
	}
}

func TestWingDecompositionButterflyFree(t *testing.T) {
	g := gen.Star(6)
	for _, wn := range WingDecomposition(g) {
		if wn != 0 {
			t.Fatal("star edges must have wing number 0")
		}
	}
	tip := TipDecomposition(g, core.SideV1)
	if tip[0] != 0 {
		t.Fatal("star hub must have tip number 0")
	}
}

func TestWingNumbersByEdge(t *testing.T) {
	g := gen.CompleteBipartite(2, 2)
	wing := WingDecomposition(g)
	byEdge := WingNumbersByEdge(g, wing)
	if len(byEdge) != 4 {
		t.Fatalf("map has %d edges, want 4", len(byEdge))
	}
	for e, wn := range byEdge {
		if wn != 1 {
			t.Fatalf("edge %+v wing = %d, want 1", e, wn)
		}
	}
}

// Nesting: higher k never keeps more structure.
func TestQuickPeelingMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 9)
		prevTip := KTipSubgraph(g, 0, core.SideV1)
		prevWing := KWingSubgraph(g, 0)
		for k := int64(1); k <= 3; k++ {
			curTip := KTipSubgraph(g, k, core.SideV1)
			curWing := KWingSubgraph(g, k)
			if curTip.NumEdges() > prevTip.NumEdges() || curWing.NumEdges() > prevWing.NumEdges() {
				return false
			}
			prevTip, prevWing = curTip, curWing
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeHelpers(t *testing.T) {
	g := gen.CompleteBipartite(3, 3)
	adj := g.Adj()
	if row := edgeRowOf(adj, 4); row != 1 {
		t.Fatalf("edgeRowOf(4) = %d, want 1", row)
	}
	id, ok := edgeID(adj, 2, 1)
	if !ok || id != adj.Ptr[2]+1 {
		t.Fatalf("edgeID(2,1) = %d,%v", id, ok)
	}
	if _, ok := edgeID(adj, 2, 5); ok {
		t.Fatal("edgeID found a non-edge")
	}
	count := 0
	forEachCommonNeighbor(adj, 0, 1, func(p int32, eup, ewp int64) {
		if adj.Col[eup] != p || adj.Col[ewp] != p {
			t.Fatal("edge ids do not match neighbor")
		}
		count++
	})
	if count != 3 {
		t.Fatalf("common neighbors = %d, want 3", count)
	}
}
