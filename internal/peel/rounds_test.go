package peel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/core"
	"butterfly/internal/gen"
)

// Round-synchronous peeling must produce the same tip numbers as the
// heap-ordered sequential decomposition (confluence).
func TestQuickTipRoundsMatchSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 9)
		for _, side := range []core.Side{core.SideV1, core.SideV2} {
			want := TipDecomposition(g, side)
			for _, threads := range []int{1, 3} {
				got := TipDecompositionRounds(g, side, threads)
				for i := range want {
					if got[i] != want[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTipRoundsMediumGraph(t *testing.T) {
	g := gen.PowerLawBipartite(300, 250, 2000, 0.7, 0.7, 3)
	want := TipDecomposition(g, core.SideV1)
	got := TipDecompositionRounds(g, core.SideV1, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: rounds %d, sequential %d", i, got[i], want[i])
		}
	}
}

func TestTipRoundsEmptyAndButterflyFree(t *testing.T) {
	for _, tip := range TipDecompositionRounds(gen.Star(5), core.SideV2, 2) {
		if tip != 0 {
			t.Fatal("star leaves should have tip 0")
		}
	}
	empty := TipDecompositionRounds(gen.CompleteBipartite(0, 0), core.SideV1, 2)
	if len(empty) != 0 {
		t.Fatal("empty graph should give empty tips")
	}
}

func TestQuickKTipParallelMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 9)
		for k := int64(0); k <= 3; k++ {
			for _, side := range []core.Side{core.SideV1, core.SideV2} {
				if !KTipParallel(g, k, side, 4).Equal(KTipSubgraph(g, k, side)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMaskedParallelMatchesMasked(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 12)
		active := make([]bool, g.NumV1())
		for i := range active {
			active[i] = rng.Intn(4) > 0
		}
		want := core.VertexButterfliesMasked(g, core.SideV1, active)
		got := core.VertexButterfliesMaskedParallel(g, core.SideV1, active, 3)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWingRoundsMatchSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 8)
		want := WingDecomposition(g)
		for _, threads := range []int{1, 3} {
			got := WingDecompositionRounds(g, threads)
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWingRoundsMediumGraph(t *testing.T) {
	g := gen.PowerLawBipartite(120, 100, 900, 0.7, 0.7, 13)
	want := WingDecomposition(g)
	got := WingDecompositionRounds(g, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: rounds %d, heap %d", i, got[i], want[i])
		}
	}
}

func TestQuickKWingParallelMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 8)
		for k := int64(0); k <= 3; k++ {
			if !KWingParallel(g, k, 3).Equal(KWingSubgraph(g, k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWingRoundsEmpty(t *testing.T) {
	if got := WingDecompositionRounds(gen.CompleteBipartite(0, 0), 2); len(got) != 0 {
		t.Fatal("empty graph should give empty wing numbers")
	}
	for _, wn := range WingDecompositionRounds(gen.Star(4), 2) {
		if wn != 0 {
			t.Fatal("butterfly-free edges must have wing 0")
		}
	}
}
