package peel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/core"
	"butterfly/internal/gen"
)

// The incremental delta engine must produce the same tip numbers as the
// heap-ordered sequential decomposition and the recount engine
// (confluence) on random graphs, on both sides, sequential and
// parallel. This is the tentpole differential test; it also runs under
// -race in CI, which exercises the atomic paths of the delta kernels.
func TestQuickTipDeltaMatchesSequentialAndRecount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 9)
		for _, side := range []core.Side{core.SideV1, core.SideV2} {
			want := TipDecomposition(g, side)
			oracle := TipDecompositionRounds(g, side, 2)
			for i := range want {
				if oracle[i] != want[i] {
					return false
				}
			}
			for _, threads := range []int{1, 3} {
				got, _ := TipDecompositionDelta(g, side, threads)
				for i := range want {
					if got[i] != want[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTipDeltaMediumGraph(t *testing.T) {
	g := gen.PowerLawBipartite(300, 250, 2000, 0.7, 0.7, 3)
	want := TipDecomposition(g, core.SideV1)
	got, rounds := TipDecompositionDelta(g, core.SideV1, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: delta %d, sequential %d", i, got[i], want[i])
		}
	}
	if rounds < 1 {
		t.Fatalf("expected at least one peeled batch, got %d", rounds)
	}
}

func TestTipDeltaEmptyAndButterflyFree(t *testing.T) {
	for _, tip := range mustTip(TipDecompositionDelta(gen.Star(5), core.SideV2, 2)) {
		if tip != 0 {
			t.Fatal("star leaves should have tip 0")
		}
	}
	empty, rounds := TipDecompositionDelta(gen.CompleteBipartite(0, 0), core.SideV1, 2)
	if len(empty) != 0 || rounds != 0 {
		t.Fatal("empty graph should give empty tips in zero rounds")
	}
}

func mustTip(tip []int64, _ int) []int64 { return tip }

func TestQuickWingDeltaMatchesSequentialAndRecount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 8)
		want := WingDecomposition(g)
		oracle := WingDecompositionRounds(g, 2)
		for i := range want {
			if oracle[i] != want[i] {
				return false
			}
		}
		for _, threads := range []int{1, 3} {
			got, _ := WingDecompositionDelta(g, threads)
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWingDeltaMediumGraph(t *testing.T) {
	g := gen.PowerLawBipartite(120, 100, 900, 0.7, 0.7, 13)
	want := WingDecomposition(g)
	got, rounds := WingDecompositionDelta(g, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: delta %d, heap %d", i, got[i], want[i])
		}
	}
	if rounds < 1 {
		t.Fatalf("expected at least one peeled batch, got %d", rounds)
	}
}

func TestQuickKTipDeltaMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 9)
		for k := int64(0); k <= 3; k++ {
			for _, side := range []core.Side{core.SideV1, core.SideV2} {
				sub, _ := KTipDelta(g, k, side, 3)
				if !sub.Equal(KTipSubgraph(g, k, side)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKWingDeltaMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 8)
		for k := int64(0); k <= 3; k++ {
			sub, _ := KWingDelta(g, k, 3)
			if !sub.Equal(KWingSubgraph(g, k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The engine dispatch layer must agree across engines and report the
// engine-appropriate round counts.
func TestEngineDispatchAgrees(t *testing.T) {
	g := gen.PowerLawBipartite(150, 120, 1100, 0.7, 0.7, 29)
	for _, side := range []core.Side{core.SideV1, core.SideV2} {
		want := TipDecomposition(g, side)
		for _, eng := range []Engine{EngineDelta, EngineRecount} {
			tip, st := TipNumbersWith(g, side, Options{Engine: eng, Threads: 2})
			for i := range want {
				if tip[i] != want[i] {
					t.Fatalf("engine %v side %v vertex %d: got %d want %d", eng, side, i, tip[i], want[i])
				}
			}
			if st.Rounds < 1 {
				t.Fatalf("engine %v: expected positive rounds", eng)
			}
		}
	}
	wantWing := WingDecomposition(g)
	for _, eng := range []Engine{EngineDelta, EngineRecount} {
		wing, st := WingNumbersWith(g, Options{Engine: eng, Threads: 2})
		for i := range wantWing {
			if wing[i] != wantWing[i] {
				t.Fatalf("engine %v edge %d: got %d want %d", eng, i, wing[i], wantWing[i])
			}
		}
		if st.Rounds < 1 {
			t.Fatalf("engine %v: expected positive rounds", eng)
		}
	}
	for _, k := range []int64{0, 1, 2, 5} {
		wantTip := KTipSubgraph(g, k, core.SideV1)
		wantKW := KWingSubgraph(g, k)
		for _, eng := range []Engine{EngineDelta, EngineRecount} {
			sub, _ := KTipWith(g, k, core.SideV1, Options{Engine: eng, Threads: 2})
			if !sub.Equal(wantTip) {
				t.Fatalf("engine %v k=%d: k-tip mismatch", eng, k)
			}
			sub, _ = KWingWith(g, k, Options{Engine: eng, Threads: 2})
			if !sub.Equal(wantKW) {
				t.Fatalf("engine %v k=%d: k-wing mismatch", eng, k)
			}
		}
	}
}

func TestEngineString(t *testing.T) {
	if EngineDelta.String() != "delta" || EngineRecount.String() != "recount" {
		t.Fatalf("engine names: %q %q", EngineDelta, EngineRecount)
	}
}

// bucketQueue unit tests: lazy decrease + batch extraction must drain
// ids in nondecreasing key order with exactly-once extraction, across
// window rebuckets.
func TestBucketQueueDrainsInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 500
	keys := make([]int64, n)
	alive := make([]bool, n)
	for i := range keys {
		keys[i] = int64(rng.Intn(1000)) // forces rebucketing past width 8
		alive[i] = true
	}
	q := newBucketQueue(keys, alive, 8)
	seen := make([]bool, n)
	var lastLevel int64 = -1
	total := 0
	var batch []int64
	for {
		var level int64
		var ok bool
		batch, level, ok = q.nextBatch(batch[:0], alive)
		if !ok {
			break
		}
		if level < lastLevel {
			t.Fatalf("level regressed: %d after %d", level, lastLevel)
		}
		lastLevel = level
		for _, id := range batch {
			if seen[id] {
				t.Fatalf("id %d extracted twice", id)
			}
			seen[id] = true
			if keys[id] > level {
				t.Fatalf("id %d extracted at level %d with key %d", id, level, keys[id])
			}
			total++
		}
	}
	if total != n {
		t.Fatalf("extracted %d of %d ids", total, n)
	}
}

// Keys decreased between batches must be honored: an id whose key drops
// to the current level cascades into the same level's sub-rounds.
func TestBucketQueueCascadeWithinLevel(t *testing.T) {
	keys := []int64{0, 5, 9}
	alive := []bool{true, true, true}
	q := newBucketQueue(keys, alive, 4)
	batch, level, ok := q.nextBatch(nil, alive)
	if !ok || level != 0 || len(batch) != 1 || batch[0] != 0 {
		t.Fatalf("first batch: %v level %d ok %v", batch, level, ok)
	}
	// Peeling id 0 drops id 2's key below the cursor; it must clamp.
	keys[2] = 0
	q.update(2)
	batch, level, ok = q.nextBatch(batch[:0], alive)
	if !ok || level != 0 || len(batch) != 1 || batch[0] != 2 {
		t.Fatalf("cascade batch: %v level %d ok %v", batch, level, ok)
	}
	batch, level, ok = q.nextBatch(batch[:0], alive)
	if !ok || level != 5 || len(batch) != 1 || batch[0] != 1 {
		t.Fatalf("final batch: %v level %d ok %v", batch, level, ok)
	}
	if _, _, ok = q.nextBatch(batch[:0], alive); ok {
		t.Fatal("queue should be exhausted")
	}
}

// The delta engines' loops reuse one arena and their scratch slices;
// a full decomposition's allocations amortize to the initial vectors
// and the bucket queue's growth to its high-water mark. Per-round
// scratch allocation (workspace + partner lists + batch each of the
// ~100 rounds of this graph) would run to thousands of allocations;
// the kernel-level zero-alloc guarantee is asserted exactly in
// internal/core's TestTipDeltaSteadyStateZeroAlloc.
func TestTipDeltaFewAllocsWarm(t *testing.T) {
	g := gen.PowerLawBipartite(200, 160, 1400, 0.7, 0.7, 7)
	// Prime any global state.
	TipDecompositionDelta(g, core.SideV1, 1)
	allocs := testing.AllocsPerRun(3, func() {
		TipDecompositionDelta(g, core.SideV1, 1)
	})
	if allocs > 512 {
		t.Fatalf("TipDecompositionDelta allocates %v times per run", allocs)
	}
}

// TestWingDeltaRelayoutAgreement pins the relayout-awareness of the
// delta kernels' hub-path cost model (core/delta.go): on the
// degree-ordered twin that the counting core serves scalar counts from,
// hubs occupy the *low* vertex ids — the opposite of where a natural-
// order heuristic would look for them. The decision must read only
// degrees, so delta peeling has to agree with the recount engine on the
// relayouted graph exactly as it does on the original.
func TestWingDeltaRelayoutAgreement(t *testing.T) {
	orig := gen.PowerLawBipartite(120, 100, 900, 0.7, 0.7, 13)
	g, _, _ := orig.DegreeOrdered()
	want := WingDecompositionRounds(g, 2)
	for _, threads := range []int{1, 4} {
		got, _ := WingDecompositionDelta(g, threads)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("threads=%d edge %d: delta %d, recount %d", threads, i, got[i], want[i])
			}
		}
	}
	// The wing numbers must also be a relabeling of the original's: the
	// multiset of edge wing numbers is invariant under vertex renumbering.
	a, b := WingDecomposition(orig), WingDecomposition(g)
	var sa, sb int64
	for _, x := range a {
		sa += x
	}
	for _, x := range b {
		sb += x
	}
	if len(a) != len(b) || sa != sb {
		t.Fatalf("wing decomposition changed under relayout: %d edges sum %d vs %d edges sum %d", len(a), sa, len(b), sb)
	}
}

// TestTipDeltaRelayoutAgreement is the tip-side companion: delta
// peeling on the degree-ordered twin agrees with the recount engine for
// both sides and thread counts.
func TestTipDeltaRelayoutAgreement(t *testing.T) {
	orig := gen.PowerLawBipartite(300, 250, 2000, 0.7, 0.7, 3)
	g, _, _ := orig.DegreeOrdered()
	for _, side := range []core.Side{core.SideV1, core.SideV2} {
		want := TipDecompositionRounds(g, side, 2)
		for _, threads := range []int{1, 4} {
			got, _ := TipDecompositionDelta(g, side, threads)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("side=%v threads=%d vertex %d: delta %d, recount %d", side, threads, i, got[i], want[i])
				}
			}
		}
	}
}
