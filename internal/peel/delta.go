package peel

// The incremental (delta) peeling engine: bucketed tip/wing
// decomposition driven by the wedge-delta kernels of internal/core.
//
// Structure of every engine below:
//
//  1. compute the initial support vector once (parallel, arena-backed);
//  2. file everything into a bucketQueue (or a worklist for the k-core
//     style fixpoints, which need no levels);
//  3. repeatedly extract the lowest bucket as a batch and apply
//     core.TipDeltaBatch / core.WingStateDeltaBatch, which decrement
//     only the supports the batch actually changed;
//  4. re-file the touched survivors and continue.
//
// Total work is O(initial count + Σ butterfly-side deltas) instead of
// the recount engine's O(levels × wedges of the surviving subgraph).
// Peeling is confluent, so the results equal the recount and heap
// engines' bit for bit (asserted by the differential tests in
// delta_test.go).

import (
	"butterfly/internal/core"
	"butterfly/internal/graph"
)

// bucketWidth is the open-window width of the delta engines' bucket
// queues. 64 levels per window keeps redistribution rare on real
// (shallow) peeling hierarchies while bounding the empty-bucket scans
// on adversarially deep ones.
const bucketWidth = 64

// TipDecompositionDelta computes the same tip numbers as
// TipDecomposition / TipDecompositionRounds with the incremental
// engine and reports the number of peeled batches (sub-rounds).
func TipDecompositionDelta(g *graph.Bipartite, side core.Side, threads int) ([]int64, int) {
	return tipDecompositionDelta(g, side, threads, nil)
}

// tipDecompositionDelta is TipDecompositionDelta with an optional
// stage hook receiving "peel.seed" and per-batch "peel.round[i]".
func tipDecompositionDelta(g *graph.Bipartite, side core.Side, threads int, stage stageFunc) ([]int64, int) {
	n := g.NumV1()
	if side == core.SideV2 {
		n = g.NumV2()
	}
	tip := make([]int64, n)
	if n == 0 {
		return tip, 0
	}
	arena := core.NewArena()
	s := make([]int64, n)
	t0 := stageNow(stage)
	core.VertexButterfliesMaskedInto(s, g, side, nil, threads, arena)
	emitStage(stage, "peel.seed", t0)

	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	q := newBucketQueue(s, alive, bucketWidth)
	dirty := make([]int32, n)
	var (
		batch   = make([]int64, 0, 256)
		batch32 = make([]int32, 0, 256)
		touched = make([]int32, 0, 256)
		level   int64
		rounds  int
	)
	for {
		rt := stageNow(stage)
		var lvl int64
		var ok bool
		batch, lvl, ok = q.nextBatch(batch[:0], alive)
		if !ok {
			break
		}
		rounds++
		if lvl > level {
			level = lvl
		}
		batch32 = batch32[:0]
		for _, id := range batch {
			tip[id] = level
			batch32 = append(batch32, int32(id))
		}
		touched = touched[:0]
		core.TipDeltaBatch(g, side, batch32, alive, s, dirty, &touched, threads, arena)
		for _, w := range touched {
			dirty[w] = 0
			if s[w] < 0 {
				s[w] = 0
			}
			q.update(int64(w))
		}
		emitRound(stage, rounds-1, rt)
	}
	return tip, rounds
}

// KTipDelta computes the k-tip subgraph with the incremental engine:
// instead of recomputing the butterfly vector to a fixpoint, it seeds a
// worklist with the vertices below k and cascades exact decrements
// until no survivor drops below the threshold. Returns the subgraph
// (identical to KTipSubgraph) and the number of cascade rounds.
func KTipDelta(g *graph.Bipartite, k int64, side core.Side, threads int) (*graph.Bipartite, int) {
	return kTipDelta(g, k, side, threads, nil)
}

// kTipDelta is KTipDelta with an optional stage hook.
func kTipDelta(g *graph.Bipartite, k int64, side core.Side, threads int, stage stageFunc) (*graph.Bipartite, int) {
	n := g.NumV1()
	if side == core.SideV2 {
		n = g.NumV2()
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	if n == 0 || k <= 0 {
		return maskSide(g, side, alive), 0
	}
	arena := core.NewArena()
	s := make([]int64, n)
	t0 := stageNow(stage)
	core.VertexButterfliesMaskedInto(s, g, side, nil, threads, arena)
	emitStage(stage, "peel.seed", t0)

	dirty := make([]int32, n)
	var (
		cur     = make([]int32, 0, 256)
		next    = make([]int32, 0, 256)
		touched = make([]int32, 0, 256)
		rounds  int
	)
	for u := range s {
		if s[u] < k {
			alive[u] = false
			cur = append(cur, int32(u))
		}
	}
	for len(cur) > 0 {
		rt := stageNow(stage)
		rounds++
		touched = touched[:0]
		core.TipDeltaBatch(g, side, cur, alive, s, dirty, &touched, threads, arena)
		next = next[:0]
		for _, w := range touched {
			dirty[w] = 0
			if s[w] < k {
				alive[w] = false
				next = append(next, w)
			}
		}
		cur, next = next, cur
		emitRound(stage, rounds-1, rt)
	}
	return maskSide(g, side, alive), rounds
}

// WingDecompositionDelta computes the same wing numbers as
// WingDecomposition / WingDecompositionRounds with the incremental
// engine. Edge ids are flat indices into g.Adj(), as everywhere else.
// Unlike the recount engine it never rebuilds the graph: peeled edges
// are swap-deleted from the compacted core.WingPeelState, so each
// batch's sweep touches only the surviving adjacency.
func WingDecompositionDelta(g *graph.Bipartite, threads int) ([]int64, int) {
	return wingDecompositionDelta(g, threads, nil)
}

// wingDecompositionDelta is WingDecompositionDelta with an optional
// stage hook.
func wingDecompositionDelta(g *graph.Bipartite, threads int, stage stageFunc) ([]int64, int) {
	adj := g.Adj()
	nnz := int(adj.NNZ())
	wing := make([]int64, nnz)
	if nnz == 0 {
		return wing, 0
	}
	arena := core.NewArena()
	sup := make([]int64, nnz)
	t0 := stageNow(stage)
	core.EdgeSupportParallelInto(sup, g, threads, arena)
	emitStage(stage, "peel.seed", t0)
	state := core.NewWingPeelState(g)

	alive := make([]bool, nnz)
	for i := range alive {
		alive[i] = true
	}
	inBatch := make([]bool, nnz)
	dirty := make([]int32, nnz)
	q := newBucketQueue(sup, alive, bucketWidth)
	var (
		batch   = make([]int64, 0, 256)
		touched = make([]int64, 0, 256)
		level   int64
		rounds  int
	)
	for {
		rt := stageNow(stage)
		var lvl int64
		var ok bool
		batch, lvl, ok = q.nextBatch(batch[:0], alive)
		if !ok {
			break
		}
		rounds++
		if lvl > level {
			level = lvl
		}
		for _, e := range batch {
			wing[e] = level
			inBatch[e] = true
		}
		touched = touched[:0]
		core.WingStateDeltaBatch(state, batch, alive, inBatch, sup, dirty, &touched, threads, arena)
		for _, e := range batch {
			inBatch[e] = false
			state.RemoveEdge(e)
		}
		for _, f := range touched {
			dirty[f] = 0
			if sup[f] < 0 {
				sup[f] = 0
			}
			q.update(f)
		}
		emitRound(stage, rounds-1, rt)
	}
	return wing, rounds
}

// KWingDelta computes the k-wing subgraph with the incremental engine:
// one support sweep, then exact cascading decrements, then a single
// subgraph rebuild at the end (the recount engine rebuilds the whole
// graph every round). Identical to KWingSubgraph; returns the cascade
// round count.
func KWingDelta(g *graph.Bipartite, k int64, threads int) (*graph.Bipartite, int) {
	return kWingDelta(g, k, threads, nil)
}

// kWingDelta is KWingDelta with an optional stage hook.
func kWingDelta(g *graph.Bipartite, k int64, threads int, stage stageFunc) (*graph.Bipartite, int) {
	adj := g.Adj()
	nnz := int(adj.NNZ())
	if nnz == 0 || k <= 0 {
		return g, 0
	}
	arena := core.NewArena()
	sup := make([]int64, nnz)
	t0 := stageNow(stage)
	core.EdgeSupportParallelInto(sup, g, threads, arena)
	emitStage(stage, "peel.seed", t0)
	state := core.NewWingPeelState(g)

	alive := make([]bool, nnz)
	for i := range alive {
		alive[i] = true
	}
	inBatch := make([]bool, nnz)
	dirty := make([]int32, nnz)
	var (
		cur     = make([]int64, 0, 256)
		next    = make([]int64, 0, 256)
		touched = make([]int64, 0, 256)
		rounds  int
	)
	for e := 0; e < nnz; e++ {
		if sup[e] < k {
			alive[e] = false
			inBatch[e] = true
			cur = append(cur, int64(e))
		}
	}
	for len(cur) > 0 {
		rt := stageNow(stage)
		rounds++
		touched = touched[:0]
		core.WingStateDeltaBatch(state, cur, alive, inBatch, sup, dirty, &touched, threads, arena)
		for _, e := range cur {
			inBatch[e] = false
			state.RemoveEdge(e)
		}
		next = next[:0]
		for _, f := range touched {
			dirty[f] = 0
			if alive[f] && sup[f] < k {
				alive[f] = false
				inBatch[f] = true
				next = append(next, f)
			}
		}
		cur, next = next, cur
		emitRound(stage, rounds-1, rt)
	}
	return graphFromAliveEdges(g, alive), rounds
}

// graphFromAliveEdges rebuilds a bipartite graph keeping only the edges
// whose flat id is still alive, preserving dimensions and vertex ids.
func graphFromAliveEdges(g *graph.Bipartite, alive []bool) *graph.Bipartite {
	adj := g.Adj()
	var kept int64
	for _, a := range alive {
		if a {
			kept++
		}
	}
	if kept == adj.NNZ() {
		return g
	}
	b := graph.NewBuilder(adj.R, adj.C)
	for u := 0; u < adj.R; u++ {
		base := adj.Ptr[u]
		for kk, v := range adj.Row(u) {
			if alive[base+int64(kk)] {
				b.AddEdge(u, int(v))
			}
		}
	}
	return b.Build()
}
