package peel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"butterfly/internal/core"
	"butterfly/internal/gen"
	"butterfly/internal/graph"
)

func TestDensestOnCompleteBipartite(t *testing.T) {
	g := gen.CompleteBipartite(5, 5)
	res := DensestByButterflies(g, core.SideV1)
	if res.Vertices != 5 {
		t.Fatalf("kept %d vertices, want all 5", res.Vertices)
	}
	if res.Butterflies != core.CountAuto(g) {
		t.Fatalf("butterflies %d, want %d", res.Butterflies, core.CountAuto(g))
	}
	if res.Density <= 0 {
		t.Fatal("non-positive density")
	}
}

func TestDensestRecoversPlantedBiclique(t *testing.T) {
	// Sparse organic noise + a dense 8×8 block: greedy peeling must
	// keep (at least) the block and achieve at least its density.
	b := graph.NewBuilder(300, 300)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 600; i++ {
		b.AddEdge(rng.Intn(300), rng.Intn(300))
	}
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			b.AddEdge(100+u, 100+v)
		}
	}
	g := b.Build()

	res := DensestByButterflies(g, core.SideV1)
	for u := 100; u < 108; u++ {
		if !res.KeepSide[u] {
			t.Fatalf("planted vertex %d peeled away", u)
		}
	}
	// Density must be at least the planted block's own density.
	blockDensity := float64(28*28) / 8 // C(8,2)²/8 butterflies per vertex
	if res.Density < blockDensity {
		t.Fatalf("density %.1f below planted block's %.1f", res.Density, blockDensity)
	}
}

func TestDensestButterflyFree(t *testing.T) {
	res := DensestByButterflies(gen.Star(6), core.SideV2)
	if res.Butterflies != 0 || res.Density != 0 {
		t.Fatalf("butterfly-free result %+v", res)
	}
	empty := DensestByButterflies(gen.CompleteBipartite(0, 0), core.SideV1)
	if empty.Vertices != 0 {
		t.Fatal("empty graph kept vertices")
	}
}

// The reported density is exactly butterflies(kept)/|kept| and no
// k-tip offers a better density than the greedy optimum on the same
// trajectory (sanity: result beats or ties the whole graph's density).
func TestQuickDensestAtLeastWholeGraph(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, g := randGraphAndDense(rng, 10)
		res := DensestByButterflies(g, core.SideV1)
		// Verify reported numbers are self-consistent.
		if res.Vertices > 0 {
			if res.Density != float64(res.Butterflies)/float64(res.Vertices) {
				return false
			}
		}
		// Whole-graph density (over non-isolated V1 vertices) is a
		// lower bound for the greedy optimum.
		nonIso := 0
		for u := 0; u < g.NumV1(); u++ {
			if g.DegreeV1(u) > 0 {
				nonIso++
			}
		}
		if nonIso == 0 {
			return res.Vertices == 0
		}
		whole := float64(core.CountAuto(g)) / float64(nonIso)
		return res.Density >= whole-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestDensestSideV2MatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	_, g := randGraphAndDense(rng, 10)
	a := DensestByButterflies(g, core.SideV2)
	b := DensestByButterflies(g.Transposed(), core.SideV1)
	if a.Butterflies != b.Butterflies || a.Vertices != b.Vertices {
		t.Fatalf("V2 result %+v != transposed V1 result %+v", a, b)
	}
}
