// Package peel implements the paper's Section IV: k-tip and k-wing
// subgraph extraction via the iterative mask formulation (equations
// (19)–(22) and (25)–(27)), the look-ahead fused variant of Fig 8, and
// full tip/wing decompositions (the peeling orders of Sariyüce & Pinar
// [11]) via lazy-deletion min-heaps.
package peel

import "container/heap"

// lazyMin is a min-heap of (key, id) pairs with lazy invalidation: when
// an id's key decreases, the new pair is pushed and stale pairs are
// skipped at pop time by comparing against the caller's current key
// array. This is the standard peeling queue — simpler than a decrease-
// key heap and with the same asymptotics for our workloads.
type lazyMin struct {
	keys []int64 // entry i = key, entry i+1 = id (flattened pairs)
}

func (h *lazyMin) Len() int { return len(h.keys) / 2 }

func (h *lazyMin) Less(a, b int) bool {
	if h.keys[2*a] != h.keys[2*b] {
		return h.keys[2*a] < h.keys[2*b]
	}
	return h.keys[2*a+1] < h.keys[2*b+1]
}

func (h *lazyMin) Swap(a, b int) {
	h.keys[2*a], h.keys[2*b] = h.keys[2*b], h.keys[2*a]
	h.keys[2*a+1], h.keys[2*b+1] = h.keys[2*b+1], h.keys[2*a+1]
}

func (h *lazyMin) Push(x any) {
	p := x.([2]int64)
	h.keys = append(h.keys, p[0], p[1])
}

func (h *lazyMin) Pop() any {
	n := len(h.keys)
	p := [2]int64{h.keys[n-2], h.keys[n-1]}
	h.keys = h.keys[:n-2]
	return p
}

// newLazyMin builds a heap over ids 0..n-1 with the given initial keys.
func newLazyMin(initial []int64) *lazyMin {
	h := &lazyMin{keys: make([]int64, 0, 2*len(initial))}
	for id, k := range initial {
		h.keys = append(h.keys, k, int64(id))
	}
	heap.Init(h)
	return h
}

// push records a (possibly updated) key for id.
func (h *lazyMin) push(key int64, id int64) {
	heap.Push(h, [2]int64{key, id})
}

// popCurrent pops entries until one matches cur[id] (i.e. is not
// stale) and returns it; ok is false when the heap is exhausted.
// removed[id] entries are skipped too.
func (h *lazyMin) popCurrent(cur []int64, removed []bool) (key, id int64, ok bool) {
	for h.Len() > 0 {
		p := heap.Pop(h).([2]int64)
		key, id = p[0], p[1]
		if removed[id] || key != cur[id] {
			continue
		}
		return key, id, true
	}
	return 0, 0, false
}
