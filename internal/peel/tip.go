package peel

import (
	"butterfly/internal/bitvec"
	"butterfly/internal/core"
	"butterfly/internal/graph"
)

// KTipSubgraph returns the k-tip of g with respect to the given side:
// the maximal subgraph in which every (non-isolated) vertex of that
// side participates in at least k butterflies. It executes the paper's
// iterative formulation (19)–(22): compute the per-vertex butterfly
// vector s, mask out vertices with s < k, and repeat until a fixpoint.
// Removed vertices keep their ids but lose all edges (the paper's
// mask-application semantics).
func KTipSubgraph(g *graph.Bipartite, k int64, side core.Side) *graph.Bipartite {
	n := g.NumV1()
	if side == core.SideV2 {
		n = g.NumV2()
	}
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	for {
		s := core.VertexButterfliesMasked(g, side, active)
		changed := false
		for u := range active {
			if active[u] && s[u] < k {
				active[u] = false
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return maskSide(g, side, active)
}

// KTipLookAhead computes the same k-tip with the fused look-ahead
// algorithm of Fig 8 (KTIP_UNB_VAR1): while sweeping the exposed side,
// each vertex's butterfly count σ_u is completed in place (earlier
// vertices credited it; the sweep adds its pairs with later active
// vertices), and the mask bit μ_u = (σ_u ≥ k) is applied immediately,
// so later iterations of the same sweep already skip peeled vertices.
// Sweeps repeat until none removes a vertex. Peeling is confluent —
// removal order does not change the maximal fixpoint — so the result
// equals KTipSubgraph's (asserted by tests).
func KTipLookAhead(g *graph.Bipartite, k int64, side core.Side) *graph.Bipartite {
	exposed, secondary := g.Adj(), g.AdjT()
	if side == core.SideV2 {
		exposed, secondary = g.AdjT(), g.Adj()
	}
	n := exposed.R
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	sigma := make([]int64, n)
	acc := make([]int32, n)
	touched := make([]int32, 0, 1024)

	for {
		changed := false
		for i := range sigma {
			sigma[i] = 0
		}
		for u := 0; u < n; u++ {
			if !active[u] {
				continue
			}
			u32 := int32(u)
			// Partial update: pairs (u, w) with w > u, both active.
			for _, y := range exposed.Row(u) {
				for _, w := range secondary.Row(int(y)) {
					if w <= u32 {
						continue
					}
					if !active[w] {
						continue
					}
					if acc[w] == 0 {
						touched = append(touched, w)
					}
					acc[w]++
				}
			}
			for _, w := range touched {
				c := int64(acc[w])
				b := c * (c - 1) / 2
				sigma[u] += b // completes σ_u: pairs with w < u arrived earlier
				sigma[w] += b // look-ahead credit for the future vertex
				acc[w] = 0
			}
			touched = touched[:0]
			// σ_u is now final for this sweep: mask immediately.
			if sigma[u] < k {
				active[u] = false
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return maskSide(g, side, active)
}

// maskSide zeroes the edges of inactive vertices on the chosen side.
func maskSide(g *graph.Bipartite, side core.Side, active []bool) *graph.Bipartite {
	keep := bitvec.New(len(active))
	for i, a := range active {
		if a {
			keep.Set(i)
		}
	}
	if side == core.SideV1 {
		return g.InducedSubgraph(keep, nil)
	}
	return g.InducedSubgraph(nil, keep)
}

// TipDecomposition returns the tip number of every vertex on the given
// side: the largest k such that the vertex survives in the k-tip.
// Isolated or butterfly-free vertices get 0.
//
// It peels vertices in non-decreasing butterfly-count order with a
// lazy min-heap. When vertex u is peeled only the pairs {u, w} lose
// butterflies, and their loss is exactly C(β_uw, 2) in the current
// subgraph, so the update is one wedge-accumulation sweep from u.
func TipDecomposition(g *graph.Bipartite, side core.Side) []int64 {
	exposed, secondary := g.Adj(), g.AdjT()
	if side == core.SideV2 {
		exposed, secondary = g.AdjT(), g.Adj()
	}
	n := exposed.R

	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	s := core.VertexButterfliesMasked(g, side, active)
	tip := make([]int64, n)
	removed := make([]bool, n)
	h := newLazyMin(s)

	acc := make([]int32, n)
	touched := make([]int32, 0, 1024)
	var level int64
	for {
		key, id, ok := h.popCurrent(s, removed)
		if !ok {
			break
		}
		u := int(id)
		if key > level {
			level = key
		}
		tip[u] = level
		removed[u] = true
		active[u] = false

		// Subtract the peeled vertex's pair contributions from its
		// still-active partners.
		u32 := int32(u)
		for _, y := range exposed.Row(u) {
			for _, w := range secondary.Row(int(y)) {
				if w == u32 || !active[w] {
					continue
				}
				if acc[w] == 0 {
					touched = append(touched, w)
				}
				acc[w]++
			}
		}
		for _, w := range touched {
			c := int64(acc[w])
			s[w] -= c * (c - 1) / 2
			h.push(s[w], int64(w))
			acc[w] = 0
		}
		touched = touched[:0]
	}
	return tip
}
