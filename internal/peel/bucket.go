package peel

// bucketQueue is the level-indexed bucket structure of the incremental
// peeling engine (the Julienne/ParButterfly bucketing idea): ids keyed
// by their current support live in an open window of `width` buckets
// starting at `base`; ids whose key lies beyond the window sit in an
// overflow list (`far`) and are redistributed lazily when the window
// is exhausted. Updates are lazy — when a key decreases, the id is
// simply re-filed at its new bucket and stale entries are skipped at
// extraction time — so an update is O(1) and needs no decrease-key.
//
// Extraction is batched: nextBatch drains the lowest non-empty bucket
// in one call, which is exactly the round-synchronous peeling batch.
// Keys that drop below the extraction cursor while a level is being
// processed are clamped onto the cursor's bucket, so the cascade within
// one level (peel → delta → more vertices at the level) replays the
// sub-round structure of round-synchronous peeling and yields identical
// (confluent) decomposition numbers.
//
// The queue reuses every bucket slice and the overflow list across
// windows, so a warm queue's steady state allocates only when a slice
// outgrows its previous high-water mark.
type bucketQueue struct {
	keys  []int64 // caller-owned current keys; mutated between calls
	base  int64   // key of bucket 0 of the open window
	cur   int     // lowest bucket index not yet known to be empty
	width int
	bkts  [][]int64
	far   []int64 // ids beyond the window at (re)file time, lazily stale
}

// newBucketQueue builds a queue over the ids with alive[id] true, keyed
// by keys[id]. The keys slice is retained: the engine updates it in
// place and re-files changed ids with update.
func newBucketQueue(keys []int64, alive []bool, width int) *bucketQueue {
	if width < 1 {
		width = 1
	}
	q := &bucketQueue{keys: keys, width: width, bkts: make([][]int64, width)}
	min := int64(-1)
	for id, k := range keys {
		if alive[id] && (min < 0 || k < min) {
			min = k
		}
	}
	if min > 0 {
		q.base = min
	}
	for id := range keys {
		if alive[id] {
			q.place(int64(id), keys[id])
		}
	}
	return q
}

// place files id under key, clamping keys below the cursor onto the
// cursor's bucket (they are due now) and spilling keys beyond the
// window into the overflow list.
func (q *bucketQueue) place(id, key int64) {
	idx := key - q.base
	if idx < int64(q.cur) {
		idx = int64(q.cur)
	}
	if idx >= int64(q.width) {
		q.far = append(q.far, id)
		return
	}
	q.bkts[idx] = append(q.bkts[idx], id)
}

// update re-files id after the caller decreased keys[id]. Stale entries
// left behind are skipped at extraction.
func (q *bucketQueue) update(id int64) { q.place(id, q.keys[id]) }

// nextBatch appends every id of the lowest non-empty bucket to dst,
// marks each extracted id dead in alive, and returns the batch with the
// bucket's level. ok is false when the queue is exhausted. The same
// bucket index is revisited on the next call, because cascading updates
// during batch processing may re-populate it.
func (q *bucketQueue) nextBatch(dst []int64, alive []bool) ([]int64, int64, bool) {
	for {
		for q.cur < q.width {
			b := q.bkts[q.cur]
			if len(b) == 0 {
				q.cur++
				continue
			}
			level := q.base + int64(q.cur)
			for _, id := range b {
				// Entries for already-extracted ids are stale dupes;
				// live entries in this bucket are always due (keys only
				// decrease after filing).
				if alive[id] && q.keys[id] <= level {
					alive[id] = false
					dst = append(dst, id)
				}
			}
			q.bkts[q.cur] = b[:0]
			if len(dst) > 0 {
				return dst, level, true
			}
			q.cur++
		}
		if !q.rebucket(alive) {
			return dst, 0, false
		}
	}
}

// rebucket opens a new window at the minimum surviving overflow key and
// redistributes the overflow list into it. Returns false when nothing
// survives (queue exhausted). Both passes compact in place, so the
// overflow storage is reused.
func (q *bucketQueue) rebucket(alive []bool) bool {
	live := q.far[:0]
	min := int64(-1)
	for _, id := range q.far {
		if !alive[id] {
			continue
		}
		live = append(live, id)
		if k := q.keys[id]; min < 0 || k < min {
			min = k
		}
	}
	q.far = live
	if len(live) == 0 {
		return false
	}
	q.base = min
	q.cur = 0
	src := q.far
	q.far = q.far[:0]
	for _, id := range src {
		q.place(id, q.keys[id]) // write index trails read index: safe
	}
	return true
}
