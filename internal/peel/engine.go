package peel

// Engine selection for the peeling algorithms: every decomposition and
// k-subgraph extraction exists in two parallel flavors that produce
// bit-identical results (peeling is confluent):
//
//   - EngineDelta (default): the incremental engine — bucketed peeling
//     with exact wedge-delta support updates. Work is proportional to
//     the butterflies destroyed; the hot path of choice.
//   - EngineRecount: the round-synchronous engine — every round
//     recomputes all surviving supports from scratch. O(levels ×
//     wedges), but structurally trivial; kept as the differential-
//     testing oracle and as a fallback for workloads with very few
//     levels and enormous delta fan-out.

import (
	"runtime"

	"butterfly/internal/core"
	"butterfly/internal/graph"
)

// Engine selects the peeling execution strategy.
type Engine int

const (
	// EngineDelta is the incremental wedge-delta engine (default).
	EngineDelta Engine = iota
	// EngineRecount is the round-synchronous full-recount engine.
	EngineRecount
)

// String names the engine using the wire/CLI spelling.
func (e Engine) String() string {
	if e == EngineRecount {
		return "recount"
	}
	return "delta"
}

// Options configures an engine-dispatched peeling run.
type Options struct {
	// Engine selects delta (zero value) or recount execution.
	Engine Engine
	// Threads is the worker count; ≤ 0 means one per CPU.
	Threads int
}

// Stats reports how a peeling run executed.
type Stats struct {
	// Rounds is the number of peeled batches (delta) or recompute
	// rounds (recount). Engines may legitimately differ: the delta
	// engine counts the sub-rounds its cascades replay.
	Rounds int
}

func (o Options) threads() int {
	if o.Threads <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Threads
}

// TipNumbersWith runs the tip decomposition on the selected engine.
func TipNumbersWith(g *graph.Bipartite, side core.Side, o Options) ([]int64, Stats) {
	if o.Engine == EngineRecount {
		tip, rounds := tipDecompositionRecount(g, side, o.threads())
		return tip, Stats{Rounds: rounds}
	}
	tip, rounds := TipDecompositionDelta(g, side, o.threads())
	return tip, Stats{Rounds: rounds}
}

// WingNumbersWith runs the wing decomposition on the selected engine.
func WingNumbersWith(g *graph.Bipartite, o Options) ([]int64, Stats) {
	if o.Engine == EngineRecount {
		wing, rounds := wingDecompositionRecount(g, o.threads())
		return wing, Stats{Rounds: rounds}
	}
	wing, rounds := WingDecompositionDelta(g, o.threads())
	return wing, Stats{Rounds: rounds}
}

// KTipWith extracts the k-tip subgraph on the selected engine.
func KTipWith(g *graph.Bipartite, k int64, side core.Side, o Options) (*graph.Bipartite, Stats) {
	if o.Engine == EngineRecount {
		sub, rounds := kTipRecount(g, k, side, o.threads())
		return sub, Stats{Rounds: rounds}
	}
	sub, rounds := KTipDelta(g, k, side, o.threads())
	return sub, Stats{Rounds: rounds}
}

// KWingWith extracts the k-wing subgraph on the selected engine.
func KWingWith(g *graph.Bipartite, k int64, o Options) (*graph.Bipartite, Stats) {
	if o.Engine == EngineRecount {
		sub, rounds := kWingRecount(g, k, o.threads())
		return sub, Stats{Rounds: rounds}
	}
	sub, rounds := KWingDelta(g, k, o.threads())
	return sub, Stats{Rounds: rounds}
}
