package peel

// Engine selection for the peeling algorithms: every decomposition and
// k-subgraph extraction exists in two parallel flavors that produce
// bit-identical results (peeling is confluent):
//
//   - EngineDelta (default): the incremental engine — bucketed peeling
//     with exact wedge-delta support updates. Work is proportional to
//     the butterflies destroyed; the hot path of choice.
//   - EngineRecount: the round-synchronous engine — every round
//     recomputes all surviving supports from scratch. O(levels ×
//     wedges), but structurally trivial; kept as the differential-
//     testing oracle and as a fallback for workloads with very few
//     levels and enormous delta fan-out.

import (
	"fmt"
	"runtime"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/graph"
)

// Engine selects the peeling execution strategy.
type Engine int

const (
	// EngineDelta is the incremental wedge-delta engine (default).
	EngineDelta Engine = iota
	// EngineRecount is the round-synchronous full-recount engine.
	EngineRecount
)

// String names the engine using the wire/CLI spelling.
func (e Engine) String() string {
	if e == EngineRecount {
		return "recount"
	}
	return "delta"
}

// Options configures an engine-dispatched peeling run.
type Options struct {
	// Engine selects delta (zero value) or recount execution.
	Engine Engine
	// Threads is the worker count; ≤ 0 means one per CPU.
	Threads int
	// Stage, when non-nil, receives named sub-stage timings:
	// "peel.seed" for the initial butterfly/support sweep and
	// "peel.round[i]" for every peeled batch (delta) or recompute
	// round (recount). The hook fires once per round, never inside the
	// wedge kernels, so a nil hook costs one predictable branch per
	// round and an installed hook two time.Now calls per round —
	// invisible next to the round's own work.
	Stage func(name string, d time.Duration)
}

// stageFunc is the per-run stage timing hook type shared by the
// engines. nil disables all emission.
type stageFunc = func(name string, d time.Duration)

// stageNow returns the round start time, or the zero time when timing
// is disabled.
func stageNow(stage stageFunc) time.Time {
	if stage == nil {
		return time.Time{}
	}
	return time.Now()
}

// emitStage reports one named stage to a non-nil hook.
func emitStage(stage stageFunc, name string, t0 time.Time) {
	if stage != nil {
		stage(name, time.Since(t0))
	}
}

// emitRound reports peeling round i (zero-based) to a non-nil hook.
func emitRound(stage stageFunc, i int, t0 time.Time) {
	if stage != nil {
		stage(fmt.Sprintf("peel.round[%d]", i), time.Since(t0))
	}
}

// Stats reports how a peeling run executed.
type Stats struct {
	// Rounds is the number of peeled batches (delta) or recompute
	// rounds (recount). Engines may legitimately differ: the delta
	// engine counts the sub-rounds its cascades replay.
	Rounds int
}

func (o Options) threads() int {
	if o.Threads <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Threads
}

// TipNumbersWith runs the tip decomposition on the selected engine.
func TipNumbersWith(g *graph.Bipartite, side core.Side, o Options) ([]int64, Stats) {
	if o.Engine == EngineRecount {
		tip, rounds := tipDecompositionRecount(g, side, o.threads(), o.Stage)
		return tip, Stats{Rounds: rounds}
	}
	tip, rounds := tipDecompositionDelta(g, side, o.threads(), o.Stage)
	return tip, Stats{Rounds: rounds}
}

// WingNumbersWith runs the wing decomposition on the selected engine.
func WingNumbersWith(g *graph.Bipartite, o Options) ([]int64, Stats) {
	if o.Engine == EngineRecount {
		wing, rounds := wingDecompositionRecount(g, o.threads(), o.Stage)
		return wing, Stats{Rounds: rounds}
	}
	wing, rounds := wingDecompositionDelta(g, o.threads(), o.Stage)
	return wing, Stats{Rounds: rounds}
}

// KTipWith extracts the k-tip subgraph on the selected engine.
func KTipWith(g *graph.Bipartite, k int64, side core.Side, o Options) (*graph.Bipartite, Stats) {
	if o.Engine == EngineRecount {
		sub, rounds := kTipRecount(g, k, side, o.threads(), o.Stage)
		return sub, Stats{Rounds: rounds}
	}
	sub, rounds := kTipDelta(g, k, side, o.threads(), o.Stage)
	return sub, Stats{Rounds: rounds}
}

// KWingWith extracts the k-wing subgraph on the selected engine.
func KWingWith(g *graph.Bipartite, k int64, o Options) (*graph.Bipartite, Stats) {
	if o.Engine == EngineRecount {
		sub, rounds := kWingRecount(g, k, o.threads(), o.Stage)
		return sub, Stats{Rounds: rounds}
	}
	sub, rounds := kWingDelta(g, k, o.threads(), o.Stage)
	return sub, Stats{Rounds: rounds}
}
