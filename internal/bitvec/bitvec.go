// Package bitvec provides a compact, fixed-length bit vector used for
// vertex and edge masks throughout the butterfly algorithms.
//
// A Vector of length n stores n bits packed into 64-bit words. The zero
// value is an empty (length-0) vector; use New to allocate one of a given
// length. All index arguments must be in [0, Len()); out-of-range access
// panics like a slice access would.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length sequence of bits.
type Vector struct {
	n     int
	words []uint64
}

// New returns a Vector of length n with all bits cleared.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// NewFull returns a Vector of length n with all bits set.
func NewFull(n int) *Vector {
	v := New(n)
	v.SetAll()
	return v
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Reset resizes v to n bits, all cleared, reusing the existing word
// storage when it is large enough. It is the allocation-free analogue of
// assigning New(n) and exists for arena-pooled scratch vectors that are
// recycled across graphs of different sizes.
func (v *Vector) Reset(n int) {
	if n < 0 {
		panic("bitvec: negative length")
	}
	w := (n + wordBits - 1) / wordBits
	if cap(v.words) < w {
		v.words = make([]uint64, w)
	} else {
		v.words = v.words[:w]
		for i := range v.words {
			v.words[i] = 0
		}
	}
	v.n = n
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i to 1.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// SetBool sets bit i to b.
func (v *Vector) SetBool(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// SetAll sets every bit.
func (v *Vector) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trim()
}

// ClearAll clears every bit.
func (v *Vector) ClearAll() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// trim zeroes the unused high bits of the final word so that Count and
// equality work on whole words.
func (v *Vector) trim() {
	if r := v.n % wordBits; r != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(r)) - 1
	}
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (v *Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether no bit is set.
func (v *Vector) None() bool { return !v.Any() }

// All reports whether every bit is set.
func (v *Vector) All() bool { return v.Count() == v.n }

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	w := New(v.n)
	copy(w.words, v.words)
	return w
}

// CopyFrom overwrites v with the contents of o. Lengths must match.
func (v *Vector) CopyFrom(o *Vector) {
	v.mustMatch(o)
	copy(v.words, o.words)
}

func (v *Vector) mustMatch(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, o.n))
	}
}

// And stores v ∧ o into v.
func (v *Vector) And(o *Vector) {
	v.mustMatch(o)
	for i := range v.words {
		v.words[i] &= o.words[i]
	}
}

// Or stores v ∨ o into v.
func (v *Vector) Or(o *Vector) {
	v.mustMatch(o)
	for i := range v.words {
		v.words[i] |= o.words[i]
	}
}

// AndNot stores v ∧ ¬o into v.
func (v *Vector) AndNot(o *Vector) {
	v.mustMatch(o)
	for i := range v.words {
		v.words[i] &^= o.words[i]
	}
}

// Xor stores v ⊕ o into v.
func (v *Vector) Xor(o *Vector) {
	v.mustMatch(o)
	for i := range v.words {
		v.words[i] ^= o.words[i]
	}
}

// Not flips every bit in place.
func (v *Vector) Not() {
	for i := range v.words {
		v.words[i] = ^v.words[i]
	}
	v.trim()
}

// Equal reports whether v and o have the same length and bits.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// IntersectionCount returns |v ∧ o| without allocating.
func (v *Vector) IntersectionCount(o *Vector) int {
	v.mustMatch(o)
	c := 0
	for i := range v.words {
		c += bits.OnesCount64(v.words[i] & o.words[i])
	}
	return c
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (v *Vector) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	wi := i / wordBits
	w := v.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// ForEach calls fn for every set bit, in increasing order.
func (v *Vector) ForEach(fn func(i int)) {
	for wi, w := range v.words {
		base := wi * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Indices returns the indices of all set bits, in increasing order.
func (v *Vector) Indices() []int {
	out := make([]int, 0, v.Count())
	v.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the vector as a 0/1 string, bit 0 first. Long vectors
// are abbreviated.
func (v *Vector) String() string {
	var sb strings.Builder
	limit := v.n
	const max = 128
	if limit > max {
		limit = max
	}
	for i := 0; i < limit; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	if v.n > max {
		fmt.Fprintf(&sb, "… (%d bits, %d set)", v.n, v.Count())
	}
	return sb.String()
}
