package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsEmpty(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	if v.Any() {
		t.Fatal("new vector has set bits")
	}
	if v.Count() != 0 {
		t.Fatalf("Count = %d, want 0", v.Count())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	v := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		v.Set(i)
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.Count() != 8 {
		t.Fatalf("Count = %d, want 8", v.Count())
	}
	v.Clear(64)
	if v.Get(64) {
		t.Error("bit 64 still set after Clear")
	}
	if v.Count() != 7 {
		t.Fatalf("Count = %d, want 7", v.Count())
	}
}

func TestSetBool(t *testing.T) {
	v := New(10)
	v.SetBool(3, true)
	v.SetBool(4, false)
	if !v.Get(3) || v.Get(4) {
		t.Fatal("SetBool mismatch")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(10)
	for name, fn := range map[string]func(){
		"Get":   func() { v.Get(10) },
		"Set":   func() { v.Set(-1) },
		"Clear": func() { v.Clear(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSetAllAndNot(t *testing.T) {
	v := New(70) // deliberately not a multiple of 64
	v.SetAll()
	if !v.All() {
		t.Fatal("SetAll did not set all bits")
	}
	if v.Count() != 70 {
		t.Fatalf("Count = %d, want 70", v.Count())
	}
	v.Not()
	if v.Any() {
		t.Fatal("Not of full vector should be empty")
	}
	v.Not()
	if v.Count() != 70 {
		t.Fatalf("double Not: Count = %d, want 70", v.Count())
	}
}

func TestNewFull(t *testing.T) {
	v := NewFull(65)
	if !v.All() || v.Count() != 65 {
		t.Fatalf("NewFull(65): Count = %d", v.Count())
	}
}

func TestBooleanOps(t *testing.T) {
	a := New(100)
	b := New(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}

	and := a.Clone()
	and.And(b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 && i%3 == 0
		if and.Get(i) != want {
			t.Fatalf("And bit %d = %v, want %v", i, and.Get(i), want)
		}
	}

	or := a.Clone()
	or.Or(b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 || i%3 == 0
		if or.Get(i) != want {
			t.Fatalf("Or bit %d = %v, want %v", i, or.Get(i), want)
		}
	}

	an := a.Clone()
	an.AndNot(b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 && i%3 != 0
		if an.Get(i) != want {
			t.Fatalf("AndNot bit %d = %v, want %v", i, an.Get(i), want)
		}
	}

	xor := a.Clone()
	xor.Xor(b)
	for i := 0; i < 100; i++ {
		want := (i%2 == 0) != (i%3 == 0)
		if xor.Get(i) != want {
			t.Fatalf("Xor bit %d = %v, want %v", i, xor.Get(i), want)
		}
	}

	if got := a.IntersectionCount(b); got != and.Count() {
		t.Fatalf("IntersectionCount = %d, want %d", got, and.Count())
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths did not panic")
		}
	}()
	New(10).And(New(11))
}

func TestCloneIndependent(t *testing.T) {
	a := New(64)
	a.Set(5)
	b := a.Clone()
	b.Set(6)
	if a.Get(6) {
		t.Fatal("Clone shares storage with original")
	}
	if !b.Get(5) {
		t.Fatal("Clone lost bit 5")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(64)
	a.Set(1)
	b := New(64)
	b.CopyFrom(a)
	if !b.Get(1) || b.Count() != 1 {
		t.Fatal("CopyFrom did not copy")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(33), New(33)
	if !a.Equal(b) {
		t.Fatal("two empty vectors unequal")
	}
	a.Set(32)
	if a.Equal(b) {
		t.Fatal("different vectors compare equal")
	}
	b.Set(32)
	if !a.Equal(b) {
		t.Fatal("identical vectors compare unequal")
	}
	if a.Equal(New(34)) {
		t.Fatal("different lengths compare equal")
	}
}

func TestNextSet(t *testing.T) {
	v := New(300)
	for _, i := range []int{3, 64, 130, 299} {
		v.Set(i)
	}
	cases := []struct{ from, want int }{
		{0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 130},
		{131, 299}, {299, 299}, {-5, 3},
	}
	for _, c := range cases {
		if got := v.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := v.NextSet(300); got != -1 {
		t.Errorf("NextSet past end = %d, want -1", got)
	}
	if got := New(10).NextSet(0); got != -1 {
		t.Errorf("NextSet on empty = %d, want -1", got)
	}
}

func TestForEachAndIndices(t *testing.T) {
	v := New(200)
	want := []int{0, 17, 63, 64, 128, 199}
	for _, i := range want {
		v.Set(i)
	}
	got := v.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestString(t *testing.T) {
	v := New(4)
	v.Set(1)
	v.Set(3)
	if s := v.String(); s != "0101" {
		t.Fatalf("String = %q, want 0101", s)
	}
	long := NewFull(200)
	if s := long.String(); len(s) == 0 {
		t.Fatal("long String is empty")
	}
}

// Property: Count equals the number of indices reported by ForEach, and
// round-tripping through Indices reconstructs the vector.
func TestQuickCountMatchesIndices(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%500 + 1
		rng := rand.New(rand.NewSource(seed))
		v := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				v.Set(i)
			}
		}
		idx := v.Indices()
		if len(idx) != v.Count() {
			return false
		}
		w := New(n)
		for _, i := range idx {
			w.Set(i)
		}
		return w.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan — ¬(a ∧ b) == ¬a ∨ ¬b.
func TestQuickDeMorgan(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%300 + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				a.Set(i)
			}
			if rng.Intn(2) == 1 {
				b.Set(i)
			}
		}
		lhs := a.Clone()
		lhs.And(b)
		lhs.Not()

		na, nb := a.Clone(), b.Clone()
		na.Not()
		nb.Not()
		na.Or(nb)
		return lhs.Equal(na)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCount(b *testing.B) {
	v := NewFull(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if v.Count() != 1<<20 {
			b.Fatal("bad count")
		}
	}
}

func BenchmarkAnd(b *testing.B) {
	x := NewFull(1 << 20)
	y := NewFull(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.And(y)
	}
}

func TestReset(t *testing.T) {
	v := New(130)
	v.SetAll()
	v.Reset(130)
	if v.Len() != 130 || v.Any() {
		t.Fatalf("Reset(same) left len=%d count=%d", v.Len(), v.Count())
	}
	v.SetAll()
	v.Reset(40) // shrink: must reuse storage and clear
	if v.Len() != 40 || v.Any() {
		t.Fatalf("Reset(shrink) left len=%d count=%d", v.Len(), v.Count())
	}
	v.Set(39)
	v.Reset(500) // grow
	if v.Len() != 500 || v.Any() {
		t.Fatalf("Reset(grow) left len=%d count=%d", v.Len(), v.Count())
	}
	v.Set(499)
	if v.Count() != 1 {
		t.Fatal("grown vector unusable")
	}
	// Reset within capacity must not allocate.
	allocs := testing.AllocsPerRun(10, func() { v.Reset(200) })
	if allocs != 0 {
		t.Fatalf("Reset within capacity allocated %.1f objects/op", allocs)
	}
}

func TestResetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reset(-1) did not panic")
		}
	}()
	New(4).Reset(-1)
}
