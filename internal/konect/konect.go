// Package konect reads and writes bipartite graphs in the KONECT
// ("Koblenz Network Collection") exchange format, the source of the
// paper's five evaluation datasets.
//
// A KONECT file is a TSV edge list: comment/header lines start with
// '%', data lines contain at least two whitespace-separated 1-based
// vertex ids (u ∈ V1, v ∈ V2), optionally followed by a weight and a
// timestamp, both of which are ignored for unweighted counting. When a
// real KONECT download is present on disk it drops straight into the
// benchmark harness in place of the synthetic stand-ins.
package konect

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"butterfly/internal/graph"
)

// ReadGraph parses a KONECT bipartite edge list. Vertex-set sizes are
// the maxima of the observed 1-based ids; parallel edges collapse
// (simple graph).
func ReadGraph(r io.Reader) (*graph.Bipartite, error) {
	type edge struct{ u, v int }
	var (
		edges  []edge
		maxU   int
		maxV   int
		lineNo int
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("konect: line %d: want at least 2 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("konect: line %d: bad V1 id %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("konect: line %d: bad V2 id %q: %w", lineNo, fields[1], err)
		}
		if u < 1 || v < 1 {
			return nil, fmt.Errorf("konect: line %d: ids must be ≥ 1, got (%d, %d)", lineNo, u, v)
		}
		if u > maxU {
			maxU = u
		}
		if v > maxV {
			maxV = v
		}
		edges = append(edges, edge{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("konect: read: %w", err)
	}
	b := graph.NewBuilder(maxU, maxV)
	for _, e := range edges {
		b.AddEdge(e.u-1, e.v-1)
	}
	return b.Build(), nil
}

// ReadFile reads a KONECT file from disk. Gzip-compressed files
// (KONECT ships .gz downloads) are detected by magic bytes and
// decompressed transparently.
func ReadFile(path string) (*graph.Bipartite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("konect: %w", err)
	}
	defer f.Close()

	br := bufio.NewReader(f)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("konect: gzip: %w", err)
		}
		defer gz.Close()
		return ReadGraph(gz)
	}
	return ReadGraph(br)
}

// WriteGraph emits g in KONECT bipartite format with a standard header.
func WriteGraph(w io.Writer, g *graph.Bipartite) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%% bip unweighted\n%% %d %d %d\n",
		g.NumEdges(), g.NumV1(), g.NumV2()); err != nil {
		return fmt.Errorf("konect: write header: %w", err)
	}
	for u := 0; u < g.NumV1(); u++ {
		for _, v := range g.NeighborsOfV1(u) {
			if _, err := fmt.Fprintf(bw, "%d\t%d\n", u+1, int(v)+1); err != nil {
				return fmt.Errorf("konect: write edge: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("konect: flush: %w", err)
	}
	return nil
}

// WriteFile writes g to the named file, creating or truncating it.
func WriteFile(path string, g *graph.Bipartite) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("konect: %w", err)
	}
	if err := WriteGraph(f, g); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("konect: close: %w", err)
	}
	return nil
}
