package konect

import (
	"bytes"
	"compress/gzip"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"butterfly/internal/gen"
	"butterfly/internal/graph"
)

func TestReadGraphBasic(t *testing.T) {
	in := `% bip unweighted
% 4 2 3
1 1
1 2
2 2
2 3
`
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumV1() != 2 || g.NumV2() != 3 || g.NumEdges() != 4 {
		t.Fatalf("parsed %s", g)
	}
	if !g.HasEdge(0, 0) || !g.HasEdge(1, 2) {
		t.Fatal("edges missing")
	}
}

func TestReadGraphWeightsAndTimestampsIgnored(t *testing.T) {
	in := "1 1 5 1234567\n2\t2\t1\n"
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestReadGraphSkipsCommentsAndBlank(t *testing.T) {
	in := "% header\n\n# alt comment\n1 1\n\n"
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestReadGraphDuplicatesCollapse(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("1 1\n1 1\n1 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
}

func TestReadGraphErrors(t *testing.T) {
	cases := map[string]string{
		"oneField": "1\n",
		"badU":     "x 1\n",
		"badV":     "1 y\n",
		"zeroID":   "0 1\n",
		"negative": "1 -2\n",
	}
	for name, in := range cases {
		if _, err := ReadGraph(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestReadGraphEmpty(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("% nothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumV1() != 0 || g.NumV2() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty input parsed as %s", g)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	src := gen.ErdosRenyi(30, 40, 0.1, 77)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, src); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Round trip preserves edges; trailing isolated vertices may be
	// trimmed (KONECT infers sizes from max ids), so compare edge sets.
	if back.NumEdges() != src.NumEdges() {
		t.Fatalf("edges %d, want %d", back.NumEdges(), src.NumEdges())
	}
	for u := 0; u < back.NumV1(); u++ {
		for _, v := range back.NeighborsOfV1(u) {
			if !src.HasEdge(u, int(v)) {
				t.Fatalf("phantom edge (%d,%d)", u, v)
			}
		}
	}
}

func TestWriteReadRoundTripExact(t *testing.T) {
	// A graph whose max-id vertices have edges round-trips exactly.
	b := graph.NewBuilder(3, 3)
	b.AddEdge(0, 1)
	b.AddEdge(2, 0)
	b.AddEdge(1, 2)
	src := b.Build()
	var buf bytes.Buffer
	if err := WriteGraph(&buf, src); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(src) {
		t.Fatal("exact round trip differs")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.test")
	rng := rand.New(rand.NewSource(5))
	b := graph.NewBuilder(10, 10)
	for i := 0; i < 25; i++ {
		b.AddEdge(rng.Intn(10), rng.Intn(10))
	}
	src := b.Build()
	if err := WriteFile(path, src); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != src.NumEdges() {
		t.Fatalf("edges %d, want %d", back.NumEdges(), src.NumEdges())
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file did not error")
	}
}

func TestWriteFileBadPath(t *testing.T) {
	if err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), gen.Star(2)); err == nil {
		t.Fatal("bad path did not error")
	}
	if _, err := os.Stat(filepath.Join(t.TempDir(), "f")); err == nil {
		t.Fatal("unexpected file created")
	}
}

// FuzzReadGraph checks the KONECT parser never panics and that accepted
// inputs round-trip through the writer with the same edge set.
func FuzzReadGraph(f *testing.F) {
	f.Add("% bip unweighted\n1 1\n2 3\n")
	f.Add("1 1 5 123456\n")
	f.Add("")
	f.Add("0 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadGraph(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteGraph(&buf, g); err != nil {
			t.Fatalf("accepted graph failed to write: %v", err)
		}
		back, err := ReadGraph(&buf)
		if err != nil {
			t.Fatalf("writer output rejected: %v", err)
		}
		if back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip edges %d != %d", back.NumEdges(), g.NumEdges())
		}
	})
}

// failWriter fails after n bytes, exercising write error paths.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errors.New("synthetic write failure")
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, errors.New("synthetic write failure")
	}
	return n, nil
}

func TestWriteGraphWriterFailure(t *testing.T) {
	g := gen.CompleteBipartite(20, 20)
	for _, budget := range []int{0, 10, 100} {
		if err := WriteGraph(&failWriter{left: budget}, g); err == nil {
			t.Errorf("budget %d: write failure not propagated", budget)
		}
	}
}

// failReader errors mid-stream, exercising the scanner error path.
type failReader struct {
	data string
	done bool
}

func (r *failReader) Read(p []byte) (int, error) {
	if r.done {
		return 0, errors.New("synthetic read failure")
	}
	r.done = true
	return copy(p, r.data), nil
}

func TestReadGraphReaderFailure(t *testing.T) {
	if _, err := ReadGraph(&failReader{data: "1 1\n2 2\n"}); err == nil {
		t.Fatal("read failure not propagated")
	}
}

func TestReadFileGzip(t *testing.T) {
	src := gen.CompleteBipartite(4, 3)
	var plain bytes.Buffer
	if err := WriteGraph(&plain, src); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.test.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(f)
	if _, err := gz.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != 12 {
		t.Fatalf("gzip read edges = %d, want 12", back.NumEdges())
	}
	// Corrupt gzip errors cleanly.
	bad := filepath.Join(t.TempDir(), "bad.gz")
	if err := os.WriteFile(bad, []byte{0x1f, 0x8b, 0xff, 0x00}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Fatal("corrupt gzip accepted")
	}
}
