package cluster

// Scatter-gather cross-shard counting. A graph registered with
// partitions=P has its V1 side hash-split into P partition graphs
// placed on (up to P distinct) shards. Each shard's wedge partial map
// β^s(v,w) — wedges centered at its resident V1 vertices — is fetched
// via /v1/internal/partial, k-way merged at the router, and reduced
// by Σ C(Σ_s β^s, 2). The split is over wedge CENTERS, so every wedge
// lives on exactly one shard and the reduction is exact: the binomial
// is applied once per V2 pair, after summing, never per shard (C is
// not additive).
//
// When a partition is unreachable, the merge over the L live
// partitions counts exactly the butterflies whose both V1 vertices
// landed in live partitions — a (L/P)² vertex sample — so the router
// degrades to estimate = live × (P/L)², the partition-sampling
// estimator, marked Degraded with the X-Degraded header.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"butterfly"
	"butterfly/internal/obsv"
	"butterfly/serveapi"
)

// partialEpochHeader mirrors serve.PartialEpochHeader: the shard's
// partial-log activation token, pinned with the partials and echoed
// back in `?epoch=`.
const partialEpochHeader = "X-Bf-Partial-Epoch"

// partHomes places the P partitions of a graph: partition i lives on
// element i mod H of the graph's ring successor list, H = min(P,
// shards). Deterministic in (name, ring), so a restarted router
// re-derives placement without any stored state.
func (rt *Router) partHomes(ring *Ring, name string, p int) []string {
	homes := ring.Successors(name, p)
	if len(homes) == 0 {
		return nil
	}
	out := make([]string, p)
	for i := range out {
		out[i] = homes[i%len(homes)]
	}
	return out
}

// partialResult is one partition's gathered wedge partial map.
type partialResult struct {
	part     int
	shard    string
	version  uint64
	partials []butterfly.WedgePartial
	kind     string // full | delta | noop — how the map was obtained
	err      error
	elapsed  time.Duration
}

// fetchPartial fetches one partition's partial map. With a pinned copy
// it asks for the delta since the pinned version and applies it;
// without one (or when the shard answered with a full frame because
// its history was evicted) it decodes the full map.
func (rt *Router) fetchPartial(ctx context.Context, shard, pname string, cp *cachedPartial) (version, epoch uint64, partials []butterfly.WedgePartial, kind string, err error) {
	path := "/v1/internal/partial/" + url.PathEscape(pname)
	if cp != nil {
		path += fmt.Sprintf("?since=%d&epoch=%d", cp.version, cp.epoch)
	}
	sr, err := rt.forward(ctx, shard, http.MethodGet, path, "", 0, nil, nil)
	if err != nil {
		return 0, 0, nil, "", err
	}
	if sr.status != http.StatusOK {
		return 0, 0, nil, "", fmt.Errorf("shard %s: status %d: %s", shard, sr.status, truncate(sr.body, 200))
	}
	epoch, _ = strconv.ParseUint(sr.header.Get(partialEpochHeader), 10, 64)
	if serveapi.PartialFrameKind(sr.body) == serveapi.PartialFrameDelta {
		from, to, delta, derr := serveapi.DecodePartialDelta(sr.body)
		if derr == nil && (cp == nil || from != cp.version) {
			derr = fmt.Errorf("shard %s: delta frame from v%d does not match pinned copy", shard, from)
		}
		var merged []butterfly.WedgePartial
		if derr == nil {
			merged, derr = butterfly.ApplyWedgePartialDelta(cp.partials, delta)
		}
		if derr != nil {
			return 0, 0, nil, "", derr
		}
		kind = "delta"
		if to == from {
			kind = "noop"
		}
		if epoch == 0 {
			epoch = cp.epoch
		}
		return to, epoch, merged, kind, nil
	}
	version, partials, err = serveapi.DecodePartial(sr.body)
	if err != nil {
		return 0, 0, nil, "", err
	}
	return version, epoch, partials, "full", nil
}

// gatherPartials fetches every partition's partial map concurrently,
// each under its own PartialTimeout deadline, so one dead shard
// delays the answer by at most the deadline rather than the client's
// full patience. Partitions with a pinned copy in pc sync by delta
// (changed keys only — usually orders of magnitude smaller than the
// map) and successful fetches re-pin, so steady-state gathers ship
// almost no partial data.
func (rt *Router) gatherPartials(ctx context.Context, name string, p int, homes []string, pc *partialCache) []partialResult {
	results := make([]partialResult, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			pctx, cancel := context.WithTimeout(ctx, rt.cfg.PartialTimeout)
			defer cancel()
			shard := homes[i]
			pname := partName(name, i, p)
			cp := pc.snapshot(i)
			version, epoch, partials, kind, err := rt.fetchPartial(pctx, shard, pname, cp)
			if err != nil && cp != nil && pctx.Err() == nil {
				// A broken delta path (stale pin, frame the pin cannot
				// absorb) must not read as a dead shard: drop the pin
				// and fetch cold once.
				version, epoch, partials, kind, err = rt.fetchPartial(pctx, shard, pname, nil)
			}
			res := partialResult{part: i, shard: shard, kind: kind, err: err}
			if err == nil {
				res.version, res.partials = version, partials
				pc.store(i, &cachedPartial{version: version, epoch: epoch, partials: partials})
				switch {
				case kind == "delta" || kind == "noop":
					rt.partialHits.With(kind).Inc()
				case cp == nil:
					rt.partialMisses.With("cold").Inc()
				default:
					rt.partialMisses.With("full").Inc()
				}
			}
			res.elapsed = time.Since(start)
			results[i] = res
		}(i)
	}
	wg.Wait()
	return results
}

// gatherMerged answers one partitioned reduction, from the merged pin
// when the graph is unchanged since the last all-live gather — a pure
// metadata check, no shard traffic — and by (delta-synced) scatter-
// gather otherwise. An all-live result re-pins the merged count under
// the generation observed before the gather, so a racing mutation can
// never be papered over by a stale pin.
func (rt *Router) gatherMerged(ctx context.Context, name string, m *graphMeta, homes []string) gatherOutcome {
	p := m.partitions
	gen, mc, ok := m.pc.mergedSnapshot(p)
	if ok {
		rt.partialHits.With("merged").Inc()
		return gatherOutcome{count: mc.count, sumVersion: mc.sumVersion, live: p, p: p, fromCache: true}
	}
	results := rt.gatherPartials(ctx, name, p, homes, &m.pc)
	count, sumVersion, live := reduce(results)
	out := gatherOutcome{count: count, sumVersion: sumVersion, live: live, p: p}
	for _, res := range results {
		if res.err != nil {
			out.firstErr = res.err
			break
		}
	}
	if live == p {
		m.pc.setMerged(gen, mergedCount{count: count, sumVersion: sumVersion})
	}
	return out
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		return string(b[:n]) + "…"
	}
	return string(b)
}

// reduce merges the live partials and reports how many partitions
// contributed.
func reduce(results []partialResult) (count int64, sumVersion uint64, live int) {
	parts := make([][]butterfly.WedgePartial, 0, len(results))
	for _, res := range results {
		if res.err == nil {
			parts = append(parts, res.partials)
			sumVersion += res.version
			live++
		}
	}
	return butterfly.MergeWedgePartials(parts...), sumVersion, live
}

// scatterSpan records the scatter-gather breakdown on a trace (shown
// under ?debug=true).
func scatterSpan(root *obsv.Span, results []partialResult) {
	sp := root.Child("scatter")
	for _, res := range results {
		name := fmt.Sprintf("partial[%d] %s", res.part, res.shard)
		if res.kind != "" {
			name += " (" + res.kind + ")"
		}
		if res.err != nil {
			name += " (failed)"
		}
		sp.Stage(name, res.elapsed)
	}
	sp.End()
}

// partitionedCount answers count (asEstimate=false) or estimate
// (asEstimate=true) for a partitioned graph. With every partition
// live the answer is exact either way; with L < P live, count
// degrades to the partition-sampling estimate (X-Degraded:
// partitions) instead of failing, and estimate reports the same
// number as a first-class approximate answer.
//
// The fast path: concurrent requests coalesce onto one gather per
// (graph, cache generation), and an unchanged graph answers straight
// from the merged pin (X-Cache: merged) without touching a shard.
// ?debug=true bypasses both — its purpose is to trace a real scatter.
func (rt *Router) partitionedCount(w http.ResponseWriter, r *http.Request, name string, m *graphMeta, asEstimate bool) {
	p := m.partitions
	ring := rt.currentRing()
	homes := rt.partHomes(ring, name, p)
	if homes == nil {
		rt.writeErr(w, http.StatusServiceUnavailable, serveapi.CodeUnavailable, "no shards configured", 1000)
		return
	}
	debug := r.URL.Query().Get("debug") == "true"
	start := time.Now()

	var out gatherOutcome
	var tr *obsv.Trace
	if debug {
		tr = obsv.NewTrace("request")
		gen := m.pc.generation()
		results := rt.gatherPartials(r.Context(), name, p, homes, &m.pc)
		scatterSpan(tr.Root(), results)
		msp := tr.Root().Child("merge")
		count, sumVersion, live := reduce(results)
		msp.End()
		out = gatherOutcome{count: count, sumVersion: sumVersion, live: live, p: p}
		for _, res := range results {
			if res.err != nil {
				out.firstErr = res.err
				break
			}
		}
		if live == p {
			m.pc.setMerged(gen, mergedCount{count: count, sumVersion: sumVersion})
		}
	} else {
		// The gather outlives its leader's request context: a client
		// that gives up must not fail the waiters it coalesced with.
		// PartialTimeout still bounds every shard fetch.
		gctx := context.WithoutCancel(r.Context())
		key := fmt.Sprintf("%s|g%d", name, m.pc.generation())
		var joined bool
		out, joined = rt.flights.do(key, func() gatherOutcome {
			return rt.gatherMerged(gctx, name, m, homes)
		})
		if joined {
			rt.coalesced.With().Inc()
		}
	}
	elapsed := time.Since(start).Milliseconds()

	if out.live == 0 {
		rt.writeErr(w, http.StatusServiceUnavailable, serveapi.CodeUnavailable,
			fmt.Sprintf("all %d partitions unreachable: %v", p, out.firstErr), 1000)
		return
	}
	if out.fromCache {
		w.Header().Set("X-Cache", "merged")
	}

	if out.live == p && !asEstimate {
		resp := &serveapi.CountResponse{
			ResultMeta: serveapi.ResultMeta{
				Graph:      name,
				Version:    out.sumVersion,
				Partitions: p,
			},
			Butterflies: out.count,
			ElapsedMS:   elapsed,
		}
		if out.fromCache {
			resp.Cache = "merged"
		}
		if debug {
			resp.Trace = spanToAPI(tr.Snapshot())
		}
		rt.writeJSON(w, http.StatusOK, resp)
		return
	}

	scale := float64(p) / float64(out.live)
	resp := &serveapi.EstimateResponse{
		ResultMeta: serveapi.ResultMeta{
			Graph:      name,
			Version:    out.sumVersion,
			Degraded:   out.live < p,
			Partitions: p,
		},
		Strategy:       "partitions",
		Estimate:       float64(out.count) * scale * scale,
		PartitionsLive: out.live,
		ElapsedMS:      elapsed,
	}
	if out.fromCache {
		resp.Cache = "merged"
	}
	if debug {
		resp.Trace = spanToAPI(tr.Snapshot())
	}
	if out.live < p {
		rt.degraded.With().Inc()
		w.Header().Set("X-Degraded", "partitions")
	}
	rt.writeJSON(w, http.StatusOK, resp)
}

// partitionedRegister materializes the requested graph, splits its
// edges by V1-hash into P partition graphs, registers each on its
// home shard with the graph's full dimensions (shared id space — that
// is what makes the partials mergeable without relabeling), and
// answers with the merged logical info, Butterflies computed exactly
// by an immediate scatter-gather — which doubles as an end-to-end
// check that the partition pipeline works before the client sees 201.
func (rt *Router) partitionedRegister(w http.ResponseWriter, r *http.Request, req *serveapi.RegisterRequest) {
	p := req.Partitions
	if p > 256 {
		rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument,
			fmt.Sprintf("partitions=%d exceeds the limit of 256", p), 0)
		return
	}
	if req.Path != "" {
		rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument,
			"path loading is not supported for partitioned registration (the router has no shard filesystem); use dataset or inline edges", 0)
		return
	}
	var g *butterfly.Graph
	var err error
	switch {
	case req.Dataset != "":
		scale := req.Scale
		if scale < 1 {
			scale = 1
		}
		g, err = butterfly.GeneratePaperDataset(req.Dataset, scale)
	case len(req.Edges) > 0 || req.M > 0 || req.N > 0:
		g, err = butterfly.FromEdges(req.M, req.N, req.Edges)
	default:
		err = fmt.Errorf("exactly one of dataset or m/n/edges must be set")
	}
	if err != nil {
		rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument, err.Error(), 0)
		return
	}

	ring := rt.currentRing()
	homes := rt.partHomes(ring, req.Name, p)
	if homes == nil {
		rt.writeErr(w, http.StatusServiceUnavailable, serveapi.CodeUnavailable, "no shards configured", 1000)
		return
	}
	split := make([][][2]int, p)
	for _, e := range g.Edges() {
		i := partOf(e[0], p)
		split[i] = append(split[i], e)
	}

	type regOut struct {
		sr  *shardResp
		err error
	}
	outs := make([]regOut, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			preq := serveapi.RegisterRequest{
				Name:    partName(req.Name, i, p),
				Replace: true, // idempotent re-registration after a failed attempt
				M:       g.NumV1(),
				N:       g.NumV2(),
				Edges:   split[i],
			}
			body, _ := json.Marshal(&preq)
			sr, err := rt.forward(r.Context(), homes[i], http.MethodPost, "/v1/graphs", "application/json", 0, tenantHeaders(r), body)
			if err == nil && sr.status/100 != 2 {
				err = fmt.Errorf("shard %s: status %d: %s", homes[i], sr.status, truncate(sr.body, 200))
			}
			outs[i] = regOut{sr: sr, err: err}
		}(i)
	}
	wg.Wait()
	for i, o := range outs {
		if o.err != nil {
			// Best-effort cleanup so a retry is not blocked by
			// half-registered partitions.
			for j := 0; j < p; j++ {
				if outs[j].err == nil {
					path := "/v1/graphs/" + url.PathEscape(partName(req.Name, j, p))
					_, _ = rt.forward(r.Context(), homes[j], http.MethodDelete, path, "", 0, nil, nil)
				}
			}
			rt.writeErr(w, http.StatusServiceUnavailable, serveapi.CodeUnavailable,
				fmt.Sprintf("registering partition %d failed: %v", i, o.err), 1000)
			return
		}
	}
	m := rt.ensureMeta(req.Name, p)
	// A re-registration replaces partition content wholesale; anything
	// pinned from the previous incarnation is garbage.
	m.pc.clear()

	results := rt.gatherPartials(r.Context(), req.Name, p, homes, &m.pc)
	count, sumVersion, live := reduce(results)
	info := serveapi.GraphInfo{
		Name:       req.Name,
		Version:    sumVersion,
		NumV1:      g.NumV1(),
		NumV2:      g.NumV2(),
		NumEdges:   g.NumEdges(),
		Partitions: p,
	}
	if live == p {
		info.Butterflies = count
	}
	if info.NumV1 > 0 && info.NumV2 > 0 {
		info.Density = float64(info.NumEdges) / (float64(info.NumV1) * float64(info.NumV2))
	}
	rt.writeJSON(w, http.StatusCreated, &info)
}

// partitionedInfo merges the partition infos into one logical entry;
// Butterflies comes from a fresh scatter-gather, exact when every
// partition answers (the shard-side partial cache makes repeats
// cheap), and omitted (0) otherwise.
func (rt *Router) partitionedInfo(w http.ResponseWriter, r *http.Request, name string, m *graphMeta) {
	p := m.partitions
	ring := rt.currentRing()
	homes := rt.partHomes(ring, name, p)
	type infoOut struct {
		info serveapi.GraphInfo
		err  error
	}
	outs := make([]infoOut, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := "/v1/graphs/" + url.PathEscape(partName(name, i, p))
			sr, err := rt.forward(r.Context(), homes[i], http.MethodGet, path, "", 0, tenantHeaders(r), nil)
			if err == nil && sr.status != http.StatusOK {
				err = fmt.Errorf("status %d", sr.status)
			}
			var gi serveapi.GraphInfo
			if err == nil {
				err = json.Unmarshal(sr.body, &gi)
			}
			outs[i] = infoOut{info: gi, err: err}
		}(i)
	}
	wg.Wait()

	merged := serveapi.GraphInfo{Name: name, Partitions: p}
	ok := 0
	for _, o := range outs {
		if o.err != nil {
			continue
		}
		ok++
		merged.Version += o.info.Version
		merged.NumEdges += o.info.NumEdges
		if o.info.NumV1 > merged.NumV1 {
			merged.NumV1 = o.info.NumV1
		}
		if o.info.NumV2 > merged.NumV2 {
			merged.NumV2 = o.info.NumV2
		}
	}
	if ok == 0 {
		rt.writeErr(w, http.StatusServiceUnavailable, serveapi.CodeUnavailable,
			fmt.Sprintf("all %d partitions unreachable", p), 1000)
		return
	}
	if out := rt.gatherMerged(r.Context(), name, m, homes); out.live == p {
		merged.Butterflies = out.count
	}
	if merged.NumV1 > 0 && merged.NumV2 > 0 {
		merged.Density = float64(merged.NumEdges) / (float64(merged.NumV1) * float64(merged.NumV2))
	}
	rt.writeJSON(w, http.StatusOK, &merged)
}

// partitionedDrop deletes every partition graph. Partial failure
// leaves the remaining partitions in place and the meta intact so a
// retry can finish the job.
func (rt *Router) partitionedDrop(w http.ResponseWriter, r *http.Request, name string, m *graphMeta) {
	p := m.partitions
	ring := rt.currentRing()
	homes := rt.partHomes(ring, name, p)
	var errs []string
	for i := 0; i < p; i++ {
		path := "/v1/graphs/" + url.PathEscape(partName(name, i, p))
		sr, err := rt.forward(r.Context(), homes[i], http.MethodDelete, path, "", 0, tenantHeaders(r), nil)
		// 404 is success for a drop retry: the partition is already gone.
		if err == nil && sr.status/100 != 2 && sr.status != http.StatusNotFound {
			err = fmt.Errorf("status %d", sr.status)
		}
		if err != nil {
			errs = append(errs, fmt.Sprintf("partition %d on %s: %v", i, homes[i], err))
		}
	}
	if len(errs) > 0 {
		rt.writeErr(w, http.StatusServiceUnavailable, serveapi.CodeUnavailable,
			fmt.Sprintf("drop incomplete: %v", errs), 1000)
		return
	}
	rt.forgetMeta(name)
	w.WriteHeader(http.StatusNoContent)
}

// partitionedMutate splits the mutation batch by the same V1 hash
// that split the graph and applies each piece to its partition.
// Created/Destroyed in the response sum the partition-local deltas
// (butterflies whose both centers share a partition); Count is the
// exact new total from a fresh scatter-gather.
func (rt *Router) partitionedMutate(w http.ResponseWriter, r *http.Request, name string, m *graphMeta, body []byte) {
	var req serveapi.MutateRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			rt.writeErr(w, http.StatusBadRequest, serveapi.CodeInvalidArgument,
				fmt.Sprintf("invalid request body: %v", err), 0)
			return
		}
	}
	p := m.partitions
	ring := rt.currentRing()
	homes := rt.partHomes(ring, name, p)
	ins := make([][][2]int, p)
	dels := make([][][2]int, p)
	for _, e := range req.Inserts {
		i := partOf(e[0], p)
		ins[i] = append(ins[i], e)
	}
	for _, e := range req.Deletes {
		i := partOf(e[0], p)
		dels[i] = append(dels[i], e)
	}

	start := time.Now()
	total := serveapi.MutateResponse{Graph: name}
	for i := 0; i < p; i++ {
		if len(ins[i]) == 0 && len(dels[i]) == 0 {
			continue
		}
		preq := serveapi.MutateRequest{Inserts: ins[i], Deletes: dels[i]}
		pbody, _ := json.Marshal(&preq)
		path := "/v1/graphs/" + url.PathEscape(partName(name, i, p)) + "/mutate"
		sr, err := rt.forward(r.Context(), homes[i], http.MethodPost, path, "application/json", 0, tenantHeaders(r), pbody)
		if err == nil && sr.status/100 != 2 {
			// Relay the shard's own error (bad request, overload, …)
			// verbatim: partial application has already happened for
			// earlier partitions — exactly like a partially applied
			// batch on a single node that fails midway, the applied
			// prefix stays applied.
			relay(w, sr, homes[i])
			return
		}
		if err != nil {
			rt.writeErr(w, http.StatusServiceUnavailable, serveapi.CodeUnavailable,
				fmt.Sprintf("partition %d on %s: %v (earlier partitions already applied; retry is idempotent per edge)", i, homes[i], err), 1000)
			return
		}
		var mr serveapi.MutateResponse
		if json.Unmarshal(sr.body, &mr) == nil {
			total.Inserted += mr.Inserted
			total.Deleted += mr.Deleted
			total.Created += mr.Created
			total.Destroyed += mr.Destroyed
		}
	}

	// The graph changed: start a new cache generation (dropping the
	// merged pin, keeping per-partition pins for delta revalidation)
	// and re-reduce. Routing through the flight group lets counts
	// arriving during the post-mutation gather share it.
	m.pc.invalidate()
	gctx := context.WithoutCancel(r.Context())
	out, _ := rt.flights.do(fmt.Sprintf("%s|g%d", name, m.pc.generation()), func() gatherOutcome {
		return rt.gatherMerged(gctx, name, m, homes)
	})
	total.Version = out.sumVersion
	if out.live == p {
		total.Count = out.count
	}
	var edges int64
	for i := 0; i < p; i++ {
		path := "/v1/graphs/" + url.PathEscape(partName(name, i, p))
		if sr, err := rt.forward(r.Context(), homes[i], http.MethodGet, path, "", 0, tenantHeaders(r), nil); err == nil && sr.status == http.StatusOK {
			var gi serveapi.GraphInfo
			if json.Unmarshal(sr.body, &gi) == nil {
				edges += gi.NumEdges
			}
		}
	}
	total.Edges = edges
	total.ElapsedMS = time.Since(start).Milliseconds()
	rt.writeJSON(w, http.StatusOK, &total)
}

// spanToAPI converts a trace snapshot to the wire shape.
func spanToAPI(n obsv.SpanNode) *serveapi.TraceSpan {
	out := serveapi.TraceSpan{Name: n.Name, StartUS: n.StartUS, DurUS: n.DurUS, Dropped: n.Dropped}
	for _, c := range n.Children {
		out.Children = append(out.Children, *spanToAPI(c))
	}
	return &out
}
