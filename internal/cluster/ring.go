// Package cluster is the multi-node mode of bfserved: a stateless
// router that places graphs on shard daemons with a consistent-hash
// ring, proxies the /v1 surface to the owning shard, reduces
// cross-shard wedge partials into exact butterfly counts, and moves
// graphs between shards on membership changes (/admin/rebalance).
// Shards are ordinary bfserved processes — the cluster protocol is
// three /v1/internal endpoints they already serve. See
// docs/CLUSTER.md.
package cluster

import (
	"fmt"
	"hash/fnv"
	"slices"
	"sort"
)

// Ring is an immutable consistent-hash ring over shard addresses.
// Each shard is hashed at VNodes points; a key is owned by the first
// point clockwise of its hash. Immutability is what makes membership
// changes safe: the router swaps a whole ring pointer, so every
// request routes against exactly one membership view.
type Ring struct {
	nodes  []string // distinct shard addresses, sorted
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// DefaultVNodes is the virtual-node count used when a Ring is built
// with vnodes ≤ 0. 64 points per shard keeps the max/mean load ratio
// under ~1.3 for small clusters without making ring builds noticeable.
const DefaultVNodes = 64

// hashKey is FNV-64a with a splitmix64 finalizer. Raw FNV avalanches
// poorly on short strings differing only in a trailing counter —
// exactly the "addr#vnode" point names — which skews ring ownership
// badly (measured 50%/7% on 4 nodes); the finalizer fixes the
// distribution without a new dependency.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	z := h.Sum64() + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRing builds a ring over the given shard addresses. Duplicates
// are dropped; order does not matter (two routers configured with the
// same set in any order agree on placement).
func NewRing(shards []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	nodes := slices.Clone(shards)
	sort.Strings(nodes)
	nodes = slices.Compact(nodes)
	r := &Ring{nodes: nodes, points: make([]ringPoint, 0, len(nodes)*vnodes)}
	for i, n := range nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", n, v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r
}

// Nodes returns the ring's shard addresses (sorted, deduplicated).
func (r *Ring) Nodes() []string { return slices.Clone(r.nodes) }

// Len returns the number of shards on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the shard owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	s := r.Successors(key, 1)
	if len(s) == 0 {
		return ""
	}
	return s[0]
}

// Successors returns up to n distinct shards in ring order starting
// at key's owner. This one primitive drives both placements: element
// 0 is the primary, elements 1..R-1 are the read replicas, and
// partition i of a P-way graph homes at element i mod len — so a
// partitioned graph spreads across min(P, shards) shards
// deterministically.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}
