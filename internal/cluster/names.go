package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// Partition graphs are ordinary graphs on their shard, named
// "<graph>@@p<i>of<P>". The marker is router-internal: single-node
// clients never see it, and the router's listing collapses the pieces
// back into one logical entry. "@@" cannot collide with user names
// because the router rejects registrations containing it.
const partSep = "@@p"

// partName returns the shard-resident name of partition i of P.
func partName(graph string, i, p int) string {
	return fmt.Sprintf("%s%s%dof%d", graph, partSep, i, p)
}

// splitPartName parses a shard graph name. ok is false for ordinary
// (unpartitioned) names.
func splitPartName(name string) (graph string, i, p int, ok bool) {
	at := strings.LastIndex(name, partSep)
	if at < 0 {
		return "", 0, 0, false
	}
	rest := name[at+len(partSep):]
	iStr, pStr, found := strings.Cut(rest, "of")
	if !found {
		return "", 0, 0, false
	}
	i, err1 := strconv.Atoi(iStr)
	p, err2 := strconv.Atoi(pStr)
	if err1 != nil || err2 != nil || p < 2 || i < 0 || i >= p {
		return "", 0, 0, false
	}
	return name[:at], i, p, true
}

// partOf assigns a V1 vertex to a partition. The multiplicative hash
// (Knuth's 2654435761) breaks up the sequential vertex ids real
// datasets arrive with; a plain u%p would put each dataset's dense
// hub prefix in partition 0. Must match the split used at register
// time — mutations route with the same function.
func partOf(u, p int) int {
	return int(uint64(uint32(u)) * 2654435761 % uint64(p))
}
